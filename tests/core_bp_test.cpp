#include "core/belief_propagation.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_helpers.h"

namespace eid::core {
namespace {

using test::DayBuilder;

/// Scripted scorer: fixed C&C set and fixed similarity scores by name.
class ScriptedScorer final : public DomainScorer {
 public:
  ScriptedScorer(const graph::DayGraph& graph) : graph_(graph) {}

  void mark_cc(const std::string& name) { cc_.insert(name); }
  void set_score(const std::string& name, double score) { scores_[name] = score; }

  bool detect_cc(graph::DomainId domain) const override {
    return cc_.contains(graph_.domain_name(domain));
  }

  double similarity_score(graph::DomainId domain,
                          std::span<const graph::DomainId>) const override {
    auto it = scores_.find(graph_.domain_name(domain));
    return it == scores_.end() ? 0.0 : it->second;
  }

 private:
  const graph::DayGraph& graph_;
  std::set<std::string> cc_;
  std::map<std::string, double> scores_;
};

std::unordered_set<graph::DomainId> all_rare(const graph::DayGraph& graph) {
  std::unordered_set<graph::DomainId> rare;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) rare.insert(d);
  return rare;
}

std::vector<std::string> domain_names(const graph::DayGraph& graph,
                                      const std::vector<graph::DomainId>& ids) {
  std::vector<std::string> out;
  for (const auto id : ids) out.push_back(graph.domain_name(id));
  return out;
}

TEST(BpTest, ExpandsFromHintHostThroughCc) {
  // hint host h1 -> C&C cc.com -> second victim h2 -> similar bad2.com.
  DayBuilder builder;
  builder.visit("h1", "cc.com", 1000);
  builder.visit("h2", "cc.com", 2000);
  builder.visit("h2", "bad2.com", 2100);
  builder.visit("h3", "clean.com", 3000);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.mark_cc("cc.com");
  scorer.set_score("bad2.com", 0.9);
  scorer.set_score("clean.com", 0.1);

  const std::vector<graph::HostId> seeds = {graph.find_host("h1")};
  BpConfig config;
  config.sim_threshold = 0.25;
  config.max_iterations = 5;
  const BpResult result =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);

  const auto names = domain_names(graph, result.domains);
  EXPECT_EQ(names, (std::vector<std::string>{"cc.com", "bad2.com"}));
  // Both victims found; h3 untouched.
  ASSERT_EQ(result.hosts.size(), 2u);
  EXPECT_EQ(graph.host_name(result.hosts[0]), "h1");
  EXPECT_EQ(graph.host_name(result.hosts[1]), "h2");
}

TEST(BpTest, StopsWhenMaxScoreBelowThreshold) {
  DayBuilder builder;
  builder.visit("h1", "weak.com", 1000);
  builder.visit("h1", "weaker.com", 1100);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.set_score("weak.com", 0.2);
  scorer.set_score("weaker.com", 0.1);

  const std::vector<graph::HostId> seeds = {graph.find_host("h1")};
  BpConfig config;
  config.sim_threshold = 0.25;
  const BpResult result =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  EXPECT_TRUE(result.domains.empty());
  EXPECT_TRUE(result.stopped_by_threshold);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(BpTest, LabelsOneSimilarityDomainPerIteration) {
  DayBuilder builder;
  builder.visit("h1", "a.com", 1000);
  builder.visit("h1", "b.com", 1100);
  builder.visit("h1", "c.com", 1200);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.set_score("a.com", 0.9);
  scorer.set_score("b.com", 0.8);
  scorer.set_score("c.com", 0.7);

  const std::vector<graph::HostId> seeds = {graph.find_host("h1")};
  BpConfig config;
  config.sim_threshold = 0.25;
  config.max_iterations = 2;  // can only label two of the three
  const BpResult result =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  const auto names = domain_names(graph, result.domains);
  EXPECT_EQ(names, (std::vector<std::string>{"a.com", "b.com"}));
  EXPECT_EQ(result.iterations, 2u);
}

TEST(BpTest, SeedDomainsExpandTheirHosts) {
  // No-hint mode: seed domains imply their contacting hosts are suspect.
  DayBuilder builder;
  builder.visit("h1", "seeded.com", 1000);
  builder.visit("h1", "next.com", 1100);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.set_score("next.com", 0.5);

  const std::vector<graph::DomainId> seed_domains = {
      graph.find_domain("seeded.com")};
  BpConfig config;
  const BpResult result = belief_propagation(graph, all_rare(graph), {},
                                             seed_domains, scorer, config);
  const auto new_names = domain_names(graph, result.new_domains);
  EXPECT_EQ(new_names, (std::vector<std::string>{"next.com"}));
  // Seeds are included in domains but not in new_domains.
  EXPECT_EQ(result.domains.size(), 2u);
  // The seed's trace entry has reason Seed.
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace[0].reason, LabelReason::Seed);
}

TEST(BpTest, OnlyRareDomainsEnterTheFrontier) {
  DayBuilder builder;
  builder.visit("h1", "rare.com", 1000);
  builder.visit("h1", "popular.com", 1100);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.set_score("rare.com", 0.9);
  scorer.set_score("popular.com", 0.9);

  std::unordered_set<graph::DomainId> rare = {graph.find_domain("rare.com")};
  const std::vector<graph::HostId> seeds = {graph.find_host("h1")};
  const BpResult result =
      belief_propagation(graph, rare, seeds, {}, scorer, BpConfig{});
  const auto names = domain_names(graph, result.domains);
  EXPECT_EQ(names, (std::vector<std::string>{"rare.com"}));
}

TEST(BpTest, CcPassBeatsSimilarityPass) {
  // When a C&C domain exists in the frontier, the iteration labels it (and
  // not the best-similarity domain).
  DayBuilder builder;
  builder.visit("h1", "cc.com", 1000);
  builder.visit("h1", "similar.com", 1100);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.mark_cc("cc.com");
  scorer.set_score("similar.com", 0.99);

  const std::vector<graph::HostId> seeds = {graph.find_host("h1")};
  BpConfig config;
  config.max_iterations = 1;
  const BpResult result =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  const auto names = domain_names(graph, result.domains);
  EXPECT_EQ(names, (std::vector<std::string>{"cc.com"}));
  EXPECT_EQ(result.trace[0].reason, LabelReason::CandC);
}

TEST(BpTest, MaxIterationsBoundsWork) {
  // A long chain: each labeled domain reveals one more host and domain.
  DayBuilder builder;
  for (int i = 0; i < 10; ++i) {
    const std::string host = "h" + std::to_string(i);
    builder.visit(host, "d" + std::to_string(i) + ".com", 1000 + i * 10);
    builder.visit(host, "d" + std::to_string(i + 1) + ".com", 1005 + i * 10);
  }
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  for (int i = 0; i <= 10; ++i) {
    scorer.set_score("d" + std::to_string(i) + ".com", 0.9);
  }
  const std::vector<graph::HostId> seeds = {graph.find_host("h0")};
  BpConfig config;
  config.max_iterations = 3;
  const BpResult result =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  EXPECT_EQ(result.domains.size(), 3u);
  EXPECT_EQ(result.iterations, 3u);
}

TEST(BpTest, EmptySeedsProduceNothing) {
  DayBuilder builder;
  builder.visit("h1", "a.com", 1000);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.set_score("a.com", 0.9);
  const BpResult result =
      belief_propagation(graph, all_rare(graph), {}, {}, scorer, BpConfig{});
  EXPECT_TRUE(result.domains.empty());
  EXPECT_TRUE(result.hosts.empty());
}

TEST(BpTest, TraceRecordsIterationAndNewHosts) {
  DayBuilder builder;
  builder.visit("h1", "cc.com", 1000);
  builder.visit("h2", "cc.com", 1500);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.mark_cc("cc.com");
  const std::vector<graph::HostId> seeds = {graph.find_host("h1")};
  const BpResult result =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, BpConfig{});
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace[0].iteration, 1u);
  ASSERT_EQ(result.trace[0].new_hosts.size(), 1u);
  EXPECT_EQ(graph.host_name(result.trace[0].new_hosts[0]), "h2");
}

}  // namespace
}  // namespace eid::core
