#include "sim/export.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "logs/files.h"
#include "logs/reduction.h"

namespace eid::sim {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-export-test-" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

SimConfig tiny(Flavor flavor) {
  SimConfig config;
  config.flavor = flavor;
  config.seed = 5;
  config.day0 = util::make_day(2014, 1, 1);
  config.n_hosts = 40;
  config.n_popular = 25;
  config.tail_per_day = 10;
  config.automated_tail_per_day = 2;
  config.grayware_per_day = 1;
  config.sessions_per_host = 2.0;
  return config;
}

TEST_F(ExportTest, ProxyDatasetRoundTripsThroughDisk) {
  const auto config = tiny(Flavor::Proxy);
  const util::Day day0 = config.day0;

  EnterpriseSimulator writer(config, {});
  const ExportStats stats = export_dataset(writer, day0, day0 + 2, dir_);
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.days, 3u);
  EXPECT_GT(stats.records, 100u);
  EXPECT_GT(stats.leases, 0u);

  // Re-simulate in a fresh instance and compare against the files.
  EnterpriseSimulator reference(config, {});
  for (util::Day day = day0; day <= day0 + 2; ++day) {
    const DayLogs expected = reference.simulate_day(day);
    logs::FileReadStats read_stats;
    const auto loaded = logs::read_proxy_file(
        dir_ / ("proxy-" + util::format_day(day) + ".tsv"), &read_stats);
    EXPECT_EQ(read_stats.malformed, 0u);
    ASSERT_EQ(loaded.size(), expected.proxy.size());
    for (std::size_t i = 0; i < loaded.size(); i += 37) {
      EXPECT_EQ(loaded[i].domain, expected.proxy[i].domain);
      EXPECT_EQ(loaded[i].ts, expected.proxy[i].ts);
      EXPECT_EQ(loaded[i].src_ip, expected.proxy[i].src_ip);
    }
  }
}

TEST_F(ExportTest, ExportedDhcpFileResolvesExportedTraffic) {
  const auto config = tiny(Flavor::Proxy);
  EnterpriseSimulator writer(config, {});
  ASSERT_TRUE(export_dataset(writer, config.day0, config.day0 + 1, dir_).ok);

  // Rebuild the lease table from disk and reduce the on-disk logs with it:
  // the full production path with no simulator involved.
  logs::DhcpTable table;
  for (auto& lease : logs::read_dhcp_file(dir_ / "dhcp.tsv")) {
    table.add_lease(std::move(lease));
  }
  const auto records = logs::read_proxy_file(
      dir_ / ("proxy-" + util::format_day(config.day0) + ".tsv"));
  ASSERT_FALSE(records.empty());
  logs::ProxyReductionStats stats;
  const auto events =
      logs::reduce_proxy(records, table, writer.proxy_reduction_config(), &stats);
  EXPECT_GT(events.size(), 0u);
  EXPECT_GT(stats.resolved_sources, stats.unresolved_sources);
}

TEST_F(ExportTest, DnsDatasetExports) {
  const auto config = tiny(Flavor::Dns);
  EnterpriseSimulator writer(config, {});
  const ExportStats stats = export_dataset(writer, config.day0, config.day0, dir_);
  ASSERT_TRUE(stats.ok);
  const auto loaded = logs::read_dns_file(
      dir_ / ("dns-" + util::format_day(config.day0) + ".tsv"));
  EXPECT_EQ(loaded.size(), stats.records);
  EXPECT_GT(loaded.size(), 50u);
}

TEST_F(ExportTest, UnwritableDirectoryFails) {
  const auto config = tiny(Flavor::Proxy);
  EnterpriseSimulator writer(config, {});
  const ExportStats stats = export_dataset(
      writer, config.day0, config.day0, "/proc/definitely-not-writable/x");
  EXPECT_FALSE(stats.ok);
}

}  // namespace
}  // namespace eid::sim
