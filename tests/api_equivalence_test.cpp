// Streaming-vs-batch equivalence: the chunked EventSource path through
// api::Detector must produce results identical to the legacy vector entry
// points of core::Pipeline for ANY chunking of the same event sequence —
// chunk sizes 1, 7 and 4096 here (acceptance criterion of the streaming
// ingestion redesign).
#include "api/detector.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "api/event_source.h"
#include "core/report_json.h"
#include "test_helpers.h"

namespace eid::api {
namespace {

using test::DayBuilder;
using test::MapWhois;

constexpr util::Day kDay = 16100;
constexpr std::size_t kChunkSizes[] = {1, 7, 4096};

std::vector<logs::ConnEvent> browsing_day(util::Day day) {
  DayBuilder builder;
  const util::TimePoint base = util::day_start(day);
  for (int h = 0; h < 12; ++h) {
    for (int d = 0; d < 6; ++d) {
      builder.visit("h" + std::to_string(h), "pop" + std::to_string(d) + ".com",
                    base + 1000 + h * 50 + d, {0}, "CommonUA", true);
    }
  }
  return builder.events();
}

/// The operation day under test: browsing plus a fresh campaign (beaconing
/// C&C + delivery domain) so C&C detection and both BP modes all fire.
std::vector<logs::ConnEvent> campaign_day(util::Day day, MapWhois& whois) {
  const util::TimePoint base = util::day_start(day);
  auto events = browsing_day(day);
  DayBuilder extra;
  whois.add("evil-cc.ru", day - 3, day + 40);
  whois.add("evil-drop.ru", day - 4, day + 40);
  extra.visit("h5", "evil-drop.ru", base + 1990,
              util::Ipv4::from_octets(198, 51, 100, 7), "", false);
  extra.beacon("h5", "evil-cc.ru", base + 2040, 600, 40,
               util::Ipv4::from_octets(198, 51, 100, 9), "");
  whois.add("ioc-domain.ru", day - 10, day + 30);
  whois.add("related.ru", day - 9, day + 30);
  extra.visit("h6", "ioc-domain.ru", base + 3000,
              util::Ipv4::from_octets(198, 51, 100, 20), "", false);
  extra.visit("h6", "related.ru", base + 3030,
              util::Ipv4::from_octets(198, 51, 100, 21), "", false);
  for (const auto& ev : extra.events()) events.push_back(ev);
  return events;
}

/// Labeled training days (the TrainedFixture world of core_pipeline_test).
struct TrainingDay {
  util::Day day = 0;
  std::vector<logs::ConnEvent> events;
};

std::vector<TrainingDay> training_days(MapWhois& whois,
                                       std::set<std::string>& reported) {
  std::vector<TrainingDay> days;
  for (int i = 0; i < 10; ++i) {
    const util::Day day = kDay - 2;
    const util::TimePoint base = util::day_start(day);
    auto events = browsing_day(day);
    DayBuilder extra;
    const std::string bad = "bad" + std::to_string(i) + ".ru";
    const std::string good = "updates" + std::to_string(i) + ".com";
    whois.add(bad, day - 5, day + 60);
    whois.add(good, day - 900, day + 900);
    reported.insert(bad);
    extra.beacon("h1", bad, base + 2000, 600, 40,
                 util::Ipv4::from_octets(203, 0, 113, 5), "");
    extra.beacon("h2", good, base + 2500, 900, 30,
                 util::Ipv4::from_octets(8, 8, 4, 4), "CommonUA");
    const std::string drop = "drop" + std::to_string(i) + ".ru";
    whois.add(drop, day - 6, day + 60);
    reported.insert(drop);
    extra.visit("h1", drop, base + 1985,
                util::Ipv4::from_octets(203, 0, 113, 9), "", false);
    const std::string blog = "blog" + std::to_string(i) + ".com";
    whois.add(blog, day - 800, day + 900);
    extra.visit("h1", blog, base + 30000,
                util::Ipv4::from_octets(9, 9, 9, 9), "CommonUA", true);
    for (const auto& ev : extra.events()) events.push_back(ev);
    days.push_back(TrainingDay{day, std::move(events)});
  }
  return days;
}

core::PipelineConfig test_config() {
  core::PipelineConfig config;
  config.ua_rare_threshold = 3;
  return config;
}

// ---- deep comparisons ----

void expect_same_analysis(const core::DayAnalysis& a, const core::DayAnalysis& b) {
  EXPECT_EQ(a.day, b.day);
  EXPECT_EQ(a.event_count, b.event_count);
  EXPECT_EQ(a.new_domains, b.new_domains);
  EXPECT_EQ(a.total_domains, b.total_domains);
  EXPECT_EQ(a.graph.host_count(), b.graph.host_count());
  EXPECT_EQ(a.graph.domain_count(), b.graph.domain_count());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.rare, b.rare);
  EXPECT_EQ(a.automation.pair_count(), b.automation.pair_count());
  EXPECT_DOUBLE_EQ(a.whois_defaults.age_days, b.whois_defaults.age_days);
  EXPECT_DOUBLE_EQ(a.whois_defaults.validity_days, b.whois_defaults.validity_days);
}

void expect_same_scored(const std::vector<core::ScoredDomain>& a,
                        const std::vector<core::ScoredDomain>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    EXPECT_DOUBLE_EQ(a[i].period, b[i].period);
    EXPECT_EQ(a[i].auto_hosts, b[i].auto_hosts);
  }
}

void expect_same_bp(const core::BpRunReport& a, const core::BpRunReport& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.domains.size(), b.domains.size());
  for (std::size_t i = 0; i < a.domains.size(); ++i) {
    EXPECT_EQ(a.domains[i].name, b.domains[i].name);
    EXPECT_DOUBLE_EQ(a.domains[i].score, b.domains[i].score);
    EXPECT_EQ(a.domains[i].reason, b.domains[i].reason);
    EXPECT_EQ(a.domains[i].iteration, b.domains[i].iteration);
  }
  EXPECT_EQ(a.hosts, b.hosts);
}

void expect_same_report(const core::DayReport& a, const core::DayReport& b) {
  EXPECT_EQ(a.day, b.day);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.hosts, b.hosts);
  EXPECT_EQ(a.domains, b.domains);
  EXPECT_EQ(a.rare_domains, b.rare_domains);
  EXPECT_EQ(a.automated_pairs, b.automated_pairs);
  expect_same_scored(a.automated_scores, b.automated_scores);
  expect_same_scored(a.cc_domains, b.cc_domains);
  expect_same_bp(a.nohint, b.nohint);
  expect_same_bp(a.sochints, b.sochints);
}

// ---- tests ----

TEST(ApiEquivalenceTest, AccumulatorMatchesAnalyzeDayAtEveryChunkSize) {
  MapWhois whois;
  core::Pipeline pipeline(test_config(), whois);
  pipeline.profile_day(browsing_day(kDay - 2));

  auto events = campaign_day(kDay, whois);
  const core::DayAnalysis batch = pipeline.analyze_day(events, kDay);
  ASSERT_GT(batch.rare.size(), 0u);
  ASSERT_GT(batch.automation.pair_count(), 0u);

  for (const std::size_t chunk_size : kChunkSizes) {
    core::DayAccumulator accumulator = pipeline.begin_day(kDay);
    VectorSource source(kDay, &events, chunk_size);
    while (auto chunk = source.next_chunk()) accumulator.add_chunk(chunk->events);
    const core::DayAnalysis streamed =
        pipeline.finish_day(std::move(accumulator));
    SCOPED_TRACE("chunk size " + std::to_string(chunk_size));
    expect_same_analysis(batch, streamed);
  }
}

// Full lifecycle parity: two instances, one fed materialized day vectors
// through core::Pipeline, the other fed the same sequence through the
// streaming facade — profile, labeled training, operation day. Reports
// must be identical at every chunk size.
TEST(ApiEquivalenceTest, RunDayMatchesLegacyPipelineAtEveryChunkSize) {
  for (const std::size_t chunk_size : kChunkSizes) {
    SCOPED_TRACE("chunk size " + std::to_string(chunk_size));
    MapWhois whois;
    std::set<std::string> reported;
    const auto train = training_days(whois, reported);
    const core::LabelFn intel = [&reported](const std::string& domain) {
      return reported.contains(domain);
    };

    // Legacy batch path.
    core::Pipeline pipeline(test_config(), whois);
    pipeline.profile_day(browsing_day(kDay - 4));
    pipeline.profile_day(browsing_day(kDay - 3));
    for (const auto& day : train) pipeline.train_day(day.events, day.day, intel);
    const core::TrainingReport batch_training = pipeline.finalize_training();

    // Streaming facade, same event sequence in `chunk_size` chunks.
    Detector detector(test_config(), whois);
    for (const util::Day day : {kDay - 4, kDay - 3}) {
      VectorSource source(day, browsing_day(day), chunk_size);
      detector.ingest(source);
    }
    for (const auto& day : train) {
      VectorSource source(day.day, &day.events, chunk_size);
      detector.ingest(source, intel);
    }
    const core::TrainingReport stream_training = detector.finalize_training();

    EXPECT_EQ(batch_training.cc_rows, stream_training.cc_rows);
    EXPECT_EQ(batch_training.cc_positive, stream_training.cc_positive);
    EXPECT_EQ(batch_training.sim_rows, stream_training.sim_rows);
    EXPECT_EQ(batch_training.sim_positive, stream_training.sim_positive);
    ASSERT_EQ(batch_training.cc_training_scores.size(),
              stream_training.cc_training_scores.size());
    for (std::size_t i = 0; i < batch_training.cc_training_scores.size(); ++i) {
      EXPECT_DOUBLE_EQ(batch_training.cc_training_scores[i].first,
                       stream_training.cc_training_scores[i].first);
    }

    // Operation day with SOC seeds; both BP modes must fire identically.
    auto events = campaign_day(kDay, whois);
    core::SocSeeds seeds;
    seeds.domains = {"ioc-domain.ru"};
    const core::DayReport batch_report = pipeline.run_day(events, kDay, seeds);
    ASSERT_FALSE(batch_report.cc_domains.empty());

    VectorSource source(kDay, &events, chunk_size);
    const core::DayReport stream_report = detector.run_day(source, kDay, seeds);
    expect_same_report(batch_report, stream_report);

    // End-of-day history updates must leave both instances in the same
    // state: the day after, nothing is new on either path.
    const auto tomorrow = browsing_day(kDay + 1);
    const core::DayAnalysis batch_next = pipeline.analyze_day(tomorrow, kDay + 1);
    VectorSource next_source(kDay + 1, &tomorrow, chunk_size);
    const core::DayAnalysis stream_next =
        detector.analyze_stream(next_source, kDay + 1);
    expect_same_analysis(batch_next, stream_next);
    EXPECT_EQ(pipeline.domain_history().size(),
              detector.pipeline().domain_history().size());
    EXPECT_EQ(pipeline.ua_history().distinct_uas(),
              detector.pipeline().ua_history().distinct_uas());
  }
}

// The sharded parallel engine contract: a fully trained detector must emit
// a bit-identical DayReport for every combination of analysis threads,
// ingest shard count and chunk size — the same guarantee PR 1 established
// for chunking, extended to the parallel knobs.
TEST(ApiEquivalenceTest, ParallelConfigsBitIdenticalAtEveryChunkSize) {
  std::string baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::size_t shards : {1u, 4u}) {
      for (const std::size_t chunk_size : {1u, 4096u}) {
        SCOPED_TRACE("threads " + std::to_string(threads) + ", shards " +
                     std::to_string(shards) + ", chunk " +
                     std::to_string(chunk_size));
        MapWhois whois;
        std::set<std::string> reported;
        const auto train = training_days(whois, reported);
        const core::LabelFn intel = [&reported](const std::string& domain) {
          return reported.contains(domain);
        };

        core::PipelineConfig config = test_config();
        config.parallelism = core::Parallelism{threads, shards};
        Detector detector(config, whois);
        for (const util::Day day : {kDay - 4, kDay - 3}) {
          VectorSource source(day, browsing_day(day), chunk_size);
          detector.ingest(source);
        }
        for (const auto& day : train) {
          VectorSource source(day.day, &day.events, chunk_size);
          detector.ingest(source, intel);
        }
        detector.finalize_training();

        auto events = campaign_day(kDay, whois);
        core::SocSeeds seeds;
        seeds.domains = {"ioc-domain.ru"};
        VectorSource source(kDay, &events, chunk_size);
        const std::string json =
            core::day_report_to_json(detector.run_day(source, kDay, seeds));
        ASSERT_NE(json.find("evil-cc.ru"), std::string::npos);
        if (baseline.empty()) {
          baseline = json;
        } else {
          EXPECT_EQ(json, baseline);
        }
      }
    }
  }
}

// The profiling accumulator (O(distinct) memory, no graph) must leave the
// histories exactly as the batch profile_day() does.
TEST(ApiEquivalenceTest, StreamingProfilingMatchesProfileDay) {
  MapWhois whois;
  auto events = campaign_day(kDay - 2, whois);

  core::Pipeline batch(test_config(), whois);
  batch.profile_day(events);

  for (const std::size_t chunk_size : kChunkSizes) {
    SCOPED_TRACE("chunk size " + std::to_string(chunk_size));
    Detector detector(test_config(), whois);
    VectorSource source(kDay - 2, &events, chunk_size);
    const IngestReport ingested = detector.ingest(source);
    EXPECT_EQ(ingested.days, 1u);
    EXPECT_EQ(ingested.events, events.size());

    const core::Pipeline& streamed = detector.pipeline();
    EXPECT_EQ(batch.domain_history().size(), streamed.domain_history().size());
    EXPECT_EQ(batch.domain_history().days_ingested(),
              streamed.domain_history().days_ingested());
    EXPECT_EQ(batch.ua_history().distinct_uas(),
              streamed.ua_history().distinct_uas());
    batch.ua_history().for_each_entry(
        [&](const std::string& ua, bool popular, const auto& hosts) {
          EXPECT_EQ(streamed.ua_history().is_rare(ua), !popular) << ua;
          if (!popular) {
            EXPECT_EQ(streamed.ua_history().host_count(ua), hosts.size()) << ua;
          }
        });
    // Same rare extraction on the next day on both histories.
    auto next = browsing_day(kDay - 1);
    VectorSource next_source(kDay - 1, &next);
    expect_same_analysis(batch.analyze_day(next, kDay - 1),
                         detector.analyze_stream(next_source, kDay - 1));
  }
}

}  // namespace
}  // namespace eid::api
