// Unit tests for every EventSource adapter: chunk boundaries, day tags,
// reset semantics, malformed-line accounting (TsvFileSource) and parity
// with the batch reducers each adapter wraps.
#include "api/sources.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "api/event_source.h"
#include "logs/files.h"
#include "logs/io.h"
#include "test_helpers.h"

namespace eid::api {
namespace {

bool same_event(const logs::ConnEvent& a, const logs::ConnEvent& b) {
  return a.ts == b.ts && a.host == b.host && a.domain == b.domain &&
         a.dest_ip == b.dest_ip && a.user_agent == b.user_agent &&
         a.has_referer == b.has_referer &&
         a.has_http_context == b.has_http_context;
}

std::vector<logs::ConnEvent> drain(EventSource& source,
                                   std::vector<std::size_t>* chunk_sizes = nullptr,
                                   std::vector<util::Day>* days = nullptr) {
  std::vector<logs::ConnEvent> out;
  while (auto chunk = source.next_chunk()) {
    if (chunk_sizes != nullptr) chunk_sizes->push_back(chunk->events.size());
    if (days != nullptr) days->push_back(chunk->day);
    out.insert(out.end(), chunk->events.begin(), chunk->events.end());
  }
  return out;
}

// ---- VectorSource ----

TEST(VectorSourceTest, ChunksCoverEveryEventInOrder) {
  test::DayBuilder builder;
  for (int i = 0; i < 10; ++i) {
    builder.visit("h" + std::to_string(i % 3), "d" + std::to_string(i) + ".com",
                  1000 + i);
  }
  const auto& events = builder.events();

  for (const std::size_t chunk_size : {1u, 3u, 10u, 4096u}) {
    VectorSource source(42, &events, chunk_size);
    std::vector<std::size_t> sizes;
    std::vector<util::Day> days;
    const auto streamed = drain(source, &sizes, &days);
    ASSERT_EQ(streamed.size(), events.size()) << chunk_size;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_TRUE(same_event(events[i], streamed[i])) << i;
    }
    for (const std::size_t size : sizes) EXPECT_LE(size, chunk_size);
    for (const util::Day day : days) EXPECT_EQ(day, 42);
    // Exhausted until reset.
    EXPECT_FALSE(source.next_chunk().has_value());
    EXPECT_TRUE(source.reset());
    EXPECT_EQ(drain(source).size(), events.size());
  }
}

TEST(VectorSourceTest, OwningFormKeepsEventsAlive) {
  test::DayBuilder builder;
  builder.visit("h0", "a.com", 1).visit("h1", "b.com", 2);
  VectorSource source(7, builder.events(), 1);  // copy moved into the source
  std::vector<std::size_t> sizes;
  EXPECT_EQ(drain(source, &sizes).size(), 2u);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 1}));
}

TEST(VectorSourceTest, EmptyVectorYieldsOneDayBoundaryMarker) {
  const std::vector<logs::ConnEvent> empty;
  VectorSource source(1, &empty);
  const auto marker = source.next_chunk();
  ASSERT_TRUE(marker.has_value());
  EXPECT_EQ(marker->day, 1);
  EXPECT_TRUE(marker->events.empty());
  EXPECT_FALSE(source.next_chunk().has_value());
  EXPECT_TRUE(source.reset());
  EXPECT_TRUE(source.next_chunk().has_value());
}

// ---- TsvFileSource ----

class TsvFileSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-api-sources-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(TsvFileSourceTest, ProxyFileStreamsReducedEventsAndCountsMalformed) {
  std::vector<logs::ProxyRecord> records;
  for (int i = 0; i < 5; ++i) {
    logs::ProxyRecord rec;
    rec.ts = 1000 + i;
    rec.collector = "c0";
    rec.src_ip = "10.0.0." + std::to_string(i + 1);
    rec.hostname = "host" + std::to_string(i);
    rec.domain = "site" + std::to_string(i) + ".example.com";
    rec.user_agent = "UA";
    records.push_back(rec);
  }
  const auto path = dir_ / "proxy.tsv";
  ASSERT_TRUE(logs::write_proxy_file(path, records));
  {
    std::ofstream corrupt(path, std::ios::app);
    corrupt << "garbage line without tabs\n";
    corrupt << "123\tonly\tthree\n";
  }

  const logs::DhcpTable leases;
  const logs::ProxyReductionConfig reduction;
  const auto batch = logs::reduce_proxy(records, leases, reduction);
  ASSERT_FALSE(batch.empty());

  TsvFileSource source(path, 99, leases, reduction, 2);
  std::vector<util::Day> days;
  const auto streamed = drain(source, nullptr, &days);

  EXPECT_TRUE(source.stats().opened);
  EXPECT_EQ(source.stats().parsed, records.size());
  EXPECT_EQ(source.stats().malformed, 2u);
  EXPECT_EQ(source.stats().events, streamed.size());
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(same_event(batch[i], streamed[i])) << i;
  }
  for (const util::Day day : days) EXPECT_EQ(day, 99);

  // reset() rewinds and clears the accounting.
  EXPECT_TRUE(source.reset());
  EXPECT_EQ(source.stats().malformed, 0u);
  EXPECT_EQ(drain(source).size(), batch.size());
  EXPECT_EQ(source.stats().malformed, 2u);
}

TEST_F(TsvFileSourceTest, DnsFileStreamsReducedEvents) {
  std::vector<logs::DnsRecord> records;
  for (int i = 0; i < 4; ++i) {
    logs::DnsRecord rec;
    rec.ts = 2000 + i;
    rec.src = "h" + std::to_string(i);
    rec.domain = "q" + std::to_string(i) + ".example.net";
    rec.type = logs::DnsType::A;
    records.push_back(rec);
  }
  records[3].type = logs::DnsType::TXT;  // dropped by reduction, not malformed
  const auto path = dir_ / "dns.tsv";
  ASSERT_TRUE(logs::write_dns_file(path, records));

  logs::DnsReductionConfig reduction;
  const auto batch = logs::reduce_dns(records, reduction);
  TsvFileSource source(path, 5, reduction, 3);
  const auto streamed = drain(source);
  EXPECT_EQ(source.stats().parsed, records.size());
  EXPECT_EQ(source.stats().malformed, 0u);
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(same_event(batch[i], streamed[i])) << i;
  }
}

TEST_F(TsvFileSourceTest, MissingFileReportsUnopened) {
  const logs::DhcpTable leases;
  TsvFileSource source(dir_ / "missing.tsv", 1, leases,
                       logs::ProxyReductionConfig{});
  EXPECT_FALSE(source.stats().opened);
  EXPECT_FALSE(source.next_chunk().has_value());
}

// ---- TsvFileSource tail mode (--follow) ----

namespace {

logs::DnsRecord dns_record(util::TimePoint ts, int i) {
  logs::DnsRecord rec;
  rec.ts = ts;
  rec.src = "h" + std::to_string(i);
  rec.domain = "tail" + std::to_string(i) + ".example.net";
  rec.type = logs::DnsType::A;
  return rec;
}

}  // namespace

TEST_F(TsvFileSourceTest, TailResumesAtByteOffsetAndSkipsPartialLines) {
  const auto path = dir_ / "dns-tail.tsv";
  ASSERT_TRUE(logs::write_dns_file(path, {dns_record(100, 0), dns_record(101, 1)}));

  TsvFileSource source(path, 7, logs::DnsReductionConfig{});
  source.set_tail(true);

  // First poll drains the two complete lines; the cursor lands at the end.
  EXPECT_EQ(drain(source).size(), 2u);
  const std::uint64_t after_two =
      static_cast<std::uint64_t>(std::filesystem::file_size(path));
  EXPECT_EQ(source.stats().byte_offset, after_two);

  // A partially written line (no newline yet) is invisible: not an event,
  // not malformed, cursor unmoved.
  const std::string third = logs::format_dns_line(dns_record(102, 2));
  {
    std::ofstream out(path, std::ios::app);
    out << third.substr(0, third.size() / 2);
  }
  EXPECT_FALSE(source.next_chunk().has_value());
  EXPECT_EQ(source.stats().malformed, 0u);
  EXPECT_EQ(source.stats().byte_offset, after_two);

  // Once its newline lands the whole line is re-read from the cursor.
  {
    std::ofstream out(path, std::ios::app);
    out << third.substr(third.size() / 2) << '\n';
  }
  const auto chunk = source.next_chunk();
  ASSERT_TRUE(chunk.has_value());
  ASSERT_EQ(chunk->events.size(), 1u);
  EXPECT_EQ(chunk->events[0].domain, "tail2.example.net");
  EXPECT_EQ(chunk->events[0].ts, 102);
  EXPECT_EQ(source.stats().byte_offset, after_two + third.size() + 1);
  EXPECT_FALSE(source.next_chunk().has_value());

  // Garbage appended mid-tail is counted malformed, never fatal; the
  // complete line after it still comes through the same poll.
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage without enough tabs\n"
        << logs::format_dns_line(dns_record(103, 3)) << '\n';
  }
  const auto after_garbage = source.next_chunk();
  ASSERT_TRUE(after_garbage.has_value());
  ASSERT_EQ(after_garbage->events.size(), 1u);
  EXPECT_EQ(after_garbage->events[0].ts, 103);
  EXPECT_EQ(source.stats().malformed, 1u);
  EXPECT_EQ(source.stats().byte_offset,
            static_cast<std::uint64_t>(std::filesystem::file_size(path)));
}

TEST_F(TsvFileSourceTest, TailRetriesAFileThatAppearsLater) {
  const auto path = dir_ / "late.tsv";
  TsvFileSource source(path, 7, logs::DnsReductionConfig{});
  source.set_tail(true);
  EXPECT_FALSE(source.stats().opened);
  EXPECT_FALSE(source.next_chunk().has_value());  // nothing yet, not an error

  ASSERT_TRUE(logs::write_dns_file(path, {dns_record(200, 0)}));
  const auto chunk = source.next_chunk();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->events.size(), 1u);
  EXPECT_TRUE(source.stats().opened);
}

TEST_F(TsvFileSourceTest, TailSuppressesEmptyDayMarker) {
  // A tail has no notion of "the day produced nothing" — the stream never
  // ends, so the empty-day boundary marker must not fire.
  const auto path = dir_ / "empty.tsv";
  { std::ofstream out(path); }
  TsvFileSource source(path, 7, logs::DnsReductionConfig{});
  source.set_tail(true);
  EXPECT_FALSE(source.next_chunk().has_value());
  EXPECT_FALSE(source.next_chunk().has_value());

  // Batch mode on the same empty file does announce the day once.
  TsvFileSource batch(path, 7, logs::DnsReductionConfig{});
  const auto marker = batch.next_chunk();
  ASSERT_TRUE(marker.has_value());
  EXPECT_TRUE(marker->events.empty());
  EXPECT_FALSE(batch.next_chunk().has_value());
}

// ---- SimSource ----

TEST(SimSourceTest, MatchesReducedDayAcrossTheRange) {
  sim::SimConfig config;
  config.flavor = sim::Flavor::Proxy;
  config.seed = 5;
  config.day0 = util::make_day(2014, 1, 1);
  config.n_hosts = 30;
  config.n_popular = 10;
  config.tail_per_day = 5;
  config.automated_tail_per_day = 1;
  config.grayware_per_day = 1;

  const util::Day first = config.day0;
  const util::Day last = first + 2;

  // Two identical simulators: one consumed through the source, one as the
  // batch ground truth (simulators are deterministic in the seed).
  sim::EnterpriseSimulator streamed_sim(config, {});
  sim::EnterpriseSimulator batch_sim(config, {});

  SimSource source(streamed_sim, first, last, 100);
  std::vector<util::Day> days;
  std::vector<logs::ConnEvent> streamed;
  std::vector<std::size_t> day_counts;
  {
    std::vector<std::size_t> sizes;
    streamed = drain(source, &sizes, &days);
    for (const std::size_t size : sizes) EXPECT_LE(size, 100u);
  }

  std::vector<logs::ConnEvent> batch;
  for (util::Day day = first; day <= last; ++day) {
    const auto day_events = batch_sim.reduced_day(day);
    day_counts.push_back(day_events.size());
    batch.insert(batch.end(), day_events.begin(), day_events.end());
  }
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(same_event(batch[i], streamed[i])) << i;
  }

  // Day tags must be contiguous and non-decreasing across the range.
  for (std::size_t i = 1; i < days.size(); ++i) {
    EXPECT_GE(days[i], days[i - 1]);
  }
  EXPECT_EQ(days.front(), first);
  EXPECT_EQ(days.back(), last);

  // Forward-only: no rewind.
  EXPECT_FALSE(source.reset());
}

// ---- NetflowSource ----

TEST(NetflowSourceTest, MatchesBatchFlowReductionAndAggregatesStats) {
  logs::PassiveDnsCache pdns;
  const auto ip = [](int last) {
    return util::Ipv4::from_octets(203, 0, 113, static_cast<std::uint8_t>(last));
  };
  pdns.observe("alpha.example.com", ip(10), 100);
  pdns.observe("beta.example.com", ip(20), 100);

  std::vector<logs::FlowRecord> flows;
  for (int i = 0; i < 6; ++i) {
    logs::FlowRecord flow;
    flow.ts = 200 + i;
    flow.src = "h" + std::to_string(i % 2);
    flow.dst_ip = i % 2 == 0 ? ip(10) : ip(20);
    flow.dst_port = 443;
    flows.push_back(flow);
  }
  flows[5].dst_port = 25;  // filtered: not a web port
  logs::FlowRecord orphan;  // unattributed: IP never seen in passive DNS
  orphan.ts = 300;
  orphan.src = "h9";
  orphan.dst_ip = ip(99);
  orphan.dst_port = 80;
  flows.push_back(orphan);

  const logs::FlowReductionConfig reduction;
  logs::FlowReductionStats batch_stats;
  const auto batch = logs::reduce_flows(flows, pdns, reduction, &batch_stats);
  ASSERT_FALSE(batch.empty());

  NetflowSource source(17, flows, pdns, reduction, 2);
  std::vector<util::Day> days;
  const auto streamed = drain(source, nullptr, &days);

  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(same_event(batch[i], streamed[i])) << i;
  }
  for (const util::Day day : days) EXPECT_EQ(day, 17);
  EXPECT_EQ(source.stats().total_flows, batch_stats.total_flows);
  EXPECT_EQ(source.stats().port_filtered, batch_stats.port_filtered);
  EXPECT_EQ(source.stats().unattributed, batch_stats.unattributed);
  EXPECT_EQ(source.stats().kept, batch_stats.kept);

  EXPECT_TRUE(source.reset());
  EXPECT_EQ(source.stats().kept, 0u);
  EXPECT_EQ(drain(source).size(), batch.size());
}

}  // namespace
}  // namespace eid::api
