#include "core/model_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "ml/matrix.h"

namespace eid::core {
namespace {

ScoredModel sample_model() {
  ScoredModel model;
  model.threshold = 0.4;
  model.score_offset = -0.173;
  model.score_scale = 0.651;
  model.model.intercept = 0.0625;
  model.model.weights = {1.25, -0.333333333333333314, 0.1, 0.0, -7e-3, 2.5e4};
  model.model.std_errors = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  model.model.t_stats = {12.5, -1.6, 0.33, 0.0, -0.014, 41666.6};
  model.model.r_squared = 0.376;
  model.model.residual_variance = 0.0813;
  model.model.n_samples = 176;
  ml::Matrix bounds(2, 6);
  for (std::size_t c = 0; c < 6; ++c) {
    bounds.at(0, c) = -static_cast<double>(c) - 0.5;
    bounds.at(1, c) = static_cast<double>(c) * 3.25 + 1.0;
  }
  model.scaler.fit(bounds);
  return model;
}

TEST(ModelIoTest, ExactRoundTripThroughText) {
  const ScoredModel original = sample_model();
  const auto parsed = parse_scored_model(format_scored_model(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->threshold, original.threshold);
  EXPECT_EQ(parsed->score_offset, original.score_offset);
  EXPECT_EQ(parsed->score_scale, original.score_scale);
  EXPECT_EQ(parsed->model.intercept, original.model.intercept);
  EXPECT_EQ(parsed->model.weights, original.model.weights);  // bit-exact
  EXPECT_EQ(parsed->model.std_errors, original.model.std_errors);
  EXPECT_EQ(parsed->model.t_stats, original.model.t_stats);
  EXPECT_EQ(parsed->model.r_squared, original.model.r_squared);
  EXPECT_EQ(parsed->model.n_samples, original.model.n_samples);
  EXPECT_EQ(parsed->scaler.mins(), original.scaler.mins());
  EXPECT_EQ(parsed->scaler.maxs(), original.scaler.maxs());
}

TEST(ModelIoTest, LoadedModelScoresIdentically) {
  const ScoredModel original = sample_model();
  const auto parsed = parse_scored_model(format_scored_model(original));
  ASSERT_TRUE(parsed.has_value());
  for (double base : {-3.0, 0.0, 1.5, 100.0}) {
    std::array<double, 6> row_a;
    std::array<double, 6> row_b;
    for (std::size_t c = 0; c < 6; ++c) row_a[c] = row_b[c] = base + c;
    EXPECT_EQ(original.score(row_a), parsed->score(row_b)) << base;
  }
}

TEST(ModelIoTest, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("eid-model-test-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto path = dir / "cc.model";
  const ScoredModel original = sample_model();
  ASSERT_TRUE(save_scored_model(original, path));
  const auto loaded = load_scored_model(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->model.weights, original.model.weights);
  std::filesystem::remove_all(dir);
}

TEST(ModelIoTest, RejectsCorruptInput) {
  EXPECT_FALSE(parse_scored_model("").has_value());
  EXPECT_FALSE(parse_scored_model("not a model\n").has_value());
  // Missing weights line.
  EXPECT_FALSE(
      parse_scored_model("eid-scored-model 1\nthreshold 0x1p-1\n").has_value());
  // Scaler/weights mismatch.
  EXPECT_FALSE(parse_scored_model("eid-scored-model 1\nthreshold 0x1p-1\n"
                                  "weights 0x1p0 0x1p0\nscaler 0x0p0 0x1p0\n")
                   .has_value());
  // Zero score scale would divide by zero at score time.
  EXPECT_FALSE(parse_scored_model("eid-scored-model 1\nthreshold 0x1p-1\n"
                                  "score 0x0p0 0x0p0\nweights 0x1p0\n"
                                  "scaler 0x0p0 0x1p0\n")
                   .has_value());
  // Unknown section.
  EXPECT_FALSE(parse_scored_model("eid-scored-model 1\nthreshold 0x1p-1\n"
                                  "weights 0x1p0\nscaler 0x0p0 0x1p0\nbogus 1\n")
                   .has_value());
}

TEST(ModelIoTest, MissingFileLoadsNothing) {
  EXPECT_FALSE(load_scored_model("/does/not/exist.model").has_value());
}

}  // namespace
}  // namespace eid::core
