#include "ml/linreg.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace eid::ml {
namespace {

TEST(LinRegTest, RecoversExactLinearRelationship) {
  // y = 3 + 2*x0 - 1.5*x1, no noise.
  const std::size_t n = 50;
  Matrix x(n, 2);
  std::vector<double> y(n);
  util::Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = rng.uniform_double(-5, 5);
    x.at(i, 1) = rng.uniform_double(-5, 5);
    y[i] = 3.0 + 2.0 * x.at(i, 0) - 1.5 * x.at(i, 1);
  }
  const LinearModel model = fit_linear_regression(x, y);
  ASSERT_EQ(model.weights.size(), 2u);
  EXPECT_NEAR(model.weights[0], 2.0, 1e-9);
  EXPECT_NEAR(model.weights[1], -1.5, 1e-9);
  EXPECT_NEAR(model.intercept, 3.0, 1e-9);
  EXPECT_NEAR(model.r_squared, 1.0, 1e-9);
}

TEST(LinRegTest, RecoversWeightsUnderNoise) {
  const std::size_t n = 2000;
  Matrix x(n, 3);
  std::vector<double> y(n);
  util::Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x.at(i, c) = rng.uniform_double(0, 1);
    y[i] = 0.5 + 1.0 * x.at(i, 0) + 0.0 * x.at(i, 1) - 2.0 * x.at(i, 2) +
           rng.normal(0.0, 0.1);
  }
  const LinearModel model = fit_linear_regression(x, y);
  EXPECT_NEAR(model.weights[0], 1.0, 0.05);
  EXPECT_NEAR(model.weights[1], 0.0, 0.05);
  EXPECT_NEAR(model.weights[2], -2.0, 0.05);
  // Significance: informative features have large |t|, the null one small.
  EXPECT_TRUE(model.is_significant(0));
  EXPECT_FALSE(model.is_significant(1));
  EXPECT_TRUE(model.is_significant(2));
  EXPECT_GT(model.r_squared, 0.9);
}

TEST(LinRegTest, NegativeCorrelationHasNegativeWeight) {
  // Mirrors the paper's DomAge finding: reported domains are younger, so
  // the age coefficient comes out negative (§VI-A).
  const std::size_t n = 400;
  Matrix x(n, 1);
  std::vector<double> y(n);
  util::Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    const bool reported = rng.chance(0.5);
    x.at(i, 0) = reported ? rng.uniform_double(0, 60) : rng.uniform_double(200, 3000);
    y[i] = reported ? 1.0 : 0.0;
  }
  const LinearModel model = fit_linear_regression(x, y);
  EXPECT_LT(model.weights[0], 0.0);
  EXPECT_TRUE(model.is_significant(0));
}

TEST(LinRegTest, PredictUsesInterceptAndWeights) {
  LinearModel model;
  model.intercept = 1.0;
  model.weights = {2.0, -1.0};
  const std::array<double, 2> row = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(model.predict(row), 1.0 + 6.0 - 4.0);
}

TEST(LinRegTest, DegenerateInputsReturnEmptyModel) {
  Matrix x(0, 2);
  const LinearModel empty = fit_linear_regression(x, {});
  EXPECT_TRUE(empty.weights.empty());

  Matrix tiny(2, 3);  // n <= p
  const LinearModel under = fit_linear_regression(tiny, {{1.0, 2.0}});
  EXPECT_TRUE(under.weights.empty());
}

TEST(LinRegTest, ConstantFeatureHandledViaRidgeFallback) {
  const std::size_t n = 30;
  Matrix x(n, 2);
  std::vector<double> y(n);
  util::Rng rng(4);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = rng.uniform_double(0, 1);
    x.at(i, 1) = 0.7;  // constant column (collinear with intercept)
    y[i] = 2.0 * x.at(i, 0);
  }
  const LinearModel model = fit_linear_regression(x, y);
  ASSERT_EQ(model.weights.size(), 2u);
  EXPECT_NEAR(model.weights[0], 2.0, 1e-3);
}

TEST(ScalerTest, MapsToUnitInterval) {
  Matrix x(3, 2);
  x.at(0, 0) = 0;  x.at(0, 1) = 10;
  x.at(1, 0) = 5;  x.at(1, 1) = 20;
  x.at(2, 0) = 10; x.at(2, 1) = 30;
  MinMaxScaler scaler;
  scaler.fit(x);
  const Matrix scaled = scaler.transform(x);
  EXPECT_DOUBLE_EQ(scaled.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaled.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(scaled.at(2, 1), 1.0);
}

TEST(ScalerTest, ClampsOutOfRangeValues) {
  Matrix x(2, 1);
  x.at(0, 0) = 0;
  x.at(1, 0) = 10;
  MinMaxScaler scaler;
  scaler.fit(x);
  std::array<double, 1> row = {-5.0};
  scaler.transform_row(row);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  row[0] = 25.0;
  scaler.transform_row(row);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
}

TEST(ScalerTest, ConstantColumnMapsToHalf) {
  Matrix x(3, 1);
  x.at(0, 0) = x.at(1, 0) = x.at(2, 0) = 7.0;
  MinMaxScaler scaler;
  scaler.fit(x);
  std::array<double, 1> row = {7.0};
  scaler.transform_row(row);
  EXPECT_DOUBLE_EQ(row[0], 0.5);
}

}  // namespace
}  // namespace eid::ml
