#include "timing/periodicity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace eid::timing {
namespace {

std::vector<util::TimePoint> beacon(double period, int n, double jitter_std = 0.0,
                                    std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<util::TimePoint> out;
  double t = 1000.0;
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<util::TimePoint>(t));
    t += period + (jitter_std > 0.0 ? rng.normal(0.0, jitter_std) : 0.0);
  }
  return out;
}

std::vector<util::TimePoint> random_times(int n, std::uint64_t seed = 2) {
  util::Rng rng(seed);
  std::vector<util::TimePoint> out;
  util::TimePoint t = 1000;
  for (int i = 0; i < n; ++i) {
    t += 1 + static_cast<util::TimePoint>(rng.exponential(600.0));
    out.push_back(t);
  }
  return out;
}

TEST(PeriodicityTest, PerfectBeaconIsAutomated) {
  const PeriodicityDetector detector;
  const auto result = detector.test(beacon(600.0, 100));
  EXPECT_TRUE(result.automated);
  EXPECT_NEAR(result.period, 600.0, 1.0);
  EXPECT_NEAR(result.divergence, 0.0, 1e-9);
}

TEST(PeriodicityTest, JitteredBeaconStillAutomated) {
  const PeriodicityDetector detector;  // W = 10 s
  const auto result = detector.test(beacon(600.0, 100, 3.0));
  EXPECT_TRUE(result.automated);
  EXPECT_NEAR(result.period, 600.0, 12.0);
}

TEST(PeriodicityTest, BeaconWithOutliersStillAutomated) {
  // Insert a couple of large gaps (missed beacons) — the failure mode that
  // breaks the stddev strawman but not the dynamic histogram (§IV-C).
  auto times = beacon(600.0, 100, 2.0);
  times[40] += 5000;  // shifts two intervals
  times[70] += 9000;
  std::sort(times.begin(), times.end());
  const PeriodicityDetector detector;
  const auto result = detector.test(times);
  EXPECT_TRUE(result.automated);

  const StdDevDetector stddev;
  EXPECT_FALSE(stddev.test(times).automated);
}

TEST(PeriodicityTest, RandomBrowsingNotAutomated) {
  const PeriodicityDetector detector;
  EXPECT_FALSE(detector.test(random_times(100)).automated);
}

TEST(PeriodicityTest, TooFewConnectionsNotAutomated) {
  const PeriodicityDetector detector;  // min_intervals = 4
  EXPECT_FALSE(detector.test(beacon(600.0, 4)).automated);  // 3 intervals
  EXPECT_TRUE(detector.test(beacon(600.0, 6)).automated);   // 5 intervals
}

TEST(PeriodicityTest, ThresholdZeroAcceptsOnlyPureBeacons) {
  PeriodicityDetector::Params params;
  params.jeffrey_threshold = 0.0;
  const PeriodicityDetector detector(params);
  EXPECT_TRUE(detector.test(beacon(600.0, 50)).automated);
  auto times = beacon(600.0, 50);
  times.push_back(times.back() + 50);  // one stray interval
  EXPECT_FALSE(detector.test(times).automated);
}

// Table II property: with W fixed, raising JT can only label more series
// automated; with JT fixed, raising W can only help a jittered beacon.
class JeffreyMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(JeffreyMonotonicity, LargerThresholdAdmitsSuperset) {
  const double jitter = GetParam();
  int admitted_low = 0;
  int admitted_high = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto times = beacon(300.0, 60, jitter, seed);
    PeriodicityDetector::Params low;
    low.jeffrey_threshold = 0.034;
    PeriodicityDetector::Params high;
    high.jeffrey_threshold = 0.35;
    const bool low_auto = PeriodicityDetector(low).test(times).automated;
    const bool high_auto = PeriodicityDetector(high).test(times).automated;
    if (low_auto) {
      ++admitted_low;
      EXPECT_TRUE(high_auto) << "JT monotonicity violated (seed " << seed << ")";
    }
    if (high_auto) ++admitted_high;
  }
  EXPECT_GE(admitted_high, admitted_low);
}

INSTANTIATE_TEST_SUITE_P(JitterLevels, JeffreyMonotonicity,
                         ::testing::Values(0.0, 2.0, 8.0, 25.0, 80.0));

TEST(StdDevDetectorTest, CleanBeaconDetected) {
  const StdDevDetector detector;
  EXPECT_TRUE(detector.test(beacon(600.0, 50, 1.0)).automated);
}

TEST(StdDevDetectorTest, SingleOutlierBreaksIt) {
  auto times = beacon(600.0, 50, 1.0);
  times.back() += 40000;  // one huge final gap
  const StdDevDetector detector;
  EXPECT_FALSE(detector.test(times).automated);
}

TEST(AutocorrDetectorTest, BeaconDetected) {
  // Baselines get a jitter-free beacon: per-step jitter accumulates into
  // phase drift, which slot-based methods tolerate far worse than the
  // dynamic histogram (that asymmetry is the ablation bench's point).
  const AutocorrDetector detector;
  const auto result = detector.test(beacon(300.0, 80));
  EXPECT_TRUE(result.automated);
  EXPECT_NEAR(result.period, 300.0, 30.0);
}

TEST(AutocorrDetectorTest, RandomNotDetected) {
  const AutocorrDetector detector;
  EXPECT_FALSE(detector.test(random_times(80)).automated);
}

TEST(FftTest, RadixTwoMatchesAnalyticSine) {
  const std::size_t n = 64;
  std::vector<double> re(n);
  std::vector<double> im(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = std::sin(2.0 * 3.141592653589793 * 4.0 * static_cast<double>(i) /
                     static_cast<double>(n));
  }
  fft_radix2(re, im);
  // All energy should sit at bins 4 and n-4.
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = std::sqrt(re[i] * re[i] + im[i] * im[i]);
    if (i == 4 || i == n - 4) {
      EXPECT_NEAR(mag, static_cast<double>(n) / 2.0, 1e-6);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-6);
    }
  }
}

TEST(FftDetectorTest, BeaconDetected) {
  const FftDetector detector;
  const auto result = detector.test(beacon(300.0, 120));
  EXPECT_TRUE(result.automated);
}

TEST(FftDetectorTest, RandomNotDetected) {
  const FftDetector detector;
  EXPECT_FALSE(detector.test(random_times(120)).automated);
}

}  // namespace
}  // namespace eid::timing
