// The L1 metric variant of the periodicity detector (§IV-C: "we
// experimented with other statistical metrics (e.g., L1 distance), but the
// results were very similar").
#include <gtest/gtest.h>

#include "timing/periodicity.h"
#include "util/rng.h"

namespace eid::timing {
namespace {

std::vector<util::TimePoint> beacon(double period, int n, double jitter,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<util::TimePoint> out;
  double t = 500.0;
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<util::TimePoint>(t));
    t += period + (jitter > 0 ? rng.normal(0.0, jitter) : 0.0);
  }
  return out;
}

std::vector<util::TimePoint> browsing(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<util::TimePoint> out;
  util::TimePoint t = 500;
  for (int i = 0; i < 60; ++i) {
    t += 1 + static_cast<util::TimePoint>(rng.exponential(400.0));
    out.push_back(t);
  }
  return out;
}

PeriodicityDetector l1_detector(double threshold) {
  PeriodicityDetector::Params params;
  params.metric = HistogramMetric::L1;
  params.jeffrey_threshold = threshold;  // reused as the L1 threshold
  return PeriodicityDetector(params);
}

TEST(L1MetricTest, PerfectBeaconHasZeroDistance) {
  const auto result = l1_detector(0.1).test(beacon(600, 60, 0.0, 1));
  EXPECT_TRUE(result.automated);
  EXPECT_NEAR(result.divergence, 0.0, 1e-9);
}

TEST(L1MetricTest, RandomTrafficRejected) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_FALSE(l1_detector(0.1).test(browsing(seed)).automated) << seed;
  }
}

TEST(L1MetricTest, AgreesWithJeffreyOnCleanInputs) {
  // The paper found the two metrics "very similar": on clean beacons and
  // clean browsing they must agree; thresholds are metric-specific
  // (L1 0.16 corresponds roughly to Jeffrey 0.06 for a two-bin split).
  const PeriodicityDetector jeffrey;  // defaults
  const PeriodicityDetector l1 = l1_detector(0.16);
  int agree = 0;
  int total = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    for (const double jitter : {0.0, 1.0, 2.0}) {
      const auto times = beacon(300, 80, jitter, seed);
      const bool a = jeffrey.test(times).automated;
      const bool b = l1.test(times).automated;
      ++total;
      agree += a == b ? 1 : 0;
    }
    const auto noise = browsing(seed);
    ++total;
    agree += (jeffrey.test(noise).automated == l1.test(noise).automated) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree) / total, 0.9);
}

TEST(L1MetricTest, DistanceMonotoneInContamination) {
  // Adding stray intervals can only increase the L1 distance to periodic.
  std::vector<double> intervals(50, 600.0);
  const PeriodicityDetector detector = l1_detector(1e9);
  double previous = detector.test_intervals(intervals).divergence;
  for (int stray = 0; stray < 5; ++stray) {
    intervals.push_back(5000.0 + stray * 700.0);
    const double d = detector.test_intervals(intervals).divergence;
    EXPECT_GE(d, previous - 1e-12);
    previous = d;
  }
}

TEST(L1MetricTest, BoundedByTwo) {
  // L1 over normalized histograms is at most 2 (fully disjoint).
  const PeriodicityDetector detector = l1_detector(1e9);
  std::vector<double> intervals;
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) intervals.push_back(rng.uniform_double(1, 50000));
  EXPECT_LE(detector.test_intervals(intervals).divergence, 2.0 + 1e-12);
}

}  // namespace
}  // namespace eid::timing
