// Unit coverage for the real-time building blocks: the SimClock drivers
// (monotonicity contracts), the tick/window geometry of WindowConfig, and
// the WindowAccumulator's bucket lifecycle (arrival-order replay, day
// close, window expiry, memory bound). The end-to-end batch/continuous
// equivalence lives in rt_continuous_test.cpp.
#include "rt/clock.h"

#include <gtest/gtest.h>

#include <vector>

#include "rt/window.h"

namespace eid::rt {
namespace {

logs::ConnEvent event_at(util::TimePoint ts) {
  logs::ConnEvent event;
  event.ts = ts;
  event.host = "h1";
  event.domain = "example.com";
  return event;
}

TEST(RtClockTest, ManualClockClampsBackwardsSets) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.set(500);
  EXPECT_EQ(clock.now(), 500);
  clock.set(200);  // backwards: clamped
  EXPECT_EQ(clock.now(), 500);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 550);
  clock.observe(10'000);  // manual driver ignores event time
  EXPECT_EQ(clock.now(), 550);
}

TEST(RtClockTest, ReplayClockIsHighWaterMarkOfObservations) {
  ReplayClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.observe(1000);
  clock.observe(400);  // out-of-order event: time does not regress
  clock.observe(1200);
  EXPECT_EQ(clock.now(), 1200);
}

TEST(RtClockTest, RealTimeClockAdvancesFromAnchor) {
  RealTimeClock clock(50'000);
  const util::TimePoint first = clock.now();
  EXPECT_GE(first, 50'000);
  clock.observe(1);  // live driver ignores event time
  EXPECT_GE(clock.now(), first);
}

TEST(RtWindowTest, ConfigValidityRequiresDayTiling) {
  WindowConfig config;  // defaults: 5 min ticks, 24 h window
  EXPECT_TRUE(config.valid());
  EXPECT_EQ(config.window_ticks(), 288);

  config.tick_seconds = 7;  // does not tile 86400
  EXPECT_FALSE(config.valid());
  config.tick_seconds = 3600;
  config.window_seconds = 5400;  // not a whole number of ticks
  EXPECT_FALSE(config.valid());
  config.window_seconds = 3600;  // window == one tick: minimal valid
  EXPECT_TRUE(config.valid());
  config.window_seconds = 0;
  EXPECT_FALSE(config.valid());
  config = WindowConfig{86400, 86400};  // one tick per day == batch mode
  EXPECT_TRUE(config.valid());
}

TEST(RtWindowTest, TickGeometryFloorsNegativeTime) {
  WindowConfig config;
  config.tick_seconds = 300;
  EXPECT_EQ(config.tick_of(0), 0);
  EXPECT_EQ(config.tick_of(299), 0);
  EXPECT_EQ(config.tick_of(300), 1);
  EXPECT_EQ(config.tick_of(-1), -1);
  EXPECT_EQ(config.tick_of(-300), -1);
  EXPECT_EQ(config.tick_of(-301), -2);
  EXPECT_EQ(config.tick_end(0), 300);
  EXPECT_EQ(config.tick_end(-1), 0);
}

TEST(RtWindowTest, BucketsReplayInArrivalOrder) {
  WindowConfig config{300, 900};  // 3-tick window
  WindowAccumulator window(config);
  window.append(event_at(10), 0, 100);
  window.append(event_at(5), 0, 100);  // out-of-order arrival, same bucket
  window.append(event_at(310), 1, 100);
  ASSERT_EQ(window.bucket_count(), 2u);
  EXPECT_EQ(window.buffered_events(), 3u);
  EXPECT_EQ(window.window_events(1), 3u);

  std::vector<util::TimePoint> seen;
  window.for_each_window_chunk(1, [&](std::span<const logs::ConnEvent> chunk) {
    for (const auto& event : chunk) seen.push_back(event.ts);
  });
  EXPECT_EQ(seen, (std::vector<util::TimePoint>{10, 5, 310}));

  seen.clear();
  window.for_each_day_chunk(100, [&](std::span<const logs::ConnEvent> chunk) {
    for (const auto& event : chunk) seen.push_back(event.ts);
  });
  EXPECT_EQ(seen, (std::vector<util::TimePoint>{10, 5, 310}));
}

TEST(RtWindowTest, WindowSlidesButNeverTruncatesAnOpenDay) {
  WindowConfig config{300, 600};  // 2-tick window
  WindowAccumulator window(config);
  window.append(event_at(10), 0, 100);
  window.append(event_at(310), 1, 100);
  window.append(event_at(910), 3, 100);

  // Tick 3's window is {2, 3}: tick 0/1 buckets are outside it...
  EXPECT_EQ(window.window_events(3), 1u);
  // ...but day 100 is still open, so expiry must not drop them.
  EXPECT_EQ(window.expire(3), 0u);
  EXPECT_EQ(window.buffered_events(), 3u);

  // Day close makes the slid-out buckets reclaimable; the in-window
  // bucket stays.
  window.close_day(100);
  EXPECT_EQ(window.expire(3), 2u);
  EXPECT_EQ(window.buffered_events(), 1u);
  EXPECT_EQ(window.bucket_count(), 1u);

  // The closed-day bucket still replays for the window until it slides out.
  EXPECT_EQ(window.window_events(3), 1u);
  EXPECT_EQ(window.expire(5), 1u);
  EXPECT_EQ(window.buffered_events(), 0u);
}

TEST(RtWindowTest, DayBoundaryInsideOneTickSplitsBuckets) {
  // Chunks tagged with a new day must never share a bucket with the old
  // day, even at the same tick — day replay is keyed by bucket day tags.
  WindowConfig config{86400, 86400};
  WindowAccumulator window(config);
  window.append(event_at(86'390), 0, 100);
  window.append(event_at(86'401), 1, 101);
  window.append(event_at(86'410), 1, 101);
  ASSERT_EQ(window.bucket_count(), 2u);

  std::size_t day0 = 0;
  std::size_t day1 = 0;
  window.for_each_day_chunk(
      100, [&](std::span<const logs::ConnEvent> chunk) { day0 += chunk.size(); });
  window.for_each_day_chunk(
      101, [&](std::span<const logs::ConnEvent> chunk) { day1 += chunk.size(); });
  EXPECT_EQ(day0, 1u);
  EXPECT_EQ(day1, 2u);
}

}  // namespace
}  // namespace eid::rt
