// The BENCH_perf.json section writer: two independent benches merge their
// sections into one tracked file, so the scanner must preserve sections it
// does not own — including past values it did not write itself.
#include "../bench/bench_common.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

namespace eid::bench {
namespace {

class BenchJsonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("bench_json_test_" + std::to_string(::getpid()) + ".json"))
                .string();
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read() const {
    std::ifstream in(path_);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  std::string path_;
};

TEST_F(BenchJsonTest, CreatesFileWithSection) {
  ASSERT_TRUE(write_json_section(path_, "micro", "{\"a\": 1}"));
  const std::string text = read();
  EXPECT_NE(text.find("\"micro\": {\"a\": 1}"), std::string::npos);
}

TEST_F(BenchJsonTest, SecondWriterPreservesFirstSection) {
  ASSERT_TRUE(write_json_section(path_, "micro", "{\"a\": [1, {\"b\": 2}]}"));
  ASSERT_TRUE(write_json_section(path_, "throughput", "{\"c\": 3}"));
  const std::string text = read();
  EXPECT_NE(text.find("\"micro\": {\"a\": [1, {\"b\": 2}]}"), std::string::npos);
  EXPECT_NE(text.find("\"throughput\": {\"c\": 3}"), std::string::npos);
}

TEST_F(BenchJsonTest, RewriteReplacesOnlyOwnSection) {
  ASSERT_TRUE(write_json_section(path_, "micro", "{\"old\": true}"));
  ASSERT_TRUE(write_json_section(path_, "throughput", "{\"keep\": 1}"));
  ASSERT_TRUE(write_json_section(path_, "micro", "{\"new\": true}"));
  const std::string text = read();
  EXPECT_EQ(text.find("\"old\""), std::string::npos);
  EXPECT_NE(text.find("\"new\": true"), std::string::npos);
  EXPECT_NE(text.find("\"keep\": 1"), std::string::npos);
}

TEST_F(BenchJsonTest, PreservesForeignScalarAndStringSections) {
  // Sections this repo's benches never write must still round-trip: bare
  // scalars terminated by '}' and strings containing commas and braces.
  {
    std::ofstream out(path_);
    out << "{\"tag\": \"x,}y\", \"micro\": {\"a\": 1}, \"schema_version\": 2}";
  }
  ASSERT_TRUE(write_json_section(path_, "throughput", "{\"c\": 3}"));
  const std::string text = read();
  EXPECT_NE(text.find("\"tag\": \"x,}y\""), std::string::npos);
  EXPECT_NE(text.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"micro\": {\"a\": 1}"), std::string::npos);
  EXPECT_NE(text.find("\"throughput\": {\"c\": 3}"), std::string::npos);
}

TEST_F(BenchJsonTest, MalformedFileIsReplacedNotCrashed) {
  {
    std::ofstream out(path_);
    out << "{\"micro\": {unterminated";
  }
  ASSERT_TRUE(write_json_section(path_, "throughput", "{\"c\": 3}"));
  const std::string text = read();
  EXPECT_NE(text.find("\"throughput\": {\"c\": 3}"), std::string::npos);
}

TEST_F(BenchJsonTest, TakeJsonFlagParsesAndStrips) {
  char prog[] = "bench";
  char keep[] = "--days";
  char keep2[] = "3";
  char flag[] = "--json=out.json";
  char* argv[] = {prog, keep, flag, keep2, nullptr};
  int argc = 4;
  EXPECT_EQ(take_json_flag(argc, argv, "default.json"), "out.json");
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--days");
  EXPECT_STREQ(argv[2], "3");

  char bare[] = "--json";
  char* argv2[] = {prog, bare, nullptr};
  int argc2 = 2;
  EXPECT_EQ(take_json_flag(argc2, argv2, "default.json"), "default.json");
  EXPECT_EQ(argc2, 1);

  int argc3 = 1;
  char* argv3[] = {prog, nullptr};
  EXPECT_EQ(take_json_flag(argc3, argv3, "default.json"), "");
}

}  // namespace
}  // namespace eid::bench
