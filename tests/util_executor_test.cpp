// util::Executor — the persistent worker pool. The contract under test:
// identical fan-out partitions (and therefore identical results) to the
// spawning util::parallel_ranges for every pool size, zero thread
// construction in steady state, a draining destructor that never drops
// submitted work, and exception propagation from both entry points.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/executor.h"
#include "util/parallel.h"

namespace eid::util {
namespace {

// Fill one slot per index, tagged with the owning range — any scheduling
// dependence would disagree with the spawning reference below.
std::vector<std::size_t> fan_out_slots(Executor* executor, std::size_t n,
                                       std::size_t n_threads) {
  std::vector<std::size_t> slots(n, 0);
  parallel_ranges(executor, n, n_threads,
                  [&](std::size_t range, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      slots[i] = 1000 * range + i;
                    }
                  });
  return slots;
}

TEST(ExecutorTest, MatchesSpawningPartitionForAnyPoolSize) {
  const std::size_t n = 103;
  for (const std::size_t n_threads : {1u, 2u, 3u, 8u}) {
    const auto reference = fan_out_slots(nullptr, n, n_threads);
    for (const std::size_t workers : {0u, 1u, 2u, 7u}) {
      Executor executor(workers);
      EXPECT_EQ(fan_out_slots(&executor, n, n_threads), reference)
          << workers << " workers, " << n_threads << " threads";
    }
  }
}

TEST(ExecutorTest, ReuseSpawnsNoFurtherThreads) {
  Executor executor(3);
  const std::uint64_t spawned = thread_spawn_count();
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    executor.parallel_ranges(64, 8,
                             [&](std::size_t, std::size_t begin,
                                 std::size_t end) {
                               sum.fetch_add(static_cast<int>(end - begin));
                             });
    EXPECT_EQ(sum.load(), 64);
    Executor::TaskHandle handle = executor.submit([] {});
    handle.wait();
  }
  // The whole loop ran on the three threads built by the constructor.
  EXPECT_EQ(thread_spawn_count(), spawned);
  EXPECT_GT(executor.tasks_dispatched(), 0u);
}

TEST(ExecutorTest, DestructorDrainsPendingSubmits) {
  std::atomic<int> completed{0};
  {
    Executor executor(2);
    for (int i = 0; i < 8; ++i) {
      executor.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        completed.fetch_add(1);
      });
    }
    // Handles dropped; the destructor must still run every queued task.
  }
  EXPECT_EQ(completed.load(), 8);
}

TEST(ExecutorTest, FanOutPropagatesWorkerException) {
  Executor executor(3);
  const auto throwing = [&] {
    executor.parallel_ranges(40, 4,
                             [](std::size_t range, std::size_t, std::size_t) {
                               if (range == 2) {
                                 throw std::runtime_error("range 2 failed");
                               }
                             });
  };
  EXPECT_THROW(throwing(), std::runtime_error);
  // The pool survives a failed fan-out.
  EXPECT_EQ(fan_out_slots(&executor, 10, 2), fan_out_slots(nullptr, 10, 2));
}

TEST(ExecutorTest, SubmitPropagatesExceptionThroughWait) {
  Executor executor(1);
  Executor::TaskHandle handle =
      executor.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(handle.wait(), std::runtime_error);
  // A waited (or default) handle is inert.
  EXPECT_FALSE(handle.valid());
  handle.wait();
}

// The pipelined day commit captures objects that themselves reference the
// pool (a DayGraph holds the pipeline's executor shared_ptr). wait()
// guarantees those captures are gone before it returns, so releasing the
// caller's own executor reference right after wait() must never leave the
// last reference on the worker — which would run ~Executor on its own
// worker thread (a self-join). Regression for exactly that shutdown race.
TEST(ExecutorTest, WaitedTaskCapturesAreDestroyedBeforeWaitReturns) {
  for (int round = 0; round < 100; ++round) {
    auto executor = std::make_shared<Executor>(1);
    Executor::TaskHandle handle = executor->submit([executor] {});
    handle.wait();
    executor.reset();  // must be the caller-side ~Executor, every time
  }
}

TEST(ExecutorTest, NestedFanOutFromWorkerRunsInline) {
  Executor executor(2);
  std::vector<std::size_t> outer;
  Executor::TaskHandle handle = executor.submit([&] {
    EXPECT_TRUE(executor.on_worker_thread());
    outer = fan_out_slots(&executor, 37, 8);  // must not deadlock the pool
  });
  handle.wait();
  EXPECT_EQ(outer, fan_out_slots(nullptr, 37, 8));
}

TEST(ExecutorTest, ZeroWorkerPoolRunsEverythingInline) {
  Executor executor(0);
  EXPECT_EQ(executor.worker_count(), 0u);
  EXPECT_FALSE(executor.on_worker_thread());
  EXPECT_EQ(fan_out_slots(&executor, 9, 4), fan_out_slots(nullptr, 9, 4));
  bool ran = false;
  Executor::TaskHandle handle = executor.submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // inline: done before submit returned
  handle.wait();
}

TEST(ExecutorTest, ConcurrentFanOutsFromManyThreads) {
  Executor executor(3);
  std::vector<std::thread> callers;
  std::vector<long> sums(4, 0);
  for (std::size_t c = 0; c < sums.size(); ++c) {
    callers.emplace_back([&executor, &sums, c] {
      for (int round = 0; round < 25; ++round) {
        std::vector<long> slots(50, 0);
        executor.parallel_ranges(
            slots.size(), 4,
            [&](std::size_t, std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) {
                slots[i] = static_cast<long>(i);
              }
            });
        sums[c] += std::accumulate(slots.begin(), slots.end(), 0L);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  for (const long sum : sums) EXPECT_EQ(sum, 25L * (49 * 50 / 2));
}

}  // namespace
}  // namespace eid::util
