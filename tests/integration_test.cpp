// End-to-end integration tests: simulate -> reduce -> profile -> detect,
// on small but complete worlds.
#include <gtest/gtest.h>

#include "eval/ac_runner.h"
#include "eval/lanl_runner.h"

namespace eid {
namespace {

sim::LanlConfig small_lanl() {
  sim::LanlConfig config;
  config.n_hosts = 150;
  config.n_servers = 4;
  config.n_popular = 80;
  config.tail_per_day = 40;
  config.automated_tail_per_day = 3;
  config.server_tail_per_day = 20;
  return config;
}

TEST(LanlIntegrationTest, HintedCaseDetectsCampaignDomains) {
  sim::LanlScenario scenario(small_lanl());
  eval::LanlRunner runner(scenario);
  runner.bootstrap();

  // Walk March up to the first case-3 day, evaluating that case.
  const sim::LanlCase* target = nullptr;
  for (const auto& challenge : scenario.cases()) {
    if (challenge.case_id == 3) {
      target = &challenge;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  for (util::Day day = scenario.challenge_begin(); day < target->day; ++day) {
    runner.finish_day(day);
  }
  const core::DayAnalysis analysis = runner.analyze_day(target->day);
  const eval::LanlDayResult result = runner.run_case(*target, analysis);

  // The C&C domain is found via the multi-host beacon rule, and most of the
  // delivery chain via similarity.
  EXPECT_GE(result.counts.tp, target->answer_domains.size() - 1);
  EXPECT_LE(result.counts.fp, 2u);
  // All victims recovered from a single hint host.
  for (const auto& victim : target->victim_hosts) {
    EXPECT_NE(std::find(result.detected_hosts.begin(), result.detected_hosts.end(),
                        victim),
              result.detected_hosts.end())
        << victim;
  }
}

TEST(LanlIntegrationTest, RareExtractionShrinksWithHistory) {
  sim::LanlScenario scenario(small_lanl());
  eval::LanlRunner runner(scenario);
  // Without bootstrap everything is new.
  const core::DayAnalysis cold = runner.analyze_day(scenario.challenge_begin());
  runner.bootstrap();
  const core::DayAnalysis warm = runner.analyze_day(scenario.challenge_begin());
  // The daily tail churn stays rare by construction, but everything stable
  // (popular zipf tail, internal-adjacent names) leaves the rare set.
  EXPECT_LT(warm.rare.size(), cold.rare.size());
  EXPECT_LT(warm.new_domains, cold.new_domains);
}

sim::AcConfig small_ac() {
  sim::AcConfig config;
  config.n_hosts = 150;
  config.n_popular = 80;
  config.tail_per_day = 40;
  config.automated_tail_per_day = 3;
  config.grayware_per_day = 2;
  config.campaigns_per_week = 5.0;
  return config;
}

TEST(AcIntegrationTest, TrainedPipelineFindsCampaignsInOperation) {
  sim::AcScenario scenario(small_ac());
  eval::AcRunnerConfig config;
  config.training_days = 10;
  eval::AcRunner runner(scenario, config);
  const core::TrainingReport training = runner.train();
  ASSERT_GT(training.cc_rows, 10u);
  ASSERT_GT(training.cc_positive, 0u);

  // One week of operation: the C&C detector should flag real campaign
  // domains with decent precision.
  std::size_t days = 0;
  eval::ValidationCounts cc_counts;
  runner.run_operation([&](util::Day day, const core::DayAnalysis& analysis) {
    if (++days > 7) return;
    std::vector<std::string> names;
    for (const auto& det : runner.pipeline().detect_cc(analysis, 0.4)) {
      names.push_back(det.name);
    }
    cc_counts += eval::validate_detections(names, scenario.oracle());
    (void)day;
  });
  EXPECT_GT(cc_counts.total(), 0u);
  EXPECT_GT(cc_counts.tdr(), 0.5);
}

TEST(AcIntegrationTest, TrainingReportHasSeparatingScores) {
  sim::AcScenario scenario(small_ac());
  eval::AcRunnerConfig config;
  config.training_days = 10;
  eval::AcRunner runner(scenario, config);
  const core::TrainingReport training = runner.train();
  double reported_sum = 0.0;
  std::size_t reported_n = 0;
  double legit_sum = 0.0;
  std::size_t legit_n = 0;
  for (const auto& [score, reported] : training.cc_training_scores) {
    if (reported) {
      reported_sum += score;
      ++reported_n;
    } else {
      legit_sum += score;
      ++legit_n;
    }
  }
  ASSERT_GT(reported_n, 0u);
  ASSERT_GT(legit_n, 0u);
  // Fig. 5 shape: reported automated domains score higher than legitimate.
  EXPECT_GT(reported_sum / reported_n, legit_sum / legit_n);
}

TEST(AcIntegrationTest, DhcpChurnDoesNotBreakHostIdentity) {
  sim::AcScenario scenario(small_ac());
  auto& sim = scenario.simulator();
  // Same host across two days must keep its identity through DHCP churn.
  const auto day1 = sim.reduced_day(scenario.training_begin());
  const auto day2 = sim.reduced_day(scenario.training_begin() + 1);
  std::unordered_set<std::string> hosts1;
  for (const auto& ev : day1) hosts1.insert(ev.host);
  std::unordered_set<std::string> hosts2;
  for (const auto& ev : day2) hosts2.insert(ev.host);
  std::size_t common = 0;
  for (const auto& host : hosts1) {
    if (hosts2.contains(host)) ++common;
  }
  // Nearly all workstations appear on both days under the same name.
  EXPECT_GT(common, hosts1.size() * 8 / 10);
}

}  // namespace
}  // namespace eid
