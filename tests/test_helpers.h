// Shared builders for feature/core tests: hand-crafted days with beacons,
// browsing, and an in-memory WHOIS source.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "features/whois_source.h"
#include "graph/day_graph.h"
#include "logs/records.h"

namespace eid::test {

/// WHOIS source backed by a plain map (no failure injection).
class MapWhois final : public features::WhoisSource {
 public:
  void add(const std::string& domain, util::Day registered, util::Day expires) {
    records_[domain] = features::WhoisInfo{registered, expires};
  }

  std::optional<features::WhoisInfo> lookup(
      const std::string& domain) const override {
    auto it = records_.find(domain);
    if (it == records_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::string, features::WhoisInfo> records_;
};

/// Incrementally builds a DayGraph from compact event descriptions.
class DayBuilder {
 public:
  DayBuilder& visit(const std::string& host, const std::string& domain,
                    util::TimePoint ts, util::Ipv4 ip = {0},
                    const std::string& ua = "", bool referer = false) {
    logs::ConnEvent ev;
    ev.ts = ts;
    ev.host = host;
    ev.domain = domain;
    if (ip.value != 0) ev.dest_ip = ip;
    ev.user_agent = ua;
    ev.has_referer = referer;
    ev.has_http_context = true;
    events_.push_back(std::move(ev));
    return *this;
  }

  /// A beacon series host->domain every `period` seconds, n connections.
  DayBuilder& beacon(const std::string& host, const std::string& domain,
                     util::TimePoint start, double period, int n,
                     util::Ipv4 ip = {0}, const std::string& ua = "") {
    for (int i = 0; i < n; ++i) {
      visit(host, domain, start + static_cast<util::TimePoint>(i * period), ip, ua);
    }
    return *this;
  }

  graph::DayGraph build() const {
    graph::DayGraph graph;
    for (const auto& ev : events_) graph.add_event(ev);
    graph.finalize();
    return graph;
  }

  const std::vector<logs::ConnEvent>& events() const { return events_; }

 private:
  std::vector<logs::ConnEvent> events_;
};

/// Structural JSON validator: balanced brackets outside strings, escape-
/// aware string scanning, exactly one top-level value. Not a full parser
/// (no literal/number grammar), but enough to catch the truncation and
/// quoting bugs a hand-rolled writer can produce.
inline bool json_well_formed(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool seen_value = false;
  std::vector<char> stack;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        if (depth == 0) seen_value = true;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        ++depth;
        break;
      case '}':
      case ']': {
        if (stack.empty()) return false;
        const char open = stack.back();
        stack.pop_back();
        if ((c == '}') != (open == '{')) return false;
        if (--depth == 0) seen_value = true;
        break;
      }
      default:
        break;
    }
  }
  return depth == 0 && !in_string && seen_value;
}

}  // namespace eid::test
