// The checkpoint contract (acceptance criterion of the storage subsystem):
// a detector saved after N operation days and restored into a fresh
// detector produces a bit-identical DayReport for day N+1 versus the
// uninterrupted run — across the full parallelism matrix, because
// threads/shards are config state the checkpoint carries too.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "api/detector.h"
#include "api/event_source.h"
#include "core/report_json.h"
#include "profile/top_sites.h"
#include "sim/ac.h"
#include "storage/state.h"

namespace eid {
namespace {

sim::AcConfig small_world() {
  sim::AcConfig config;
  config.seed = 23;
  config.n_hosts = 60;
  config.n_popular = 30;
  config.tail_per_day = 15;
  config.automated_tail_per_day = 2;
  config.grayware_per_day = 1;
  config.campaigns_per_week = 2.0;
  return config;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-checkpoint-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    scenario_ = std::make_unique<sim::AcScenario>(small_world());
    // Pre-generate every day once (the simulator is deterministic but
    // forward-only); all detector runs then share identical inputs.
    const util::Day jan = scenario_->training_begin();
    for (int d = 0; d < kBootstrapDays + kLabeledDays; ++d) {
      training_.emplace_back(jan + d,
                             scenario_->simulator().reduced_day(jan + d));
    }
    const util::Day feb = scenario_->operation_begin();
    for (int d = 0; d <= kOperationDays; ++d) {
      operation_.emplace_back(feb + d,
                              scenario_->simulator().reduced_day(feb + d));
    }
    seeds_.domains = scenario_->ioc_seeds();
    top_sites_.add("top-whitelisted.example");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static constexpr int kBootstrapDays = 4;
  static constexpr int kLabeledDays = 6;
  static constexpr int kOperationDays = 2;  ///< N; day N+1 is compared

  api::Detector make_detector(core::Parallelism parallelism) {
    core::PipelineConfig config;
    config.parallelism = parallelism;
    api::Detector detector(config, scenario_->simulator().whois());
    detector.set_top_sites(&top_sites_);
    return detector;
  }

  void train(api::Detector& detector) {
    const sim::IntelOracle& oracle = scenario_->oracle();
    const core::LabelFn intel = [&oracle](const std::string& domain) {
      return oracle.vt_reported(domain);
    };
    for (int d = 0; d < kBootstrapDays; ++d) {
      api::VectorSource source(training_[d].first, &training_[d].second);
      detector.ingest(source);
    }
    for (int d = kBootstrapDays; d < kBootstrapDays + kLabeledDays; ++d) {
      api::VectorSource source(training_[d].first, &training_[d].second);
      detector.ingest(source, intel);
    }
    detector.finalize_training();
    detector.set_intel_domains(seeds_.domains);
  }

  core::DayReport run_operation_day(api::Detector& detector, int index) {
    api::VectorSource source(operation_[index].first,
                             &operation_[index].second);
    return detector.run_day(source, operation_[index].first, seeds_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<sim::AcScenario> scenario_;
  std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> training_;
  std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> operation_;
  core::SocSeeds seeds_;
  profile::TopSitesList top_sites_;
};

TEST_F(CheckpointTest, RestoredDetectorReproducesDayNPlusOneBitExactly) {
  for (const std::size_t threads : {1u, 8u}) {
    for (const std::size_t shards : {1u, 4u}) {
      SCOPED_TRACE(std::to_string(threads) + " threads, " +
                   std::to_string(shards) + " shards");
      const auto state_path =
          dir_ / ("state-" + std::to_string(threads) + "-" +
                  std::to_string(shards) + ".bin");

      // Uninterrupted run: train, operate N days, checkpoint, day N+1.
      api::Detector uninterrupted =
          make_detector(core::Parallelism{threads, shards});
      train(uninterrupted);
      for (int d = 0; d < kOperationDays; ++d) {
        run_operation_day(uninterrupted, d);
      }
      storage::LoadStatus status;
      ASSERT_TRUE(uninterrupted.save_state(state_path, &status))
          << status.detail;
      const std::string baseline = core::day_report_to_json(
          run_operation_day(uninterrupted, kOperationDays));

      // Fresh detector (default config, no histories, no models): restore
      // everything from the checkpoint, then run day N+1.
      api::Detector restored = make_detector(core::Parallelism{});
      ASSERT_TRUE(restored.load_state(state_path, &status)) << status.detail;
      EXPECT_EQ(restored.pipeline().config().parallelism.threads, threads);
      EXPECT_EQ(restored.pipeline().config().parallelism.shards, shards);
      EXPECT_TRUE(restored.pipeline().models_ready());
      EXPECT_EQ(restored.days_operated(),
                static_cast<std::size_t>(kOperationDays));
      const std::string resumed = core::day_report_to_json(
          run_operation_day(restored, kOperationDays));

      EXPECT_EQ(baseline, resumed);
    }
  }
}

TEST_F(CheckpointTest, CheckpointCarriesHistoriesAndIntel) {
  api::Detector detector = make_detector(core::Parallelism{1, 1});
  train(detector);
  run_operation_day(detector, 0);
  const auto state_path = dir_ / "state.bin";
  ASSERT_TRUE(detector.save_state(state_path));

  api::Detector restored = make_detector(core::Parallelism{1, 1});
  ASSERT_TRUE(restored.load_state(state_path));
  EXPECT_EQ(restored.pipeline().domain_history().size(),
            detector.pipeline().domain_history().size());
  EXPECT_EQ(restored.pipeline().domain_history().days_ingested(),
            detector.pipeline().domain_history().days_ingested());
  EXPECT_EQ(restored.pipeline().ua_history().distinct_uas(),
            detector.pipeline().ua_history().distinct_uas());
  EXPECT_EQ(restored.intel_domains(), detector.intel_domains());
  // The restored whitelist is detector-owned — the original list can go
  // away without dangling.
  ASSERT_NE(restored.pipeline().top_sites(), nullptr);
  EXPECT_NE(restored.pipeline().top_sites(), &top_sites_);
  EXPECT_TRUE(restored.pipeline().top_sites()->contains(
      "top-whitelisted.example"));
  // The intel closure reproduces the IOC membership test.
  const core::LabelFn intel = restored.intel_fn();
  for (const std::string& domain : seeds_.domains) {
    EXPECT_TRUE(intel(domain)) << domain;
  }
  EXPECT_FALSE(intel("definitely-not-an-ioc.example"));
}

TEST_F(CheckpointTest, SaveStateIsAtomicOverExistingCheckpoint) {
  api::Detector detector = make_detector(core::Parallelism{1, 1});
  train(detector);
  const auto state_path = dir_ / "state.bin";
  ASSERT_TRUE(detector.save_state(state_path));
  // Overwrite via the tmp+rename path; the tmp file must not linger.
  run_operation_day(detector, 0);
  ASSERT_TRUE(detector.save_state(state_path));
  EXPECT_FALSE(std::filesystem::exists(state_path.string() + ".tmp"));
  api::Detector restored = make_detector(core::Parallelism{1, 1});
  ASSERT_TRUE(restored.load_state(state_path));
  EXPECT_EQ(restored.days_operated(), 1u);
}

}  // namespace
}  // namespace eid
