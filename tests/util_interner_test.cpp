#include "util/interner.h"

#include <gtest/gtest.h>

namespace eid::util {
namespace {

TEST(InternerTest, AssignsDenseIdsInOrder) {
  Interner interner;
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternerTest, InterningTwiceReturnsSameId) {
  Interner interner;
  const InternId a = interner.intern("example.com");
  const InternId b = interner.intern("example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, NameRoundTrip) {
  Interner interner;
  const InternId id = interner.intern("host-17");
  EXPECT_EQ(interner.name(id), "host-17");
}

TEST(InternerTest, FindDoesNotInsert) {
  Interner interner;
  EXPECT_EQ(interner.find("missing"), kInvalidInternId);
  EXPECT_EQ(interner.size(), 0u);
  interner.intern("present");
  EXPECT_EQ(interner.find("present"), 0u);
}

TEST(InternerTest, CopyRebindsNameTable) {
  // name() serves pointers into the id map's keys; a copy must serve its
  // own storage, not the source's.
  Interner original;
  original.intern("alpha");
  original.intern("beta");
  Interner copy = original;
  original = Interner{};  // drop the source storage
  EXPECT_EQ(copy.name(0), "alpha");
  EXPECT_EQ(copy.name(1), "beta");
  EXPECT_EQ(copy.find("beta"), 1u);
}

TEST(ShardInternerTest, RecordsFirstAppearanceSequence) {
  ShardInterner shard;
  EXPECT_EQ(shard.intern("a", 3), 0u);
  EXPECT_EQ(shard.intern("b", 7), 1u);
  EXPECT_EQ(shard.intern("a", 9), 0u);  // re-intern keeps the first seq
  EXPECT_EQ(shard.first_seq(0), 3u);
  EXPECT_EQ(shard.first_seq(1), 7u);
  EXPECT_EQ(shard.find("b"), 1u);
  EXPECT_EQ(shard.find("missing"), kInvalidInternId);
}

TEST(ShardedInternerTest, MergeReproducesSequentialIds) {
  // Route a stream across shards by a key hash, then merge: global ids
  // must equal what one sequential Interner over the stream assigns.
  const std::vector<std::string> stream = {
      "delta.com", "alpha.com", "delta.com", "zeta.com",  "alpha.com",
      "beta.com",  "zeta.com",  "gamma.com", "delta.com", "epsilon.com"};
  for (const std::size_t n_shards : {1u, 2u, 3u, 5u}) {
    SCOPED_TRACE(std::to_string(n_shards) + " shards");
    Interner sequential;
    ShardedInterner sharded(n_shards);
    std::vector<std::pair<std::size_t, InternId>> locals;  // (shard, local)
    for (std::size_t seq = 0; seq < stream.size(); ++seq) {
      sequential.intern(stream[seq]);
      const std::size_t s =
          std::hash<std::string>{}(stream[seq]) % sharded.shard_count();
      locals.emplace_back(s, sharded.shard(s).intern(stream[seq], seq));
    }
    const InternerMerge merged = sharded.merge();
    ASSERT_EQ(merged.interner.size(), sequential.size());
    for (InternId id = 0; id < sequential.size(); ++id) {
      EXPECT_EQ(merged.interner.name(id), sequential.name(id));
    }
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(merged.to_global[locals[i].first][locals[i].second],
                sequential.find(stream[i]))
          << stream[i];
    }
  }
}

TEST(InternerTest, ManyStringsStayConsistent) {
  Interner interner;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(interner.intern("dom" + std::to_string(i)),
              static_cast<InternId>(i));
  }
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(interner.name(static_cast<InternId>(i)), "dom" + std::to_string(i));
    ASSERT_EQ(interner.find("dom" + std::to_string(i)),
              static_cast<InternId>(i));
  }
}

}  // namespace
}  // namespace eid::util
