#include "util/interner.h"

#include <gtest/gtest.h>

namespace eid::util {
namespace {

TEST(InternerTest, AssignsDenseIdsInOrder) {
  Interner interner;
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternerTest, InterningTwiceReturnsSameId) {
  Interner interner;
  const InternId a = interner.intern("example.com");
  const InternId b = interner.intern("example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, NameRoundTrip) {
  Interner interner;
  const InternId id = interner.intern("host-17");
  EXPECT_EQ(interner.name(id), "host-17");
}

TEST(InternerTest, FindDoesNotInsert) {
  Interner interner;
  EXPECT_EQ(interner.find("missing"), kInvalidInternId);
  EXPECT_EQ(interner.size(), 0u);
  interner.intern("present");
  EXPECT_EQ(interner.find("present"), 0u);
}

TEST(InternerTest, ManyStringsStayConsistent) {
  Interner interner;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(interner.intern("dom" + std::to_string(i)),
              static_cast<InternId>(i));
  }
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(interner.name(static_cast<InternId>(i)), "dom" + std::to_string(i));
    ASSERT_EQ(interner.find("dom" + std::to_string(i)),
              static_cast<InternId>(i));
  }
}

}  // namespace
}  // namespace eid::util
