// Round-trip, corruption and migration coverage for the storage subsystem:
// every DetectorState component survives a binary round trip bit-exactly,
// every corruption mode fails cleanly with the right LoadError, and legacy
// text profiles load through the unchanged profile entry points.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "profile/persistence.h"
#include "storage/container.h"
#include "storage/state.h"
#include "util/binary.h"
#include "util/rng.h"

namespace eid::storage {
namespace {

class StorageStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-storage-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path path(const char* name) const { return dir_ / name; }

  std::filesystem::path dir_;
};

std::string read_bytes(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_bytes(const std::filesystem::path& p, std::string_view bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- Domain history ----

TEST_F(StorageStateTest, DomainHistoryRoundTripEmpty) {
  profile::DomainHistory history;
  ASSERT_TRUE(storage::save_domain_history(history, path("d.bin")));
  LoadStatus status;
  const auto loaded = storage::load_domain_history(path("d.bin"), &status);
  ASSERT_TRUE(loaded.has_value()) << status.detail;
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->days_ingested(), 0u);
}

TEST_F(StorageStateTest, DomainHistoryRoundTripUnicodeAndLongStrings) {
  profile::DomainHistory history;
  const std::string long_domain(8000, 'x');
  history.update({"xn--bcher-kva.example", "日本語ドメイン.example",
                  "emoji-\xF0\x9F\x92\xBB.example", long_domain, "a.com"});
  ASSERT_TRUE(storage::save_domain_history(history, path("d.bin")));
  const auto loaded = storage::load_domain_history(path("d.bin"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 5u);
  EXPECT_EQ(loaded->days_ingested(), 1u);
  EXPECT_FALSE(loaded->is_new("日本語ドメイン.example"));
  EXPECT_FALSE(loaded->is_new(long_domain));
  EXPECT_TRUE(loaded->is_new("other.example"));
}

TEST_F(StorageStateTest, DomainHistoryRoundTripLargeSet) {
  profile::DomainHistory history;
  std::vector<std::string> domains;
  util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    domains.push_back("host-" + std::to_string(rng.next_u64()) + ".example-" +
                      std::to_string(i % 97) + ".com");
  }
  history.update(domains);
  ASSERT_TRUE(storage::save_domain_history(history, path("d.bin")));
  const auto loaded = storage::load_domain_history(path("d.bin"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), history.size());
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(loaded->is_new(domains[static_cast<std::size_t>(i) * 97]));
  }
}

TEST_F(StorageStateTest, LegacyEntryPointAutoDetectsBinary) {
  profile::DomainHistory history;
  history.update({"seen.example"});
  ASSERT_TRUE(storage::save_domain_history(history, path("d.bin")));
  // The profile:: loader (text entry point) must detect the container.
  LoadStatus status;
  const auto loaded = profile::load_domain_history(path("d.bin"), &status);
  ASSERT_TRUE(loaded.has_value()) << status.detail;
  EXPECT_FALSE(loaded->is_new("seen.example"));
}

// ---- UA history ----

TEST_F(StorageStateTest, UaHistoryRoundTripPreservesRarityAndHosts) {
  profile::UaHistory history(3);
  history.observe("Popular/1.0", "h1");
  history.observe("Popular/1.0", "h2");
  history.observe("Popular/1.0", "h3");  // crosses the threshold
  history.observe("Rare/2.0", "h1");
  history.observe("Rare/2.0", "h9");
  history.observe("Unicode/\xE2\x98\x83", "h1");
  ASSERT_TRUE(storage::save_ua_history(history, path("u.bin")));
  LoadStatus status;
  const auto loaded = storage::load_ua_history(path("u.bin"), &status);
  ASSERT_TRUE(loaded.has_value()) << status.detail;
  EXPECT_EQ(loaded->rare_threshold(), 3u);
  EXPECT_EQ(loaded->distinct_uas(), 3u);
  EXPECT_FALSE(loaded->is_rare("Popular/1.0"));
  EXPECT_TRUE(loaded->is_rare("Rare/2.0"));
  EXPECT_EQ(loaded->host_count("Rare/2.0"), 2u);
  EXPECT_TRUE(loaded->is_rare("Unicode/\xE2\x98\x83"));
  // Restored histories keep accumulating with the same semantics.
  auto continued = *loaded;
  continued.observe("Rare/2.0", "h10");
  EXPECT_FALSE(continued.is_rare("Rare/2.0"));
}

TEST_F(StorageStateTest, UaHistoryCarriesTabsAndNewlinesBinaryOnly) {
  // The text format skips UAs with control characters; the container
  // carries them exactly.
  profile::UaHistory history(5);
  history.observe("Weird\tUA\nwith\rcontrols", "h1");
  ASSERT_TRUE(storage::save_ua_history(history, path("u.bin")));
  const auto loaded = storage::load_ua_history(path("u.bin"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->host_count("Weird\tUA\nwith\rcontrols"), 1u);
}

TEST_F(StorageStateTest, UaHistoryRoundTripLargeSharedHosts) {
  profile::UaHistory history(10);
  std::vector<std::string> hosts;
  for (int h = 0; h < 500; ++h) hosts.push_back("ws-" + std::to_string(h));
  util::Rng rng(3);
  for (int u = 0; u < 3000; ++u) {
    const std::string ua = "UA-" + std::to_string(u);
    const std::size_t n = 1 + rng.uniform(9);
    for (std::size_t i = 0; i < n; ++i) {
      history.observe(ua, hosts[rng.uniform(hosts.size())]);
    }
  }
  ASSERT_TRUE(storage::save_ua_history(history, path("u.bin")));
  const auto loaded = storage::load_ua_history(path("u.bin"));
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->distinct_uas(), history.distinct_uas());
  history.for_each_entry([&](const std::string& ua, bool popular,
                             std::span<const std::string_view> hosts_view) {
    EXPECT_EQ(loaded->is_rare(ua), !popular) << ua;
    EXPECT_EQ(loaded->host_count(ua),
              popular ? 10u : hosts_view.size()) << ua;
  });
}

// ---- Models ----

core::ScoredModel exotic_model() {
  core::ScoredModel model;
  model.threshold = 0.4375;
  model.score_offset = -1e-300;
  model.score_scale = 3.14159265358979;
  model.model.intercept = -0.0;
  model.model.weights = {1.0 / 3.0, -2e17, 5e-324};
  model.model.std_errors = {0.1, 0.2, 0.3};
  model.model.t_stats = {3.3, -2.2, 0.0};
  model.model.intercept_std_error = 0.5;
  model.model.r_squared = 0.75;
  model.model.residual_variance = 1e-9;
  model.model.n_samples = 12345;
  model.scaler.restore({0.0, -1.5, 2.25}, {1.0, 1.5, 2.25});
  return model;
}

TEST_F(StorageStateTest, ScoredModelRoundTripsBitExactly) {
  const core::ScoredModel model = exotic_model();
  ASSERT_TRUE(storage::save_scored_model(model, path("m.bin")));
  const auto loaded = storage::load_scored_model(path("m.bin"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->threshold),
            std::bit_cast<std::uint64_t>(model.threshold));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->score_offset),
            std::bit_cast<std::uint64_t>(model.score_offset));
  ASSERT_EQ(loaded->model.weights.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->model.weights[i]),
              std::bit_cast<std::uint64_t>(model.model.weights[i]));
  }
  EXPECT_EQ(loaded->model.n_samples, 12345u);
  EXPECT_EQ(loaded->scaler.mins(), model.scaler.mins());
  EXPECT_EQ(loaded->scaler.maxs(), model.scaler.maxs());
}

// ---- Full detector state ----

DetectorState sample_state() {
  DetectorState state;
  state.config.popularity_threshold = 7;
  state.config.ua_rare_threshold = 4;
  state.config.cc_threshold = 0.44;
  state.config.sim_threshold = 0.65;
  state.config.periodicity.bin_width_seconds = 12.5;
  state.config.periodicity.jeffrey_threshold = 0.055;
  state.config.periodicity.min_intervals = 5;
  state.config.periodicity.metric = timing::HistogramMetric::L1;
  state.config.bp_max_iterations = 8;
  state.config.parallelism = {3, 2};
  state.domain_history.update({"a.com", "b.net", "c.org"});
  state.domain_history.update({"d.io"});
  state.ua_history = profile::UaHistory(4);
  state.ua_history.observe("UA-1", "h1");
  state.ua_history.observe("UA-1", "h2");
  state.has_top_sites = true;
  state.top_sites.add("google.com");
  state.top_sites.add("b.net");  // overlaps the history on purpose
  state.cc_model = exotic_model();
  state.sim_model = exotic_model();
  state.sim_model.threshold = 0.33;
  state.training.whois_age_sum = 1234.5;
  state.training.whois_validity_sum = 6789.25;
  state.training.whois_samples = 42;
  state.training.models_ready = true;
  state.intel_domains = {"evil.example", "c2.example"};
  state.counters.days_operated = 17;
  return state;
}

TEST_F(StorageStateTest, DetectorStateFullRoundTrip) {
  const DetectorState state = sample_state();
  ASSERT_TRUE(storage::save_detector_state(state, path("s.bin")));
  LoadStatus status;
  const auto loaded = storage::load_detector_state(path("s.bin"), &status);
  ASSERT_TRUE(loaded.has_value()) << status.detail;

  EXPECT_EQ(loaded->config.popularity_threshold, 7u);
  EXPECT_EQ(loaded->config.ua_rare_threshold, 4u);
  EXPECT_EQ(loaded->config.periodicity.metric, timing::HistogramMetric::L1);
  EXPECT_EQ(loaded->config.periodicity.min_intervals, 5u);
  EXPECT_EQ(loaded->config.parallelism.threads, 3u);
  EXPECT_EQ(loaded->config.parallelism.shards, 2u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->config.cc_threshold),
            std::bit_cast<std::uint64_t>(0.44));

  EXPECT_EQ(loaded->domain_history.size(), 4u);
  EXPECT_EQ(loaded->domain_history.days_ingested(), 2u);
  EXPECT_FALSE(loaded->domain_history.is_new("d.io"));

  EXPECT_EQ(loaded->ua_history.rare_threshold(), 4u);
  EXPECT_EQ(loaded->ua_history.host_count("UA-1"), 2u);

  EXPECT_TRUE(loaded->has_top_sites);
  EXPECT_EQ(loaded->top_sites.size(), 2u);
  EXPECT_TRUE(loaded->top_sites.contains("google.com"));

  EXPECT_EQ(loaded->training.whois_samples, 42u);
  EXPECT_TRUE(loaded->training.models_ready);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->training.whois_age_sum),
            std::bit_cast<std::uint64_t>(1234.5));

  EXPECT_EQ(loaded->intel_domains,
            (std::vector<std::string>{"c2.example", "evil.example"}));
  EXPECT_EQ(loaded->counters.days_operated, 17u);
}

TEST_F(StorageStateTest, EncodeIsIdenticalForAnyThreadCount) {
  const DetectorState state = sample_state();
  const std::string one = encode_detector_state(state, 1);
  const std::string eight = encode_detector_state(state, 8);
  EXPECT_EQ(one, eight);
}

TEST_F(StorageStateTest, StateWithoutOptionalSections) {
  DetectorState state;
  state.domain_history.update({"only.example"});
  ASSERT_TRUE(storage::save_detector_state(state, path("s.bin")));
  const auto loaded = storage::load_detector_state(path("s.bin"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->has_top_sites);
  EXPECT_TRUE(loaded->intel_domains.empty());
  EXPECT_FALSE(loaded->training.models_ready);
}

// ---- Corruption ----

TEST_F(StorageStateTest, BitFlipFailsWithChecksumMismatch) {
  ASSERT_TRUE(storage::save_detector_state(sample_state(), path("s.bin")));
  std::string bytes = read_bytes(path("s.bin"));
  // Locate the string-table payload via a clean parse, then flip one bit
  // squarely inside it (a flip in a section header would instead surface
  // as Truncated/Malformed).
  const auto reader = ContainerReader::parse(bytes);
  ASSERT_TRUE(reader.has_value());
  const Section* strings = reader->find(SectionId::StringTable);
  ASSERT_NE(strings, nullptr);
  const std::size_t offset =
      static_cast<std::size_t>(strings->payload.data() - bytes.data()) +
      strings->payload.size() / 2;
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x04);
  write_bytes(path("s.bin"), bytes);
  LoadStatus status;
  EXPECT_FALSE(storage::load_detector_state(path("s.bin"), &status).has_value());
  EXPECT_EQ(status.error, LoadError::ChecksumMismatch) << status.detail;
}

TEST_F(StorageStateTest, TruncationFailsCleanly) {
  ASSERT_TRUE(storage::save_detector_state(sample_state(), path("s.bin")));
  const std::string bytes = read_bytes(path("s.bin"));
  // Every strict prefix must fail with Truncated (or BadMagic for very
  // short prefixes) — never crash, never return a value.
  for (const double frac : {0.05, 0.3, 0.6, 0.95}) {
    const std::size_t cut = static_cast<std::size_t>(
        static_cast<double>(bytes.size()) * frac);
    write_bytes(path("cut.bin"), std::string_view(bytes).substr(0, cut));
    LoadStatus status;
    EXPECT_FALSE(storage::load_detector_state(path("cut.bin"), &status).has_value());
    EXPECT_TRUE(status.error == LoadError::Truncated ||
                status.error == LoadError::BadMagic)
        << "cut at " << cut << ": " << load_error_name(status.error);
  }
  // Cutting the final CRC byte specifically reports Truncated.
  write_bytes(path("cut.bin"),
              std::string_view(bytes).substr(0, bytes.size() - 1));
  LoadStatus status;
  EXPECT_FALSE(storage::load_detector_state(path("cut.bin"), &status).has_value());
  EXPECT_EQ(status.error, LoadError::Truncated);
}

TEST_F(StorageStateTest, TrailingGarbageIsMalformed) {
  ASSERT_TRUE(storage::save_detector_state(sample_state(), path("s.bin")));
  std::string bytes = read_bytes(path("s.bin"));
  bytes += "extra";
  write_bytes(path("s.bin"), bytes);
  LoadStatus status;
  EXPECT_FALSE(storage::load_detector_state(path("s.bin"), &status).has_value());
  EXPECT_EQ(status.error, LoadError::Malformed);
}

TEST_F(StorageStateTest, BadMagicAndMissingFileReported) {
  write_bytes(path("junk.bin"), "NOTASTATEFILE....");
  LoadStatus status;
  EXPECT_FALSE(storage::load_detector_state(path("junk.bin"), &status).has_value());
  EXPECT_EQ(status.error, LoadError::BadMagic);
  EXPECT_FALSE(storage::load_detector_state(path("missing.bin"), &status).has_value());
  EXPECT_EQ(status.error, LoadError::FileNotFound);
}

TEST_F(StorageStateTest, UnsupportedVersionReported) {
  util::ByteWriter out;
  out.bytes(kContainerMagic);
  out.varint(99);  // future format version
  out.varint(0);
  write_bytes(path("v99.bin"), out.data());
  LoadStatus status;
  EXPECT_FALSE(storage::load_detector_state(path("v99.bin"), &status).has_value());
  EXPECT_EQ(status.error, LoadError::UnsupportedVersion);
}

TEST_F(StorageStateTest, MissingSectionReported) {
  // A valid container holding only a string table is not a detector state.
  profile::DomainHistory history;
  history.update({"a.com"});
  ASSERT_TRUE(storage::save_domain_history(history, path("d.bin")));
  LoadStatus status;
  EXPECT_FALSE(storage::load_detector_state(path("d.bin"), &status).has_value());
  EXPECT_EQ(status.error, LoadError::MissingSection);
  // And the reverse: a full state is not rejected as a domain history
  // (it has the section), but a ua-only file is.
  ASSERT_TRUE(storage::save_ua_history(profile::UaHistory(5), path("u.bin")));
  EXPECT_FALSE(storage::load_domain_history(path("u.bin"), &status).has_value());
  EXPECT_EQ(status.error, LoadError::MissingSection);
}

// ---- Text migration ----

TEST_F(StorageStateTest, TextToBinaryMigrationPreservesHistories) {
  profile::DomainHistory domains;
  domains.update({"alpha.example", "beta.example"});
  domains.update({"gamma.example"});
  profile::UaHistory uas(3);
  uas.observe("UA-pop", "h1");
  uas.observe("UA-pop", "h2");
  uas.observe("UA-pop", "h3");
  uas.observe("UA-rare", "h2");

  // Save legacy text, load through the shared entry points.
  ASSERT_TRUE(profile::save_domain_history(domains, path("d.txt")));
  ASSERT_TRUE(profile::save_ua_history(uas, path("u.txt")));
  const auto text_domains = profile::load_domain_history(path("d.txt"));
  const auto text_uas = profile::load_ua_history(path("u.txt"));
  ASSERT_TRUE(text_domains && text_uas);

  // Convert to binary and load again through the same entry points.
  ASSERT_TRUE(storage::save_domain_history(*text_domains, path("d.bin")));
  ASSERT_TRUE(storage::save_ua_history(*text_uas, path("u.bin")));
  const auto bin_domains = profile::load_domain_history(path("d.bin"));
  const auto bin_uas = profile::load_ua_history(path("u.bin"));
  ASSERT_TRUE(bin_domains && bin_uas);

  EXPECT_EQ(bin_domains->size(), domains.size());
  EXPECT_EQ(bin_domains->days_ingested(), domains.days_ingested());
  EXPECT_FALSE(bin_domains->is_new("gamma.example"));
  EXPECT_EQ(bin_uas->rare_threshold(), 3u);
  EXPECT_FALSE(bin_uas->is_rare("UA-pop"));
  EXPECT_EQ(bin_uas->host_count("UA-rare"), 1u);
}

}  // namespace
}  // namespace eid::storage
