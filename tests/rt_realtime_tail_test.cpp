// Live-tail integration: a RealTimeClock-driven ContinuousEngine following
// a TSV file that another thread is still writing — the
// `enterprise_monitor --follow` deployment in miniature. The engine must
// pick up appended lines across polls, close wall-clock ticks while the
// log is quiet, and close the day with a complete report at shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/detector.h"
#include "api/sources.h"
#include "logs/io.h"
#include "rt/clock.h"
#include "rt/engine.h"
#include "test_helpers.h"

namespace eid::rt {
namespace {

constexpr util::Day kDay = 16200;
constexpr int kLines = 6;

logs::DnsRecord dns_record(util::TimePoint ts, int i) {
  logs::DnsRecord rec;
  rec.ts = ts;
  rec.src = "host" + std::to_string(i % 3);
  rec.domain = "live" + std::to_string(i) + ".example.net";
  rec.type = logs::DnsType::A;
  return rec;
}

TEST(RealTimeTailTest, FollowsALiveWriterAndClosesTheDay) {
  const auto dir = std::filesystem::temp_directory_path() / "eid_rt_tail_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / "live-dns.tsv";
  std::filesystem::remove(path);

  test::MapWhois whois;
  // Depth 2 so the final day close runs pipelined: finish_day/report_day on
  // an executor worker, history commit at the finish() join — the live-tail
  // deployment shape for the async close path.
  core::PipelineConfig pipeline_config;
  pipeline_config.parallelism = core::Parallelism{2, 1, 2};
  api::Detector detector(pipeline_config, whois);

  // Sim time = wall time, anchored at the start of the tailed day; 1 s
  // ticks so the loop below closes several of them while it runs.
  RealTimeClock clock(util::day_start(kDay));
  EngineConfig config;
  config.window.tick_seconds = 1;
  ContinuousEngine engine(detector, clock, config);

  api::TsvFileSource source(path, kDay, logs::DnsReductionConfig{});
  source.set_tail(true);

  // The writer starts after the first polls, so the engine also exercises
  // the file-appears-later retry; each line is flushed as it lands.
  std::thread writer([&path] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::ofstream out(path, std::ios::app);
    const util::TimePoint base = util::day_start(kDay);
    for (int i = 0; i < kLines; ++i) {
      out << logs::format_dns_line(dns_record(base + 100 + i, i)) << '\n'
          << std::flush;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    engine.poll(source);
    engine.advance();  // wall-clock ticks close even while the log is quiet
    if (engine.stats().events == kLines && engine.stats().ticks_closed > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  writer.join();
  engine.poll(source);  // anything the writer flushed after our last poll
  engine.finish();

  EXPECT_EQ(source.stats().parsed, static_cast<std::size_t>(kLines));
  EXPECT_EQ(source.stats().malformed, 0u);
  EXPECT_EQ(engine.stats().events, static_cast<std::size_t>(kLines));
  EXPECT_GT(engine.stats().ticks_closed, 0u);
  EXPECT_EQ(engine.stats().days_closed, 1u);
  ASSERT_EQ(engine.day_reports().size(), 1u);
  EXPECT_EQ(detector.days_operated(), 1u);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eid::rt
