#include "core/report_json.h"

#include <gtest/gtest.h>

namespace eid::core {
namespace {

TEST(JsonEscapeTest, PassesPlainText) {
  EXPECT_EQ(json_escape("evil.example.com"), "evil.example.com");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(ReportJsonTest, EmptyReport) {
  DayReport report;
  report.day = util::make_day(2014, 2, 13);
  const std::string json = day_report_to_json(report);
  EXPECT_NE(json.find("\"day\":\"2014-02-13\""), std::string::npos);
  EXPECT_NE(json.find("\"cc_domains\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"nohint\":{\"iterations\":0,\"domains\":[],\"hosts\":[]}"),
            std::string::npos);
}

TEST(ReportJsonTest, FullReportFieldsPresent) {
  DayReport report;
  report.day = util::make_day(2014, 2, 10);
  report.events = 12345;
  report.hosts = 100;
  report.domains = 200;
  report.rare_domains = 50;
  report.automated_pairs = 7;
  report.cc_domains.push_back(ScoredDomain{"cc.ru", 0.71, 600.0, 3});
  DetectedDomain det;
  det.name = "drop\"quoted\".ru";
  det.score = 0.5;
  det.reason = LabelReason::Similarity;
  det.iteration = 2;
  report.nohint.domains.push_back(det);
  report.nohint.hosts = {"ws-1.corp", "ws-2.corp"};
  report.nohint.iterations = 2;

  const std::string json = day_report_to_json(report);
  EXPECT_NE(json.find("\"events\":12345"), std::string::npos);
  EXPECT_NE(json.find("\"domain\":\"cc.ru\""), std::string::npos);
  EXPECT_NE(json.find("\"period_seconds\":600"), std::string::npos);
  EXPECT_NE(json.find("\"auto_hosts\":3"), std::string::npos);
  EXPECT_NE(json.find("drop\\\"quoted\\\".ru"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"similarity\""), std::string::npos);
  EXPECT_NE(json.find("\"hosts\":[\"ws-1.corp\",\"ws-2.corp\"]"),
            std::string::npos);
  // Balanced braces / brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ReportJsonTest, IncidentJson) {
  Incident incident;
  incident.id = 4;
  incident.first_seen = util::make_day(2014, 2, 1);
  incident.last_seen = util::make_day(2014, 2, 9);
  incident.days_active = 5;
  incident.domains = {"a.ru", "b.ru"};
  incident.hosts = {"ws-9.corp"};
  const std::string json = incident_to_json(incident);
  EXPECT_NE(json.find("\"id\":4"), std::string::npos);
  EXPECT_NE(json.find("\"first_seen\":\"2014-02-01\""), std::string::npos);
  EXPECT_NE(json.find("\"last_seen\":\"2014-02-09\""), std::string::npos);
  EXPECT_NE(json.find("\"days_active\":5"), std::string::npos);
  EXPECT_NE(json.find("\"domains\":[\"a.ru\",\"b.ru\"]"), std::string::npos);
  EXPECT_NE(json.find("\"hosts\":[\"ws-9.corp\"]"), std::string::npos);
}

}  // namespace
}  // namespace eid::core
