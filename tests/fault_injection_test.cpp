// Crash-point matrix (the acceptance criterion of the fault-injection
// harness): for every injection point on the durability path, a save that
// "crashes" there loses at most the day it was persisting — a fresh
// process loads whatever the crash left on disk and replays the remaining
// days to bit-identical DayReports versus the uninterrupted run. Read-side
// faults (flaky disk, racing truncation, media corruption) fail or degrade
// the load with the matching LoadError and succeed once the fault clears.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/detector.h"
#include "api/event_source.h"
#include "core/report_json.h"
#include "profile/top_sites.h"
#include "sim/ac.h"
#include "storage/delta.h"
#include "storage/state.h"
#include "util/fault_injection.h"

namespace eid {
namespace {

sim::AcConfig small_world() {
  sim::AcConfig config;
  config.seed = 31;
  config.n_hosts = 60;
  config.n_popular = 30;
  config.tail_per_day = 15;
  config.automated_tail_per_day = 2;
  config.grayware_per_day = 1;
  config.campaigns_per_week = 2.0;
  return config;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-fault-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    scenario_ = std::make_unique<sim::AcScenario>(small_world());
    const util::Day jan = scenario_->training_begin();
    for (int d = 0; d < kBootstrapDays + kLabeledDays; ++d) {
      training_.emplace_back(jan + d,
                             scenario_->simulator().reduced_day(jan + d));
    }
    const util::Day feb = scenario_->operation_begin();
    for (int d = 0; d < kOperationDays; ++d) {
      operation_.emplace_back(feb + d,
                              scenario_->simulator().reduced_day(feb + d));
    }
    seeds_.domains = scenario_->ioc_seeds();
    top_sites_.add("top-whitelisted.example");

    pretrain_ = dir_ / "pretrain.bin";
    api::Detector trained = make_detector();
    train(trained);
    storage::LoadStatus status;
    ASSERT_TRUE(trained.save_state(pretrain_, &status)) << status.detail;

    // The uninterrupted run every crash case is compared against.
    api::Detector baseline = make_pretrained();
    for (int d = 0; d < kOperationDays; ++d) {
      baseline_.push_back(
          core::day_report_to_json(run_operation_day(baseline, d)));
    }
  }
  void TearDown() override {
    util::FaultInjector::instance().reset();
    std::filesystem::remove_all(dir_);
  }

  static constexpr int kBootstrapDays = 4;
  static constexpr int kLabeledDays = 6;
  static constexpr int kOperationDays = 4;

  api::Detector make_detector() {
    core::PipelineConfig config;
    api::Detector detector(config, scenario_->simulator().whois());
    detector.set_top_sites(&top_sites_);
    return detector;
  }

  void train(api::Detector& detector) {
    const sim::IntelOracle& oracle = scenario_->oracle();
    const core::LabelFn intel = [&oracle](const std::string& domain) {
      return oracle.vt_reported(domain);
    };
    for (int d = 0; d < kBootstrapDays; ++d) {
      api::VectorSource source(training_[d].first, &training_[d].second);
      detector.ingest(source);
    }
    for (int d = kBootstrapDays; d < kBootstrapDays + kLabeledDays; ++d) {
      api::VectorSource source(training_[d].first, &training_[d].second);
      detector.ingest(source, intel);
    }
    detector.finalize_training();
    detector.set_intel_domains(seeds_.domains);
  }

  api::Detector make_pretrained() {
    api::Detector detector = make_detector();
    storage::LoadStatus status;
    EXPECT_TRUE(detector.load_state(pretrain_, &status)) << status.detail;
    return detector;
  }

  core::DayReport run_operation_day(api::Detector& detector, int index) {
    api::VectorSource source(operation_[index].first,
                             &operation_[index].second);
    return detector.run_day(source, operation_[index].first, seeds_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<sim::AcScenario> scenario_;
  std::filesystem::path pretrain_;
  std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> training_;
  std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> operation_;
  std::vector<std::string> baseline_;
  core::SocSeeds seeds_;
  profile::TopSitesList top_sites_;
};

/// One write-path crash case: which probe dies, how, and at which save.
struct CrashCase {
  const char* name;
  util::FaultPoint point;
  util::FaultAction action;
  std::uint64_t byte = 0;     ///< TornWrite boundary
  int crash_at_save = 1;      ///< 0-based save index the fault hits
  std::size_t full_every = 8; ///< checkpoint policy for the run
};

TEST_F(FaultInjectionTest, CrashPointMatrixReplaysToBitIdenticalReports) {
  const CrashCase kMatrix[] = {
      // Crash during the initial full checkpoint (nothing on disk yet is
      // not in the matrix — there is no state to recover to; the first
      // *overwrite* of a full checkpoint is, via full_every=1).
      {"full-open-fails", util::FaultPoint::StorageOpenWrite,
       util::FaultAction::FailOpen, 0, 1, 1},
      {"full-write-dies-mid-tmp", util::FaultPoint::StorageWrite,
       util::FaultAction::TornWrite, 100, 1, 1},
      {"full-write-fails", util::FaultPoint::StorageWrite,
       util::FaultAction::FailOp, 0, 1, 1},
      {"crash-between-write-and-rename", util::FaultPoint::StorageRename,
       util::FaultAction::SkipRename, 0, 1, 1},
      // Crash appending a delta frame (save 0 was the full base).
      {"append-open-fails", util::FaultPoint::StorageOpenWrite,
       util::FaultAction::FailOpen, 0, 1, 8},
      {"append-dies-mid-frame", util::FaultPoint::StorageAppend,
       util::FaultAction::TornWrite, 24, 1, 8},
      {"append-fails", util::FaultPoint::StorageAppend,
       util::FaultAction::FailOp, 0, 2, 8},
      // Crash during the compaction rewrite, with a live chain on disk:
      // the old base + old chain must still load.
      {"compaction-rename-skipped", util::FaultPoint::StorageRename,
       util::FaultAction::SkipRename, 0, 2, 2},
      {"compaction-write-dies", util::FaultPoint::StorageWrite,
       util::FaultAction::TornWrite, 64, 2, 2},
  };

  util::FaultInjector& faults = util::FaultInjector::instance();
  int case_index = 0;
  for (const CrashCase& c : kMatrix) {
    SCOPED_TRACE(c.name);
    const auto state_path =
        dir_ / ("crash-" + std::to_string(case_index++) + ".bin");
    api::CheckpointPolicy policy;
    policy.full_every = c.full_every;
    storage::LoadStatus status;

    // Primary: run days, saving after each; the save after day
    // `crash_at_save` dies at the armed point — then the process "dies"
    // too (we simply stop driving this detector).
    api::Detector primary = make_pretrained();
    for (int d = 0; d <= c.crash_at_save; ++d) {
      run_operation_day(primary, d);
      if (d == c.crash_at_save) {
        faults.arm(c.point, c.action, /*skip=*/0, c.byte);
        EXPECT_FALSE(primary.save_state_delta(state_path, policy, &status))
            << "the armed save must fail";
        EXPECT_GE(faults.triggered(c.point), 1u) << "fault never fired";
        faults.reset();
      } else {
        ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status))
            << status.detail;
      }
    }

    // Recovery: a fresh process loads what the crash left. The last
    // *successful* save covered days 0..crash_at_save-1, so the crashed
    // day and everything after replay from the log.
    storage::ChainLoadReport report;
    api::Detector recovered = make_detector();
    ASSERT_TRUE(recovered.load_state(state_path, &report, &status))
        << status.detail;
    EXPECT_EQ(recovered.days_operated(),
              static_cast<std::size_t>(c.crash_at_save));
    for (int d = c.crash_at_save; d < kOperationDays; ++d) {
      EXPECT_EQ(core::day_report_to_json(run_operation_day(recovered, d)),
                baseline_[d])
          << "day " << d << " diverged after crash-recovery";
    }
    // No tmp-file litter from the aborted atomic write survives a
    // subsequent successful save.
    ASSERT_TRUE(recovered.save_state_delta(state_path, policy, &status))
        << status.detail;
    EXPECT_FALSE(std::filesystem::exists(state_path.string() + ".tmp"));
  }
}

TEST_F(FaultInjectionTest, ReadFaultsFailTheLoadThenClearCleanly) {
  const auto state_path = dir_ / "state.bin";
  api::Detector primary = make_pretrained();
  api::CheckpointPolicy policy;
  policy.full_every = 8;
  storage::LoadStatus status;
  for (int d = 0; d < 2; ++d) {
    run_operation_day(primary, d);
    ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status));
  }

  util::FaultInjector& faults = util::FaultInjector::instance();
  struct ReadCase {
    const char* name;
    util::FaultAction action;
    std::uint64_t byte;
    storage::LoadError want;
  };
  const ReadCase kCases[] = {
      {"open-denied", util::FaultAction::FailOpen, 0,
       storage::LoadError::IoError},
      {"read-fails", util::FaultAction::FailOp, 0,
       storage::LoadError::IoError},
      {"truncated-under-reader", util::FaultAction::ShortRead, 200,
       storage::LoadError::Truncated},
      {"media-bit-flip", util::FaultAction::BitFlip, 5000,
       storage::LoadError::ChecksumMismatch},
  };
  for (const ReadCase& c : kCases) {
    SCOPED_TRACE(c.name);
    const util::FaultPoint point = c.action == util::FaultAction::FailOpen
                                       ? util::FaultPoint::StorageOpenRead
                                       : util::FaultPoint::StorageRead;
    faults.arm(point, c.action, /*skip=*/0, c.byte);
    storage::LoadStatus local;
    api::Detector detector = make_detector();
    EXPECT_FALSE(detector.load_state(state_path, nullptr, &local));
    EXPECT_EQ(local.error, c.want)
        << storage::load_error_name(local.error) << " — " << local.detail;
    faults.reset();
  }

  // The same faults against the *chain* read degrade instead of failing:
  // the base (read first) passes clean, the chain read dies, the load
  // keeps the base state. skip=1 leaves the base read unharmed.
  for (const ReadCase& c : kCases) {
    SCOPED_TRACE(std::string("chain-") + c.name);
    const util::FaultPoint point = c.action == util::FaultAction::FailOpen
                                       ? util::FaultPoint::StorageOpenRead
                                       : util::FaultPoint::StorageRead;
    faults.arm(point, c.action, /*skip=*/1, c.byte);
    storage::ChainLoadReport report;
    storage::LoadStatus local;
    api::Detector detector = make_detector();
    EXPECT_TRUE(detector.load_state(state_path, &report, &local))
        << "chain-read faults must not fail the load: " << local.detail;
    EXPECT_EQ(detector.days_operated(), report.frames_applied + 1);
    faults.reset();
  }

  // Fault cleared: the exact same load succeeds in full.
  storage::ChainLoadReport report;
  api::Detector detector = make_detector();
  ASSERT_TRUE(detector.load_state(state_path, &report, &status))
      << status.detail;
  EXPECT_EQ(report.frames_applied, 1u);
  EXPECT_EQ(detector.days_operated(), 2u);
}

TEST_F(FaultInjectionTest, InjectorIsInertWhenDisarmed) {
  util::FaultInjector& faults = util::FaultInjector::instance();
  EXPECT_FALSE(faults.any_armed());
  EXPECT_FALSE(faults.fail_open(util::FaultPoint::StorageOpenRead));
  bool fail = false;
  EXPECT_EQ(faults.filter_write(util::FaultPoint::StorageWrite, 100, fail),
            100u);
  EXPECT_FALSE(fail);
  std::string bytes = "payload";
  faults.filter_read(util::FaultPoint::StorageRead, bytes, fail);
  EXPECT_EQ(bytes, "payload");
  EXPECT_FALSE(fail);
  EXPECT_FALSE(faults.skip_rename(util::FaultPoint::StorageRename));

  // skip + repeat bookkeeping: fire-after-skip, then exhaust.
  faults.arm(util::FaultPoint::StorageOpenRead, util::FaultAction::FailOpen,
             /*skip=*/2, /*byte=*/0, /*bit=*/0, /*repeat=*/2);
  EXPECT_TRUE(faults.any_armed());
  EXPECT_FALSE(faults.fail_open(util::FaultPoint::StorageOpenRead));
  EXPECT_FALSE(faults.fail_open(util::FaultPoint::StorageOpenRead));
  EXPECT_TRUE(faults.fail_open(util::FaultPoint::StorageOpenRead));
  EXPECT_TRUE(faults.fail_open(util::FaultPoint::StorageOpenRead));
  EXPECT_FALSE(faults.fail_open(util::FaultPoint::StorageOpenRead));
  EXPECT_EQ(faults.triggered(util::FaultPoint::StorageOpenRead), 2u);
  faults.reset();
  EXPECT_FALSE(faults.any_armed());
  EXPECT_EQ(faults.triggered(util::FaultPoint::StorageOpenRead), 0u);
}

}  // namespace
}  // namespace eid
