#include "features/similarity_features.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace eid::features {
namespace {

using test::DayBuilder;
using test::MapWhois;

constexpr util::Day kToday = 16100;

util::Ipv4 ip(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
  return util::Ipv4::from_octets(a, b, c, d);
}

TEST(SimilarityTest, MinVisitGapOverSharedHosts) {
  DayBuilder builder;
  builder.visit("h1", "labeled.com", 1000);
  builder.visit("h1", "candidate.com", 1090);
  builder.visit("h2", "labeled.com", 5000);
  builder.visit("h2", "candidate.com", 5020);
  const graph::DayGraph graph = builder.build();
  const std::vector<graph::DomainId> labeled = {graph.find_domain("labeled.com")};
  EXPECT_DOUBLE_EQ(
      min_visit_gap(graph, graph.find_domain("candidate.com"), labeled), 20.0);
}

TEST(SimilarityTest, NoSharedHostGivesSentinelGap) {
  DayBuilder builder;
  builder.visit("h1", "labeled.com", 1000);
  builder.visit("h2", "candidate.com", 1010);
  const graph::DayGraph graph = builder.build();
  const std::vector<graph::DomainId> labeled = {graph.find_domain("labeled.com")};
  EXPECT_DOUBLE_EQ(
      min_visit_gap(graph, graph.find_domain("candidate.com"), labeled),
      kNoSharedVisitGap);
}

TEST(SimilarityTest, GapIgnoresSelfComparison) {
  DayBuilder builder;
  builder.visit("h1", "d.com", 1000);
  const graph::DayGraph graph = builder.build();
  const std::vector<graph::DomainId> labeled = {graph.find_domain("d.com")};
  EXPECT_DOUBLE_EQ(min_visit_gap(graph, graph.find_domain("d.com"), labeled),
                   kNoSharedVisitGap);
}

TEST(SimilarityTest, IpProximity24) {
  DayBuilder builder;
  builder.visit("h1", "labeled.com", 1000, ip(203, 0, 113, 5));
  builder.visit("h2", "near.com", 2000, ip(203, 0, 113, 77));
  builder.visit("h3", "same16.com", 3000, ip(203, 0, 99, 1));
  builder.visit("h4", "far.com", 4000, ip(198, 51, 100, 1));
  const graph::DayGraph graph = builder.build();
  const std::vector<graph::DomainId> labeled = {graph.find_domain("labeled.com")};

  const IpProximity near = ip_proximity(graph, graph.find_domain("near.com"), labeled);
  EXPECT_TRUE(near.share24);
  EXPECT_TRUE(near.share16);

  const IpProximity mid = ip_proximity(graph, graph.find_domain("same16.com"), labeled);
  EXPECT_FALSE(mid.share24);
  EXPECT_TRUE(mid.share16);

  const IpProximity far = ip_proximity(graph, graph.find_domain("far.com"), labeled);
  EXPECT_FALSE(far.share24);
  EXPECT_FALSE(far.share16);
}

TEST(SimilarityTest, FullRowCombinesEverything) {
  DayBuilder builder;
  builder.visit("h1", "labeled.com", 1000, ip(203, 0, 113, 5));
  builder.visit("h1", "cand.com", 1030, ip(203, 0, 113, 9), "WeirdUA", false);
  builder.visit("h2", "cand.com", 9000, ip(203, 0, 113, 9), "CommonUA", true);
  const graph::DayGraph graph = builder.build();
  profile::UaHistory ua_history(2);
  ua_history.observe("CommonUA", "x1");
  ua_history.observe("CommonUA", "x2");
  MapWhois whois;
  whois.add("cand.com", kToday - 10, kToday + 60);
  const std::vector<graph::DomainId> labeled = {graph.find_domain("labeled.com")};
  const SimilarityFeatureRow row = extract_similarity_features(
      graph, graph.find_domain("cand.com"), labeled, ua_history, whois, kToday,
      WhoisDefaults{});
  EXPECT_DOUBLE_EQ(row.no_hosts, 2.0);
  EXPECT_DOUBLE_EQ(row.dom_interval, 30.0);
  EXPECT_DOUBLE_EQ(row.ip24, 1.0);
  EXPECT_DOUBLE_EQ(row.ip16, 1.0);
  EXPECT_DOUBLE_EQ(row.no_ref, 0.5);   // h1 had no referer, h2 did
  EXPECT_DOUBLE_EQ(row.rare_ua, 0.5);  // h1 rare UA, h2 common
  EXPECT_DOUBLE_EQ(row.dom_age, 10.0);
  EXPECT_DOUBLE_EQ(row.dom_validity, 60.0);
}

TEST(SimilarityTest, GapShrinksWithMoreLabeledDomains) {
  // Property: adding labeled domains can only decrease the min gap.
  DayBuilder builder;
  builder.visit("h1", "cand.com", 1000);
  builder.visit("h1", "far-labeled.com", 50000);
  builder.visit("h1", "near-labeled.com", 1100);
  const graph::DayGraph graph = builder.build();
  std::vector<graph::DomainId> labeled = {graph.find_domain("far-labeled.com")};
  const double gap1 = min_visit_gap(graph, graph.find_domain("cand.com"), labeled);
  labeled.push_back(graph.find_domain("near-labeled.com"));
  const double gap2 = min_visit_gap(graph, graph.find_domain("cand.com"), labeled);
  EXPECT_LE(gap2, gap1);
  EXPECT_DOUBLE_EQ(gap2, 100.0);
}

TEST(SimilarityTest, AsArrayOrderMatchesNames) {
  SimilarityFeatureRow row;
  row.no_hosts = 1;
  row.dom_interval = 2;
  row.ip24 = 3;
  row.ip16 = 4;
  row.no_ref = 5;
  row.rare_ua = 6;
  row.dom_age = 7;
  row.dom_validity = 8;
  const auto arr = row.as_array();
  for (std::size_t i = 0; i < kSimFeatureCount; ++i) {
    EXPECT_DOUBLE_EQ(arr[i], static_cast<double>(i + 1));
  }
  EXPECT_STREQ(kSimFeatureNames[1], "DomInterval");
  EXPECT_STREQ(kSimFeatureNames[3], "IP16");
}

}  // namespace
}  // namespace eid::features
