#include "features/automation.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace eid::features {
namespace {

using test::DayBuilder;

std::vector<graph::DomainId> all_domains(const graph::DayGraph& graph) {
  std::vector<graph::DomainId> out;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) out.push_back(d);
  return out;
}

TEST(AutomationTest, DetectsBeaconingPair) {
  const graph::DayGraph graph =
      DayBuilder().beacon("h1", "cc.com", 1000, 600, 50).build();
  const timing::PeriodicityDetector detector;
  const auto analysis =
      AutomationAnalysis::analyze(graph, all_domains(graph), detector);
  EXPECT_EQ(analysis.pair_count(), 1u);
  const graph::DomainId cc = graph.find_domain("cc.com");
  ASSERT_TRUE(analysis.is_automated(cc));
  const DomainAutomation* agg = analysis.domain(cc);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->host_count(), 1u);
  EXPECT_NEAR(agg->dominant_period(), 600.0, 1.0);
}

TEST(AutomationTest, IgnoresNonCandidateDomains) {
  const graph::DayGraph graph =
      DayBuilder().beacon("h1", "cc.com", 1000, 600, 50).build();
  const timing::PeriodicityDetector detector;
  const auto analysis = AutomationAnalysis::analyze(graph, {}, detector);
  EXPECT_EQ(analysis.pair_count(), 0u);
  EXPECT_FALSE(analysis.is_automated(graph.find_domain("cc.com")));
}

TEST(AutomationTest, SporadicVisitsNotAutomated) {
  DayBuilder builder;
  builder.visit("h1", "site.com", 1000)
      .visit("h1", "site.com", 1400)
      .visit("h1", "site.com", 9000)
      .visit("h1", "site.com", 9100)
      .visit("h1", "site.com", 30000)
      .visit("h1", "site.com", 70000);
  const graph::DayGraph graph = builder.build();
  const timing::PeriodicityDetector detector;
  const auto analysis =
      AutomationAnalysis::analyze(graph, all_domains(graph), detector);
  EXPECT_FALSE(analysis.is_automated(graph.find_domain("site.com")));
}

TEST(AutomationTest, MultipleHostsCountedPerDomain) {
  DayBuilder builder;
  builder.beacon("h1", "cc.com", 1000, 300, 40);
  builder.beacon("h2", "cc.com", 2000, 300, 40);
  builder.beacon("h3", "cc.com", 3000, 900, 40);
  builder.visit("h4", "cc.com", 5000);  // single visit: not automated
  const graph::DayGraph graph = builder.build();
  const timing::PeriodicityDetector detector;
  const auto analysis =
      AutomationAnalysis::analyze(graph, all_domains(graph), detector);
  const DomainAutomation* agg = analysis.domain(graph.find_domain("cc.com"));
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->host_count(), 3u);
  EXPECT_EQ(analysis.pair_count(), 3u);
}

TEST(AutomationTest, DominantPeriodPrefersCleanestBeacon) {
  DayBuilder builder;
  builder.beacon("clean", "cc.com", 1000, 600, 60);
  // A noisier automated edge: same domain, slightly jittered manually.
  for (int i = 0; i < 30; ++i) {
    builder.visit("noisy", "cc.com", 2000 + i * 300 + (i % 3) * 4);
  }
  const graph::DayGraph graph = builder.build();
  const timing::PeriodicityDetector detector;
  const auto analysis =
      AutomationAnalysis::analyze(graph, all_domains(graph), detector);
  const DomainAutomation* agg = analysis.domain(graph.find_domain("cc.com"));
  ASSERT_NE(agg, nullptr);
  EXPECT_NEAR(agg->dominant_period(), 600.0, 1.0);
}

TEST(AutomationTest, AutomatedDomainsSortedAndComplete) {
  DayBuilder builder;
  builder.beacon("h1", "b.com", 1000, 300, 30);
  builder.beacon("h1", "a.com", 1000, 300, 30);
  builder.visit("h1", "c.com", 1000);
  const graph::DayGraph graph = builder.build();
  const timing::PeriodicityDetector detector;
  const auto analysis =
      AutomationAnalysis::analyze(graph, all_domains(graph), detector);
  const auto automated = analysis.automated_domains();
  ASSERT_EQ(automated.size(), 2u);
  EXPECT_TRUE(std::is_sorted(automated.begin(), automated.end()));
}

}  // namespace
}  // namespace eid::features
