// Detector facade behavior: day-boundary detection in ingest(), empty
// streams, end-of-day history side effects, and the deferred history
// update for threshold-sweeping callers.
#include "api/detector.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "api/event_source.h"
#include "test_helpers.h"

namespace eid::api {
namespace {

using test::DayBuilder;
using test::MapWhois;

constexpr util::Day kDay = 16200;

std::vector<logs::ConnEvent> small_day(util::Day day, int salt) {
  DayBuilder builder;
  const util::TimePoint base = util::day_start(day);
  for (int h = 0; h < 4; ++h) {
    builder.visit("h" + std::to_string(h),
                  "site" + std::to_string(salt) + "-" + std::to_string(h) + ".com",
                  base + 100 + h, {0}, "CommonUA", true);
  }
  return builder.events();
}

/// Test source: a fixed sequence of day-tagged chunks (exercises the
/// day-boundary logic in Detector::ingest without a file or simulator).
class ScriptedSource final : public EventSource {
 public:
  explicit ScriptedSource(std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> days)
      : days_(std::move(days)) {}

  std::optional<EventChunk> next_chunk() override {
    if (pos_ >= days_.size()) return std::nullopt;
    const auto& [day, events] = days_[pos_];
    ++pos_;
    return EventChunk{day, events};
  }

  bool reset() override {
    pos_ = 0;
    return true;
  }

 private:
  std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> days_;
  std::size_t pos_ = 0;
};

TEST(DetectorTest, IngestSplitsDaysAtChunkBoundaries) {
  MapWhois whois;
  Detector detector(core::PipelineConfig{}, whois);
  // Three days, the middle one split over two chunks.
  auto day2 = small_day(kDay + 1, 1);
  const std::size_t half = day2.size() / 2;
  ScriptedSource source({
      {kDay, small_day(kDay, 0)},
      {kDay + 1, {day2.begin(), day2.begin() + half}},
      {kDay + 1, {day2.begin() + half, day2.end()}},
      {kDay + 2, small_day(kDay + 2, 2)},
  });
  const IngestReport report = detector.ingest(source);
  EXPECT_EQ(report.days, 3u);
  EXPECT_EQ(report.chunks, 4u);
  EXPECT_EQ(report.events, small_day(kDay, 0).size() + day2.size() +
                               small_day(kDay + 2, 2).size());
  EXPECT_EQ(detector.pipeline().domain_history().days_ingested(), 3u);
  EXPECT_GT(detector.pipeline().domain_history().size(), 0u);
}

TEST(DetectorTest, IngestOfEmptySourceDoesNothing) {
  MapWhois whois;
  Detector detector(core::PipelineConfig{}, whois);
  ScriptedSource source({});
  const IngestReport report = detector.ingest(source);
  EXPECT_EQ(report.days, 0u);
  EXPECT_EQ(report.events, 0u);
  EXPECT_EQ(detector.pipeline().domain_history().days_ingested(), 0u);
}

// A day with zero events is still a day: the legacy loop called
// profile_day({}) for it, which bumps days_ingested. Sources announce such
// days with one empty chunk and ingest() must commit them.
TEST(DetectorTest, IngestCountsEmptyDays) {
  MapWhois whois;
  Detector detector(core::PipelineConfig{}, whois);
  ScriptedSource source({
      {kDay, small_day(kDay, 0)},
      {kDay + 1, {}},  // empty-day boundary marker
      {kDay + 2, small_day(kDay + 2, 2)},
  });
  const IngestReport report = detector.ingest(source);
  EXPECT_EQ(report.days, 3u);
  EXPECT_EQ(detector.pipeline().domain_history().days_ingested(), 3u);

  // Parity with the legacy per-day loop over the same sequence.
  core::Pipeline legacy(core::PipelineConfig{}, whois);
  legacy.profile_day(small_day(kDay, 0));
  legacy.profile_day({});
  legacy.profile_day(small_day(kDay + 2, 2));
  EXPECT_EQ(legacy.domain_history().days_ingested(),
            detector.pipeline().domain_history().days_ingested());
  EXPECT_EQ(legacy.domain_history().size(),
            detector.pipeline().domain_history().size());
}

TEST(DetectorTest, AnalyzeStreamLeavesHistoriesUntouched) {
  MapWhois whois;
  Detector detector(core::PipelineConfig{}, whois);
  auto events = small_day(kDay, 0);
  VectorSource source(kDay, &events, 2);
  const core::DayAnalysis analysis = detector.analyze_stream(source, kDay);
  EXPECT_EQ(analysis.day, kDay);
  EXPECT_EQ(analysis.event_count, events.size());
  EXPECT_EQ(detector.pipeline().domain_history().size(), 0u);

  // The sweep is over; commit the day explicitly.
  detector.update_histories(analysis);
  EXPECT_GT(detector.pipeline().domain_history().size(), 0u);
  VectorSource again(kDay + 1, &events, 2);
  EXPECT_EQ(detector.analyze_stream(again, kDay + 1).new_domains, 0u);
}

TEST(DetectorTest, RunDayCommitsTheDayToTheHistories) {
  MapWhois whois;
  Detector detector(core::PipelineConfig{}, whois);
  auto events = small_day(kDay, 0);
  VectorSource source(kDay, &events, 3);
  const core::DayReport report = detector.run_day(source, kDay);
  EXPECT_EQ(report.day, kDay);
  EXPECT_EQ(report.events, events.size());
  EXPECT_GT(report.domains, 0u);
  // Tomorrow, today's domains are old news.
  VectorSource again(kDay + 1, &events, 3);
  EXPECT_EQ(detector.analyze_stream(again, kDay + 1).new_domains, 0u);
}

TEST(DetectorTest, LabeledIngestAccumulatesTrainingRows) {
  MapWhois whois;
  Detector detector(core::PipelineConfig{}, whois);
  // Bootstrap so CommonUA is popular and browsing domains are old.
  {
    ScriptedSource bootstrap({{kDay - 2, small_day(kDay - 2, 0)}});
    detector.ingest(bootstrap);
  }
  // One labeled day with a beaconing reported domain.
  auto events = small_day(kDay, 0);
  DayBuilder extra;
  whois.add("bad.ru", kDay - 5, kDay + 60);
  extra.beacon("h1", "bad.ru", util::day_start(kDay) + 2000, 600, 40,
               util::Ipv4::from_octets(203, 0, 113, 5), "");
  for (const auto& ev : extra.events()) events.push_back(ev);

  ScriptedSource labeled({{kDay, std::move(events)}});
  const core::LabelFn intel = [](const std::string& domain) {
    return domain == "bad.ru";
  };
  const IngestReport report = detector.ingest(labeled, intel);
  EXPECT_EQ(report.days, 1u);
  const core::TrainingReport training = detector.finalize_training();
  EXPECT_GE(training.cc_rows, 1u);
  EXPECT_GE(training.cc_positive, 1u);
}

}  // namespace
}  // namespace eid::api
