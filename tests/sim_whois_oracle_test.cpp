#include <gtest/gtest.h>

#include "sim/oracle.h"
#include "sim/whois_db.h"

namespace eid::sim {
namespace {

TEST(WhoisDbTest, RegisteredDomainsResolve) {
  WhoisDb db(/*unparseable_fraction=*/0.0);
  db.add("example.com", 100, 500);
  const auto info = db.lookup("example.com");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->registered, 100);
  EXPECT_EQ(info->expires, 500);
  EXPECT_TRUE(db.is_registered("example.com"));
}

TEST(WhoisDbTest, UnregisteredDomainsFail) {
  WhoisDb db(0.0);
  EXPECT_FALSE(db.lookup("never.com").has_value());
  EXPECT_FALSE(db.is_registered("never.com"));
}

TEST(WhoisDbTest, AddAgedComputesWindow) {
  WhoisDb db(0.0);
  db.add_aged("young.com", /*today=*/1000, /*age=*/7, /*validity=*/90);
  const auto info = db.lookup("young.com");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->registered, 993);
  EXPECT_EQ(info->expires, 1090);
}

TEST(WhoisDbTest, ReRegistrationOverwrites) {
  WhoisDb db(0.0);
  db.add("flip.com", 100, 200);
  db.add("flip.com", 300, 400);
  const auto info = db.lookup("flip.com");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->registered, 300);
}

TEST(WhoisDbTest, UnparseableFailuresAreDeterministicPerDomain) {
  WhoisDb db(0.5, /*seed=*/99);
  std::size_t failures = 0;
  const std::size_t n = 400;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string name = "dom" + std::to_string(i) + ".com";
    db.add(name, 1, 2);
    const bool first = db.lookup(name).has_value();
    const bool second = db.lookup(name).has_value();
    EXPECT_EQ(first, second) << name;  // same answer every time
    if (!first) ++failures;
  }
  // Roughly half fail at fraction 0.5.
  EXPECT_GT(failures, n / 3);
  EXPECT_LT(failures, 2 * n / 3);
}

TEST(WhoisDbTest, ZeroFractionNeverFails) {
  WhoisDb db(0.0);
  for (int i = 0; i < 100; ++i) {
    const std::string name = "d" + std::to_string(i) + ".net";
    db.add(name, 1, 2);
    EXPECT_TRUE(db.lookup(name).has_value());
  }
}

TEST(OracleParamsTest, ReportingRatesTrackProbabilities) {
  GroundTruth truth;
  for (int i = 0; i < 500; ++i) {
    truth.set_label("mal" + std::to_string(i) + ".ru", TruthLabel::Malicious, 0);
    truth.set_label("gray" + std::to_string(i) + ".com", TruthLabel::Grayware);
  }
  IntelOracle::Params params;
  params.vt_malicious = 0.65;
  params.vt_grayware = 0.25;
  params.ioc_given_vt = 0.2;
  const IntelOracle oracle(truth, params);

  std::size_t mal_reported = 0;
  std::size_t gray_reported = 0;
  std::size_t iocs = 0;
  for (int i = 0; i < 500; ++i) {
    if (oracle.vt_reported("mal" + std::to_string(i) + ".ru")) ++mal_reported;
    if (oracle.vt_reported("gray" + std::to_string(i) + ".com")) ++gray_reported;
    if (oracle.soc_ioc("mal" + std::to_string(i) + ".ru")) ++iocs;
  }
  EXPECT_NEAR(static_cast<double>(mal_reported) / 500.0, 0.65, 0.08);
  EXPECT_NEAR(static_cast<double>(gray_reported) / 500.0, 0.25, 0.08);
  EXPECT_NEAR(static_cast<double>(iocs) / static_cast<double>(mal_reported), 0.2,
              0.08);
}

TEST(OracleParamsTest, GraywareNeverOnIocList) {
  GroundTruth truth;
  for (int i = 0; i < 200; ++i) {
    truth.set_label("gray" + std::to_string(i) + ".com", TruthLabel::Grayware);
  }
  IntelOracle::Params params;
  params.vt_grayware = 1.0;
  params.ioc_given_vt = 1.0;
  const IntelOracle oracle(truth, params);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(oracle.soc_ioc("gray" + std::to_string(i) + ".com"));
  }
}

TEST(OracleParamsTest, CampaignIocEnumeration) {
  GroundTruth truth;
  CampaignTruth campaign;
  campaign.id = 3;
  campaign.start_day = 100;
  campaign.duration_days = 10;
  for (int i = 0; i < 20; ++i) {
    const std::string name = "c3-" + std::to_string(i) + ".ru";
    truth.set_label(name, TruthLabel::Malicious, 3);
    campaign.domains.push_back(name);
  }
  truth.add_campaign(campaign);
  IntelOracle::Params params;
  params.vt_malicious = 1.0;
  params.ioc_given_vt = 1.0;
  const IntelOracle oracle(truth, params);
  EXPECT_EQ(oracle.ioc_domains_of_campaign(3).size(), 20u);
  EXPECT_TRUE(oracle.ioc_domains_of_campaign(99).empty());
  // Window filtering in ioc_list.
  EXPECT_EQ(oracle.ioc_list(100, 120).size(), 20u);
  EXPECT_EQ(oracle.ioc_list(95, 99).size(), 0u);   // campaign not yet active
  EXPECT_EQ(oracle.ioc_list(111, 200).size(), 0u); // campaign already over
}

}  // namespace
}  // namespace eid::sim
