// Batch/continuous equivalence: a day streamed through rt::ContinuousEngine
// must close with a DayReport bit-identical to api::Detector::run_day on
// the same event sequence — for every tick size, window length, thread
// count and ingest shard count — while additionally emitting provisional
// incidents at sub-day latency. This is the acceptance criterion of the
// real-time subsystem: continuous mode costs latency bounded by one tick,
// never fidelity.
#include "rt/engine.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "api/detector.h"
#include "api/event_source.h"
#include "core/report_json.h"
#include "test_helpers.h"

namespace eid::rt {
namespace {

using test::DayBuilder;
using test::MapWhois;

constexpr util::Day kDay = 16100;

std::vector<logs::ConnEvent> browsing_day(util::Day day) {
  DayBuilder builder;
  const util::TimePoint base = util::day_start(day);
  for (int h = 0; h < 12; ++h) {
    for (int d = 0; d < 6; ++d) {
      builder.visit("h" + std::to_string(h), "pop" + std::to_string(d) + ".com",
                    base + 1000 + h * 50 + d, {0}, "CommonUA", true);
    }
  }
  return builder.events();
}

/// Operation day: browsing plus a fresh campaign (beaconing C&C + delivery
/// domain + IOC-seeded pair) so C&C detection and both BP modes fire.
std::vector<logs::ConnEvent> campaign_day(util::Day day, MapWhois& whois) {
  const util::TimePoint base = util::day_start(day);
  auto events = browsing_day(day);
  DayBuilder extra;
  whois.add("evil-cc.ru", day - 3, day + 40);
  whois.add("evil-drop.ru", day - 4, day + 40);
  extra.visit("h5", "evil-drop.ru", base + 1990,
              util::Ipv4::from_octets(198, 51, 100, 7), "", false);
  extra.beacon("h5", "evil-cc.ru", base + 2040, 600, 40,
               util::Ipv4::from_octets(198, 51, 100, 9), "");
  whois.add("ioc-domain.ru", day - 10, day + 30);
  whois.add("related.ru", day - 9, day + 30);
  extra.visit("h6", "ioc-domain.ru", base + 3000,
              util::Ipv4::from_octets(198, 51, 100, 20), "", false);
  extra.visit("h6", "related.ru", base + 3030,
              util::Ipv4::from_octets(198, 51, 100, 21), "", false);
  for (const auto& ev : extra.events()) events.push_back(ev);
  return events;
}

struct TrainingDay {
  util::Day day = 0;
  std::vector<logs::ConnEvent> events;
};

std::vector<TrainingDay> training_days(MapWhois& whois,
                                       std::set<std::string>& reported) {
  std::vector<TrainingDay> days;
  for (int i = 0; i < 10; ++i) {
    const util::Day day = kDay - 2;
    const util::TimePoint base = util::day_start(day);
    auto events = browsing_day(day);
    DayBuilder extra;
    const std::string bad = "bad" + std::to_string(i) + ".ru";
    const std::string good = "updates" + std::to_string(i) + ".com";
    whois.add(bad, day - 5, day + 60);
    whois.add(good, day - 900, day + 900);
    reported.insert(bad);
    extra.beacon("h1", bad, base + 2000, 600, 40,
                 util::Ipv4::from_octets(203, 0, 113, 5), "");
    extra.beacon("h2", good, base + 2500, 900, 30,
                 util::Ipv4::from_octets(8, 8, 4, 4), "CommonUA");
    const std::string drop = "drop" + std::to_string(i) + ".ru";
    whois.add(drop, day - 6, day + 60);
    reported.insert(drop);
    extra.visit("h1", drop, base + 1985,
                util::Ipv4::from_octets(203, 0, 113, 9), "", false);
    const std::string blog = "blog" + std::to_string(i) + ".com";
    whois.add(blog, day - 800, day + 900);
    extra.visit("h1", blog, base + 30000,
                util::Ipv4::from_octets(9, 9, 9, 9), "CommonUA", true);
    for (const auto& ev : extra.events()) events.push_back(ev);
    days.push_back(TrainingDay{day, std::move(events)});
  }
  return days;
}

core::PipelineConfig test_config(std::size_t threads = 1,
                                 std::size_t shards = 1,
                                 std::size_t depth = 1) {
  core::PipelineConfig config;
  config.ua_rare_threshold = 3;
  config.parallelism = core::Parallelism{threads, shards, depth};
  return config;
}

/// A detector profiled and trained on the shared fixture world.
api::Detector trained_detector(MapWhois& whois, const core::LabelFn& intel,
                               const std::vector<TrainingDay>& train,
                               std::size_t threads, std::size_t shards,
                               std::size_t depth = 1) {
  api::Detector detector(test_config(threads, shards, depth), whois);
  for (const util::Day day : {kDay - 4, kDay - 3}) {
    api::VectorSource source(day, browsing_day(day));
    detector.ingest(source);
  }
  for (const auto& day : train) {
    api::VectorSource source(day.day, &day.events);
    detector.ingest(source, intel);
  }
  detector.finalize_training();
  return detector;
}

core::SocSeeds soc_seeds() {
  core::SocSeeds seeds;
  seeds.domains = {"ioc-domain.ru"};
  return seeds;
}

// Continuous day close must be bit-identical to run_day for every tick
// size, across the parallel knobs, with provisional emissions riding along
// at sub-day tick sizes.
TEST(RtContinuousTest, DayCloseBitIdenticalToRunDayAcrossTicksThreadsShards) {
  MapWhois whois;
  std::set<std::string> reported;
  const auto train = training_days(whois, reported);
  const core::LabelFn intel = [&reported](const std::string& domain) {
    return reported.contains(domain);
  };
  auto events = campaign_day(kDay, whois);

  // Batch baseline (threads 1, shards 1 — itself config-invariant per
  // api_equivalence_test).
  std::string baseline;
  {
    api::Detector batch = trained_detector(whois, intel, train, 1, 1);
    api::VectorSource source(kDay, &events);
    baseline =
        core::day_report_to_json(batch.run_day(source, kDay, soc_seeds()));
    ASSERT_NE(baseline.find("evil-cc.ru"), std::string::npos);
  }

  for (const std::int64_t tick : {std::int64_t{300}, std::int64_t{3600},
                                  std::int64_t{86400}}) {
    for (const std::size_t threads : {1u, 8u}) {
      for (const std::size_t shards : {1u, 4u}) {
        // Depth 2 drives the pipelined close: finish_day/report_day run on
        // a worker and the history commit lands at the next join point —
        // the report must still match the batch baseline byte for byte.
        // Both window modes are swept: incremental (cached partial merge,
        // the default) and the raw-replay rebuild escape hatch.
        for (const std::size_t depth : {1u, 2u}) {
        for (const bool incremental : {true, false}) {
          SCOPED_TRACE("tick " + std::to_string(tick) + ", threads " +
                       std::to_string(threads) + ", shards " +
                       std::to_string(shards) + ", depth " +
                       std::to_string(depth) + ", incremental " +
                       std::to_string(incremental));
          api::Detector detector =
              trained_detector(whois, intel, train, threads, shards, depth);
          EngineConfig config;
          config.window.tick_seconds = tick;
          config.window.incremental = incremental;
          config.seeds = soc_seeds();
          api::VectorSource source(kDay, &events);
          const ContinuousReport report =
              detector.run_continuous(source, config);

          ASSERT_EQ(report.days.size(), 1u);
          EXPECT_EQ(core::day_report_to_json(report.days[0]), baseline);
          EXPECT_EQ(report.stats.events, events.size());
          EXPECT_EQ(report.stats.days_closed, 1u);
          EXPECT_EQ(detector.days_operated(), 1u);

          // Finalized emissions always fire (fresh campaign); provisional
          // ones require at least one tick boundary inside the day.
          EXPECT_GT(report.emissions.size(), 0u);
          if (tick < 86400) {
            EXPECT_GT(report.stats.provisional_emissions, 0u);
          }
          for (const IncidentEmission& emission : report.emissions) {
            EXPECT_GE(emission.latency_seconds, 0);
            EXPECT_EQ(emission.emission_time - emission.event_time,
                      emission.latency_seconds);
          }
        }
        }
      }
    }
  }
}

// Sub-day ticks must announce the beaconing C&C domain before the day
// closes, with event->emission latency bounded by detection lag + one
// tick — the latency the batch path pays a full day for.
TEST(RtContinuousTest, ProvisionalEmissionPrecedesDayClose) {
  MapWhois whois;
  std::set<std::string> reported;
  const auto train = training_days(whois, reported);
  const core::LabelFn intel = [&reported](const std::string& domain) {
    return reported.contains(domain);
  };
  auto events = campaign_day(kDay, whois);

  api::Detector detector = trained_detector(whois, intel, train, 1, 1);
  EngineConfig config;
  config.window.tick_seconds = 300;
  config.seeds = soc_seeds();
  api::VectorSource source(kDay, &events);
  const ContinuousReport report = detector.run_continuous(source, config);

  bool cc_provisional = false;
  for (const IncidentEmission& emission : report.emissions) {
    if (!emission.provisional) continue;
    for (const std::string& domain : emission.domains) {
      if (domain == "evil-cc.ru") {
        cc_provisional = true;
        // Announced at a tick close strictly inside the day...
        EXPECT_LT(emission.emission_time, util::day_start(kDay + 1));
        // ...after the evidence began...
        EXPECT_GE(emission.emission_time, emission.event_time);
        // ...and never re-announced at day close.
        EXPECT_EQ(emission.day, kDay);
      }
    }
  }
  EXPECT_TRUE(cc_provisional);

  const LatencySummary latency =
      summarize_latency(report.emissions, /*provisional_only=*/true);
  ASSERT_GT(latency.count, 0u);
  EXPECT_GT(latency.p50_seconds, 0.0);
  EXPECT_LE(latency.p50_seconds, latency.p99_seconds);
  EXPECT_LE(latency.p99_seconds, latency.max_seconds);
  // Provisional latency is bounded by one day (the batch path's floor).
  EXPECT_LT(latency.max_seconds, 86400.0);
}

// Multiple consecutive days through one engine: every day close matches
// the twin batch detector, histories carry across days identically, and
// the incident store tracks the campaign across both days.
TEST(RtContinuousTest, MultiDayMatchesSequentialRunDay) {
  MapWhois whois;
  std::set<std::string> reported;
  const auto train = training_days(whois, reported);
  const core::LabelFn intel = [&reported](const std::string& domain) {
    return reported.contains(domain);
  };
  auto day1 = campaign_day(kDay, whois);
  auto day2 = campaign_day(kDay + 1, whois);

  api::Detector batch = trained_detector(whois, intel, train, 1, 1);
  std::vector<std::string> batch_json;
  for (auto* events : {&day1, &day2}) {
    const util::Day day = events == &day1 ? kDay : kDay + 1;
    api::VectorSource source(day, events);
    batch_json.push_back(
        core::day_report_to_json(batch.run_day(source, day, soc_seeds())));
  }

  api::Detector continuous = trained_detector(whois, intel, train, 1, 1);
  ReplayClock clock;
  EngineConfig config;
  config.window.tick_seconds = 3600;
  config.seeds = soc_seeds();
  ContinuousEngine engine(continuous, clock, config);
  {
    api::VectorSource source(kDay, &day1);
    engine.poll(source);
  }
  {
    // First chunk of the next day closes day one — no finish() needed
    // between days, exactly like a live tail.
    api::VectorSource source(kDay + 1, &day2);
    engine.poll(source);
  }
  engine.finish();

  ASSERT_EQ(engine.day_reports().size(), 2u);
  EXPECT_EQ(core::day_report_to_json(engine.day_reports()[0]), batch_json[0]);
  EXPECT_EQ(core::day_report_to_json(engine.day_reports()[1]), batch_json[1]);
  EXPECT_EQ(continuous.days_operated(), 2u);
  EXPECT_EQ(engine.stats().days_closed, 2u);

  // The campaign recurs on day two, so the store merged it into one
  // incident active both days, with evidence event times recorded.
  const auto incidents = engine.incidents().incidents();
  bool campaign_found = false;
  for (const core::Incident& incident : incidents) {
    if (!incident.domains.contains("evil-cc.ru")) continue;
    campaign_found = true;
    EXPECT_EQ(incident.first_seen, kDay);
    EXPECT_EQ(incident.last_seen, kDay + 1);
    EXPECT_GT(incident.first_evidence, 0);
    EXPECT_GE(incident.last_evidence, incident.first_evidence);
  }
  EXPECT_TRUE(campaign_found);

  // finish() is idempotent; a second take_report starts empty.
  engine.finish();
  EXPECT_EQ(engine.day_reports().size(), 2u);
}

// A quiet day (no events, day announced by an empty chunk) must close
// exactly like run_day over an empty source.
TEST(RtContinuousTest, EmptyDayClosesLikeBatch) {
  MapWhois whois;
  std::set<std::string> reported;
  const auto train = training_days(whois, reported);
  const core::LabelFn intel = [&reported](const std::string& domain) {
    return reported.contains(domain);
  };

  api::Detector batch = trained_detector(whois, intel, train, 1, 1);
  api::VectorSource empty_batch(kDay, std::vector<logs::ConnEvent>{});
  const std::string baseline =
      core::day_report_to_json(batch.run_day(empty_batch, kDay, {}));

  api::Detector continuous = trained_detector(whois, intel, train, 1, 1);
  EngineConfig config;
  config.window.tick_seconds = 300;
  api::VectorSource empty_stream(kDay, std::vector<logs::ConnEvent>{});
  const ContinuousReport report =
      continuous.run_continuous(empty_stream, config);

  ASSERT_EQ(report.days.size(), 1u);
  EXPECT_EQ(core::day_report_to_json(report.days[0]), baseline);
  EXPECT_EQ(report.stats.events, 0u);
  EXPECT_TRUE(report.emissions.empty());
}

// Observability is a pure side channel for the continuous engine too:
// running with metrics enabled and a trace sink installed must close the
// day with a report byte-identical to the fully dark run, while the sink
// collects well-formed Chrome trace-event JSON with rt spans in it.
TEST(RtContinuousTest, TracingOnKeepsDayCloseBitIdentical) {
  MapWhois whois;
  std::set<std::string> reported;
  const auto train = training_days(whois, reported);
  const core::LabelFn intel = [&reported](const std::string& domain) {
    return reported.contains(domain);
  };
  auto events = campaign_day(kDay, whois);

  const auto run = [&](std::size_t threads, std::size_t shards) {
    api::Detector detector =
        trained_detector(whois, intel, train, threads, shards);
    EngineConfig config;
    config.window.tick_seconds = 3600;
    config.seeds = soc_seeds();
    api::VectorSource source(kDay, &events);
    const ContinuousReport report = detector.run_continuous(source, config);
    std::string json;
    for (const core::DayReport& day : report.days) {
      json += core::day_report_to_json(day);
    }
    return json;
  };

  for (const std::size_t threads : {1u, 8u}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    obs::metrics().set_enabled(false);
    const std::string dark = run(threads, 4);

    obs::TraceSink sink;
    api::Detector::set_trace_sink(&sink);
    obs::metrics().set_enabled(true);
    const std::string traced = run(threads, 4);
    api::Detector::set_trace_sink(nullptr);

    EXPECT_EQ(traced, dark);
    EXPECT_GT(sink.event_count(), 0u) << "rt stages must record spans";
    const std::string trace_json = sink.to_chrome_json();
    EXPECT_TRUE(test::json_well_formed(trace_json));
    EXPECT_NE(trace_json.find("rt_tick_evaluate"), std::string::npos);
  }
  obs::metrics().set_enabled(true);
}

}  // namespace
}  // namespace eid::rt
