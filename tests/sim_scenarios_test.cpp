#include <gtest/gtest.h>

#include <unordered_set>

#include "sim/ac.h"
#include "sim/lanl.h"
#include "sim/oracle.h"

namespace eid::sim {
namespace {

LanlConfig tiny_lanl() {
  LanlConfig config;
  config.n_hosts = 80;
  config.n_servers = 3;
  config.n_popular = 40;
  config.tail_per_day = 15;
  config.automated_tail_per_day = 2;
  config.server_tail_per_day = 10;
  return config;
}

TEST(LanlScenarioTest, TwentyCampaignsOnPaperDates) {
  LanlScenario scenario(tiny_lanl());
  ASSERT_EQ(scenario.cases().size(), 20u);
  std::size_t per_case[5] = {0, 0, 0, 0, 0};
  for (const auto& challenge : scenario.cases()) {
    ASSERT_GE(challenge.case_id, 1);
    ASSERT_LE(challenge.case_id, 4);
    ++per_case[challenge.case_id];
    EXPECT_GE(challenge.day, util::make_day(2013, 3, 2));
    EXPECT_LE(challenge.day, util::make_day(2013, 3, 22));
  }
  EXPECT_EQ(per_case[1], 5u);  // Table I
  EXPECT_EQ(per_case[2], 7u);
  EXPECT_EQ(per_case[3], 7u);
  EXPECT_EQ(per_case[4], 1u);
}

TEST(LanlScenarioTest, HintStructureMatchesCases) {
  LanlScenario scenario(tiny_lanl());
  for (const auto& challenge : scenario.cases()) {
    switch (challenge.case_id) {
      case 1:
      case 3:
        EXPECT_EQ(challenge.hint_hosts.size(), 1u);
        break;
      case 2:
        EXPECT_GE(challenge.hint_hosts.size(), 3u);
        EXPECT_LE(challenge.hint_hosts.size(), 4u);
        break;
      case 4:
        EXPECT_TRUE(challenge.hint_hosts.empty());
        break;
    }
    EXPECT_FALSE(challenge.answer_domains.empty());
    EXPECT_GE(challenge.victim_hosts.size(), 2u);  // LANL sims: multiple victims
  }
}

TEST(LanlScenarioTest, TrainingSplitMatchesPaper) {
  EXPECT_TRUE(LanlScenario::is_training_day(util::make_day(2013, 3, 2)));
  EXPECT_TRUE(LanlScenario::is_training_day(util::make_day(2013, 3, 7)));
  EXPECT_TRUE(LanlScenario::is_training_day(util::make_day(2013, 3, 18)));
  EXPECT_FALSE(LanlScenario::is_training_day(util::make_day(2013, 3, 6)));
  EXPECT_FALSE(LanlScenario::is_training_day(util::make_day(2013, 3, 22)));
  EXPECT_FALSE(LanlScenario::is_training_day(util::make_day(2013, 2, 2)));
  LanlScenario scenario(tiny_lanl());
  std::size_t training = 0;
  for (const auto& challenge : scenario.cases()) {
    if (challenge.training) ++training;
  }
  EXPECT_EQ(training, 10u);  // half of the 20 attacks (§V-B)
}

TEST(LanlScenarioTest, CampaignTrafficAppearsOnItsDay) {
  LanlScenario scenario(tiny_lanl());
  const auto& challenge = scenario.cases().front();
  const DayLogs logs = scenario.simulator().simulate_day(challenge.day);
  std::unordered_set<std::string> seen;
  for (const auto& rec : logs.dns) seen.insert(rec.domain);
  for (const auto& answer : challenge.answer_domains) {
    EXPECT_TRUE(seen.contains(answer)) << answer;
  }
}

AcConfig tiny_ac() {
  AcConfig config;
  config.n_hosts = 80;
  config.n_popular = 40;
  config.tail_per_day = 15;
  config.automated_tail_per_day = 2;
  config.grayware_per_day = 1;
  config.campaigns_per_week = 3.0;
  return config;
}

TEST(AcScenarioTest, CampaignsSpanBothMonths) {
  AcScenario scenario(tiny_ac());
  const auto& campaigns = scenario.simulator().truth().campaigns();
  ASSERT_FALSE(campaigns.empty());
  bool any_january = false;
  bool any_february = false;
  for (const auto& [id, campaign] : campaigns) {
    if (campaign.start_day < scenario.operation_begin()) any_january = true;
    if (campaign.start_day + campaign.duration_days > scenario.operation_begin()) {
      any_february = true;
    }
  }
  EXPECT_TRUE(any_january);
  EXPECT_TRUE(any_february);
}

TEST(AcScenarioTest, IocSeedsAreMaliciousAndKnown) {
  AcScenario scenario(tiny_ac());
  const auto seeds = scenario.ioc_seeds();
  for (const auto& domain : seeds) {
    EXPECT_TRUE(scenario.simulator().truth().is_malicious(domain));
    EXPECT_TRUE(scenario.oracle().soc_ioc(domain));
    EXPECT_TRUE(scenario.oracle().vt_reported(domain));
  }
}

TEST(OracleTest, DeterministicAndPartial) {
  AcScenario scenario(tiny_ac());
  const IntelOracle& oracle = scenario.oracle();
  const GroundTruth& truth = scenario.simulator().truth();
  std::size_t malicious = 0;
  std::size_t reported = 0;
  for (const auto& [id, campaign] : truth.campaigns()) {
    for (const auto& domain : campaign.domains) {
      ++malicious;
      const bool r1 = oracle.vt_reported(domain);
      const bool r2 = oracle.vt_reported(domain);
      EXPECT_EQ(r1, r2);
      if (r1) ++reported;
      // IOC implies VT-reported (the SOC consumes the same feeds).
      if (oracle.soc_ioc(domain)) EXPECT_TRUE(r1);
    }
  }
  ASSERT_GT(malicious, 10u);
  // Partial knowledge: some but not all malicious domains are reported.
  EXPECT_GT(reported, 0u);
  EXPECT_LT(reported, malicious);
}

TEST(OracleTest, BenignNeverReported) {
  GroundTruth truth;
  truth.set_label("bad.com", TruthLabel::Malicious, 0);
  const IntelOracle oracle(truth);
  EXPECT_FALSE(oracle.vt_reported("innocent.com"));
  EXPECT_FALSE(oracle.soc_ioc("innocent.com"));
}

TEST(CampaignScheduleTest, RespectsRateAndRanges) {
  util::Rng rng(5);
  const auto specs = generate_campaign_schedule(rng, 100, 56, 7.0);
  // ~7/week over 8 weeks => around 56 campaigns; allow wide slack.
  EXPECT_GE(specs.size(), 30u);
  EXPECT_LE(specs.size(), 90u);
  int previous_id = -1;
  for (const auto& spec : specs) {
    EXPECT_GT(spec.id, previous_id);
    previous_id = spec.id;
    EXPECT_GE(spec.start_day, 100);
    EXPECT_LT(spec.start_day, 156);
    EXPECT_GE(spec.n_victims, 1u);
    EXPECT_LE(spec.n_victims, 3u);
    EXPECT_GE(spec.cc_period_seconds, 120.0);
    EXPECT_LE(spec.cc_period_seconds, 7200.0);
  }
}

}  // namespace
}  // namespace eid::sim
