#include "features/cc_features.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace eid::features {
namespace {

using test::DayBuilder;
using test::MapWhois;

constexpr util::Day kToday = 16100;

struct Fixture {
  graph::DayGraph graph;
  AutomationAnalysis automation;
  profile::UaHistory ua_history{3};
  MapWhois whois;

  explicit Fixture(const DayBuilder& builder) : graph(builder.build()) {
    std::vector<graph::DomainId> all;
    for (graph::DomainId d = 0; d < graph.domain_count(); ++d) all.push_back(d);
    automation = AutomationAnalysis::analyze(graph, all,
                                             timing::PeriodicityDetector{});
  }

  CcFeatureRow extract(const std::string& domain,
                       const WhoisDefaults& defaults = {}) const {
    return extract_cc_features(graph, graph.find_domain(domain), automation,
                               ua_history, whois, kToday, defaults);
  }
};

TEST(CcFeaturesTest, CountsHostsAndAutoHosts) {
  DayBuilder builder;
  builder.beacon("h1", "cc.com", 1000, 300, 40);
  builder.beacon("h2", "cc.com", 1000, 300, 40);
  builder.visit("h3", "cc.com", 5000);
  Fixture fx(builder);
  const CcFeatureRow row = fx.extract("cc.com");
  EXPECT_DOUBLE_EQ(row.no_hosts, 3.0);
  EXPECT_DOUBLE_EQ(row.auto_hosts, 2.0);
}

TEST(CcFeaturesTest, NoRefFraction) {
  DayBuilder builder;
  builder.visit("h1", "d.com", 100, {0}, "UA", true);   // has referer
  builder.visit("h2", "d.com", 200, {0}, "UA", false);  // none
  builder.visit("h3", "d.com", 300, {0}, "UA", false);  // none
  builder.visit("h4", "d.com", 400, {0}, "UA", true);
  Fixture fx(builder);
  const CcFeatureRow row = fx.extract("d.com");
  EXPECT_DOUBLE_EQ(row.no_ref, 0.5);
}

TEST(CcFeaturesTest, RareUaFraction) {
  DayBuilder builder;
  builder.visit("h1", "d.com", 100, {0}, "CommonUA");
  builder.visit("h2", "d.com", 200, {0}, "WeirdUA");
  builder.visit("h3", "d.com", 300, {0}, "");  // no UA counts as rare
  Fixture fx(builder);
  for (const char* h : {"x1", "x2", "x3"}) fx.ua_history.observe("CommonUA", h);
  const CcFeatureRow row = fx.extract("d.com");
  EXPECT_NEAR(row.rare_ua, 2.0 / 3.0, 1e-12);
}

TEST(CcFeaturesTest, MixedUaHostNotRare) {
  // A host that used a common UA at least once is not "rare-UA" even if it
  // also used a rare one.
  DayBuilder builder;
  builder.visit("h1", "d.com", 100, {0}, "CommonUA");
  builder.visit("h1", "d.com", 200, {0}, "WeirdUA");
  Fixture fx(builder);
  for (const char* h : {"x1", "x2", "x3"}) fx.ua_history.observe("CommonUA", h);
  const CcFeatureRow row = fx.extract("d.com");
  EXPECT_DOUBLE_EQ(row.rare_ua, 0.0);
}

TEST(CcFeaturesTest, RegistrationFeatures) {
  DayBuilder builder;
  builder.visit("h1", "young.com", 100);
  Fixture fx(builder);
  fx.whois.add("young.com", kToday - 7, kToday + 100);
  const CcFeatureRow row = fx.extract("young.com");
  EXPECT_DOUBLE_EQ(row.dom_age, 7.0);
  EXPECT_DOUBLE_EQ(row.dom_validity, 100.0);
  EXPECT_TRUE(row.whois_resolved);
}

TEST(CcFeaturesTest, WhoisFailureUsesDefaults) {
  DayBuilder builder;
  builder.visit("h1", "unknown.com", 100);
  Fixture fx(builder);
  WhoisDefaults defaults;
  defaults.age_days = 222.0;
  defaults.validity_days = 111.0;
  const CcFeatureRow row = fx.extract("unknown.com", defaults);
  EXPECT_DOUBLE_EQ(row.dom_age, 222.0);
  EXPECT_DOUBLE_EQ(row.dom_validity, 111.0);
  EXPECT_FALSE(row.whois_resolved);
}

TEST(CcFeaturesTest, FutureRegistrationTreatedAsUnregistered) {
  // §VI-D: DGA domains can be registered after detection; the WHOIS record
  // must not leak into the features before its registration date.
  DayBuilder builder;
  builder.visit("h1", "dga.info", 100);
  Fixture fx(builder);
  fx.whois.add("dga.info", kToday + 5, kToday + 200);
  WhoisDefaults defaults;
  defaults.age_days = 50.0;
  const CcFeatureRow row = fx.extract("dga.info", defaults);
  EXPECT_DOUBLE_EQ(row.dom_age, 50.0);
  EXPECT_FALSE(row.whois_resolved);
}

TEST(CcFeaturesTest, DnsFlavorHasZeroHttpFeatures) {
  // DNS-derived events carry no HTTP context: NoRef and RareUA must be 0,
  // matching the reduced LANL feature set (§V-B).
  graph::DayGraph graph;
  logs::ConnEvent ev;
  ev.ts = 100;
  ev.host = "h1";
  ev.domain = "d.c3";
  ev.has_http_context = false;
  graph.add_event(ev);
  graph.finalize();
  AutomationAnalysis automation;
  profile::UaHistory ua_history(3);
  MapWhois whois;
  const CcFeatureRow row =
      extract_cc_features(graph, graph.find_domain("d.c3"), automation,
                          ua_history, whois, kToday, WhoisDefaults{});
  EXPECT_DOUBLE_EQ(row.rare_ua, 0.0);
  // DNS edges never record referers, so every host counts as no-referer;
  // the LANL scorer simply does not use these features.
  EXPECT_DOUBLE_EQ(row.no_hosts, 1.0);
}

TEST(CcFeaturesTest, AsArrayOrderMatchesNames) {
  CcFeatureRow row;
  row.no_hosts = 1;
  row.auto_hosts = 2;
  row.no_ref = 3;
  row.rare_ua = 4;
  row.dom_age = 5;
  row.dom_validity = 6;
  const auto arr = row.as_array();
  EXPECT_DOUBLE_EQ(arr[0], 1);
  EXPECT_DOUBLE_EQ(arr[5], 6);
  EXPECT_STREQ(kCcFeatureNames[0], "NoHosts");
  EXPECT_STREQ(kCcFeatureNames[5], "DomValidity");
}

}  // namespace
}  // namespace eid::features
