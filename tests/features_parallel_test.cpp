// The multi-threaded automation scan must be bit-identical to the
// sequential one for any thread count.
#include <gtest/gtest.h>

#include "features/automation.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace eid::features {
namespace {

graph::DayGraph busy_graph() {
  test::DayBuilder builder;
  util::Rng rng(31);
  // 60 domains: a third beaconing, a third bursty, a third sparse.
  for (int d = 0; d < 60; ++d) {
    const std::string domain = "d" + std::to_string(d) + ".com";
    const std::size_t hosts = 1 + rng.index(4);
    for (std::size_t h = 0; h < hosts; ++h) {
      const std::string host = "h" + std::to_string(rng.index(25));
      if (d % 3 == 0) {
        builder.beacon(host, domain, 1000 + static_cast<int>(rng.uniform(5000)),
                       300 + static_cast<double>(rng.uniform(600)), 40);
      } else if (d % 3 == 1) {
        util::TimePoint t = 1000 + static_cast<util::TimePoint>(rng.uniform(5000));
        for (int i = 0; i < 12; ++i) {
          builder.visit(host, domain, t);
          t += 1 + static_cast<util::TimePoint>(rng.exponential(200.0));
        }
      } else {
        builder.visit(host, domain, 1000 + static_cast<int>(rng.uniform(80000)));
      }
    }
  }
  return builder.build();
}

class ParallelAutomation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelAutomation, MatchesSequentialExactly) {
  const graph::DayGraph graph = busy_graph();
  std::vector<graph::DomainId> candidates;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    candidates.push_back(d);
  }
  const timing::PeriodicityDetector detector;
  const AutomationAnalysis sequential =
      AutomationAnalysis::analyze(graph, candidates, detector, 1);
  const AutomationAnalysis parallel =
      AutomationAnalysis::analyze(graph, candidates, detector, GetParam());

  EXPECT_EQ(parallel.pair_count(), sequential.pair_count());
  EXPECT_EQ(parallel.automated_domains(), sequential.automated_domains());
  for (const graph::DomainId domain : sequential.automated_domains()) {
    const DomainAutomation* a = sequential.domain(domain);
    const DomainAutomation* b = parallel.domain(domain);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->pairs.size(), b->pairs.size());
    for (std::size_t i = 0; i < a->pairs.size(); ++i) {
      EXPECT_EQ(a->pairs[i].host, b->pairs[i].host);
      EXPECT_EQ(a->pairs[i].period, b->pairs[i].period);
      EXPECT_EQ(a->pairs[i].divergence, b->pairs[i].divergence);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelAutomation,
                         ::testing::Values(2, 3, 4, 8, 64));

TEST(ParallelAutomationTest, MoreThreadsThanCandidates) {
  test::DayBuilder builder;
  builder.beacon("h1", "only.com", 1000, 600, 30);
  const graph::DayGraph graph = builder.build();
  const std::vector<graph::DomainId> candidates = {graph.find_domain("only.com")};
  const timing::PeriodicityDetector detector;
  const AutomationAnalysis analysis =
      AutomationAnalysis::analyze(graph, candidates, detector, 16);
  EXPECT_EQ(analysis.pair_count(), 1u);
}

TEST(ParallelAutomationTest, EmptyCandidates) {
  const graph::DayGraph graph = busy_graph();
  const timing::PeriodicityDetector detector;
  const AutomationAnalysis analysis =
      AutomationAnalysis::analyze(graph, {}, detector, 8);
  EXPECT_EQ(analysis.pair_count(), 0u);
}

}  // namespace
}  // namespace eid::features
