#include "ml/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eid::ml {
namespace {

TEST(MatrixTest, GramMatrix) {
  Matrix x(3, 2);
  // [[1,2],[3,4],[5,6]]
  x.at(0, 0) = 1; x.at(0, 1) = 2;
  x.at(1, 0) = 3; x.at(1, 1) = 4;
  x.at(2, 0) = 5; x.at(2, 1) = 6;
  const Matrix g = x.gram();
  EXPECT_DOUBLE_EQ(g.at(0, 0), 35.0);
  EXPECT_DOUBLE_EQ(g.at(0, 1), 44.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 44.0);
  EXPECT_DOUBLE_EQ(g.at(1, 1), 56.0);
}

TEST(MatrixTest, TransposeTimesAndTimes) {
  Matrix x(2, 3);
  x.at(0, 0) = 1; x.at(0, 1) = 0; x.at(0, 2) = 2;
  x.at(1, 0) = 0; x.at(1, 1) = 3; x.at(1, 2) = 1;
  const auto xt_v = x.transpose_times({2.0, 1.0});
  ASSERT_EQ(xt_v.size(), 3u);
  EXPECT_DOUBLE_EQ(xt_v[0], 2.0);
  EXPECT_DOUBLE_EQ(xt_v[1], 3.0);
  EXPECT_DOUBLE_EQ(xt_v[2], 5.0);
  const auto x_v = x.times({1.0, 1.0, 1.0});
  ASSERT_EQ(x_v.size(), 2u);
  EXPECT_DOUBLE_EQ(x_v[0], 3.0);
  EXPECT_DOUBLE_EQ(x_v[1], 4.0);
}

TEST(CholeskyTest, FactorizesSpdMatrix) {
  Matrix a(2, 2);
  a.at(0, 0) = 4; a.at(0, 1) = 2;
  a.at(1, 0) = 2; a.at(1, 1) = 3;
  Matrix lower;
  ASSERT_TRUE(cholesky(a, lower));
  EXPECT_DOUBLE_EQ(lower.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(lower.at(1, 0), 1.0);
  EXPECT_NEAR(lower.at(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 2; a.at(1, 1) = 1;  // eigenvalues 3, -1
  Matrix lower;
  EXPECT_FALSE(cholesky(a, lower));
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  // A = [[4,2],[2,3]], x = [1, -2] => b = A x = [0, -4].
  Matrix a(2, 2);
  a.at(0, 0) = 4; a.at(0, 1) = 2;
  a.at(1, 0) = 2; a.at(1, 1) = 3;
  Matrix lower;
  ASSERT_TRUE(cholesky(a, lower));
  const auto x = cholesky_solve(lower, {0.0, -4.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  Matrix a(3, 3);
  a.at(0, 0) = 6; a.at(0, 1) = 2; a.at(0, 2) = 1;
  a.at(1, 0) = 2; a.at(1, 1) = 5; a.at(1, 2) = 2;
  a.at(2, 0) = 1; a.at(2, 1) = 2; a.at(2, 2) = 4;
  Matrix lower;
  ASSERT_TRUE(cholesky(a, lower));
  const Matrix inv = spd_inverse(lower);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 3; ++k) acc += a.at(i, k) * inv.at(k, j);
      EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 1e-10) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace eid::ml
