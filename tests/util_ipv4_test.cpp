#include "util/ipv4.h"

#include <gtest/gtest.h>

namespace eid::util {
namespace {

TEST(Ipv4Test, FormatAndParseRoundTrip) {
  const Ipv4 ip = Ipv4::from_octets(192, 168, 1, 42);
  EXPECT_EQ(format_ipv4(ip), "192.168.1.42");
  const auto parsed = parse_ipv4("192.168.1.42");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ip);
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ipv4("").has_value());
  EXPECT_FALSE(parse_ipv4("1.2.3").has_value());
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5").has_value());
  EXPECT_FALSE(parse_ipv4("256.1.1.1").has_value());
  EXPECT_FALSE(parse_ipv4("1.2.3.x").has_value());
  EXPECT_FALSE(parse_ipv4("a.b.c.d").has_value());
  EXPECT_FALSE(parse_ipv4("1..2.3").has_value());
}

TEST(Ipv4Test, ParseBoundaries) {
  EXPECT_TRUE(parse_ipv4("0.0.0.0").has_value());
  EXPECT_TRUE(parse_ipv4("255.255.255.255").has_value());
}

TEST(Ipv4Test, SubnetRelations) {
  const Ipv4 a = Ipv4::from_octets(10, 20, 30, 1);
  const Ipv4 b = Ipv4::from_octets(10, 20, 30, 200);
  const Ipv4 c = Ipv4::from_octets(10, 20, 99, 1);
  const Ipv4 d = Ipv4::from_octets(10, 99, 30, 1);
  EXPECT_TRUE(same_subnet24(a, b));
  EXPECT_TRUE(same_subnet16(a, b));
  EXPECT_FALSE(same_subnet24(a, c));
  EXPECT_TRUE(same_subnet16(a, c));
  EXPECT_FALSE(same_subnet24(a, d));
  EXPECT_FALSE(same_subnet16(a, d));
}

TEST(Ipv4Test, Subnet24ImpliesSubnet16) {
  // Property: /24 co-location always implies /16 co-location.
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const Ipv4 a{i * 2654435761u};
    const Ipv4 b{(i * 2654435761u) ^ 0xffu};
    if (same_subnet24(a, b)) EXPECT_TRUE(same_subnet16(a, b));
  }
}

TEST(Ipv4Test, PrivateRanges) {
  EXPECT_TRUE(is_private_ipv4(Ipv4::from_octets(10, 1, 2, 3)));
  EXPECT_TRUE(is_private_ipv4(Ipv4::from_octets(172, 16, 0, 1)));
  EXPECT_TRUE(is_private_ipv4(Ipv4::from_octets(172, 31, 255, 1)));
  EXPECT_TRUE(is_private_ipv4(Ipv4::from_octets(192, 168, 10, 10)));
  EXPECT_FALSE(is_private_ipv4(Ipv4::from_octets(172, 15, 0, 1)));
  EXPECT_FALSE(is_private_ipv4(Ipv4::from_octets(172, 32, 0, 1)));
  EXPECT_FALSE(is_private_ipv4(Ipv4::from_octets(8, 8, 8, 8)));
  EXPECT_FALSE(is_private_ipv4(Ipv4::from_octets(193, 168, 1, 1)));
}

}  // namespace
}  // namespace eid::util
