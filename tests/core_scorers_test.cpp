#include "core/scorers.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace eid::core {
namespace {

using test::DayBuilder;
using test::MapWhois;

constexpr util::Day kToday = 16100;

util::Ipv4 ip(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
  return util::Ipv4::from_octets(a, b, c, d);
}

struct Fixture {
  graph::DayGraph graph;
  std::unordered_set<graph::DomainId> rare;
  features::AutomationAnalysis automation;
  profile::UaHistory ua_history{3};
  MapWhois whois;

  explicit Fixture(const DayBuilder& builder) : graph(builder.build()) {
    std::vector<graph::DomainId> all;
    for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
      all.push_back(d);
      rare.insert(d);
    }
    automation =
        features::AutomationAnalysis::analyze(graph, all,
                                              timing::PeriodicityDetector{});
  }

  DayState state() const {
    return DayState{graph, rare, automation, ua_history, whois, kToday,
                    features::WhoisDefaults{}};
  }
};

TEST(LanlScorerTest, CcNeedsTwoHostsWithMatchingPeriods) {
  DayBuilder builder;
  builder.beacon("h1", "both.c3", 1000, 600, 40);
  builder.beacon("h2", "both.c3", 1500, 600, 40);
  builder.beacon("h3", "solo.c3", 1000, 600, 40);
  builder.beacon("h4", "mismatch.c3", 1000, 300, 60);
  builder.beacon("h5", "mismatch.c3", 1000, 900, 40);
  Fixture fx(builder);
  const LanlScorer scorer(fx.state());
  EXPECT_TRUE(scorer.detect_cc(fx.graph.find_domain("both.c3")));
  EXPECT_FALSE(scorer.detect_cc(fx.graph.find_domain("solo.c3")));
  EXPECT_FALSE(scorer.detect_cc(fx.graph.find_domain("mismatch.c3")));
}

TEST(LanlScorerTest, PeriodMatchToleranceIsTenSeconds) {
  DayBuilder builder;
  builder.beacon("h1", "close.c3", 1000, 600, 40);
  builder.beacon("h2", "close.c3", 1500, 608, 40);  // within 10 s
  Fixture fx(builder);
  const LanlScorer scorer(fx.state());
  EXPECT_TRUE(scorer.detect_cc(fx.graph.find_domain("close.c3")));
}

TEST(LanlScorerTest, AdditiveComponents) {
  DayBuilder builder;
  builder.visit("h1", "labeled.c3", 1000, ip(203, 0, 113, 5));
  // Candidate: 2 hosts, visited 100 s after labeled by h1, same /24.
  builder.visit("h1", "cand.c3", 1100, ip(203, 0, 113, 80));
  builder.visit("h2", "cand.c3", 9000, ip(203, 0, 113, 80));
  Fixture fx(builder);
  const LanlScorer scorer(fx.state());
  const std::vector<graph::DomainId> labeled = {fx.graph.find_domain("labeled.c3")};
  const auto c =
      scorer.components(fx.graph.find_domain("cand.c3"), labeled);
  EXPECT_DOUBLE_EQ(c.connectivity, 0.2);  // 2 hosts / cap 10
  EXPECT_DOUBLE_EQ(c.timing, 1.0);        // 100 s <= 160 s
  EXPECT_DOUBLE_EQ(c.ip, 2.0);            // same /24
  // Normalized: (0.2 + 1 + 2) / 4 = 0.8.
  EXPECT_DOUBLE_EQ(scorer.similarity_score(fx.graph.find_domain("cand.c3"), labeled),
                   0.8);
}

TEST(LanlScorerTest, ScoreIsInUnitInterval) {
  DayBuilder builder;
  builder.visit("h1", "labeled.c3", 1000, ip(203, 0, 113, 5));
  for (int i = 0; i < 15; ++i) {
    builder.visit("h" + std::to_string(i), "cand.c3", 1001 + i,
                  ip(203, 0, 113, 99));
  }
  Fixture fx(builder);
  const LanlScorer scorer(fx.state());
  const std::vector<graph::DomainId> labeled = {fx.graph.find_domain("labeled.c3")};
  const double score =
      scorer.similarity_score(fx.graph.find_domain("cand.c3"), labeled);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(LanlScorerTest, TimingComponentRespectsThreshold) {
  DayBuilder builder;
  builder.visit("h1", "labeled.c3", 1000);
  builder.visit("h1", "near.c3", 1150);   // 150 s
  builder.visit("h1", "far.c3", 2000);    // 1000 s
  Fixture fx(builder);
  const LanlScorer scorer(fx.state());
  const std::vector<graph::DomainId> labeled = {fx.graph.find_domain("labeled.c3")};
  EXPECT_DOUBLE_EQ(scorer.components(fx.graph.find_domain("near.c3"), labeled).timing,
                   1.0);
  EXPECT_DOUBLE_EQ(scorer.components(fx.graph.find_domain("far.c3"), labeled).timing,
                   0.0);
}

ScoredModel hand_model(std::vector<double> weights, double intercept,
                       double threshold, std::size_t n_features) {
  ScoredModel m;
  m.model.weights = std::move(weights);
  m.model.intercept = intercept;
  m.threshold = threshold;
  // Identity-ish scaler: fit on rows of 0 and 1 per column.
  ml::Matrix fit_data(2, n_features);
  for (std::size_t c = 0; c < n_features; ++c) {
    fit_data.at(0, c) = 0.0;
    fit_data.at(1, c) = 1.0;
  }
  m.scaler.fit(fit_data);
  return m;
}

TEST(EnterpriseScorerTest, DetectCcRequiresRareAutomatedAndScore) {
  DayBuilder builder;
  builder.beacon("h1", "beacon.com", 1000, 600, 50, ip(1, 2, 3, 4), "");
  builder.visit("h1", "single.com", 1000);
  Fixture fx(builder);
  // Score = NoRef weight 1.0 * value (both domains are referer-less here),
  // so both clear the 0.4 threshold; only the automated one is C&C.
  std::vector<double> cc_weights(features::kCcFeatureCount, 0.0);
  cc_weights[2] = 1.0;  // NoRef
  const ScoredModel cc =
      hand_model(cc_weights, 0.0, 0.4, features::kCcFeatureCount);
  const ScoredModel sim =
      hand_model(std::vector<double>(features::kSimFeatureCount, 0.0), 0.0, 0.4,
                 features::kSimFeatureCount);
  const DayState state = fx.state();
  const EnterpriseScorer scorer(state, cc, sim);
  EXPECT_TRUE(scorer.detect_cc(fx.graph.find_domain("beacon.com")));
  EXPECT_FALSE(scorer.detect_cc(fx.graph.find_domain("single.com")));
}

TEST(EnterpriseScorerTest, NonRareDomainNeverCc) {
  DayBuilder builder;
  builder.beacon("h1", "beacon.com", 1000, 600, 50);
  Fixture fx(builder);
  fx.rare.clear();  // nothing is rare today
  std::vector<double> cc_weights(features::kCcFeatureCount, 1.0);
  const ScoredModel cc =
      hand_model(cc_weights, 10.0, 0.0, features::kCcFeatureCount);
  const ScoredModel sim = hand_model(
      std::vector<double>(features::kSimFeatureCount, 0.0), 0.0, 0.4,
      features::kSimFeatureCount);
  const DayState state = fx.state();
  const EnterpriseScorer scorer(state, cc, sim);
  EXPECT_FALSE(scorer.detect_cc(fx.graph.find_domain("beacon.com")));
}

TEST(DetectCcDomainsTest, SweepsOrderedByScore) {
  DayBuilder builder;
  // Two beaconing rare domains with different NoRef profiles.
  builder.beacon("h1", "high.com", 1000, 600, 50);
  builder.beacon("h2", "low.com", 1000, 600, 50);
  builder.visit("h3", "low.com", 5000, {0}, "UA", true);  // referer visit
  Fixture fx(builder);
  std::vector<double> cc_weights(features::kCcFeatureCount, 0.0);
  cc_weights[2] = 1.0;  // NoRef fraction drives the score
  const ScoredModel cc = hand_model(cc_weights, 0.0, 0.3,
                                    features::kCcFeatureCount);
  const DayState state = fx.state();
  const auto detections = detect_cc_domains(state, cc);
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_EQ(fx.graph.domain_name(detections[0].domain), "high.com");
  EXPECT_GT(detections[0].score, detections[1].score);
  EXPECT_NEAR(detections[0].period, 600.0, 1.0);
}

TEST(DetectCcDomainsTest, ThresholdFilters) {
  DayBuilder builder;
  builder.beacon("h1", "beacon.com", 1000, 600, 50);
  Fixture fx(builder);
  std::vector<double> cc_weights(features::kCcFeatureCount, 0.0);
  cc_weights[2] = 1.0;
  ScoredModel cc = hand_model(cc_weights, 0.0, 2.0, features::kCcFeatureCount);
  const DayState state = fx.state();
  EXPECT_TRUE(detect_cc_domains(state, cc).empty());
  cc.threshold = 0.1;
  EXPECT_EQ(detect_cc_domains(state, cc).size(), 1u);
}

}  // namespace
}  // namespace eid::core
