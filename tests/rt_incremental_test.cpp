// Incremental window re-scoring (rt/window.h + graph::DayGraph::absorb):
// the engine's default tick evaluation merges cached per-bucket partial
// graphs instead of re-ingesting the window's raw events. These tests pin
// the equivalence contract from both ends:
//
//   * window-level — the merged partials finalize bit-identical to a
//     sequential ingest of the same event sequence, across sealing,
//     merge extension, window slide, empty-tick gaps and out-of-order
//     appends into already-sealed buckets (the invalidation path);
//   * engine-level — a full continuous run with incremental = true
//     produces the same day reports AND the same provisional/finalized
//     emission sequence, field for field, as the rebuild escape hatch
//     (incremental = false), for every tick size × thread count × shard
//     count × pipeline depth, and regardless of how chunks straddle tick
//     boundaries.
#include "rt/window.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/detector.h"
#include "api/event_source.h"
#include "core/report_json.h"
#include "rt/engine.h"
#include "test_helpers.h"

namespace eid::rt {
namespace {

using test::DayBuilder;
using test::MapWhois;

constexpr util::Day kDay = 16100;

// ---------------------------------------------------------------------------
// Window-level equivalence: merged partials vs sequential ingest.
// ---------------------------------------------------------------------------

/// Full structural serialization of a finalized graph — every id, name,
/// edge payload and IP row in deterministic order. Two graphs with equal
/// signatures are observably identical.
std::string graph_signature(const graph::DayGraph& graph) {
  std::ostringstream out;
  out << "hosts:";
  for (graph::HostId h = 0; h < graph.host_count(); ++h) {
    out << graph.host_name(h) << ',';
  }
  out << "\ndomains:";
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    out << graph.domain_name(d) << ',';
  }
  out << '\n';
  graph.for_each_edge([&](graph::HostId h, graph::DomainId d,
                          const graph::EdgeData& e) {
    out << graph.host_name(h) << "->" << graph.domain_name(d) << " t=";
    for (const util::TimePoint t : e.times) out << t << ',';
    out << " ua=";
    for (const graph::UaId ua : e.user_agents) out << graph.ua_name(ua) << ',';
    out << " ref=" << e.any_referer << " noua=" << e.any_empty_ua << '\n';
  });
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    out << "ips " << graph.domain_name(d) << ":";
    for (const util::Ipv4 ip : graph.domain_ips(d)) out << ip.value << ',';
    out << '\n';
  }
  return out.str();
}

/// Sequential-ingest baseline over `events` in order (shard-invariant by
/// the DayGraph merge contract, so one shard suffices).
std::string sequential_signature(const std::vector<logs::ConnEvent>& events) {
  graph::DayGraph graph(1);
  for (const auto& ev : events) graph.add_event(ev);
  graph.finalize();
  return graph_signature(graph);
}

/// A varied event mix inside one tick: repeat edges, distinct UAs, IPs,
/// empty-UA and referer flags, interleaved hosts.
std::vector<logs::ConnEvent> tick_events(std::int64_t tick, int salt) {
  DayBuilder builder;
  const util::TimePoint base = tick * 300;
  for (int i = 0; i < 8; ++i) {
    const std::string host = "h" + std::to_string((i + salt) % 3);
    const std::string domain = "d" + std::to_string((i * 7 + salt) % 5) + ".com";
    builder.visit(host, domain, base + 10 + i * 13,
                  util::Ipv4::from_octets(10, 0, salt % 250, i),
                  i % 3 == 0 ? "" : "UA" + std::to_string(i % 2), i % 2 == 0);
  }
  builder.visit("h9", "shared.com", base + 200, {0}, "UA0", false);
  return builder.events();
}

WindowConfig small_window() {
  WindowConfig config;
  config.tick_seconds = 300;
  config.window_seconds = 1200;  // 4 ticks
  return config;
}

WindowAccumulator make_window(std::size_t shards,
                              const WindowConfig& config = small_window()) {
  WindowAccumulator window(config);
  window.set_partial_factory(
      [shards] { return graph::DayGraph(shards); });
  return window;
}

void append_all(WindowAccumulator& window,
                const std::vector<logs::ConnEvent>& events) {
  for (const auto& ev : events) {
    window.append(ev, window.config().tick_of(ev.ts), util::day_of(ev.ts));
  }
}

// Sealing a bucket moves its events from the raw buffer into the cached
// partial and releases the raw storage — the memory fix behind the
// rt_peak_buffered_events bench assertion.
TEST(RtIncrementalTest, SealReleasesRawEvents) {
  WindowAccumulator window = make_window(1);
  const auto events = tick_events(0, 1);
  append_all(window, events);
  EXPECT_EQ(window.buffered_events(), events.size());
  EXPECT_EQ(window.cached_events(), 0u);

  const auto view = window.merge_window(0);
  ASSERT_NE(view.graph, nullptr);
  EXPECT_EQ(view.events, events.size());
  EXPECT_EQ(window.buffered_events(), 0u);
  EXPECT_EQ(window.cached_events(), events.size());
  EXPECT_EQ(window.cache_stats().buckets_sealed, 1u);
  EXPECT_EQ(window.window_events(0), events.size());
}

// Tick after tick over a sliding window: while the front is unchanged the
// running merge only absorbs the newly sealed bucket (extend); when the
// window slides it rebuilds from the cached partials. Every tick's merged
// snapshot must be bit-identical to sequentially ingesting the in-window
// events — for one and several ingest shards.
TEST(RtIncrementalTest, MergeMatchesSequentialAcrossSlideAndShards) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    WindowAccumulator window = make_window(shards);
    std::vector<std::vector<logs::ConnEvent>> per_tick;
    for (std::int64_t tick = 0; tick < 7; ++tick) {
      per_tick.push_back(tick_events(tick, static_cast<int>(tick) + 1));
      append_all(window, per_tick.back());

      const auto view = window.merge_window(tick);
      ASSERT_NE(view.graph, nullptr);
      const graph::DayGraph snap =
          view.graph->finalize_snapshot(1, view.snapshot_cache);

      std::vector<logs::ConnEvent> in_window;
      const std::int64_t first_live =
          tick - window.config().window_ticks() + 1;
      std::size_t expected_events = 0;
      for (std::int64_t t = std::max<std::int64_t>(0, first_live); t <= tick;
           ++t) {
        for (const auto& ev : per_tick[static_cast<std::size_t>(t)]) {
          in_window.push_back(ev);
          ++expected_events;
        }
      }
      EXPECT_EQ(view.events, expected_events);
      EXPECT_EQ(graph_signature(snap), sequential_signature(in_window));
      window.expire(tick);
      window.close_day(util::day_of(tick * 300));
    }
    // 4-tick window over 7 ticks: the first 4 evaluations share one front
    // (1 rebuild + 3 extends), each slide afterwards rebuilds.
    EXPECT_EQ(window.cache_stats().merge_rebuilds, 4u);
    EXPECT_EQ(window.cache_stats().merge_extends, 3u);
    EXPECT_EQ(window.cache_stats().invalidations, 0u);
  }
}

// Quiet ticks leave no bucket behind; the merge must skip the gap and the
// result must still equal the sequential ingest of what exists.
TEST(RtIncrementalTest, EmptyTickGapsAreSkipped) {
  WindowAccumulator window = make_window(1);
  const auto first = tick_events(0, 1);
  const auto later = tick_events(3, 2);  // ticks 1 and 2 stay empty
  append_all(window, first);
  ASSERT_NE(window.merge_window(0).graph, nullptr);
  append_all(window, later);

  const auto view = window.merge_window(3);
  ASSERT_NE(view.graph, nullptr);
  std::vector<logs::ConnEvent> all = first;
  all.insert(all.end(), later.begin(), later.end());
  EXPECT_EQ(view.events, all.size());
  EXPECT_EQ(graph_signature(view.graph->finalize_snapshot(1, view.snapshot_cache)),
            sequential_signature(all));
  // The gap produced no buckets, so the merge extended across it.
  EXPECT_EQ(window.cache_stats().merge_rebuilds, 1u);
  EXPECT_EQ(window.cache_stats().merge_extends, 1u);
}

// An append that lands behind an already-evaluated tick goes into the
// sealed bucket's partial (at its end-of-bucket arrival position) and
// invalidates the running merge, which must rebuild from the cached
// partials and match the sequential ingest of the effective order.
TEST(RtIncrementalTest, LateAppendIntoSealedBucketInvalidates) {
  WindowAccumulator window = make_window(1);
  const auto batch = tick_events(2, 3);
  append_all(window, batch);
  ASSERT_NE(window.merge_window(2).graph, nullptr);
  EXPECT_EQ(window.buffered_events(), 0u);

  // Same tick, arrives after the evaluation — a new edge and a new host.
  DayBuilder late_builder;
  late_builder.visit("late-host", "late.com", 2 * 300 + 299,
                     util::Ipv4::from_octets(10, 9, 9, 9), "LateUA", true);
  const logs::ConnEvent late = late_builder.events()[0];
  window.append(late, 2, util::day_of(late.ts));
  EXPECT_EQ(window.cache_stats().invalidations, 1u);
  EXPECT_EQ(window.buffered_events(), 0u);  // went into the partial directly

  const auto view = window.merge_window(2);
  ASSERT_NE(view.graph, nullptr);
  std::vector<logs::ConnEvent> effective = batch;
  effective.push_back(late);
  EXPECT_EQ(view.events, effective.size());
  EXPECT_EQ(graph_signature(view.graph->finalize_snapshot(1, view.snapshot_cache)),
            sequential_signature(effective));
  EXPECT_EQ(window.cache_stats().merge_rebuilds, 2u);  // initial + invalidated
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: incremental vs the rebuild escape hatch.
// ---------------------------------------------------------------------------

std::vector<logs::ConnEvent> browsing_day(util::Day day) {
  DayBuilder builder;
  const util::TimePoint base = util::day_start(day);
  for (int h = 0; h < 12; ++h) {
    for (int d = 0; d < 6; ++d) {
      builder.visit("h" + std::to_string(h), "pop" + std::to_string(d) + ".com",
                    base + 1000 + h * 50 + d, {0}, "CommonUA", true);
    }
  }
  return builder.events();
}

std::vector<logs::ConnEvent> campaign_day(util::Day day, MapWhois& whois) {
  const util::TimePoint base = util::day_start(day);
  auto events = browsing_day(day);
  DayBuilder extra;
  whois.add("evil-cc.ru", day - 3, day + 40);
  whois.add("evil-drop.ru", day - 4, day + 40);
  extra.visit("h5", "evil-drop.ru", base + 1990,
              util::Ipv4::from_octets(198, 51, 100, 7), "", false);
  extra.beacon("h5", "evil-cc.ru", base + 2040, 600, 40,
               util::Ipv4::from_octets(198, 51, 100, 9), "");
  whois.add("ioc-domain.ru", day - 10, day + 30);
  whois.add("related.ru", day - 9, day + 30);
  extra.visit("h6", "ioc-domain.ru", base + 3000,
              util::Ipv4::from_octets(198, 51, 100, 20), "", false);
  extra.visit("h6", "related.ru", base + 3030,
              util::Ipv4::from_octets(198, 51, 100, 21), "", false);
  for (const auto& ev : extra.events()) events.push_back(ev);
  return events;
}

struct TrainingDay {
  util::Day day = 0;
  std::vector<logs::ConnEvent> events;
};

std::vector<TrainingDay> training_days(MapWhois& whois,
                                       std::set<std::string>& reported) {
  std::vector<TrainingDay> days;
  for (int i = 0; i < 10; ++i) {
    const util::Day day = kDay - 2;
    const util::TimePoint base = util::day_start(day);
    auto events = browsing_day(day);
    DayBuilder extra;
    const std::string bad = "bad" + std::to_string(i) + ".ru";
    const std::string good = "updates" + std::to_string(i) + ".com";
    whois.add(bad, day - 5, day + 60);
    whois.add(good, day - 900, day + 900);
    reported.insert(bad);
    extra.beacon("h1", bad, base + 2000, 600, 40,
                 util::Ipv4::from_octets(203, 0, 113, 5), "");
    extra.beacon("h2", good, base + 2500, 900, 30,
                 util::Ipv4::from_octets(8, 8, 4, 4), "CommonUA");
    const std::string drop = "drop" + std::to_string(i) + ".ru";
    whois.add(drop, day - 6, day + 60);
    reported.insert(drop);
    extra.visit("h1", drop, base + 1985,
                util::Ipv4::from_octets(203, 0, 113, 9), "", false);
    const std::string blog = "blog" + std::to_string(i) + ".com";
    whois.add(blog, day - 800, day + 900);
    extra.visit("h1", blog, base + 30000,
                util::Ipv4::from_octets(9, 9, 9, 9), "CommonUA", true);
    for (const auto& ev : extra.events()) events.push_back(ev);
    days.push_back(TrainingDay{day, std::move(events)});
  }
  return days;
}

api::Detector trained_detector(MapWhois& whois, const core::LabelFn& intel,
                               const std::vector<TrainingDay>& train,
                               std::size_t threads, std::size_t shards,
                               std::size_t depth = 1) {
  core::PipelineConfig config;
  config.ua_rare_threshold = 3;
  config.parallelism = core::Parallelism{threads, shards, depth};
  api::Detector detector(config, whois);
  for (const util::Day day : {kDay - 4, kDay - 3}) {
    api::VectorSource source(day, browsing_day(day));
    detector.ingest(source);
  }
  for (const auto& day : train) {
    api::VectorSource source(day.day, &day.events);
    detector.ingest(source, intel);
  }
  detector.finalize_training();
  return detector;
}

core::SocSeeds soc_seeds() {
  core::SocSeeds seeds;
  seeds.domains = {"ioc-domain.ru"};
  return seeds;
}

/// Full serialization of a continuous run's observable output: every day
/// report plus every emission, field for field, in order.
std::string report_fingerprint(const ContinuousReport& report) {
  std::ostringstream out;
  for (const core::DayReport& day : report.days) {
    out << core::day_report_to_json(day) << '\n';
  }
  for (const IncidentEmission& e : report.emissions) {
    out << e.incident_id << '|' << e.provisional << '|' << e.new_incident
        << '|' << e.day << '|' << e.event_time << '|' << e.emission_time << '|'
        << e.latency_seconds << '|';
    for (const std::string& d : e.domains) out << d << ',';
    out << '|';
    for (const std::string& h : e.hosts) out << h << ',';
    out << '\n';
  }
  return out.str();
}

// The tentpole contract: across the full tick × threads × shards × depth
// sweep, the incremental engine must reproduce the rebuild engine's entire
// observable output — day reports and the provisional emission sequence —
// byte for byte.
TEST(RtIncrementalTest, MatchesRebuildAcrossTicksThreadsShardsDepth) {
  MapWhois whois;
  std::set<std::string> reported;
  const auto train = training_days(whois, reported);
  const core::LabelFn intel = [&reported](const std::string& domain) {
    return reported.contains(domain);
  };
  auto events = campaign_day(kDay, whois);

  for (const std::int64_t tick : {std::int64_t{300}, std::int64_t{3600},
                                  std::int64_t{86400}}) {
    for (const std::size_t threads : {1u, 8u}) {
      for (const std::size_t shards : {1u, 4u}) {
        for (const std::size_t depth : {1u, 2u}) {
          SCOPED_TRACE("tick " + std::to_string(tick) + ", threads " +
                       std::to_string(threads) + ", shards " +
                       std::to_string(shards) + ", depth " +
                       std::to_string(depth));
          const auto run = [&](bool incremental) {
            api::Detector detector =
                trained_detector(whois, intel, train, threads, shards, depth);
            EngineConfig config;
            config.window.tick_seconds = tick;
            config.window.incremental = incremental;
            config.seeds = soc_seeds();
            api::VectorSource source(kDay, &events);
            return detector.run_continuous(source, config);
          };
          const ContinuousReport incremental = run(true);
          const ContinuousReport rebuild = run(false);
          EXPECT_EQ(report_fingerprint(incremental),
                    report_fingerprint(rebuild));
          // The cache actually carried the evaluations (no silent fallback
          // to raw replay) whenever a tick boundary fell inside the day...
          if (tick < 86400) {
            EXPECT_GT(incremental.stats.buckets_sealed, 0u);
            EXPECT_GT(incremental.stats.partial_absorbs, 0u);
          }
          // ...and the rebuild path never touched it.
          EXPECT_EQ(rebuild.stats.buckets_sealed, 0u);
          EXPECT_EQ(rebuild.stats.partial_absorbs, 0u);
        }
      }
    }
  }
}

// Chunk boundaries are an ingestion artifact and must not show through:
// one chunk per event, odd-sized chunks straddling tick boundaries, and
// one chunk for the whole day all produce identical output.
TEST(RtIncrementalTest, ChunkStraddlingTickBoundariesIsInvisible) {
  MapWhois whois;
  std::set<std::string> reported;
  const auto train = training_days(whois, reported);
  const core::LabelFn intel = [&reported](const std::string& domain) {
    return reported.contains(domain);
  };
  auto events = campaign_day(kDay, whois);

  std::string baseline;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1000000}}) {
    SCOPED_TRACE("chunk_events " + std::to_string(chunk));
    api::Detector detector = trained_detector(whois, intel, train, 1, 1);
    EngineConfig config;
    config.window.tick_seconds = 300;
    config.seeds = soc_seeds();
    api::VectorSource source(kDay, &events, chunk);
    const ContinuousReport report = detector.run_continuous(source, config);
    const std::string fingerprint = report_fingerprint(report);
    if (baseline.empty()) {
      baseline = fingerprint;
      ASSERT_NE(baseline.find("evil-cc.ru"), std::string::npos);
    } else {
      EXPECT_EQ(fingerprint, baseline);
    }
  }
}

}  // namespace
}  // namespace eid::rt
