// The greedy (label-all-above-threshold) variant of Algorithm 1 and
// determinism guarantees of belief propagation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/belief_propagation.h"
#include "test_helpers.h"

namespace eid::core {
namespace {

using test::DayBuilder;

class ScriptedScorer final : public DomainScorer {
 public:
  explicit ScriptedScorer(const graph::DayGraph& graph) : graph_(graph) {}
  void set_score(const std::string& name, double score) { scores_[name] = score; }
  bool detect_cc(graph::DomainId) const override { return false; }
  double similarity_score(graph::DomainId domain,
                          std::span<const graph::DomainId>) const override {
    auto it = scores_.find(graph_.domain_name(domain));
    return it == scores_.end() ? 0.0 : it->second;
  }

 private:
  const graph::DayGraph& graph_;
  std::map<std::string, double> scores_;
};

std::unordered_set<graph::DomainId> all_rare(const graph::DayGraph& graph) {
  std::unordered_set<graph::DomainId> rare;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) rare.insert(d);
  return rare;
}

TEST(BpVariantTest, GreedyLabelsAllAboveThresholdInOneIteration) {
  DayBuilder builder;
  builder.visit("h1", "a.com", 1000);
  builder.visit("h1", "b.com", 1100);
  builder.visit("h1", "c.com", 1200);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.set_score("a.com", 0.9);
  scorer.set_score("b.com", 0.8);
  scorer.set_score("c.com", 0.1);

  const std::vector<graph::HostId> seeds = {graph.find_host("h1")};
  BpConfig config;
  config.sim_threshold = 0.25;
  config.max_iterations = 1;
  config.label_all_above_threshold = true;
  const BpResult result =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  // Both qualifying domains labeled in the single iteration; c.com spared.
  EXPECT_EQ(result.domains.size(), 2u);
  EXPECT_EQ(result.iterations, 1u);
  for (const BpEvent& event : result.trace) {
    EXPECT_EQ(event.iteration, 1u);
    EXPECT_NE(graph.domain_name(event.domain), "c.com");
  }
}

TEST(BpVariantTest, IncrementalNeedsOneIterationPerDomain) {
  DayBuilder builder;
  builder.visit("h1", "a.com", 1000);
  builder.visit("h1", "b.com", 1100);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.set_score("a.com", 0.9);
  scorer.set_score("b.com", 0.8);
  const std::vector<graph::HostId> seeds = {graph.find_host("h1")};

  BpConfig incremental;
  incremental.max_iterations = 1;
  const BpResult one =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, incremental);
  EXPECT_EQ(one.domains.size(), 1u);  // greedy above would take both
}

TEST(BpVariantTest, GreedyStopsWhenNothingQualifies) {
  DayBuilder builder;
  builder.visit("h1", "a.com", 1000);
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  scorer.set_score("a.com", 0.1);
  const std::vector<graph::HostId> seeds = {graph.find_host("h1")};
  BpConfig config;
  config.sim_threshold = 0.25;
  config.label_all_above_threshold = true;
  const BpResult result =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  EXPECT_TRUE(result.domains.empty());
  EXPECT_TRUE(result.stopped_by_threshold);
}

TEST(BpVariantTest, GreedySupersetOfIncrementalDetections) {
  // Property: with the same budget, greedy labels a superset of what the
  // incremental variant labels (this scorer ignores the labeled set, so
  // scores are static and the property is exact).
  DayBuilder builder;
  for (int i = 0; i < 8; ++i) {
    const std::string host = "h" + std::to_string(i);
    builder.visit(host, "d" + std::to_string(i) + ".com", 1000 + i * 10);
    builder.visit(host, "d" + std::to_string(i + 1) + ".com", 1005 + i * 10);
  }
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  for (int i = 0; i <= 8; ++i) {
    scorer.set_score("d" + std::to_string(i) + ".com", i % 3 == 0 ? 0.2 : 0.7);
  }
  const std::vector<graph::HostId> seeds = {graph.find_host("h0")};
  BpConfig config;
  config.max_iterations = 4;
  const BpResult incremental =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  config.label_all_above_threshold = true;
  const BpResult greedy =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  std::set<graph::DomainId> greedy_set(greedy.domains.begin(),
                                       greedy.domains.end());
  for (const graph::DomainId dom : incremental.domains) {
    EXPECT_TRUE(greedy_set.contains(dom)) << graph.domain_name(dom);
  }
}

TEST(BpVariantTest, RunsAreDeterministic) {
  DayBuilder builder;
  for (int i = 0; i < 30; ++i) {
    builder.visit("h" + std::to_string(i % 7), "d" + std::to_string(i) + ".com",
                  1000 + i * 13);
  }
  const graph::DayGraph graph = builder.build();
  ScriptedScorer scorer(graph);
  for (int i = 0; i < 30; ++i) {
    scorer.set_score("d" + std::to_string(i) + ".com", 0.3 + 0.02 * (i % 10));
  }
  const std::vector<graph::HostId> seeds = {graph.find_host("h0")};
  const BpConfig config;
  const BpResult a =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  const BpResult b =
      belief_propagation(graph, all_rare(graph), seeds, {}, scorer, config);
  EXPECT_EQ(a.domains, b.domains);
  EXPECT_EQ(a.hosts, b.hosts);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].domain, b.trace[i].domain);
    EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration);
  }
}

}  // namespace
}  // namespace eid::core
