#include "logs/netflow.h"

#include <gtest/gtest.h>

#include <set>

#include "logs/reduction.h"
#include "sim/ac.h"
#include "sim/netflow_view.h"

namespace eid::logs {
namespace {

util::Ipv4 ip(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
  return util::Ipv4::from_octets(a, b, c, d);
}

FlowRecord flow(util::TimePoint ts, const std::string& src, util::Ipv4 dst,
                std::uint16_t port = 80) {
  FlowRecord f;
  f.ts = ts;
  f.src = src;
  f.dst_ip = dst;
  f.dst_port = port;
  return f;
}

TEST(PassiveDnsTest, AttributesMostRecentMapping) {
  PassiveDnsCache cache;
  cache.observe("old-tenant.com", ip(203, 0, 113, 5), 1000);
  cache.observe("new-tenant.ru", ip(203, 0, 113, 5), 5000);
  EXPECT_EQ(cache.attribute(ip(203, 0, 113, 5), 2000).value_or(""),
            "old-tenant.com");
  EXPECT_EQ(cache.attribute(ip(203, 0, 113, 5), 9999).value_or(""),
            "new-tenant.ru");
  // Before any mapping or unknown IP: no attribution.
  EXPECT_FALSE(cache.attribute(ip(203, 0, 113, 5), 500).has_value());
  EXPECT_FALSE(cache.attribute(ip(8, 8, 8, 8), 2000).has_value());
}

TEST(PassiveDnsTest, DuplicateObservationsCoalesce) {
  PassiveDnsCache cache;
  for (int i = 0; i < 100; ++i) {
    cache.observe("beacon.ru", ip(1, 2, 3, 4), 1000 + i * 600);
  }
  EXPECT_EQ(cache.observation_count(), 1u);
  EXPECT_EQ(cache.attribute(ip(1, 2, 3, 4), 90000).value_or(""), "beacon.ru");
}

TEST(PassiveDnsTest, OutOfOrderObservations) {
  PassiveDnsCache cache;
  cache.observe("late.com", ip(9, 9, 9, 9), 5000);
  cache.observe("early.com", ip(9, 9, 9, 9), 1000);
  EXPECT_EQ(cache.attribute(ip(9, 9, 9, 9), 1500).value_or(""), "early.com");
  EXPECT_EQ(cache.attribute(ip(9, 9, 9, 9), 6000).value_or(""), "late.com");
}

TEST(PassiveDnsTest, ObserveDayFiltersToAnsweredARecords) {
  PassiveDnsCache cache;
  std::vector<DnsRecord> records(3);
  records[0].ts = 10;
  records[0].domain = "a.com";
  records[0].type = DnsType::A;
  records[0].response_ip = ip(1, 1, 1, 1);
  records[1].ts = 20;
  records[1].domain = "b.com";
  records[1].type = DnsType::TXT;  // not an A record
  records[1].response_ip = ip(2, 2, 2, 2);
  records[2].ts = 30;
  records[2].domain = "c.com";
  records[2].type = DnsType::A;  // unanswered
  cache.observe_day(records);
  EXPECT_TRUE(cache.attribute(ip(1, 1, 1, 1), 100).has_value());
  EXPECT_FALSE(cache.attribute(ip(2, 2, 2, 2), 100).has_value());
}

TEST(FlowReductionTest, PortAndProtocolFilter) {
  PassiveDnsCache cache;
  cache.observe("web.com", ip(5, 5, 5, 5), 0);
  std::vector<FlowRecord> flows = {
      flow(100, "h1", ip(5, 5, 5, 5), 80),
      flow(100, "h1", ip(5, 5, 5, 5), 443),
      flow(100, "h1", ip(5, 5, 5, 5), 25),   // SMTP: dropped
      flow(100, "h1", ip(5, 5, 5, 5), 6667), // IRC: dropped
  };
  flows.push_back(flow(100, "h1", ip(5, 5, 5, 5), 80));
  flows.back().protocol = 17;  // UDP: dropped
  FlowReductionStats stats;
  const auto events = reduce_flows(flows, cache, FlowReductionConfig{}, &stats);
  EXPECT_EQ(stats.port_filtered, 3u);
  EXPECT_EQ(events.size(), 2u);
}

TEST(FlowReductionTest, UnattributedAndInternalDropped) {
  PassiveDnsCache cache;
  cache.observe("known.com", ip(5, 5, 5, 5), 0);
  const std::vector<FlowRecord> flows = {
      flow(100, "h1", ip(5, 5, 5, 5)),
      flow(100, "h1", ip(6, 6, 6, 6)),     // never resolved: unattributed
      flow(100, "h1", ip(10, 0, 0, 9)),    // internal destination
  };
  FlowReductionStats stats;
  const auto events = reduce_flows(flows, cache, FlowReductionConfig{}, &stats);
  EXPECT_EQ(stats.unattributed, 1u);
  EXPECT_EQ(stats.internal_destinations, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].domain, "known.com");
  EXPECT_FALSE(events[0].has_http_context);
}

TEST(FlowReductionTest, DomainsAreFolded) {
  PassiveDnsCache cache;
  cache.observe("www.deep.example.com", ip(5, 5, 5, 5), 0);
  const std::vector<FlowRecord> flows = {flow(100, "h1", ip(5, 5, 5, 5))};
  const auto events = reduce_flows(flows, cache, FlowReductionConfig{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].domain, "example.com");
}

TEST(FlowReductionTest, IpFluxAttributesPerFlowTime) {
  // The attacker moves a domain between IPs; flows attribute to whoever
  // held the address when the flow started.
  PassiveDnsCache cache;
  cache.observe("benign.com", ip(7, 7, 7, 7), 0);
  cache.observe("evil.ru", ip(7, 7, 7, 7), 5000);
  const std::vector<FlowRecord> flows = {flow(1000, "h1", ip(7, 7, 7, 7)),
                                         flow(9000, "h1", ip(7, 7, 7, 7))};
  const auto events = reduce_flows(flows, cache, FlowReductionConfig{});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].domain, "benign.com");
  EXPECT_EQ(events[1].domain, "evil.ru");
}

TEST(NetflowViewTest, MatchesProxyReductionOnDomains) {
  // The NetFlow view of a simulated day must yield the same (host, folded
  // domain) universe as the proxy reduction of the same day.
  sim::AcConfig config;
  config.n_hosts = 60;
  config.n_popular = 30;
  config.tail_per_day = 10;
  config.automated_tail_per_day = 2;
  config.grayware_per_day = 1;
  config.campaigns_per_week = 3.0;
  sim::AcScenario scenario(config);
  auto& simulator = scenario.simulator();
  const util::Day day = scenario.training_begin();
  const sim::DayLogs raw = simulator.simulate_day(day);
  const auto reduction = simulator.proxy_reduction_config();

  const auto proxy_events =
      reduce_proxy(raw.proxy, simulator.dhcp(), reduction);
  const sim::NetflowDay netflow =
      sim::to_netflow(raw, simulator.dhcp(), reduction);
  PassiveDnsCache pdns;
  pdns.observe_day(netflow.dns);
  const auto flow_events = reduce_flows(netflow.flows, pdns, FlowReductionConfig{});

  std::set<std::pair<std::string, std::string>> proxy_pairs;
  for (const auto& ev : proxy_events) proxy_pairs.insert({ev.host, ev.domain});
  std::set<std::pair<std::string, std::string>> flow_pairs;
  for (const auto& ev : flow_events) flow_pairs.insert({ev.host, ev.domain});
  // Every flow pair must exist in the proxy view; coverage must be near
  // total (flows can only lose unattributable corner cases).
  for (const auto& pair : flow_pairs) {
    EXPECT_TRUE(proxy_pairs.contains(pair)) << pair.first << " " << pair.second;
  }
  EXPECT_GT(flow_pairs.size() * 10, proxy_pairs.size() * 9);
  EXPECT_EQ(flow_events.size(), proxy_events.size());
}

}  // namespace
}  // namespace eid::logs
