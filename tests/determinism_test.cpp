// Determinism guarantees: identical inputs and configuration must produce
// bit-identical detection output — the property that makes every bench and
// experiment in this repository reproducible.
#include <gtest/gtest.h>

#include "api/detector.h"
#include "api/event_source.h"
#include "core/pipeline.h"
#include "core/report_json.h"
#include "eval/lanl_runner.h"
#include "sim/ac.h"
#include "test_helpers.h"
#include "util/parallel.h"

namespace eid {
namespace {

std::vector<logs::ConnEvent> synthetic_day(util::Day day) {
  test::DayBuilder builder;
  const util::TimePoint base = util::day_start(day);
  util::Rng rng(17);
  for (int h = 0; h < 20; ++h) {
    for (int d = 0; d < 10; ++d) {
      if (rng.chance(0.4)) {
        builder.visit("h" + std::to_string(h), "d" + std::to_string(d) + ".com",
                      base + static_cast<util::TimePoint>(rng.uniform(80000)),
                      util::Ipv4{static_cast<std::uint32_t>(rng.next_u64())},
                      rng.chance(0.5) ? "UA-a" : "UA-b", rng.chance(0.6));
      }
    }
  }
  builder.beacon("h1", "beacon.ru", base + 2000, 600, 40,
                 util::Ipv4::from_octets(198, 51, 100, 9), "");
  return builder.events();
}

TEST(DeterminismTest, PipelineDayReportIsBitStable) {
  test::MapWhois whois;
  whois.add("beacon.ru", 95, 400);
  const auto events = synthetic_day(100);

  const auto run = [&] {
    core::Pipeline pipeline(core::PipelineConfig{}, whois);
    pipeline.profile_day(synthetic_day(99));
    return core::day_report_to_json(
        pipeline.run_day(events, 100, core::SocSeeds{}));
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, ParallelismDoesNotChangeReports) {
  // The parallel engine contract: analysis_threads and ingest shard count
  // are pure performance knobs — bit-identical DayReports for any values.
  test::MapWhois whois;
  whois.add("beacon.ru", 95, 400);
  const auto events = synthetic_day(100);
  std::string baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::size_t shards : {1u, 4u}) {
      core::PipelineConfig config;
      config.parallelism = core::Parallelism{threads, shards};
      core::Pipeline pipeline(config, whois);
      pipeline.profile_day(synthetic_day(99));
      const std::string json = core::day_report_to_json(
          pipeline.run_day(events, 100, core::SocSeeds{}));
      if (baseline.empty()) {
        baseline = json;
      } else {
        EXPECT_EQ(json, baseline)
            << threads << " threads, " << shards << " shards";
      }
    }
  }
}

TEST(DeterminismTest, DayPipelinedMultiDayRunsAreBitIdentical) {
  // The full parallelism surface — worker threads, ingest shards and the
  // multi-day pipeline depth — is pure performance: every DayReport of a
  // multi-day run must be bit-identical across all of it.
  test::MapWhois whois;
  whois.add("beacon.ru", 95, 400);
  std::vector<std::vector<logs::ConnEvent>> days;
  for (util::Day day = 100; day < 104; ++day) {
    days.push_back(synthetic_day(day));
  }

  std::string baseline;
  for (const std::size_t depth : {1u, 2u}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      for (const std::size_t shards : {1u, 4u}) {
        core::PipelineConfig config;
        config.parallelism = core::Parallelism{threads, shards, depth};
        api::Detector detector(config, whois);
        auto profile = synthetic_day(99);
        api::VectorSource bootstrap(99, &profile);
        detector.ingest(bootstrap);
        api::MultiDaySource source(100, &days);
        const std::vector<core::DayReport> reports = detector.run_days(source);
        ASSERT_EQ(reports.size(), days.size());
        std::string all;
        for (const core::DayReport& report : reports) {
          all += core::day_report_to_json(report);
        }
        if (baseline.empty()) {
          baseline = all;
        } else {
          EXPECT_EQ(all, baseline) << threads << " threads, " << shards
                                   << " shards, depth " << depth;
        }
      }
    }
  }
}

TEST(DeterminismTest, ObservabilityDoesNotPerturbReports) {
  // Metrics + tracing are a pure side channel: the multi-day parallelism
  // sweep must stay bit-identical with both fully on versus fully off,
  // and the collected trace must be well-formed Chrome trace-event JSON.
  test::MapWhois whois;
  whois.add("beacon.ru", 95, 400);
  std::vector<std::vector<logs::ConnEvent>> days;
  for (util::Day day = 100; day < 103; ++day) {
    days.push_back(synthetic_day(day));
  }

  const auto run = [&](std::size_t threads, std::size_t shards,
                       std::size_t depth) {
    core::PipelineConfig config;
    config.parallelism = core::Parallelism{threads, shards, depth};
    api::Detector detector(config, whois);
    auto profile = synthetic_day(99);
    api::VectorSource bootstrap(99, &profile);
    detector.ingest(bootstrap);
    api::MultiDaySource source(100, &days);
    std::string all;
    for (const core::DayReport& report : detector.run_days(source)) {
      all += core::day_report_to_json(report);
    }
    return all;
  };

  std::string baseline_off;
  std::string baseline_on;
  for (const std::size_t depth : {1u, 2u}) {
    for (const std::size_t threads : {1u, 8u}) {
      obs::metrics().set_enabled(false);
      const std::string off = run(threads, 4, depth);

      obs::TraceSink sink;
      api::Detector::set_trace_sink(&sink);
      obs::metrics().set_enabled(true);
      const std::string on = run(threads, 4, depth);
      api::Detector::set_trace_sink(nullptr);

      EXPECT_EQ(on, off) << threads << " threads, depth " << depth;
      if (baseline_off.empty()) baseline_off = off;
      if (baseline_on.empty()) baseline_on = on;
      EXPECT_EQ(off, baseline_off) << threads << " threads, depth " << depth;
      EXPECT_EQ(on, baseline_on) << threads << " threads, depth " << depth;

      EXPECT_GT(sink.event_count(), 0u) << "stages must record spans";
      EXPECT_TRUE(test::json_well_formed(sink.to_chrome_json()));
    }
  }
  obs::metrics().set_enabled(true);
}

TEST(DeterminismTest, SteadyStateSpawnsNoThreads) {
  // The persistent-executor contract: after the pool is built, multi-day
  // operation constructs zero further threads — every fan-out and day
  // commit rides the same workers.
  test::MapWhois whois;
  whois.add("beacon.ru", 95, 400);
  std::vector<std::vector<logs::ConnEvent>> warmup_days{synthetic_day(100)};
  std::vector<std::vector<logs::ConnEvent>> more_days;
  for (util::Day day = 101; day < 105; ++day) {
    more_days.push_back(synthetic_day(day));
  }

  core::PipelineConfig config;
  config.parallelism = core::Parallelism{8, 4, 2};
  api::Detector detector(config, whois);
  api::MultiDaySource warmup(100, &warmup_days);
  detector.run_days(warmup);

  const std::uint64_t spawned = util::thread_spawn_count();
  api::MultiDaySource source(101, &more_days);
  const auto reports = detector.run_days(source);
  EXPECT_EQ(reports.size(), more_days.size());
  EXPECT_EQ(util::thread_spawn_count(), spawned)
      << "steady-state days must not construct threads";
}

TEST(DeterminismTest, AcScenarioReducedDaysAreStable) {
  sim::AcConfig config;
  config.n_hosts = 50;
  config.n_popular = 25;
  config.tail_per_day = 8;
  config.automated_tail_per_day = 1;
  config.grayware_per_day = 1;
  config.campaigns_per_week = 2.0;

  sim::AcScenario first(config);
  sim::AcScenario second(config);
  for (int offset = 0; offset < 3; ++offset) {
    const util::Day day = first.training_begin() + offset;
    const auto a = first.simulator().reduced_day(day);
    const auto b = second.simulator().reduced_day(day);
    ASSERT_EQ(a.size(), b.size()) << offset;
    for (std::size_t i = 0; i < a.size(); i += 101) {
      EXPECT_EQ(a[i].ts, b[i].ts);
      EXPECT_EQ(a[i].host, b[i].host);
      EXPECT_EQ(a[i].domain, b[i].domain);
      EXPECT_EQ(a[i].user_agent, b[i].user_agent);
    }
  }
}

TEST(DeterminismTest, LanlCaseResultIsStable) {
  sim::LanlConfig config;
  config.n_hosts = 100;
  config.n_servers = 3;
  config.n_popular = 50;
  config.tail_per_day = 20;
  config.automated_tail_per_day = 2;
  config.server_tail_per_day = 10;

  const auto run = [&config] {
    sim::LanlScenario scenario(config);
    eval::LanlRunner runner(scenario);
    runner.bootstrap();
    const auto& challenge = scenario.cases().front();
    for (util::Day day = scenario.challenge_begin(); day < challenge.day; ++day) {
      runner.finish_day(day);
    }
    const core::DayAnalysis analysis = runner.analyze_day(challenge.day);
    return runner.run_case(challenge, analysis).detected_domains;
  };
  EXPECT_EQ(run(), run());
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentWorlds) {
  sim::AcConfig a_config;
  a_config.n_hosts = 40;
  a_config.n_popular = 20;
  a_config.tail_per_day = 5;
  sim::AcConfig b_config = a_config;
  b_config.seed = a_config.seed + 1;
  sim::AcScenario a(a_config);
  sim::AcScenario b(b_config);
  const auto ea = a.simulator().reduced_day(a.training_begin());
  const auto eb = b.simulator().reduced_day(b.training_begin());
  // Same structure, different content.
  std::size_t diff = 0;
  for (std::size_t i = 0; i < std::min(ea.size(), eb.size()); ++i) {
    if (ea[i].domain != eb[i].domain) ++diff;
  }
  EXPECT_GT(diff, std::min(ea.size(), eb.size()) / 4);
}

}  // namespace
}  // namespace eid
