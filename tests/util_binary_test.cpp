#include "util/binary.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/crc32.h"

namespace eid::util {
namespace {

TEST(ByteWriterTest, FixedWidthLittleEndian) {
  ByteWriter out;
  out.u8(0xab);
  out.u32le(0x01020304u);
  out.u64le(0x1122334455667788ull);
  const std::string& bytes = out.data();
  ASSERT_EQ(bytes.size(), 13u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0xab);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x04);  // LE low byte first
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]), 0x88);
  EXPECT_EQ(static_cast<unsigned char>(bytes[12]), 0x11);
}

TEST(ByteWriterTest, VarintBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 0xffffffffull,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t value : cases) {
    ByteWriter out;
    out.varint(value);
    ByteReader in(out.data());
    std::uint64_t decoded = 0;
    ASSERT_TRUE(in.varint(decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(in.at_end());
  }
  // One byte for 7 bits, two for 14, ten for the full 64.
  ByteWriter small;
  small.varint(127);
  EXPECT_EQ(small.size(), 1u);
  ByteWriter two;
  two.varint(128);
  EXPECT_EQ(two.size(), 2u);
  ByteWriter max;
  max.varint(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(max.size(), 10u);
}

TEST(ByteReaderTest, TruncatedVarintFails) {
  ByteReader in(std::string_view("\x80\x80", 2));  // continuation, then EOF
  std::uint64_t value = 0;
  EXPECT_FALSE(in.varint(value));
  EXPECT_FALSE(in.ok());
}

TEST(ByteReaderTest, OverlongVarintFails) {
  // 11 continuation bytes: more than 64 bits of payload.
  const std::string bytes(11, '\x80');
  ByteReader in(bytes);
  std::uint64_t value = 0;
  EXPECT_FALSE(in.varint(value));
}

TEST(ByteReaderTest, DoubleRoundTripsExactly) {
  const double cases[] = {0.0,
                          -0.0,
                          1.5,
                          -1e-300,
                          0.1,
                          std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::denorm_min()};
  for (const double value : cases) {
    ByteWriter out;
    out.f64(value);
    ByteReader in(out.data());
    double decoded = 0.0;
    ASSERT_TRUE(in.f64(decoded));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded),
              std::bit_cast<std::uint64_t>(value));
  }
}

TEST(ByteReaderTest, StringViewsAndBounds) {
  ByteWriter out;
  out.str("hello");
  out.str("");
  ByteReader in(out.data());
  std::string_view a;
  std::string_view b;
  ASSERT_TRUE(in.str(a));
  ASSERT_TRUE(in.str(b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_TRUE(in.at_end());
  std::string_view c;
  EXPECT_FALSE(in.str(c));  // exhausted
}

TEST(ByteReaderTest, LengthBeyondBufferFails) {
  ByteWriter out;
  out.varint(100);  // claims 100 bytes follow
  out.bytes("abc");
  ByteReader in(out.data());
  std::string_view text;
  EXPECT_FALSE(in.str(text));
}

TEST(Crc32Test, KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data =
      "a moderately long buffer that spans several slicing blocks........";
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    const std::uint32_t a = crc32(data);
    const std::uint32_t b = crc32(std::string_view(data).substr(split),
                                  crc32(std::string_view(data).substr(0, split)));
    EXPECT_EQ(a, b) << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(1024, 'x');
  const std::uint32_t clean = crc32(data);
  data[512] = static_cast<char>(data[512] ^ 0x10);
  EXPECT_NE(crc32(data), clean);
}

}  // namespace
}  // namespace eid::util
