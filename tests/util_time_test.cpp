#include "util/time.h"

#include <gtest/gtest.h>

namespace eid::util {
namespace {

TEST(TimeTest, EpochIsDayZero) {
  EXPECT_EQ(make_day(1970, 1, 1), 0);
  EXPECT_EQ(day_start(0), 0);
}

TEST(TimeTest, KnownDates) {
  EXPECT_EQ(make_day(1970, 1, 2), 1);
  EXPECT_EQ(make_day(2000, 3, 1), 11017);
  EXPECT_EQ(make_day(2013, 2, 1), 15737);   // LANL bootstrap start
  EXPECT_EQ(make_day(2014, 1, 1), 16071);   // AC training start
}

TEST(TimeTest, CivilRoundTripAcrossYears) {
  for (Day day = make_day(2012, 1, 1); day <= make_day(2015, 12, 31); ++day) {
    const CivilDate civil = civil_from_days(day);
    EXPECT_EQ(days_from_civil(civil), day);
  }
}

TEST(TimeTest, LeapYearHandling) {
  EXPECT_EQ(make_day(2012, 2, 29) + 1, make_day(2012, 3, 1));
  EXPECT_EQ(make_day(2013, 2, 28) + 1, make_day(2013, 3, 1));
  EXPECT_EQ(make_day(2000, 2, 29) + 1, make_day(2000, 3, 1));  // 400-year rule
}

TEST(TimeTest, DayOfFloorsNegativeTimes) {
  EXPECT_EQ(day_of(-1), -1);
  EXPECT_EQ(day_of(-kSecondsPerDay), -1);
  EXPECT_EQ(day_of(-kSecondsPerDay - 1), -2);
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(kSecondsPerDay - 1), 0);
  EXPECT_EQ(day_of(kSecondsPerDay), 1);
}

TEST(TimeTest, SecondsIntoDay) {
  const TimePoint t = make_time(2014, 2, 13, 10, 30, 15);
  EXPECT_EQ(seconds_into_day(t), 10 * 3600 + 30 * 60 + 15);
  EXPECT_EQ(day_of(t), make_day(2014, 2, 13));
}

TEST(TimeTest, FormatDay) {
  EXPECT_EQ(format_day(make_day(2013, 3, 19)), "2013-03-19");
  EXPECT_EQ(format_day(make_day(2014, 2, 1)), "2014-02-01");
}

TEST(TimeTest, FormatTime) {
  EXPECT_EQ(format_time(make_time(2014, 2, 13, 9, 5, 7)), "2014-02-13T09:05:07Z");
  EXPECT_EQ(format_time(0), "1970-01-01T00:00:00Z");
}

TEST(TimeTest, ParseDayRoundTrip) {
  Day day = 0;
  ASSERT_TRUE(parse_day("2013-03-22", day));
  EXPECT_EQ(day, make_day(2013, 3, 22));
  EXPECT_FALSE(parse_day("not-a-date", day));
  EXPECT_FALSE(parse_day("2013-13-01", day));
  EXPECT_FALSE(parse_day("2013-00-10", day));
}

TEST(TimeTest, ParseTimeRoundTrip) {
  TimePoint t = 0;
  ASSERT_TRUE(parse_time("2014-02-13T10:30:15Z", t));
  EXPECT_EQ(t, make_time(2014, 2, 13, 10, 30, 15));
  EXPECT_FALSE(parse_time("2014-02-13", t));
  EXPECT_FALSE(parse_time("2014-02-13T25:00:00", t));
}

class TimeFormatRoundTrip : public ::testing::TestWithParam<TimePoint> {};

TEST_P(TimeFormatRoundTrip, FormatThenParseIsIdentity) {
  const TimePoint t = GetParam();
  TimePoint parsed = 0;
  ASSERT_TRUE(parse_time(format_time(t), parsed));
  EXPECT_EQ(parsed, t);
}

INSTANTIATE_TEST_SUITE_P(
    Samples, TimeFormatRoundTrip,
    ::testing::Values(0, 86399, make_time(2013, 2, 1, 0, 0, 1),
                      make_time(2013, 3, 22, 23, 59, 59),
                      make_time(2014, 2, 28, 12, 0, 0),
                      make_time(2038, 1, 19, 3, 14, 7)));

}  // namespace
}  // namespace eid::util
