#include "util/strings.h"

#include <gtest/gtest.h>

namespace eid::util {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitEmptyStringYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("WwW.ExAmPle.COM"), "www.example.com");
  EXPECT_EQ(to_lower("already lower 123"), "already lower 123");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("www.example.com", "www."));
  EXPECT_FALSE(starts_with("example.com", "www."));
  EXPECT_TRUE(ends_with("evil.example.com", ".example.com"));
  EXPECT_FALSE(ends_with("com", ".example.com"));
}

TEST(StringsTest, IsAllDigits) {
  EXPECT_TRUE(is_all_digits("0123456789"));
  EXPECT_FALSE(is_all_digits(""));
  EXPECT_FALSE(is_all_digits("12a"));
  EXPECT_FALSE(is_all_digits("-12"));
}

}  // namespace
}  // namespace eid::util
