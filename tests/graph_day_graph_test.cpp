#include "graph/day_graph.h"

#include <gtest/gtest.h>

namespace eid::graph {
namespace {

logs::ConnEvent event(util::TimePoint ts, std::string host, std::string domain,
                      std::string ua = "", bool referer = false) {
  logs::ConnEvent ev;
  ev.ts = ts;
  ev.host = std::move(host);
  ev.domain = std::move(domain);
  ev.user_agent = std::move(ua);
  ev.has_referer = referer;
  ev.has_http_context = true;
  ev.dest_ip = util::Ipv4::from_octets(1, 2, 3, 4);
  return ev;
}

TEST(DayGraphTest, BasicAdjacency) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com"));
  graph.add_event(event(20, "h1", "b.com"));
  graph.add_event(event(30, "h2", "a.com"));
  graph.finalize();
  EXPECT_EQ(graph.host_count(), 2u);
  EXPECT_EQ(graph.domain_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 3u);

  const DomainId a = graph.find_domain("a.com");
  ASSERT_NE(a, kNoId);
  EXPECT_EQ(graph.domain_hosts(a).size(), 2u);
  const HostId h1 = graph.find_host("h1");
  ASSERT_NE(h1, kNoId);
  EXPECT_EQ(graph.host_domains(h1).size(), 2u);
}

TEST(DayGraphTest, EdgeTimesSortedAfterFinalize) {
  DayGraph graph;
  graph.add_event(event(30, "h1", "a.com"));
  graph.add_event(event(10, "h1", "a.com"));
  graph.add_event(event(20, "h1", "a.com"));
  graph.finalize();
  const EdgeData* edge =
      graph.edge(graph.find_host("h1"), graph.find_domain("a.com"));
  ASSERT_NE(edge, nullptr);
  ASSERT_EQ(edge->times.size(), 3u);
  EXPECT_EQ(edge->times[0], 10);
  EXPECT_EQ(edge->times[2], 30);
  EXPECT_EQ(graph.first_contact(graph.find_host("h1"), graph.find_domain("a.com")),
            std::optional<util::TimePoint>(10));
}

TEST(DayGraphTest, MissingEdgeIsNull) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com"));
  graph.add_event(event(10, "h2", "b.com"));
  graph.finalize();
  EXPECT_EQ(graph.edge(graph.find_host("h1"), graph.find_domain("b.com")), nullptr);
  EXPECT_FALSE(
      graph.first_contact(graph.find_host("h1"), graph.find_domain("b.com"))
          .has_value());
}

TEST(DayGraphTest, RefererAggregation) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com", "UA", false));
  graph.add_event(event(20, "h1", "a.com", "UA", true));
  graph.add_event(event(10, "h1", "b.com", "UA", false));
  graph.finalize();
  EXPECT_TRUE(
      graph.edge(graph.find_host("h1"), graph.find_domain("a.com"))->any_referer);
  EXPECT_FALSE(
      graph.edge(graph.find_host("h1"), graph.find_domain("b.com"))->any_referer);
}

TEST(DayGraphTest, UserAgentDeduplication) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com", "UA-1"));
  graph.add_event(event(20, "h1", "a.com", "UA-1"));
  graph.add_event(event(30, "h1", "a.com", "UA-2"));
  graph.add_event(event(40, "h1", "a.com", ""));
  graph.finalize();
  const EdgeData* edge =
      graph.edge(graph.find_host("h1"), graph.find_domain("a.com"));
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->user_agents.size(), 2u);
  EXPECT_TRUE(edge->any_empty_ua);
}

TEST(DayGraphTest, DomainIpsDeduplicated) {
  DayGraph graph;
  auto e1 = event(10, "h1", "a.com");
  auto e2 = event(20, "h2", "a.com");
  auto e3 = event(30, "h3", "a.com");
  e3.dest_ip = util::Ipv4::from_octets(9, 9, 9, 9);
  graph.add_event(e1);
  graph.add_event(e2);
  graph.add_event(e3);
  graph.finalize();
  EXPECT_EQ(graph.domain_ips(graph.find_domain("a.com")).size(), 2u);
}

TEST(DayGraphTest, UnknownNamesReturnNoId) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com"));
  graph.finalize();
  EXPECT_EQ(graph.find_host("nope"), kNoId);
  EXPECT_EQ(graph.find_domain("nope.com"), kNoId);
}

TEST(DayGraphTest, AdjacencyIsDeterministicallySorted) {
  DayGraph graph;
  graph.add_event(event(10, "h3", "a.com"));
  graph.add_event(event(10, "h1", "a.com"));
  graph.add_event(event(10, "h2", "a.com"));
  graph.finalize();
  const auto hosts = graph.domain_hosts(graph.find_domain("a.com"));
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_TRUE(std::is_sorted(hosts.begin(), hosts.end()));
}

TEST(DayGraphTest, LargeGraphConsistency) {
  DayGraph graph;
  for (int h = 0; h < 100; ++h) {
    for (int d = 0; d < 20; ++d) {
      if ((h + d) % 3 == 0) {
        graph.add_event(event(h * 100 + d, "host" + std::to_string(h),
                              "dom" + std::to_string(d) + ".com"));
      }
    }
  }
  graph.finalize();
  std::size_t total_from_domains = 0;
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    total_from_domains += graph.domain_hosts(d).size();
  }
  std::size_t total_from_hosts = 0;
  for (HostId h = 0; h < graph.host_count(); ++h) {
    total_from_hosts += graph.host_domains(h).size();
  }
  EXPECT_EQ(total_from_domains, graph.edge_count());
  EXPECT_EQ(total_from_hosts, graph.edge_count());
}

}  // namespace
}  // namespace eid::graph
