#include "graph/day_graph.h"

#include <gtest/gtest.h>

namespace eid::graph {
namespace {

logs::ConnEvent event(util::TimePoint ts, std::string host, std::string domain,
                      std::string ua = "", bool referer = false) {
  logs::ConnEvent ev;
  ev.ts = ts;
  ev.host = std::move(host);
  ev.domain = std::move(domain);
  ev.user_agent = std::move(ua);
  ev.has_referer = referer;
  ev.has_http_context = true;
  ev.dest_ip = util::Ipv4::from_octets(1, 2, 3, 4);
  return ev;
}

TEST(DayGraphTest, BasicAdjacency) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com"));
  graph.add_event(event(20, "h1", "b.com"));
  graph.add_event(event(30, "h2", "a.com"));
  graph.finalize();
  EXPECT_EQ(graph.host_count(), 2u);
  EXPECT_EQ(graph.domain_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 3u);

  const DomainId a = graph.find_domain("a.com");
  ASSERT_NE(a, kNoId);
  EXPECT_EQ(graph.domain_hosts(a).size(), 2u);
  const HostId h1 = graph.find_host("h1");
  ASSERT_NE(h1, kNoId);
  EXPECT_EQ(graph.host_domains(h1).size(), 2u);
}

TEST(DayGraphTest, EdgeTimesSortedAfterFinalize) {
  DayGraph graph;
  graph.add_event(event(30, "h1", "a.com"));
  graph.add_event(event(10, "h1", "a.com"));
  graph.add_event(event(20, "h1", "a.com"));
  graph.finalize();
  const EdgeData* edge =
      graph.edge(graph.find_host("h1"), graph.find_domain("a.com"));
  ASSERT_NE(edge, nullptr);
  ASSERT_EQ(edge->times.size(), 3u);
  EXPECT_EQ(edge->times[0], 10);
  EXPECT_EQ(edge->times[2], 30);
  EXPECT_EQ(graph.first_contact(graph.find_host("h1"), graph.find_domain("a.com")),
            std::optional<util::TimePoint>(10));
}

TEST(DayGraphTest, MissingEdgeIsNull) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com"));
  graph.add_event(event(10, "h2", "b.com"));
  graph.finalize();
  EXPECT_EQ(graph.edge(graph.find_host("h1"), graph.find_domain("b.com")), nullptr);
  EXPECT_FALSE(
      graph.first_contact(graph.find_host("h1"), graph.find_domain("b.com"))
          .has_value());
}

TEST(DayGraphTest, RefererAggregation) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com", "UA", false));
  graph.add_event(event(20, "h1", "a.com", "UA", true));
  graph.add_event(event(10, "h1", "b.com", "UA", false));
  graph.finalize();
  EXPECT_TRUE(
      graph.edge(graph.find_host("h1"), graph.find_domain("a.com"))->any_referer);
  EXPECT_FALSE(
      graph.edge(graph.find_host("h1"), graph.find_domain("b.com"))->any_referer);
}

TEST(DayGraphTest, UserAgentDeduplication) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com", "UA-1"));
  graph.add_event(event(20, "h1", "a.com", "UA-1"));
  graph.add_event(event(30, "h1", "a.com", "UA-2"));
  graph.add_event(event(40, "h1", "a.com", ""));
  graph.finalize();
  const EdgeData* edge =
      graph.edge(graph.find_host("h1"), graph.find_domain("a.com"));
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->user_agents.size(), 2u);
  EXPECT_TRUE(edge->any_empty_ua);
}

TEST(DayGraphTest, DomainIpsDeduplicated) {
  DayGraph graph;
  auto e1 = event(10, "h1", "a.com");
  auto e2 = event(20, "h2", "a.com");
  auto e3 = event(30, "h3", "a.com");
  e3.dest_ip = util::Ipv4::from_octets(9, 9, 9, 9);
  graph.add_event(e1);
  graph.add_event(e2);
  graph.add_event(e3);
  graph.finalize();
  EXPECT_EQ(graph.domain_ips(graph.find_domain("a.com")).size(), 2u);
}

TEST(DayGraphTest, UnknownNamesReturnNoId) {
  DayGraph graph;
  graph.add_event(event(10, "h1", "a.com"));
  graph.finalize();
  EXPECT_EQ(graph.find_host("nope"), kNoId);
  EXPECT_EQ(graph.find_domain("nope.com"), kNoId);
}

TEST(DayGraphTest, AdjacencyIsDeterministicallySorted) {
  DayGraph graph;
  graph.add_event(event(10, "h3", "a.com"));
  graph.add_event(event(10, "h1", "a.com"));
  graph.add_event(event(10, "h2", "a.com"));
  graph.finalize();
  const auto hosts = graph.domain_hosts(graph.find_domain("a.com"));
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_TRUE(std::is_sorted(hosts.begin(), hosts.end()));
}

TEST(DayGraphTest, ForEachEdgeVisitsInSortedOrder) {
  // CSR contract: iteration is ascending (host id, domain id) — stable,
  // unlike the old hash-table order.
  DayGraph graph;
  graph.add_event(event(10, "h2", "b.com"));
  graph.add_event(event(20, "h1", "c.com"));
  graph.add_event(event(30, "h2", "a.com"));
  graph.add_event(event(40, "h1", "a.com"));
  graph.finalize();
  std::vector<std::pair<HostId, DomainId>> visited;
  graph.for_each_edge([&](HostId h, DomainId d, const EdgeData&) {
    visited.emplace_back(h, d);
  });
  ASSERT_EQ(visited.size(), graph.edge_count());
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

// The sharded-ingest contract: any shard count yields a finalized graph
// bit-identical to the sequential (one-shard) build — same ids, same
// adjacency, same edge aggregates, same IP order.
TEST(DayGraphTest, ShardedBuildMatchesSequential) {
  const auto feed = [](DayGraph& graph) {
    // Interleaved hosts/domains so ids depend on global arrival order and
    // every shard sees traffic; shared domains span shards.
    for (int i = 0; i < 40; ++i) {
      auto ev = event(1000 - i, "host" + std::to_string(i % 7),
                      "dom" + std::to_string(i % 5) + ".com",
                      i % 3 == 0 ? "UA-" + std::to_string(i % 4) : "",
                      i % 2 == 0);
      ev.dest_ip = util::Ipv4::from_octets(10, 0, static_cast<uint8_t>(i % 3),
                                           static_cast<uint8_t>(i % 2));
      graph.add_event(ev);
    }
  };
  DayGraph sequential(1);
  feed(sequential);
  sequential.finalize();

  for (const std::size_t shards : {2u, 4u, 9u}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    DayGraph sharded(shards);
    feed(sharded);
    sharded.finalize(3);

    ASSERT_EQ(sharded.host_count(), sequential.host_count());
    ASSERT_EQ(sharded.domain_count(), sequential.domain_count());
    ASSERT_EQ(sharded.edge_count(), sequential.edge_count());
    for (HostId h = 0; h < sequential.host_count(); ++h) {
      EXPECT_EQ(sharded.host_name(h), sequential.host_name(h));
      const auto a = sequential.host_domains(h);
      const auto b = sharded.host_domains(h);
      ASSERT_EQ(std::vector<DomainId>(a.begin(), a.end()),
                std::vector<DomainId>(b.begin(), b.end()));
    }
    for (DomainId d = 0; d < sequential.domain_count(); ++d) {
      EXPECT_EQ(sharded.domain_name(d), sequential.domain_name(d));
      const auto a = sequential.domain_hosts(d);
      const auto b = sharded.domain_hosts(d);
      ASSERT_EQ(std::vector<HostId>(a.begin(), a.end()),
                std::vector<HostId>(b.begin(), b.end()));
      const auto ips_a = sequential.domain_ips(d);
      const auto ips_b = sharded.domain_ips(d);
      ASSERT_EQ(std::vector<util::Ipv4>(ips_a.begin(), ips_a.end()),
                std::vector<util::Ipv4>(ips_b.begin(), ips_b.end()));
    }
    sequential.for_each_edge([&](HostId h, DomainId d, const EdgeData& a) {
      const EdgeData* b = sharded.edge(h, d);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(a.times, b->times);
      EXPECT_EQ(a.user_agents, b->user_agents);
      for (const UaId ua : a.user_agents) {
        EXPECT_EQ(sharded.ua_name(ua), sequential.ua_name(ua));
      }
      EXPECT_EQ(a.any_referer, b->any_referer);
      EXPECT_EQ(a.any_empty_ua, b->any_empty_ua);
    });
  }
}

/// Compare two finalized graphs field by field through the public API.
void expect_identical(const DayGraph& a, const DayGraph& b) {
  ASSERT_EQ(a.host_count(), b.host_count());
  ASSERT_EQ(a.domain_count(), b.domain_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (HostId h = 0; h < a.host_count(); ++h) {
    EXPECT_EQ(a.host_name(h), b.host_name(h));
  }
  for (DomainId d = 0; d < a.domain_count(); ++d) {
    EXPECT_EQ(a.domain_name(d), b.domain_name(d));
    const auto ips_a = a.domain_ips(d);
    const auto ips_b = b.domain_ips(d);
    ASSERT_EQ(std::vector<util::Ipv4>(ips_a.begin(), ips_a.end()),
              std::vector<util::Ipv4>(ips_b.begin(), ips_b.end()));
  }
  a.for_each_edge([&](HostId h, DomainId d, const EdgeData& ea) {
    const EdgeData* eb = b.edge(h, d);
    ASSERT_NE(eb, nullptr);
    EXPECT_EQ(ea.times, eb->times);
    EXPECT_EQ(ea.user_agents, eb->user_agents);
    for (const UaId ua : ea.user_agents) {
      EXPECT_EQ(a.ua_name(ua), b.ua_name(ua));
    }
    EXPECT_EQ(ea.any_referer, eb->any_referer);
    EXPECT_EQ(ea.any_empty_ua, eb->any_empty_ua);
  });
}

std::vector<logs::ConnEvent> slice_events(int begin, int end) {
  std::vector<logs::ConnEvent> events;
  for (int i = begin; i < end; ++i) {
    auto ev = event(2000 - i, "host" + std::to_string(i % 7),
                    "dom" + std::to_string(i % 5) + ".com",
                    i % 3 == 0 ? "UA-" + std::to_string(i % 4) : "",
                    i % 2 == 0);
    ev.dest_ip = util::Ipv4::from_octets(10, 0, static_cast<uint8_t>(i % 3),
                                         static_cast<uint8_t>(i % 2));
    events.push_back(std::move(ev));
  }
  return events;
}

// absorb() must be indistinguishable, after finalize, from replaying the
// absorbed slice's events in order — for one and several shards, sorted
// (sealed) and unsorted partials alike.
TEST(DayGraphTest, AbsorbMatchesSequentialReplay) {
  for (const std::size_t shards : {1u, 4u}) {
    for (const bool seal : {false, true}) {
      SCOPED_TRACE(std::to_string(shards) + " shards, seal " +
                   std::to_string(seal));
      DayGraph sequential(1);
      for (const auto& ev : slice_events(0, 60)) sequential.add_event(ev);
      sequential.finalize();

      // Three slices built independently, then chained with absorb.
      DayGraph merged(shards);
      for (const int begin : {0, 25, 40}) {
        const int end = begin == 0 ? 25 : begin == 25 ? 40 : 60;
        DayGraph slice(shards);
        for (const auto& ev : slice_events(begin, end)) slice.add_event(ev);
        if (seal) slice.sort_edge_times();
        merged.absorb(slice);
      }
      EXPECT_EQ(merged.ingested_events(), 60u);
      merged.finalize();
      expect_identical(merged, sequential);
    }
  }
}

// finalize_snapshot() must equal finalize() of the same state, leave the
// source graph usable for further growth, and — with a SnapshotCache
// carried across snapshots of the growing graph — stay bit-identical at
// every step. The recycled finalize_snapshot_into() variant must too.
TEST(DayGraphTest, SnapshotMatchesFinalizeAcrossGrowth) {
  DayGraph growing(3);
  DayGraph::SnapshotCache cache;
  DayGraph recycled;  // reused output container across snapshots
  for (const int end : {20, 35, 60}) {
    SCOPED_TRACE("events " + std::to_string(end));
    const int begin = end == 20 ? 0 : end == 35 ? 20 : 35;
    DayGraph slice(3);
    for (const auto& ev : slice_events(begin, end)) slice.add_event(ev);
    slice.sort_edge_times();
    growing.absorb(slice);

    // Reference: consuming finalize of an identically-built graph.
    DayGraph reference(3);
    for (const auto& ev : slice_events(0, end)) reference.add_event(ev);
    reference.finalize(2);

    const DayGraph plain = growing.finalize_snapshot(2);
    const DayGraph cached = growing.finalize_snapshot(2, &cache);
    growing.finalize_snapshot_into(recycled, 2, nullptr);
    EXPECT_FALSE(growing.finalized());
    expect_identical(plain, reference);
    expect_identical(cached, reference);
    expect_identical(recycled, reference);
  }
  // The source still finalizes normally after all the snapshots.
  growing.finalize();
  DayGraph reference(1);
  for (const auto& ev : slice_events(0, 60)) reference.add_event(ev);
  reference.finalize();
  expect_identical(growing, reference);
}

TEST(DayGraphTest, LargeGraphConsistency) {
  DayGraph graph;
  for (int h = 0; h < 100; ++h) {
    for (int d = 0; d < 20; ++d) {
      if ((h + d) % 3 == 0) {
        graph.add_event(event(h * 100 + d, "host" + std::to_string(h),
                              "dom" + std::to_string(d) + ".com"));
      }
    }
  }
  graph.finalize();
  std::size_t total_from_domains = 0;
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    total_from_domains += graph.domain_hosts(d).size();
  }
  std::size_t total_from_hosts = 0;
  for (HostId h = 0; h < graph.host_count(); ++h) {
    total_from_hosts += graph.host_domains(h).size();
  }
  EXPECT_EQ(total_from_domains, graph.edge_count());
  EXPECT_EQ(total_from_hosts, graph.edge_count());
}

}  // namespace
}  // namespace eid::graph
