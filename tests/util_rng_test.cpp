#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace eid::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng fork_before = parent.fork(5);
  parent.next_u64();  // consuming the parent must not change fork streams
  Rng fork_after = parent.fork(5);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fork_before.next_u64(), fork_after.next_u64());
  }
}

TEST(RngTest, ForksWithDifferentIdsDiffer) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    const std::int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ExponentialHasApproximatelyRightMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(60.0);
  EXPECT_NEAR(sum / n, 60.0, 2.5);
}

TEST(RngTest, NormalHasApproximatelyRightMoments) {
  Rng rng(13);
  double sum = 0.0;
  double ss = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    ss += v * v;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(17);
  std::size_t low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const std::size_t k = rng.zipf(1000, 1.1);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
    if (k <= 10) ++low;
  }
  // With alpha ~1.1 the top-10 ranks should get a large share of draws.
  EXPECT_GT(low, n / 4);
}

TEST(RngTest, SampleIndicesAreDistinctAndInRange) {
  Rng rng(19);
  for (std::size_t k : {0u, 1u, 5u, 50u}) {
    const auto sample = rng.sample_indices(50, k);
    EXPECT_EQ(sample.size(), std::min<std::size_t>(k, 50));
    std::set<std::size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), sample.size());
    for (const std::size_t idx : sample) EXPECT_LT(idx, 50u);
  }
}

TEST(RngTest, SampleMoreThanPopulationReturnsAll) {
  Rng rng(23);
  const auto sample = rng.sample_indices(5, 100);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace eid::util
