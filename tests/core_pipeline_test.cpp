#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "test_helpers.h"

namespace eid::core {
namespace {

using test::DayBuilder;
using test::MapWhois;

constexpr util::Day kDay = 16100;

std::vector<logs::ConnEvent> browsing_day(util::Day day) {
  // A stable population visiting stable domains (so histories make them old).
  DayBuilder builder;
  const util::TimePoint base = util::day_start(day);
  for (int h = 0; h < 12; ++h) {
    for (int d = 0; d < 6; ++d) {
      builder.visit("h" + std::to_string(h), "pop" + std::to_string(d) + ".com",
                    base + 1000 + h * 50 + d, {0}, "CommonUA", true);
    }
  }
  return builder.events();
}

TEST(PipelineTest, ProfileDaysSuppressKnownDomains) {
  MapWhois whois;
  Pipeline pipeline(PipelineConfig{}, whois);
  pipeline.profile_day(browsing_day(kDay - 2));
  const DayAnalysis analysis = pipeline.analyze_day(browsing_day(kDay), kDay);
  EXPECT_EQ(analysis.rare.size(), 0u);  // everything already in history
  EXPECT_EQ(analysis.new_domains, 0u);
}

TEST(PipelineTest, FreshDomainsAreRare) {
  MapWhois whois;
  Pipeline pipeline(PipelineConfig{}, whois);
  pipeline.profile_day(browsing_day(kDay - 2));
  auto events = browsing_day(kDay);
  DayBuilder extra;
  extra.visit("h1", "never-seen.com", util::day_start(kDay) + 5000);
  events.push_back(extra.events().front());
  const DayAnalysis analysis = pipeline.analyze_day(events, kDay);
  EXPECT_EQ(analysis.rare.size(), 1u);
}

TEST(PipelineTest, UpdateHistoriesMakesTodayOld) {
  MapWhois whois;
  Pipeline pipeline(PipelineConfig{}, whois);
  auto events = browsing_day(kDay);
  // The fixture's domains are visited by 12 hosts (popular), so check the
  // new-domain count rather than the rare set.
  EXPECT_GT(pipeline.analyze_day(events, kDay).new_domains, 0u);
  pipeline.update_histories(events);
  EXPECT_EQ(pipeline.analyze_day(events, kDay + 1).new_domains, 0u);
}

// A small but complete world: popular browsing + a labeled beaconing
// malicious domain + a labeled benign automated service, enough for the
// regressions to find separating weights.
struct TrainedFixture {
  MapWhois whois;
  std::unique_ptr<Pipeline> pipeline;
  std::set<std::string> reported;

  TrainedFixture() {
    PipelineConfig config;
    config.ua_rare_threshold = 3;
    pipeline = std::make_unique<Pipeline>(config, whois);

    // Bootstrap: two profile days teach the UA history that CommonUA is
    // popular and register the popular domains.
    pipeline->profile_day(browsing_day(kDay - 4));
    pipeline->profile_day(browsing_day(kDay - 3));

    const LabelFn intel = [this](const std::string& domain) {
      return reported.contains(domain);
    };

    // Training days: each day one fresh malicious beacon (young domain, no
    // referer, no UA) and one fresh benign automated service (old domain,
    // common UA). Labels come from `reported`.
    for (int i = 0; i < 10; ++i) {
      const util::Day day = kDay - 2 + 0 * i;  // same nominal day is fine
      const util::TimePoint base = util::day_start(day);
      auto events = browsing_day(day);
      DayBuilder extra;
      const std::string bad = "bad" + std::to_string(i) + ".ru";
      const std::string good = "updates" + std::to_string(i) + ".com";
      whois.add(bad, day - 5, day + 60);
      whois.add(good, day - 900, day + 900);
      reported.insert(bad);
      extra.beacon("h1", bad, base + 2000, 600, 40,
                   util::Ipv4::from_octets(203, 0, 113, 5), "");
      extra.beacon("h2", good, base + 2500, 900, 30,
                   util::Ipv4::from_octets(8, 8, 4, 4), "CommonUA");
      // Delivery-stage domain: visited by h1 seconds before the first
      // beacon, same /24 as the C&C — the positive rows of the similarity
      // regression.
      const std::string drop = "drop" + std::to_string(i) + ".ru";
      whois.add(drop, day - 6, day + 60);
      reported.insert(drop);
      extra.visit("h1", drop, base + 1985,
                  util::Ipv4::from_octets(203, 0, 113, 9), "", false);
      // Coincidental benign rare domain also visited by h1, far in time.
      const std::string blog = "blog" + std::to_string(i) + ".com";
      whois.add(blog, day - 800, day + 900);
      extra.visit("h1", blog, base + 30000,
                  util::Ipv4::from_octets(9, 9, 9, 9), "CommonUA", true);
      for (const auto& ev : extra.events()) events.push_back(ev);
      pipeline->train_day(events, day, intel);
    }
  }
};

TEST(PipelineTest, TrainingSeparatesReportedFromLegitimate) {
  TrainedFixture fx;
  const TrainingReport report = fx.pipeline->finalize_training();
  EXPECT_EQ(report.cc_rows, 20u);
  EXPECT_EQ(report.cc_positive, 10u);
  ASSERT_FALSE(report.cc_training_scores.empty());
  double reported_sum = 0.0;
  double legit_sum = 0.0;
  for (const auto& [score, is_reported] : report.cc_training_scores) {
    (is_reported ? reported_sum : legit_sum) += score;
  }
  EXPECT_GT(reported_sum / 10.0, legit_sum / 10.0 + 0.2);
}

TEST(PipelineTest, OperationDetectsFreshCampaign) {
  TrainedFixture fx;
  fx.pipeline->finalize_training();

  // Operation day: a new campaign with a beaconing C&C plus a delivery
  // domain visited seconds before the first beacon, same /24.
  const util::Day day = kDay;
  const util::TimePoint base = util::day_start(day);
  auto events = browsing_day(day);
  DayBuilder extra;
  fx.whois.add("evil-cc.ru", day - 3, day + 40);
  fx.whois.add("evil-drop.ru", day - 4, day + 40);
  extra.visit("h5", "evil-drop.ru", base + 1990,
              util::Ipv4::from_octets(198, 51, 100, 7), "", false);
  extra.beacon("h5", "evil-cc.ru", base + 2040, 600, 40,
               util::Ipv4::from_octets(198, 51, 100, 9), "");
  for (const auto& ev : extra.events()) events.push_back(ev);

  const DayReport report = fx.pipeline->run_day(events, day, SocSeeds{});
  ASSERT_FALSE(report.cc_domains.empty());
  EXPECT_EQ(report.cc_domains[0].name, "evil-cc.ru");
  // Belief propagation should pull in the delivery domain.
  bool found_drop = false;
  for (const auto& det : report.nohint.domains) {
    if (det.name == "evil-drop.ru") found_drop = true;
  }
  EXPECT_TRUE(found_drop);
}

TEST(PipelineTest, SocHintsModeExpandsFromSeeds) {
  TrainedFixture fx;
  fx.pipeline->finalize_training();

  const util::Day day = kDay;
  const util::TimePoint base = util::day_start(day);
  auto events = browsing_day(day);
  DayBuilder extra;
  fx.whois.add("ioc-domain.ru", day - 10, day + 30);
  fx.whois.add("related.ru", day - 9, day + 30);
  extra.visit("h6", "ioc-domain.ru", base + 3000,
              util::Ipv4::from_octets(198, 51, 100, 20), "", false);
  extra.visit("h6", "related.ru", base + 3030,
              util::Ipv4::from_octets(198, 51, 100, 21), "", false);
  for (const auto& ev : extra.events()) events.push_back(ev);

  const DayAnalysis analysis = fx.pipeline->analyze_day(events, day);
  SocSeeds seeds;
  seeds.domains = {"ioc-domain.ru"};
  const BpRunReport report = fx.pipeline->run_bp_sochints(analysis, seeds, 0.3);
  bool found = false;
  for (const auto& det : report.domains) {
    if (det.name == "related.ru") found = true;
  }
  EXPECT_TRUE(found);
  // The seed itself is not reported as a detection.
  for (const auto& det : report.domains) EXPECT_NE(det.name, "ioc-domain.ru");
}

TEST(PipelineTest, SetModelsAllowsExternalModels) {
  MapWhois whois;
  Pipeline pipeline(PipelineConfig{}, whois);
  ScoredModel cc;
  cc.threshold = 0.7;
  ScoredModel sim;
  sim.threshold = 0.2;
  pipeline.set_models(cc, sim);
  EXPECT_DOUBLE_EQ(pipeline.cc_model().threshold, 0.7);
  EXPECT_DOUBLE_EQ(pipeline.sim_model().threshold, 0.2);
}

}  // namespace
}  // namespace eid::core
