#include "eval/roc.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace eid::eval {
namespace {

using Scored = std::vector<std::pair<double, bool>>;

TEST(RocTest, PerfectSeparationHasAucOne) {
  const Scored scored = {{0.9, true}, {0.8, true}, {0.2, false}, {0.1, false}};
  EXPECT_DOUBLE_EQ(roc_auc(scored), 1.0);
}

TEST(RocTest, InvertedSeparationHasAucZero) {
  const Scored scored = {{0.9, false}, {0.8, false}, {0.2, true}, {0.1, true}};
  EXPECT_DOUBLE_EQ(roc_auc(scored), 0.0);
}

TEST(RocTest, AllTiedScoresGiveHalf) {
  const Scored scored = {{0.5, true}, {0.5, false}, {0.5, true}, {0.5, false}};
  EXPECT_DOUBLE_EQ(roc_auc(scored), 0.5);
}

TEST(RocTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(roc_auc(Scored{{0.5, true}, {0.7, true}}), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc(Scored{}), 0.5);
}

TEST(RocTest, KnownSmallExample) {
  // positives at 0.8, 0.4; negatives at 0.6, 0.2:
  // pairs won by positives: (0.8>0.6),(0.8>0.2),(0.4>0.2) = 3 of 4 -> 0.75.
  const Scored scored = {{0.8, true}, {0.6, false}, {0.4, true}, {0.2, false}};
  EXPECT_DOUBLE_EQ(roc_auc(scored), 0.75);
}

TEST(RocTest, CurveEndsAtOneOne) {
  const Scored scored = {{0.9, true}, {0.5, false}, {0.3, true}, {0.1, false}};
  const auto curve = roc_curve(scored);
  ASSERT_FALSE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  // Monotone in both axes as the threshold descends.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_LT(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(RocTest, CurveGroupsTies) {
  const Scored scored = {{0.5, true}, {0.5, false}, {0.9, true}};
  const auto curve = roc_curve(scored);
  ASSERT_EQ(curve.size(), 2u);  // thresholds 0.9 and 0.5
  EXPECT_DOUBLE_EQ(curve[0].tpr, 0.5);
  EXPECT_DOUBLE_EQ(curve[0].fpr, 0.0);
}

TEST(RocTest, EmptyClassYieldsEmptyCurve) {
  EXPECT_TRUE(roc_curve(Scored{{0.4, true}}).empty());
}

TEST(RocTest, AucMatchesCurveTrapezoidOnRandomData) {
  util::Rng rng(77);
  Scored scored;
  for (int i = 0; i < 500; ++i) {
    const bool positive = rng.chance(0.3);
    const double score = positive ? rng.normal(0.6, 0.2) : rng.normal(0.4, 0.2);
    scored.emplace_back(score, positive);
  }
  const auto curve = roc_curve(scored);
  double trapezoid = 0.0;
  double prev_tpr = 0.0;
  double prev_fpr = 0.0;
  for (const auto& point : curve) {
    trapezoid += (point.fpr - prev_fpr) * (point.tpr + prev_tpr) / 2.0;
    prev_tpr = point.tpr;
    prev_fpr = point.fpr;
  }
  EXPECT_NEAR(roc_auc(scored), trapezoid, 1e-9);
  EXPECT_GT(roc_auc(scored), 0.6);  // the classes are genuinely separated
}

}  // namespace
}  // namespace eid::eval
