#include "core/config_io.h"

#include <gtest/gtest.h>

namespace eid::core {
namespace {

TEST(ConfigIoTest, ParsesFullDocument) {
  const std::string text = R"(
# comment line
popularity_threshold = 12
ua_rare_threshold = 8
bin_width_seconds = 5
jeffrey_threshold = 0.034
min_intervals = 6
cc_threshold = 0.45
sim_threshold = 0.5
bp_max_iterations = 7
)";
  const ConfigParseResult result = parse_pipeline_config(text);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.unknown_keys.empty());
  EXPECT_EQ(result.config.popularity_threshold, 12u);
  EXPECT_EQ(result.config.ua_rare_threshold, 8u);
  EXPECT_DOUBLE_EQ(result.config.periodicity.bin_width_seconds, 5.0);
  EXPECT_DOUBLE_EQ(result.config.periodicity.jeffrey_threshold, 0.034);
  EXPECT_EQ(result.config.periodicity.min_intervals, 6u);
  EXPECT_DOUBLE_EQ(result.config.cc_threshold, 0.45);
  EXPECT_DOUBLE_EQ(result.config.sim_threshold, 0.5);
  EXPECT_EQ(result.config.bp_max_iterations, 7u);
}

TEST(ConfigIoTest, EmptyDocumentKeepsDefaults) {
  const ConfigParseResult result = parse_pipeline_config("");
  EXPECT_TRUE(result.ok());
  const PipelineConfig defaults;
  EXPECT_EQ(result.config.popularity_threshold, defaults.popularity_threshold);
  EXPECT_DOUBLE_EQ(result.config.cc_threshold, defaults.cc_threshold);
}

TEST(ConfigIoTest, UnknownKeysReportedNotFatal) {
  const ConfigParseResult result =
      parse_pipeline_config("future_knob = 3\ncc_threshold = 0.42\n");
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.unknown_keys.size(), 1u);
  EXPECT_EQ(result.unknown_keys[0], "future_knob");
  EXPECT_DOUBLE_EQ(result.config.cc_threshold, 0.42);
}

TEST(ConfigIoTest, MalformedValuesAreErrors) {
  const ConfigParseResult result = parse_pipeline_config(
      "cc_threshold = not-a-number\n"
      "bin_width_seconds = -5\n"
      "min_intervals = 0\n"
      "line without equals\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.errors.size(), 4u);
}

TEST(ConfigIoTest, WhitespaceAndCommentsTolerated) {
  const ConfigParseResult result = parse_pipeline_config(
      "   cc_threshold   =    0.41   \n"
      "\t\n"
      "# jeffrey_threshold = 9.9 (commented out)\n");
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.config.cc_threshold, 0.41);
  const PipelineConfig defaults;
  EXPECT_DOUBLE_EQ(result.config.periodicity.jeffrey_threshold,
                   defaults.periodicity.jeffrey_threshold);
}

TEST(ConfigIoTest, FormatThenParseIsIdentity) {
  PipelineConfig config;
  config.popularity_threshold = 15;
  config.ua_rare_threshold = 4;
  config.periodicity.bin_width_seconds = 20.0;
  config.periodicity.jeffrey_threshold = 0.35;
  config.periodicity.min_intervals = 3;
  config.cc_threshold = 0.48;
  config.sim_threshold = 0.85;
  config.bp_max_iterations = 3;
  const ConfigParseResult result =
      parse_pipeline_config(format_pipeline_config(config));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.config.popularity_threshold, config.popularity_threshold);
  EXPECT_EQ(result.config.ua_rare_threshold, config.ua_rare_threshold);
  EXPECT_DOUBLE_EQ(result.config.periodicity.bin_width_seconds,
                   config.periodicity.bin_width_seconds);
  EXPECT_DOUBLE_EQ(result.config.periodicity.jeffrey_threshold,
                   config.periodicity.jeffrey_threshold);
  EXPECT_EQ(result.config.periodicity.min_intervals,
            config.periodicity.min_intervals);
  EXPECT_DOUBLE_EQ(result.config.cc_threshold, config.cc_threshold);
  EXPECT_DOUBLE_EQ(result.config.sim_threshold, config.sim_threshold);
  EXPECT_EQ(result.config.bp_max_iterations, config.bp_max_iterations);
}

}  // namespace
}  // namespace eid::core
