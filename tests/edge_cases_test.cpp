// Failure injection and degenerate-input coverage across modules: empty
// days, seeds that don't exist, all-identical timestamps, hostile strings —
// the detector must degrade gracefully, never crash or mislabel by
// accident.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "eval/metrics.h"
#include "logs/reduction.h"
#include "test_helpers.h"
#include "timing/periodicity.h"

namespace eid {
namespace {

using test::DayBuilder;
using test::MapWhois;

TEST(EdgeCaseTest, EmptyDayThroughPipeline) {
  MapWhois whois;
  core::Pipeline pipeline(core::PipelineConfig{}, whois);
  const core::DayAnalysis analysis = pipeline.analyze_day({}, 100);
  EXPECT_EQ(analysis.graph.host_count(), 0u);
  EXPECT_TRUE(analysis.rare.empty());
  EXPECT_TRUE(pipeline.detect_cc(analysis).empty());
  const core::BpRunReport nohint = pipeline.run_bp_nohint(analysis, {});
  EXPECT_TRUE(nohint.domains.empty());
  EXPECT_TRUE(nohint.hosts.empty());
  const core::DayReport report = pipeline.run_day({}, 100, core::SocSeeds{});
  EXPECT_EQ(report.events, 0u);
}

TEST(EdgeCaseTest, SeedsAbsentFromTodayAreIgnored) {
  MapWhois whois;
  core::Pipeline pipeline(core::PipelineConfig{}, whois);
  DayBuilder builder;
  builder.visit("h1", "present.com", 1000);
  const auto events = builder.events();
  const core::DayAnalysis analysis = pipeline.analyze_day(events, 100);
  core::SocSeeds seeds;
  seeds.hosts = {"ghost-host"};
  seeds.domains = {"ghost-domain.com"};
  const core::BpRunReport report = pipeline.run_bp_sochints(analysis, seeds);
  EXPECT_TRUE(report.domains.empty());
  EXPECT_TRUE(report.hosts.empty());
}

TEST(EdgeCaseTest, IdenticalTimestampsAreNotAutomated) {
  // Zero-length intervals: the dominant "period" is 0; such bursts must
  // not be classified as beaconing by accident (divergence 0 against a
  // period-0 reference). This documents the behavior: a burst IS perfectly
  // periodic with period 0, so the min-interval count is the guard that
  // matters; the detector still returns finite values.
  std::vector<util::TimePoint> times(20, 5000);
  const timing::PeriodicityDetector detector;
  const auto result = detector.test(times);
  EXPECT_EQ(result.period, 0.0);
  EXPECT_TRUE(std::isfinite(result.divergence));
}

TEST(EdgeCaseTest, SingleConnectionNeverAutomated) {
  const timing::PeriodicityDetector detector;
  EXPECT_FALSE(detector.test(std::vector<util::TimePoint>{42}).automated);
  EXPECT_FALSE(detector.test({}).automated);
}

TEST(EdgeCaseTest, ReductionOfEmptyInputs) {
  logs::DnsReductionStats dns_stats;
  EXPECT_TRUE(logs::reduce_dns({}, logs::DnsReductionConfig{}, &dns_stats).empty());
  EXPECT_EQ(dns_stats.total_records, 0u);
  logs::DhcpTable leases;
  logs::ProxyReductionStats proxy_stats;
  EXPECT_TRUE(
      logs::reduce_proxy({}, leases, logs::ProxyReductionConfig{}, &proxy_stats)
          .empty());
}

TEST(EdgeCaseTest, HostileDomainStringsSurviveFolding) {
  for (const char* hostile :
       {"", ".", "..", "...", "a..b", ".leading.dot", "trailing.dot.",
        "UPPER.CASE.COM", "xn--punycode-thing.com"}) {
    const std::string folded = logs::fold_domain(hostile);
    // Must not crash and must be idempotent.
    EXPECT_EQ(logs::fold_domain(folded), folded) << hostile;
  }
}

TEST(EdgeCaseTest, ValidationOfEmptyDetectionSet) {
  sim::GroundTruth truth;
  const sim::IntelOracle oracle(truth);
  const eval::ValidationCounts counts = eval::validate_detections({}, oracle);
  EXPECT_EQ(counts.total(), 0u);
  EXPECT_DOUBLE_EQ(counts.tdr(), 0.0);
  EXPECT_DOUBLE_EQ(counts.ndr(), 0.0);
}

TEST(EdgeCaseTest, PipelineWithoutTrainingStillRuns) {
  // Models default to zero weights: scores are constant, nothing clears the
  // thresholds, but nothing crashes either — a deployment that skipped
  // finalize_training degrades to "no detections", not UB.
  MapWhois whois;
  core::Pipeline pipeline(core::PipelineConfig{}, whois);
  DayBuilder builder;
  builder.beacon("h1", "beacon.com", 1000, 600, 50);
  const core::DayAnalysis analysis = pipeline.analyze_day(builder.events(), 100);
  EXPECT_EQ(analysis.automation.pair_count(), 1u);
  EXPECT_TRUE(pipeline.detect_cc(analysis).empty());
}

TEST(EdgeCaseTest, TrainingWithTooFewRowsKeepsEmptyModel) {
  MapWhois whois;
  core::Pipeline pipeline(core::PipelineConfig{}, whois);
  DayBuilder builder;
  builder.beacon("h1", "only-one.com", 1000, 600, 50);
  pipeline.train_day(builder.events(), 100,
                     [](const std::string&) { return true; });
  const core::TrainingReport report = pipeline.finalize_training();
  EXPECT_LE(report.cc_rows, 1u);
  EXPECT_TRUE(report.cc_model.weights.empty());  // n <= p: no fit attempted
}

TEST(EdgeCaseTest, DuplicateSeedDomainsHandledOnce) {
  MapWhois whois;
  core::Pipeline pipeline(core::PipelineConfig{}, whois);
  DayBuilder builder;
  builder.visit("h1", "seed.com", 1000);
  builder.visit("h1", "other.com", 1010);
  const core::DayAnalysis analysis = pipeline.analyze_day(builder.events(), 100);
  core::SocSeeds seeds;
  seeds.domains = {"seed.com", "seed.com", "seed.com"};
  const core::BpRunReport report = pipeline.run_bp_sochints(analysis, seeds);
  // The seed must never be reported as a detection, however many times it
  // was passed in.
  for (const auto& det : report.domains) EXPECT_NE(det.name, "seed.com");
}

TEST(EdgeCaseTest, RareSetWithIdsOutsideGraphIsHarmless) {
  DayBuilder builder;
  builder.visit("h1", "a.com", 1000);
  const graph::DayGraph graph = builder.build();
  EXPECT_TRUE(graph.domain_hosts(999).empty());
  EXPECT_TRUE(graph.host_domains(999).empty());
  EXPECT_TRUE(graph.domain_ips(999).empty());
}

}  // namespace
}  // namespace eid
