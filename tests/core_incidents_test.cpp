#include "core/incidents.h"

#include <gtest/gtest.h>

namespace eid::core {
namespace {

std::vector<std::string> v(std::initializer_list<const char*> items) {
  return {items.begin(), items.end()};
}

TEST(IncidentsTest, NewCommunityOpensIncident) {
  IncidentStore store;
  const int id = store.ingest_community(100, v({"a.com"}), v({"h1"}));
  ASSERT_GE(id, 0);
  EXPECT_EQ(store.size(), 1u);
  const Incident* incident = store.find(id);
  ASSERT_NE(incident, nullptr);
  EXPECT_EQ(incident->first_seen, 100);
  EXPECT_EQ(incident->last_seen, 100);
  EXPECT_EQ(incident->days_active, 1u);
  EXPECT_TRUE(incident->domains.contains("a.com"));
  EXPECT_TRUE(incident->hosts.contains("h1"));
}

TEST(IncidentsTest, EmptyCommunityRejected) {
  IncidentStore store;
  EXPECT_EQ(store.ingest_community(100, {}, {}), -1);
  EXPECT_EQ(store.size(), 0u);
}

TEST(IncidentsTest, SharedDomainJoinsIncident) {
  IncidentStore store;
  const int first = store.ingest_community(100, v({"cc.ru", "drop.ru"}), v({"h1"}));
  const int second = store.ingest_community(101, v({"cc.ru", "stage2.ru"}), v({"h2"}));
  EXPECT_EQ(first, second);
  EXPECT_EQ(store.size(), 1u);
  const Incident* incident = store.find(first);
  EXPECT_EQ(incident->domains.size(), 3u);
  EXPECT_EQ(incident->hosts.size(), 2u);
  EXPECT_EQ(incident->first_seen, 100);
  EXPECT_EQ(incident->last_seen, 101);
  EXPECT_EQ(incident->days_active, 2u);
}

TEST(IncidentsTest, SharedHostJoinsIncident) {
  IncidentStore store;
  const int first = store.ingest_community(100, v({"a.com"}), v({"h1"}));
  const int second = store.ingest_community(105, v({"b.com"}), v({"h1"}));
  EXPECT_EQ(first, second);
  EXPECT_EQ(store.size(), 1u);
}

TEST(IncidentsTest, DisjointCommunitiesStaySeparate) {
  IncidentStore store;
  const int first = store.ingest_community(100, v({"a.com"}), v({"h1"}));
  const int second = store.ingest_community(100, v({"b.com"}), v({"h2"}));
  EXPECT_NE(first, second);
  EXPECT_EQ(store.size(), 2u);
}

TEST(IncidentsTest, BridgingCommunityMergesIncidents) {
  IncidentStore store;
  const int a = store.ingest_community(100, v({"a.com"}), v({"h1"}));
  const int b = store.ingest_community(100, v({"b.com"}), v({"h2"}));
  ASSERT_NE(a, b);
  // A later community touching both collapses them into one incident.
  const int merged = store.ingest_community(102, v({"a.com", "b.com"}), v({"h3"}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(merged, std::min(a, b));  // older id wins
  const Incident* incident = store.find(merged);
  ASSERT_NE(incident, nullptr);
  EXPECT_EQ(incident->domains.size(), 2u);
  EXPECT_EQ(incident->hosts.size(), 3u);
  // The absorbed incident is gone.
  EXPECT_EQ(store.find(std::max(a, b)), nullptr);
}

TEST(IncidentsTest, MergePreservesTimeline) {
  IncidentStore store;
  const int a = store.ingest_community(100, v({"a.com"}), v({"h1"}));
  store.ingest_community(110, v({"b.com"}), v({"h2"}));
  const int merged = store.ingest_community(105, v({"a.com", "b.com"}), {});
  EXPECT_EQ(merged, a);
  const Incident* incident = store.find(merged);
  EXPECT_EQ(incident->first_seen, 100);
  EXPECT_EQ(incident->last_seen, 110);
  EXPECT_EQ(incident->days_active, 3u);
}

TEST(IncidentsTest, ActiveSinceFilters) {
  IncidentStore store;
  store.ingest_community(100, v({"old.com"}), v({"h1"}));
  store.ingest_community(200, v({"new.com"}), v({"h2"}));
  EXPECT_EQ(store.active_since(150).size(), 1u);
  EXPECT_EQ(store.active_since(0).size(), 2u);
  EXPECT_EQ(store.active_since(300).size(), 0u);
}

TEST(IncidentsTest, RecurringCampaignAccumulates) {
  // A multi-day campaign: daily detections of the same C&C with rotating
  // second-stage domains keeps collapsing into one incident.
  IncidentStore store;
  for (int day = 0; day < 10; ++day) {
    const std::vector<std::string> hosts = {"h" + std::to_string(day % 3)};
    store.ingest_community(1000 + day, v({"cc.ru"}), hosts);
  }
  EXPECT_EQ(store.size(), 1u);
  const auto incidents = store.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].days_active, 10u);
  EXPECT_EQ(incidents[0].hosts.size(), 3u);
  EXPECT_EQ(incidents[0].last_seen - incidents[0].first_seen, 9);
}

TEST(IncidentsTest, FindRejectsBadIds) {
  IncidentStore store;
  EXPECT_EQ(store.find(-1), nullptr);
  EXPECT_EQ(store.find(0), nullptr);
  EXPECT_EQ(store.find(99), nullptr);
}

}  // namespace
}  // namespace eid::core
