#include "profile/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace eid::profile {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-persist-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, DomainHistoryRoundTrip) {
  DomainHistory history;
  history.update({"a.com", "b.com"});
  history.update({"c.com"});
  const auto path = dir_ / "domains.hist";
  ASSERT_TRUE(save_domain_history(history, path));
  const auto loaded = load_domain_history(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->days_ingested(), 2u);
  EXPECT_FALSE(loaded->is_new("a.com"));
  EXPECT_FALSE(loaded->is_new("c.com"));
  EXPECT_TRUE(loaded->is_new("never.com"));
}

TEST_F(PersistenceTest, EmptyDomainHistoryRoundTrip) {
  DomainHistory history;
  const auto path = dir_ / "empty.hist";
  ASSERT_TRUE(save_domain_history(history, path));
  const auto loaded = load_domain_history(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST_F(PersistenceTest, DomainHistoryRejectsBadMagic) {
  const auto path = dir_ / "bad.hist";
  {
    std::ofstream out(path);
    out << "some other file\ndays 3\na.com\n";
  }
  EXPECT_FALSE(load_domain_history(path).has_value());
  EXPECT_FALSE(load_domain_history(dir_ / "missing.hist").has_value());
}

TEST_F(PersistenceTest, UaHistoryRoundTripPreservesRarity) {
  UaHistory history(3);
  history.observe("Popular/1.0", "h1");
  history.observe("Popular/1.0", "h2");
  history.observe("Popular/1.0", "h3");  // crosses the threshold
  history.observe("Rare/2.0", "h1");
  history.observe("Rare/2.0", "h9");
  const auto path = dir_ / "uas.hist";
  ASSERT_TRUE(save_ua_history(history, path));
  const auto loaded = load_ua_history(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->rare_threshold(), 3u);
  EXPECT_FALSE(loaded->is_rare("Popular/1.0"));
  EXPECT_TRUE(loaded->is_rare("Rare/2.0"));
  EXPECT_EQ(loaded->host_count("Rare/2.0"), 2u);
  EXPECT_TRUE(loaded->is_rare("NeverSeen/0.1"));
}

TEST_F(PersistenceTest, UaHistoryContinuesAccumulatingAfterLoad) {
  UaHistory history(2);
  history.observe("Almost/1.0", "h1");
  const auto path = dir_ / "uas2.hist";
  ASSERT_TRUE(save_ua_history(history, path));
  auto loaded = load_ua_history(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->is_rare("Almost/1.0"));
  loaded->observe("Almost/1.0", "h2");  // second distinct host
  EXPECT_FALSE(loaded->is_rare("Almost/1.0"));
}

TEST_F(PersistenceTest, UaHistoryRejectsMalformed) {
  const auto path = dir_ / "bad-ua.hist";
  {
    std::ofstream out(path);
    out << "eid-ua-history 1\nthreshold 0\n";  // zero threshold invalid
  }
  EXPECT_FALSE(load_ua_history(path).has_value());
  {
    std::ofstream out(path);
    out << "eid-ua-history 1\nthreshold 5\nX\tua\n";  // unknown kind
  }
  EXPECT_FALSE(load_ua_history(path).has_value());
}

TEST_F(PersistenceTest, DailyRestartScenario) {
  // Day 1 process: bootstrap, save.
  const auto dom_path = dir_ / "d.hist";
  const auto ua_path = dir_ / "u.hist";
  {
    DomainHistory domains;
    domains.update({"seen-day1.com"});
    UaHistory uas(2);
    uas.observe("UA", "h1");
    ASSERT_TRUE(save_domain_history(domains, dom_path));
    ASSERT_TRUE(save_ua_history(uas, ua_path));
  }
  // Day 2 process: load, verify continuity, extend, save again.
  {
    auto domains = load_domain_history(dom_path);
    auto uas = load_ua_history(ua_path);
    ASSERT_TRUE(domains && uas);
    EXPECT_FALSE(domains->is_new("seen-day1.com"));
    domains->update({"seen-day2.com"});
    uas->observe("UA", "h2");
    ASSERT_TRUE(save_domain_history(*domains, dom_path));
    ASSERT_TRUE(save_ua_history(*uas, ua_path));
  }
  // Day 3 process: both days visible.
  const auto domains = load_domain_history(dom_path);
  const auto uas = load_ua_history(ua_path);
  ASSERT_TRUE(domains && uas);
  EXPECT_FALSE(domains->is_new("seen-day1.com"));
  EXPECT_FALSE(domains->is_new("seen-day2.com"));
  EXPECT_EQ(domains->days_ingested(), 2u);
  EXPECT_FALSE(uas->is_rare("UA"));
}

}  // namespace
}  // namespace eid::profile
