#include "profile/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace eid::profile {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-persist-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, DomainHistoryRoundTrip) {
  DomainHistory history;
  history.update({"a.com", "b.com"});
  history.update({"c.com"});
  const auto path = dir_ / "domains.hist";
  ASSERT_TRUE(save_domain_history(history, path));
  const auto loaded = load_domain_history(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->days_ingested(), 2u);
  EXPECT_FALSE(loaded->is_new("a.com"));
  EXPECT_FALSE(loaded->is_new("c.com"));
  EXPECT_TRUE(loaded->is_new("never.com"));
}

TEST_F(PersistenceTest, EmptyDomainHistoryRoundTrip) {
  DomainHistory history;
  const auto path = dir_ / "empty.hist";
  ASSERT_TRUE(save_domain_history(history, path));
  const auto loaded = load_domain_history(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST_F(PersistenceTest, DomainHistoryRejectsBadMagic) {
  const auto path = dir_ / "bad.hist";
  {
    std::ofstream out(path);
    out << "some other file\ndays 3\na.com\n";
  }
  EXPECT_FALSE(load_domain_history(path).has_value());
  EXPECT_FALSE(load_domain_history(dir_ / "missing.hist").has_value());
}

TEST_F(PersistenceTest, LoadersReportFailureReasons) {
  storage::LoadStatus status;
  EXPECT_FALSE(load_domain_history(dir_ / "missing.hist", &status).has_value());
  EXPECT_EQ(status.error, storage::LoadError::FileNotFound);

  const auto bad_magic = dir_ / "magic.hist";
  {
    std::ofstream out(bad_magic);
    out << "some other file\n";
  }
  EXPECT_FALSE(load_domain_history(bad_magic, &status).has_value());
  EXPECT_EQ(status.error, storage::LoadError::BadMagic);

  const auto bad_header = dir_ / "header.hist";
  {
    std::ofstream out(bad_header);
    out << "eid-domain-history 1\ndays x\n";
  }
  EXPECT_FALSE(load_domain_history(bad_header, &status).has_value());
  EXPECT_EQ(status.error, storage::LoadError::Malformed);
  EXPECT_NE(status.detail.find("line 2"), std::string::npos) << status.detail;

  const auto no_header = dir_ / "cut.hist";
  {
    std::ofstream out(no_header);
    out << "eid-ua-history 1\n";
  }
  EXPECT_FALSE(load_ua_history(no_header, &status).has_value());
  EXPECT_EQ(status.error, storage::LoadError::Truncated);
}

TEST_F(PersistenceTest, CrlfFilesLoadIdentically) {
  // A profile written on (or round-tripped through) a Windows collector
  // gains \r\n endings; the loader must strip them, not fold \r into data.
  const auto dom_path = dir_ / "crlf-dom.hist";
  {
    std::ofstream out(dom_path, std::ios::binary);
    out << "eid-domain-history 1\r\ndays 2\r\na.com\r\nb.com\r\n";
  }
  storage::LoadStatus status;
  const auto domains = load_domain_history(dom_path, &status);
  ASSERT_TRUE(domains.has_value()) << status.detail;
  EXPECT_EQ(domains->size(), 2u);
  EXPECT_EQ(domains->days_ingested(), 2u);
  EXPECT_FALSE(domains->is_new("a.com"));  // no trailing-\r ghost entries

  const auto ua_path = dir_ / "crlf-ua.hist";
  {
    std::ofstream out(ua_path, std::ios::binary);
    out << "eid-ua-history 1\r\nthreshold 2\r\nP\tCommon/1.0\r\n"
           "R\tRare/1.0\th1\r\n";
  }
  const auto uas = load_ua_history(ua_path, &status);
  ASSERT_TRUE(uas.has_value()) << status.detail;
  EXPECT_FALSE(uas->is_rare("Common/1.0"));
  EXPECT_EQ(uas->host_count("Rare/1.0"), 1u);  // host is "h1", not "h1\r"
}

TEST_F(PersistenceTest, OverThresholdRareEntryNormalizesToPopular) {
  // An R line listing >= threshold hosts (hand-edited or from an older
  // tool) restores as popular — the invariant observe() enforces — so the
  // entry survives a further save/load round trip in any format.
  const auto path = dir_ / "over.hist";
  {
    std::ofstream out(path);
    out << "eid-ua-history 1\nthreshold 3\nR\tBig/1.0\th1\th2\th3\th4\n";
  }
  const auto loaded = load_ua_history(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->is_rare("Big/1.0"));
  EXPECT_EQ(loaded->host_count("Big/1.0"), 3u);  // saturated at threshold
  ASSERT_TRUE(save_ua_history(*loaded, path));
  const auto reloaded = load_ua_history(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_FALSE(reloaded->is_rare("Big/1.0"));
}

TEST_F(PersistenceTest, MalformedTrailingDataIsRejectedNotSwallowed) {
  const auto path = dir_ / "trailing.hist";
  {
    std::ofstream out(path);
    out << "eid-domain-history 1\ndays 1\nok.com\n"
        << "some trailing garbage with spaces\n";
  }
  storage::LoadStatus status;
  EXPECT_FALSE(load_domain_history(path, &status).has_value());
  EXPECT_EQ(status.error, storage::LoadError::Malformed);
  EXPECT_NE(status.detail.find("line 4"), std::string::npos) << status.detail;
}

TEST_F(PersistenceTest, UaHistoryRoundTripPreservesRarity) {
  UaHistory history(3);
  history.observe("Popular/1.0", "h1");
  history.observe("Popular/1.0", "h2");
  history.observe("Popular/1.0", "h3");  // crosses the threshold
  history.observe("Rare/2.0", "h1");
  history.observe("Rare/2.0", "h9");
  const auto path = dir_ / "uas.hist";
  ASSERT_TRUE(save_ua_history(history, path));
  const auto loaded = load_ua_history(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->rare_threshold(), 3u);
  EXPECT_FALSE(loaded->is_rare("Popular/1.0"));
  EXPECT_TRUE(loaded->is_rare("Rare/2.0"));
  EXPECT_EQ(loaded->host_count("Rare/2.0"), 2u);
  EXPECT_TRUE(loaded->is_rare("NeverSeen/0.1"));
}

TEST_F(PersistenceTest, UaHistoryContinuesAccumulatingAfterLoad) {
  UaHistory history(2);
  history.observe("Almost/1.0", "h1");
  const auto path = dir_ / "uas2.hist";
  ASSERT_TRUE(save_ua_history(history, path));
  auto loaded = load_ua_history(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->is_rare("Almost/1.0"));
  loaded->observe("Almost/1.0", "h2");  // second distinct host
  EXPECT_FALSE(loaded->is_rare("Almost/1.0"));
}

TEST_F(PersistenceTest, UaHistoryRejectsMalformed) {
  const auto path = dir_ / "bad-ua.hist";
  {
    std::ofstream out(path);
    out << "eid-ua-history 1\nthreshold 0\n";  // zero threshold invalid
  }
  EXPECT_FALSE(load_ua_history(path).has_value());
  {
    std::ofstream out(path);
    out << "eid-ua-history 1\nthreshold 5\nX\tua\n";  // unknown kind
  }
  EXPECT_FALSE(load_ua_history(path).has_value());
}

TEST_F(PersistenceTest, DailyRestartScenario) {
  // Day 1 process: bootstrap, save.
  const auto dom_path = dir_ / "d.hist";
  const auto ua_path = dir_ / "u.hist";
  {
    DomainHistory domains;
    domains.update({"seen-day1.com"});
    UaHistory uas(2);
    uas.observe("UA", "h1");
    ASSERT_TRUE(save_domain_history(domains, dom_path));
    ASSERT_TRUE(save_ua_history(uas, ua_path));
  }
  // Day 2 process: load, verify continuity, extend, save again.
  {
    auto domains = load_domain_history(dom_path);
    auto uas = load_ua_history(ua_path);
    ASSERT_TRUE(domains && uas);
    EXPECT_FALSE(domains->is_new("seen-day1.com"));
    domains->update({"seen-day2.com"});
    uas->observe("UA", "h2");
    ASSERT_TRUE(save_domain_history(*domains, dom_path));
    ASSERT_TRUE(save_ua_history(*uas, ua_path));
  }
  // Day 3 process: both days visible.
  const auto domains = load_domain_history(dom_path);
  const auto uas = load_ua_history(ua_path);
  ASSERT_TRUE(domains && uas);
  EXPECT_FALSE(domains->is_new("seen-day1.com"));
  EXPECT_FALSE(domains->is_new("seen-day2.com"));
  EXPECT_EQ(domains->days_ingested(), 2u);
  EXPECT_FALSE(uas->is_rare("UA"));
}

}  // namespace
}  // namespace eid::profile
