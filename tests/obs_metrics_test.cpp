// Unit tests for the observability layer (src/obs): registry semantics,
// sharded-cell merge exactness under concurrency, histogram bucket edges,
// deterministic snapshot ordering, the disabled near-no-op path, and the
// trace sink's Chrome trace-event JSON. Runs under the TSan matrix — the
// concurrent cases are the data-race regression net for the sharded cells.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_helpers.h"

namespace {

using namespace eid;

/// Fresh registry values per test: the process registry is shared, so
/// every test works on its own uniquely named metrics and the fixture
/// only guarantees collection is on.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::metrics().set_enabled(true); }
  void TearDown() override { obs::metrics().set_enabled(true); }
};

TEST_F(ObsMetricsTest, CounterAccumulatesAndFindsByName) {
  obs::Counter& counter = obs::metrics().counter("test_counter_basic_total");
  const std::uint64_t before = counter.value();
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), before + 42);
  // Same name -> same handle (find-or-register).
  EXPECT_EQ(&obs::metrics().counter("test_counter_basic_total"), &counter);
}

TEST_F(ObsMetricsTest, ConcurrentCounterIncrementsMergeExactly) {
  obs::Counter& counter = obs::metrics().counter("test_counter_mt_total");
  const std::uint64_t before = counter.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  // Sharded cells lose nothing: the merged value is the exact sum.
  EXPECT_EQ(counter.value(),
            before + static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsMetricsTest, GaugeSetAndAdd) {
  obs::Gauge& gauge = obs::metrics().gauge("test_gauge_value");
  gauge.set(7.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.5);
  gauge.add(-2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0);
}

TEST_F(ObsMetricsTest, HistogramBucketEdgesAreInclusive) {
  const double bounds[] = {0.1, 1.0, 10.0};
  obs::Histogram& histogram =
      obs::metrics().histogram("test_histogram_edges", bounds);
  histogram.observe(0.1);   // exactly on an edge -> that bucket
  histogram.observe(0.05);  // below the first edge
  histogram.observe(1.0);   // exactly on the middle edge
  histogram.observe(5.0);
  histogram.observe(100.0);  // above every edge -> +Inf overflow

  const obs::MetricsSnapshot snapshot = obs::metrics().snapshot();
  const obs::HistogramSnapshot* found = nullptr;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "test_histogram_edges") found = &h;
  }
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->bounds.size(), 3u);
  ASSERT_EQ(found->buckets.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(found->buckets[0], 2u);      // 0.05, 0.1
  EXPECT_EQ(found->buckets[1], 1u);      // 1.0
  EXPECT_EQ(found->buckets[2], 1u);      // 5.0
  EXPECT_EQ(found->buckets[3], 1u);      // 100.0
  EXPECT_EQ(found->count, 5u);
  EXPECT_NEAR(found->sum, 106.15, 1e-9);
}

TEST_F(ObsMetricsTest, ConcurrentHistogramObservationsAndSnapshots) {
  const double bounds[] = {1.0, 2.0};
  obs::Histogram& histogram =
      obs::metrics().histogram("test_histogram_mt", bounds);
  std::atomic<bool> stop{false};
  // Snapshot concurrently with observers: under TSan this is the race net
  // for the sharded cells and the registry mutex.
  std::thread snapshotter([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snapshot = obs::metrics().snapshot();
      (void)snapshot;
    }
  });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.observe(0.5 + (i % 3));  // 0.5, 1.5, 2.5 — all 3 buckets
      }
    });
  }
  for (auto& thread : threads) thread.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsMetricsTest, DisabledMutationsAreDropped) {
  obs::Counter& counter = obs::metrics().counter("test_counter_off_total");
  obs::Gauge& gauge = obs::metrics().gauge("test_gauge_off");
  const double bounds[] = {1.0};
  obs::Histogram& histogram =
      obs::metrics().histogram("test_histogram_off", bounds);
  gauge.set(3.0);
  const std::uint64_t counter_before = counter.value();
  const std::uint64_t histogram_before = histogram.count();

  obs::metrics().set_enabled(false);
  counter.add(100);
  gauge.set(99.0);
  histogram.observe(0.5);
  obs::metrics().set_enabled(true);

  EXPECT_EQ(counter.value(), counter_before);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  EXPECT_EQ(histogram.count(), histogram_before);
}

TEST_F(ObsMetricsTest, SnapshotIsSortedByName) {
  obs::metrics().counter("test_zz_order_total").add(1);
  obs::metrics().counter("test_aa_order_total").add(1);
  const obs::MetricsSnapshot snapshot = obs::metrics().snapshot();
  ASSERT_GE(snapshot.counters.size(), 2u);
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
  for (std::size_t i = 1; i < snapshot.gauges.size(); ++i) {
    EXPECT_LT(snapshot.gauges[i - 1].name, snapshot.gauges[i].name);
  }
  for (std::size_t i = 1; i < snapshot.histograms.size(); ++i) {
    EXPECT_LT(snapshot.histograms[i - 1].name, snapshot.histograms[i].name);
  }
}

TEST_F(ObsMetricsTest, PrometheusExpositionShape) {
  obs::metrics().counter("test_prom_counter_total").add(3);
  obs::metrics().gauge("test_prom_gauge").set(1.5);
  const double bounds[] = {0.5, 5.0};
  obs::Histogram& histogram =
      obs::metrics().histogram("test_prom_histogram", bounds);
  histogram.observe(0.25);
  histogram.observe(2.0);
  histogram.observe(50.0);

  const std::string text = obs::to_prometheus(obs::metrics().snapshot());
  EXPECT_NE(text.find("# TYPE test_prom_counter_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_histogram histogram"),
            std::string::npos);
  // Cumulative buckets: le="0.5" covers 1, le="5" covers 2, +Inf all 3.
  EXPECT_NE(text.find("test_prom_histogram_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histogram_bucket{le=\"5\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histogram_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histogram_count 3"), std::string::npos);
}

TEST_F(ObsMetricsTest, JsonRenderingIsWellFormed) {
  obs::metrics().counter("test_json_counter_total").add(2);
  const double bounds[] = {1.0};
  obs::metrics().histogram("test_json_histogram", bounds).observe(0.5);
  const std::string json = obs::to_json(obs::metrics().snapshot());
  EXPECT_TRUE(test::json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"test_json_counter_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"test_json_histogram\""), std::string::npos);
}

TEST_F(ObsMetricsTest, ResetValuesZeroesCells) {
  obs::Counter& counter = obs::metrics().counter("test_reset_total");
  counter.add(5);
  EXPECT_GT(counter.value(), 0u);
  obs::metrics().reset_values();
  EXPECT_EQ(counter.value(), 0u);
}

// ---- Trace sink ----

TEST(ObsTraceTest, SpansFromMultipleThreadsProduceValidChromeJson) {
  obs::TraceSink sink;
  obs::set_trace_sink(&sink);
  {
    const obs::TraceSpan outer("outer_stage", "test");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < 8; ++i) {
          const obs::TraceSpan span("worker_stage", "test");
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  obs::set_trace_sink(nullptr);

  EXPECT_EQ(sink.event_count(), 4u * 8u + 1u);
  EXPECT_EQ(sink.dropped_events(), 0u);
  const std::string json = sink.to_chrome_json();
  EXPECT_TRUE(eid::test::json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer_stage\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsTraceTest, NoSinkMeansNoRecording) {
  obs::set_trace_sink(nullptr);
  { const obs::TraceSpan span("unrecorded", "test"); }
  obs::TraceSink sink;
  obs::set_trace_sink(&sink);
  { const obs::TraceSpan span("recorded", "test"); }
  obs::set_trace_sink(nullptr);
  EXPECT_EQ(sink.event_count(), 1u);
}

TEST(ObsTraceTest, CapDropsExcessEventsAndCountsThem) {
  obs::TraceSink sink(/*max_events=*/2);
  obs::set_trace_sink(&sink);
  for (int i = 0; i < 5; ++i) {
    const obs::TraceSpan span("capped", "test");
  }
  obs::set_trace_sink(nullptr);
  EXPECT_EQ(sink.event_count(), 2u);
  EXPECT_EQ(sink.dropped_events(), 3u);
  EXPECT_TRUE(eid::test::json_well_formed(sink.to_chrome_json()));
  EXPECT_NE(sink.to_chrome_json().find("\"dropped_events\": 3"),
            std::string::npos);
}

TEST(ObsTraceTest, WriteChromeJsonRoundTrips) {
  obs::TraceSink sink;
  obs::set_trace_sink(&sink);
  { const obs::TraceSpan span("persisted", "test"); }
  obs::set_trace_sink(nullptr);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "eid_obs_trace_test.json";
  ASSERT_TRUE(sink.write_chrome_json(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(eid::test::json_well_formed(buffer.str()));
  EXPECT_NE(buffer.str().find("persisted"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
