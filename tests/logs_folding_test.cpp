#include "logs/folding.h"

#include <gtest/gtest.h>

namespace eid::logs {
namespace {

TEST(FoldingTest, SecondLevelFold) {
  EXPECT_EQ(fold_domain("news.nbc.com"), "nbc.com");  // the paper's example
  EXPECT_EQ(fold_domain("a.b.c.d.example.org"), "example.org");
  EXPECT_EQ(fold_domain("example.org"), "example.org");
}

TEST(FoldingTest, ShortNamesUnchanged) {
  EXPECT_EQ(fold_domain("localhost"), "localhost");
  EXPECT_EQ(fold_domain("com"), "com");
}

TEST(FoldingTest, ThirdLevelFold) {
  EXPECT_EQ(fold_domain("x.y.z.c3", FoldLevel::ThirdLevel), "y.z.c3");
  EXPECT_EQ(fold_domain("y.z.c3", FoldLevel::ThirdLevel), "y.z.c3");
  EXPECT_EQ(fold_domain("z.c3", FoldLevel::ThirdLevel), "z.c3");
}

TEST(FoldingTest, TwoLabelPublicSuffixKeepsExtraLabel) {
  EXPECT_EQ(fold_domain("news.bbc.co.uk"), "bbc.co.uk");
  EXPECT_EQ(fold_domain("bbc.co.uk"), "bbc.co.uk");
  EXPECT_TRUE(has_two_label_public_suffix("news.bbc.co.uk"));
  EXPECT_FALSE(has_two_label_public_suffix("news.nbc.com"));
}

TEST(FoldingTest, LowercasesOutput) {
  EXPECT_EQ(fold_domain("WWW.Example.COM"), "example.com");
}

TEST(FoldingTest, TrailingDotIgnored) {
  EXPECT_EQ(fold_domain("www.example.com."), "example.com");
}

class FoldingIdempotence : public ::testing::TestWithParam<const char*> {};

TEST_P(FoldingIdempotence, FoldIsIdempotent) {
  const std::string once = fold_domain(GetParam());
  EXPECT_EQ(fold_domain(once), once);
  const std::string once3 = fold_domain(GetParam(), FoldLevel::ThirdLevel);
  EXPECT_EQ(fold_domain(once3, FoldLevel::ThirdLevel), once3);
}

INSTANTIATE_TEST_SUITE_P(Domains, FoldingIdempotence,
                         ::testing::Values("news.nbc.com", "a.b.c.d.e.f.net",
                                           "bbc.co.uk", "deep.sub.bbc.co.uk",
                                           "single", "x.y", "WWW.MIXED.Case.ORG"));

}  // namespace
}  // namespace eid::logs
