// Delta-checkpoint chain contract (storage/delta.h + Detector delta API):
//
//   * resuming mid-chain is bit-identical to resuming from a full save —
//     the same day-N+1 DayReport either way;
//   * every storage::LoadError variant is producible against a chain and
//     lands where the recovery contract says: base-file damage fails the
//     load with the matching error, chain damage *degrades* the load to
//     the clean prefix (worst case: the last full checkpoint) and never
//     errors;
//   * a degraded load re-compacts on the next save, so the damage heals.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/detector.h"
#include "api/event_source.h"
#include "core/incidents.h"
#include "core/report_json.h"
#include "profile/top_sites.h"
#include "sim/ac.h"
#include "storage/delta.h"
#include "storage/state.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace eid {
namespace {

sim::AcConfig small_world() {
  sim::AcConfig config;
  config.seed = 29;
  config.n_hosts = 60;
  config.n_popular = 30;
  config.tail_per_day = 15;
  config.automated_tail_per_day = 2;
  config.grayware_per_day = 1;
  config.campaigns_per_week = 2.0;
  return config;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void spit(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class DeltaChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-delta-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    scenario_ = std::make_unique<sim::AcScenario>(small_world());
    const util::Day jan = scenario_->training_begin();
    for (int d = 0; d < kBootstrapDays + kLabeledDays; ++d) {
      training_.emplace_back(jan + d,
                             scenario_->simulator().reduced_day(jan + d));
    }
    const util::Day feb = scenario_->operation_begin();
    for (int d = 0; d <= kOperationDays; ++d) {
      operation_.emplace_back(feb + d,
                              scenario_->simulator().reduced_day(feb + d));
    }
    seeds_.domains = scenario_->ioc_seeds();
    top_sites_.add("top-whitelisted.example");

    // Train once; every sub-case clones the trained detector by restoring
    // this pretrain checkpoint instead of re-fitting the models.
    pretrain_ = dir_ / "pretrain.bin";
    api::Detector trained = make_detector();
    train(trained);
    storage::LoadStatus status;
    ASSERT_TRUE(trained.save_state(pretrain_, &status)) << status.detail;
  }
  void TearDown() override {
    util::FaultInjector::instance().reset();
    std::filesystem::remove_all(dir_);
  }

  static constexpr int kBootstrapDays = 4;
  static constexpr int kLabeledDays = 6;
  static constexpr int kOperationDays = 3;

  api::Detector make_detector() {
    core::PipelineConfig config;
    api::Detector detector(config, scenario_->simulator().whois());
    detector.set_top_sites(&top_sites_);
    return detector;
  }

  void train(api::Detector& detector) {
    const sim::IntelOracle& oracle = scenario_->oracle();
    const core::LabelFn intel = [&oracle](const std::string& domain) {
      return oracle.vt_reported(domain);
    };
    for (int d = 0; d < kBootstrapDays; ++d) {
      api::VectorSource source(training_[d].first, &training_[d].second);
      detector.ingest(source);
    }
    for (int d = kBootstrapDays; d < kBootstrapDays + kLabeledDays; ++d) {
      api::VectorSource source(training_[d].first, &training_[d].second);
      detector.ingest(source, intel);
    }
    detector.finalize_training();
    detector.set_intel_domains(seeds_.domains);
  }

  api::Detector make_pretrained() {
    api::Detector detector = make_detector();
    storage::LoadStatus status;
    EXPECT_TRUE(detector.load_state(pretrain_, &status)) << status.detail;
    return detector;
  }

  core::DayReport run_operation_day(api::Detector& detector, int index) {
    api::VectorSource source(operation_[index].first,
                             &operation_[index].second);
    return detector.run_day(source, operation_[index].first, seeds_);
  }

  /// Day reports of the uninterrupted pretrained run, as JSON.
  std::vector<std::string> baseline_reports() {
    std::vector<std::string> reports;
    api::Detector detector = make_pretrained();
    for (int d = 0; d <= kOperationDays; ++d) {
      reports.push_back(core::day_report_to_json(run_operation_day(detector, d)));
    }
    return reports;
  }

  std::filesystem::path dir_;
  std::unique_ptr<sim::AcScenario> scenario_;
  std::filesystem::path pretrain_;
  std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> training_;
  std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> operation_;
  core::SocSeeds seeds_;
  profile::TopSitesList top_sites_;
};

TEST_F(DeltaChainTest, ResumeFromChainIsBitIdenticalToResumeFromFullSave) {
  const std::vector<std::string> baseline = baseline_reports();
  const auto state_path = dir_ / "state.bin";
  const auto chain_path = storage::delta_chain_path(state_path);

  api::Detector primary = make_pretrained();
  api::CheckpointPolicy policy;
  policy.full_every = 10;  // never compact inside this test
  storage::LoadStatus status;
  for (int d = 0; d < kOperationDays; ++d) {
    run_operation_day(primary, d);
    ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status))
        << status.detail;
  }
  // First save was the full rewrite; the remaining two appended frames.
  storage::DeltaChainInfo info;
  ASSERT_TRUE(storage::read_delta_chain(chain_path, info, &status))
      << status.detail;
  EXPECT_EQ(info.frames.size(), 2u);
  EXPECT_FALSE(info.torn_tail);
  // The chain costs O(day), the base O(history): frames must be far
  // smaller than the base checkpoint they extend.
  const auto base_bytes = std::filesystem::file_size(state_path);
  EXPECT_LT(info.file_bytes * 3, base_bytes)
      << "delta frames are not small: chain=" << info.file_bytes
      << " base=" << base_bytes;

  storage::ChainLoadReport report;
  api::Detector resumed = make_detector();
  ASSERT_TRUE(resumed.load_state(state_path, &report, &status))
      << status.detail;
  EXPECT_EQ(report.frames_applied, 2u);
  EXPECT_EQ(report.last_seq, 2u);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(resumed.days_operated(),
            static_cast<std::size_t>(kOperationDays));

  const std::string resumed_report =
      core::day_report_to_json(run_operation_day(resumed, kOperationDays));
  EXPECT_EQ(resumed_report, baseline[kOperationDays]);
}

TEST_F(DeltaChainTest, PolicyCompactsAndPlainSaveInvalidatesChain) {
  const auto state_path = dir_ / "state.bin";
  const auto chain_path = storage::delta_chain_path(state_path);
  api::Detector primary = make_pretrained();
  api::CheckpointPolicy policy;
  policy.full_every = 3;
  storage::LoadStatus status;

  // Saves 1 (full), 2, 3 (frames), 4 (compaction: 3 saves since full).
  for (int save = 0; save < 4; ++save) {
    run_operation_day(primary, save % (kOperationDays + 1));
    ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status))
        << "save " << save << ": " << status.detail;
    if (save == 2) EXPECT_TRUE(std::filesystem::exists(chain_path));
  }
  EXPECT_FALSE(std::filesystem::exists(chain_path))
      << "compaction must truncate the chain";

  // Grow a fresh frame, then overwrite via the plain full-save API: the
  // chain refers to a base that no longer exists and must be removed.
  run_operation_day(primary, 0);
  ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status));
  ASSERT_TRUE(std::filesystem::exists(chain_path));
  ASSERT_TRUE(primary.save_state(state_path, &status)) << status.detail;
  EXPECT_FALSE(std::filesystem::exists(chain_path));

  // full_every <= 1 degrades to a full rewrite every time: no chain.
  api::CheckpointPolicy always_full;
  always_full.full_every = 1;
  run_operation_day(primary, 1);
  ASSERT_TRUE(primary.save_state_delta(state_path, always_full, &status));
  run_operation_day(primary, 2);
  ASSERT_TRUE(primary.save_state_delta(state_path, always_full, &status));
  EXPECT_FALSE(std::filesystem::exists(chain_path));
}

TEST_F(DeltaChainTest, MidChainCorruptionDegradesToCleanPrefixAndHeals) {
  const auto state_path = dir_ / "state.bin";
  const auto chain_path = storage::delta_chain_path(state_path);
  api::Detector primary = make_pretrained();
  api::CheckpointPolicy policy;
  policy.full_every = 10;
  storage::LoadStatus status;
  for (int d = 0; d < kOperationDays; ++d) {
    run_operation_day(primary, d);
    ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status));
  }

  // Corrupt a payload byte of the *second* frame and re-stamp the frame
  // CRC so the chain scan accepts it: the damage must be caught one level
  // down, by the container's per-section CRCs, and degrade the load to
  // the frames before it.
  storage::DeltaChainInfo info;
  ASSERT_TRUE(storage::read_delta_chain(chain_path, info, &status));
  ASSERT_EQ(info.frames.size(), 2u);
  std::string bytes = slurp(chain_path);
  const std::uint64_t payload_at = info.frames[1].offset + 12;
  const std::uint64_t size = info.frames[1].payload.size();
  bytes[payload_at + size / 2] ^= 0x40;
  const std::uint32_t fixed_crc =
      util::crc32(std::string_view(bytes).substr(payload_at, size));
  for (int i = 0; i < 4; ++i) {
    bytes[payload_at + size + i] =
        static_cast<char>((fixed_crc >> (8 * i)) & 0xff);
  }
  spit(chain_path, bytes);

  storage::ChainLoadReport report;
  api::Detector resumed = make_detector();
  ASSERT_TRUE(resumed.load_state(state_path, &report, &status))
      << "chain damage must degrade, not fail: " << status.detail;
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.frames_applied, 1u);
  EXPECT_GE(report.frames_dropped, 1u);
  // State is as of the clean prefix: base (day 1) + frame 1 (day 2).
  EXPECT_EQ(resumed.days_operated(), 2u);

  // A degraded chain never grows: the next save compacts into a fresh
  // base and the damage is gone.
  run_operation_day(resumed, 2);
  ASSERT_TRUE(resumed.save_state_delta(state_path, policy, &status));
  EXPECT_FALSE(std::filesystem::exists(chain_path));
  api::Detector healed = make_detector();
  ASSERT_TRUE(healed.load_state(state_path, &report, &status));
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(healed.days_operated(), 3u);
}

TEST_F(DeltaChainTest, TornTailIsWaitedOutAndTruncatedByTheNextAppend) {
  const auto state_path = dir_ / "state.bin";
  const auto chain_path = storage::delta_chain_path(state_path);
  api::Detector primary = make_pretrained();
  api::CheckpointPolicy policy;
  policy.full_every = 10;
  storage::LoadStatus status;
  run_operation_day(primary, 0);
  ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status));
  run_operation_day(primary, 1);
  ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status));

  // A crash mid-append leaves a frame cut short after the magic.
  {
    std::ofstream out(chain_path, std::ios::binary | std::ios::app);
    out.write("EIDDELT1\x40\x00\x00\x00half-a-frame", 24);
  }
  storage::DeltaChainInfo info;
  ASSERT_TRUE(storage::read_delta_chain(chain_path, info, &status));
  EXPECT_EQ(info.frames.size(), 1u);
  EXPECT_TRUE(info.torn_tail);

  // Load: the clean prefix applies, the torn tail is reported, the load
  // is NOT degraded (nothing decodable was dropped).
  storage::ChainLoadReport report;
  api::Detector resumed = make_detector();
  ASSERT_TRUE(resumed.load_state(state_path, &report, &status));
  EXPECT_TRUE(report.torn_tail);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.frames_applied, 1u);

  // The resumed detector keeps appending to the same chain; the append
  // truncates the torn garbage first, so the chain scans clean after.
  run_operation_day(resumed, 1);
  ASSERT_TRUE(resumed.save_state_delta(state_path, policy, &status))
      << status.detail;
  ASSERT_TRUE(storage::read_delta_chain(chain_path, info, &status));
  EXPECT_EQ(info.frames.size(), 2u);
  EXPECT_FALSE(info.torn_tail);
}

TEST_F(DeltaChainTest, EveryLoadErrorVariantAgainstAChain) {
  // Build one good base + 2-frame chain to damage per variant.
  const auto good_state = dir_ / "good.bin";
  api::Detector primary = make_pretrained();
  api::CheckpointPolicy policy;
  policy.full_every = 10;
  storage::LoadStatus status;
  for (int d = 0; d < kOperationDays; ++d) {
    run_operation_day(primary, d);
    ASSERT_TRUE(primary.save_state_delta(good_state, policy, &status));
  }
  const std::string base_bytes = slurp(good_state);
  const std::string chain_bytes =
      slurp(storage::delta_chain_path(good_state));
  ASSERT_FALSE(base_bytes.empty());
  ASSERT_FALSE(chain_bytes.empty());

  const auto state_path = dir_ / "state.bin";
  const auto chain_path = storage::delta_chain_path(state_path);
  const auto reset_files = [&] {
    spit(state_path, base_bytes);
    spit(chain_path, chain_bytes);
  };
  const auto expect_load_error = [&](storage::LoadError want,
                                     const char* what) {
    storage::ChainLoadReport report;
    storage::LoadStatus local;
    api::Detector detector = make_detector();
    EXPECT_FALSE(detector.load_state(state_path, &report, &local)) << what;
    EXPECT_EQ(local.error, want)
        << what << ": " << storage::load_error_name(local.error) << " — "
        << local.detail;
  };

  // None — the clean load.
  {
    reset_files();
    storage::LoadStatus local;
    api::Detector detector = make_detector();
    EXPECT_TRUE(detector.load_state(state_path, nullptr, &local));
    EXPECT_EQ(local.error, storage::LoadError::None);
  }
  // FileNotFound — base missing (the chain alone is not a checkpoint).
  {
    reset_files();
    std::filesystem::remove(state_path);
    expect_load_error(storage::LoadError::FileNotFound, "missing base");
  }
  // IoError — the read itself dies under the base file.
  {
    reset_files();
    util::FaultInjector::instance().arm(util::FaultPoint::StorageRead,
                                        util::FaultAction::FailOp);
    expect_load_error(storage::LoadError::IoError, "read failure");
    util::FaultInjector::instance().reset();
  }
  // BadMagic — the base is not an EIDSTOR1 container.
  {
    reset_files();
    std::string bad = base_bytes;
    bad.replace(0, 8, "NOTSTOR!");
    spit(state_path, bad);
    expect_load_error(storage::LoadError::BadMagic, "bad magic");
  }
  // UnsupportedVersion — container from a future format revision.
  {
    reset_files();
    std::string bad = base_bytes;
    bad[8] = '\x7f';  // version varint -> 127
    spit(state_path, bad);
    expect_load_error(storage::LoadError::UnsupportedVersion,
                      "future version");
  }
  // Truncated — base ends mid-structure.
  {
    reset_files();
    spit(state_path, base_bytes.substr(0, base_bytes.size() / 2));
    expect_load_error(storage::LoadError::Truncated, "truncated base");
  }
  // ChecksumMismatch — media corruption inside a base section payload.
  {
    reset_files();
    std::string bad = base_bytes;
    bad[bad.size() / 2] ^= 0x01;
    spit(state_path, bad);
    expect_load_error(storage::LoadError::ChecksumMismatch, "bit flip");
  }
  // MissingSection — a CRC-clean frame payload that is a valid container
  // but not a delta frame (no DeltaHeader section).
  {
    storage::LoadStatus local;
    EXPECT_FALSE(storage::decode_delta_frame(base_bytes, &local));
    EXPECT_EQ(local.error, storage::LoadError::MissingSection);
  }
  // Malformed — structurally decodable, semantically invalid (seq 0 is
  // reserved: chains count 1, 2, ...).
  {
    storage::DeltaChainInfo info;
    storage::LoadStatus local;
    ASSERT_TRUE(storage::read_delta_chain(chain_path, info, &local));
    ASSERT_GE(info.frames.size(), 1u);
    std::optional<storage::DeltaFrame> frame =
        storage::decode_delta_frame(info.frames[0].payload, &local);
    ASSERT_TRUE(frame);
    api::Detector detector = make_pretrained();
    frame->training_rows.cc_cols = 3;  // impossible row width
    frame->training_rows.cc = {1.0, 2.0, 3.0};
    frame->training_rows.cc_labels = {1.0};
    EXPECT_FALSE(detector.apply_state_delta(*frame, &local));
    EXPECT_EQ(local.error, storage::LoadError::Malformed);
  }
}

TEST_F(DeltaChainTest, FrameRoundTripCarriesEverySection) {
  api::Detector trained = make_pretrained();
  const std::vector<std::string> new_domains = {"evil.example",
                                                "rare.example"};
  const std::vector<std::string> intel = {"ioc-a.example", "ioc-b.example"};
  profile::TopSitesList sites;
  sites.add("alexa-1.example");
  core::IncidentStore incidents;
  const std::vector<std::string> inc_domains = {"evil.example"};
  const std::vector<std::string> inc_hosts = {"10.0.0.7"};
  incidents.ingest_community(400, inc_domains, inc_hosts);

  storage::TrainingRows rows;
  rows.cc_cols = 2;
  rows.cc = {0.5, 1.5, 2.5, 3.5};
  rows.cc_labels = {1.0, 0.0};

  storage::DeltaInputs inputs;
  inputs.base_crc = 0xdeadbeef;
  inputs.seq = 7;
  inputs.day = 412;
  inputs.days_ingested = 31;
  inputs.new_domains = &new_domains;
  storage::DeltaUaEntryView ua;
  ua.ua = "curl/8.0";
  ua.hosts = {"10.0.0.7", "10.0.0.9"};
  inputs.ua_entries.push_back(ua);
  storage::DeltaUaEntryView popular_ua;
  popular_ua.ua = "Mozilla/5.0";
  popular_ua.popular = true;
  inputs.ua_entries.push_back(popular_ua);
  const core::PipelineConfig config = trained.pipeline().config();
  inputs.config = &config;
  inputs.cc_model = &trained.pipeline().cc_model();
  inputs.sim_model = &trained.pipeline().sim_model();
  inputs.training.models_ready = true;
  inputs.counters.days_operated = 5;
  inputs.training_rows = &rows;
  inputs.intel_domains = &intel;
  inputs.top_sites = &sites;
  inputs.has_cursor = true;
  inputs.cursor_day = 412;
  inputs.cursor_offset = 123456;
  inputs.incidents = &incidents;

  const std::string payload = storage::encode_delta_frame(inputs);
  storage::LoadStatus status;
  std::optional<storage::DeltaFrame> frame =
      storage::decode_delta_frame(payload, &status);
  ASSERT_TRUE(frame) << status.detail;
  EXPECT_EQ(frame->base_crc, 0xdeadbeefu);
  EXPECT_EQ(frame->seq, 7u);
  EXPECT_EQ(frame->day, 412);
  EXPECT_EQ(frame->days_ingested, 31u);
  EXPECT_EQ(frame->new_domains, new_domains);
  // Entries come back sorted by the frame-local string table, not in
  // input order; find each by name.
  ASSERT_EQ(frame->ua_entries.size(), 2u);
  const auto find_ua = [&](std::string_view name)
      -> const storage::DeltaFrame::UaEntry* {
    for (const auto& entry : frame->ua_entries) {
      if (entry.ua == name) return &entry;
    }
    return nullptr;
  };
  const auto* curl = find_ua("curl/8.0");
  ASSERT_NE(curl, nullptr);
  EXPECT_FALSE(curl->popular);
  EXPECT_EQ(curl->hosts, (std::vector<std::string>{"10.0.0.7", "10.0.0.9"}));
  const auto* mozilla = find_ua("Mozilla/5.0");
  ASSERT_NE(mozilla, nullptr);
  EXPECT_TRUE(mozilla->popular);
  EXPECT_TRUE(mozilla->hosts.empty());
  EXPECT_TRUE(frame->training.models_ready);
  EXPECT_EQ(frame->counters.days_operated, 5u);
  EXPECT_EQ(frame->training_rows.cc_cols, 2u);
  EXPECT_EQ(frame->training_rows.cc, rows.cc);
  EXPECT_EQ(frame->training_rows.cc_labels, rows.cc_labels);
  EXPECT_TRUE(frame->has_intel);
  EXPECT_EQ(frame->intel_domains, intel);
  EXPECT_TRUE(frame->has_top_sites);
  EXPECT_EQ(frame->top_sites, std::vector<std::string>{"alexa-1.example"});
  EXPECT_TRUE(frame->has_cursor);
  EXPECT_EQ(frame->cursor_day, 412);
  EXPECT_EQ(frame->cursor_offset, 123456u);
  ASSERT_TRUE(frame->has_incidents);
  ASSERT_EQ(frame->incidents.size(), 1u);
  EXPECT_EQ(frame->incidents[0].domains.count("evil.example"), 1u);
  EXPECT_EQ(frame->incidents[0].hosts.count("10.0.0.7"), 1u);
  EXPECT_EQ(frame->incidents_next_id, incidents.next_id());

  // Malformed guard: seq 0 never encodes into a decodable frame.
  inputs.seq = 0;
  std::optional<storage::DeltaFrame> zero =
      storage::decode_delta_frame(storage::encode_delta_frame(inputs), &status);
  EXPECT_FALSE(zero);
  EXPECT_EQ(status.error, storage::LoadError::Malformed);
}

TEST_F(DeltaChainTest, FailedAppendFallsBackToFullRewrite) {
  const auto state_path = dir_ / "state.bin";
  const auto chain_path = storage::delta_chain_path(state_path);
  api::Detector primary = make_pretrained();
  api::CheckpointPolicy policy;
  policy.full_every = 10;
  storage::LoadStatus status;
  run_operation_day(primary, 0);
  ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status));

  // The append dies mid-write (power loss): the save fails and the chain
  // holds at worst a torn tail.
  run_operation_day(primary, 1);
  util::FaultInjector::instance().arm(util::FaultPoint::StorageAppend,
                                      util::FaultAction::TornWrite,
                                      /*skip=*/0, /*byte=*/10);
  EXPECT_FALSE(primary.save_state_delta(state_path, policy, &status));
  EXPECT_GE(util::FaultInjector::instance().triggered(
                util::FaultPoint::StorageAppend),
            1u);
  util::FaultInjector::instance().reset();

  // The tracker went cold: the next save is a full compaction, after
  // which a fresh load sees everything with no chain at all.
  ASSERT_TRUE(primary.save_state_delta(state_path, policy, &status))
      << status.detail;
  EXPECT_FALSE(std::filesystem::exists(chain_path));
  storage::ChainLoadReport report;
  api::Detector resumed = make_detector();
  ASSERT_TRUE(resumed.load_state(state_path, &report, &status));
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.frames_applied, 0u);
  EXPECT_EQ(resumed.days_operated(), 2u);
}

}  // namespace
}  // namespace eid
