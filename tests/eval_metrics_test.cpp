#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <memory>

namespace eid::eval {
namespace {

TEST(DetectionCountsTest, RatesMatchDefinitions) {
  DetectionCounts counts;
  counts.tp = 59;
  counts.fp = 1;
  counts.fn = 4;
  EXPECT_NEAR(counts.tdr(), 59.0 / 60.0, 1e-12);
  EXPECT_NEAR(counts.fdr(), 1.0 / 60.0, 1e-12);
  EXPECT_NEAR(counts.fnr(), 4.0 / 63.0, 1e-12);
}

TEST(DetectionCountsTest, EmptyIsZero) {
  const DetectionCounts counts;
  EXPECT_DOUBLE_EQ(counts.tdr(), 0.0);
  EXPECT_DOUBLE_EQ(counts.fdr(), 0.0);
  EXPECT_DOUBLE_EQ(counts.fnr(), 0.0);
}

TEST(DetectionCountsTest, Accumulation) {
  DetectionCounts a;
  a.tp = 1;
  a.fp = 2;
  a.fn = 3;
  DetectionCounts b;
  b.tp = 10;
  b.fp = 20;
  b.fn = 30;
  a += b;
  EXPECT_EQ(a.tp, 11u);
  EXPECT_EQ(a.fp, 22u);
  EXPECT_EQ(a.fn, 33u);
}

TEST(ScoreDetectionsTest, CountsCorrectly) {
  const std::vector<std::string> detected = {"a.com", "b.com", "x.com"};
  const std::vector<std::string> answers = {"a.com", "b.com", "c.com"};
  const DetectionCounts counts = score_detections(detected, answers);
  EXPECT_EQ(counts.tp, 2u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);
}

TEST(ScoreDetectionsTest, DuplicateDetectionsCountOnce) {
  const std::vector<std::string> detected = {"a.com", "a.com", "a.com"};
  const std::vector<std::string> answers = {"a.com"};
  const DetectionCounts counts = score_detections(detected, answers);
  EXPECT_EQ(counts.tp, 1u);
  EXPECT_EQ(counts.fp, 0u);
  EXPECT_EQ(counts.fn, 0u);
}

TEST(ScoreDetectionsTest, EmptySets) {
  EXPECT_EQ(score_detections({}, {}).detected(), 0u);
  const DetectionCounts miss = score_detections({}, {"a.com"});
  EXPECT_EQ(miss.fn, 1u);
  const DetectionCounts noise = score_detections({"x.com"}, {});
  EXPECT_EQ(noise.fp, 1u);
}

class OracleFixture : public ::testing::Test {
 protected:
  OracleFixture() {
    truth_.set_label("known-bad.com", sim::TruthLabel::Malicious, 0);
    truth_.set_label("unknown-bad.com", sim::TruthLabel::Malicious, 0);
    truth_.set_label("adware.com", sim::TruthLabel::Grayware);
    // Force deterministic reporting: probability 1 => always reported.
    sim::IntelOracle::Params all;
    all.vt_malicious = 1.0;
    all.vt_grayware = 0.0;
    all.ioc_given_vt = 0.0;
    oracle_all_ = std::make_unique<sim::IntelOracle>(truth_, all);
    sim::IntelOracle::Params none;
    none.vt_malicious = 0.0;
    none.vt_grayware = 0.0;
    oracle_none_ = std::make_unique<sim::IntelOracle>(truth_, none);
  }

  sim::GroundTruth truth_;
  std::unique_ptr<sim::IntelOracle> oracle_all_;
  std::unique_ptr<sim::IntelOracle> oracle_none_;
};

TEST_F(OracleFixture, ClassificationCategories) {
  EXPECT_EQ(classify_detection("known-bad.com", *oracle_all_),
            ValidationCategory::KnownMalicious);
  EXPECT_EQ(classify_detection("unknown-bad.com", *oracle_none_),
            ValidationCategory::NewMalicious);
  EXPECT_EQ(classify_detection("adware.com", *oracle_all_),
            ValidationCategory::Suspicious);
  EXPECT_EQ(classify_detection("fine.com", *oracle_all_),
            ValidationCategory::Legitimate);
}

TEST_F(OracleFixture, ValidationCountsAndRates) {
  const std::vector<std::string> detected = {"known-bad.com", "unknown-bad.com",
                                             "adware.com", "fine.com"};
  // With the "none" oracle both malicious domains count as new discoveries.
  const ValidationCounts counts = validate_detections(detected, *oracle_none_);
  EXPECT_EQ(counts.known_malicious, 0u);
  EXPECT_EQ(counts.new_malicious, 2u);
  EXPECT_EQ(counts.suspicious, 1u);
  EXPECT_EQ(counts.legitimate, 1u);
  EXPECT_EQ(counts.total(), 4u);
  EXPECT_NEAR(counts.tdr(), 0.75, 1e-12);
  EXPECT_NEAR(counts.fdr(), 0.25, 1e-12);
  EXPECT_NEAR(counts.ndr(), 0.75, 1e-12);
}

TEST_F(OracleFixture, CategoryNames) {
  EXPECT_STREQ(validation_category_name(ValidationCategory::KnownMalicious),
               "VirusTotal and SOC");
  EXPECT_STREQ(validation_category_name(ValidationCategory::NewMalicious),
               "New malicious");
}

}  // namespace
}  // namespace eid::eval
