// Runner-level behavior of the two evaluation harnesses (beyond the
// end-to-end checks in integration_test.cpp).
#include <gtest/gtest.h>

#include "eval/ac_runner.h"
#include "eval/lanl_runner.h"

namespace eid::eval {
namespace {

sim::LanlConfig tiny_lanl() {
  sim::LanlConfig config;
  config.n_hosts = 100;
  config.n_servers = 3;
  config.n_popular = 50;
  config.tail_per_day = 20;
  config.automated_tail_per_day = 2;
  config.server_tail_per_day = 10;
  return config;
}

TEST(LanlRunnerTest, ChallengeAggregatesMatchDays) {
  sim::LanlScenario scenario(tiny_lanl());
  LanlRunner runner(scenario);
  const LanlChallengeResult result = runner.run_challenge();
  ASSERT_EQ(result.days.size(), 20u);

  DetectionCounts recomputed;
  DetectionCounts recomputed_training;
  for (const auto& day : result.days) {
    recomputed += day.counts;
    if (day.challenge.training) recomputed_training += day.counts;
  }
  EXPECT_EQ(result.total.tp, recomputed.tp);
  EXPECT_EQ(result.total.fp, recomputed.fp);
  EXPECT_EQ(result.total.fn, recomputed.fn);
  EXPECT_EQ(result.training_total.tp, recomputed_training.tp);
  EXPECT_EQ(result.training_total.tp + result.testing_total.tp, result.total.tp);

  DetectionCounts per_case_sum;
  for (int case_id = 1; case_id <= 4; ++case_id) {
    per_case_sum += result.per_case_training[case_id];
    per_case_sum += result.per_case_testing[case_id];
  }
  EXPECT_EQ(per_case_sum.tp, result.total.tp);
  EXPECT_EQ(per_case_sum.fn, result.total.fn);
}

TEST(LanlRunnerTest, HistoryGrowsAcrossChallenge) {
  sim::LanlScenario scenario(tiny_lanl());
  LanlRunner runner(scenario);
  runner.bootstrap();
  const std::size_t after_bootstrap = runner.history().size();
  EXPECT_GT(after_bootstrap, 100u);
  runner.finish_day(scenario.challenge_begin());
  EXPECT_GT(runner.history().size(), after_bootstrap);
}

TEST(LanlRunnerTest, TraceCoversEveryDetectedDomain) {
  sim::LanlScenario scenario(tiny_lanl());
  LanlRunner runner(scenario);
  runner.bootstrap();
  const auto& challenge = scenario.cases().front();
  for (util::Day day = scenario.challenge_begin(); day < challenge.day; ++day) {
    runner.finish_day(day);
  }
  const core::DayAnalysis analysis = runner.analyze_day(challenge.day);
  const LanlDayResult result = runner.run_case(challenge, analysis);
  EXPECT_EQ(result.trace.size(), result.detected_domains.size());
}

sim::AcConfig tiny_ac() {
  sim::AcConfig config;
  config.n_hosts = 100;
  config.n_popular = 50;
  config.tail_per_day = 20;
  config.automated_tail_per_day = 2;
  config.grayware_per_day = 1;
  config.campaigns_per_week = 5.0;
  return config;
}

TEST(AcRunnerTest, OperationCoversEveryFebruaryDay) {
  sim::AcScenario scenario(tiny_ac());
  AcRunnerConfig config;
  config.training_days = 7;
  AcRunner runner(scenario, config);
  runner.train();
  std::vector<util::Day> seen;
  runner.run_operation([&](util::Day day, const core::DayAnalysis& analysis) {
    seen.push_back(day);
    EXPECT_GT(analysis.graph.host_count(), 0u);
  });
  ASSERT_EQ(seen.size(), 28u);  // February 2014
  EXPECT_EQ(seen.front(), scenario.operation_begin());
  EXPECT_EQ(seen.back(), scenario.operation_end());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], seen[i - 1] + 1);
  }
}

TEST(AcRunnerTest, MonthReportCategoriesAreConsistent) {
  sim::AcScenario scenario(tiny_ac());
  AcRunnerConfig config;
  config.training_days = 7;
  AcRunner runner(scenario, config);
  runner.train();
  const AcRunner::MonthReport report = runner.run_month(0.4, 0.33, 0.33);
  EXPECT_EQ(report.cc.total(), report.cc_domains.size());
  EXPECT_EQ(report.nohint.total(), report.nohint_domains.size());
  EXPECT_EQ(report.sochints.total(), report.sochints_domains.size());
  // The no-hint detections include every C&C detection by construction.
  EXPECT_GE(report.nohint.total(), report.cc.total());
  // Seed IOCs never appear among SOC-hints detections.
  const auto seeds = scenario.ioc_seeds();
  for (const auto& name : report.sochints_domains) {
    EXPECT_EQ(std::find(seeds.begin(), seeds.end(), name), seeds.end()) << name;
  }
  EXPECT_GT(report.automated_domains, 0u);
}

TEST(AcRunnerTest, StricterCcThresholdDetectsSubset) {
  sim::AcScenario scenario(tiny_ac());
  AcRunnerConfig config;
  config.training_days = 7;
  AcRunner runner(scenario, config);
  runner.train();
  std::size_t loose = 0;
  std::size_t strict = 0;
  int days = 0;
  runner.run_operation([&](util::Day, const core::DayAnalysis& analysis) {
    if (++days > 7) return;
    loose += runner.pipeline().detect_cc(analysis, 0.3).size();
    strict += runner.pipeline().detect_cc(analysis, 0.6).size();
  });
  EXPECT_GE(loose, strict);
}

}  // namespace
}  // namespace eid::eval
