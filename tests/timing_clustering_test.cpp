#include "timing/clustering.h"

#include <gtest/gtest.h>

namespace eid::timing {
namespace {

TEST(IntervalsTest, SuccessiveDifferences) {
  const std::vector<util::TimePoint> ts = {100, 160, 220, 400};
  const auto intervals = inter_connection_intervals(ts);
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0], 60.0);
  EXPECT_EQ(intervals[1], 60.0);
  EXPECT_EQ(intervals[2], 180.0);
}

TEST(IntervalsTest, FewerThanTwoTimestamps) {
  EXPECT_TRUE(inter_connection_intervals({}).empty());
  const std::vector<util::TimePoint> one = {42};
  EXPECT_TRUE(inter_connection_intervals(one).empty());
}

TEST(ClusteringTest, FirstIntervalSeedsFirstHub) {
  const std::vector<double> intervals = {100.0};
  const Histogram h = cluster_intervals(intervals, 10.0);
  ASSERT_EQ(h.bins.size(), 1u);
  EXPECT_EQ(h.bins[0].hub, 100.0);
  EXPECT_EQ(h.bins[0].count, 1u);
}

TEST(ClusteringTest, NearbyIntervalsJoinTheHub) {
  const std::vector<double> intervals = {100.0, 105.0, 95.0, 109.9};
  const Histogram h = cluster_intervals(intervals, 10.0);
  ASSERT_EQ(h.bins.size(), 1u);
  EXPECT_EQ(h.bins[0].count, 4u);
}

TEST(ClusteringTest, FarIntervalsOpenNewClusters) {
  const std::vector<double> intervals = {100.0, 300.0, 100.0, 305.0};
  const Histogram h = cluster_intervals(intervals, 10.0);
  ASSERT_EQ(h.bins.size(), 2u);
  EXPECT_EQ(h.bins[0].hub, 100.0);
  EXPECT_EQ(h.bins[0].count, 2u);
  EXPECT_EQ(h.bins[1].hub, 300.0);
  EXPECT_EQ(h.bins[1].count, 2u);
}

TEST(ClusteringTest, IntervalJoinsNearestEligibleHub) {
  // 104 is within W of both 100 and 110; it must join the nearer one (100
  // is 4 away, 110 is 6 away... wait: |104-100|=4, |104-110|=6 -> joins 100).
  const std::vector<double> intervals = {100.0, 110.5, 104.0};
  const Histogram h = cluster_intervals(intervals, 10.0);
  // 110.5 is 10.5 > W from 100 so it opened its own cluster.
  ASSERT_EQ(h.bins.size(), 2u);
  EXPECT_EQ(h.bins[0].count, 2u);  // 100 and 104
  EXPECT_EQ(h.bins[1].count, 1u);
}

TEST(ClusteringTest, TotalCountConservation) {
  // Property: clustering never loses or duplicates intervals.
  std::vector<double> intervals;
  for (int i = 0; i < 500; ++i) {
    intervals.push_back(50.0 + (i * 37) % 400);
  }
  for (const double width : {1.0, 5.0, 10.0, 20.0, 100.0}) {
    const Histogram h = cluster_intervals(intervals, width);
    EXPECT_EQ(h.total_count(), intervals.size()) << "W=" << width;
  }
}

TEST(ClusteringTest, WiderBinsNeverIncreaseClusterCount) {
  std::vector<double> intervals;
  for (int i = 0; i < 200; ++i) {
    intervals.push_back(100.0 + (i * 7919) % 300);
  }
  std::size_t previous = intervals.size() + 1;
  for (const double width : {0.5, 2.0, 8.0, 32.0, 128.0, 512.0}) {
    const Histogram h = cluster_intervals(intervals, width);
    EXPECT_LE(h.bins.size(), previous) << "W=" << width;
    previous = h.bins.size();
  }
}

TEST(StaticBinsTest, AnchoredAtZero) {
  const std::vector<double> intervals = {5.0, 14.9, 15.1, 25.0};
  const Histogram h = static_bins(intervals, 10.0);
  // Bins [0,10) [10,20) [20,30): counts 1, 2, 1.
  ASSERT_EQ(h.bins.size(), 3u);
  EXPECT_EQ(h.bins[0].count, 1u);
  EXPECT_EQ(h.bins[1].count, 2u);
  EXPECT_EQ(h.bins[2].count, 1u);
}

TEST(StaticBinsTest, AlignmentArtifactTheDynamicMethodAvoids) {
  // Values straddling a static bin edge split into two bins even though
  // they are within W of each other — the failure §IV-C calls out.
  const std::vector<double> intervals = {99.0, 101.0, 99.5, 100.5};
  const Histogram static_h = static_bins(intervals, 10.0);
  EXPECT_EQ(static_h.bins.size(), 2u);
  const Histogram dynamic_h = cluster_intervals(intervals, 10.0);
  EXPECT_EQ(dynamic_h.bins.size(), 1u);
}

}  // namespace
}  // namespace eid::timing
