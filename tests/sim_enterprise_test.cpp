#include "sim/enterprise.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "logs/folding.h"
#include "sim/names.h"

namespace eid::sim {
namespace {

SimConfig small_proxy_config() {
  SimConfig config;
  config.flavor = Flavor::Proxy;
  config.seed = 3;
  config.day0 = util::make_day(2014, 1, 1);
  config.n_hosts = 60;
  config.n_popular = 40;
  config.tail_per_day = 20;
  config.automated_tail_per_day = 3;
  config.grayware_per_day = 2;
  config.sessions_per_host = 3.0;
  return config;
}

SimConfig small_dns_config() {
  SimConfig config = small_proxy_config();
  config.flavor = Flavor::Dns;
  config.n_servers = 4;
  config.server_tail_per_day = 20;
  return config;
}

CampaignSpec basic_campaign(util::Day day) {
  CampaignSpec spec;
  spec.id = 0;
  spec.start_day = day;
  spec.duration_days = 3;
  spec.n_victims = 2;
  spec.delivery_chain = 3;
  spec.n_cc = 1;
  spec.second_stage = 1;
  spec.cc_period_seconds = 600;
  spec.jitter_seconds = 2.0;
  return spec;
}

TEST(EnterpriseSimTest, DeterministicAcrossInstances) {
  const auto config = small_proxy_config();
  EnterpriseSimulator a(config, {basic_campaign(config.day0 + 1)});
  EnterpriseSimulator b(config, {basic_campaign(config.day0 + 1)});
  const DayLogs logs_a = a.simulate_day(config.day0 + 1);
  const DayLogs logs_b = b.simulate_day(config.day0 + 1);
  ASSERT_EQ(logs_a.proxy.size(), logs_b.proxy.size());
  for (std::size_t i = 0; i < logs_a.proxy.size(); ++i) {
    EXPECT_EQ(logs_a.proxy[i].ts, logs_b.proxy[i].ts);
    EXPECT_EQ(logs_a.proxy[i].domain, logs_b.proxy[i].domain);
    EXPECT_EQ(logs_a.proxy[i].src_ip, logs_b.proxy[i].src_ip);
  }
}

TEST(EnterpriseSimTest, ProxyFlavorFillsHttpContext) {
  const auto config = small_proxy_config();
  EnterpriseSimulator sim(config, {});
  const DayLogs logs = sim.simulate_day(config.day0);
  ASSERT_FALSE(logs.proxy.empty());
  EXPECT_TRUE(logs.dns.empty());
  std::size_t with_ua = 0;
  std::size_t with_ref = 0;
  for (const auto& rec : logs.proxy) {
    EXPECT_FALSE(rec.domain.empty());
    EXPECT_FALSE(rec.collector.empty());
    if (!rec.user_agent.empty()) ++with_ua;
    if (!rec.referer.empty()) ++with_ref;
  }
  EXPECT_GT(with_ua, logs.proxy.size() / 2);
  EXPECT_GT(with_ref, logs.proxy.size() / 4);
}

TEST(EnterpriseSimTest, DnsFlavorHasNoiseRecordTypes) {
  const auto config = small_dns_config();
  EnterpriseSimulator sim(config, {});
  const DayLogs logs = sim.simulate_day(config.day0);
  ASSERT_FALSE(logs.dns.empty());
  EXPECT_TRUE(logs.proxy.empty());
  std::size_t non_a = 0;
  for (const auto& rec : logs.dns) {
    if (rec.type != logs::DnsType::A) ++non_a;
  }
  EXPECT_GT(non_a, 0u);
  EXPECT_LT(non_a, logs.dns.size());
}

TEST(EnterpriseSimTest, LogsSortedByTimestamp) {
  const auto config = small_proxy_config();
  EnterpriseSimulator sim(config, {basic_campaign(config.day0)});
  const DayLogs logs = sim.simulate_day(config.day0);
  for (std::size_t i = 1; i < logs.proxy.size(); ++i) {
    EXPECT_LE(logs.proxy[i - 1].ts, logs.proxy[i].ts);
  }
}

TEST(EnterpriseSimTest, DhcpLeasesResolveProxySources) {
  const auto config = small_proxy_config();
  EnterpriseSimulator sim(config, {});
  const util::Day day = config.day0;
  (void)sim.simulate_day(day);
  logs::ProxyReductionStats stats;
  const auto events = sim.reduced_day(day, nullptr, &stats);
  ASSERT_FALSE(events.empty());
  // Most sources resolve via DHCP or prefilled hostnames; hostnames must be
  // stable identifiers, not raw pool addresses.
  EXPECT_GT(stats.resolved_sources, stats.unresolved_sources);
  std::size_t corp_hosts = 0;
  for (const auto& event : events) {
    if (event.host.ends_with(".corp")) ++corp_hosts;
  }
  EXPECT_EQ(corp_hosts, events.size());
}

TEST(EnterpriseSimTest, CampaignEmitsDeliveryAndBeacons) {
  const auto config = small_proxy_config();
  const CampaignSpec spec = basic_campaign(config.day0 + 1);
  EnterpriseSimulator sim(config, {spec});
  const CampaignTruth* truth = sim.truth().campaign(0);
  ASSERT_NE(truth, nullptr);
  EXPECT_EQ(truth->victims.size(), 2u);
  EXPECT_EQ(truth->domains.size(), 5u);  // 3 delivery + 1 cc + 1 second-stage
  ASSERT_EQ(truth->cc_domains.size(), 1u);

  const DayLogs logs = sim.simulate_day(config.day0 + 1);
  std::size_t cc_requests = 0;
  std::unordered_set<std::string> delivery_seen;
  for (const auto& rec : logs.proxy) {
    if (rec.domain == truth->cc_domains[0]) ++cc_requests;
    for (const auto& dom : truth->domains) {
      if (rec.domain == dom) delivery_seen.insert(dom);
    }
  }
  // Beacons every 600 s for most of a work day: dozens of requests.
  EXPECT_GT(cc_requests, 20u);
  // All delivery domains and the C&C are contacted on day one.
  EXPECT_GE(delivery_seen.size(), 4u);
}

TEST(EnterpriseSimTest, BeaconsContinueOnLaterDays) {
  const auto config = small_proxy_config();
  const CampaignSpec spec = basic_campaign(config.day0 + 1);
  EnterpriseSimulator sim(config, {spec});
  const CampaignTruth* truth = sim.truth().campaign(0);
  ASSERT_NE(truth, nullptr);
  (void)sim.simulate_day(config.day0 + 1);
  const DayLogs day2 = sim.simulate_day(config.day0 + 2);
  std::size_t cc_requests = 0;
  for (const auto& rec : day2.proxy) {
    if (rec.domain == truth->cc_domains[0]) ++cc_requests;
  }
  EXPECT_GT(cc_requests, 50u);  // full-day beaconing at 600 s
  // Outside the campaign window: silence.
  const DayLogs after = sim.simulate_day(config.day0 + 10);
  for (const auto& rec : after.proxy) {
    EXPECT_NE(rec.domain, truth->cc_domains[0]);
  }
}

TEST(EnterpriseSimTest, CampaignDomainsShareSubnets) {
  const auto config = small_proxy_config();
  EnterpriseSimulator sim(config, {basic_campaign(config.day0)});
  const DayLogs logs = sim.simulate_day(config.day0);
  std::unordered_map<std::string, util::Ipv4> ips;
  for (const auto& rec : logs.proxy) {
    if (sim.truth().is_malicious(rec.domain) && rec.dest_ip) {
      ips[rec.domain] = *rec.dest_ip;
    }
  }
  ASSERT_GE(ips.size(), 2u);
  // Every pair of campaign domains shares at least a /16.
  for (const auto& [d1, ip1] : ips) {
    for (const auto& [d2, ip2] : ips) {
      EXPECT_TRUE(util::same_subnet16(ip1, ip2)) << d1 << " vs " << d2;
    }
  }
}

TEST(EnterpriseSimTest, CampaignDomainsAreYoungOrUnregistered) {
  const auto config = small_proxy_config();
  const CampaignSpec spec = basic_campaign(config.day0 + 5);
  EnterpriseSimulator sim(config, {spec});
  const CampaignTruth* truth = sim.truth().campaign(0);
  ASSERT_NE(truth, nullptr);
  for (const auto& domain : truth->domains) {
    const auto info = sim.whois().lookup(domain);
    if (!info) continue;  // unregistered or unparseable: fine
    EXPECT_GE(info->registered, spec.start_day - 30);
  }
}

TEST(EnterpriseSimTest, GraywareLabeledInTruth) {
  const auto config = small_proxy_config();
  EnterpriseSimulator sim(config, {});
  (void)sim.simulate_day(config.day0);
  std::size_t grayware = 0;
  const DayLogs logs = sim.simulate_day(config.day0 + 1);
  std::unordered_set<std::string> seen;
  for (const auto& rec : logs.proxy) {
    if (sim.truth().is_grayware(rec.domain) && seen.insert(rec.domain).second) {
      ++grayware;
    }
  }
  EXPECT_GE(grayware, 1u);
}

TEST(EnterpriseSimTest, WhoisCoversBenignTraffic) {
  const auto config = small_proxy_config();
  EnterpriseSimulator sim(config, {});
  const DayLogs logs = sim.simulate_day(config.day0);
  std::size_t registered = 0;
  std::size_t total = 0;
  std::unordered_set<std::string> seen;
  for (const auto& rec : logs.proxy) {
    const std::string folded = logs::fold_domain(rec.domain);
    if (!seen.insert(folded).second) continue;
    ++total;
    if (sim.whois().is_registered(folded)) ++registered;
  }
  EXPECT_GT(registered, total * 9 / 10);
}

TEST(NamesTest, GeneratorsProduceExpectedShapes) {
  util::Rng rng(1);
  const std::string short_dga = short_dga_domain(rng);
  EXPECT_TRUE(short_dga.ends_with(".info"));
  EXPECT_GE(short_dga.size(), 4u + 5u);
  EXPECT_LE(short_dga.size(), 5u + 5u);
  const std::string long_dga = long_dga_domain(rng);
  EXPECT_TRUE(long_dga.ends_with(".info"));
  EXPECT_EQ(long_dga.size(), 20u + 5u);
  EXPECT_TRUE(ru_cc_domain(rng).ends_with(".ru"));
  EXPECT_EQ(workstation_name(7), "ws-00007.corp");
  const std::string host = lanl_host_name(rng);
  EXPECT_TRUE(util::parse_ipv4(host).has_value());
  EXPECT_TRUE(browser_ua(rng).starts_with("Mozilla/5.0"));
}

}  // namespace
}  // namespace eid::sim
