// Hot-standby contract (rt/standby.h): a replica tailing the primary's
// delta chain converges to the primary's exact detector state — frame by
// frame, across compactions, through torn tails — so its post-takeover
// day reports are bit-identical to the ones the primary would have
// produced. Plus the heartbeat beacon the takeover decision reads.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/detector.h"
#include "api/event_source.h"
#include "core/incidents.h"
#include "core/report_json.h"
#include "profile/top_sites.h"
#include "rt/standby.h"
#include "sim/ac.h"
#include "storage/delta.h"
#include "storage/state.h"

namespace eid {
namespace {

sim::AcConfig small_world() {
  sim::AcConfig config;
  config.seed = 37;
  config.n_hosts = 60;
  config.n_popular = 30;
  config.tail_per_day = 15;
  config.automated_tail_per_day = 2;
  config.grayware_per_day = 1;
  config.campaigns_per_week = 2.0;
  return config;
}

class StandbyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-standby-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    state_path_ = dir_ / "state.bin";

    scenario_ = std::make_unique<sim::AcScenario>(small_world());
    const util::Day jan = scenario_->training_begin();
    for (int d = 0; d < kBootstrapDays + kLabeledDays; ++d) {
      training_.emplace_back(jan + d,
                             scenario_->simulator().reduced_day(jan + d));
    }
    const util::Day feb = scenario_->operation_begin();
    for (int d = 0; d < kOperationDays; ++d) {
      operation_.emplace_back(feb + d,
                              scenario_->simulator().reduced_day(feb + d));
    }
    seeds_.domains = scenario_->ioc_seeds();
    top_sites_.add("top-whitelisted.example");

    pretrain_ = dir_ / "pretrain.bin";
    api::Detector trained = make_detector();
    train(trained);
    storage::LoadStatus status;
    ASSERT_TRUE(trained.save_state(pretrain_, &status)) << status.detail;

    api::Detector baseline = make_pretrained();
    for (int d = 0; d < kOperationDays; ++d) {
      baseline_.push_back(
          core::day_report_to_json(run_operation_day(baseline, d)));
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static constexpr int kBootstrapDays = 4;
  static constexpr int kLabeledDays = 6;
  static constexpr int kOperationDays = 4;

  api::Detector make_detector() {
    core::PipelineConfig config;
    api::Detector detector(config, scenario_->simulator().whois());
    detector.set_top_sites(&top_sites_);
    return detector;
  }

  void train(api::Detector& detector) {
    const sim::IntelOracle& oracle = scenario_->oracle();
    const core::LabelFn intel = [&oracle](const std::string& domain) {
      return oracle.vt_reported(domain);
    };
    for (int d = 0; d < kBootstrapDays; ++d) {
      api::VectorSource source(training_[d].first, &training_[d].second);
      detector.ingest(source);
    }
    for (int d = kBootstrapDays; d < kBootstrapDays + kLabeledDays; ++d) {
      api::VectorSource source(training_[d].first, &training_[d].second);
      detector.ingest(source, intel);
    }
    detector.finalize_training();
    detector.set_intel_domains(seeds_.domains);
  }

  api::Detector make_pretrained() {
    api::Detector detector = make_detector();
    storage::LoadStatus status;
    EXPECT_TRUE(detector.load_state(pretrain_, &status)) << status.detail;
    return detector;
  }

  core::DayReport run_operation_day(api::Detector& detector, int index) {
    api::VectorSource source(operation_[index].first,
                             &operation_[index].second);
    return detector.run_day(source, operation_[index].first, seeds_);
  }

  std::filesystem::path dir_;
  std::filesystem::path state_path_;
  std::unique_ptr<sim::AcScenario> scenario_;
  std::filesystem::path pretrain_;
  std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> training_;
  std::vector<std::pair<util::Day, std::vector<logs::ConnEvent>>> operation_;
  std::vector<std::string> baseline_;
  core::SocSeeds seeds_;
  profile::TopSitesList top_sites_;
};

TEST_F(StandbyTest, ReplicaTracksFramesAndTakesOverBitIdentically) {
  api::Detector primary = make_pretrained();
  api::Detector warm = make_detector();
  rt::StandbyConfig config;
  config.state_path = state_path_;
  rt::StandbyReplica replica(warm, config);

  // Nothing on disk yet: start fails, poll keeps retrying.
  storage::LoadStatus status;
  EXPECT_FALSE(replica.start(&status));
  EXPECT_EQ(status.error, storage::LoadError::FileNotFound);
  EXPECT_EQ(replica.poll(), 0u);
  EXPECT_FALSE(replica.started());

  api::CheckpointPolicy policy;
  policy.full_every = 10;
  // Day 0: the primary's first checkpoint is the full base; the replica's
  // next poll attaches to it.
  run_operation_day(primary, 0);
  ASSERT_TRUE(primary.save_state_delta(state_path_, policy, &status));
  EXPECT_EQ(replica.poll(), 0u);
  EXPECT_TRUE(replica.started());
  EXPECT_EQ(replica.last_seq(), 0u);

  // Days 1..2: one frame per checkpoint, applied as it lands.
  for (int d = 1; d <= 2; ++d) {
    run_operation_day(primary, d);
    ASSERT_TRUE(primary.save_state_delta(state_path_, policy, &status));
    EXPECT_EQ(replica.poll(), 1u) << "day " << d;
    EXPECT_EQ(replica.last_seq(), static_cast<std::uint64_t>(d));
  }
  EXPECT_EQ(replica.stats().frames_applied, 2u);
  EXPECT_EQ(replica.stats().full_reloads, 0u);
  EXPECT_EQ(warm.days_operated(), 3u);
  EXPECT_TRUE(warm.pipeline().models_ready());

  // An idle poll applies nothing and reloads nothing.
  EXPECT_EQ(replica.poll(), 0u);
  EXPECT_EQ(replica.stats().full_reloads, 0u);

  // Primary dies; the warm replica owns day 3 — bit-identical to the
  // report the uninterrupted primary would have produced.
  EXPECT_EQ(core::day_report_to_json(run_operation_day(warm, 3)),
            baseline_[3]);
}

TEST_F(StandbyTest, ReplicaSurvivesCompactionByReloadingTheNewBase) {
  api::Detector primary = make_pretrained();
  api::Detector warm = make_detector();
  rt::StandbyConfig config;
  config.state_path = state_path_;
  rt::StandbyReplica replica(warm, config);

  api::CheckpointPolicy policy;
  policy.full_every = 2;  // every second save rewrites the base
  storage::LoadStatus status;
  for (int d = 0; d < 3; ++d) {
    run_operation_day(primary, d);
    ASSERT_TRUE(primary.save_state_delta(state_path_, policy, &status));
    replica.poll();
  }
  // Saves 0 (full), 1 (frame), 2 (compaction): the chain shrank under the
  // replica at least once and it re-based.
  EXPECT_GE(replica.stats().full_reloads, 1u);
  EXPECT_EQ(warm.days_operated(), 3u);
  EXPECT_EQ(core::day_report_to_json(run_operation_day(warm, 3)),
            baseline_[3]);
}

TEST_F(StandbyTest, CursorAndIncidentsRideTheFramesToTheReplica) {
  api::Detector primary = make_pretrained();
  api::Detector warm = make_detector();
  rt::StandbyConfig config;
  config.state_path = state_path_;
  rt::StandbyReplica replica(warm, config);

  api::CheckpointPolicy policy;
  policy.full_every = 10;
  storage::LoadStatus status;
  run_operation_day(primary, 0);
  ASSERT_TRUE(primary.save_state_delta(state_path_, policy, &status));
  ASSERT_EQ(replica.poll(), 0u);
  EXPECT_FALSE(replica.has_cursor());

  core::IncidentStore incidents;
  const std::vector<std::string> domains = {"c2.example"};
  const std::vector<std::string> hosts = {"10.0.0.5", "10.0.0.8"};
  incidents.ingest_community(operation_[1].first, domains, hosts);

  run_operation_day(primary, 1);
  api::CheckpointExtras extras;
  extras.has_cursor = true;
  extras.cursor_day = operation_[1].first;
  extras.cursor_offset = 7777;
  extras.incidents = &incidents;
  ASSERT_TRUE(
      primary.save_state_delta(state_path_, policy, &status, extras));
  ASSERT_EQ(replica.poll(), 1u);

  EXPECT_TRUE(replica.has_cursor());
  EXPECT_EQ(replica.cursor_day(), operation_[1].first);
  EXPECT_EQ(replica.cursor_offset(), 7777u);
  core::IncidentStore adopted;
  ASSERT_TRUE(replica.take_incidents(adopted));
  EXPECT_EQ(adopted.size(), incidents.size());
  EXPECT_EQ(adopted.next_id(), incidents.next_id());
  const std::vector<core::Incident> got = adopted.incidents();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].domains.count("c2.example"), 1u);
  EXPECT_EQ(got[0].hosts.count("10.0.0.5"), 1u);

  // The failover payload survives a compaction reload: the fresh chain is
  // empty but the latest known cursor/incidents stay adopted.
  api::CheckpointPolicy compact_now;
  compact_now.full_every = 2;
  run_operation_day(primary, 2);
  ASSERT_TRUE(primary.save_state_delta(state_path_, compact_now, &status));
  replica.poll();
  EXPECT_TRUE(replica.has_cursor());
  EXPECT_EQ(replica.cursor_day(), operation_[1].first);
  core::IncidentStore still_there;
  EXPECT_TRUE(replica.take_incidents(still_there));
  EXPECT_EQ(still_there.size(), incidents.size());
}

TEST_F(StandbyTest, TornTailMeansWaitNotReload) {
  api::Detector primary = make_pretrained();
  api::Detector warm = make_detector();
  rt::StandbyConfig config;
  config.state_path = state_path_;
  rt::StandbyReplica replica(warm, config);

  api::CheckpointPolicy policy;
  policy.full_every = 10;
  storage::LoadStatus status;
  run_operation_day(primary, 0);
  ASSERT_TRUE(primary.save_state_delta(state_path_, policy, &status));
  run_operation_day(primary, 1);
  ASSERT_TRUE(primary.save_state_delta(state_path_, policy, &status));
  // The first poll attaches via start(), which absorbs the base plus the
  // existing frame in one chain load (not counted in the return value).
  ASSERT_EQ(replica.poll(), 0u);
  ASSERT_TRUE(replica.started());
  ASSERT_EQ(replica.last_seq(), 1u);

  // An append in progress: the replica waits instead of re-basing.
  const auto chain_path = storage::delta_chain_path(state_path_);
  {
    std::ofstream out(chain_path, std::ios::binary | std::ios::app);
    out.write("EIDDELT1\x00\x01\x00\x00partial", 19);
  }
  EXPECT_EQ(replica.poll(), 0u);
  EXPECT_GE(replica.stats().torn_waits, 1u);
  EXPECT_EQ(replica.stats().full_reloads, 0u);

  // The primary's next append truncates the garbage and lands a real
  // frame; the replica applies it without ever reloading.
  run_operation_day(primary, 2);
  ASSERT_TRUE(primary.save_state_delta(state_path_, policy, &status));
  EXPECT_EQ(replica.poll(), 1u);
  EXPECT_EQ(replica.stats().full_reloads, 0u);
  EXPECT_EQ(warm.days_operated(), 3u);
}

TEST_F(StandbyTest, HeartbeatBeacon) {
  const auto hb = rt::heartbeat_path(state_path_);
  EXPECT_EQ(hb, state_path_.string() + ".hb");

  // Missing beacon: infinitely stale — a standby never takes over from a
  // primary that has not started (it has no state to take over anyway).
  EXPECT_TRUE(std::isinf(rt::heartbeat_age_seconds(hb)));

  ASSERT_TRUE(rt::touch_heartbeat(hb));
  const double age = rt::heartbeat_age_seconds(hb);
  EXPECT_GE(age, 0.0);
  EXPECT_LT(age, 60.0);  // just touched (loose: CI clocks can be coarse)

  // Touch refreshes the mtime even with unchanged content.
  ASSERT_TRUE(rt::touch_heartbeat(hb));
  EXPECT_GE(rt::heartbeat_age_seconds(hb), 0.0);
}

}  // namespace
}  // namespace eid
