#include "profile/top_sites.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/pipeline.h"
#include "test_helpers.h"

namespace eid::profile {
namespace {

TEST(TopSitesTest, AddAndContains) {
  TopSitesList list;
  list.add("Google.COM ");
  EXPECT_TRUE(list.contains("google.com"));
  EXPECT_FALSE(list.contains("evil.com"));
  EXPECT_EQ(list.size(), 1u);
}

TEST(TopSitesTest, LoadPlainAndAlexaCsvShapes) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("eid-topsites-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto path = dir / "top.csv";
  {
    std::ofstream out(path);
    out << "# top sites snapshot\n";
    out << "1,google.com\n";
    out << "2,youtube.com\n";
    out << "plainsite.net\n";
    out << "\n";
  }
  TopSitesList list;
  EXPECT_EQ(list.load(path), 3u);
  EXPECT_TRUE(list.contains("google.com"));
  EXPECT_TRUE(list.contains("youtube.com"));
  EXPECT_TRUE(list.contains("plainsite.net"));
  std::filesystem::remove_all(dir);
}

TEST(TopSitesTest, LoadMissingFileReturnsZero) {
  TopSitesList list;
  EXPECT_EQ(list.load("/no/such/file.csv"), 0u);
}

TEST(TopSitesTest, FilterPreservesOrderOfSurvivors) {
  test::DayBuilder builder;
  builder.visit("h1", "keep1.com", 100);
  builder.visit("h1", "drop.com", 200);
  builder.visit("h1", "keep2.com", 300);
  const graph::DayGraph graph = builder.build();
  TopSitesList list;
  list.add("drop.com");
  const std::vector<graph::DomainId> rare = {
      graph.find_domain("keep1.com"), graph.find_domain("drop.com"),
      graph.find_domain("keep2.com")};
  const auto filtered = filter_top_sites(graph, rare, list);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(graph.domain_name(filtered[0]), "keep1.com");
  EXPECT_EQ(graph.domain_name(filtered[1]), "keep2.com");
}

TEST(TopSitesTest, PipelineExcludesWhitelistedRareDomains) {
  test::MapWhois whois;
  core::Pipeline pipeline(core::PipelineConfig{}, whois);
  test::DayBuilder builder;
  builder.visit("h1", "fresh-cdn.com", 1000);
  builder.visit("h1", "fresh-evil.ru", 1010);
  const auto events = builder.events();

  // Without the whitelist both fresh domains are rare.
  EXPECT_EQ(pipeline.analyze_day(events, 100).rare.size(), 2u);

  TopSitesList list;
  list.add("fresh-cdn.com");  // globally popular, new to this enterprise
  pipeline.set_top_sites(&list);
  const core::DayAnalysis filtered = pipeline.analyze_day(events, 100);
  ASSERT_EQ(filtered.rare.size(), 1u);
  EXPECT_TRUE(
      filtered.rare.contains(filtered.graph.find_domain("fresh-evil.ru")));

  pipeline.set_top_sites(nullptr);
  EXPECT_EQ(pipeline.analyze_day(events, 100).rare.size(), 2u);
}

}  // namespace
}  // namespace eid::profile
