#include "profile/domain_history.h"
#include "profile/ua_history.h"

#include <gtest/gtest.h>

namespace eid::profile {
namespace {

logs::ConnEvent http_event(std::string host, std::string domain, std::string ua) {
  logs::ConnEvent ev;
  ev.host = std::move(host);
  ev.domain = std::move(domain);
  ev.user_agent = std::move(ua);
  ev.has_http_context = true;
  return ev;
}

TEST(DomainHistoryTest, NewUntilUpdated) {
  DomainHistory history;
  EXPECT_TRUE(history.is_new("example.com"));
  history.update({"example.com"});
  EXPECT_FALSE(history.is_new("example.com"));
  EXPECT_TRUE(history.is_new("other.com"));
  EXPECT_EQ(history.days_ingested(), 1u);
}

TEST(DomainHistoryTest, IncrementalGrowth) {
  DomainHistory history;
  history.update({"a.com", "b.com"});
  history.update({"b.com", "c.com"});
  EXPECT_EQ(history.size(), 3u);
  EXPECT_FALSE(history.is_new("a.com"));
  EXPECT_FALSE(history.is_new("c.com"));
}

graph::DayGraph graph_with(
    const std::vector<std::pair<std::string, std::string>>& edges) {
  graph::DayGraph graph;
  util::TimePoint ts = 0;
  for (const auto& [host, domain] : edges) {
    logs::ConnEvent ev;
    ev.ts = ++ts;
    ev.host = host;
    ev.domain = domain;
    graph.add_event(ev);
  }
  graph.finalize();
  return graph;
}

TEST(RareExtractionTest, NewAndUnpopularOnly) {
  DomainHistory history;
  history.update({"known.com"});
  // new-popular.com is contacted by 10 hosts (threshold), so not rare.
  std::vector<std::pair<std::string, std::string>> edges;
  for (int i = 0; i < 10; ++i) {
    edges.emplace_back("h" + std::to_string(i), "new-popular.com");
  }
  edges.emplace_back("h0", "known.com");
  edges.emplace_back("h1", "rare1.com");
  edges.emplace_back("h1", "rare2.com");
  edges.emplace_back("h2", "rare2.com");
  const graph::DayGraph graph = graph_with(edges);
  const RareExtraction rare = extract_rare_destinations(graph, history, 10);
  EXPECT_EQ(rare.total_domains, 4u);
  EXPECT_EQ(rare.new_domains, 3u);  // new-popular, rare1, rare2
  ASSERT_EQ(rare.rare_domains.size(), 2u);
  std::vector<std::string> names;
  for (const auto id : rare.rare_domains) names.push_back(graph.domain_name(id));
  EXPECT_NE(std::find(names.begin(), names.end(), "rare1.com"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "rare2.com"), names.end());
}

TEST(RareExtractionTest, ThresholdIsStrict) {
  DomainHistory history;
  std::vector<std::pair<std::string, std::string>> edges;
  for (int i = 0; i < 9; ++i) edges.emplace_back("h" + std::to_string(i), "d.com");
  const graph::DayGraph graph = graph_with(edges);
  // 9 hosts < threshold 10 => rare; with threshold 9 => not rare.
  EXPECT_EQ(extract_rare_destinations(graph, history, 10).rare_domains.size(), 1u);
  EXPECT_EQ(extract_rare_destinations(graph, history, 9).rare_domains.size(), 0u);
}

TEST(RareExtractionTest, UpdateHistoryMakesTodayOld) {
  DomainHistory history;
  const graph::DayGraph graph = graph_with({{"h1", "fresh.com"}});
  EXPECT_EQ(extract_rare_destinations(graph, history).rare_domains.size(), 1u);
  update_history(history, graph);
  EXPECT_EQ(extract_rare_destinations(graph, history).rare_domains.size(), 0u);
}

TEST(UaHistoryTest, UnknownUaIsRare) {
  UaHistory history(3);
  EXPECT_TRUE(history.is_rare("NeverSeen/1.0"));
  EXPECT_EQ(history.host_count("NeverSeen/1.0"), 0u);
}

TEST(UaHistoryTest, BecomesPopularAtThreshold) {
  UaHistory history(3);
  history.observe("Common/1.0", "h1");
  EXPECT_TRUE(history.is_rare("Common/1.0"));
  history.observe("Common/1.0", "h2");
  EXPECT_TRUE(history.is_rare("Common/1.0"));
  history.observe("Common/1.0", "h3");
  EXPECT_FALSE(history.is_rare("Common/1.0"));
  EXPECT_EQ(history.host_count("Common/1.0"), 3u);
}

TEST(UaHistoryTest, RepeatObservationsFromSameHostDoNotCount) {
  UaHistory history(3);
  for (int i = 0; i < 10; ++i) history.observe("Solo/1.0", "h1");
  EXPECT_TRUE(history.is_rare("Solo/1.0"));
  EXPECT_EQ(history.host_count("Solo/1.0"), 1u);
}

TEST(UaHistoryTest, EmptyUaIgnored) {
  UaHistory history(3);
  history.observe("", "h1");
  EXPECT_EQ(history.distinct_uas(), 0u);
}

TEST(UaHistoryTest, ObserveDayIngestsHttpEventsOnly) {
  UaHistory history(2);
  std::vector<logs::ConnEvent> events = {
      http_event("h1", "a.com", "UA-x"),
      http_event("h2", "a.com", "UA-x"),
  };
  logs::ConnEvent dns_event;
  dns_event.host = "h3";
  dns_event.user_agent = "UA-x";  // bogus: DNS events carry no UA context
  dns_event.has_http_context = false;
  events.push_back(dns_event);
  history.observe_day(events);
  EXPECT_EQ(history.host_count("UA-x"), 2u);
  EXPECT_FALSE(history.is_rare("UA-x"));
}

TEST(UaHistoryTest, PopularStaysPopular) {
  UaHistory history(2);
  history.observe("UA", "h1");
  history.observe("UA", "h2");
  ASSERT_FALSE(history.is_rare("UA"));
  history.observe("UA", "h3");  // no-op path once popular
  EXPECT_FALSE(history.is_rare("UA"));
  EXPECT_EQ(history.host_count("UA"), 2u);  // saturated at threshold
}

}  // namespace
}  // namespace eid::profile
