#include "logs/files.h"

#include <gtest/gtest.h>

#include "logs/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace eid::logs {
namespace {

class FilesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("eid-files-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

DnsRecord dns(util::TimePoint ts, const std::string& src,
              const std::string& domain) {
  DnsRecord rec;
  rec.ts = ts;
  rec.src = src;
  rec.domain = domain;
  rec.response_ip = util::Ipv4::from_octets(1, 2, 3, 4);
  return rec;
}

TEST_F(FilesTest, DnsRoundTrip) {
  const std::vector<DnsRecord> records = {dns(1, "h1", "a.com"),
                                          dns(2, "h2", "b.com"),
                                          dns(3, "h3", "c.com")};
  const auto path = dir_ / "dns.tsv";
  ASSERT_TRUE(write_dns_file(path, records));
  FileReadStats stats;
  const auto loaded = read_dns_file(path, &stats);
  EXPECT_TRUE(stats.opened);
  EXPECT_EQ(stats.lines, 3u);
  EXPECT_EQ(stats.parsed, 3u);
  EXPECT_EQ(stats.malformed, 0u);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[1].src, "h2");
  EXPECT_EQ(loaded[1].domain, "b.com");
}

TEST_F(FilesTest, MalformedLinesSkippedAndCounted) {
  const auto path = dir_ / "mixed.tsv";
  {
    std::ofstream out(path);
    out << format_dns_line(dns(1, "h1", "good.com")) << "\n";
    out << "this is not a record\n";
    out << "\n";  // blank: ignored entirely
    out << format_dns_line(dns(2, "h2", "also-good.com")) << "\n";
  }
  FileReadStats stats;
  const auto loaded = read_dns_file(path, &stats);
  EXPECT_EQ(stats.lines, 3u);  // blanks not counted
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.malformed, 1u);
  ASSERT_EQ(loaded.size(), 2u);
}

TEST_F(FilesTest, MissingFileReportsNotOpened) {
  FileReadStats stats;
  const auto loaded = read_dns_file(dir_ / "nope.tsv", &stats);
  EXPECT_TRUE(loaded.empty());
  EXPECT_FALSE(stats.opened);
}

TEST_F(FilesTest, ProxyRoundTrip) {
  ProxyRecord rec;
  rec.ts = 99;
  rec.collector = "px-eu";
  rec.src_ip = "10.0.0.1";
  rec.domain = "example.com";
  rec.user_agent = "UA with spaces";
  rec.referer = "";
  const auto path = dir_ / "proxy.tsv";
  ASSERT_TRUE(write_proxy_file(path, {rec}));
  const auto loaded = read_proxy_file(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].collector, "px-eu");
  EXPECT_EQ(loaded[0].user_agent, "UA with spaces");
  EXPECT_TRUE(loaded[0].referer.empty());
}

TEST_F(FilesTest, DhcpRoundTripAndValidation) {
  const std::vector<DhcpLease> leases = {
      {"10.0.0.1", 100, 200, "ws-1.corp"},
      {"10.0.0.2", 150, 400, "ws-2.corp"},
  };
  const auto path = dir_ / "dhcp.tsv";
  ASSERT_TRUE(write_dhcp_file(path, leases));
  {
    std::ofstream out(path, std::ios::app);
    out << "10.0.0.3\t500\t400\tws-bad.corp\n";  // end < start: rejected
    out << "10.0.0.4\tx\t600\tws-bad2.corp\n";   // bad start: rejected
  }
  FileReadStats stats;
  const auto loaded = read_dhcp_file(path, &stats);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.malformed, 2u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].hostname, "ws-1.corp");
}

TEST_F(FilesTest, LargeFileRoundTrip) {
  std::vector<DnsRecord> records;
  for (int i = 0; i < 5000; ++i) {
    records.push_back(dns(i, "h" + std::to_string(i % 50),
                          "d" + std::to_string(i) + ".com"));
  }
  const auto path = dir_ / "large.tsv";
  ASSERT_TRUE(write_dns_file(path, records));
  const auto loaded = read_dns_file(path);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); i += 997) {
    EXPECT_EQ(loaded[i].domain, records[i].domain);
    EXPECT_EQ(loaded[i].ts, records[i].ts);
  }
}

}  // namespace
}  // namespace eid::logs
