#include "logs/reduction.h"

#include <gtest/gtest.h>

namespace eid::logs {
namespace {

DnsRecord dns(util::TimePoint ts, std::string src, std::string domain,
              DnsType type = DnsType::A) {
  DnsRecord rec;
  rec.ts = ts;
  rec.src = std::move(src);
  rec.domain = std::move(domain);
  rec.type = type;
  rec.response_ip = util::Ipv4::from_octets(1, 2, 3, 4);
  return rec;
}

TEST(DnsReductionTest, KeepsOnlyARecords) {
  std::vector<DnsRecord> records = {
      dns(10, "h1", "a.example.com"),
      dns(20, "h1", "a.example.com", DnsType::AAAA),
      dns(30, "h1", "a.example.com", DnsType::TXT),
  };
  DnsReductionStats stats;
  const auto events = reduce_dns(records, DnsReductionConfig{}, &stats);
  EXPECT_EQ(stats.total_records, 3u);
  EXPECT_EQ(stats.a_records, 1u);
  EXPECT_EQ(events.size(), 1u);
}

TEST(DnsReductionTest, FiltersInternalQueries) {
  DnsReductionConfig config;
  config.internal_suffixes = {"corp.internal"};
  config.fold_level = FoldLevel::ThirdLevel;
  std::vector<DnsRecord> records = {
      dns(10, "h1", "mail.corp.internal"),
      dns(20, "h1", "wiki.corp.internal"),
      dns(30, "h1", "www.example.com"),
  };
  DnsReductionStats stats;
  const auto events = reduce_dns(records, config, &stats);
  EXPECT_EQ(stats.after_internal_query_filter, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].domain, "www.example.com");
}

TEST(DnsReductionTest, FiltersInternalServers) {
  DnsReductionConfig config;
  config.internal_servers = {"dns-relay"};
  std::vector<DnsRecord> records = {
      dns(10, "dns-relay", "telemetry.example.com"),
      dns(20, "h1", "www.example.com"),
  };
  DnsReductionStats stats;
  const auto events = reduce_dns(records, config, &stats);
  EXPECT_EQ(stats.after_server_filter, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].host, "h1");
}

TEST(DnsReductionTest, CountsDistinctDomainsPerStage) {
  DnsReductionConfig config;
  config.internal_suffixes = {"corp.internal"};
  config.internal_servers = {"srv"};
  config.fold_level = FoldLevel::SecondLevel;
  std::vector<DnsRecord> records = {
      dns(10, "h1", "a.corp.internal"),   // internal
      dns(20, "h1", "one.com"),
      dns(30, "h2", "one.com"),           // same folded domain
      dns(40, "srv", "server-only.com"),  // server source
      dns(50, "h1", "two.com"),
  };
  DnsReductionStats stats;
  const auto events = reduce_dns(records, config, &stats);
  EXPECT_EQ(stats.domains_all, 4u);                   // internal + 3 external
  EXPECT_EQ(stats.domains_after_internal_filter, 3u); // one, server-only, two
  EXPECT_EQ(stats.domains_after_server_filter, 2u);   // one, two
  EXPECT_EQ(stats.hosts_after_server_filter, 2u);
  EXPECT_EQ(events.size(), 3u);
}

TEST(DnsReductionTest, FoldsDomains) {
  std::vector<DnsRecord> records = {dns(10, "h1", "deep.sub.example.com")};
  const auto events = reduce_dns(records, DnsReductionConfig{.fold_level =
                                                             FoldLevel::SecondLevel});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].domain, "example.com");
}

TEST(DnsReductionTest, OutputSortedByTime) {
  std::vector<DnsRecord> records = {
      dns(300, "h1", "b.com"), dns(100, "h2", "a.com"), dns(200, "h3", "c.com")};
  const auto events = reduce_dns(records, DnsReductionConfig{});
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LE(events[0].ts, events[1].ts);
  EXPECT_LE(events[1].ts, events[2].ts);
}

ProxyRecord proxy(util::TimePoint ts, std::string src_ip, std::string domain) {
  ProxyRecord rec;
  rec.ts = ts;
  rec.collector = "px-1";
  rec.src_ip = std::move(src_ip);
  rec.domain = std::move(domain);
  rec.dest_ip = util::Ipv4::from_octets(5, 6, 7, 8);
  rec.user_agent = "UA";
  rec.referer = "ref.example.com";
  return rec;
}

TEST(ProxyReductionTest, DropsIpLiteralDestinations) {
  DhcpTable leases;
  std::vector<ProxyRecord> records = {proxy(10, "10.0.0.1", "93.184.216.34"),
                                      proxy(20, "10.0.0.1", "example.com")};
  ProxyReductionStats stats;
  const auto events =
      reduce_proxy(records, leases, ProxyReductionConfig{}, &stats);
  EXPECT_EQ(stats.ip_literal_destinations, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].domain, "example.com");
}

TEST(ProxyReductionTest, NormalizesCollectorTimezones) {
  DhcpTable leases;
  ProxyReductionConfig config;
  config.collector_utc_offsets = {{"px-east", 3600}};
  ProxyRecord rec = proxy(10000, "10.0.0.1", "example.com");
  rec.collector = "px-east";
  const auto events = reduce_proxy({{rec}}, leases, config);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts, 10000 - 3600);
}

TEST(ProxyReductionTest, ResolvesDhcpSources) {
  DhcpTable leases;
  leases.add_lease({"10.0.0.1", 0, 100000, "ws-7.corp"});
  std::vector<ProxyRecord> records = {proxy(50, "10.0.0.1", "example.com")};
  ProxyReductionStats stats;
  const auto events =
      reduce_proxy(records, leases, ProxyReductionConfig{}, &stats);
  EXPECT_EQ(stats.resolved_sources, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].host, "ws-7.corp");
}

TEST(ProxyReductionTest, PrefilledHostnameWins) {
  DhcpTable leases;
  ProxyRecord rec = proxy(50, "10.0.0.1", "example.com");
  rec.hostname = "vpn-user-3.corp";
  const auto events = reduce_proxy({{rec}}, leases, ProxyReductionConfig{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].host, "vpn-user-3.corp");
}

TEST(ProxyReductionTest, UnresolvedSourceKeptOrDroppedPerConfig) {
  DhcpTable leases;
  std::vector<ProxyRecord> records = {proxy(50, "10.9.9.9", "example.com")};
  ProxyReductionConfig keep;
  ProxyReductionStats stats;
  auto events = reduce_proxy(records, leases, keep, &stats);
  EXPECT_EQ(stats.unresolved_sources, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].host, "10.9.9.9");

  ProxyReductionConfig drop;
  drop.keep_unresolved_sources = false;
  events = reduce_proxy(records, leases, drop, &stats);
  EXPECT_TRUE(events.empty());
}

TEST(ProxyReductionTest, CarriesHttpContext) {
  DhcpTable leases;
  ProxyRecord with_ref = proxy(10, "10.0.0.1", "example.com");
  ProxyRecord without_ref = proxy(20, "10.0.0.1", "other.com");
  without_ref.referer.clear();
  without_ref.user_agent.clear();
  const auto events =
      reduce_proxy({{with_ref, without_ref}}, leases, ProxyReductionConfig{});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].has_referer);
  EXPECT_TRUE(events[0].has_http_context);
  EXPECT_EQ(events[0].user_agent, "UA");
  EXPECT_FALSE(events[1].has_referer);
  EXPECT_TRUE(events[1].user_agent.empty());
}

}  // namespace
}  // namespace eid::logs
