#include "logs/io.h"

#include <gtest/gtest.h>

namespace eid::logs {
namespace {

TEST(LogIoTest, DnsRoundTrip) {
  DnsRecord rec;
  rec.ts = 1360000000;
  rec.src = "10.1.2.3";
  rec.domain = "www.example.com";
  rec.type = DnsType::A;
  rec.response_ip = util::Ipv4::from_octets(93, 184, 216, 34);
  const auto parsed = parse_dns_line(format_dns_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ts, rec.ts);
  EXPECT_EQ(parsed->src, rec.src);
  EXPECT_EQ(parsed->domain, rec.domain);
  EXPECT_EQ(parsed->type, rec.type);
  EXPECT_EQ(parsed->response_ip, rec.response_ip);
}

TEST(LogIoTest, DnsNoResponseIp) {
  DnsRecord rec;
  rec.ts = 5;
  rec.src = "h";
  rec.domain = "d.com";
  rec.type = DnsType::TXT;
  const auto parsed = parse_dns_line(format_dns_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->response_ip.has_value());
  EXPECT_EQ(parsed->type, DnsType::TXT);
}

TEST(LogIoTest, DnsParseRejectsMalformed) {
  EXPECT_FALSE(parse_dns_line("").has_value());
  EXPECT_FALSE(parse_dns_line("1\t2\t3").has_value());
  EXPECT_FALSE(parse_dns_line("x\th\td.com\tA\t-").has_value());       // bad ts
  EXPECT_FALSE(parse_dns_line("1\th\td.com\tA\t999.0.0.1").has_value());  // bad ip
  EXPECT_FALSE(parse_dns_line("1\t\td.com\tA\t-").has_value());        // empty src
}

TEST(LogIoTest, ProxyRoundTrip) {
  ProxyRecord rec;
  rec.ts = 1391212800;
  rec.collector = "px-eu";
  rec.src_ip = "10.4.5.6";
  rec.hostname = "ws-42.corp";
  rec.domain = "evil.example.ru";
  rec.dest_ip = util::Ipv4::from_octets(203, 0, 113, 7);
  rec.url_path = "/gate.php?id=99";
  rec.method = HttpMethod::Post;
  rec.status = 404;
  rec.user_agent = "Mozilla/5.0 (test)";
  rec.referer = "start.example.com";
  const auto parsed = parse_proxy_line(format_proxy_line(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ts, rec.ts);
  EXPECT_EQ(parsed->collector, rec.collector);
  EXPECT_EQ(parsed->src_ip, rec.src_ip);
  EXPECT_EQ(parsed->hostname, rec.hostname);
  EXPECT_EQ(parsed->domain, rec.domain);
  EXPECT_EQ(parsed->dest_ip, rec.dest_ip);
  EXPECT_EQ(parsed->url_path, rec.url_path);
  EXPECT_EQ(parsed->method, rec.method);
  EXPECT_EQ(parsed->status, rec.status);
  EXPECT_EQ(parsed->user_agent, rec.user_agent);
  EXPECT_EQ(parsed->referer, rec.referer);
}

TEST(LogIoTest, ProxyEmptyFieldsRoundTripAsDashes) {
  ProxyRecord rec;
  rec.ts = 1;
  rec.src_ip = "10.0.0.1";
  rec.domain = "d.com";
  // hostname, dest_ip, user_agent, referer left empty
  const std::string line = format_proxy_line(rec);
  const auto parsed = parse_proxy_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->hostname.empty());
  EXPECT_FALSE(parsed->dest_ip.has_value());
  EXPECT_TRUE(parsed->user_agent.empty());
  EXPECT_TRUE(parsed->referer.empty());
}

TEST(LogIoTest, ProxyParseRejectsMalformed) {
  EXPECT_FALSE(parse_proxy_line("").has_value());
  EXPECT_FALSE(parse_proxy_line("only\tthree\tfields").has_value());
  // 11 fields but non-numeric ts:
  EXPECT_FALSE(
      parse_proxy_line("x\tc\ts\th\td\t-\t/\tGET\t200\tua\tref").has_value());
  // 11 fields but non-numeric status:
  EXPECT_FALSE(
      parse_proxy_line("1\tc\ts\th\td\t-\t/\tGET\tOK\tua\tref").has_value());
}

}  // namespace
}  // namespace eid::logs
