#include "logs/dhcp.h"

#include <gtest/gtest.h>

namespace eid::logs {
namespace {

TEST(DhcpTest, ResolvesWithinLease) {
  DhcpTable table;
  table.add_lease({"10.0.0.5", 1000, 2000, "ws-1.corp"});
  EXPECT_EQ(table.resolve("10.0.0.5", 1000).value_or(""), "ws-1.corp");
  EXPECT_EQ(table.resolve("10.0.0.5", 1999).value_or(""), "ws-1.corp");
}

TEST(DhcpTest, OutsideLeaseFails) {
  DhcpTable table;
  table.add_lease({"10.0.0.5", 1000, 2000, "ws-1.corp"});
  EXPECT_FALSE(table.resolve("10.0.0.5", 999).has_value());
  EXPECT_FALSE(table.resolve("10.0.0.5", 2000).has_value());  // end-exclusive
  EXPECT_FALSE(table.resolve("10.0.0.9", 1500).has_value());
}

TEST(DhcpTest, SameIpReassignedOverTime) {
  DhcpTable table;
  table.add_lease({"10.0.0.5", 0, 100, "ws-a.corp"});
  table.add_lease({"10.0.0.5", 100, 200, "ws-b.corp"});
  table.add_lease({"10.0.0.5", 250, 400, "ws-c.corp"});
  EXPECT_EQ(table.resolve("10.0.0.5", 50).value_or(""), "ws-a.corp");
  EXPECT_EQ(table.resolve("10.0.0.5", 150).value_or(""), "ws-b.corp");
  EXPECT_FALSE(table.resolve("10.0.0.5", 220).has_value());  // gap
  EXPECT_EQ(table.resolve("10.0.0.5", 300).value_or(""), "ws-c.corp");
}

TEST(DhcpTest, OutOfOrderInsertionStillResolves) {
  DhcpTable table;
  table.add_lease({"10.0.0.5", 300, 400, "ws-late.corp"});
  table.add_lease({"10.0.0.5", 0, 100, "ws-early.corp"});
  table.add_lease({"10.0.0.5", 100, 300, "ws-mid.corp"});
  EXPECT_EQ(table.resolve("10.0.0.5", 10).value_or(""), "ws-early.corp");
  EXPECT_EQ(table.resolve("10.0.0.5", 200).value_or(""), "ws-mid.corp");
  EXPECT_EQ(table.resolve("10.0.0.5", 350).value_or(""), "ws-late.corp");
}

TEST(DhcpTest, OverlappingLeasesLaterWins) {
  DhcpTable table;
  table.add_lease({"10.0.0.5", 0, 1000, "ws-old.corp"});
  table.add_lease({"10.0.0.5", 500, 1500, "ws-new.corp"});
  EXPECT_EQ(table.resolve("10.0.0.5", 700).value_or(""), "ws-new.corp");
  EXPECT_EQ(table.resolve("10.0.0.5", 100).value_or(""), "ws-old.corp");
}

TEST(DhcpTest, LeaseCount) {
  DhcpTable table;
  EXPECT_EQ(table.lease_count(), 0u);
  table.add_lease({"10.0.0.1", 0, 10, "a"});
  table.add_lease({"10.0.0.2", 0, 10, "b"});
  EXPECT_EQ(table.lease_count(), 2u);
}

}  // namespace
}  // namespace eid::logs
