#include "timing/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eid::timing {
namespace {

Histogram make(std::initializer_list<Bin> bins) {
  Histogram h;
  h.bins = bins;
  return h;
}

TEST(HistogramTest, TotalCount) {
  EXPECT_EQ(make({{10.0, 3}, {20.0, 7}}).total_count(), 10u);
  EXPECT_EQ(Histogram{}.total_count(), 0u);
}

TEST(HistogramTest, TopBinByCountThenSmallerHub) {
  const Histogram h = make({{30.0, 5}, {10.0, 5}, {20.0, 2}});
  EXPECT_EQ(h.top_bin().hub, 10.0);  // tie broken toward smaller hub
  const Histogram k = make({{30.0, 9}, {10.0, 5}});
  EXPECT_EQ(k.top_bin().hub, 30.0);
}

TEST(JeffreyTest, IdenticalHistogramsHaveZeroDivergence) {
  const Histogram h = make({{10.0, 4}, {25.0, 6}});
  EXPECT_NEAR(jeffrey_divergence(h, h), 0.0, 1e-12);
}

TEST(JeffreyTest, ScaledHistogramIsIdenticalAfterNormalization) {
  const Histogram h = make({{10.0, 2}, {25.0, 3}});
  const Histogram k = make({{10.0, 20}, {25.0, 30}});
  EXPECT_NEAR(jeffrey_divergence(h, k), 0.0, 1e-12);
}

TEST(JeffreyTest, Symmetric) {
  const Histogram h = make({{10.0, 8}, {25.0, 2}});
  const Histogram k = make({{10.0, 1}, {40.0, 9}});
  EXPECT_NEAR(jeffrey_divergence(h, k), jeffrey_divergence(k, h), 1e-12);
}

TEST(JeffreyTest, DisjointHistogramsReachMaximum) {
  // Fully disjoint distributions: d_J = 2 log 2.
  const Histogram h = make({{10.0, 5}});
  const Histogram k = make({{99.0, 5}});
  EXPECT_NEAR(jeffrey_divergence(h, k), 2.0 * std::log(2.0), 1e-12);
}

TEST(JeffreyTest, NonNegativeOnRandomPairs) {
  for (int i = 1; i <= 20; ++i) {
    const Histogram h = make({{10.0, static_cast<std::size_t>(i)}, {20.0, 5}});
    const Histogram k = make({{10.0, 3}, {30.0, static_cast<std::size_t>(i)}});
    EXPECT_GE(jeffrey_divergence(h, k), 0.0);
  }
}

TEST(JeffreyTest, DecreasesAsDominantFrequencyGrows) {
  // Against a periodic reference, more mass on the dominant bin means a
  // smaller divergence (this is what the JT threshold keys on).
  const Histogram reference = periodic_reference(60.0);
  double previous = 1e9;
  for (std::size_t dominant = 5; dominant <= 50; dominant += 5) {
    const Histogram h = make({{60.0, dominant}, {200.0, 2}});
    const double d = jeffrey_divergence(h, reference);
    EXPECT_LT(d, previous);
    previous = d;
  }
}

TEST(JeffreyTest, PerfectBeaconMatchesPeriodicReference) {
  const Histogram h = make({{600.0, 143}});
  EXPECT_NEAR(jeffrey_divergence(h, periodic_reference(600.0)), 0.0, 1e-12);
}

TEST(JeffreyTest, HubToleranceAlignsNearbyBins) {
  const Histogram h = make({{10.0, 5}});
  const Histogram k = make({{10.4, 5}});
  EXPECT_GT(jeffrey_divergence(h, k, 1e-9), 1.0);   // treated as disjoint
  EXPECT_NEAR(jeffrey_divergence(h, k, 0.5), 0.0, 1e-12);  // aligned
}

TEST(L1Test, Bounds) {
  const Histogram h = make({{10.0, 5}});
  const Histogram k = make({{99.0, 5}});
  EXPECT_NEAR(l1_distance(h, k), 2.0, 1e-12);  // disjoint => maximal
  EXPECT_NEAR(l1_distance(h, h), 0.0, 1e-12);
}

TEST(L1Test, AgreesWithJeffreyOnOrdering) {
  // The paper notes L1 gives very similar results; check that both metrics
  // order a cleaner beacon below a noisier one.
  const Histogram reference = periodic_reference(60.0);
  const Histogram clean = make({{60.0, 40}, {120.0, 1}});
  const Histogram noisy = make({{60.0, 20}, {120.0, 15}, {240.0, 6}});
  EXPECT_LT(jeffrey_divergence(clean, reference),
            jeffrey_divergence(noisy, reference));
  EXPECT_LT(l1_distance(clean, reference), l1_distance(noisy, reference));
}

TEST(PeriodicReferenceTest, SingleBinAtPeriod) {
  const Histogram reference = periodic_reference(300.0);
  ASSERT_EQ(reference.bins.size(), 1u);
  EXPECT_EQ(reference.bins[0].hub, 300.0);
  EXPECT_EQ(reference.bins[0].count, 1u);
}

}  // namespace
}  // namespace eid::timing
