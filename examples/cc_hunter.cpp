// C&C hunter: a deep dive into the automated-communication detector
// (§IV-C). For one operation day, dumps every rare automated domain with
// its full feature vector, the dynamic-histogram evidence (dominant period,
// Jeffrey divergence per beaconing host) and the regression score — the
// view an analyst would use to tune Tc for their enterprise.
//
// Usage: cc_hunter [day_offset=0]
#include <cstdio>
#include <cstdlib>

#include "eval/ac_runner.h"
#include "features/cc_features.h"

int main(int argc, char** argv) {
  using namespace eid;

  const int offset = argc > 1 ? std::atoi(argv[1]) : 0;

  sim::AcConfig world;
  world.n_hosts = 400;
  world.n_popular = 200;
  world.tail_per_day = 120;
  world.automated_tail_per_day = 6;
  world.grayware_per_day = 2;
  world.campaigns_per_week = 6.0;
  sim::AcScenario scenario(world);
  eval::AcRunner runner(scenario);
  runner.train();

  int day_index = 0;
  runner.run_operation([&](util::Day day, const core::DayAnalysis& analysis) {
    if (day_index++ != offset) return;
    auto& pipeline = runner.pipeline();

    std::printf("%s — %zu rare destinations, %zu automated (host,domain) pairs\n\n",
                util::format_day(day).c_str(), analysis.rare.size(),
                analysis.automation.pair_count());

    std::printf("%-26s %6s | %7s %9s %6s %6s %7s %8s | %s\n", "domain", "score",
                "NoHosts", "AutoHosts", "NoRef", "RareUA", "DomAge", "Validity",
                "beacon evidence");
    for (const auto& scored : pipeline.score_automated(analysis)) {
      const graph::DomainId id = analysis.graph.find_domain(scored.name);
      const features::CcFeatureRow row = features::extract_cc_features(
          analysis.graph, id, analysis.automation, pipeline.ua_history(),
          scenario.simulator().whois(), day, analysis.whois_defaults);
      std::printf("%-26s %6.2f | %7.0f %9.0f %6.2f %6.2f %7.0f %8.0f |",
                  scored.name.c_str(), scored.score, row.no_hosts,
                  row.auto_hosts, row.no_ref, row.rare_ua, row.dom_age,
                  row.dom_validity);
      if (const features::DomainAutomation* agg = analysis.automation.domain(id)) {
        for (const auto& pair : agg->pairs) {
          std::printf(" [%s: T=%.0fs dJ=%.3f]",
                      analysis.graph.host_name(pair.host).c_str(), pair.period,
                      pair.divergence);
        }
      }
      if (!row.whois_resolved) std::printf(" (WHOIS fallback)");
      std::printf("\n");
    }

    std::printf("\nthreshold tradeoff on this day:\n");
    for (const double tc : {0.3, 0.4, 0.5, 0.6, 0.7}) {
      std::printf("  Tc=%.1f -> %zu domain(s) flagged as C&C\n", tc,
                  pipeline.detect_cc(analysis, tc).size());
    }
  });
  return 0;
}
