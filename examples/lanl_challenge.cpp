// Solve the LANL APT-discovery challenge (§V) end to end: bootstrap the
// destination history over February, then walk the March campaign days and
// answer each of the four challenge cases, printing detections against the
// challenge answers.
//
// Usage: lanl_challenge [seed] [n_hosts]
#include <cstdio>
#include <cstdlib>

#include "eval/lanl_runner.h"

int main(int argc, char** argv) {
  using namespace eid;

  sim::LanlConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  config.n_hosts = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 600;
  config.n_popular = config.n_hosts / 2;
  config.tail_per_day = config.n_hosts / 4;

  std::printf("LANL challenge: seed=%llu hosts=%zu\n",
              static_cast<unsigned long long>(config.seed), config.n_hosts);
  sim::LanlScenario scenario(config);
  eval::LanlRunner runner(scenario);

  std::printf("bootstrapping February history...\n");
  const eval::LanlChallengeResult result = runner.run_challenge();

  for (const auto& day : result.days) {
    std::printf("\n--- %s (case %d, %s) ---\n",
                util::format_day(day.challenge.day).c_str(),
                day.challenge.case_id,
                day.challenge.training ? "training" : "testing");
    if (day.challenge.hint_hosts.empty()) {
      std::printf("hints: none (C&C detector seeds the walk)\n");
    } else {
      std::printf("hints:");
      for (const auto& host : day.challenge.hint_hosts) {
        std::printf(" %s", host.c_str());
      }
      std::printf("\n");
    }
    for (const auto& domain : day.detected_domains) {
      const bool correct =
          std::find(day.challenge.answer_domains.begin(),
                    day.challenge.answer_domains.end(),
                    domain) != day.challenge.answer_domains.end();
      std::printf("  detected %-24s %s\n", domain.c_str(),
                  correct ? "(answer)" : "(FALSE POSITIVE)");
    }
    for (const auto& answer : day.challenge.answer_domains) {
      if (std::find(day.detected_domains.begin(), day.detected_domains.end(),
                    answer) == day.detected_domains.end()) {
        std::printf("  missed   %-24s (FALSE NEGATIVE)\n", answer.c_str());
      }
    }
    std::printf("  compromised hosts identified: %zu of %zu victims\n",
                day.detected_hosts.size(), day.challenge.victim_hosts.size());
  }

  std::printf("\n==== summary ====\n");
  std::printf("overall:  TP=%zu FP=%zu FN=%zu  TDR=%.2f%% FDR=%.2f%% FNR=%.2f%%\n",
              result.total.tp, result.total.fp, result.total.fn,
              100.0 * result.total.tdr(), 100.0 * result.total.fdr(),
              100.0 * result.total.fnr());
  std::printf("paper:    TDR=98.33%% FDR=1.67%% FNR=6.25%%\n");
  return 0;
}
