// Log replay: the production ingestion path with no simulator in the loop.
//
// Step 1 exports a simulated week of proxy logs + DHCP leases as TSV files
// (stand-ins for the files your log collectors write). Step 2 reads them
// back from disk, rebuilds the lease table, reduces, profiles and runs the
// detector — exactly what a deployment's nightly batch job does.
//
// Usage: log_replay [directory=/tmp/eid-replay]
#include <cstdio>
#include <filesystem>

#include "core/incidents.h"
#include "core/pipeline.h"
#include "logs/files.h"
#include "sim/ac.h"
#include "sim/export.h"

int main(int argc, char** argv) {
  using namespace eid;
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : std::filesystem::path("/tmp/eid-replay");

  // ---- Step 1: materialize a dataset on disk ----
  sim::AcConfig world;
  world.n_hosts = 200;
  world.n_popular = 100;
  world.tail_per_day = 60;
  world.automated_tail_per_day = 4;
  world.grayware_per_day = 2;
  world.campaigns_per_week = 5.0;
  sim::AcScenario scenario(world);
  auto& simulator = scenario.simulator();

  const util::Day first = scenario.training_begin();
  const util::Day last = scenario.operation_begin() + 6;  // Jan + first Feb week
  std::printf("exporting %s .. %s to %s ...\n", util::format_day(first).c_str(),
              util::format_day(last).c_str(), dir.c_str());
  const sim::ExportStats exported = sim::export_dataset(simulator, first, last, dir);
  if (!exported.ok) {
    std::printf("export failed\n");
    return 1;
  }
  std::printf("exported %zu days, %zu records, %zu DHCP leases\n\n",
              exported.days, exported.records, exported.leases);

  // ---- Step 2: pure file-based detection ----
  logs::DhcpTable leases;
  for (auto& lease : logs::read_dhcp_file(dir / "dhcp.tsv")) {
    leases.add_lease(std::move(lease));
  }
  const logs::ProxyReductionConfig reduction = simulator.proxy_reduction_config();

  core::Pipeline pipeline(core::PipelineConfig{}, simulator.whois());
  const core::LabelFn intel = [&](const std::string& domain) {
    return scenario.oracle().vt_reported(domain);
  };

  const auto day_events = [&](util::Day day) {
    logs::FileReadStats read_stats;
    const auto records = logs::read_proxy_file(
        dir / ("proxy-" + util::format_day(day) + ".tsv"), &read_stats);
    if (read_stats.malformed > 0) {
      std::printf("  warning: %zu malformed lines on %s\n", read_stats.malformed,
                  util::format_day(day).c_str());
    }
    return logs::reduce_proxy(records, leases, reduction);
  };

  std::printf("training from files...\n");
  for (util::Day day = first; day <= scenario.training_end(); ++day) {
    const auto events = day_events(day);
    if (day <= scenario.training_end() - 14) {
      pipeline.profile_day(events);
    } else {
      pipeline.train_day(events, day, intel);
    }
  }
  const auto training = pipeline.finalize_training();
  std::printf("C&C model: %zu rows, %zu reported\n\n", training.cc_rows,
              training.cc_positive);

  core::IncidentStore incidents;
  for (util::Day day = scenario.operation_begin(); day <= last; ++day) {
    const core::DayReport report =
        pipeline.run_day(day_events(day), day, core::SocSeeds{});
    std::vector<std::string> domains;
    for (const auto& det : report.cc_domains) domains.push_back(det.name);
    for (const auto& det : report.nohint.domains) domains.push_back(det.name);
    const int incident =
        incidents.ingest_community(day, domains, report.nohint.hosts);
    std::printf("%s: %zu C&C, %zu BP-expanded, %zu hosts -> incident %d\n",
                util::format_day(day).c_str(), report.cc_domains.size(),
                report.nohint.domains.size(), report.nohint.hosts.size(),
                incident);
  }

  std::printf("\nopen incidents after the week:\n");
  for (const auto& incident : incidents.incidents()) {
    std::printf("  #%d: %s..%s, %zu domain(s), %zu host(s), active %zu day(s)\n",
                incident.id, util::format_day(incident.first_seen).c_str(),
                util::format_day(incident.last_seen).c_str(),
                incident.domains.size(), incident.hosts.size(),
                incident.days_active);
  }
  return 0;
}
