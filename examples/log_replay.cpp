// Log replay: the production ingestion path with no simulator in the loop.
//
// Step 1 exports a simulated week of proxy logs + DHCP leases as TSV files
// (stand-ins for the files your log collectors write), then corrupts a few
// lines the way a glitching collector would. Step 2 streams them back from
// disk through api::TsvFileSource — parsing, reduction and analysis happen
// chunk by chunk, so a day never has to fit in memory — rebuilds the lease
// table, profiles and runs the detector: exactly what a deployment's
// nightly batch job does. Malformed lines follow the std::nullopt contract
// of logs::parse_*: counted and reported, never aborting the ingest.
//
// Usage: log_replay [directory=/tmp/eid-replay]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "api/detector.h"
#include "api/sources.h"
#include "core/incidents.h"
#include "logs/files.h"
#include "sim/ac.h"
#include "sim/export.h"

int main(int argc, char** argv) {
  using namespace eid;
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : std::filesystem::path("/tmp/eid-replay");

  // ---- Step 1: materialize a dataset on disk ----
  sim::AcConfig world;
  world.n_hosts = 200;
  world.n_popular = 100;
  world.tail_per_day = 60;
  world.automated_tail_per_day = 4;
  world.grayware_per_day = 2;
  world.campaigns_per_week = 5.0;
  sim::AcScenario scenario(world);
  auto& simulator = scenario.simulator();

  const util::Day first = scenario.training_begin();
  const util::Day last = scenario.operation_begin() + 6;  // Jan + first Feb week
  std::printf("exporting %s .. %s to %s ...\n", util::format_day(first).c_str(),
              util::format_day(last).c_str(), dir.c_str());
  const sim::ExportStats exported = sim::export_dataset(simulator, first, last, dir);
  if (!exported.ok) {
    std::printf("export failed\n");
    return 1;
  }
  std::printf("exported %zu days, %zu records, %zu DHCP leases\n",
              exported.days, exported.records, exported.leases);

  // A collector glitch: truncated/garbled lines in the first operation
  // day's file. The replay must survive and account for them.
  {
    const auto victim =
        dir / ("proxy-" + util::format_day(scenario.operation_begin()) + ".tsv");
    std::ofstream corrupt(victim, std::ios::app);
    corrupt << "1391212800\tproxy-0\t10.0\n"
            << "not\ta\tvalid\trecord\n";
  }

  // ---- Step 2: pure file-based detection ----
  logs::FileReadStats dhcp_stats;
  logs::DhcpTable leases;
  for (auto& lease : logs::read_dhcp_file(dir / "dhcp.tsv", &dhcp_stats)) {
    leases.add_lease(std::move(lease));
  }
  if (dhcp_stats.malformed > 0) {
    std::printf("warning: %zu malformed DHCP lease line(s) skipped\n",
                dhcp_stats.malformed);
  }
  const logs::ProxyReductionConfig reduction = simulator.proxy_reduction_config();

  api::Detector detector(core::PipelineConfig{}, simulator.whois());
  const core::LabelFn intel = [&](const std::string& domain) {
    return scenario.oracle().vt_reported(domain);
  };

  const auto day_source = [&](util::Day day) {
    return api::TsvFileSource(dir / ("proxy-" + util::format_day(day) + ".tsv"),
                              day, leases, reduction);
  };
  std::size_t malformed_total = 0;
  const auto account = [&](util::Day day, const api::TsvFileSource& source) {
    const api::TsvFileSource::Stats& stats = source.stats();
    if (!stats.opened) {
      std::printf("  warning: missing log file for %s\n",
                  util::format_day(day).c_str());
    }
    if (stats.malformed > 0) {
      malformed_total += stats.malformed;
      std::printf("  warning: %zu malformed line(s) on %s (%zu parsed)\n",
                  stats.malformed, util::format_day(day).c_str(), stats.parsed);
    }
  };

  std::printf("\ntraining from files...\n");
  for (util::Day day = first; day <= scenario.training_end(); ++day) {
    api::TsvFileSource source = day_source(day);
    if (day <= scenario.training_end() - 14) {
      detector.ingest(source);
    } else {
      detector.ingest(source, intel);
    }
    account(day, source);
  }
  const core::TrainingReport training = detector.finalize_training();
  std::printf("C&C model: %zu rows, %zu reported\n\n", training.cc_rows,
              training.cc_positive);

  core::IncidentStore incidents;
  for (util::Day day = scenario.operation_begin(); day <= last; ++day) {
    api::TsvFileSource source = day_source(day);
    const core::DayReport report =
        detector.run_day(source, day, core::SocSeeds{});
    account(day, source);
    std::vector<std::string> domains;
    for (const auto& det : report.cc_domains) domains.push_back(det.name);
    for (const auto& det : report.nohint.domains) domains.push_back(det.name);
    const int incident =
        incidents.ingest_community(day, domains, report.nohint.hosts);
    std::printf("%s: %zu C&C, %zu BP-expanded, %zu hosts -> incident %d\n",
                util::format_day(day).c_str(), report.cc_domains.size(),
                report.nohint.domains.size(), report.nohint.hosts.size(),
                incident);
  }

  std::printf("\nopen incidents after the week:\n");
  for (const auto& incident : incidents.incidents()) {
    std::printf("  #%d: %s..%s, %zu domain(s), %zu host(s), active %zu day(s)\n",
                incident.id, util::format_day(incident.first_seen).c_str(),
                util::format_day(incident.last_seen).c_str(),
                incident.domains.size(), incident.hosts.size(),
                incident.days_active);
  }
  std::printf("\n%zu malformed log line(s) survived across the replay\n",
              malformed_total);
  return 0;
}
