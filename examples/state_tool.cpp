// Operator tooling for eid state files: inspect what a checkpoint or
// history file contains, verify its integrity (magic, structure, per-
// section CRC32), and convert profile histories between the legacy text
// formats and the compact binary container — the migration path a
// deployment walks once and the debugging tool it keeps.
//
// Usage:
//   state_tool inspect <file>
//   state_tool verify  <file>
//   state_tool convert <input> <output> [--text|--binary]
//
// All input formats are auto-detected by magic. Exit status: 0 on
// success, 1 on bad usage, 2 on a failed verify/load.
#include <cstdio>
#include <cstring>
#include <string>

#include "profile/persistence.h"
#include "storage/container.h"
#include "storage/state.h"

namespace {

using namespace eid;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s inspect <file>\n"
               "       %s verify  <file>\n"
               "       %s convert <input> <output> [--text|--binary]\n"
               "\n"
               "inspect  describe a state/history file (format, sections, counts)\n"
               "verify   check integrity (magic, structure, section CRC32s)\n"
               "convert  rewrite a domain/UA history between text and binary\n",
               argv0, argv0, argv0);
  return 1;
}

const char* section_name(std::uint64_t id) {
  switch (static_cast<storage::SectionId>(id)) {
    case storage::SectionId::StringTable: return "string-table";
    case storage::SectionId::Config: return "config";
    case storage::SectionId::DomainHistory: return "domain-history";
    case storage::SectionId::UaHistory: return "ua-history";
    case storage::SectionId::TopSites: return "top-sites";
    case storage::SectionId::CcModel: return "cc-model";
    case storage::SectionId::SimModel: return "sim-model";
    case storage::SectionId::TrainingStats: return "training-stats";
    case storage::SectionId::Intel: return "intel";
    case storage::SectionId::Counters: return "counters";
  }
  return "unknown";
}

void print_failure(const char* what, const storage::LoadStatus& status) {
  std::fprintf(stderr, "%s: %s%s%s\n", what,
               storage::load_error_name(status.error),
               status.detail.empty() ? "" : " — ", status.detail.c_str());
}

/// First text line of a buffer (for magic detection on legacy formats).
std::string first_line(const std::string& bytes) {
  const auto eol = bytes.find('\n');
  std::string line = bytes.substr(0, eol == std::string::npos ? bytes.size() : eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

int inspect_container(const std::string& bytes) {
  storage::LoadStatus status;
  const auto reader = storage::ContainerReader::parse(bytes, &status);
  if (!reader) {
    print_failure("inspect", status);
    return 2;
  }
  std::printf("format: eid binary container (EIDSTOR1, version %llu)\n",
              static_cast<unsigned long long>(storage::kFormatVersion));
  std::printf("size: %zu bytes, %zu section(s)\n", bytes.size(),
              reader->sections().size());
  for (const storage::Section& section : reader->sections()) {
    std::printf("  %-14s id=%-3llu %10zu bytes\n", section_name(section.id),
                static_cast<unsigned long long>(section.id),
                section.payload.size());
  }
  // Decoded summaries for the component sections we understand.
  if (reader->find(storage::SectionId::DomainHistory) != nullptr) {
    if (const auto history = storage::decode_domain_history(bytes)) {
      std::printf("domain history: %zu domain(s), %zu day(s) ingested\n",
                  history->size(), history->days_ingested());
    }
  }
  if (reader->find(storage::SectionId::UaHistory) != nullptr) {
    if (const auto history = storage::decode_ua_history(bytes)) {
      std::printf("ua history: %zu distinct UA(s), rare threshold %zu\n",
                  history->distinct_uas(), history->rare_threshold());
    }
  }
  if (reader->find(storage::SectionId::Config) != nullptr) {
    if (const auto state = storage::decode_detector_state(bytes)) {
      std::printf("detector state: models %s, %llu operation day(s), "
                  "%zu intel domain(s)%s\n",
                  state->training.models_ready ? "trained" : "untrained",
                  static_cast<unsigned long long>(state->counters.days_operated),
                  state->intel_domains.size(),
                  state->has_top_sites ? ", top-sites whitelist" : "");
    }
  }
  return 0;
}

int inspect_text(const std::filesystem::path& path, const std::string& bytes) {
  const std::string magic = first_line(bytes);
  storage::LoadStatus status;
  if (magic == "eid-domain-history 1") {
    const auto history = profile::load_domain_history(path, &status);
    if (!history) {
      print_failure("inspect", status);
      return 2;
    }
    std::printf("format: eid-domain-history 1 (legacy text)\n");
    std::printf("size: %zu bytes\n", bytes.size());
    std::printf("domain history: %zu domain(s), %zu day(s) ingested\n",
                history->size(), history->days_ingested());
    return 0;
  }
  if (magic == "eid-ua-history 1") {
    const auto history = profile::load_ua_history(path, &status);
    if (!history) {
      print_failure("inspect", status);
      return 2;
    }
    std::printf("format: eid-ua-history 1 (legacy text)\n");
    std::printf("size: %zu bytes\n", bytes.size());
    std::printf("ua history: %zu distinct UA(s), rare threshold %zu\n",
                history->distinct_uas(), history->rare_threshold());
    return 0;
  }
  if (magic == "eid-scored-model 1") {
    std::printf("format: eid-scored-model 1 (legacy text, core/model_io.h)\n");
    std::printf("size: %zu bytes\n", bytes.size());
    return 0;
  }
  std::fprintf(stderr, "inspect: unrecognized format (first line: \"%.60s\")\n",
               magic.c_str());
  return 2;
}

int cmd_inspect(const std::filesystem::path& path) {
  storage::LoadStatus status;
  const auto bytes = storage::read_file(path, &status);
  if (!bytes) {
    print_failure("inspect", status);
    return 2;
  }
  if (storage::looks_like_container(*bytes)) return inspect_container(*bytes);
  return inspect_text(path, *bytes);
}

int cmd_verify(const std::filesystem::path& path) {
  storage::LoadStatus status;
  const auto bytes = storage::read_file(path, &status);
  if (!bytes) {
    print_failure("verify", status);
    return 2;
  }
  if (storage::looks_like_container(*bytes)) {
    const auto reader = storage::ContainerReader::parse(*bytes, &status);
    if (!reader) {
      print_failure("verify", status);
      return 2;
    }
    // Structure + CRCs are good; decode every section we understand so
    // semantic corruption (bad ids, inconsistent dimensions) fails too.
    const bool full_state = reader->find(storage::SectionId::Config) != nullptr;
    if (full_state) {
      if (!storage::decode_detector_state(*bytes, &status)) {
        print_failure("verify", status);
        return 2;
      }
    } else {
      if (reader->find(storage::SectionId::DomainHistory) != nullptr &&
          !storage::decode_domain_history(*bytes, &status)) {
        print_failure("verify", status);
        return 2;
      }
      if (reader->find(storage::SectionId::UaHistory) != nullptr &&
          !storage::decode_ua_history(*bytes, &status)) {
        print_failure("verify", status);
        return 2;
      }
    }
    std::printf("OK: container verified (%zu section(s), all checksums good)\n",
                reader->sections().size());
    return 0;
  }
  const std::string magic = first_line(*bytes);
  if (magic == "eid-domain-history 1") {
    if (!profile::load_domain_history(path, &status)) {
      print_failure("verify", status);
      return 2;
    }
  } else if (magic == "eid-ua-history 1") {
    if (!profile::load_ua_history(path, &status)) {
      print_failure("verify", status);
      return 2;
    }
  } else {
    std::fprintf(stderr, "verify: unrecognized format\n");
    return 2;
  }
  std::printf("OK: text file parsed cleanly\n");
  return 0;
}

int cmd_convert(const std::filesystem::path& input,
                const std::filesystem::path& output, bool to_binary) {
  storage::LoadStatus status;
  const auto bytes = storage::read_file(input, &status);
  if (!bytes) {
    print_failure("convert", status);
    return 2;
  }
  // Kind detection: container section ids, or the text magic line.
  bool is_domain = false;
  bool is_ua = false;
  if (storage::looks_like_container(*bytes)) {
    const auto reader = storage::ContainerReader::parse(*bytes, &status);
    if (!reader) {
      print_failure("convert", status);
      return 2;
    }
    is_domain = reader->find(storage::SectionId::DomainHistory) != nullptr;
    is_ua = reader->find(storage::SectionId::UaHistory) != nullptr;
    if (is_domain && is_ua) {
      std::fprintf(stderr,
                   "convert: full detector states have no text equivalent; "
                   "use api::Detector::load_state\n");
      return 1;
    }
  } else {
    const std::string magic = first_line(*bytes);
    is_domain = magic == "eid-domain-history 1";
    is_ua = magic == "eid-ua-history 1";
  }
  if (is_domain) {
    const auto history = profile::load_domain_history(input, &status);
    if (!history) {
      print_failure("convert", status);
      return 2;
    }
    std::size_t skipped = 0;
    if (to_binary) {
      status = {};
      if (!storage::save_domain_history(*history, output, 1, &status)) {
        print_failure("convert", status);
        return 2;
      }
    } else if (!profile::save_domain_history(*history, output, &skipped)) {
      // The text savers have no status channel; report the write failure
      // directly instead of echoing the (successful) load status.
      std::fprintf(stderr, "convert: cannot write %s\n",
                   output.string().c_str());
      return 2;
    }
    std::printf("converted domain history (%zu domain(s)) to %s %s\n",
                history->size() - skipped, to_binary ? "binary" : "text",
                output.string().c_str());
    if (skipped > 0) {
      std::fprintf(stderr,
                   "warning: %zu domain(s) contain characters the text "
                   "format cannot carry — dropped (keep the binary file if "
                   "you need them)\n",
                   skipped);
    }
    return 0;
  }
  if (is_ua) {
    const auto history = profile::load_ua_history(input, &status);
    if (!history) {
      print_failure("convert", status);
      return 2;
    }
    std::size_t skipped = 0;
    if (to_binary) {
      status = {};
      if (!storage::save_ua_history(*history, output, 1, &status)) {
        print_failure("convert", status);
        return 2;
      }
    } else if (!profile::save_ua_history(*history, output, &skipped)) {
      std::fprintf(stderr, "convert: cannot write %s\n",
                   output.string().c_str());
      return 2;
    }
    std::printf("converted ua history (%zu UA(s)) to %s %s\n",
                history->distinct_uas() - skipped,
                to_binary ? "binary" : "text", output.string().c_str());
    if (skipped > 0) {
      std::fprintf(stderr,
                   "warning: %zu UA(s) contain tab/newline characters the "
                   "text format cannot carry — dropped (keep the binary "
                   "file if you need them)\n",
                   skipped);
    }
    return 0;
  }
  std::fprintf(stderr, "convert: input is neither a domain nor a UA history\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  if (command == "inspect" && argc == 3) return cmd_inspect(argv[2]);
  if (command == "verify" && argc == 3) return cmd_verify(argv[2]);
  if (command == "convert" && (argc == 4 || argc == 5)) {
    bool to_binary = true;
    if (argc == 5) {
      if (std::strcmp(argv[4], "--text") == 0) {
        to_binary = false;
      } else if (std::strcmp(argv[4], "--binary") != 0) {
        return usage(argv[0]);
      }
    }
    return cmd_convert(argv[2], argv[3], to_binary);
  }
  return usage(argv[0]);
}
