// Operator tooling for eid state files: inspect what a checkpoint or
// history file contains, verify its integrity (magic, structure, per-
// section CRC32), and convert profile histories between the legacy text
// formats and the compact binary container — the migration path a
// deployment walks once and the debugging tool it keeps.
//
// Usage:
//   state_tool inspect <file>
//   state_tool verify [--deep] <file>
//   state_tool convert <input> <output> [--text|--binary]
//
// All input formats are auto-detected by magic — including delta-chain
// files ("EIDDELT1" frames, storage/delta.h); inspecting a full
// checkpoint also summarizes its companion <file>.delta chain.
// verify --deep prints a per-section CRC/size/decode report (and a
// per-frame report for delta chains) and exits nonzero on the first
// failure. Exit status: 0 on success, 1 on bad usage, 2 on a failed
// verify/load.
#include <cstdio>
#include <cstring>
#include <string>

#include "profile/persistence.h"
#include "storage/container.h"
#include "storage/delta.h"
#include "storage/encoding.h"
#include "storage/state.h"

namespace {

using namespace eid;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s inspect <file>\n"
               "       %s verify [--deep] <file>\n"
               "       %s convert <input> <output> [--text|--binary]\n"
               "\n"
               "inspect  describe a state/history/delta file (format, sections,\n"
               "         counts; full checkpoints include their .delta chain)\n"
               "verify   check integrity (magic, structure, section CRC32s);\n"
               "         --deep adds a per-section (and per-delta-frame)\n"
               "         CRC/size/decode report, nonzero exit on first failure\n"
               "convert  rewrite a domain/UA history between text and binary\n",
               argv0, argv0, argv0);
  return 1;
}

const char* section_name(std::uint64_t id) {
  switch (static_cast<storage::SectionId>(id)) {
    case storage::SectionId::StringTable: return "string-table";
    case storage::SectionId::Config: return "config";
    case storage::SectionId::DomainHistory: return "domain-history";
    case storage::SectionId::UaHistory: return "ua-history";
    case storage::SectionId::TopSites: return "top-sites";
    case storage::SectionId::CcModel: return "cc-model";
    case storage::SectionId::SimModel: return "sim-model";
    case storage::SectionId::TrainingStats: return "training-stats";
    case storage::SectionId::Intel: return "intel";
    case storage::SectionId::Counters: return "counters";
    case storage::SectionId::TrainingRows: return "training-rows";
    case storage::SectionId::RtCursor: return "rt-cursor";
    case storage::SectionId::Incidents: return "incidents";
    case storage::SectionId::DeltaHeader: return "delta-header";
    case storage::SectionId::DomainDelta: return "domain-delta";
    case storage::SectionId::UaDelta: return "ua-delta";
  }
  return "unknown";
}

bool looks_like_delta_chain(const std::string& bytes) {
  return bytes.size() >= storage::kDeltaMagic.size() &&
         std::string_view(bytes).substr(0, storage::kDeltaMagic.size()) ==
             storage::kDeltaMagic;
}

void print_failure(const char* what, const storage::LoadStatus& status) {
  std::fprintf(stderr, "%s: %s%s%s\n", what,
               storage::load_error_name(status.error),
               status.detail.empty() ? "" : " — ", status.detail.c_str());
}

/// First text line of a buffer (for magic detection on legacy formats).
std::string first_line(const std::string& bytes) {
  const auto eol = bytes.find('\n');
  std::string line = bytes.substr(0, eol == std::string::npos ? bytes.size() : eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

/// Summarize a delta chain file: frame count, seq/day spans, tail state.
/// `base_day` (last-compaction day, from the base checkpoint's counters)
/// is printed when the caller knows it; pass -1 otherwise.
int inspect_chain(const std::filesystem::path& chain_path,
                  long long base_day) {
  storage::DeltaChainInfo info;
  storage::LoadStatus status;
  if (!storage::read_delta_chain(chain_path, info, &status)) {
    print_failure("inspect", status);
    return 2;
  }
  std::printf("delta chain %s: %zu frame(s), %llu of %llu byte(s) valid%s\n",
              chain_path.string().c_str(), info.frames.size(),
              static_cast<unsigned long long>(info.valid_bytes),
              static_cast<unsigned long long>(info.file_bytes),
              info.torn_tail ? ", torn tail (next append truncates it)" : "");
  if (base_day >= 0) {
    std::printf("  last compaction: after operation day %lld\n", base_day);
  }
  std::uint64_t first_seq = 0, last_seq = 0;
  long long first_day = 0, last_day = 0;
  std::size_t decoded = 0;
  for (const auto& frame : info.frames) {
    const auto decoded_frame = storage::decode_delta_frame(frame.payload);
    if (!decoded_frame) continue;
    if (decoded == 0) {
      first_seq = decoded_frame->seq;
      first_day = decoded_frame->day;
    }
    last_seq = decoded_frame->seq;
    last_day = decoded_frame->day;
    ++decoded;
  }
  if (decoded > 0) {
    std::printf("  seq %llu..%llu, day %s..%s (%zu decodable frame(s))\n",
                static_cast<unsigned long long>(first_seq),
                static_cast<unsigned long long>(last_seq),
                util::format_day(first_day).c_str(),
                util::format_day(last_day).c_str(), decoded);
  }
  return 0;
}

/// Per-section decode report for one EIDSTOR1 container (a full state or
/// one delta-frame payload). Returns 0 when every section decodes.
int deep_verify_container(const std::string& bytes, const char* label) {
  storage::LoadStatus status;
  const auto reader = storage::ContainerReader::parse(bytes, &status);
  if (!reader) {
    print_failure(label, status);
    return 2;
  }
  namespace det = storage::detail;
  det::DecodedTable table;
  // The string table decodes first — id sections reference it.
  if (const storage::Section* section =
          reader->find(storage::SectionId::StringTable)) {
    if (!det::decode_string_table(section->payload, table, &status)) {
      std::printf("  %-14s id=%-3d %10zu bytes  crc ok  DECODE FAILED\n",
                  "string-table", 1, section->payload.size());
      print_failure(label, status);
      return 2;
    }
  }
  const bool is_delta_payload =
      reader->find(storage::SectionId::DeltaHeader) != nullptr;
  for (const storage::Section& section : reader->sections()) {
    bool ok = true;
    status = {};
    switch (static_cast<storage::SectionId>(section.id)) {
      case storage::SectionId::StringTable:
        break;  // decoded above
      case storage::SectionId::Config: {
        core::PipelineConfig config;
        ok = det::decode_config_section(section.payload, config, &status);
        break;
      }
      case storage::SectionId::DomainHistory: {
        profile::DomainHistory history;
        ok = det::decode_domain_history_section(section.payload, table,
                                                history, &status);
        break;
      }
      case storage::SectionId::UaHistory: {
        std::optional<profile::UaHistory> history;
        ok = det::decode_ua_history_section(section.payload, table, history,
                                            &status);
        break;
      }
      case storage::SectionId::TopSites:
      case storage::SectionId::Intel: {
        std::vector<std::string> strings;
        ok = det::decode_string_set_section(section.payload, table,
                                            section_name(section.id), strings,
                                            &status);
        break;
      }
      case storage::SectionId::CcModel:
      case storage::SectionId::SimModel: {
        core::ScoredModel model;
        ok = det::decode_model_section(section.payload,
                                       section_name(section.id), model,
                                       &status);
        break;
      }
      case storage::SectionId::TrainingStats: {
        storage::TrainingStats training;
        ok = det::decode_training_section(section.payload, training, &status);
        break;
      }
      case storage::SectionId::Counters: {
        storage::Counters counters;
        ok = det::decode_counters_section(section.payload, counters, &status);
        break;
      }
      case storage::SectionId::TrainingRows: {
        storage::TrainingRows rows;
        ok = det::decode_training_rows_section(section.payload, rows, &status);
        break;
      }
      case storage::SectionId::DeltaHeader:
      case storage::SectionId::DomainDelta:
      case storage::SectionId::UaDelta:
      case storage::SectionId::RtCursor:
      case storage::SectionId::Incidents:
        // Delta-frame sections decode as a unit below (they reference the
        // frame header and each other).
        break;
    }
    std::printf("  %-14s id=%-3llu %10zu bytes  crc ok  %s\n",
                section_name(section.id),
                static_cast<unsigned long long>(section.id),
                section.payload.size(), ok ? "decode ok" : "DECODE FAILED");
    if (!ok) {
      print_failure(label, status);
      return 2;
    }
  }
  if (is_delta_payload) {
    status = {};
    if (!storage::decode_delta_frame(bytes, &status)) {
      print_failure(label, status);
      return 2;
    }
    std::printf("  delta frame decodes as a unit\n");
  }
  return 0;
}

/// Deep verify of a delta chain: per-frame CRC (the scan) + full decode.
int deep_verify_chain(const std::filesystem::path& chain_path) {
  storage::DeltaChainInfo info;
  storage::LoadStatus status;
  if (!storage::read_delta_chain(chain_path, info, &status)) {
    print_failure("verify", status);
    return 2;
  }
  std::printf("delta chain %s: %zu frame(s)\n", chain_path.string().c_str(),
              info.frames.size());
  for (std::size_t i = 0; i < info.frames.size(); ++i) {
    const auto& frame = info.frames[i];
    status = {};
    const auto decoded = storage::decode_delta_frame(frame.payload, &status);
    if (!decoded) {
      std::printf("frame %zu @%llu: %zu bytes, crc ok, DECODE FAILED\n", i,
                  static_cast<unsigned long long>(frame.offset),
                  frame.payload.size());
      print_failure("verify", status);
      return 2;
    }
    std::printf("frame %zu @%llu: %zu bytes, crc ok, seq %llu, day %s, "
                "base crc %08llx\n",
                i, static_cast<unsigned long long>(frame.offset),
                frame.payload.size(),
                static_cast<unsigned long long>(decoded->seq),
                util::format_day(decoded->day).c_str(),
                static_cast<unsigned long long>(decoded->base_crc));
    const int rc = deep_verify_container(frame.payload, "verify");
    if (rc != 0) return rc;
  }
  if (info.torn_tail) {
    std::printf("note: torn tail past byte %llu (%s) — recoverable, the "
                "next append truncates it\n",
                static_cast<unsigned long long>(info.valid_bytes),
                info.tail_detail.c_str());
  }
  return 0;
}

int inspect_container(const std::string& bytes) {
  storage::LoadStatus status;
  const auto reader = storage::ContainerReader::parse(bytes, &status);
  if (!reader) {
    print_failure("inspect", status);
    return 2;
  }
  std::printf("format: eid binary container (EIDSTOR1, version %llu)\n",
              static_cast<unsigned long long>(storage::kFormatVersion));
  std::printf("size: %zu bytes, %zu section(s)\n", bytes.size(),
              reader->sections().size());
  for (const storage::Section& section : reader->sections()) {
    std::printf("  %-14s id=%-3llu %10zu bytes\n", section_name(section.id),
                static_cast<unsigned long long>(section.id),
                section.payload.size());
  }
  // Decoded summaries for the component sections we understand.
  if (reader->find(storage::SectionId::DomainHistory) != nullptr) {
    if (const auto history = storage::decode_domain_history(bytes)) {
      std::printf("domain history: %zu domain(s), %zu day(s) ingested\n",
                  history->size(), history->days_ingested());
    }
  }
  if (reader->find(storage::SectionId::UaHistory) != nullptr) {
    if (const auto history = storage::decode_ua_history(bytes)) {
      std::printf("ua history: %zu distinct UA(s), rare threshold %zu\n",
                  history->distinct_uas(), history->rare_threshold());
    }
  }
  if (reader->find(storage::SectionId::Config) != nullptr) {
    if (const auto state = storage::decode_detector_state(bytes)) {
      std::printf("detector state: models %s, %llu operation day(s), "
                  "%zu intel domain(s)%s\n",
                  state->training.models_ready ? "trained" : "untrained",
                  static_cast<unsigned long long>(state->counters.days_operated),
                  state->intel_domains.size(),
                  state->has_top_sites ? ", top-sites whitelist" : "");
    }
  }
  return 0;
}

int inspect_text(const std::filesystem::path& path, const std::string& bytes) {
  const std::string magic = first_line(bytes);
  storage::LoadStatus status;
  if (magic == "eid-domain-history 1") {
    const auto history = profile::load_domain_history(path, &status);
    if (!history) {
      print_failure("inspect", status);
      return 2;
    }
    std::printf("format: eid-domain-history 1 (legacy text)\n");
    std::printf("size: %zu bytes\n", bytes.size());
    std::printf("domain history: %zu domain(s), %zu day(s) ingested\n",
                history->size(), history->days_ingested());
    return 0;
  }
  if (magic == "eid-ua-history 1") {
    const auto history = profile::load_ua_history(path, &status);
    if (!history) {
      print_failure("inspect", status);
      return 2;
    }
    std::printf("format: eid-ua-history 1 (legacy text)\n");
    std::printf("size: %zu bytes\n", bytes.size());
    std::printf("ua history: %zu distinct UA(s), rare threshold %zu\n",
                history->distinct_uas(), history->rare_threshold());
    return 0;
  }
  if (magic == "eid-scored-model 1") {
    std::printf("format: eid-scored-model 1 (legacy text, core/model_io.h)\n");
    std::printf("size: %zu bytes\n", bytes.size());
    return 0;
  }
  std::fprintf(stderr, "inspect: unrecognized format (first line: \"%.60s\")\n",
               magic.c_str());
  return 2;
}

int cmd_inspect(const std::filesystem::path& path) {
  storage::LoadStatus status;
  const auto bytes = storage::read_file(path, &status);
  if (!bytes) {
    print_failure("inspect", status);
    return 2;
  }
  if (looks_like_delta_chain(*bytes)) {
    std::printf("format: eid delta chain (EIDDELT1 frames)\n");
    return inspect_chain(path, -1);
  }
  if (storage::looks_like_container(*bytes)) {
    const int rc = inspect_container(*bytes);
    if (rc != 0) return rc;
    // A full checkpoint's companion chain, when present.
    const std::filesystem::path chain_path = storage::delta_chain_path(path);
    std::error_code ec;
    if (std::filesystem::exists(chain_path, ec)) {
      long long base_day = -1;
      if (const auto state = storage::decode_detector_state(*bytes)) {
        base_day = static_cast<long long>(state->counters.days_operated);
      }
      return inspect_chain(chain_path, base_day);
    }
    return 0;
  }
  return inspect_text(path, *bytes);
}

int cmd_verify(const std::filesystem::path& path, bool deep) {
  storage::LoadStatus status;
  const auto bytes = storage::read_file(path, &status);
  if (!bytes) {
    print_failure("verify", status);
    return 2;
  }
  if (looks_like_delta_chain(*bytes)) {
    if (deep) {
      const int rc = deep_verify_chain(path);
      if (rc != 0) return rc;
    } else {
      storage::DeltaChainInfo info;
      if (!storage::read_delta_chain(path, info, &status)) {
        print_failure("verify", status);
        return 2;
      }
      for (const auto& frame : info.frames) {
        if (!storage::decode_delta_frame(frame.payload, &status)) {
          print_failure("verify", status);
          return 2;
        }
      }
      if (info.torn_tail) {
        std::printf("note: torn tail past byte %llu — recoverable, the next "
                    "append truncates it\n",
                    static_cast<unsigned long long>(info.valid_bytes));
      }
      std::printf("OK: delta chain verified (%zu frame(s))\n",
                  info.frames.size());
    }
    return 0;
  }
  if (deep && storage::looks_like_container(*bytes)) {
    std::printf("deep verify %s:\n", path.string().c_str());
    const int rc = deep_verify_container(*bytes, "verify");
    if (rc != 0) return rc;
    // A full checkpoint's companion chain is part of its durability story:
    // verify it too when present.
    const std::filesystem::path chain_path = storage::delta_chain_path(path);
    std::error_code ec;
    if (std::filesystem::exists(chain_path, ec)) {
      const int chain_rc = deep_verify_chain(chain_path);
      if (chain_rc != 0) return chain_rc;
    }
    std::printf("OK: deep verify passed\n");
    return 0;
  }
  if (storage::looks_like_container(*bytes)) {
    const auto reader = storage::ContainerReader::parse(*bytes, &status);
    if (!reader) {
      print_failure("verify", status);
      return 2;
    }
    // Structure + CRCs are good; decode every section we understand so
    // semantic corruption (bad ids, inconsistent dimensions) fails too.
    const bool full_state = reader->find(storage::SectionId::Config) != nullptr;
    if (full_state) {
      if (!storage::decode_detector_state(*bytes, &status)) {
        print_failure("verify", status);
        return 2;
      }
    } else {
      if (reader->find(storage::SectionId::DomainHistory) != nullptr &&
          !storage::decode_domain_history(*bytes, &status)) {
        print_failure("verify", status);
        return 2;
      }
      if (reader->find(storage::SectionId::UaHistory) != nullptr &&
          !storage::decode_ua_history(*bytes, &status)) {
        print_failure("verify", status);
        return 2;
      }
    }
    std::printf("OK: container verified (%zu section(s), all checksums good)\n",
                reader->sections().size());
    return 0;
  }
  const std::string magic = first_line(*bytes);
  if (magic == "eid-domain-history 1") {
    if (!profile::load_domain_history(path, &status)) {
      print_failure("verify", status);
      return 2;
    }
  } else if (magic == "eid-ua-history 1") {
    if (!profile::load_ua_history(path, &status)) {
      print_failure("verify", status);
      return 2;
    }
  } else {
    std::fprintf(stderr, "verify: unrecognized format\n");
    return 2;
  }
  std::printf("OK: text file parsed cleanly\n");
  return 0;
}

int cmd_convert(const std::filesystem::path& input,
                const std::filesystem::path& output, bool to_binary) {
  storage::LoadStatus status;
  const auto bytes = storage::read_file(input, &status);
  if (!bytes) {
    print_failure("convert", status);
    return 2;
  }
  // Kind detection: container section ids, or the text magic line.
  bool is_domain = false;
  bool is_ua = false;
  if (storage::looks_like_container(*bytes)) {
    const auto reader = storage::ContainerReader::parse(*bytes, &status);
    if (!reader) {
      print_failure("convert", status);
      return 2;
    }
    is_domain = reader->find(storage::SectionId::DomainHistory) != nullptr;
    is_ua = reader->find(storage::SectionId::UaHistory) != nullptr;
    if (is_domain && is_ua) {
      std::fprintf(stderr,
                   "convert: full detector states have no text equivalent; "
                   "use api::Detector::load_state\n");
      return 1;
    }
  } else {
    const std::string magic = first_line(*bytes);
    is_domain = magic == "eid-domain-history 1";
    is_ua = magic == "eid-ua-history 1";
  }
  if (is_domain) {
    const auto history = profile::load_domain_history(input, &status);
    if (!history) {
      print_failure("convert", status);
      return 2;
    }
    std::size_t skipped = 0;
    if (to_binary) {
      status = {};
      if (!storage::save_domain_history(*history, output, 1, &status)) {
        print_failure("convert", status);
        return 2;
      }
    } else if (!profile::save_domain_history(*history, output, &skipped)) {
      // The text savers have no status channel; report the write failure
      // directly instead of echoing the (successful) load status.
      std::fprintf(stderr, "convert: cannot write %s\n",
                   output.string().c_str());
      return 2;
    }
    std::printf("converted domain history (%zu domain(s)) to %s %s\n",
                history->size() - skipped, to_binary ? "binary" : "text",
                output.string().c_str());
    if (skipped > 0) {
      std::fprintf(stderr,
                   "warning: %zu domain(s) contain characters the text "
                   "format cannot carry — dropped (keep the binary file if "
                   "you need them)\n",
                   skipped);
    }
    return 0;
  }
  if (is_ua) {
    const auto history = profile::load_ua_history(input, &status);
    if (!history) {
      print_failure("convert", status);
      return 2;
    }
    std::size_t skipped = 0;
    if (to_binary) {
      status = {};
      if (!storage::save_ua_history(*history, output, 1, &status)) {
        print_failure("convert", status);
        return 2;
      }
    } else if (!profile::save_ua_history(*history, output, &skipped)) {
      std::fprintf(stderr, "convert: cannot write %s\n",
                   output.string().c_str());
      return 2;
    }
    std::printf("converted ua history (%zu UA(s)) to %s %s\n",
                history->distinct_uas() - skipped,
                to_binary ? "binary" : "text", output.string().c_str());
    if (skipped > 0) {
      std::fprintf(stderr,
                   "warning: %zu UA(s) contain tab/newline characters the "
                   "text format cannot carry — dropped (keep the binary "
                   "file if you need them)\n",
                   skipped);
    }
    return 0;
  }
  std::fprintf(stderr, "convert: input is neither a domain nor a UA history\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  if (command == "inspect" && argc == 3) return cmd_inspect(argv[2]);
  if (command == "verify" && argc == 3) return cmd_verify(argv[2], false);
  if (command == "verify" && argc == 4 &&
      std::strcmp(argv[2], "--deep") == 0) {
    return cmd_verify(argv[3], true);
  }
  if (command == "convert" && (argc == 4 || argc == 5)) {
    bool to_binary = true;
    if (argc == 5) {
      if (std::strcmp(argv[4], "--text") == 0) {
        to_binary = false;
      } else if (std::strcmp(argv[4], "--binary") != 0) {
        return usage(argv[0]);
      }
    }
    return cmd_convert(argv[2], argv[3], to_binary);
  }
  return usage(argv[0]);
}
