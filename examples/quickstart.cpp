// Quickstart: the smallest end-to-end use of the library.
//
// 1. Simulate a small enterprise (stand-in for your own proxy logs).
// 2. Train the detector through the streaming ingestion API: profile a
//    bootstrap period, then fit the C&C and similarity regressions against
//    an intelligence feed.
// 3. Run one day in operation mode and print what the detector found.
//
// Everything flows through eid::api::Detector + EventSource — the same
// chunked path that ingests replayed log files (see log_replay.cpp) and
// NetFlow, so no day ever has to fit in memory as one vector.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "api/detector.h"
#include "api/sources.h"
#include "eval/metrics.h"
#include "sim/ac.h"

int main() {
  using namespace eid;

  // A small synthetic enterprise: 200 hosts, fresh campaigns twice a week.
  sim::AcConfig world;
  world.seed = 2024;
  world.n_hosts = 200;
  world.n_popular = 100;
  world.tail_per_day = 60;
  world.automated_tail_per_day = 4;
  world.grayware_per_day = 2;
  world.campaigns_per_week = 4.0;
  sim::AcScenario scenario(world);
  auto& simulator = scenario.simulator();

  // The detection facade. In production the WhoisSource would wrap real
  // WHOIS queries; here it is the scenario's synthetic registry.
  core::PipelineConfig config;  // W=10s, JT=0.06, Tc=0.4, Ts=0.33
  api::Detector detector(config, simulator.whois());

  // ---- Training month (Fig. 1, left) ----
  const util::Day jan1 = scenario.training_begin();
  const util::Day jan31 = scenario.training_end();
  const core::LabelFn intel = [&](const std::string& domain) {
    return scenario.oracle().vt_reported(domain);  // "VirusTotal" lookup
  };

  // Bootstrap: build domain/UA histories from the first weeks of traffic.
  api::SimSource bootstrap(simulator, jan1, jan31 - 14);
  const api::IngestReport profiled = detector.ingest(bootstrap);
  // Last two weeks: accumulate labeled regression rows day by day.
  api::SimSource labeled(simulator, jan31 - 13, jan31);
  detector.ingest(labeled, intel);

  const core::TrainingReport training = detector.finalize_training();
  std::printf("profiled %zu days (%zu events, %zu chunks)\n", profiled.days,
              profiled.events, profiled.chunks);
  std::printf("trained on %zu automated domains (%zu reported by intel)\n",
              training.cc_rows, training.cc_positive);

  // ---- One day of operation (Fig. 1, right) ----
  const util::Day today = scenario.operation_begin() + 1;
  core::SocSeeds seeds;
  seeds.domains = scenario.ioc_seeds();  // the SOC's IOC list
  api::SimSource day_source(simulator, today, today);
  const core::DayReport report = detector.run_day(day_source, today, seeds);

  std::printf("\n%s: %zu events, %zu hosts, %zu domains (%zu rare)\n",
              util::format_day(today).c_str(), report.events, report.hosts,
              report.domains, report.rare_domains);

  std::printf("\npotential C&C domains (score >= %.2f):\n", config.cc_threshold);
  for (const auto& det : report.cc_domains) {
    std::printf("  %-28s score %.2f, beacon ~%.0f s from %zu host(s)\n",
                det.name.c_str(), det.score, det.period, det.auto_hosts);
  }

  std::printf("\nbelief propagation, no-hint mode:\n");
  for (const auto& det : report.nohint.domains) {
    std::printf("  %-28s via %-10s (score %.2f)\n", det.name.c_str(),
                core::label_reason_name(det.reason), det.score);
  }
  std::printf("belief propagation, SOC-hints mode (%zu IOC seeds):\n",
              seeds.domains.size());
  for (const auto& det : report.sochints.domains) {
    std::printf("  %-28s via %-10s (score %.2f)\n", det.name.c_str(),
                core::label_reason_name(det.reason), det.score);
  }

  // Ground truth check (only possible because this is a simulation).
  std::vector<std::string> all;
  for (const auto& det : report.cc_domains) all.push_back(det.name);
  for (const auto& det : report.nohint.domains) all.push_back(det.name);
  const eval::ValidationCounts counts =
      eval::validate_detections(all, scenario.oracle());
  std::printf("\nvalidation: %zu detected; %zu known, %zu new-malicious, "
              "%zu suspicious, %zu legitimate (TDR %.0f%%)\n",
              counts.total(), counts.known_malicious, counts.new_malicious,
              counts.suspicious, counts.legitimate, 100.0 * counts.tdr());
  return 0;
}
