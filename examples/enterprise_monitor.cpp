// Daily SOC monitor: the deployment the paper runs in §VI. Trains on one
// month of proxy logs, then emits a daily triage report for the operation
// month — potential C&C domains, the no-hint community expansion, and the
// IOC-seeded expansion — ordered by suspiciousness for analyst review.
//
// Usage: enterprise_monitor [days=7] [tc=0.4] [ts=0.33] [threads=1] [shards=1]
//                           [depth=1] [--state <path>] [--help]
//
// threads/shards/depth drive the parallel day-analysis engine (worker
// threads, ingest shards, multi-day pipeline depth); reports are
// bit-identical for any values, so they are safe to size to the host.
//
// --state <path> makes the monitor durable: the detector state
// (histories, trained models, counters) is checkpointed to <path> after
// every completed day via the storage subsystem, and an existing
// checkpoint is restored on startup (skipping retraining when the saved
// models are ready) — kill the process mid-month and restart it to resume.
// Daily saves append O(day) delta frames to <path>.delta and compact into
// a fresh full checkpoint every --delta-every saves (see
// src/storage/FORMAT.md); restart replays base + chain bit-identically.
//
// --standby turns the process into a hot standby (requires --state and
// --follow): instead of ingesting the log it tails the primary's delta
// chain, applying frames as they land, and takes over the live --follow
// tail when the primary's heartbeat file (<state>.hb, touched by the
// primary every poll) goes stale for --stale-after seconds. Takeover
// re-reads the tailed day's log from the start — histories only advance
// at day close, so the rebuilt day report is bit-identical to the one the
// uninterrupted primary would have produced.
//
// --follow <path> switches to real-time continuous mode after training:
// instead of walking simulated operation days, the monitor tails <path>
// (a growing DNS-flavor TSV log) through the rt::ContinuousEngine,
// re-scoring a sliding window every --tick seconds and printing
// provisional incidents live as they cross the detection thresholds —
// with the authoritative (batch-identical) day report at day close. Tick
// evaluations merge cached per-bucket partial graphs (O(new events) per
// tick); --rt-rebuild falls back to replaying the window's raw events.
//
// --metrics-out <path> keeps a Prometheus text-exposition snapshot of the
// process metrics registry at <path> (atomic tmp + rename; point the
// node-exporter textfile collector at it). --trace-out <path> writes a
// Chrome trace-event JSON of every pipeline/executor/rt span — open it in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Batch mode rewrites
// both after every day; --follow refreshes them every ~2 s of wall time.
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/sources.h"
#include "eval/ac_runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/engine.h"
#include "rt/standby.h"
#include "storage/delta.h"
#include "storage/state.h"

namespace {

using namespace eid;

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [days] [tc] [ts] [threads] [shards] [depth] [--state <path>]\n"
      "\n"
      "  days     operation days to monitor (default 7, >= 1)\n"
      "  tc       C&C detection threshold Tc (default 0.4)\n"
      "  ts       similarity threshold Ts (default 0.33)\n"
      "  threads  day-analysis worker threads (default 1, >= 1)\n"
      "  shards   ingest shards (default 1, >= 1)\n"
      "  depth    multi-day pipeline depth: 2 overlaps a day's close with\n"
      "           the next day's ingest (default 1, >= 1)\n"
      "  --state <path>  checkpoint the detector to <path> after each day\n"
      "                  and restore from it on startup when present\n"
      "  --delta-every <n>  compact the delta chain into a fresh full\n"
      "                     checkpoint every n saves; 1 = always save full\n"
      "                     (default 7)\n"
      "\n"
      "failover (see also src/storage/FORMAT.md):\n"
      "  --standby           run as a hot standby: tail the primary's delta\n"
      "                      chain (--state) and take over the --follow tail\n"
      "                      when its heartbeat goes stale\n"
      "  --stale-after <sec> heartbeat age that triggers takeover\n"
      "                      (default 10)\n"
      "\n"
      "real-time continuous mode (replaces the simulated day walk):\n"
      "  --follow <path>     tail a growing DNS-flavor TSV log live\n"
      "  --follow-day <day>  day tag for the tailed file (util::Day number;\n"
      "                      default: first operation day)\n"
      "  --tick <seconds>    micro-batch tick size (default 300; must tile\n"
      "                      the 86400 s day)\n"
      "  --rt-window <sec>   sliding evidence window (default 86400; whole\n"
      "                      number of ticks)\n"
      "  --rt-rebuild        re-ingest the window's raw events every tick\n"
      "                      instead of merging cached per-bucket partials\n"
      "                      (escape hatch; same results, O(window) ticks)\n"
      "  --idle-exit <n>     exit after n consecutive empty polls\n"
      "                      (default 0 = follow forever)\n"
      "  --poll-ms <ms>      sleep between empty polls (default 200)\n"
      "\n"
      "observability:\n"
      "  --metrics-out <path>  keep a Prometheus text snapshot of the\n"
      "                        process metrics at <path> (rewritten per day,\n"
      "                        or every ~2 s in --follow mode)\n"
      "  --trace-out <path>    write pipeline/executor/rt spans as Chrome\n"
      "                        trace-event JSON to <path> (Perfetto-viewable)\n"
      "  --help   this message\n",
      argv0);
}

/// Atomic (tmp + rename) rewrite of the Prometheus metrics file, so a
/// scraper never reads a torn exposition.
bool write_metrics_file(const std::string& path) {
  const std::string body = obs::to_prometheus(obs::metrics().snapshot());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return false;
    out << body;
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

/// Sim-time point as "YYYY-MM-DD hh:mm:ss" for live emission lines.
std::string format_time(util::TimePoint t) {
  const util::Day day = util::day_of(t);
  const std::int64_t s = t - util::day_start(day);
  char clock[16];
  std::snprintf(clock, sizeof(clock), " %02lld:%02lld:%02lld",
                static_cast<long long>(s / 3600),
                static_cast<long long>((s / 60) % 60),
                static_cast<long long>(s % 60));
  return util::format_day(day) + clock;
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& part : parts) {
    if (!out.empty()) out += ", ";
    out += part;
  }
  return out;
}

bool parse_int_arg(const char* text, int min_value, int& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc() && ptr == end && out >= min_value;
}

bool parse_double_arg(const char* text, double& out) {
  // strtod (from_chars<double> availability varies); require full consume.
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end == text + std::strlen(text) && end != text;
}

/// Everything the live-tail loop needs, shared between a primary started
/// with --follow and a standby that just took over.
struct FollowSetup {
  std::string follow_path;
  std::string state_path;  ///< empty = not durable
  util::Day day = 0;
  int tick_seconds = 300;
  int window_seconds = 86400;
  int idle_exit = 0;
  int poll_ms = 200;
  bool rt_rebuild = false;
  std::size_t delta_every = 7;
  /// Takeover: the failed primary's incident store to adopt (may be null).
  core::IncidentStore* adopt_incidents = nullptr;
};

/// The real-time continuous loop: tail the growing TSV through the
/// sliding-window engine, heartbeating and delta-checkpointing when
/// durable. Sim time is driven by the event stream (ReplayClock), so a
/// replayed file runs at hardware speed and a live tail ticks as its
/// collector writes.
int run_follow(api::Detector& detector, const core::SocSeeds& seeds,
               const FollowSetup& setup,
               const std::function<void()>& flush_observability) {
  rt::EngineConfig engine_config;
  engine_config.window.tick_seconds = setup.tick_seconds;
  engine_config.window.window_seconds = setup.window_seconds;
  engine_config.window.incremental = !setup.rt_rebuild;
  engine_config.seeds = seeds;
  if (!engine_config.window.valid()) {
    std::fprintf(stderr,
                 "error: tick=%ds window=%ds invalid (tick must tile the "
                 "86400 s day; window a whole number of ticks)\n",
                 setup.tick_seconds, setup.window_seconds);
    return 1;
  }

  api::TsvFileSource source(setup.follow_path, setup.day,
                            logs::DnsReductionConfig{});
  source.set_tail(true);
  rt::ReplayClock clock;
  rt::ContinuousEngine engine(detector, clock, engine_config);
  if (setup.adopt_incidents != nullptr) {
    engine.restore_incidents(std::move(*setup.adopt_incidents));
  }
  bool checkpoint_dirty = false;
  engine.set_emission_sink([&checkpoint_dirty](
                               const rt::IncidentEmission& emission) {
    checkpoint_dirty = true;
    std::printf("[%s] %s incident #%d (%s): latency %llds  domains=[%s]"
                "  hosts=[%s]\n",
                format_time(emission.emission_time).c_str(),
                emission.provisional ? "PROVISIONAL" : "FINAL",
                emission.incident_id,
                emission.new_incident ? "new" : "grew",
                static_cast<long long>(emission.latency_seconds),
                join(emission.domains).c_str(), join(emission.hosts).c_str());
    std::fflush(stdout);
  });
  engine.set_day_sink([&checkpoint_dirty](const core::DayReport& report) {
    checkpoint_dirty = true;
    std::printf("[%s] day closed: events=%zu cc=%zu nohint=%zu "
                "sochints=%zu (authoritative report, bit-identical to "
                "batch run_day)\n",
                util::format_day(report.day).c_str(), report.events,
                report.cc_domains.size(), report.nohint.domains.size(),
                report.sochints.domains.size());
    std::fflush(stdout);
  });

  const api::CheckpointPolicy policy{setup.delta_every};
  const auto save_checkpoint = [&]() -> bool {
    api::CheckpointExtras extras;
    extras.has_cursor = true;
    extras.cursor_day = setup.day;
    extras.cursor_offset = source.stats().byte_offset;
    extras.incidents = &engine.incidents();
    storage::LoadStatus status;
    if (!detector.save_state_delta(setup.state_path, policy, &status,
                                   extras)) {
      std::fprintf(stderr, "warning: checkpoint failed: %s — %s\n",
                   storage::load_error_name(status.error),
                   status.detail.c_str());
      return false;
    }
    checkpoint_dirty = false;
    return true;
  };

  std::printf("following %s (day %s, tick %ds, window %ds, %s ticks)...\n",
              setup.follow_path.c_str(), util::format_day(setup.day).c_str(),
              setup.tick_seconds, setup.window_seconds,
              setup.rt_rebuild ? "rebuild" : "incremental");
  int idle = 0;
  auto last_flush = std::chrono::steady_clock::now();
  while (setup.idle_exit == 0 || idle < setup.idle_exit) {
    if (engine.poll(source) == 0) {
      ++idle;
      std::this_thread::sleep_for(std::chrono::milliseconds(setup.poll_ms));
    } else {
      idle = 0;
    }
    if (!setup.state_path.empty()) {
      rt::touch_heartbeat(rt::heartbeat_path(setup.state_path));
    }
    const auto now = std::chrono::steady_clock::now();
    if (now - last_flush >= std::chrono::seconds(2)) {
      flush_observability();
      if (!setup.state_path.empty() && checkpoint_dirty) save_checkpoint();
      last_flush = now;
    }
  }
  engine.finish();
  flush_observability();
  const rt::EngineStats& stats = engine.stats();
  std::printf("\nfollow stats: %zu events in %zu chunks, %zu ticks closed "
              "(%zu evaluated), %zu day(s) closed, %zu provisional + %zu "
              "finalized emission(s), peak buffer %zu raw events "
              "(cursor at byte %llu, %zu rotation(s), %zu transient "
              "error(s))\n",
              stats.events, stats.chunks, stats.ticks_closed,
              stats.evaluations, stats.days_closed,
              stats.provisional_emissions, stats.finalized_emissions,
              stats.peak_buffered_events,
              static_cast<unsigned long long>(source.stats().byte_offset),
              source.stats().rotations, source.stats().transient_errors);
  if (!setup.rt_rebuild) {
    std::printf("window cache: %zu buckets sealed, %zu partial absorbs, "
                "%zu merge extends, %zu rebuilds, %zu cached events at "
                "exit\n",
                stats.buckets_sealed, stats.partial_absorbs,
                stats.window_merge_extends, stats.window_merge_rebuilds,
                stats.cached_partial_events);
  }
  if (!setup.state_path.empty()) {
    if (save_checkpoint()) {
      std::printf("[checkpoint] state saved to %s\n",
                  setup.state_path.c_str());
    }
  }
  flush_observability();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int days = 7;
  double tc = 0.4;
  double ts = 0.33;
  int threads = 1;
  int shards = 1;
  int depth = 1;
  std::string state_path;
  std::string follow_path;
  std::string metrics_path;
  std::string trace_path;
  int follow_day = 0;  // 0 = default to the first operation day
  int tick_seconds = 300;
  int window_seconds = 86400;
  int idle_exit = 0;
  int poll_ms = 200;
  bool rt_rebuild = false;
  bool standby = false;
  int delta_every = 7;
  int stale_after = 10;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(argv[0]);
      return 0;
    }
    if (std::strcmp(arg, "--state") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --state needs a path\n");
        print_usage(argv[0]);
        return 1;
      }
      state_path = argv[++i];
      continue;
    }
    if (std::strcmp(arg, "--follow") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --follow needs a path\n");
        print_usage(argv[0]);
        return 1;
      }
      follow_path = argv[++i];
      continue;
    }
    if (std::strcmp(arg, "--rt-rebuild") == 0) {
      rt_rebuild = true;
      continue;
    }
    if (std::strcmp(arg, "--standby") == 0) {
      standby = true;
      continue;
    }
    if (std::strcmp(arg, "--metrics-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --metrics-out needs a path\n");
        print_usage(argv[0]);
        return 1;
      }
      metrics_path = argv[++i];
      continue;
    }
    if (std::strcmp(arg, "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --trace-out needs a path\n");
        print_usage(argv[0]);
        return 1;
      }
      trace_path = argv[++i];
      continue;
    }
    const auto int_flag = [&](const char* name, int min_value,
                              int& out) -> int {
      if (std::strcmp(arg, name) != 0) return 0;  // not this flag
      if (i + 1 >= argc || !parse_int_arg(argv[++i], min_value, out)) {
        std::fprintf(stderr, "error: %s needs an integer >= %d\n", name,
                     min_value);
        return -1;
      }
      return 1;
    };
    int matched = 0;
    if ((matched = int_flag("--follow-day", 1, follow_day)) != 0 ||
        (matched = int_flag("--tick", 1, tick_seconds)) != 0 ||
        (matched = int_flag("--rt-window", 1, window_seconds)) != 0 ||
        (matched = int_flag("--idle-exit", 1, idle_exit)) != 0 ||
        (matched = int_flag("--poll-ms", 1, poll_ms)) != 0 ||
        (matched = int_flag("--delta-every", 1, delta_every)) != 0 ||
        (matched = int_flag("--stale-after", 1, stale_after)) != 0) {
      if (matched < 0) return 1;
      continue;
    }
    bool ok = true;
    switch (positional++) {
      case 0: ok = parse_int_arg(arg, 1, days); break;
      case 1: ok = parse_double_arg(arg, tc); break;
      case 2: ok = parse_double_arg(arg, ts); break;
      case 3: ok = parse_int_arg(arg, 1, threads); break;
      case 4: ok = parse_int_arg(arg, 1, shards); break;
      case 5: ok = parse_int_arg(arg, 1, depth); break;
      default: ok = false; break;
    }
    if (!ok) {
      std::fprintf(stderr, "error: bad argument \"%s\"\n", arg);
      print_usage(argv[0]);
      return 1;
    }
  }

  // Observability sinks, live for the whole process so training, the day
  // walk and --follow all land in one timeline.
  obs::TraceSink trace_sink;
  if (!trace_path.empty()) api::Detector::set_trace_sink(&trace_sink);
  const auto flush_observability = [&] {
    if (!metrics_path.empty() && !write_metrics_file(metrics_path)) {
      std::fprintf(stderr, "warning: cannot write metrics to %s\n",
                   metrics_path.c_str());
    }
    if (!trace_path.empty() && !trace_sink.write_chrome_json(trace_path)) {
      std::fprintf(stderr, "warning: cannot write trace to %s\n",
                   trace_path.c_str());
    }
  };

  sim::AcConfig world;
  world.n_hosts = 400;
  world.n_popular = 200;
  world.tail_per_day = 120;
  world.automated_tail_per_day = 6;
  world.grayware_per_day = 2;
  world.campaigns_per_week = 5.0;
  sim::AcScenario scenario(world);

  eval::AcRunnerConfig runner_config;
  runner_config.pipeline.cc_threshold = tc;
  runner_config.pipeline.sim_threshold = ts;
  runner_config.pipeline.parallelism =
      core::Parallelism{static_cast<std::size_t>(threads),
                        static_cast<std::size_t>(shards),
                        static_cast<std::size_t>(depth)};
  eval::AcRunner runner(scenario, runner_config);
  api::Detector& detector = runner.detector();
  std::printf(
      "day-analysis engine: %d thread(s), %d ingest shard(s), pipeline "
      "depth %d\n",
      threads, shards, depth);

  if (standby) {
    if (state_path.empty() || follow_path.empty()) {
      std::fprintf(stderr, "error: --standby requires --state and --follow\n");
      return 1;
    }
    core::SocSeeds seeds;
    seeds.domains = scenario.ioc_seeds();
    rt::StandbyConfig standby_config;
    standby_config.state_path = state_path;
    standby_config.stale_after_seconds = stale_after;
    rt::StandbyReplica replica(detector, standby_config);
    std::printf("standby: tailing checkpoint chain %s.delta (takeover after "
                "%ds of heartbeat silence)\n",
                state_path.c_str(), stale_after);
    storage::LoadStatus status;
    if (replica.start(&status)) {
      std::printf("[standby] base + chain loaded: at seq %llu, %zu operation "
                  "day(s) completed\n",
                  static_cast<unsigned long long>(replica.last_seq()),
                  detector.days_operated());
    } else {
      std::printf("[standby] no checkpoint yet (%s) — waiting for the "
                  "primary's first save\n",
                  storage::load_error_name(status.error));
    }
    std::fflush(stdout);
    int idle = 0;
    while (true) {
      const std::size_t applied = replica.poll();
      if (applied > 0) {
        idle = 0;
        std::printf("[standby] applied %zu frame(s), now at seq %llu\n",
                    applied,
                    static_cast<unsigned long long>(replica.last_seq()));
        std::fflush(stdout);
      }
      const double age =
          rt::heartbeat_age_seconds(rt::heartbeat_path(state_path));
      if (replica.started() && detector.pipeline().models_ready() &&
          age > stale_after) {
        std::printf("[failover] primary heartbeat stale (%.1fs > %ds) — "
                    "taking over the tail of %s\n",
                    age, stale_after, follow_path.c_str());
        std::fflush(stdout);
        core::IncidentStore incidents;
        const bool adopted = replica.take_incidents(incidents);
        FollowSetup setup;
        setup.follow_path = follow_path;
        setup.state_path = state_path;
        // Takeover re-reads the cursor day's log from offset 0: histories
        // only advance at day close, so replaying the whole day on top of
        // the replicated state reproduces the primary's would-have-been
        // report bit-identically (the cursor byte offset in the frames is
        // operator-visible progress, not a resume point).
        setup.day = replica.has_cursor()
                        ? static_cast<util::Day>(replica.cursor_day())
                        : (follow_day > 0
                               ? static_cast<util::Day>(follow_day)
                               : scenario.operation_begin());
        setup.tick_seconds = tick_seconds;
        setup.window_seconds = window_seconds;
        setup.idle_exit = idle_exit;
        setup.poll_ms = poll_ms;
        setup.rt_rebuild = rt_rebuild;
        setup.delta_every = static_cast<std::size_t>(delta_every);
        setup.adopt_incidents = adopted ? &incidents : nullptr;
        return run_follow(detector, seeds, setup, flush_observability);
      }
      if (applied == 0) {
        ++idle;
        if (idle_exit > 0 && idle >= idle_exit) {
          std::printf("[standby] idle limit reached without takeover — "
                      "exiting\n");
          return 0;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      }
    }
  }

  bool restored = false;
  if (!state_path.empty()) {
    // Peek at the checkpoint before applying it: a snapshot taken before
    // finalize_training() cannot be resumed by this monitor (applying its
    // histories and then retraining would double-ingest January), so such
    // a file is ignored rather than half-used.
    storage::LoadStatus status;
    storage::ChainLoadReport chain;
    auto state = storage::load_detector_state_chain(state_path, &chain,
                                                    &status);
    if (state && state->training.models_ready) {
      detector.restore_state(std::move(*state));
      const core::Pipeline& pipeline = detector.pipeline();
      std::printf("restored checkpoint %s (+%zu delta frame(s)): %zu known "
                  "domain(s), %zu UA(s), %zu operation day(s) completed, "
                  "models trained\n",
                  state_path.c_str(), chain.frames_applied,
                  pipeline.domain_history().size(),
                  pipeline.ua_history().distinct_uas(),
                  detector.days_operated());
      if (chain.degraded) {
        std::fprintf(stderr,
                     "warning: delta chain degraded (%zu frame(s) dropped): "
                     "%s — resuming from the last good state\n",
                     chain.frames_dropped, chain.detail.c_str());
      }
      restored = true;
      // The checkpoint restores the config it was saved with; the operator
      // asked for these thresholds and parallelism on THIS invocation, so
      // re-apply them (the printed Tc/Ts/threads labels must stay truthful).
      core::PipelineConfig config = pipeline.config();
      config.cc_threshold = tc;
      config.sim_threshold = ts;
      config.parallelism = runner_config.pipeline.parallelism;
      detector.pipeline().set_config(config);
    } else if (state) {
      std::fprintf(stderr,
                   "warning: %s holds an untrained checkpoint — ignoring it "
                   "and training from scratch\n",
                   state_path.c_str());
    } else if (status.error != storage::LoadError::FileNotFound) {
      std::fprintf(stderr, "error: cannot restore %s: %s — %s\n",
                   state_path.c_str(), storage::load_error_name(status.error),
                   status.detail.c_str());
      return 1;
    }
  }

  if (restored) {
    std::printf("checkpointed models are trained; skipping January training\n");
  } else {
    std::printf("training on January (profiling + regression)...\n");
    const core::TrainingReport training = runner.train();
    std::printf("C&C model: %zu rows, %zu reported, R^2=%.2f\n",
                training.cc_rows, training.cc_positive,
                training.cc_model.r_squared);
  }

  core::SocSeeds seeds;
  seeds.domains = scenario.ioc_seeds();
  detector.set_intel_domains(seeds.domains);
  std::printf("SOC IOC list: %zu domains\n", seeds.domains.size());

  if (!follow_path.empty()) {
    FollowSetup setup;
    setup.follow_path = follow_path;
    setup.state_path = state_path;
    setup.day = follow_day > 0 ? static_cast<util::Day>(follow_day)
                               : scenario.operation_begin();
    setup.tick_seconds = tick_seconds;
    setup.window_seconds = window_seconds;
    setup.idle_exit = idle_exit;
    setup.poll_ms = poll_ms;
    setup.rt_rebuild = rt_rebuild;
    setup.delta_every = static_cast<std::size_t>(delta_every);
    return run_follow(detector, seeds, setup, flush_observability);
  }

  // Resume where the checkpoint stopped: days the restored detector already
  // completed are not re-ingested (re-running them would double-count the
  // history updates).
  const util::Day first =
      scenario.operation_begin() +
      (restored ? static_cast<util::Day>(detector.days_operated()) : 0);
  const util::Day last =
      std::min<util::Day>(scenario.operation_end(), first + days - 1);
  if (first > scenario.operation_end()) {
    std::printf("checkpoint already covers the whole operation month — "
                "nothing to monitor\n");
    return 0;
  }
  if (restored && first > scenario.training_begin()) {
    // The simulator's day generation depends on cross-day state (WHOIS
    // registry, DHCP leases), so a resumed process fast-forwards it over
    // everything the checkpointed run already consumed — training month
    // included — without ingesting; only then does today's traffic match
    // what the uninterrupted run would have produced.
    std::printf("fast-forwarding simulator to %s...\n",
                util::format_day(first).c_str());
    for (util::Day day = scenario.training_begin(); day < first; ++day) {
      scenario.simulator().reduced_day(day);
    }
  }
  for (util::Day day = first; day <= last; ++day) {
    api::SimSource source(scenario.simulator(), day, day);
    const core::DayReport report = detector.run_day(source, day, seeds);

    std::printf("\n================ %s ================\n",
                util::format_day(day).c_str());
    std::printf("hosts=%zu domains=%zu rare=%zu automated_pairs=%zu\n",
                report.hosts, report.domains, report.rare_domains,
                report.automated_pairs);

    std::printf("\n[1] potential C&C (Tc=%.2f): %zu domain(s)\n", tc,
                report.cc_domains.size());
    for (const auto& det : report.cc_domains) {
      std::printf("    %-30s score=%.2f period=%.0fs hosts=%zu\n",
                  det.name.c_str(), det.score, det.period, det.auto_hosts);
    }

    std::printf("[2] no-hint expansion (Ts=%.2f): %zu more domain(s), "
                "%zu host(s) implicated\n",
                ts, report.nohint.domains.size(), report.nohint.hosts.size());
    for (const auto& det : report.nohint.domains) {
      std::printf("    %-30s iter=%zu via %s score=%.2f\n", det.name.c_str(),
                  det.iteration, core::label_reason_name(det.reason), det.score);
    }

    std::printf("[3] IOC-seeded expansion: %zu domain(s)\n",
                report.sochints.domains.size());
    for (const auto& det : report.sochints.domains) {
      std::printf("    %-30s iter=%zu via %s score=%.2f\n", det.name.c_str(),
                  det.iteration, core::label_reason_name(det.reason), det.score);
    }

    if (!state_path.empty()) {
      storage::LoadStatus status;
      const api::CheckpointPolicy policy{
          static_cast<std::size_t>(delta_every)};
      if (detector.save_state_delta(state_path, policy, &status)) {
        std::printf("[checkpoint] state saved to %s (delta chain, full "
                    "rewrite every %d)\n",
                    state_path.c_str(), delta_every);
      } else {
        std::fprintf(stderr, "warning: checkpoint failed: %s — %s\n",
                     storage::load_error_name(status.error),
                     status.detail.c_str());
      }
      rt::touch_heartbeat(rt::heartbeat_path(state_path));
    }
    flush_observability();
  }
  std::printf("\nmonitoring complete. (Ground truth lives in the scenario — "
              "in production these reports go to the SOC for manual "
              "investigation, §VI-B.)\n");
  const api::HealthSnapshot health = detector.health_snapshot();
  std::printf("health: %zu day(s) operated, %llu event(s) ingested, "
              "executor %zu worker(s)\n",
              health.days_operated,
              static_cast<unsigned long long>(health.events_ingested),
              health.executor_workers);
  flush_observability();
  return 0;
}
