// Daily SOC monitor: the deployment the paper runs in §VI. Trains on one
// month of proxy logs, then emits a daily triage report for the operation
// month — potential C&C domains, the no-hint community expansion, and the
// IOC-seeded expansion — ordered by suspiciousness for analyst review.
//
// Usage: enterprise_monitor [days=7] [tc=0.4] [ts=0.33] [threads=1] [shards=1]
//
// threads/shards drive the sharded parallel day-analysis engine; reports
// are bit-identical for any values, so they are safe to size to the host.
#include <cstdio>
#include <cstdlib>

#include "eval/ac_runner.h"

int main(int argc, char** argv) {
  using namespace eid;

  const int days = argc > 1 ? std::atoi(argv[1]) : 7;
  const double tc = argc > 2 ? std::atof(argv[2]) : 0.4;
  const double ts = argc > 3 ? std::atof(argv[3]) : 0.33;
  core::Parallelism parallelism;
  if (argc > 4 && std::atoi(argv[4]) > 0) {
    parallelism.threads = static_cast<std::size_t>(std::atoi(argv[4]));
  }
  if (argc > 5 && std::atoi(argv[5]) > 0) {
    parallelism.shards = static_cast<std::size_t>(std::atoi(argv[5]));
  }

  sim::AcConfig world;
  world.n_hosts = 400;
  world.n_popular = 200;
  world.tail_per_day = 120;
  world.automated_tail_per_day = 6;
  world.grayware_per_day = 2;
  world.campaigns_per_week = 5.0;
  sim::AcScenario scenario(world);

  eval::AcRunner runner(scenario);
  runner.pipeline().set_parallelism(parallelism);
  std::printf("day-analysis engine: %zu thread(s), %zu ingest shard(s)\n",
              parallelism.threads, parallelism.shards);
  std::printf("training on January (profiling + regression)...\n");
  const core::TrainingReport training = runner.train();
  std::printf("C&C model: %zu rows, %zu reported, R^2=%.2f\n",
              training.cc_rows, training.cc_positive,
              training.cc_model.r_squared);

  core::SocSeeds seeds;
  seeds.domains = scenario.ioc_seeds();
  std::printf("SOC IOC list: %zu domains\n", seeds.domains.size());

  int remaining = days;
  runner.run_operation([&](util::Day day, const core::DayAnalysis& analysis) {
    if (remaining-- <= 0) return;
    std::printf("\n================ %s ================\n",
                util::format_day(day).c_str());
    std::printf("hosts=%zu domains=%zu rare=%zu automated_pairs=%zu\n",
                analysis.graph.host_count(), analysis.graph.domain_count(),
                analysis.rare.size(), analysis.automation.pair_count());

    auto& pipeline = runner.pipeline();
    const auto cc = pipeline.detect_cc(analysis, tc);
    std::printf("\n[1] potential C&C (Tc=%.2f): %zu domain(s)\n", tc, cc.size());
    for (const auto& det : cc) {
      std::printf("    %-30s score=%.2f period=%.0fs hosts=%zu\n",
                  det.name.c_str(), det.score, det.period, det.auto_hosts);
    }

    const core::BpRunReport nohint = pipeline.run_bp_nohint(analysis, cc, ts);
    std::printf("[2] no-hint expansion (Ts=%.2f): %zu more domain(s), "
                "%zu host(s) implicated\n",
                ts, nohint.domains.size(), nohint.hosts.size());
    for (const auto& det : nohint.domains) {
      std::printf("    %-30s iter=%zu via %s score=%.2f\n", det.name.c_str(),
                  det.iteration, core::label_reason_name(det.reason), det.score);
    }

    const core::BpRunReport hinted = pipeline.run_bp_sochints(analysis, seeds, ts);
    std::printf("[3] IOC-seeded expansion: %zu domain(s)\n",
                hinted.domains.size());
    for (const auto& det : hinted.domains) {
      std::printf("    %-30s iter=%zu via %s score=%.2f\n", det.name.c_str(),
                  det.iteration, core::label_reason_name(det.reason), det.score);
    }
  });
  std::printf("\nmonitoring complete. (Ground truth lives in the scenario — "
              "in production these reports go to the SOC for manual "
              "investigation, §VI-B.)\n");
  return 0;
}
