// Daily SOC monitor: the deployment the paper runs in §VI. Trains on one
// month of proxy logs, then emits a daily triage report for the operation
// month — potential C&C domains, the no-hint community expansion, and the
// IOC-seeded expansion — ordered by suspiciousness for analyst review.
//
// Usage: enterprise_monitor [days=7] [tc=0.4] [ts=0.33] [threads=1] [shards=1]
//                           [--state <path>] [--help]
//
// threads/shards drive the sharded parallel day-analysis engine; reports
// are bit-identical for any values, so they are safe to size to the host.
//
// --state <path> makes the monitor durable: the full detector state
// (histories, trained models, counters) is checkpointed to <path> after
// every completed day via the storage subsystem, and an existing
// checkpoint is restored on startup (skipping retraining when the saved
// models are ready) — kill the process mid-month and restart it to resume.
#include <charconv>
#include <cstdio>
#include <cstring>
#include <string>

#include "api/sources.h"
#include "eval/ac_runner.h"
#include "storage/state.h"

namespace {

using namespace eid;

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [days] [tc] [ts] [threads] [shards] [--state <path>]\n"
      "\n"
      "  days     operation days to monitor (default 7, >= 1)\n"
      "  tc       C&C detection threshold Tc (default 0.4)\n"
      "  ts       similarity threshold Ts (default 0.33)\n"
      "  threads  day-analysis worker threads (default 1, >= 1)\n"
      "  shards   ingest shards (default 1, >= 1)\n"
      "  --state <path>  checkpoint the detector to <path> after each day\n"
      "                  and restore from it on startup when present\n"
      "  --help   this message\n",
      argv0);
}

bool parse_int_arg(const char* text, int min_value, int& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc() && ptr == end && out >= min_value;
}

bool parse_double_arg(const char* text, double& out) {
  // strtod (from_chars<double> availability varies); require full consume.
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end == text + std::strlen(text) && end != text;
}

}  // namespace

int main(int argc, char** argv) {
  int days = 7;
  double tc = 0.4;
  double ts = 0.33;
  int threads = 1;
  int shards = 1;
  std::string state_path;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(argv[0]);
      return 0;
    }
    if (std::strcmp(arg, "--state") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --state needs a path\n");
        print_usage(argv[0]);
        return 1;
      }
      state_path = argv[++i];
      continue;
    }
    bool ok = true;
    switch (positional++) {
      case 0: ok = parse_int_arg(arg, 1, days); break;
      case 1: ok = parse_double_arg(arg, tc); break;
      case 2: ok = parse_double_arg(arg, ts); break;
      case 3: ok = parse_int_arg(arg, 1, threads); break;
      case 4: ok = parse_int_arg(arg, 1, shards); break;
      default: ok = false; break;
    }
    if (!ok) {
      std::fprintf(stderr, "error: bad argument \"%s\"\n", arg);
      print_usage(argv[0]);
      return 1;
    }
  }

  sim::AcConfig world;
  world.n_hosts = 400;
  world.n_popular = 200;
  world.tail_per_day = 120;
  world.automated_tail_per_day = 6;
  world.grayware_per_day = 2;
  world.campaigns_per_week = 5.0;
  sim::AcScenario scenario(world);

  eval::AcRunnerConfig runner_config;
  runner_config.pipeline.cc_threshold = tc;
  runner_config.pipeline.sim_threshold = ts;
  runner_config.pipeline.parallelism =
      core::Parallelism{static_cast<std::size_t>(threads),
                        static_cast<std::size_t>(shards)};
  eval::AcRunner runner(scenario, runner_config);
  api::Detector& detector = runner.detector();
  std::printf("day-analysis engine: %d thread(s), %d ingest shard(s)\n",
              threads, shards);

  bool restored = false;
  if (!state_path.empty()) {
    // Peek at the checkpoint before applying it: a snapshot taken before
    // finalize_training() cannot be resumed by this monitor (applying its
    // histories and then retraining would double-ingest January), so such
    // a file is ignored rather than half-used.
    storage::LoadStatus status;
    auto state = storage::load_detector_state(state_path, &status);
    if (state && state->training.models_ready) {
      detector.restore_state(std::move(*state));
      const core::Pipeline& pipeline = detector.pipeline();
      std::printf("restored checkpoint %s: %zu known domain(s), %zu UA(s), "
                  "%zu operation day(s) completed, models trained\n",
                  state_path.c_str(), pipeline.domain_history().size(),
                  pipeline.ua_history().distinct_uas(),
                  detector.days_operated());
      restored = true;
      // The checkpoint restores the config it was saved with; the operator
      // asked for these thresholds and parallelism on THIS invocation, so
      // re-apply them (the printed Tc/Ts/threads labels must stay truthful).
      core::PipelineConfig config = pipeline.config();
      config.cc_threshold = tc;
      config.sim_threshold = ts;
      config.parallelism = runner_config.pipeline.parallelism;
      detector.pipeline().set_config(config);
    } else if (state) {
      std::fprintf(stderr,
                   "warning: %s holds an untrained checkpoint — ignoring it "
                   "and training from scratch\n",
                   state_path.c_str());
    } else if (status.error != storage::LoadError::FileNotFound) {
      std::fprintf(stderr, "error: cannot restore %s: %s — %s\n",
                   state_path.c_str(), storage::load_error_name(status.error),
                   status.detail.c_str());
      return 1;
    }
  }

  if (restored) {
    std::printf("checkpointed models are trained; skipping January training\n");
  } else {
    std::printf("training on January (profiling + regression)...\n");
    const core::TrainingReport training = runner.train();
    std::printf("C&C model: %zu rows, %zu reported, R^2=%.2f\n",
                training.cc_rows, training.cc_positive,
                training.cc_model.r_squared);
  }

  core::SocSeeds seeds;
  seeds.domains = scenario.ioc_seeds();
  detector.set_intel_domains(seeds.domains);
  std::printf("SOC IOC list: %zu domains\n", seeds.domains.size());

  // Resume where the checkpoint stopped: days the restored detector already
  // completed are not re-ingested (re-running them would double-count the
  // history updates).
  const util::Day first =
      scenario.operation_begin() +
      (restored ? static_cast<util::Day>(detector.days_operated()) : 0);
  const util::Day last =
      std::min<util::Day>(scenario.operation_end(), first + days - 1);
  if (first > scenario.operation_end()) {
    std::printf("checkpoint already covers the whole operation month — "
                "nothing to monitor\n");
    return 0;
  }
  if (restored && first > scenario.training_begin()) {
    // The simulator's day generation depends on cross-day state (WHOIS
    // registry, DHCP leases), so a resumed process fast-forwards it over
    // everything the checkpointed run already consumed — training month
    // included — without ingesting; only then does today's traffic match
    // what the uninterrupted run would have produced.
    std::printf("fast-forwarding simulator to %s...\n",
                util::format_day(first).c_str());
    for (util::Day day = scenario.training_begin(); day < first; ++day) {
      scenario.simulator().reduced_day(day);
    }
  }
  for (util::Day day = first; day <= last; ++day) {
    api::SimSource source(scenario.simulator(), day, day);
    const core::DayReport report = detector.run_day(source, day, seeds);

    std::printf("\n================ %s ================\n",
                util::format_day(day).c_str());
    std::printf("hosts=%zu domains=%zu rare=%zu automated_pairs=%zu\n",
                report.hosts, report.domains, report.rare_domains,
                report.automated_pairs);

    std::printf("\n[1] potential C&C (Tc=%.2f): %zu domain(s)\n", tc,
                report.cc_domains.size());
    for (const auto& det : report.cc_domains) {
      std::printf("    %-30s score=%.2f period=%.0fs hosts=%zu\n",
                  det.name.c_str(), det.score, det.period, det.auto_hosts);
    }

    std::printf("[2] no-hint expansion (Ts=%.2f): %zu more domain(s), "
                "%zu host(s) implicated\n",
                ts, report.nohint.domains.size(), report.nohint.hosts.size());
    for (const auto& det : report.nohint.domains) {
      std::printf("    %-30s iter=%zu via %s score=%.2f\n", det.name.c_str(),
                  det.iteration, core::label_reason_name(det.reason), det.score);
    }

    std::printf("[3] IOC-seeded expansion: %zu domain(s)\n",
                report.sochints.domains.size());
    for (const auto& det : report.sochints.domains) {
      std::printf("    %-30s iter=%zu via %s score=%.2f\n", det.name.c_str(),
                  det.iteration, core::label_reason_name(det.reason), det.score);
    }

    if (!state_path.empty()) {
      storage::LoadStatus status;
      if (detector.save_state(state_path, &status)) {
        std::printf("[checkpoint] state saved to %s\n", state_path.c_str());
      } else {
        std::fprintf(stderr, "warning: checkpoint failed: %s — %s\n",
                     storage::load_error_name(status.error),
                     status.detail.c_str());
      }
    }
  }
  std::printf("\nmonitoring complete. (Ground truth lives in the scenario — "
              "in production these reports go to the SOC for manual "
              "investigation, §VI-B.)\n");
  return 0;
}
