// Reproduces Table III: true/false positives and false negatives of the
// belief propagation framework per LANL challenge case, split into the
// training and testing halves, plus the headline TDR/FDR/FNR.
#include <cstdio>

#include "bench_common.h"
#include "eval/lanl_runner.h"

int main() {
  using namespace eid;
  bench::print_header("Table III", "Results on the LANL challenge");

  sim::LanlScenario scenario(bench::lanl_config());
  eval::LanlRunner runner(scenario);
  const eval::LanlChallengeResult result = runner.run_challenge();

  std::printf("%-7s | %-21s | %-21s | %-21s\n", "", "True Positives",
              "False Positives", "False Negatives");
  std::printf("%-7s | %-10s %-10s | %-10s %-10s | %-10s %-10s\n", "Case",
              "Training", "Testing", "Training", "Testing", "Training",
              "Testing");
  std::printf("--------+-----------------------+-----------------------+----------------------\n");
  for (int case_id = 1; case_id <= 4; ++case_id) {
    const auto& train = result.per_case_training[case_id];
    const auto& test = result.per_case_testing[case_id];
    if (case_id == 4) {
      // Case 4 was simulated on a single (testing) day.
      std::printf("%-7s | %-10s %-10zu | %-10s %-10zu | %-10s %-10zu\n", "Case 4",
                  "-", test.tp, "-", test.fp, "-", test.fn);
    } else {
      std::printf("Case %-2d | %-10zu %-10zu | %-10zu %-10zu | %-10zu %-10zu\n",
                  case_id, train.tp, test.tp, train.fp, test.fp, train.fn,
                  test.fn);
    }
  }
  std::printf("--------+-----------------------+-----------------------+----------------------\n");
  std::printf("%-7s | %-10zu %-10zu | %-10zu %-10zu | %-10zu %-10zu\n", "Total",
              result.training_total.tp, result.testing_total.tp,
              result.training_total.fp, result.testing_total.fp,
              result.training_total.fn, result.testing_total.fn);

  std::printf("\nOverall:   TDR=%6.2f%%  FDR=%6.2f%%  FNR=%6.2f%%\n",
              100.0 * result.total.tdr(), 100.0 * result.total.fdr(),
              100.0 * result.total.fnr());
  std::printf("Training:  TDR=%6.2f%%  FDR=%6.2f%%  FNR=%6.2f%%\n",
              100.0 * result.training_total.tdr(),
              100.0 * result.training_total.fdr(),
              100.0 * result.training_total.fnr());
  std::printf("Testing:   TDR=%6.2f%%  FDR=%6.2f%%  FNR=%6.2f%%\n",
              100.0 * result.testing_total.tdr(),
              100.0 * result.testing_total.fdr(),
              100.0 * result.testing_total.fnr());

  std::printf("\nPer-day detail:\n");
  for (const auto& day : result.days) {
    std::printf("  %s case %d (%s): tp=%zu fp=%zu fn=%zu  rare=%zu auto_pairs=%zu\n",
                util::format_day(day.challenge.day).c_str(), day.challenge.case_id,
                day.challenge.training ? "train" : "test", day.counts.tp,
                day.counts.fp, day.counts.fn, day.rare_domains,
                day.automated_pairs);
  }
  bench::print_note(
      "paper (Table III): 26/33 TPs train/test, 0/1 FP, 3/1 FN — overall TDR "
      "98.33%, FDR 1.67%, FNR 6.25%. Expect the same shape: near-total "
      "detection, at most a couple of FPs/FNs overall.");
  return 0;
}
