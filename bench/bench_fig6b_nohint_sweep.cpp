// Reproduces Fig. 6(b): domains detected by belief propagation in no-hint
// mode over the operation month (C&C threshold fixed at 0.4) as the
// similarity threshold Ts sweeps 0.33..0.85, stacked by validation
// category.
#include <cstdio>
#include <map>
#include <unordered_set>

#include "bench_common.h"
#include "eval/ac_runner.h"

int main() {
  using namespace eid;
  bench::print_header("Fig. 6(b)", "No-hint belief propagation vs Ts (AC)");

  sim::AcScenario scenario(bench::ac_config());
  eval::AcRunner runner(scenario);
  runner.train();

  const std::vector<double> thresholds = {0.33, 0.5, 0.65, 0.75, 0.85};
  std::map<double, std::unordered_set<std::string>> detected;
  std::unordered_set<std::string> hosts;

  runner.run_operation([&](util::Day, const core::DayAnalysis& analysis) {
    const auto cc = runner.pipeline().detect_cc(analysis, 0.4);
    for (const double ts : thresholds) {
      const core::BpRunReport report =
          runner.pipeline().run_bp_nohint(analysis, cc, ts);
      auto& bucket = detected[ts];
      for (const auto& det : cc) bucket.insert(det.name);
      for (const auto& det : report.domains) bucket.insert(det.name);
      if (ts == thresholds.front()) {
        for (const auto& host : report.hosts) hosts.insert(host);
      }
    }
  });

  std::printf("%-10s %8s | %10s %8s %10s %6s | %7s %7s\n", "Ts", "detected",
              "VT+SOC", "new mal", "suspicious", "legit", "TDR%", "NDR%");
  for (const double ts : thresholds) {
    const std::vector<std::string> names(detected[ts].begin(), detected[ts].end());
    const eval::ValidationCounts counts =
        eval::validate_detections(names, scenario.oracle());
    std::printf("%-10.2f %8zu | %10zu %8zu %10zu %6zu | %7.2f %7.2f\n", ts,
                counts.total(), counts.known_malicious, counts.new_malicious,
                counts.suspicious, counts.legitimate, 100.0 * counts.tdr(),
                100.0 * counts.ndr());
  }
  std::printf("\ncompromised hosts associated at Ts=%.2f: %zu\n",
              thresholds.front(), hosts.size());
  bench::print_note(
      "paper (Fig. 6b): 265 -> 114 detected domains as Ts goes 0.33 -> 0.85 "
      "with TDR 76.2% -> 85.1%; 202 malicious+suspicious domains and 945 "
      "hosts in February at Ts=0.33, NDR 26.4%. Expect decreasing volume "
      "and increasing TDR with a sizeable new-discovery share.");
  return 0;
}
