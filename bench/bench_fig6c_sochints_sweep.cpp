// Reproduces Fig. 6(c): domains detected by belief propagation in SOC-hints
// mode (seeded with the IOC list) as the similarity threshold sweeps
// 0.33..0.45, stacked by validation category. Seed domains are not counted
// as detections. Also reports the overlap with the no-hint mode at the
// default thresholds (§VI-D compares 21 shared domains out of 202 + 108).
#include <cstdio>
#include <map>
#include <unordered_set>

#include "bench_common.h"
#include "eval/ac_runner.h"

int main() {
  using namespace eid;
  bench::print_header("Fig. 6(c)", "SOC-hints belief propagation vs Ts (AC)");

  sim::AcScenario scenario(bench::ac_config());
  eval::AcRunner runner(scenario);
  runner.train();

  core::SocSeeds seeds;
  seeds.domains = scenario.ioc_seeds();
  const std::unordered_set<std::string> seed_set(seeds.domains.begin(),
                                                 seeds.domains.end());
  std::printf("IOC seed domains: %zu (paper used 28)\n\n", seeds.domains.size());

  const std::vector<double> thresholds = {0.33, 0.37, 0.40, 0.41, 0.45};
  std::map<double, std::unordered_set<std::string>> detected;
  std::unordered_set<std::string> nohint_detected;

  runner.run_operation([&](util::Day, const core::DayAnalysis& analysis) {
    for (const double ts : thresholds) {
      const core::BpRunReport report =
          runner.pipeline().run_bp_sochints(analysis, seeds, ts);
      auto& bucket = detected[ts];
      for (const auto& det : report.domains) {
        if (!seed_set.contains(det.name)) bucket.insert(det.name);
      }
    }
    // No-hint run at default thresholds, for the §VI-D overlap figure.
    const auto cc = runner.pipeline().detect_cc(analysis, 0.4);
    const core::BpRunReport nohint =
        runner.pipeline().run_bp_nohint(analysis, cc, 0.33);
    for (const auto& det : cc) nohint_detected.insert(det.name);
    for (const auto& det : nohint.domains) nohint_detected.insert(det.name);
  });

  std::printf("%-10s %8s | %10s %8s %10s %6s | %7s %7s\n", "Ts", "detected",
              "VT+SOC", "new mal", "suspicious", "legit", "TDR%", "NDR%");
  for (const double ts : thresholds) {
    const std::vector<std::string> names(detected[ts].begin(), detected[ts].end());
    const eval::ValidationCounts counts =
        eval::validate_detections(names, scenario.oracle());
    std::printf("%-10.2f %8zu | %10zu %8zu %10zu %6zu | %7.2f %7.2f\n", ts,
                counts.total(), counts.known_malicious, counts.new_malicious,
                counts.suspicious, counts.legitimate, 100.0 * counts.tdr(),
                100.0 * counts.ndr());
  }

  std::size_t overlap = 0;
  for (const auto& name : detected[thresholds.front()]) {
    if (nohint_detected.contains(name)) ++overlap;
  }
  std::printf("\noverlap with no-hint mode at default thresholds: %zu of %zu "
              "(no-hint found %zu)\n",
              overlap, detected[thresholds.front()].size(),
              nohint_detected.size());
  bench::print_note(
      "paper (Fig. 6c): 137 -> 73 detected domains as Ts goes 0.33 -> 0.45 "
      "with TDR 78.8% -> 94.6%; 108 of 137 malicious/suspicious (~4x the 28 "
      "seeds); only 21 domains overlap with no-hint mode, so the paper "
      "recommends running both. Expect the same decreasing/overlap-poor "
      "shape.");
  return 0;
}
