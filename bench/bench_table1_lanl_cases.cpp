// Reproduces Table I: the four cases of the LANL challenge problem —
// dates, hint structure, and per-case campaign counts, as realized by the
// synthetic LANL scenario.
#include <cstdio>
#include <map>

#include "bench_common.h"

int main() {
  using namespace eid;
  bench::print_header("Table I", "The four cases in the LANL challenge problem");

  sim::LanlScenario scenario(bench::lanl_config());

  static const char* kDescriptions[5] = {
      "",
      "From one hint host detect the contacted malicious domains.",
      "From a set of hint hosts detect the contacted malicious domains.",
      "From one hint host detect the malicious domains and other compromised hosts.",
      "Detect malicious domains and compromised hosts without hint.",
  };

  std::map<int, std::vector<const sim::LanlCase*>> by_case;
  for (const auto& challenge : scenario.cases()) {
    by_case[challenge.case_id].push_back(&challenge);
  }

  std::printf("%-4s | %-72s | %-28s | %s\n", "Case", "Description", "Dates",
              "Hint hosts");
  std::printf("-----+-%.72s-+-%.28s-+-----------\n",
              "------------------------------------------------------------------------",
              "----------------------------");
  for (const auto& [case_id, cases] : by_case) {
    std::string dates;
    std::size_t min_hints = 99;
    std::size_t max_hints = 0;
    for (const sim::LanlCase* c : cases) {
      const util::CivilDate civil = util::civil_from_days(c->day);
      if (!dates.empty()) dates += ", ";
      dates += std::to_string(civil.month) + "/" + std::to_string(civil.day);
      min_hints = std::min(min_hints, c->hint_hosts.size());
      max_hints = std::max(max_hints, c->hint_hosts.size());
    }
    std::string hints;
    if (max_hints == 0) {
      hints = "No hints";
    } else if (min_hints == max_hints) {
      hints = std::to_string(min_hints) + " per day";
    } else {
      hints = std::to_string(min_hints) + " to " + std::to_string(max_hints) +
              " per day";
    }
    std::printf("%-4d | %-72s | %-28s | %s\n", case_id, kDescriptions[case_id],
                dates.c_str(), hints.c_str());
  }

  std::printf("\nPer-campaign ground truth (simulated):\n");
  std::printf("%-4s %-10s %-5s %-8s %-8s %s\n", "Case", "Date", "Camp", "Victims",
              "Domains", "Training?");
  for (const auto& challenge : scenario.cases()) {
    std::printf("%-4d %-10s %-5d %-8zu %-8zu %s\n", challenge.case_id,
                util::format_day(challenge.day).c_str(), challenge.campaign_id,
                challenge.victim_hosts.size(), challenge.answer_domains.size(),
                challenge.training ? "train" : "test");
  }
  bench::print_note(
      "paper: 20 expert-simulated campaigns; 5 in case 1, 7 in case 2, 7 in "
      "case 3, 1 in case 4 (Table I), half used for parameter selection "
      "(§V-B)");
  return 0;
}
