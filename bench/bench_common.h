// Shared scaffolding for the reproduction benches: canonical scenario
// configurations (a consistent scaled-down world across all tables and
// figures) and plain-text table/CDF printers. Each bench binary is
// self-contained and regenerates one table or figure of the paper.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/ac.h"
#include "sim/lanl.h"

namespace eid::bench {

/// Canonical LANL world for the benches (DNS flavor, ~1000 hosts —
/// scaled from LANL's ~80k; see DESIGN.md §2).
inline sim::LanlConfig lanl_config() {
  sim::LanlConfig config;
  config.seed = 7;
  config.n_hosts = 1000;
  config.n_servers = 12;
  config.n_popular = 400;
  config.tail_per_day = 300;
  config.automated_tail_per_day = 10;
  config.server_tail_per_day = 150;
  return config;
}

/// Canonical AC world for the benches (proxy flavor, ~800 hosts — scaled
/// from the enterprise's >100k).
inline sim::AcConfig ac_config() {
  sim::AcConfig config;
  config.seed = 11;
  config.n_hosts = 800;
  config.n_popular = 400;
  config.tail_per_day = 250;
  config.automated_tail_per_day = 10;
  config.grayware_per_day = 4;
  config.campaigns_per_week = 6.0;
  return config;
}

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

/// Empirical CDF evaluated at the given x grid, printed one row per point.
inline void print_cdf(const std::string& label, std::vector<double> values,
                      const std::vector<double>& grid) {
  std::sort(values.begin(), values.end());
  std::printf("%s (n=%zu)\n", label.c_str(), values.size());
  for (const double x : grid) {
    const auto it = std::upper_bound(values.begin(), values.end(), x);
    const double frac =
        values.empty()
            ? 0.0
            : static_cast<double>(it - values.begin()) / static_cast<double>(values.size());
    std::printf("  x=%10.2f  F(x)=%.4f\n", x, frac);
  }
}

/// Fraction of values <= x.
inline double cdf_at(std::vector<double> values, double x) {
  std::size_t count = 0;
  for (const double v : values) {
    if (v <= x) ++count;
  }
  return values.empty() ? 0.0
                        : static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace eid::bench
