// Shared scaffolding for the reproduction benches: canonical scenario
// configurations (a consistent scaled-down world across all tables and
// figures) and plain-text table/CDF printers. Each bench binary is
// self-contained and regenerates one table or figure of the paper.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/ac.h"
#include "sim/lanl.h"

namespace eid::bench {

/// Host core count for the BENCH_perf.json record — timings from a
/// 1-core CI runner and a 16-core workstation are not comparable, so
/// every section stamps the hardware it ran on.
inline unsigned cpu_cores() { return std::thread::hardware_concurrency(); }

/// Parse "--json" / "--json=path" out of argv (removing it); returns the
/// output path ("" when the flag is absent). The default path is relative
/// to the working directory — run the benches from the repo root (or pass
/// --json=/abs/path) so every writer lands in the one tracked
/// BENCH_perf.json instead of forking per-CWD copies.
inline std::string take_json_flag(int& argc, char** argv,
                                  const std::string& default_path) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      path = default_path;
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      if (path.empty()) path = default_path;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[out] = nullptr;  // keep the argv NULL sentinel the C standard promises
  return path;
}

namespace detail {

/// Scan one JSON value starting at `i` (object/array/string/scalar) and
/// return the index one past its end, or std::string::npos on malformed
/// input. Understands string escapes; enough for the files we write.
inline std::size_t skip_json_value(const std::string& text, std::size_t i) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        if (depth == 0) return i + 1;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (depth == 0) return i;  // close bracket terminating a bare scalar
      --depth;
      if (depth == 0) return i + 1;
    } else if (depth == 0 && c == ',') {
      return i;  // comma terminating a bare scalar
    }
  }
  return depth == 0 && !in_string ? i : std::string::npos;
}

}  // namespace detail

/// Merge `body` (a JSON value, normally an object) under top-level key
/// `section` of the JSON file at `path`, preserving every other top-level
/// section — so bench_perf_pipeline and bench_throughput_day can share one
/// BENCH_perf.json. On unreadable/malformed existing content the file is
/// rewritten with just this section.
inline bool write_json_section(const std::string& path,
                               const std::string& section,
                               const std::string& body) {
  std::vector<std::pair<std::string, std::string>> sections;
  if (std::ifstream in(path); in) {
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    // Collect existing top-level "key": <value> pairs.
    std::size_t i = text.find('{');
    bool ok = i != std::string::npos;
    while (ok) {
      i = text.find_first_not_of(" \t\r\n,", i + 1);
      if (i == std::string::npos) {
        ok = false;
        break;
      }
      if (text[i] == '}') break;
      if (text[i] != '"') {
        ok = false;
        break;
      }
      // Escape-aware key scan (a key with \" must not truncate early —
      // the rewrite would emit a trailing backslash and corrupt the file).
      std::size_t key_end = std::string::npos;
      for (std::size_t k = i + 1; k < text.size(); ++k) {
        if (text[k] == '\\') {
          ++k;
        } else if (text[k] == '"') {
          key_end = k;
          break;
        }
      }
      const std::size_t colon =
          key_end == std::string::npos ? key_end : text.find(':', key_end);
      if (colon == std::string::npos) {
        ok = false;
        break;
      }
      const std::string key = text.substr(i + 1, key_end - i - 1);
      const std::size_t value_begin =
          text.find_first_not_of(" \t\r\n", colon + 1);
      const std::size_t value_end =
          value_begin == std::string::npos
              ? std::string::npos
              : detail::skip_json_value(text, value_begin);
      if (value_end == std::string::npos) {
        ok = false;
        break;
      }
      sections.emplace_back(key,
                            text.substr(value_begin, value_end - value_begin));
      i = value_end - 1;
    }
    if (!ok) sections.clear();
  }

  bool replaced = false;
  for (auto& [key, value] : sections) {
    if (key == section) {
      value = body;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(section, body);

  // Write-then-rename so a concurrent reader never sees a half-written
  // file (which the malformed-content fallback would otherwise interpret
  // as "discard the other bench's section"). Two --json writers running
  // at the same instant still race read-modify-write (last rename wins);
  // run the benches sequentially when recording.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "{\n";
    for (std::size_t s = 0; s < sections.size(); ++s) {
      out << "  \"" << sections[s].first << "\": " << sections[s].second
          << (s + 1 < sections.size() ? ",\n" : "\n");
    }
    out << "}\n";
    out.flush();  // surface disk-full before promoting the tmp file
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Canonical LANL world for the benches (DNS flavor, ~1000 hosts —
/// scaled from LANL's ~80k; see DESIGN.md §2).
inline sim::LanlConfig lanl_config() {
  sim::LanlConfig config;
  config.seed = 7;
  config.n_hosts = 1000;
  config.n_servers = 12;
  config.n_popular = 400;
  config.tail_per_day = 300;
  config.automated_tail_per_day = 10;
  config.server_tail_per_day = 150;
  return config;
}

/// Canonical AC world for the benches (proxy flavor, ~800 hosts — scaled
/// from the enterprise's >100k).
inline sim::AcConfig ac_config() {
  sim::AcConfig config;
  config.seed = 11;
  config.n_hosts = 800;
  config.n_popular = 400;
  config.tail_per_day = 250;
  config.automated_tail_per_day = 10;
  config.grayware_per_day = 4;
  config.campaigns_per_week = 6.0;
  return config;
}

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

/// Empirical CDF evaluated at the given x grid, printed one row per point.
inline void print_cdf(const std::string& label, std::vector<double> values,
                      const std::vector<double>& grid) {
  std::sort(values.begin(), values.end());
  std::printf("%s (n=%zu)\n", label.c_str(), values.size());
  for (const double x : grid) {
    const auto it = std::upper_bound(values.begin(), values.end(), x);
    const double frac =
        values.empty()
            ? 0.0
            : static_cast<double>(it - values.begin()) / static_cast<double>(values.size());
    std::printf("  x=%10.2f  F(x)=%.4f\n", x, frac);
  }
}

/// Fraction of values <= x.
inline double cdf_at(std::vector<double> values, double x) {
  std::size_t count = 0;
  for (const double v : values) {
    if (v <= x) ++count;
  }
  return values.empty() ? 0.0
                        : static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace eid::bench
