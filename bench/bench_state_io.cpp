// State-persistence benchmark: the legacy line-oriented text formats
// versus the binary container (storage/state.h) on a month-scale profile
// corpus — bytes on disk and save/load wall time for the domain history,
// the UA history, and the combined detector state. The paper's system
// carries months of accumulated histories between daily batches (§III-E);
// at enterprise scale that file is rewritten and re-read every day, so
// both size and load latency are operational costs.
//
// Pass --json[=path] to record the results as the "state_io" section of
// BENCH_perf.json at the repo root (run from the repo root).
//
// Corpus shape mirrors a real profile: a domain history of distinct folded
// domains, and a UA history whose rare entries each list the distinct
// corp hosts that used the UA — host names repeat across thousands of UA
// entries, which is exactly what the shared interned string table
// collapses to 1-3 byte ids.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "profile/persistence.h"
#include "storage/delta.h"
#include "storage/state.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace {

using namespace eid;

struct Corpus {
  profile::DomainHistory domains;
  profile::UaHistory uas{10};
  std::size_t n_domains = 0;
  std::size_t n_uas = 0;
  std::size_t n_hosts = 0;
};

Corpus build_corpus() {
  Corpus corpus;
  util::Rng rng(42);

  // Host pool: workstation names as DHCP hands them out.
  constexpr std::size_t kHosts = 6000;
  std::vector<std::string> hosts;
  hosts.reserve(kHosts);
  for (std::size_t h = 0; h < kHosts; ++h) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "workstation-%05zu.%s.ad.corp.example.com",
                  h, h % 3 == 0 ? "nyc" : (h % 3 == 1 ? "sfo" : "lon"));
    hosts.emplace_back(buf);
  }

  // Domain history: a month of distinct folded destinations.
  constexpr std::size_t kDomains = 20000;
  {
    std::vector<std::string> domains;
    domains.reserve(kDomains);
    for (std::size_t d = 0; d < kDomains; ++d) {
      char buf[80];
      switch (d % 4) {
        case 0:
          std::snprintf(buf, sizeof(buf), "site-%06zu.example-brand.com", d);
          break;
        case 1:
          std::snprintf(buf, sizeof(buf), "cdn%02zu.assets-%05zu.edgecast.net",
                        d % 16, d);
          break;
        case 2:
          std::snprintf(buf, sizeof(buf), "api.partner-%06zu.io", d);
          break;
        default:
          std::snprintf(buf, sizeof(buf), "mail-%06zu.hosting.example.org", d);
          break;
      }
      domains.emplace_back(buf);
    }
    corpus.domains.update(domains);
    corpus.n_domains = corpus.domains.size();
  }

  // UA history: enterprise software population. ~10% popular, the rest
  // rare with 6..9 distinct hosts drawn from the shared pool (entries near
  // the popularity threshold dominate bytes: each lists almost
  // rare_threshold hosts).
  constexpr std::size_t kUas = 150000;
  for (std::size_t u = 0; u < kUas; ++u) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "Mozilla/5.0 (Windows NT 10.0; Win64; x64) "
                  "AppleWebKit/537.36 (KHTML, like Gecko) "
                  "CorpApp-%05zu/%zu.%zu.%zu",
                  u, 1 + u % 7, u % 10, u % 4);
    const std::string ua(buf);
    if (u % 10 == 0) {
      corpus.uas.restore_entry(ua, true, {});
      continue;
    }
    const std::size_t n = 6 + rng.uniform(4);
    std::vector<std::string_view> ua_hosts;
    ua_hosts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ua_hosts.push_back(hosts[rng.uniform(kHosts)]);
    }
    corpus.uas.restore_entry(ua, false,
                             {ua_hosts.data(), ua_hosts.size()});
  }
  corpus.n_uas = corpus.uas.distinct_uas();
  corpus.n_hosts = kHosts;
  return corpus;
}

double seconds_of(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (s < best) best = s;
  }
  return best;
}

std::size_t file_bytes(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

struct FormatResult {
  std::size_t bytes = 0;
  double save_seconds = 0.0;
  double load_seconds = 0.0;
};

void abort_on(bool failed, const char* what) {
  if (!failed) return;
  std::fprintf(stderr, "bench_state_io: %s failed\n", what);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      eid::bench::take_json_flag(argc, argv, "BENCH_perf.json");

  bench::print_header("STATE-IO", "profile persistence: text vs binary container");
  std::printf("building corpus...\n");
  const Corpus corpus = build_corpus();
  std::printf("corpus: %zu domains, %zu UAs (host pool %zu)\n",
              corpus.n_domains, corpus.n_uas, corpus.n_hosts);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "eid-bench-state-io";
  std::filesystem::create_directories(dir);
  const auto dom_text = dir / "domains.txt.hist";
  const auto ua_text = dir / "uas.txt.hist";
  const auto dom_bin = dir / "domains.bin.hist";
  const auto ua_bin = dir / "uas.bin.hist";
  const auto state_bin = dir / "detector.state";

  FormatResult text;
  FormatResult binary;

  // Saves run best-of-5: the save-speedup floor asserted below needs
  // stable minima on a loaded machine.
  text.save_seconds = seconds_of(
      [&] {
        abort_on(!profile::save_domain_history(corpus.domains, dom_text),
                 "text domain save");
        abort_on(!profile::save_ua_history(corpus.uas, ua_text), "text ua save");
      },
      5);
  text.bytes = file_bytes(dom_text) + file_bytes(ua_text);

  binary.save_seconds = seconds_of(
      [&] {
        abort_on(!storage::save_domain_history(corpus.domains, dom_bin),
                 "binary domain save");
        abort_on(!storage::save_ua_history(corpus.uas, ua_bin), "binary ua save");
      },
      5);
  binary.bytes = file_bytes(dom_bin) + file_bytes(ua_bin);

  // Loads go through the same auto-detecting profile entry points for both
  // formats — the migration contract this bench guards. The previously
  // loaded copy is destroyed outside the timed region (both formats
  // restore into identical structures, so teardown is format-independent).
  std::optional<profile::DomainHistory> loaded_domains;
  std::optional<profile::UaHistory> loaded_uas;
  const auto time_load = [&](const std::filesystem::path& dom,
                             const std::filesystem::path& ua) {
    double best = 1e300;
    for (int r = 0; r < 3; ++r) {
      loaded_domains.reset();
      loaded_uas.reset();
      const double s = seconds_of(
          [&] {
            loaded_domains = profile::load_domain_history(dom);
            loaded_uas = profile::load_ua_history(ua);
          },
          1);
      abort_on(!loaded_domains.has_value() || !loaded_uas.has_value(), "load");
      abort_on(loaded_domains->size() != corpus.n_domains ||
                   loaded_uas->distinct_uas() != corpus.n_uas,
               "load consistency check");
      if (s < best) best = s;
    }
    return best;
  };
  text.load_seconds = time_load(dom_text, ua_text);
  binary.load_seconds = time_load(dom_bin, ua_bin);

  // Full detector-state checkpoint (no text equivalent): absolute cost of
  // the daily save a durable deployment pays.
  storage::DetectorState state;
  state.domain_history = corpus.domains;
  state.ua_history = corpus.uas;
  const double state_save_seconds = seconds_of(
      [&] { abort_on(!storage::save_detector_state(state, state_bin),
                     "state save"); });
  std::optional<storage::DetectorState> loaded_state;
  double state_load_seconds = 1e300;
  for (int r = 0; r < 3; ++r) {
    loaded_state.reset();
    const double s = seconds_of(
        [&] { loaded_state = storage::load_detector_state(state_bin); }, 1);
    abort_on(!loaded_state.has_value(), "state load");
    if (s < state_load_seconds) state_load_seconds = s;
  }
  const std::size_t state_bytes = file_bytes(state_bin);

  // Delta checkpoint (storage/delta.h): one day's growth — new domains,
  // touched UA entries, the always-small absolute sections — appended as
  // a frame, versus rewriting the month-scale state above. This is the
  // daily-save cost a chain deployment actually pays between compactions.
  const auto chain_path = storage::delta_chain_path(state_bin);
  std::vector<std::string> day_domains;
  for (std::size_t d = 0; d < 300; ++d) {
    day_domains.push_back("fresh-" + std::to_string(d) + ".example.net");
  }
  std::vector<std::string> day_uas;
  std::vector<std::string> day_hosts;
  for (std::size_t u = 0; u < 800; ++u) {
    day_uas.push_back("CorpApp-Delta-" + std::to_string(u) + "/1.0");
  }
  for (std::size_t h = 0; h < 400; ++h) {
    day_hosts.push_back("workstation-" + std::to_string(h) +
                        ".nyc.ad.corp.example.com");
  }
  util::Rng delta_rng(7);
  storage::DeltaInputs day;
  {
    std::string base_file_bytes;
    {
      std::ifstream in(state_bin, std::ios::binary);
      base_file_bytes.assign(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
    }
    abort_on(base_file_bytes.empty(), "base checkpoint read");
    day.base_crc = util::crc32(base_file_bytes);
  }
  day.day = 400;
  day.days_ingested = 30;
  day.new_domains = &day_domains;
  day.ua_entries.reserve(day_uas.size());
  for (const std::string& ua : day_uas) {
    storage::DeltaUaEntryView entry;
    entry.ua = ua;
    const std::size_t n = 6 + delta_rng.uniform(4);
    for (std::size_t i = 0; i < n; ++i) {
      entry.hosts.push_back(day_hosts[delta_rng.uniform(day_hosts.size())]);
    }
    day.ua_entries.push_back(std::move(entry));
  }
  const core::PipelineConfig delta_config;
  const core::ScoredModel delta_model;
  day.config = &delta_config;
  day.cc_model = &delta_model;
  day.sim_model = &delta_model;
  day.training.models_ready = true;
  day.counters.days_operated = 30;
  day.has_cursor = true;
  day.cursor_day = 400;
  day.cursor_offset = 1 << 20;

  double delta_save_seconds = 1e300;
  std::size_t delta_frame_bytes = 0;
  for (int r = 0; r < 5; ++r) {
    std::filesystem::remove(chain_path);
    day.seq = 1;
    const double s = seconds_of(
        [&] {
          const std::string payload = storage::encode_delta_frame(day);
          delta_frame_bytes = payload.size();
          abort_on(!storage::append_delta_frame(chain_path, payload),
                   "delta append");
          ++day.seq;
        },
        1);
    if (s < delta_save_seconds) delta_save_seconds = s;
  }
  std::filesystem::remove(chain_path);
  const double delta_vs_full_speedup =
      delta_save_seconds > 0 ? state_save_seconds / delta_save_seconds : 0.0;

  const double size_ratio =
      binary.bytes > 0 ? static_cast<double>(text.bytes) /
                             static_cast<double>(binary.bytes)
                       : 0.0;
  const double load_speedup =
      binary.load_seconds > 0 ? text.load_seconds / binary.load_seconds : 0.0;
  const double save_speedup =
      binary.save_seconds > 0 ? text.save_seconds / binary.save_seconds : 0.0;

  std::printf("\n%-22s %14s %14s\n", "", "text", "binary");
  std::printf("%-22s %14zu %14zu\n", "bytes on disk", text.bytes, binary.bytes);
  std::printf("%-22s %14.3f %14.3f\n", "save seconds", text.save_seconds,
              binary.save_seconds);
  std::printf("%-22s %14.3f %14.3f\n", "load seconds", text.load_seconds,
              binary.load_seconds);
  std::printf("\nbinary is %.2fx smaller, loads %.2fx faster, saves %.2fx faster\n",
              size_ratio, load_speedup, save_speedup);
  std::printf("full detector state: %zu bytes, save %.3fs, load %.3fs\n",
              state_bytes, state_save_seconds, state_load_seconds);
  std::printf("delta frame (one day): %zu bytes, save %.5fs — %.1fx faster "
              "than the full rewrite\n",
              delta_frame_bytes, delta_save_seconds, delta_vs_full_speedup);

  // Regression floor for the binary save path. Before the hashed table
  // index, the id sorts and the writer reserves, binary save ran at a
  // 0.42x "speedup" (2.4x slower than text); it now lands at ~0.45-0.50x
  // on one core. Fail the bench if the encode regresses back toward the
  // per-string binary-search behavior. (Text save is a raw sequential
  // dump — no sort, no dedup, no checksum, no fsync — so parity is not
  // the bar; not regressing the gap is.)
  constexpr double kMinSaveSpeedup = 0.42;
  if (save_speedup < kMinSaveSpeedup) {
    std::fprintf(stderr,
                 "bench_state_io: binary save regressed: %.3fx speedup vs "
                 "text (floor %.2fx)\n",
                 save_speedup, kMinSaveSpeedup);
    return 1;
  }
  std::printf("binary save speedup %.2fx >= %.2fx floor: ok\n", save_speedup,
              kMinSaveSpeedup);

  // The whole point of the delta chain is that daily saves stop paying
  // for the month: a day frame must beat the full rewrite by a wide
  // margin, not scrape past it.
  constexpr double kMinDeltaSpeedup = 3.0;
  if (delta_vs_full_speedup < kMinDeltaSpeedup) {
    std::fprintf(stderr,
                 "bench_state_io: delta save only %.2fx faster than the "
                 "full rewrite (floor %.1fx)\n",
                 delta_vs_full_speedup, kMinDeltaSpeedup);
    return 1;
  }
  std::printf("delta save speedup %.2fx >= %.1fx floor: ok\n",
              delta_vs_full_speedup, kMinDeltaSpeedup);

  std::filesystem::remove_all(dir);

  if (!json_path.empty()) {
    std::ostringstream body;
    body.precision(6);
    body << "{\n"
         << "    \"cpu_cores\": " << eid::bench::cpu_cores() << ",\n"
         << "    \"corpus\": {\"domains\": " << corpus.n_domains
         << ", \"uas\": " << corpus.n_uas << ", \"hosts\": " << corpus.n_hosts
         << "},\n"
         << "    \"text\": {\"bytes\": " << text.bytes
         << ", \"save_seconds\": " << text.save_seconds
         << ", \"load_seconds\": " << text.load_seconds << "},\n"
         << "    \"binary\": {\"bytes\": " << binary.bytes
         << ", \"save_seconds\": " << binary.save_seconds
         << ", \"load_seconds\": " << binary.load_seconds << "},\n"
         << "    \"detector_state\": {\"bytes\": " << state_bytes
         << ", \"save_seconds\": " << state_save_seconds
         << ", \"load_seconds\": " << state_load_seconds << "},\n"
         << "    \"delta_frame_bytes\": " << delta_frame_bytes << ",\n"
         << "    \"delta_save_seconds\": " << delta_save_seconds << ",\n"
         << "    \"delta_vs_full_speedup\": " << delta_vs_full_speedup
         << ",\n"
         << "    \"size_ratio\": " << size_ratio
         << ",\n    \"load_speedup\": " << load_speedup
         << ",\n    \"save_speedup\": " << save_speedup << "\n  }";
    if (eid::bench::write_json_section(json_path, "state_io", body.str())) {
      std::printf("recorded state_io section of %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
