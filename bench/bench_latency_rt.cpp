// Real-time continuous detection: event→emission latency and tick
// throughput (rt/engine.h). The batch system's detection latency floor is
// one full day — an infection at 09:00 surfaces at midnight. The
// continuous engine re-scores a sliding window every tick and announces
// never-seen-before domains as provisional incidents, so its floor is
// detection lag + one tick. This bench replays one operation day of the
// canonical AC world through the engine at several tick sizes and records:
//
//   * provisional emission latency (sim-time, nearest-rank p50/p99/max),
//   * tick/event throughput (wall time, replay runs at hardware speed),
//   * and that the day-close DayReport stays bit-identical to run_day —
//     the bench fails if continuous mode diverges from batch.
//
// The trained detector is checkpointed once and restored per config
// (storage/state.h), so every run starts from an identical state.
//
// Pass --json[=path] to record the results as the "latency_rt" section of
// BENCH_perf.json at the repo root (run from the repo root).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/event_source.h"
#include "bench_common.h"
#include "core/report_json.h"
#include "eval/ac_runner.h"
#include "rt/engine.h"

namespace {

using namespace eid;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct ConfigResult {
  std::int64_t tick_seconds = 0;
  std::size_t ticks_closed = 0;
  std::size_t evaluations = 0;
  std::size_t provisional_emissions = 0;
  std::size_t finalized_emissions = 0;
  std::size_t peak_buffered_events = 0;
  rt::LatencySummary latency{};
  double run_seconds = 0.0;
  double events_per_second = 0.0;
  double ticks_per_second = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      eid::bench::take_json_flag(argc, argv, "BENCH_perf.json");

  bench::print_header("LATENCY-RT",
                      "continuous engine: emission latency + tick throughput");
  bench::print_note(
      "sim-time latency is deterministic; wall-time throughput varies with "
      "the machine");

  sim::AcScenario scenario(bench::ac_config());
  eval::AcRunner runner(scenario);
  std::printf("training on January...\n");
  runner.train();

  // Checkpoint the trained state once; every measured run restores it so
  // batch and continuous start bit-identical.
  const std::filesystem::path state_path =
      std::filesystem::temp_directory_path() / "eid-bench-latency-rt.state";
  if (!runner.detector().save_state(state_path)) {
    std::fprintf(stderr, "bench_latency_rt: checkpoint save failed\n");
    return 1;
  }

  const util::Day day = scenario.operation_begin();
  // The simulator is forward-only: materialize the day once and replay it
  // from memory for every config.
  const std::vector<logs::ConnEvent> events =
      scenario.simulator().reduced_day(day);
  core::SocSeeds seeds;
  seeds.domains = scenario.ioc_seeds();
  std::printf("operation day %s: %zu events, %zu IOC seeds\n",
              util::format_day(day).c_str(), events.size(),
              seeds.domains.size());

  const auto fresh_detector = [&] {
    api::Detector detector(core::PipelineConfig{},
                           scenario.simulator().whois());
    if (!detector.load_state(state_path)) {
      std::fprintf(stderr, "bench_latency_rt: checkpoint restore failed\n");
      std::exit(1);
    }
    return detector;
  };

  // Batch baseline: the report every continuous run must close with.
  double batch_seconds = 0.0;
  std::string baseline;
  {
    api::Detector detector = fresh_detector();
    api::VectorSource source(day, &events);
    const auto start = std::chrono::steady_clock::now();
    const core::DayReport report = detector.run_day(source, day, seeds);
    batch_seconds = seconds_since(start);
    baseline = core::day_report_to_json(report);
    std::printf("batch run_day: %.3fs, %zu C&C, %zu no-hint, %zu soc-hints\n",
                batch_seconds, report.cc_domains.size(),
                report.nohint.domains.size(), report.sochints.domains.size());
  }

  constexpr std::int64_t kTicks[] = {300, 3600, 86400};
  std::vector<ConfigResult> results;
  for (const std::int64_t tick : kTicks) {
    api::Detector detector = fresh_detector();
    rt::EngineConfig config;
    config.window.tick_seconds = tick;
    config.seeds = seeds;
    api::VectorSource source(day, &events);
    const auto start = std::chrono::steady_clock::now();
    const rt::ContinuousReport report =
        detector.run_continuous(source, config);
    const double run_seconds = seconds_since(start);

    if (report.days.size() != 1 ||
        core::day_report_to_json(report.days[0]) != baseline) {
      std::fprintf(stderr,
                   "bench_latency_rt: tick=%lld day-close report diverged "
                   "from batch run_day\n",
                   static_cast<long long>(tick));
      return 1;
    }

    ConfigResult r;
    r.tick_seconds = tick;
    r.ticks_closed = report.stats.ticks_closed;
    r.evaluations = report.stats.evaluations;
    r.provisional_emissions = report.stats.provisional_emissions;
    r.finalized_emissions = report.stats.finalized_emissions;
    r.peak_buffered_events = report.stats.peak_buffered_events;
    r.latency = rt::summarize_latency(report.emissions,
                                      /*provisional_only=*/true);
    r.run_seconds = run_seconds;
    r.events_per_second =
        run_seconds > 0 ? static_cast<double>(events.size()) / run_seconds : 0;
    r.ticks_per_second =
        run_seconds > 0 ? static_cast<double>(r.ticks_closed) / run_seconds : 0;
    results.push_back(r);
  }

  std::printf("\n%8s %6s %6s %6s %6s %10s %10s %10s %9s %10s\n", "tick", "ticks",
              "evals", "prov", "final", "p50 lat", "p99 lat", "max lat",
              "wall s", "events/s");
  for (const ConfigResult& r : results) {
    std::printf("%7llds %6zu %6zu %6zu %6zu %9.0fs %9.0fs %9.0fs %9.3f %10.0f\n",
                static_cast<long long>(r.tick_seconds), r.ticks_closed,
                r.evaluations, r.provisional_emissions, r.finalized_emissions,
                r.latency.p50_seconds, r.latency.p99_seconds,
                r.latency.max_seconds, r.run_seconds, r.events_per_second);
  }
  std::printf("\nday-close reports bit-identical to batch at every tick size: ok\n");

  if (!json_path.empty()) {
    std::ostringstream body;
    body.precision(6);
    body << "{\n"
         << "    \"cpu_cores\": " << eid::bench::cpu_cores()
         << ",\n    \"day_events\": " << events.size()
         << ",\n    \"batch_seconds\": " << batch_seconds
         << ",\n    \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ConfigResult& r = results[i];
      body << "      {\"tick_seconds\": " << r.tick_seconds
           << ", \"ticks_closed\": " << r.ticks_closed
           << ", \"evaluations\": " << r.evaluations
           << ", \"provisional_emissions\": " << r.provisional_emissions
           << ", \"finalized_emissions\": " << r.finalized_emissions
           << ", \"peak_buffered_events\": " << r.peak_buffered_events
           << ", \"latency_count\": " << r.latency.count
           << ", \"latency_p50_seconds\": " << r.latency.p50_seconds
           << ", \"latency_p99_seconds\": " << r.latency.p99_seconds
           << ", \"latency_max_seconds\": " << r.latency.max_seconds
           << ", \"run_seconds\": " << r.run_seconds
           << ", \"events_per_second\": " << r.events_per_second
           << ", \"ticks_per_second\": " << r.ticks_per_second
           << ", \"batch_identical\": true}"
           << (i + 1 < results.size() ? ",\n" : "\n");
    }
    body << "    ]\n  }";
    if (eid::bench::write_json_section(json_path, "latency_rt", body.str())) {
      std::printf("recorded latency_rt section of %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }

  std::error_code ec;
  std::filesystem::remove(state_path, ec);
  return 0;
}
