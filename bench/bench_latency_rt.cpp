// Real-time continuous detection: event→emission latency and tick
// throughput (rt/engine.h). The batch system's detection latency floor is
// one full day — an infection at 09:00 surfaces at midnight. The
// continuous engine re-scores a sliding window every tick and announces
// never-seen-before domains as provisional incidents, so its floor is
// detection lag + one tick. This bench replays one operation day of the
// canonical AC world through the engine at several tick sizes, in both
// window modes — incremental (cached per-bucket partials, the default) and
// rebuild (re-ingest the window's raw events every tick, the
// WindowConfig::incremental = false escape hatch) — and records:
//
//   * provisional emission latency (sim-time, nearest-rank p50/p99/max),
//   * wall time of each mode plus rt_incremental_speedup (rebuild /
//     incremental) and the per-tick evaluation cost distribution
//     (tick_p50/p99_seconds),
//   * peak raw-event backlog of each mode — incremental seals evaluated
//     buckets into partials and drops their raw events, so its peak must
//     stay well below the day's event count (asserted below),
//   * and that both modes close the day bit-identical to run_day AND emit
//     identical provisional incident sequences — the bench fails if
//     either mode diverges.
//
// The trained detector is checkpointed once and restored per config
// (storage/state.h), so every run starts from an identical state.
//
// Pass --json[=path] to record the results as the "latency_rt" section of
// BENCH_perf.json at the repo root (run from the repo root).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "api/event_source.h"
#include "bench_common.h"
#include "core/report_json.h"
#include "eval/ac_runner.h"
#include "rt/engine.h"

namespace {

using namespace eid;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Nearest-rank percentile of an (unsorted) sample; 0 when empty.
double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::max<long long>(0, static_cast<long long>(p * sample.size() + 0.5) - 1));
  return sample[std::min(rank, sample.size() - 1)];
}

/// Every field of every emission, serialized for exact sequence comparison
/// between the incremental and rebuild runs.
std::string emission_fingerprint(const std::vector<rt::IncidentEmission>& es) {
  std::ostringstream out;
  for (const rt::IncidentEmission& e : es) {
    out << e.incident_id << '|' << e.provisional << '|' << e.new_incident
        << '|' << e.day << '|' << e.event_time << '|' << e.emission_time << '|'
        << e.latency_seconds << '|';
    for (const std::string& d : e.domains) out << d << ',';
    out << '|';
    for (const std::string& h : e.hosts) out << h << ',';
    out << '\n';
  }
  return out.str();
}

struct ModeResult {
  double run_seconds = 0.0;
  double tick_p50_seconds = 0.0;
  double tick_p99_seconds = 0.0;
  std::size_t peak_buffered_events = 0;
  rt::ContinuousReport report;
};

struct ConfigResult {
  std::int64_t tick_seconds = 0;
  std::size_t ticks_closed = 0;
  std::size_t evaluations = 0;
  std::size_t provisional_emissions = 0;
  std::size_t finalized_emissions = 0;
  rt::LatencySummary latency{};
  ModeResult incremental;
  ModeResult rebuild;
  double speedup = 0.0;
  double events_per_second = 0.0;
  double ticks_per_second = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      eid::bench::take_json_flag(argc, argv, "BENCH_perf.json");

  bench::print_header("LATENCY-RT",
                      "continuous engine: emission latency + tick throughput");
  bench::print_note(
      "sim-time latency is deterministic; wall-time throughput and the "
      "incremental speedup vary with the machine");

  sim::AcScenario scenario(bench::ac_config());
  eval::AcRunner runner(scenario);
  std::printf("training on January...\n");
  runner.train();

  // Checkpoint the trained state once; every measured run restores it so
  // batch and continuous start bit-identical.
  const std::filesystem::path state_path =
      std::filesystem::temp_directory_path() / "eid-bench-latency-rt.state";
  if (!runner.detector().save_state(state_path)) {
    std::fprintf(stderr, "bench_latency_rt: checkpoint save failed\n");
    return 1;
  }

  const util::Day day = scenario.operation_begin();
  // The simulator is forward-only: materialize the day once and replay it
  // from memory for every config.
  const std::vector<logs::ConnEvent> events =
      scenario.simulator().reduced_day(day);
  core::SocSeeds seeds;
  seeds.domains = scenario.ioc_seeds();
  std::printf("operation day %s: %zu events, %zu IOC seeds\n",
              util::format_day(day).c_str(), events.size(),
              seeds.domains.size());

  const auto fresh_detector = [&] {
    api::Detector detector(core::PipelineConfig{},
                           scenario.simulator().whois());
    if (!detector.load_state(state_path)) {
      std::fprintf(stderr, "bench_latency_rt: checkpoint restore failed\n");
      std::exit(1);
    }
    return detector;
  };

  // Batch baseline: the report every continuous run must close with.
  double batch_seconds = 0.0;
  std::string baseline;
  {
    api::Detector detector = fresh_detector();
    api::VectorSource source(day, &events);
    const auto start = std::chrono::steady_clock::now();
    const core::DayReport report = detector.run_day(source, day, seeds);
    batch_seconds = seconds_since(start);
    baseline = core::day_report_to_json(report);
    std::printf("batch run_day: %.3fs, %zu C&C, %zu no-hint, %zu soc-hints\n",
                batch_seconds, report.cc_domains.size(),
                report.nohint.domains.size(), report.sochints.domains.size());
  }

  const auto run_mode = [&](std::int64_t tick, bool incremental) {
    api::Detector detector = fresh_detector();
    rt::EngineConfig config;
    config.window.tick_seconds = tick;
    config.window.incremental = incremental;
    config.seeds = seeds;
    api::VectorSource source(day, &events);
    const auto start = std::chrono::steady_clock::now();
    ModeResult r;
    r.report = detector.run_continuous(source, config);
    r.run_seconds = seconds_since(start);
    r.tick_p50_seconds = percentile(r.report.tick_eval_seconds, 0.50);
    r.tick_p99_seconds = percentile(r.report.tick_eval_seconds, 0.99);
    r.peak_buffered_events = r.report.stats.peak_buffered_events;
    if (r.report.days.size() != 1 ||
        core::day_report_to_json(r.report.days[0]) != baseline) {
      std::fprintf(stderr,
                   "bench_latency_rt: tick=%lld %s day-close report diverged "
                   "from batch run_day\n",
                   static_cast<long long>(tick),
                   incremental ? "incremental" : "rebuild");
      std::exit(1);
    }
    return r;
  };

  constexpr std::int64_t kTicks[] = {300, 3600, 86400};
  std::vector<ConfigResult> results;
  for (const std::int64_t tick : kTicks) {
    ConfigResult r;
    r.tick_seconds = tick;
    r.incremental = run_mode(tick, /*incremental=*/true);
    r.rebuild = run_mode(tick, /*incremental=*/false);

    // Both modes must tell the exact same detection story, tick by tick:
    // same provisional + finalized emissions, same order, every field.
    if (emission_fingerprint(r.incremental.report.emissions) !=
        emission_fingerprint(r.rebuild.report.emissions)) {
      std::fprintf(stderr,
                   "bench_latency_rt: tick=%lld incremental and rebuild "
                   "emission sequences diverged\n",
                   static_cast<long long>(tick));
      return 1;
    }
    // The seal-and-drop memory story: incremental releases raw events once
    // a bucket is evaluated, so its raw backlog peak must stay far below
    // the day's volume whenever the day spans many ticks (rebuild mode
    // holds the full window ∪ open day).
    if (tick < 86400 &&
        r.incremental.peak_buffered_events >= events.size() / 4) {
      std::fprintf(stderr,
                   "bench_latency_rt: tick=%lld incremental peak backlog %zu "
                   "too close to day volume %zu (seal-and-drop broken?)\n",
                   static_cast<long long>(tick),
                   r.incremental.peak_buffered_events, events.size());
      return 1;
    }
    // Regression floor only — the headline speedup is machine-dependent,
    // so the bench asserts "clearly faster", not the full ratio.
    r.speedup = r.incremental.run_seconds > 0
                    ? r.rebuild.run_seconds / r.incremental.run_seconds
                    : 0.0;
    if (tick == 300 && r.speedup < 1.5) {
      std::fprintf(stderr,
                   "bench_latency_rt: tick=300 incremental speedup %.2fx "
                   "below regression floor 1.5x\n",
                   r.speedup);
      return 1;
    }

    const rt::ContinuousReport& rep = r.incremental.report;
    r.ticks_closed = rep.stats.ticks_closed;
    r.evaluations = rep.stats.evaluations;
    r.provisional_emissions = rep.stats.provisional_emissions;
    r.finalized_emissions = rep.stats.finalized_emissions;
    r.latency = rt::summarize_latency(rep.emissions, /*provisional_only=*/true);
    r.events_per_second =
        r.incremental.run_seconds > 0
            ? static_cast<double>(events.size()) / r.incremental.run_seconds
            : 0;
    r.ticks_per_second =
        r.incremental.run_seconds > 0
            ? static_cast<double>(r.ticks_closed) / r.incremental.run_seconds
            : 0;
    results.push_back(std::move(r));
  }

  std::printf("\n%8s %6s %6s %10s %10s %9s %9s %8s %10s %10s %9s\n", "tick",
              "evals", "prov", "p50 lat", "p99 lat", "inc s", "rebuild s",
              "speedup", "tick p50", "tick p99", "peak buf");
  for (const ConfigResult& r : results) {
    std::printf(
        "%7llds %6zu %6zu %9.0fs %9.0fs %9.3f %9.3f %7.2fx %9.5fs %9.5fs %9zu\n",
        static_cast<long long>(r.tick_seconds), r.evaluations,
        r.provisional_emissions, r.latency.p50_seconds, r.latency.p99_seconds,
        r.incremental.run_seconds, r.rebuild.run_seconds, r.speedup,
        r.incremental.tick_p50_seconds, r.incremental.tick_p99_seconds,
        r.incremental.peak_buffered_events);
  }
  std::printf(
      "\nboth modes bit-identical to batch (day close) and to each other "
      "(emission sequences) at every tick size: ok\n");

  if (!json_path.empty()) {
    std::ostringstream body;
    body.precision(6);
    body << "{\n"
         << "    \"cpu_cores\": " << eid::bench::cpu_cores()
         << ",\n    \"day_events\": " << events.size()
         << ",\n    \"batch_seconds\": " << batch_seconds
         << ",\n    \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ConfigResult& r = results[i];
      body << "      {\"tick_seconds\": " << r.tick_seconds
           << ", \"ticks_closed\": " << r.ticks_closed
           << ", \"evaluations\": " << r.evaluations
           << ", \"provisional_emissions\": " << r.provisional_emissions
           << ", \"finalized_emissions\": " << r.finalized_emissions
           << ", \"latency_count\": " << r.latency.count
           << ", \"latency_p50_seconds\": " << r.latency.p50_seconds
           << ", \"latency_p99_seconds\": " << r.latency.p99_seconds
           << ", \"latency_max_seconds\": " << r.latency.max_seconds
           << ", \"run_seconds\": " << r.incremental.run_seconds
           << ", \"rebuild_run_seconds\": " << r.rebuild.run_seconds
           << ", \"rt_incremental_speedup\": " << r.speedup
           << ", \"tick_p50_seconds\": " << r.incremental.tick_p50_seconds
           << ", \"tick_p99_seconds\": " << r.incremental.tick_p99_seconds
           << ", \"rebuild_tick_p50_seconds\": " << r.rebuild.tick_p50_seconds
           << ", \"rebuild_tick_p99_seconds\": " << r.rebuild.tick_p99_seconds
           << ", \"rt_peak_buffered_events\": " << r.incremental.peak_buffered_events
           << ", \"rebuild_peak_buffered_events\": " << r.rebuild.peak_buffered_events
           << ", \"events_per_second\": " << r.events_per_second
           << ", \"ticks_per_second\": " << r.ticks_per_second
           << ", \"emissions_identical\": true"
           << ", \"batch_identical\": true}"
           << (i + 1 < results.size() ? ",\n" : "\n");
    }
    body << "    ]\n  }";
    if (eid::bench::write_json_section(json_path, "latency_rt", body.str())) {
      std::printf("recorded latency_rt section of %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }

  std::error_code ec;
  std::filesystem::remove(state_path, ec);
  return 0;
}
