// Multi-day throughput benchmark for the sharded parallel day-analysis
// engine: replays a simulated enterprise proxy workload through the
// incremental day path (DayAccumulator -> finish_day -> report_day) at a
// sweep of (analysis threads, ingest shards) configurations, and reports
// events/sec with a per-stage breakdown (ingest, CSR finalize, rare
// extraction, automation scan, scoring + BP). Results are bit-identical
// across configurations (the determinism tests enforce it), so the sweep
// measures pure performance.
//
//   bench_throughput_day [--days N] [--configs t:s,t:s,...] [--json[=path]]
//
// --json records the "throughput" section of BENCH_perf.json at the repo
// root (bench_perf_pipeline writes the "micro" section of the same file),
// including the day-analysis speedup of the last config vs the first —
// the cross-PR perf trajectory. Defaults: 3 days, configs 1:1,2:2,4:4,8:8.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "core/report_json.h"
#include "sim/enterprise.h"

namespace {

using namespace eid;
using clock_type = std::chrono::steady_clock;

constexpr std::size_t kChunkEvents = 4096;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct StageTotals {
  double ingest = 0.0;
  double finalize = 0.0;
  double rare = 0.0;
  double automation = 0.0;
  double score_bp = 0.0;

  /// The day-analysis path (everything before thresholding/BP).
  double analysis() const { return ingest + finalize + rare + automation; }
  double total() const { return analysis() + score_bp; }
};

struct ConfigResult {
  core::Parallelism parallelism;
  StageTotals stages;
  std::size_t events = 0;
  std::size_t detections = 0;   ///< headline count for the console line
  std::string report_digest;    ///< all DayReport JSON, concatenated —
                                ///< must be byte-identical across configs
};

sim::SimConfig workload_config() {
  // Analysis-heavy enterprise day: a large browse tail (rare-destination
  // extraction) and many periodic services (long per-edge time series for
  // the automation scan) — the stages the thread knob parallelizes.
  sim::SimConfig config;
  config.flavor = sim::Flavor::Proxy;
  config.seed = 29;
  config.day0 = util::make_day(2014, 1, 1);
  config.n_hosts = 800;
  config.n_popular = 400;
  config.tail_per_day = 500;
  config.automated_tail_per_day = 80;
  config.grayware_per_day = 8;
  return config;
}

ConfigResult run_config(const core::Parallelism& parallelism,
                        const features::WhoisSource& whois,
                        const std::vector<logs::ConnEvent>& profile_events,
                        const std::vector<std::vector<logs::ConnEvent>>& days,
                        util::Day day0) {
  core::PipelineConfig config;
  config.parallelism = parallelism;
  core::Pipeline pipeline(config, whois);
  pipeline.profile_day(profile_events);

  ConfigResult result;
  result.parallelism = parallelism;
  for (std::size_t d = 0; d < days.size(); ++d) {
    const util::Day day = day0 + 1 + static_cast<util::Day>(d);
    const auto& events = days[d];

    auto start = clock_type::now();
    core::DayAccumulator accumulator = pipeline.begin_day(day);
    for (std::size_t pos = 0; pos < events.size(); pos += kChunkEvents) {
      const std::size_t count = std::min(kChunkEvents, events.size() - pos);
      accumulator.add_chunk({events.data() + pos, count});
    }
    result.stages.ingest += seconds_since(start);

    const core::DayAnalysis analysis =
        pipeline.finish_day(std::move(accumulator));
    result.stages.finalize += analysis.stage_seconds.finalize;
    result.stages.rare += analysis.stage_seconds.rare;
    result.stages.automation += analysis.stage_seconds.automation;

    start = clock_type::now();
    const core::DayReport report = pipeline.report_day(analysis, {});
    result.stages.score_bp += seconds_since(start);
    result.detections += report.automated_scores.size() +
                         report.nohint.domains.size();
    result.report_digest += core::day_report_to_json(report);

    pipeline.update_histories(analysis.graph);
    result.events += events.size();
  }
  return result;
}

std::vector<core::Parallelism> parse_configs(const std::string& spec) {
  std::vector<core::Parallelism> configs;
  std::stringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto colon = item.find(':');
    core::Parallelism p;
    p.threads = static_cast<std::size_t>(std::atoi(item.c_str()));
    p.shards = colon == std::string::npos
                   ? p.threads
                   : static_cast<std::size_t>(std::atoi(item.c_str() + colon + 1));
    if (p.threads == 0) p.threads = 1;
    if (p.shards == 0) p.shards = 1;
    configs.push_back(p);
  }
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      eid::bench::take_json_flag(argc, argv, "BENCH_perf.json");
  std::size_t n_days = 3;
  std::string config_spec = "1:1,2:2,4:4,8:8";
  bool non_default_run = false;  // --json only records the default sweep
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      const int days = std::atoi(argv[++i]);
      n_days = days > 0 ? static_cast<std::size_t>(days) : 1;
      non_default_run = true;
    } else if (std::strcmp(argv[i], "--configs") == 0 && i + 1 < argc) {
      config_spec = argv[++i];
      non_default_run = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--days N] [--configs t:s,...] [--json[=path]]\n",
                   argv[0]);
      return 1;
    }
  }
  if (n_days == 0) n_days = 1;
  const std::vector<eid::core::Parallelism> configs = parse_configs(config_spec);
  if (configs.empty()) {
    std::fprintf(stderr, "no valid --configs\n");
    return 1;
  }

  eid::bench::print_header("BENCH_throughput",
                           "sharded parallel day-analysis engine");
  const sim::SimConfig world = workload_config();
  sim::EnterpriseSimulator simulator(world, {});
  const std::vector<logs::ConnEvent> profile_events =
      simulator.reduced_day(world.day0);
  std::vector<std::vector<logs::ConnEvent>> days;
  std::size_t total_events = 0;
  for (std::size_t d = 0; d < n_days; ++d) {
    days.push_back(
        simulator.reduced_day(world.day0 + 1 + static_cast<util::Day>(d)));
    total_events += days.back().size();
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("workload: %zu hosts, %zu day(s), %zu events  (%u cpu core(s) "
              "— speedup is bounded by this)\n",
              static_cast<std::size_t>(world.n_hosts), n_days, total_events,
              cores);

  std::vector<ConfigResult> results;
  for (const auto& parallelism : configs) {
    results.push_back(run_config(parallelism, simulator.whois(),
                                 profile_events, days, world.day0));
    const ConfigResult& r = results.back();
    std::printf(
        "threads=%zu shards=%zu  %10.0f events/s  analysis=%.3fs "
        "(ingest=%.3f finalize=%.3f rare=%.3f automation=%.3f) "
        "score+bp=%.3fs  detections=%zu\n",
        r.parallelism.threads, r.parallelism.shards,
        static_cast<double>(r.events) / r.stages.total(), r.stages.analysis(),
        r.stages.ingest, r.stages.finalize, r.stages.rare,
        r.stages.automation, r.stages.score_bp, r.detections);
  }
  for (const ConfigResult& r : results) {
    // Byte-compare the serialized reports, not just counts: a bug that
    // swaps WHICH domains are detected must fail here too.
    if (r.report_digest != results.front().report_digest) {
      std::fprintf(stderr,
                   "FATAL: DayReports differ across configs (determinism "
                   "violation)\n");
      return 1;
    }
  }
  const double speedup =
      results.back().stages.analysis() > 0.0
          ? results.front().stages.analysis() / results.back().stages.analysis()
          : 0.0;
  std::printf("day-analysis speedup (threads=%zu vs threads=%zu): %.2fx\n",
              results.back().parallelism.threads,
              results.front().parallelism.threads, speedup);

  if (json_path.empty()) return 0;
  if (non_default_run) {
    // Same rule as bench_perf_pipeline's filter guard: the tracked file
    // compares across PRs, so only the canonical workload/sweep is
    // recorded — a smoke run must not overwrite the trajectory.
    std::fprintf(stderr,
                 "not writing %s: non-default --days/--configs would make the "
                 "recorded trajectory incomparable — rerun without them\n",
                 json_path.c_str());
    return 0;
  }
  std::ostringstream body;
  body << std::setprecision(17);  // keep sub-percent drift visible across PRs
  body << "{\n    \"workload\": {\"hosts\": " << world.n_hosts
       << ", \"days\": " << n_days << ", \"events\": " << total_events
       << ", \"cpu_cores\": " << cores << "},\n    \"configs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    body << (i == 0 ? "\n" : ",\n");
    body << "      {\"threads\": " << r.parallelism.threads
         << ", \"shards\": " << r.parallelism.shards
         << ", \"events_per_second\": "
         << static_cast<double>(r.events) / r.stages.total()
         << ", \"analysis_seconds\": " << r.stages.analysis()
         << ", \"stages\": {\"ingest\": " << r.stages.ingest
         << ", \"finalize\": " << r.stages.finalize
         << ", \"rare\": " << r.stages.rare
         << ", \"automation\": " << r.stages.automation
         << ", \"score_bp\": " << r.stages.score_bp << "}}";
  }
  body << "\n    ],\n    \"analysis_speedup_last_vs_first\": " << speedup
       << "\n  }";
  if (!eid::bench::write_json_section(json_path, "throughput", body.str())) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote throughput section -> %s\n", json_path.c_str());
  return 0;
}
