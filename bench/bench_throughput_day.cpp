// Multi-day throughput benchmark for the persistent-executor day-analysis
// engine: replays a simulated enterprise proxy workload through
// api::Detector::analyze_days — the pipelined multi-day path every
// deployment verb rides — at a sweep of (analysis threads, ingest shards,
// pipeline depth) configurations, and reports events/sec with a per-stage
// breakdown. Results are bit-identical across configurations (the
// determinism tests enforce it; this bench byte-compares the reports
// again), so the sweep measures pure performance.
//
//   bench_throughput_day [--days N] [--configs t[:s[:d]],...] [--repeat N]
//                        [--json[=path]]
//
// --repeat runs each configuration N times and reports the median run (by
// wall time) — the recommended mode on noisy shared hardware. --json
// records the "throughput" section of BENCH_perf.json at the repo root
// (bench_perf_pipeline writes the "micro" section of the same file),
// including the day-analysis speedup of the last config vs the first —
// the cross-PR perf trajectory. Defaults: 3 days, one repeat, configs
// 1:1,2:2,4:4,8:8,8:8:2 (the trailing config adds depth-2 day
// pipelining: day N's finalize/score/commit overlaps day N+1's ingest).
//
// analysis_seconds is wall time minus the measured score+BP stage — the
// day-analysis engine's share of the run, comparable across depths (with
// depth > 1 the stage sums exceed wall because they overlap; wall is what
// an operator waits for). The "ingest" stage is reported as the residual
// wall - finalize - rare - automation - score_bp, which with depth > 1
// absorbs the overlap win and can undercut true ingest cost.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/detector.h"
#include "api/event_source.h"
#include "bench_common.h"
#include "core/pipeline.h"
#include "core/report_json.h"
#include "sim/enterprise.h"

namespace {

using namespace eid;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct ConfigResult {
  core::Parallelism parallelism;
  double wall = 0.0;      ///< the full analyze_days run
  double finalize = 0.0;  ///< CSR finalize (from DayAnalysis stage clocks)
  double rare = 0.0;
  double automation = 0.0;
  double score_bp = 0.0;  ///< report_day (thresholds + both BP modes)
  std::size_t events = 0;
  std::size_t detections = 0;   ///< headline count for the console line
  std::string report_digest;    ///< all DayReport JSON, concatenated —
                                ///< must be byte-identical across configs

  /// Day-analysis share of the run: everything but score+BP.
  double analysis() const { return std::max(0.0, wall - score_bp); }
  /// Wall not attributed to a measured stage (chunk ingest + overhead;
  /// with depth > 1, minus whatever the pipelining overlapped away).
  double ingest() const {
    return std::max(0.0, wall - finalize - rare - automation - score_bp);
  }
};

sim::SimConfig workload_config() {
  // Analysis-heavy enterprise day: a large browse tail (rare-destination
  // extraction) and many periodic services (long per-edge time series for
  // the automation scan) — the stages the thread knob parallelizes.
  sim::SimConfig config;
  config.flavor = sim::Flavor::Proxy;
  config.seed = 29;
  config.day0 = util::make_day(2014, 1, 1);
  config.n_hosts = 800;
  config.n_popular = 400;
  config.tail_per_day = 500;
  config.automated_tail_per_day = 80;
  config.grayware_per_day = 8;
  return config;
}

ConfigResult run_config(const core::Parallelism& parallelism,
                        const features::WhoisSource& whois,
                        const std::vector<logs::ConnEvent>& profile_events,
                        const std::vector<std::vector<logs::ConnEvent>>& days,
                        util::Day day0) {
  core::PipelineConfig config;
  config.parallelism = parallelism;
  api::Detector detector(config, whois);
  api::VectorSource profile(day0, &profile_events);
  detector.ingest(profile);

  ConfigResult result;
  result.parallelism = parallelism;
  core::Pipeline& pipeline = detector.pipeline();
  api::MultiDaySource source(day0 + 1, &days);
  const auto start = clock_type::now();
  const api::IngestReport ingest = detector.analyze_days(
      source, [&](util::Day, const core::DayAnalysis& analysis) {
        result.finalize += analysis.stage_seconds.finalize;
        result.rare += analysis.stage_seconds.rare;
        result.automation += analysis.stage_seconds.automation;
        const auto score_start = clock_type::now();
        const core::DayReport report = pipeline.report_day(analysis, {});
        result.score_bp += seconds_since(score_start);
        result.detections +=
            report.automated_scores.size() + report.nohint.domains.size();
        result.report_digest += core::day_report_to_json(report);
      });
  result.wall = seconds_since(start);
  result.events = ingest.events;
  return result;
}

/// t[:s[:d]] — shards default to the thread count, depth to 1.
std::vector<core::Parallelism> parse_configs(const std::string& spec) {
  std::vector<core::Parallelism> configs;
  std::stringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    std::stringstream fields(item);
    std::string field;
    std::vector<std::size_t> values;
    while (std::getline(fields, field, ':')) {
      values.push_back(static_cast<std::size_t>(std::atoi(field.c_str())));
    }
    if (values.empty()) continue;
    core::Parallelism p;
    p.threads = std::max<std::size_t>(values[0], 1);
    p.shards = values.size() > 1 ? std::max<std::size_t>(values[1], 1)
                                 : p.threads;
    p.pipeline_depth =
        values.size() > 2 ? std::max<std::size_t>(values[2], 1) : 1;
    configs.push_back(p);
  }
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      eid::bench::take_json_flag(argc, argv, "BENCH_perf.json");
  std::size_t n_days = 3;
  std::size_t repeats = 1;
  std::string config_spec = "1:1,2:2,4:4,8:8,8:8:2";
  bool non_default_run = false;  // --json only records the default sweep
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      const int days = std::atoi(argv[++i]);
      n_days = days > 0 ? static_cast<std::size_t>(days) : 1;
      non_default_run = true;
    } else if (std::strcmp(argv[i], "--configs") == 0 && i + 1 < argc) {
      config_spec = argv[++i];
      non_default_run = true;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      // Median-of-N is noise reduction, not a workload change — still
      // recordable with --json.
      const int n = std::atoi(argv[++i]);
      repeats = n > 0 ? static_cast<std::size_t>(n) : 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--days N] [--configs t[:s[:d]],...] "
                   "[--repeat N] [--json[=path]]\n",
                   argv[0]);
      return 1;
    }
  }
  if (n_days == 0) n_days = 1;
  const std::vector<eid::core::Parallelism> configs = parse_configs(config_spec);
  if (configs.empty()) {
    std::fprintf(stderr, "no valid --configs\n");
    return 1;
  }

  eid::bench::print_header("BENCH_throughput",
                           "persistent-executor day-analysis engine");
  const sim::SimConfig world = workload_config();
  sim::EnterpriseSimulator simulator(world, {});
  const std::vector<logs::ConnEvent> profile_events =
      simulator.reduced_day(world.day0);
  std::vector<std::vector<logs::ConnEvent>> days;
  std::size_t total_events = 0;
  for (std::size_t d = 0; d < n_days; ++d) {
    days.push_back(
        simulator.reduced_day(world.day0 + 1 + static_cast<util::Day>(d)));
    total_events += days.back().size();
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("workload: %zu hosts, %zu day(s), %zu events, %zu repeat(s)  "
              "(%u cpu core(s) — speedup is bounded by this)\n",
              static_cast<std::size_t>(world.n_hosts), n_days, total_events,
              repeats, cores);

  std::vector<ConfigResult> results;
  std::string digest;
  for (const auto& parallelism : configs) {
    std::vector<ConfigResult> runs;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      runs.push_back(run_config(parallelism, simulator.whois(), profile_events,
                                days, world.day0));
      // Byte-compare the serialized reports, not just counts: a bug that
      // swaps WHICH domains are detected must fail here too — across
      // configs, depths and repeats alike.
      if (digest.empty()) digest = runs.back().report_digest;
      if (runs.back().report_digest != digest) {
        std::fprintf(stderr,
                     "FATAL: DayReports differ across configs (determinism "
                     "violation)\n");
        return 1;
      }
    }
    std::sort(runs.begin(), runs.end(),
              [](const ConfigResult& a, const ConfigResult& b) {
                return a.wall < b.wall;
              });
    results.push_back(std::move(runs[runs.size() / 2]));  // median by wall
    const ConfigResult& r = results.back();
    std::printf(
        "threads=%zu shards=%zu depth=%zu  %10.0f events/s  wall=%.3fs "
        "analysis=%.3fs (ingest=%.3f finalize=%.3f rare=%.3f "
        "automation=%.3f) score+bp=%.3fs  detections=%zu\n",
        r.parallelism.threads, r.parallelism.shards,
        r.parallelism.pipeline_depth,
        static_cast<double>(r.events) / r.wall, r.wall, r.analysis(),
        r.ingest(), r.finalize, r.rare, r.automation, r.score_bp,
        r.detections);
  }
  const double speedup = results.back().analysis() > 0.0
                             ? results.front().analysis() /
                                   results.back().analysis()
                             : 0.0;
  std::printf(
      "day-analysis speedup (threads=%zu depth=%zu vs threads=%zu "
      "depth=%zu): %.2fx\n",
      results.back().parallelism.threads,
      results.back().parallelism.pipeline_depth,
      results.front().parallelism.threads,
      results.front().parallelism.pipeline_depth, speedup);

  if (json_path.empty()) return 0;
  if (non_default_run) {
    // Same rule as bench_perf_pipeline's filter guard: the tracked file
    // compares across PRs, so only the canonical workload/sweep is
    // recorded — a smoke run must not overwrite the trajectory.
    std::fprintf(stderr,
                 "not writing %s: non-default --days/--configs would make the "
                 "recorded trajectory incomparable — rerun without them\n",
                 json_path.c_str());
    return 0;
  }
  std::ostringstream body;
  body << std::setprecision(17);  // keep sub-percent drift visible across PRs
  body << "{\n    \"workload\": {\"hosts\": " << world.n_hosts
       << ", \"days\": " << n_days << ", \"events\": " << total_events
       << ", \"cpu_cores\": " << cores << ", \"repeats\": " << repeats
       << "},\n    \"configs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    body << (i == 0 ? "\n" : ",\n");
    body << "      {\"threads\": " << r.parallelism.threads
         << ", \"shards\": " << r.parallelism.shards
         << ", \"pipeline_depth\": " << r.parallelism.pipeline_depth
         << ", \"events_per_second\": "
         << static_cast<double>(r.events) / r.wall
         << ", \"wall_seconds\": " << r.wall
         << ", \"analysis_seconds\": " << r.analysis()
         << ", \"stages\": {\"ingest\": " << r.ingest()
         << ", \"finalize\": " << r.finalize << ", \"rare\": " << r.rare
         << ", \"automation\": " << r.automation
         << ", \"score_bp\": " << r.score_bp << "}}";
  }
  body << "\n    ],\n    \"analysis_speedup_last_vs_first\": " << speedup
       << "\n  }";
  if (!eid::bench::write_json_section(json_path, "throughput", body.str())) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote throughput section -> %s\n", json_path.c_str());
  return 0;
}
