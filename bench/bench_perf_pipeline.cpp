// Throughput benchmarks (google-benchmark) for the stages that must keep
// up with terabyte-scale daily log volume (§II-C): domain folding, DNS and
// proxy reduction, graph construction, periodicity testing, rare
// extraction, belief propagation, and the streaming api::Detector facade
// (chunk-size sweep: throughput must be flat in the chunking).
//
// Pass --json[=path] to also record the results as the "micro" section of
// BENCH_perf.json at the repo root, so perf is tracked across PRs
// (bench_throughput_day writes the "throughput" section of the same file).
#include <benchmark/benchmark.h>

#include <atomic>
#include <iomanip>
#include <sstream>

#include "api/detector.h"
#include "bench_common.h"
#include "api/sources.h"
#include "core/belief_propagation.h"
#include "core/scorers.h"
#include "eval/lanl_runner.h"
#include "logs/folding.h"
#include "logs/reduction.h"
#include "obs/metrics.h"
#include "sim/enterprise.h"
#include "timing/periodicity.h"
#include "util/executor.h"

namespace {

using namespace eid;

sim::SimConfig bench_config(sim::Flavor flavor) {
  sim::SimConfig config;
  config.flavor = flavor;
  config.seed = 21;
  config.day0 = util::make_day(2014, 1, 1);
  config.n_hosts = 400;
  config.n_popular = 200;
  config.tail_per_day = 120;
  config.automated_tail_per_day = 6;
  config.grayware_per_day = 2;
  return config;
}

void BM_FoldDomain(benchmark::State& state) {
  const std::vector<std::string> names = {
      "news.nbc.com", "deep.sub.example.org", "a.b.c.d.e.wide.net",
      "www.bbc.co.uk", "short.io"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(logs::fold_domain(names[i % names.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FoldDomain);

void BM_DnsReduction(benchmark::State& state) {
  sim::EnterpriseSimulator sim(bench_config(sim::Flavor::Dns), {});
  const sim::DayLogs logs = sim.simulate_day(util::make_day(2014, 1, 2));
  const logs::DnsReductionConfig config = sim.dns_reduction_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(logs::reduce_dns(logs.dns, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(logs.dns.size()));
}
BENCHMARK(BM_DnsReduction);

void BM_ProxyReduction(benchmark::State& state) {
  sim::EnterpriseSimulator sim(bench_config(sim::Flavor::Proxy), {});
  const util::Day day = util::make_day(2014, 1, 2);
  const sim::DayLogs logs = sim.simulate_day(day);
  const logs::ProxyReductionConfig config = sim.proxy_reduction_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        logs::reduce_proxy(logs.proxy, sim.dhcp(), config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(logs.proxy.size()));
}
BENCHMARK(BM_ProxyReduction);

void BM_DayGraphBuild(benchmark::State& state) {
  sim::EnterpriseSimulator sim(bench_config(sim::Flavor::Proxy), {});
  const auto events = sim.reduced_day(util::make_day(2014, 1, 2));
  for (auto _ : state) {
    graph::DayGraph graph;
    for (const auto& event : events) graph.add_event(event);
    graph.finalize();
    benchmark::DoNotOptimize(graph.edge_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_DayGraphBuild);

void BM_PeriodicityTest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<util::TimePoint> times;
  util::Rng rng(3);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    times.push_back(static_cast<util::TimePoint>(t));
    t += 600.0 + rng.normal(0.0, 3.0);
  }
  const timing::PeriodicityDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.test(times));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PeriodicityTest)->Arg(16)->Arg(144)->Arg(1024);

void BM_LanlDayAnalysis(benchmark::State& state) {
  sim::LanlConfig config;
  config.n_hosts = 300;
  config.n_popular = 150;
  config.tail_per_day = 80;
  config.automated_tail_per_day = 4;
  config.server_tail_per_day = 40;
  sim::LanlScenario scenario(config);
  eval::LanlRunner runner(scenario);
  runner.bootstrap();
  const auto events =
      scenario.simulator().reduced_day(scenario.challenge_begin());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runner.analyze_events(events, scenario.challenge_begin()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_LanlDayAnalysis);

void BM_DetectorAnalyzeStream(benchmark::State& state) {
  // One operation day folded into the analysis chunk by chunk through the
  // streaming facade. arg = events per chunk; the sweep shows the chunked
  // path costs the same as one big batch.
  sim::EnterpriseSimulator sim(bench_config(sim::Flavor::Proxy), {});
  const util::Day day = util::make_day(2014, 1, 2);
  const auto events = sim.reduced_day(day);
  api::Detector detector(core::PipelineConfig{}, sim.whois());
  const auto chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    api::VectorSource source(day, &events, chunk);
    benchmark::DoNotOptimize(detector.analyze_stream(source, day));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_DetectorAnalyzeStream)->Arg(256)->Arg(4096)->Arg(1 << 20);

void BM_DetectorIngestProfile(benchmark::State& state) {
  // Streaming profiling (bootstrap-month ingestion): O(distinct) memory,
  // so the per-event cost is the floor for multi-terabyte ingest.
  sim::EnterpriseSimulator sim(bench_config(sim::Flavor::Proxy), {});
  const util::Day day = util::make_day(2014, 1, 2);
  const auto events = sim.reduced_day(day);
  api::Detector detector(core::PipelineConfig{}, sim.whois());
  for (auto _ : state) {
    api::VectorSource source(day, &events);
    benchmark::DoNotOptimize(detector.ingest(source).events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_DetectorIngestProfile);

void BM_ExecutorDispatch(benchmark::State& state) {
  // One 8-range fan-out over the persistent pool — the steady-state cost
  // every per-day stage pays. Compare with BM_ThreadSpawnDispatch below:
  // the gap is what the executor saves, hundreds of times per day.
  util::Executor executor(7);
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    executor.parallel_ranges(8, 8,
                             [&](std::size_t, std::size_t begin, std::size_t) {
                               sink.fetch_add(begin,
                                              std::memory_order_relaxed);
                             });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ExecutorDispatch);

void BM_ThreadSpawnDispatch(benchmark::State& state) {
  // The same 8-range fan-out through the spawning util::parallel_ranges —
  // a fresh std::thread per range per call, the pre-executor baseline.
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    util::parallel_ranges(8, 8,
                          [&](std::size_t, std::size_t begin, std::size_t) {
                            sink.fetch_add(begin, std::memory_order_relaxed);
                          });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ThreadSpawnDispatch);

void BM_MetricsCounter(benchmark::State& state) {
  // The raw cost of one enabled counter increment: a thread-shard lookup
  // plus one uncontended relaxed fetch_add.
  obs::metrics().set_enabled(true);
  obs::Counter& counter = obs::metrics().counter("bench_scratch_total");
  for (auto _ : state) {
    counter.add(1);
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounter);

void BM_MetricsCounterDisabled(benchmark::State& state) {
  // The disabled path every probe pays when observability is off: one
  // relaxed atomic load and a branch. This is the "near-no-op" the obs
  // layer promises.
  obs::metrics().set_enabled(false);
  obs::Counter& counter = obs::metrics().counter("bench_scratch_total");
  for (auto _ : state) {
    counter.add(1);
  }
  obs::metrics().set_enabled(true);
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterDisabled);

void day_analysis_obs(benchmark::State& state, bool metrics_enabled) {
  // Whole-day analysis with the metrics registry on vs off — the pair
  // behind the recorded metrics_overhead_ratio (< 1% is the obs-layer
  // budget at day granularity).
  sim::EnterpriseSimulator sim(bench_config(sim::Flavor::Proxy), {});
  const util::Day day = util::make_day(2014, 1, 2);
  const auto events = sim.reduced_day(day);
  api::Detector detector(core::PipelineConfig{}, sim.whois());
  obs::metrics().set_enabled(metrics_enabled);
  for (auto _ : state) {
    api::VectorSource source(day, &events, 4096);
    benchmark::DoNotOptimize(detector.analyze_stream(source, day));
  }
  obs::metrics().set_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}

void BM_DayAnalysisObsOn(benchmark::State& state) {
  day_analysis_obs(state, true);
}
BENCHMARK(BM_DayAnalysisObsOn);

void BM_DayAnalysisObsOff(benchmark::State& state) {
  day_analysis_obs(state, false);
}
BENCHMARK(BM_DayAnalysisObsOff);

void BM_BeliefPropagation(benchmark::State& state) {
  // A synthetic frontier: one seed host fanning out to chains of domains.
  graph::DayGraph graph;
  const int chains = static_cast<int>(state.range(0));
  for (int c = 0; c < chains; ++c) {
    for (int depth = 0; depth < 6; ++depth) {
      logs::ConnEvent ev;
      ev.ts = c * 1000 + depth;
      ev.host = "h" + std::to_string(c * 6 + depth);
      ev.domain = "d" + std::to_string(c * 6 + depth) + ".com";
      graph.add_event(ev);
      logs::ConnEvent link = ev;
      link.domain = "d" + std::to_string(c * 6 + depth + 1) + ".com";
      graph.add_event(link);
    }
  }
  graph.finalize();
  std::unordered_set<graph::DomainId> rare;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) rare.insert(d);

  class FixedScorer final : public core::DomainScorer {
   public:
    bool detect_cc(graph::DomainId) const override { return false; }
    double similarity_score(graph::DomainId,
                            std::span<const graph::DomainId>) const override {
      return 0.9;
    }
  } scorer;

  std::vector<graph::HostId> seeds = {graph.find_host("h0")};
  core::BpConfig config;
  config.max_iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::belief_propagation(graph, rare, seeds, {}, scorer, config));
  }
}
BENCHMARK(BM_BeliefPropagation)->Arg(4)->Arg(32);

/// Console output as usual, plus an in-memory copy of every finished run
/// for the machine-readable BENCH_perf.json record.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_time_ns = 0.0;      ///< adjusted real time per iteration
    double items_per_second = 0.0;  ///< 0 when the bench reports no items
  };

  // google-benchmark < 1.8 exposes Run::error_occurred; 1.8+ replaced it
  // with the Skipped enum. Detect whichever member this libbenchmark has.
  template <typename R>
  static bool run_failed(const R& run) {
    if constexpr (requires { run.error_occurred; }) {
      return run.error_occurred;
    } else if constexpr (requires { run.skipped; }) {
      return static_cast<int>(run.skipped) != 0;  // 0 == NotSkipped
    } else {
      return false;
    }
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run_failed(run)) continue;
      // One row per benchmark: drop _mean/_median aggregates and repeat
      // repetitions so cross-PR diffs stay unambiguous.
      if (run.run_type != Run::RT_Iteration) continue;
      if constexpr (requires { run.repetition_index; }) {
        if (run.repetition_index > 0) continue;
      }
      Entry entry;
      entry.name = run.benchmark_name();
      entry.real_time_ns = run.GetAdjustedRealTime();
      if (const auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        entry.items_per_second = it->second;
      }
      entries.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Entry> entries;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      eid::bench::take_json_flag(argc, argv, "BENCH_perf.json");
  // A filtered run covers only a subset of benchmarks; writing it would
  // replace the whole tracked micro section and wipe the other
  // benchmarks' history, so --json only records full runs.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) {
      filtered = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (json_path.empty()) return 0;
  if (filtered || reporter.entries.empty()) {
    std::fprintf(stderr,
                 "not writing %s: %s would clobber the full micro section — "
                 "rerun without --benchmark_filter to record\n",
                 json_path.c_str(),
                 reporter.entries.empty() ? "an empty run" : "a filtered run");
    return 0;
  }

  // Metrics overhead at day granularity: the enabled/disabled day-analysis
  // pair must stay within the obs layer's <1% budget.
  double obs_on_ns = 0.0;
  double obs_off_ns = 0.0;
  for (const auto& entry : reporter.entries) {
    if (entry.name == "BM_DayAnalysisObsOn") obs_on_ns = entry.real_time_ns;
    if (entry.name == "BM_DayAnalysisObsOff") obs_off_ns = entry.real_time_ns;
  }
  const double overhead_ratio =
      obs_off_ns > 0.0 ? obs_on_ns / obs_off_ns : 0.0;
  if (overhead_ratio > 1.01) {
    std::fprintf(stderr,
                 "warning: metrics-enabled day analysis is %.2f%% slower than "
                 "disabled (budget: 1%%)\n",
                 (overhead_ratio - 1.0) * 100.0);
  }

  std::ostringstream body;
  // Full double resolution: the file exists to catch sub-percent drift
  // across PRs, which 6-digit default formatting would round away.
  body << std::setprecision(17);
  body << "{\n    \"cpu_cores\": " << eid::bench::cpu_cores()
       << ",\n    \"metrics_overhead_ratio\": " << overhead_ratio
       << ",\n    \"benchmarks\": [";
  for (std::size_t i = 0; i < reporter.entries.size(); ++i) {
    const auto& entry = reporter.entries[i];
    body << (i == 0 ? "\n" : ",\n");
    body << "      {\"name\": \"" << entry.name << "\", \"real_time_ns\": "
         << entry.real_time_ns << ", \"items_per_second\": "
         << entry.items_per_second << "}";
  }
  body << "\n    ]\n  }";
  if (!eid::bench::write_json_section(json_path, "micro", body.str())) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote micro section -> %s\n", json_path.c_str());
  return 0;
}
