// Reproduces Fig. 5 and the §VI-A regression diagnostics: CDFs of the C&C
// scores of automated domains, split into VirusTotal-"reported" vs
// "legitimate", plus the fitted feature weights/significance and the
// TDR/FPR tradeoff at the paper's 0.4 threshold.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "eval/ac_runner.h"

int main() {
  using namespace eid;
  bench::print_header("Fig. 5 + §VI-A",
                      "C&C score CDFs (reported vs legitimate) and regression");

  sim::AcScenario scenario(bench::ac_config());
  eval::AcRunner runner(scenario);
  const core::TrainingReport training = runner.train();

  std::printf("C&C regression: %zu automated-domain rows, %zu reported\n",
              training.cc_rows, training.cc_positive);
  std::printf("%-12s %10s %10s %6s\n", "feature", "weight", "stderr", "|t|");
  for (std::size_t i = 0; i < features::kCcFeatureCount; ++i) {
    std::printf("%-12s %10.4f %10.4f %6.2f %s\n", features::kCcFeatureNames[i],
                training.cc_model.weights.size() > i ? training.cc_model.weights[i]
                                                     : 0.0,
                training.cc_model.std_errors.size() > i
                    ? training.cc_model.std_errors[i]
                    : 0.0,
                training.cc_model.t_stats.size() > i
                    ? std::abs(training.cc_model.t_stats[i])
                    : 0.0,
                training.cc_model.is_significant(i) ? "" : "(low significance)");
  }
  std::printf("R^2 = %.3f\n\n", training.cc_model.r_squared);

  // Training CDFs (the Fig. 5 series).
  std::vector<double> reported;
  std::vector<double> legitimate;
  for (const auto& [score, is_reported] : training.cc_training_scores) {
    (is_reported ? reported : legitimate).push_back(score);
  }
  const std::vector<double> grid = {0.0, 0.1, 0.2, 0.3, 0.4,
                                    0.5, 0.6, 0.7, 0.8, 1.0};
  bench::print_cdf("training: reported automated domains", reported, grid);
  bench::print_cdf("training: legitimate automated domains", legitimate, grid);

  // Testing = the operation month's automated domains, labeled by the
  // oracle (the paper splits February in half; we train on January).
  std::vector<double> test_reported;
  std::vector<double> test_legit;
  runner.run_operation([&](util::Day, const core::DayAnalysis& analysis) {
    for (const auto& scored : runner.pipeline().score_automated(analysis)) {
      (scenario.oracle().vt_reported(scored.name) ? test_reported : test_legit)
          .push_back(scored.score);
    }
  });
  bench::print_cdf("testing: reported automated domains", test_reported, grid);
  bench::print_cdf("testing: legitimate automated domains", test_legit, grid);

  const auto rates = [](const std::vector<double>& rep,
                        const std::vector<double>& legit, double threshold) {
    const double tdr = 1.0 - bench::cdf_at(rep, threshold);
    const double fpr = 1.0 - bench::cdf_at(legit, threshold);
    std::printf("  threshold %.2f: TDR=%.2f%% FPR=%.2f%%\n", threshold,
                100.0 * tdr, 100.0 * fpr);
  };
  std::printf("\ntraining tradeoff:\n");
  rates(reported, legitimate, 0.4);
  std::printf("testing tradeoff:\n");
  rates(test_reported, test_legit, 0.4);

  bench::print_note(
      "paper: reported domains score higher than legitimate (Fig. 5); "
      "threshold 0.4 gives 57.18%/10.59% TDR/FPR on training and "
      "54.95%/11.52% on testing; AutoHosts had low significance and DomAge "
      "was the only negatively-correlated feature; DomAge and RareUA most "
      "relevant. Expect the reported CDF to dominate and the same sign "
      "structure.");
  return 0;
}
