// Reproduces Fig. 7: an example community of compromised hosts and
// malicious domains discovered in no-hint mode — a beaconing C&C domain
// seeds belief propagation, which pulls in the delivery-stage domains and
// the other hosts contacting them.
#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "eval/ac_runner.h"

int main() {
  using namespace eid;
  bench::print_header("Fig. 7", "Example no-hint community (AC)");

  sim::AcScenario scenario(bench::ac_config());
  eval::AcRunner runner(scenario);
  runner.train();

  bool printed = false;
  runner.run_operation([&](util::Day day, const core::DayAnalysis& analysis) {
    if (printed) return;
    const auto cc = runner.pipeline().detect_cc(analysis, 0.4);
    if (cc.empty()) return;
    const core::BpRunReport report =
        runner.pipeline().run_bp_nohint(analysis, cc, 0.33);
    if (report.domains.size() < 2) return;  // want a real community
    printed = true;

    std::printf("day %s\n\n", util::format_day(day).c_str());
    std::printf("C&C seed domains (detected, score >= 0.4):\n");
    for (const auto& det : cc) {
      std::printf("  %-32s beacon ~%.0f s, %zu hosts, score %.2f  [%s]\n",
                  det.name.c_str(), det.period, det.auto_hosts, det.score,
                  eval::validation_category_name(eval::classify_detection(
                      det.name, scenario.oracle())));
    }
    std::printf("\nbelief propagation expansion:\n");
    for (const auto& det : report.domains) {
      std::printf("  iter %zu: %-32s %-10s score %.2f  [%s]\n", det.iteration,
                  det.name.c_str(), core::label_reason_name(det.reason),
                  det.score,
                  eval::validation_category_name(eval::classify_detection(
                      det.name, scenario.oracle())));
    }
    std::printf("\ncompromised hosts in the community:\n");
    for (const auto& host : report.hosts) {
      std::printf("  %s\n", host.c_str());
    }

    // ASCII sketch of the bipartite community (hosts x domains edges).
    std::printf("\nedges (host -- domain):\n");
    std::unordered_set<std::string> community(report.hosts.begin(),
                                              report.hosts.end());
    std::vector<std::string> domains;
    for (const auto& det : cc) domains.push_back(det.name);
    for (const auto& det : report.domains) domains.push_back(det.name);
    for (const auto& host : report.hosts) {
      const graph::HostId h = analysis.graph.find_host(host);
      for (const auto& domain : domains) {
        const graph::DomainId d = analysis.graph.find_domain(domain);
        if (h != graph::kNoId && d != graph::kNoId &&
            analysis.graph.edge(h, d) != nullptr) {
          std::printf("  %-24s -- %s\n", host.c_str(), domain.c_str());
        }
      }
    }
  });
  if (!printed) std::printf("no multi-domain community found this month\n");
  bench::print_note(
      "paper (Fig. 7, 2/13): C&C usteeptyshehoaboochu.ru beaconing every "
      "~120 s from three hosts seeds BP, which discovers two delivery "
      "domains (parfumonline.in, neoparfumonline.in) and two more hosts. "
      "Expect the same star-of-stars shape: C&C + related delivery domains "
      "sharing hosts.");
  return 0;
}
