// Reproduces Fig. 8: an example community discovered in SOC-hints mode —
// one IOC domain from the SOC database seeds belief propagation, which
// uncovers sibling campaign domains (including ones no feed knows about)
// and the other compromised hosts contacting them.
#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "eval/ac_runner.h"

int main() {
  using namespace eid;
  bench::print_header("Fig. 8", "Example SOC-hints community (AC)");

  sim::AcScenario scenario(bench::ac_config());
  eval::AcRunner runner(scenario);
  runner.train();

  const auto iocs = scenario.ioc_seeds();
  std::printf("SOC IOC list: %zu domains\n", iocs.size());
  if (iocs.empty()) return 0;

  bool printed = false;
  runner.run_operation([&](util::Day day, const core::DayAnalysis& analysis) {
    if (printed) return;
    // Seed with a single IOC (the Fig. 8 story), whichever is live today.
    for (const auto& ioc : iocs) {
      if (analysis.graph.find_domain(ioc) == graph::kNoId) continue;
      core::SocSeeds seeds;
      seeds.domains = {ioc};
      const core::BpRunReport report =
          runner.pipeline().run_bp_sochints(analysis, seeds, 0.33);
      if (report.domains.size() < 3) continue;
      printed = true;

      std::printf("\nday %s, seed IOC: %s (campaign %d)\n\n",
                  util::format_day(day).c_str(), ioc.c_str(),
                  scenario.simulator().truth().campaign_of(ioc));
      std::printf("belief propagation expansion:\n");
      std::size_t new_discoveries = 0;
      for (const auto& det : report.domains) {
        const auto category =
            eval::classify_detection(det.name, scenario.oracle());
        if (category == eval::ValidationCategory::NewMalicious) {
          ++new_discoveries;
        }
        std::printf("  iter %zu: %-32s %-10s score %.2f  [%s]\n", det.iteration,
                    det.name.c_str(), core::label_reason_name(det.reason),
                    det.score, eval::validation_category_name(category));
      }
      std::printf("\ncompromised hosts in the community: %zu\n",
                  report.hosts.size());
      for (const auto& host : report.hosts) {
        std::printf("  %s\n", host.c_str());
      }
      std::printf("\nnew discoveries (unknown to VT and SOC): %zu\n",
                  new_discoveries);
      break;
    }
  });
  if (!printed) {
    std::printf("no >=3-domain IOC-seeded community found this month\n");
  }
  bench::print_note(
      "paper (Fig. 8, 2/10): seed xtremesoftnow.ru (Zeus C&C) leads to 7 "
      ".org domains contacted by the same host — four SOC-confirmed, two "
      "VT-only, one (uogwoigiuweyccsw.org) brand new — and a second BP "
      "iteration finds six more hosts with the same malware. Expect a "
      "community mixing known, VT-only and new domains across iterations.");
  return 0;
}
