// Reproduces Fig. 3: CDFs of the time difference between a compromised
// host's first connections to two malicious domains, versus a malicious
// and a rare legitimate domain. The paper reports 56% of malicious pairs
// within 160 s but only 3.8% of malicious-legitimate pairs.
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "eval/lanl_runner.h"

int main() {
  using namespace eid;
  bench::print_header(
      "Fig. 3", "First-visit gap CDFs: malicious-malicious vs malicious-legit");

  sim::LanlScenario scenario(bench::lanl_config());
  eval::LanlRunner runner(scenario);
  runner.bootstrap();

  std::vector<double> mal_mal;
  std::vector<double> mal_legit;

  for (util::Day day = scenario.challenge_begin(); day <= scenario.challenge_end();
       ++day) {
    const auto events = scenario.simulator().reduced_day(day);
    const sim::LanlCase* today_case = nullptr;
    for (const auto& challenge : scenario.cases()) {
      if (challenge.day == day && challenge.training) today_case = &challenge;
    }
    if (today_case != nullptr) {
      const core::DayAnalysis analysis = runner.analyze_events(events, day);
      const std::unordered_set<std::string> answers(
          today_case->answer_domains.begin(), today_case->answer_domains.end());
      for (const std::string& victim : today_case->victim_hosts) {
        const graph::HostId host = analysis.graph.find_host(victim);
        if (host == graph::kNoId) continue;
        // First-visit timestamps of every rare domain this victim touched.
        std::vector<std::pair<util::TimePoint, bool>> visits;  // (ts, malicious)
        for (const graph::DomainId domain : analysis.graph.host_domains(host)) {
          if (!analysis.rare.contains(domain)) continue;
          const auto first = analysis.graph.first_contact(host, domain);
          if (!first) continue;
          visits.emplace_back(*first,
                              answers.contains(analysis.graph.domain_name(domain)));
        }
        for (std::size_t i = 0; i < visits.size(); ++i) {
          if (!visits[i].second) continue;  // anchor on malicious visits
          for (std::size_t j = 0; j < visits.size(); ++j) {
            if (i == j) continue;
            const double gap = std::abs(
                static_cast<double>(visits[i].first - visits[j].first));
            if (visits[j].second) {
              if (i < j) mal_mal.push_back(gap);  // count each pair once
            } else {
              mal_legit.push_back(gap);
            }
          }
        }
      }
    }
    runner.update_history_events(events);
  }

  const std::vector<double> grid = {10,    40,    160,   640,   2560,
                                    10240, 20480, 40960, 70000};
  bench::print_cdf("malicious-malicious first-visit gaps", mal_mal, grid);
  bench::print_cdf("malicious-legitimate first-visit gaps", mal_legit, grid);

  std::printf("\nfraction of gaps <= 160 s: malicious-malicious=%.1f%%  "
              "malicious-legit=%.1f%%\n",
              100.0 * bench::cdf_at(mal_mal, 160.0),
              100.0 * bench::cdf_at(mal_legit, 160.0));
  bench::print_note(
      "paper (Fig. 3): 56% of malicious pairs within 160 s vs 3.8% of "
      "malicious-legit pairs. Expect the malicious CDF far to the left of "
      "the legit CDF with a large gap at small intervals.");
  return 0;
}
