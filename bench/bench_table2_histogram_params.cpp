// Reproduces Table II: the number of malicious automated (host, domain)
// pairs captured in the training and testing attack sets, plus the number
// of ALL automated pairs on testing days, as the dynamic-histogram
// parameters sweep over bin width W and Jeffrey threshold JT.
//
// The paper's selection logic: pick the (W, JT) that captures every
// malicious pair while labeling the fewest legitimate pairs automated —
// W = 10 s, JT = 0.06.
#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "eval/lanl_runner.h"
#include "timing/clustering.h"

int main() {
  using namespace eid;
  bench::print_header("Table II",
                      "Automated malicious pairs vs (W, JT) on the LANL world");

  sim::LanlScenario scenario(bench::lanl_config());
  eval::LanlRunner runner(scenario);
  runner.bootstrap();

  // Collect, per challenge day, the interval series of every (host, rare
  // domain) edge plus whether the pair is malicious (domain in answers and
  // host a victim).
  struct Pair {
    std::vector<double> intervals;
    bool malicious = false;
    bool training = false;
  };
  std::vector<Pair> pairs;

  for (util::Day day = scenario.challenge_begin(); day <= scenario.challenge_end();
       ++day) {
    const auto events = scenario.simulator().reduced_day(day);
    const sim::LanlCase* today_case = nullptr;
    for (const auto& challenge : scenario.cases()) {
      if (challenge.day == day) today_case = &challenge;
    }
    const core::DayAnalysis analysis = runner.analyze_events(events, day);
    std::unordered_set<std::string> answers;
    if (today_case != nullptr) {
      answers.insert(today_case->answer_domains.begin(),
                     today_case->answer_domains.end());
    }
    for (const graph::DomainId domain : analysis.rare) {
      for (const graph::HostId host : analysis.graph.domain_hosts(domain)) {
        const graph::EdgeData* edge = analysis.graph.edge(host, domain);
        if (edge == nullptr || edge->times.size() < 2) continue;
        Pair pair;
        pair.intervals = timing::inter_connection_intervals(edge->times);
        pair.malicious = answers.contains(analysis.graph.domain_name(domain));
        pair.training = sim::LanlScenario::is_training_day(day);
        pairs.push_back(std::move(pair));
      }
    }
    runner.update_history_events(events);
  }

  std::size_t total_malicious_training = 0;
  std::size_t total_malicious_testing = 0;
  for (const Pair& pair : pairs) {
    if (pair.malicious && pair.training) ++total_malicious_training;
    if (pair.malicious && !pair.training) ++total_malicious_testing;
  }
  std::printf("malicious (host,domain) pairs in world: training=%zu testing=%zu\n\n",
              total_malicious_training, total_malicious_testing);

  std::printf("%-10s %-10s | %-18s %-18s %-18s\n", "Bin width", "Jeffrey",
              "Malicious pairs", "Malicious pairs", "All automated");
  std::printf("%-10s %-10s | %-18s %-18s %-18s\n", "W", "threshold JT",
              "in training", "in testing", "pairs, testing days");
  std::printf("---------------------+--------------------------------------------\n");
  const double widths[] = {5.0, 10.0, 20.0};
  const double thresholds[] = {0.0, 0.034, 0.06, 0.35};
  for (const double w : widths) {
    for (const double jt : thresholds) {
      if (w != 5.0 && jt == 0.35) continue;  // match the paper's grid
      timing::PeriodicityDetector::Params params;
      params.bin_width_seconds = w;
      params.jeffrey_threshold = jt;
      const timing::PeriodicityDetector detector(params);
      std::size_t mal_train = 0;
      std::size_t mal_test = 0;
      std::size_t all_test = 0;
      for (const Pair& pair : pairs) {
        if (!detector.test_intervals(pair.intervals).automated) continue;
        if (pair.malicious && pair.training) ++mal_train;
        if (pair.malicious && !pair.training) ++mal_test;
        if (!pair.training) ++all_test;
      }
      std::printf("%-10.0f %-10.3f | %-18zu %-18zu %-18zu\n", w, jt, mal_train,
                  mal_test, all_test);
    }
  }
  bench::print_note(
      "paper (Table II): at W=10s JT=0.06 all 33 malicious pairs are captured "
      "with 16803 total automated testing pairs; larger W or JT only adds "
      "legitimate pairs. Expect the same shape: counts non-decreasing in W "
      "and JT, full malicious coverage around W=10s/JT=0.06 at far lower "
      "legitimate cost than W=5s/JT=0.35.");
  return 0;
}
