// Reproduces Fig. 4: a walkthrough of belief propagation on a case-3 day
// (the paper uses 3/19): starting from one hint host, C&C communication is
// detected first, then similarity labeling expands the community until the
// score threshold stops the algorithm.
#include <cstdio>

#include "bench_common.h"
#include "eval/lanl_runner.h"

int main() {
  using namespace eid;
  bench::print_header("Fig. 4", "Belief propagation walkthrough (case 3, 3/19)");

  sim::LanlScenario scenario(bench::lanl_config());
  eval::LanlRunner runner(scenario);
  runner.bootstrap();

  const util::Day target_day = util::make_day(2013, 3, 19);
  const sim::LanlCase* target = nullptr;
  for (const auto& challenge : scenario.cases()) {
    if (challenge.day == target_day) target = &challenge;
  }
  if (target == nullptr) {
    std::printf("no case on 3/19 in this scenario\n");
    return 1;
  }

  for (util::Day day = scenario.challenge_begin(); day < target_day; ++day) {
    runner.finish_day(day);
  }
  const core::DayAnalysis analysis = runner.analyze_day(target_day);
  const eval::LanlDayResult result = runner.run_case(*target, analysis);

  std::printf("hint host: %s\n", target->hint_hosts.front().c_str());
  std::printf("campaign ground truth: %zu domains, %zu victims\n\n",
              target->answer_domains.size(), target->victim_hosts.size());

  for (const core::BpEvent& event : result.trace) {
    const std::string& domain = analysis.graph.domain_name(event.domain);
    if (event.reason == core::LabelReason::CandC) {
      const features::DomainAutomation* agg = analysis.automation.domain(event.domain);
      std::printf("iter %zu: %-24s labeled C&C (beacon every ~%.0f s, %zu hosts)\n",
                  event.iteration, domain.c_str(),
                  agg != nullptr ? agg->dominant_period() : 0.0,
                  agg != nullptr ? agg->host_count() : 0);
    } else if (event.reason == core::LabelReason::Similarity) {
      std::printf("iter %zu: %-24s labeled by similarity (score %.2f)\n",
                  event.iteration, domain.c_str(), event.score);
    }
    for (const graph::HostId host : event.new_hosts) {
      std::printf("          -> host %s added to compromised set\n",
                  analysis.graph.host_name(host).c_str());
    }
  }
  std::printf("\nfinal: %zu domains labeled, %zu hosts compromised "
              "(tp=%zu fp=%zu fn=%zu)\n",
              result.detected_domains.size(), result.detected_hosts.size(),
              result.counts.tp, result.counts.fp, result.counts.fn);
  for (const auto& domain : result.detected_domains) {
    const bool truth = scenario.simulator().truth().is_malicious(domain);
    std::printf("  %-24s %s\n", domain.c_str(),
                truth ? "confirmed malicious" : "FALSE POSITIVE");
  }
  bench::print_note(
      "paper (Fig. 4): from hint 74.92.144.170, C&C rainbow-.c3 at 10-min "
      "intervals found in iter 1 (second host compromised), then three "
      "domains labeled by similarity (0.82, 0.42, 0.28) before the score "
      "threshold stopped the walk with all labels confirmed.");
  return 0;
}
