// Reproduces Fig. 6(a): domains detected as C&C over the operation month
// as the score threshold sweeps 0.40..0.48, stacked by validation category
// (VirusTotal/SOC-known, new malicious, suspicious, legitimate), plus TDR.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "eval/ac_runner.h"

int main() {
  using namespace eid;
  bench::print_header("Fig. 6(a)", "C&C detections vs score threshold (AC)");

  sim::AcScenario scenario(bench::ac_config());
  eval::AcRunner runner(scenario);
  runner.train();

  // One operation pass: per-domain maximum score across the month.
  std::map<std::string, double> best_score;
  runner.run_operation([&](util::Day, const core::DayAnalysis& analysis) {
    for (const auto& scored : runner.pipeline().score_automated(analysis)) {
      auto [it, inserted] = best_score.emplace(scored.name, scored.score);
      if (!inserted && scored.score > it->second) it->second = scored.score;
    }
  });
  std::printf("distinct automated rare domains in the month: %zu\n\n",
              best_score.size());

  std::printf("%-10s %8s | %10s %8s %10s %6s | %7s %7s\n", "threshold",
              "detected", "VT+SOC", "new mal", "suspicious", "legit", "TDR%",
              "NDR%");
  for (const double tc : {0.40, 0.42, 0.44, 0.45, 0.46, 0.48}) {
    std::vector<std::string> detected;
    for (const auto& [name, score] : best_score) {
      if (score >= tc) detected.push_back(name);
    }
    const eval::ValidationCounts counts =
        eval::validate_detections(detected, scenario.oracle());
    std::printf("%-10.2f %8zu | %10zu %8zu %10zu %6zu | %7.2f %7.2f\n", tc,
                counts.total(), counts.known_malicious, counts.new_malicious,
                counts.suspicious, counts.legitimate, 100.0 * counts.tdr(),
                100.0 * counts.ndr());
  }
  bench::print_note(
      "paper (Fig. 6a): 114 domains at threshold 0.40 dropping to 19 at "
      "0.48 while TDR rises 85.08% -> 94.7%, including 23 new discoveries "
      "at 0.40. Expect the same shape: detections monotonically decreasing, "
      "TDR increasing, a nonzero band of new-malicious + suspicious.");
  return 0;
}
