// Reproduces Fig. 2: the number of distinct domains encountered daily in
// the LANL world after each data-reduction step, for the first week of
// March — All (A records), after filtering internal queries, after
// filtering internal servers, new destinations, rare destinations.
#include <cstdio>

#include "bench_common.h"
#include "eval/lanl_runner.h"

int main() {
  using namespace eid;
  bench::print_header("Fig. 2", "Domains per day after each reduction step (LANL)");

  sim::LanlScenario scenario(bench::lanl_config());
  eval::LanlRunner runner(scenario);
  runner.bootstrap();

  std::printf("%-12s %10s %10s %10s %10s %10s\n", "Day", "All",
              "-internal", "-servers", "New", "Rare");
  for (util::Day day = scenario.challenge_begin();
       day <= scenario.challenge_begin() + 6; ++day) {
    logs::DnsReductionStats stats;
    const auto events = scenario.simulator().reduced_day(day, &stats, nullptr);
    const core::DayAnalysis analysis = runner.analyze_events(events, day);
    std::printf("%-12s %10zu %10zu %10zu %10zu %10zu\n",
                util::format_day(day).c_str(), stats.domains_all,
                stats.domains_after_internal_filter,
                stats.domains_after_server_filter, analysis.new_domains,
                analysis.rare.size());
    runner.update_history_events(events);
  }
  bench::print_note(
      "paper (Fig. 2): ~400k domains/day reduce to ~31.5k rare destinations "
      "(hosts: ~80k -> ~3.4k). Expect the same monotone staircase: each "
      "filter strictly shrinks the set, with the new/rare cut the largest.");
  return 0;
}
