// Ablation study (ours, motivated by §IV-C): the paper's dynamic-histogram
// detector versus (a) the same Jeffrey test over statically-anchored bins,
// (b) the stddev strawman the paper discarded, (c) autocorrelation
// (BotSniffer-style) and (d) FFT spectral peak (BotFinder-style) — swept
// over beacon jitter and outlier rates, measuring detection rate on
// beacons (TPR) and false-alarm rate on human browsing (FPR).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <span>
#include <vector>

#include "bench_common.h"
#include "timing/clustering.h"
#include "timing/periodicity.h"
#include "util/rng.h"

namespace {

using namespace eid;

std::vector<util::TimePoint> make_beacon(util::Rng& rng, double period,
                                         double jitter, double outlier_prob) {
  std::vector<util::TimePoint> out;
  double t = 1000.0;
  for (int i = 0; i < 120; ++i) {
    if (!rng.chance(outlier_prob)) {
      out.push_back(static_cast<util::TimePoint>(t));
    }
    t += period + (jitter > 0 ? rng.normal(0.0, jitter) : 0.0);
  }
  return out;
}

std::vector<util::TimePoint> make_browsing(util::Rng& rng) {
  std::vector<util::TimePoint> out;
  util::TimePoint t = 1000;
  const int sessions = 3 + static_cast<int>(rng.uniform(5));
  for (int s = 0; s < sessions; ++s) {
    t += static_cast<util::TimePoint>(rng.exponential(7000.0));
    const int requests = 2 + static_cast<int>(rng.uniform(10));
    for (int r = 0; r < requests; ++r) {
      t += 1 + static_cast<util::TimePoint>(rng.exponential(25.0));
      out.push_back(t);
    }
  }
  return out;
}

/// A static-bin variant of the paper's detector, for the binning ablation.
bool static_bin_automated(std::span<const util::TimePoint> times, double width,
                          double jt) {
  const auto intervals = timing::inter_connection_intervals(times);
  if (intervals.size() < 4) return false;
  const timing::Histogram h = timing::static_bins(intervals, width);
  const timing::Histogram ref = timing::periodic_reference(h.top_bin().hub);
  return timing::jeffrey_divergence(h, ref) <= jt;
}

struct Rates {
  double tpr = 0.0;
  double fpr = 0.0;
};

template <typename Fn>
Rates measure(Fn&& is_automated, double jitter, double outlier_prob) {
  util::Rng rng(42);
  const int trials = 300;
  int tp = 0;
  int fp = 0;
  static constexpr double kPeriods[] = {120, 300, 600, 1800};
  for (int i = 0; i < trials; ++i) {
    const double period = kPeriods[i % 4];
    if (is_automated(make_beacon(rng, period, jitter, outlier_prob))) ++tp;
    if (is_automated(make_browsing(rng))) ++fp;
  }
  return Rates{static_cast<double>(tp) / trials, static_cast<double>(fp) / trials};
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Periodicity detectors vs jitter and outliers");

  const timing::PeriodicityDetector dynamic;  // W=10, JT=0.06
  const timing::StdDevDetector stddev;
  const timing::AutocorrDetector autocorr;
  const timing::FftDetector fft;

  struct Detector {
    const char* name;
    std::function<bool(std::vector<util::TimePoint>)> test;
  };
  const std::vector<Detector> detectors = {
      {"dynamic-hist (paper)",
       [&](std::vector<util::TimePoint> t) { return dynamic.test(t).automated; }},
      {"static-bins + Jeffrey",
       [&](std::vector<util::TimePoint> t) {
         return static_bin_automated(t, 10.0, 0.06);
       }},
      {"stddev (CoV < 0.1)",
       [&](std::vector<util::TimePoint> t) { return stddev.test(t).automated; }},
      {"autocorrelation",
       [&](std::vector<util::TimePoint> t) { return autocorr.test(t).automated; }},
      {"FFT peak SNR",
       [&](std::vector<util::TimePoint> t) { return fft.test(t).automated; }},
  };

  std::printf("\n-- sweep 1: beacon jitter (stddev seconds), no outliers --\n");
  std::printf("%-24s", "detector");
  const double jitters[] = {0.0, 1.0, 2.0, 4.0, 8.0};
  for (const double j : jitters) std::printf("  j=%-4.0fTPR", j);
  std::printf("   FPR\n");
  for (const auto& det : detectors) {
    std::printf("%-24s", det.name);
    double fpr = 0.0;
    for (const double j : jitters) {
      const Rates r = measure(det.test, j, 0.0);
      std::printf("  %7.2f%%", 100.0 * r.tpr);
      fpr = r.fpr;
    }
    std::printf("  %5.2f%%\n", 100.0 * fpr);
  }

  std::printf("\n-- sweep 2: outlier probability (missed beacons), jitter 2 s --\n");
  std::printf("%-24s", "detector");
  const double outliers[] = {0.0, 0.02, 0.05, 0.10, 0.20};
  for (const double o : outliers) std::printf("  o=%-4.2fTPR", o);
  std::printf("\n");
  for (const auto& det : detectors) {
    std::printf("%-24s", det.name);
    for (const double o : outliers) {
      const Rates r = measure(det.test, 2.0, o);
      std::printf("  %7.2f%%", 100.0 * r.tpr);
    }
    std::printf("\n");
  }

  bench::print_note(
      "expected shape (§IV-C): the dynamic histogram keeps near-100% TPR "
      "under small jitter and outliers; stddev collapses with outliers; "
      "static bins lose beacons whose jitter straddles bin edges; "
      "autocorr/FFT degrade as accumulated phase drift breaks slot "
      "alignment.");
  return 0;
}
