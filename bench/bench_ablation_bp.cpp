// Ablation (ours) of two Algorithm 1 design choices on the LANL world:
//
//  1. Incremental labeling — the paper labels only the single best-scoring
//     domain per iteration, recomputing scores as the labeled set grows —
//     versus the greedy variant labeling everything above Ts at once.
//  2. The Ts threshold and iteration budget, as a precision/recall sweep.
#include <cstdio>

#include "bench_common.h"
#include "eval/lanl_runner.h"

namespace {

using namespace eid;

eval::DetectionCounts run_all_cases(sim::LanlScenario& scenario,
                                    const eval::LanlRunnerConfig& config,
                                    bool label_all, std::size_t max_iterations) {
  eval::LanlRunner runner(scenario, config);
  runner.bootstrap();
  eval::DetectionCounts total;
  for (util::Day day = scenario.challenge_begin(); day <= scenario.challenge_end();
       ++day) {
    const auto events = scenario.simulator().reduced_day(day);
    for (const auto& challenge : scenario.cases()) {
      if (challenge.day != day) continue;
      const core::DayAnalysis analysis = runner.analyze_events(events, day);
      // Re-run BP manually to control the variant flags.
      static const profile::UaHistory kNoUaHistory{};
      const core::DayState state{analysis.graph,
                                 analysis.rare,
                                 analysis.automation,
                                 kNoUaHistory,
                                 scenario.simulator().whois(),
                                 day,
                                 features::WhoisDefaults{}};
      const core::LanlScorer scorer(state, config.scorer);
      std::vector<graph::HostId> seed_hosts;
      for (const auto& host : challenge.hint_hosts) {
        const graph::HostId id = analysis.graph.find_host(host);
        if (id != graph::kNoId) seed_hosts.push_back(id);
      }
      std::vector<graph::DomainId> seed_domains;
      if (seed_hosts.empty()) {
        for (const graph::DomainId dom : analysis.automation.automated_domains()) {
          if (analysis.rare.contains(dom) && scorer.detect_cc(dom)) {
            seed_domains.push_back(dom);
          }
        }
      }
      core::BpConfig bp;
      bp.sim_threshold = config.sim_threshold;
      bp.max_iterations = max_iterations;
      bp.label_all_above_threshold = label_all;
      const core::BpResult result = core::belief_propagation(
          analysis.graph, analysis.rare, seed_hosts, seed_domains, scorer, bp);
      std::vector<std::string> detected;
      for (const graph::DomainId dom : result.domains) {
        detected.push_back(analysis.graph.domain_name(dom));
      }
      total += eval::score_detections(detected, challenge.answer_domains);
    }
    runner.update_history_events(events);
  }
  return total;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Algorithm 1 design choices (LANL world)");
  sim::LanlScenario scenario(bench::lanl_config());
  eval::LanlRunnerConfig config;

  std::printf("-- labeling strategy (Ts=0.25, 5 iterations) --\n");
  std::printf("%-34s %6s %6s %6s %8s %8s\n", "variant", "TP", "FP", "FN", "TDR%",
              "FNR%");
  for (const bool label_all : {false, true}) {
    const eval::DetectionCounts counts =
        run_all_cases(scenario, config, label_all, 5);
    std::printf("%-34s %6zu %6zu %6zu %8.2f %8.2f\n",
                label_all ? "greedy (all >= Ts per iteration)"
                          : "incremental (paper: best only)",
                counts.tp, counts.fp, counts.fn, 100.0 * counts.tdr(),
                100.0 * counts.fnr());
  }

  std::printf("\n-- similarity threshold Ts (incremental, 5 iterations) --\n");
  std::printf("%-10s %6s %6s %6s %8s %8s\n", "Ts", "TP", "FP", "FN", "TDR%",
              "FNR%");
  for (const double ts : {0.10, 0.175, 0.25, 0.50, 0.80}) {
    eval::LanlRunnerConfig swept = config;
    swept.sim_threshold = ts;
    const eval::DetectionCounts counts = run_all_cases(scenario, swept, false, 5);
    std::printf("%-10.3f %6zu %6zu %6zu %8.2f %8.2f\n", ts, counts.tp, counts.fp,
                counts.fn, 100.0 * counts.tdr(), 100.0 * counts.fnr());
  }

  std::printf("\n-- iteration budget (incremental, Ts=0.25) --\n");
  std::printf("%-10s %6s %6s %6s %8s %8s\n", "max_iter", "TP", "FP", "FN", "TDR%",
              "FNR%");
  for (const std::size_t iters : {1u, 2u, 3u, 5u, 10u}) {
    const eval::DetectionCounts counts = run_all_cases(scenario, config, false, iters);
    std::printf("%-10zu %6zu %6zu %6zu %8.2f %8.2f\n", iters, counts.tp,
                counts.fp, counts.fn, 100.0 * counts.tdr(),
                100.0 * counts.fnr());
  }

  bench::print_note(
      "expected: on this well-separated world the two labeling strategies "
      "perform near-identically — incremental labeling matters when score "
      "distributions are noisier, because each label refines the evidence "
      "(timing/IP proximity) for the next. Lowering Ts or raising the "
      "budget trades FPs for FNs around the paper's Ts=0.25 / 5-iteration "
      "operating point; too few iterations starves recall, too many admits "
      "borderline domains.");
  return 0;
}
