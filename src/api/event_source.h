// Streaming ingestion API: a pull-based chunked iterator over reduced
// ConnEvents. The pipeline mines months of web-proxy/DNS/NetFlow logs —
// terabytes per month at enterprise scale — so entry points must never
// require a fully materialized per-day event vector. An EventSource hands
// out bounded chunks instead; api::Detector drives the incremental
// core::Pipeline path (DayAccumulator) from them, and concrete adapters
// exist for in-memory vectors (below), TSV log files, simulated enterprise
// traffic and NetFlow (api/sources.h).
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "logs/records.h"
#include "util/time.h"

namespace eid::api {

/// Default events-per-chunk for sources that let the caller choose.
inline constexpr std::size_t kDefaultChunkEvents = 4096;

/// One batch of reduced events. The span points into source-owned storage
/// and is valid only until the next next_chunk() call on that source.
struct EventChunk {
  util::Day day = 0;
  std::span<const logs::ConnEvent> events;
};

/// Pull-based event stream. Chunks arrive in non-decreasing day order and
/// one day's chunks are contiguous, so consumers can detect day boundaries
/// without buffering. A day the source covers but that produced no events
/// is still announced with one empty chunk (day-boundary marker), so
/// ingestion commits it exactly like the legacy per-day loop did. Chunk
/// granularity is a source choice; consumers must produce identical
/// results for any chunking of the same event sequence (the DayAccumulator
/// contract).
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Next chunk, or std::nullopt once the stream is exhausted.
  virtual std::optional<EventChunk> next_chunk() = 0;

  /// Rewind to the beginning of the stream. Returns false when the source
  /// cannot rewind (e.g. forward-only simulators); the stream is then left
  /// unchanged.
  virtual bool reset() = 0;

  /// Whether next_chunk() may run concurrently with detector compute over
  /// *earlier* chunks (the pipeline_depth > 1 overlap of Detector's
  /// multi-day verbs and the continuous engine). File/vector sources only
  /// touch their own state and return true; SimSource returns false —
  /// simulating the next day registers domains in the shared WHOIS
  /// database the in-flight analysis reads. A false keeps results and
  /// thread-safety intact by degrading that run to sequential day commits.
  virtual bool concurrent_pull_safe() const { return true; }
};

/// Adapter for an in-memory day of events — the bridge from the legacy
/// vector API. Owns its events (move them in) or borrows them (pointer
/// form; the vector must outlive the source). Non-copyable/movable: the
/// owning form keeps an internal pointer into itself.
class VectorSource final : public EventSource {
 public:
  VectorSource(util::Day day, std::vector<logs::ConnEvent> events,
               std::size_t chunk_events = kDefaultChunkEvents)
      : day_(day),
        owned_(std::move(events)),
        events_(&owned_),
        chunk_events_(chunk_events) {}

  VectorSource(util::Day day, const std::vector<logs::ConnEvent>* events,
               std::size_t chunk_events = kDefaultChunkEvents)
      : day_(day), events_(events), chunk_events_(chunk_events) {}

  VectorSource(const VectorSource&) = delete;
  VectorSource& operator=(const VectorSource&) = delete;

  std::optional<EventChunk> next_chunk() override {
    const std::size_t size = events_->size();
    if (pos_ >= size) {
      // An empty day still announces its boundary once, so ingest()
      // commits it to the histories exactly like profile_day({}) does.
      if (size == 0 && !delivered_empty_) {
        delivered_empty_ = true;
        return EventChunk{day_, {}};
      }
      return std::nullopt;
    }
    const std::size_t step = chunk_events_ == 0 ? size : chunk_events_;
    const std::size_t count = std::min(step, size - pos_);
    EventChunk chunk{day_, std::span(events_->data() + pos_, count)};
    pos_ += count;
    return chunk;
  }

  bool reset() override {
    pos_ = 0;
    delivered_empty_ = false;
    return true;
  }

 private:
  util::Day day_;
  std::vector<logs::ConnEvent> owned_;
  const std::vector<logs::ConnEvent>* events_;
  std::size_t chunk_events_;
  std::size_t pos_ = 0;
  bool delivered_empty_ = false;
};

/// Adapter for an in-memory *run* of consecutive days — days[i] is day
/// `first_day + i` — the multi-day sibling of VectorSource, and the
/// natural feed for the day-pipelined verbs (Detector::analyze_days /
/// run_days) and their benchmarks. Borrows the day vectors (they must
/// outlive the source) and is rewindable, so one materialized workload
/// can be replayed under many parallelism configurations. Empty days
/// announce their boundary with one empty chunk, like VectorSource.
class MultiDaySource final : public EventSource {
 public:
  MultiDaySource(util::Day first_day,
                 const std::vector<std::vector<logs::ConnEvent>>* days,
                 std::size_t chunk_events = kDefaultChunkEvents)
      : first_day_(first_day), days_(days), chunk_events_(chunk_events) {}

  std::optional<EventChunk> next_chunk() override {
    while (day_index_ < days_->size()) {
      const std::vector<logs::ConnEvent>& events = (*days_)[day_index_];
      const util::Day day =
          first_day_ + static_cast<util::Day>(day_index_);
      if (events.empty()) {
        ++day_index_;
        pos_ = 0;
        return EventChunk{day, {}};
      }
      if (pos_ >= events.size()) {
        ++day_index_;
        pos_ = 0;
        continue;
      }
      const std::size_t step = chunk_events_ == 0 ? events.size() : chunk_events_;
      const std::size_t count = std::min(step, events.size() - pos_);
      EventChunk chunk{day, std::span(events.data() + pos_, count)};
      pos_ += count;
      return chunk;
    }
    return std::nullopt;
  }

  bool reset() override {
    day_index_ = 0;
    pos_ = 0;
    return true;
  }

 private:
  util::Day first_day_;
  const std::vector<std::vector<logs::ConnEvent>>* days_;
  std::size_t chunk_events_;
  std::size_t day_index_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace eid::api
