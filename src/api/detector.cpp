#include "api/detector.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "storage/state.h"
#include "util/executor.h"

namespace eid::api {

namespace {

/// One-in-flight day-commit slot behind the pipelined multi-day verbs.
/// run() first drains the previous commit — commits execute strictly in
/// day order, which is what keeps every history update and training row
/// bit-identical to the sequential loop — then hands the new one to the
/// pool, so the caller returns to ingesting the next day immediately.
/// Sequential configurations (no executor, or pipeline_depth == 1) run
/// each commit inline.
class DayCommitQueue {
 public:
  DayCommitQueue(util::Executor* executor, std::size_t depth)
      : executor_(depth > 1 ? executor : nullptr) {}

  /// Unwinding mid-stream (a throwing source or commit) must not leave a
  /// task referencing the pipeline in flight; its error, if any, is
  /// already propagating.
  ~DayCommitQueue() {
    try {
      drain();
    } catch (...) {
    }
  }

  void run(std::function<void()> commit) {
    if (executor_ == nullptr) {
      commit();
      return;
    }
    drain();
    pending_ = executor_->submit(std::move(commit));
  }

  /// Wait for the in-flight commit; rethrows anything it threw.
  void drain() { pending_.wait(); }

 private:
  util::Executor* executor_ = nullptr;
  util::Executor::TaskHandle pending_;
};

}  // namespace

IngestReport Detector::ingest(EventSource& source) {
  IngestReport report;
  bool open = false;
  util::Day current = 0;
  DayCommitQueue commits(pipeline_.executor(),
                         source.concurrent_pull_safe()
                             ? pipeline_.config().parallelism.pipeline_depth
                             : 1);
  core::ProfileAccumulator accumulator = pipeline_.begin_profile();
  const auto finish = [&] {
    // The accumulator moves into the task; day N's history commit runs
    // while day N+1 collects into a fresh one.
    auto done =
        std::make_shared<core::ProfileAccumulator>(std::move(accumulator));
    commits.run([this, done] { pipeline_.finish_profile(std::move(*done)); });
    ++report.days;
  };
  while (auto chunk = source.next_chunk()) {
    if (open && chunk->day != current) {
      finish();
      accumulator = pipeline_.begin_profile();
    }
    open = true;
    current = chunk->day;
    accumulator.add_chunk(chunk->events);
    ++report.chunks;
    report.events += chunk->events.size();
  }
  if (open) finish();
  commits.drain();
  return report;
}

IngestReport Detector::ingest(EventSource& source, const core::LabelFn& intel) {
  return analyze_days(
      source, [this, &intel](util::Day, const core::DayAnalysis& analysis) {
        pipeline_.train_from_analysis(analysis, intel);
      });
}

IngestReport Detector::analyze_days(EventSource& source,
                                    const DayAnalysisFn& commit) {
  IngestReport report;
  std::optional<core::DayAccumulator> accumulator;
  DayCommitQueue commits(pipeline_.executor(),
                         source.concurrent_pull_safe()
                             ? pipeline_.config().parallelism.pipeline_depth
                             : 1);
  const auto finish = [&] {
    auto day_acc =
        std::make_shared<core::DayAccumulator>(std::move(*accumulator));
    commits.run([this, &commit, day_acc] {
      const core::DayAnalysis analysis =
          pipeline_.finish_day(std::move(*day_acc));
      commit(analysis.day, analysis);
      pipeline_.update_histories(analysis.graph);
    });
    ++report.days;
  };
  while (auto chunk = source.next_chunk()) {
    if (accumulator && accumulator->day() != chunk->day) {
      finish();
      accumulator.reset();
    }
    if (!accumulator) accumulator.emplace(pipeline_.begin_day(chunk->day));
    accumulator->add_chunk(chunk->events);
    ++report.chunks;
    report.events += chunk->events.size();
  }
  if (accumulator) finish();
  commits.drain();
  return report;
}

std::vector<core::DayReport> Detector::run_days(EventSource& source,
                                                const core::SocSeeds& seeds) {
  std::vector<core::DayReport> reports;
  analyze_days(source,
               [&](util::Day, const core::DayAnalysis& analysis) {
                 reports.push_back(pipeline_.report_day(analysis, seeds));
                 ++days_operated_;
               });
  return reports;
}

core::DayAnalysis Detector::analyze_stream(EventSource& source,
                                           util::Day day) const {
  core::DayAccumulator accumulator = pipeline_.begin_day(day);
  while (auto chunk = source.next_chunk()) {
    accumulator.add_chunk(chunk->events);
  }
  return pipeline_.finish_day(std::move(accumulator));
}

core::DayReport Detector::run_day(EventSource& source, util::Day day,
                                  const core::SocSeeds& seeds) {
  const core::DayAnalysis analysis = analyze_stream(source, day);
  core::DayReport report = pipeline_.report_day(analysis, seeds);
  pipeline_.update_histories(analysis.graph);
  ++days_operated_;
  return report;
}

void Detector::set_intel_domains(std::vector<std::string> domains) {
  std::sort(domains.begin(), domains.end());
  domains.erase(std::unique(domains.begin(), domains.end()), domains.end());
  intel_domains_ = std::move(domains);
}

core::LabelFn Detector::intel_fn() const {
  // Sorted + deduped in set_intel_domains, so membership is a binary search
  // over the snapshot (copied: the returned closure may outlive *this).
  return [domains = intel_domains_](const std::string& domain) {
    return std::binary_search(domains.begin(), domains.end(), domain);
  };
}

bool Detector::save_state(const std::filesystem::path& path,
                          storage::LoadStatus* status) const {
  // Borrow everything — a daily checkpoint must not deep-copy month-scale
  // histories just to read them once.
  storage::DetectorStateView state;
  state.config = &pipeline_.config();
  state.domain_history = &pipeline_.domain_history();
  state.ua_history = &pipeline_.ua_history();
  state.top_sites = pipeline_.top_sites();
  state.cc_model = &pipeline_.cc_model();
  state.sim_model = &pipeline_.sim_model();
  const core::Pipeline::WhoisTrainingStats whois =
      pipeline_.whois_training_stats();
  state.training.whois_age_sum = whois.age_sum;
  state.training.whois_validity_sum = whois.validity_sum;
  state.training.whois_samples = whois.samples;
  state.training.models_ready = pipeline_.models_ready();
  state.intel_domains = &intel_domains_;
  state.counters.days_operated = days_operated_;
  return storage::save_detector_state(state, path,
                                      state.config->parallelism.threads,
                                      status, pipeline_.executor());
}

bool Detector::load_state(const std::filesystem::path& path,
                          storage::LoadStatus* status) {
  std::optional<storage::DetectorState> state =
      storage::load_detector_state(path, status);
  if (!state) return false;
  restore_state(std::move(*state));
  return true;
}

void Detector::restore_state(storage::DetectorState state) {
  pipeline_.set_config(state.config);
  pipeline_.restore_histories(std::move(state.domain_history),
                              std::move(state.ua_history));
  pipeline_.restore_models(std::move(state.cc_model),
                           std::move(state.sim_model),
                           state.training.models_ready);
  pipeline_.restore_whois_training_stats(
      {state.training.whois_age_sum, state.training.whois_validity_sum,
       static_cast<std::size_t>(state.training.whois_samples)});
  if (state.has_top_sites) {
    owned_top_sites_ =
        std::make_unique<profile::TopSitesList>(std::move(state.top_sites));
    pipeline_.set_top_sites(owned_top_sites_.get());
  } else {
    owned_top_sites_.reset();
    pipeline_.set_top_sites(nullptr);
  }
  intel_domains_ = std::move(state.intel_domains);
  days_operated_ = static_cast<std::size_t>(state.counters.days_operated);
}

HealthSnapshot Detector::health_snapshot() const {
  obs::MetricsRegistry& registry = obs::metrics();
  HealthSnapshot health;
  health.days_operated = days_operated_;
  health.events_ingested = registry.counter("eid_ingest_events_total").value();
  health.last_tick_seconds = registry.gauge("eid_rt_last_tick_seconds").value();
  health.rt_backlog_events =
      registry.gauge("eid_rt_poll_backlog_events").value();
  health.executor_queue_depth =
      registry.gauge("eid_executor_queue_depth").value();
  const util::Executor* executor = pipeline_.executor();
  health.executor_workers = executor != nullptr ? executor->worker_count() : 0;
  return health;
}

}  // namespace eid::api
