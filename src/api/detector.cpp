#include "api/detector.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "features/cc_features.h"
#include "features/similarity_features.h"
#include "storage/delta.h"
#include "storage/state.h"
#include "util/crc32.h"
#include "util/executor.h"

namespace eid::api {

namespace {

/// One-in-flight day-commit slot behind the pipelined multi-day verbs.
/// run() first drains the previous commit — commits execute strictly in
/// day order, which is what keeps every history update and training row
/// bit-identical to the sequential loop — then hands the new one to the
/// pool, so the caller returns to ingesting the next day immediately.
/// Sequential configurations (no executor, or pipeline_depth == 1) run
/// each commit inline.
class DayCommitQueue {
 public:
  DayCommitQueue(util::Executor* executor, std::size_t depth)
      : executor_(depth > 1 ? executor : nullptr) {}

  /// Unwinding mid-stream (a throwing source or commit) must not leave a
  /// task referencing the pipeline in flight; its error, if any, is
  /// already propagating.
  ~DayCommitQueue() {
    try {
      drain();
    } catch (...) {
    }
  }

  void run(std::function<void()> commit) {
    if (executor_ == nullptr) {
      commit();
      return;
    }
    drain();
    pending_ = executor_->submit(std::move(commit));
  }

  /// Wait for the in-flight commit; rethrows anything it threw.
  void drain() { pending_.wait(); }

 private:
  util::Executor* executor_ = nullptr;
  util::Executor::TaskHandle pending_;
};

}  // namespace

IngestReport Detector::ingest(EventSource& source) {
  IngestReport report;
  bool open = false;
  util::Day current = 0;
  DayCommitQueue commits(pipeline_.executor(),
                         source.concurrent_pull_safe()
                             ? pipeline_.config().parallelism.pipeline_depth
                             : 1);
  core::ProfileAccumulator accumulator = pipeline_.begin_profile();
  const auto finish = [&] {
    // The accumulator moves into the task; day N's history commit runs
    // while day N+1 collects into a fresh one.
    auto done =
        std::make_shared<core::ProfileAccumulator>(std::move(accumulator));
    commits.run([this, done] { pipeline_.finish_profile(std::move(*done)); });
    ++report.days;
  };
  while (auto chunk = source.next_chunk()) {
    if (open && chunk->day != current) {
      finish();
      accumulator = pipeline_.begin_profile();
    }
    open = true;
    current = chunk->day;
    accumulator.add_chunk(chunk->events);
    ++report.chunks;
    report.events += chunk->events.size();
  }
  if (open) finish();
  commits.drain();
  return report;
}

IngestReport Detector::ingest(EventSource& source, const core::LabelFn& intel) {
  return analyze_days(
      source, [this, &intel](util::Day, const core::DayAnalysis& analysis) {
        pipeline_.train_from_analysis(analysis, intel);
      });
}

IngestReport Detector::analyze_days(EventSource& source,
                                    const DayAnalysisFn& commit) {
  IngestReport report;
  std::optional<core::DayAccumulator> accumulator;
  DayCommitQueue commits(pipeline_.executor(),
                         source.concurrent_pull_safe()
                             ? pipeline_.config().parallelism.pipeline_depth
                             : 1);
  const auto finish = [&] {
    auto day_acc =
        std::make_shared<core::DayAccumulator>(std::move(*accumulator));
    commits.run([this, &commit, day_acc] {
      const core::DayAnalysis analysis =
          pipeline_.finish_day(std::move(*day_acc));
      commit(analysis.day, analysis);
      pipeline_.update_histories(analysis.graph);
    });
    ++report.days;
  };
  while (auto chunk = source.next_chunk()) {
    if (accumulator && accumulator->day() != chunk->day) {
      finish();
      accumulator.reset();
    }
    if (!accumulator) accumulator.emplace(pipeline_.begin_day(chunk->day));
    accumulator->add_chunk(chunk->events);
    ++report.chunks;
    report.events += chunk->events.size();
  }
  if (accumulator) finish();
  commits.drain();
  return report;
}

std::vector<core::DayReport> Detector::run_days(EventSource& source,
                                                const core::SocSeeds& seeds) {
  std::vector<core::DayReport> reports;
  analyze_days(source,
               [&](util::Day, const core::DayAnalysis& analysis) {
                 reports.push_back(pipeline_.report_day(analysis, seeds));
                 ++days_operated_;
               });
  return reports;
}

core::DayAnalysis Detector::analyze_stream(EventSource& source,
                                           util::Day day) const {
  core::DayAccumulator accumulator = pipeline_.begin_day(day);
  while (auto chunk = source.next_chunk()) {
    accumulator.add_chunk(chunk->events);
  }
  return pipeline_.finish_day(std::move(accumulator));
}

core::DayReport Detector::run_day(EventSource& source, util::Day day,
                                  const core::SocSeeds& seeds) {
  const core::DayAnalysis analysis = analyze_stream(source, day);
  core::DayReport report = pipeline_.report_day(analysis, seeds);
  pipeline_.update_histories(analysis.graph);
  ++days_operated_;
  return report;
}

void Detector::set_intel_domains(std::vector<std::string> domains) {
  std::sort(domains.begin(), domains.end());
  domains.erase(std::unique(domains.begin(), domains.end()), domains.end());
  intel_domains_ = std::move(domains);
  delta_.intel_dirty = true;
}

core::LabelFn Detector::intel_fn() const {
  // Sorted + deduped in set_intel_domains, so membership is a binary search
  // over the snapshot (copied: the returned closure may outlive *this).
  return [domains = intel_domains_](const std::string& domain) {
    return std::binary_search(domains.begin(), domains.end(), domain);
  };
}

namespace {

/// Flatten the pipeline's unfinalized training rows (from the given row
/// marks) into the storage interchange format. No-op once models are
/// finalized — an operating detector never re-solves from rows.
void export_unfinalized_rows(const core::Pipeline& pipeline,
                             std::size_t cc_first, std::size_t sim_first,
                             storage::TrainingRows& rows) {
  if (pipeline.models_ready()) return;
  pipeline.export_training_rows(cc_first, sim_first, rows.cc, rows.cc_labels,
                                rows.sim, rows.sim_labels);
  rows.cc_cols = features::kCcFeatureCount;
  rows.sim_cols = features::kSimFeatureCount;
}

/// Borrow everything — a daily checkpoint must not deep-copy month-scale
/// histories just to read them once.
storage::DetectorStateView make_state_view(
    const core::Pipeline& pipeline, const std::vector<std::string>& intel,
    std::size_t days_operated, const storage::TrainingRows* rows) {
  storage::DetectorStateView state;
  state.config = &pipeline.config();
  state.domain_history = &pipeline.domain_history();
  state.ua_history = &pipeline.ua_history();
  state.top_sites = pipeline.top_sites();
  state.cc_model = &pipeline.cc_model();
  state.sim_model = &pipeline.sim_model();
  const core::Pipeline::WhoisTrainingStats whois =
      pipeline.whois_training_stats();
  state.training.whois_age_sum = whois.age_sum;
  state.training.whois_validity_sum = whois.validity_sum;
  state.training.whois_samples = whois.samples;
  state.training.models_ready = pipeline.models_ready();
  state.intel_domains = &intel;
  state.counters.days_operated = days_operated;
  state.training_rows = rows;
  return state;
}

}  // namespace

bool Detector::save_state(const std::filesystem::path& path,
                          storage::LoadStatus* status) const {
  storage::TrainingRows rows;
  export_unfinalized_rows(pipeline_, 0, 0, rows);
  const storage::DetectorStateView state = make_state_view(
      pipeline_, intel_domains_, days_operated_, rows.empty() ? nullptr : &rows);
  const bool ok = storage::save_detector_state(
      state, path, state.config->parallelism.threads, status,
      pipeline_.executor());
  if (ok && delta_.active && delta_.path == path) {
    // A direct full save replaced the base this path's chain was built on;
    // drop the chain before stale frames can shadow (and be dropped
    // against) the new base.
    std::error_code ec;
    std::filesystem::remove(storage::delta_chain_path(path), ec);
    delta_.active = false;
  }
  return ok;
}

bool Detector::full_checkpoint(const std::filesystem::path& path,
                               bool degenerate, storage::LoadStatus* status) {
  storage::TrainingRows rows;
  export_unfinalized_rows(pipeline_, 0, 0, rows);
  const storage::DetectorStateView state = make_state_view(
      pipeline_, intel_domains_, days_operated_, rows.empty() ? nullptr : &rows);
  const std::string bytes = storage::encode_detector_state(
      state, pipeline_.config().parallelism.threads, pipeline_.executor());
  if (!storage::write_file_atomic(path, bytes, status)) {
    delta_.active = false;
    return false;
  }
  std::error_code ec;
  std::filesystem::remove(storage::delta_chain_path(path), ec);
  if (degenerate) {
    delta_.active = false;
    pipeline_.set_history_journaling(false);
    return true;
  }
  delta_.active = true;
  delta_.path = path;
  delta_.base_crc = util::crc32(bytes);
  delta_.next_seq = 1;
  delta_.saves_since_full = 0;
  delta_.cc_rows_mark = pipeline_.cc_training_rows();
  delta_.sim_rows_mark = pipeline_.sim_training_rows();
  delta_.intel_dirty = false;
  delta_.top_sites_dirty = false;
  pipeline_.set_history_journaling(true);  // fresh journal from this base
  return true;
}

bool Detector::save_state_delta(const std::filesystem::path& path,
                                const CheckpointPolicy& policy,
                                storage::LoadStatus* status,
                                const CheckpointExtras& extras) {
  const bool degenerate = policy.full_every <= 1;
  if (degenerate || !delta_.active || delta_.path != path ||
      delta_.saves_since_full + 1 >= policy.full_every) {
    return full_checkpoint(path, degenerate, status);
  }
  if (delta_.top_sites_dirty && pipeline_.top_sites() == nullptr) {
    // Frames can replace a whitelist but carry no "cleared" marker;
    // compact instead of diverging a replica.
    return full_checkpoint(path, false, status);
  }
  const core::Pipeline::HistoryDelta hist = pipeline_.drain_history_journal();
  storage::DeltaInputs inputs;
  inputs.base_crc = delta_.base_crc;
  inputs.seq = delta_.next_seq;
  inputs.day = extras.has_cursor ? extras.cursor_day
                                 : static_cast<util::Day>(days_operated_);
  inputs.days_ingested = pipeline_.domain_history().days_ingested();
  inputs.new_domains = &hist.new_domains;
  const profile::UaHistory& uas = pipeline_.ua_history();
  inputs.ua_entries.reserve(hist.touched_uas.size());
  for (const std::string& ua : hist.touched_uas) {
    bool popular = false;
    std::span<const util::InternId> host_ids;
    if (!uas.entry_view(ua, popular, host_ids)) continue;
    storage::DeltaUaEntryView entry;
    entry.ua = ua;
    entry.popular = popular;
    entry.hosts.reserve(host_ids.size());
    for (const util::InternId id : host_ids) {
      entry.hosts.push_back(uas.host_name(id));
    }
    inputs.ua_entries.push_back(std::move(entry));
  }
  inputs.config = &pipeline_.config();
  inputs.cc_model = &pipeline_.cc_model();
  inputs.sim_model = &pipeline_.sim_model();
  const core::Pipeline::WhoisTrainingStats whois =
      pipeline_.whois_training_stats();
  inputs.training.whois_age_sum = whois.age_sum;
  inputs.training.whois_validity_sum = whois.validity_sum;
  inputs.training.whois_samples = whois.samples;
  inputs.training.models_ready = pipeline_.models_ready();
  inputs.counters.days_operated = days_operated_;
  storage::TrainingRows rows;
  export_unfinalized_rows(pipeline_, delta_.cc_rows_mark, delta_.sim_rows_mark,
                          rows);
  if (!rows.empty()) inputs.training_rows = &rows;
  if (delta_.intel_dirty) inputs.intel_domains = &intel_domains_;
  if (delta_.top_sites_dirty) inputs.top_sites = pipeline_.top_sites();
  if (extras.has_cursor) {
    inputs.has_cursor = true;
    inputs.cursor_day = extras.cursor_day;
    inputs.cursor_offset = extras.cursor_offset;
  }
  inputs.incidents = extras.incidents;
  const std::string payload = storage::encode_delta_frame(inputs);
  if (!storage::append_delta_frame(storage::delta_chain_path(path), payload,
                                   status)) {
    // The drained journal is gone; cold-start the chain so the next save
    // full-rewrites and nothing is lost.
    delta_.active = false;
    return false;
  }
  ++delta_.next_seq;
  ++delta_.saves_since_full;
  delta_.cc_rows_mark = pipeline_.cc_training_rows();
  delta_.sim_rows_mark = pipeline_.sim_training_rows();
  delta_.intel_dirty = false;
  delta_.top_sites_dirty = false;
  obs::metrics().counter("eid_state_delta_frames_total").add(1);
  return true;
}

bool Detector::load_state(const std::filesystem::path& path,
                          storage::LoadStatus* status) {
  return load_state(path, nullptr, status);
}

bool Detector::load_state(const std::filesystem::path& path,
                          storage::ChainLoadReport* report,
                          storage::LoadStatus* status) {
  storage::ChainLoadReport local;
  storage::ChainLoadReport& chain = report != nullptr ? *report : local;
  std::optional<storage::DetectorState> state =
      storage::load_detector_state_chain(path, &chain, status);
  if (!state) return false;
  restore_state(std::move(*state));
  if (!chain.degraded) {
    // Clean replay (a torn tail is fine — append truncates it): continue
    // appending to the same chain from the next sequence number.
    delta_.active = true;
    delta_.path = path;
    delta_.base_crc = chain.base_crc;
    delta_.next_seq = chain.last_seq + 1;
    delta_.saves_since_full = chain.frames_applied;
    delta_.cc_rows_mark = pipeline_.cc_training_rows();
    delta_.sim_rows_mark = pipeline_.sim_training_rows();
    delta_.intel_dirty = false;
    delta_.top_sites_dirty = false;
    pipeline_.set_history_journaling(true);
  }
  return true;
}

void Detector::restore_state(storage::DetectorState state) {
  delta_.active = false;  // chain bookkeeping is cold until a load primes it
  pipeline_.set_history_journaling(false);
  pipeline_.set_config(state.config);
  pipeline_.restore_histories(std::move(state.domain_history),
                              std::move(state.ua_history));
  pipeline_.restore_models(std::move(state.cc_model),
                           std::move(state.sim_model),
                           state.training.models_ready);
  pipeline_.restore_whois_training_stats(
      {state.training.whois_age_sum, state.training.whois_validity_sum,
       static_cast<std::size_t>(state.training.whois_samples)});
  pipeline_.clear_training_rows();
  if (!state.training_rows.empty()) {
    (void)pipeline_.import_training_rows(
        state.training_rows.cc, state.training_rows.cc_labels,
        state.training_rows.sim, state.training_rows.sim_labels);
  }
  if (state.has_top_sites) {
    owned_top_sites_ =
        std::make_unique<profile::TopSitesList>(std::move(state.top_sites));
    pipeline_.set_top_sites(owned_top_sites_.get());
  } else {
    owned_top_sites_.reset();
    pipeline_.set_top_sites(nullptr);
  }
  intel_domains_ = std::move(state.intel_domains);
  days_operated_ = static_cast<std::size_t>(state.counters.days_operated);
  delta_.intel_dirty = false;
  delta_.top_sites_dirty = false;
}

bool Detector::apply_state_delta(const storage::DeltaFrame& frame,
                                 storage::LoadStatus* status) {
  if (!frame.training_rows.empty() &&
      ((frame.training_rows.cc_cols != features::kCcFeatureCount &&
        !frame.training_rows.cc_labels.empty()) ||
       (frame.training_rows.sim_cols != features::kSimFeatureCount &&
        !frame.training_rows.sim_labels.empty()))) {
    storage::set_status(status, storage::LoadError::Malformed,
                        "delta frame: training-row width does not match this "
                        "build's feature count");
    return false;
  }
  // A detector applying frames is a replica of whoever wrote them; it must
  // not also append to that chain (its journals never saw these changes).
  // The first post-takeover save full-rewrites instead.
  delta_.active = false;
  pipeline_.set_history_journaling(false);
  pipeline_.set_config(frame.config);
  pipeline_.restore_models(frame.cc_model, frame.sim_model,
                           frame.training.models_ready);
  pipeline_.restore_whois_training_stats(
      {frame.training.whois_age_sum, frame.training.whois_validity_sum,
       static_cast<std::size_t>(frame.training.whois_samples)});
  pipeline_.absorb_domain_delta(
      frame.new_domains, static_cast<std::size_t>(frame.days_ingested));
  std::vector<std::string_view> host_views;
  for (const auto& entry : frame.ua_entries) {
    host_views.assign(entry.hosts.begin(), entry.hosts.end());
    pipeline_.absorb_ua_entry(
        entry.ua, entry.popular,
        std::span<const std::string_view>(host_views.data(),
                                          host_views.size()));
  }
  if (!frame.training_rows.empty()) {
    (void)pipeline_.import_training_rows(
        frame.training_rows.cc, frame.training_rows.cc_labels,
        frame.training_rows.sim, frame.training_rows.sim_labels);
  }
  if (frame.training.models_ready) pipeline_.clear_training_rows();
  if (frame.has_intel) {
    intel_domains_ = frame.intel_domains;  // frames carry it sorted+unique
  }
  if (frame.has_top_sites) {
    auto sites = std::make_unique<profile::TopSitesList>();
    for (const std::string& site : frame.top_sites) sites->add(site);
    owned_top_sites_ = std::move(sites);
    pipeline_.set_top_sites(owned_top_sites_.get());
  }
  days_operated_ = static_cast<std::size_t>(frame.counters.days_operated);
  return true;
}

HealthSnapshot Detector::health_snapshot() const {
  obs::MetricsRegistry& registry = obs::metrics();
  HealthSnapshot health;
  health.days_operated = days_operated_;
  health.events_ingested = registry.counter("eid_ingest_events_total").value();
  health.last_tick_seconds = registry.gauge("eid_rt_last_tick_seconds").value();
  health.rt_backlog_events =
      registry.gauge("eid_rt_poll_backlog_events").value();
  health.executor_queue_depth =
      registry.gauge("eid_executor_queue_depth").value();
  const util::Executor* executor = pipeline_.executor();
  health.executor_workers = executor != nullptr ? executor->worker_count() : 0;
  return health;
}

}  // namespace eid::api
