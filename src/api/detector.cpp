#include "api/detector.h"

#include <optional>
#include <utility>

namespace eid::api {

IngestReport Detector::ingest(EventSource& source) {
  IngestReport report;
  bool open = false;
  util::Day current = 0;
  core::ProfileAccumulator accumulator = pipeline_.begin_profile();
  while (auto chunk = source.next_chunk()) {
    if (open && chunk->day != current) {
      pipeline_.finish_profile(std::move(accumulator));
      accumulator = pipeline_.begin_profile();
      ++report.days;
    }
    open = true;
    current = chunk->day;
    accumulator.add_chunk(chunk->events);
    ++report.chunks;
    report.events += chunk->events.size();
  }
  if (open) {
    pipeline_.finish_profile(std::move(accumulator));
    ++report.days;
  }
  return report;
}

IngestReport Detector::ingest(EventSource& source, const core::LabelFn& intel) {
  IngestReport report;
  std::optional<core::DayAccumulator> accumulator;
  const auto finish = [&] {
    const core::DayAnalysis analysis =
        pipeline_.finish_day(std::move(*accumulator));
    pipeline_.train_from_analysis(analysis, intel);
    pipeline_.update_histories(analysis.graph);
    ++report.days;
  };
  while (auto chunk = source.next_chunk()) {
    if (accumulator && accumulator->day() != chunk->day) {
      finish();
      accumulator.reset();
    }
    if (!accumulator) accumulator.emplace(pipeline_.begin_day(chunk->day));
    accumulator->add_chunk(chunk->events);
    ++report.chunks;
    report.events += chunk->events.size();
  }
  if (accumulator) finish();
  return report;
}

core::DayAnalysis Detector::analyze_stream(EventSource& source,
                                           util::Day day) const {
  core::DayAccumulator accumulator = pipeline_.begin_day(day);
  while (auto chunk = source.next_chunk()) {
    accumulator.add_chunk(chunk->events);
  }
  return pipeline_.finish_day(std::move(accumulator));
}

core::DayReport Detector::run_day(EventSource& source, util::Day day,
                                  const core::SocSeeds& seeds) {
  const core::DayAnalysis analysis = analyze_stream(source, day);
  core::DayReport report = pipeline_.report_day(analysis, seeds);
  pipeline_.update_histories(analysis.graph);
  return report;
}

}  // namespace eid::api
