#include "api/sources.h"

#include <algorithm>
#include <string>
#include <utility>

#ifndef _WIN32
#include <sys/stat.h>
#endif

#include "logs/io.h"
#include "obs/metrics.h"
#include "util/fault_injection.h"

namespace eid::api {

namespace {

/// Ingestion accounting on the process registry, fed as deltas from the
/// per-source Stats after each next_chunk() — the Stats structs remain
/// the single source of truth; these are the fleet-wide totals.
struct SourceMetrics {
  obs::Counter& lines = obs::metrics().counter("eid_source_lines_total");
  obs::Counter& parsed = obs::metrics().counter("eid_source_parsed_lines_total");
  obs::Counter& malformed =
      obs::metrics().counter("eid_source_malformed_lines_total");
  obs::Counter& bytes = obs::metrics().counter("eid_source_bytes_total");
  obs::Counter& events = obs::metrics().counter("eid_source_events_total");
  obs::Gauge& partial_line =
      obs::metrics().gauge("eid_source_partial_line_bytes");
  obs::Counter& rotations =
      obs::metrics().counter("eid_source_rotations_total");
  obs::Counter& transient_errors =
      obs::metrics().counter("eid_source_transient_errors_total");
  obs::Counter& flows = obs::metrics().counter("eid_source_flows_total");
  obs::Counter& flows_kept =
      obs::metrics().counter("eid_source_flows_kept_total");
  obs::Counter& flows_unattributed =
      obs::metrics().counter("eid_source_flows_unattributed_total");
};

SourceMetrics& source_metrics() {
  static SourceMetrics metrics;
  return metrics;
}

}  // namespace

// ---------------------------------------------------------------------------
// TsvFileSource

TsvFileSource::TsvFileSource(std::filesystem::path path, util::Day day,
                             const logs::DhcpTable& leases,
                             logs::ProxyReductionConfig reduction,
                             std::size_t chunk_records)
    : path_(std::move(path)),
      day_(day),
      format_(Format::Proxy),
      leases_(&leases),
      proxy_reduction_(std::move(reduction)),
      chunk_records_(chunk_records == 0 ? kDefaultChunkEvents : chunk_records) {
  open();
}

TsvFileSource::TsvFileSource(std::filesystem::path path, util::Day day,
                             logs::DnsReductionConfig reduction,
                             std::size_t chunk_records)
    : path_(std::move(path)),
      day_(day),
      format_(Format::Dns),
      dns_reduction_(std::move(reduction)),
      chunk_records_(chunk_records == 0 ? kDefaultChunkEvents : chunk_records) {
  open();
}

void TsvFileSource::open() {
  util::FaultInjector& faults = util::FaultInjector::instance();
  if (faults.any_armed() && faults.fail_open(util::FaultPoint::TailOpen)) {
    stats_.opened = false;
    return;
  }
  file_.open(path_);
  stats_.opened = static_cast<bool>(file_);
  identity_known_ = false;
#ifndef _WIN32
  if (stats_.opened) {
    struct ::stat st{};
    if (::stat(path_.c_str(), &st) == 0) {
      file_dev_ = static_cast<std::uint64_t>(st.st_dev);
      file_ino_ = static_cast<std::uint64_t>(st.st_ino);
      identity_known_ = true;
    }
  }
#endif
}

void TsvFileSource::publish_stats() {
  SourceMetrics& metrics = source_metrics();
  metrics.lines.add(stats_.lines - published_.lines);
  metrics.parsed.add(stats_.parsed - published_.parsed);
  metrics.malformed.add(stats_.malformed - published_.malformed);
  metrics.bytes.add(stats_.byte_offset - published_.byte_offset);
  metrics.events.add(stats_.events - published_.events);
  metrics.rotations.add(stats_.rotations - published_.rotations);
  metrics.transient_errors.add(stats_.transient_errors -
                               published_.transient_errors);
  metrics.partial_line.set(static_cast<double>(stats_.partial_line_bytes));
  published_ = stats_;
}

bool TsvFileSource::detect_rotation() {
#ifndef _WIN32
  struct ::stat st{};
  if (::stat(path_.c_str(), &st) != 0) {
    // The path vanished: logrotate's unlink window, or the collector died.
    // Treat as transient — a recreated file is picked up (as a rotation)
    // on a later poll.
    return false;
  }
  if (identity_known_ && (static_cast<std::uint64_t>(st.st_dev) != file_dev_ ||
                          static_cast<std::uint64_t>(st.st_ino) != file_ino_)) {
    return true;  // renamed away and recreated
  }
  if (static_cast<std::uint64_t>(st.st_size) < stats_.byte_offset) {
    return true;  // truncated in place (copytruncate rotation)
  }
#else
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path_, ec);
  if (!ec && size < stats_.byte_offset) return true;
#endif
  return false;
}

void TsvFileSource::note_transient_error() {
  ++stats_.transient_errors;
  backoff_polls_ = std::min<std::size_t>(
      backoff_polls_ == 0 ? 1 : backoff_polls_ * 2, 32);
  backoff_remaining_ = backoff_polls_;
}

std::optional<EventChunk> TsvFileSource::next_chunk() {
  if (tail_) {
    // Exponential backoff after transient failures: sit out this poll.
    if (backoff_remaining_ > 0) {
      --backoff_remaining_;
      return std::nullopt;
    }
    // The file may not exist yet (collector not started): retry the open.
    // That is expected startup state — the contract is "retried on every
    // call" — so only an open that fails with the file *present* counts
    // as a transient error and backs off.
    if (!stats_.opened) {
      file_.close();
      file_.clear();
      open();
      if (!stats_.opened) {
        std::error_code ec;
        if (std::filesystem::exists(path_, ec)) note_transient_error();
        publish_stats();
        return std::nullopt;
      }
    }
    if (detect_rotation()) {
      // New file under the same name (or truncated in place): everything
      // already consumed is gone; start over at offset 0. Reset the
      // published cursor with it or the byte-delta math underflows.
      ++stats_.rotations;
      stats_.byte_offset = 0;
      published_.byte_offset = 0;
      stats_.partial_line_bytes = 0;
      file_.close();
      file_.clear();
      open();
      if (!stats_.opened) {
        note_transient_error();
        publish_stats();
        return std::nullopt;
      }
    }
    util::FaultInjector& faults = util::FaultInjector::instance();
    if (faults.any_armed()) {
      bool fail = false;
      std::string probe;  // FailOp is the only meaningful tail-read fault
      faults.filter_read(util::FaultPoint::TailRead, probe, fail);
      if (fail) {
        note_transient_error();
        publish_stats();
        return std::nullopt;
      }
    }
    backoff_polls_ = 0;  // reachable and readable: full retry speed again
    // Clear a previous pass's eof and resume at the last complete line.
    // A partially written trailing line left there is re-read whole once
    // its newline lands.
    file_.clear();
    file_.seekg(static_cast<std::streamoff>(stats_.byte_offset));
  }
  std::string line;
  // A chunk of records can reduce to zero events (all dropped); keep
  // reading until something survives or the file is exhausted.
  while (file_) {
    std::vector<logs::DnsRecord> dns_records;
    std::vector<logs::ProxyRecord> proxy_records;
    std::size_t parsed = 0;
    while (parsed < chunk_records_ && std::getline(file_, line)) {
      if (file_.eof()) {
        // Successful getline that hit eof = final line with no trailing
        // newline. In tail mode it may still be mid-write: leave it (and
        // the offset) for the next poll. Batch mode takes it as-is.
        if (tail_) {
          stats_.partial_line_bytes = line.size();
          break;
        }
        stats_.byte_offset += line.size();
      } else {
        stats_.byte_offset += line.size() + 1;
        stats_.partial_line_bytes = 0;
      }
      if (line.empty()) continue;
      ++stats_.lines;
      if (format_ == Format::Dns) {
        if (auto rec = logs::parse_dns_line(line)) {
          dns_records.push_back(std::move(*rec));
          ++parsed;
          ++stats_.parsed;
        } else {
          ++stats_.malformed;
        }
      } else {
        if (auto rec = logs::parse_proxy_line(line)) {
          proxy_records.push_back(std::move(*rec));
          ++parsed;
          ++stats_.parsed;
        } else {
          ++stats_.malformed;
        }
      }
    }
    if (parsed == 0) break;
    buffer_ = format_ == Format::Dns
                  ? logs::reduce_dns(dns_records, dns_reduction_)
                  : logs::reduce_proxy(proxy_records, *leases_, proxy_reduction_);
    if (!buffer_.empty()) {
      stats_.events += buffer_.size();
      publish_stats();
      return EventChunk{day_, buffer_};
    }
  }
  publish_stats();
  // Day-boundary marker: a readable file whose lines all reduced away is
  // still an (empty) day, exactly like the legacy read-then-profile loop.
  // Not in tail mode — there the stream has no end, only "nothing yet".
  if (!tail_ && stats_.opened && stats_.events == 0 && !empty_marker_sent_) {
    empty_marker_sent_ = true;
    return EventChunk{day_, {}};
  }
  return std::nullopt;
}

bool TsvFileSource::reset() {
  file_.close();
  file_.clear();
  stats_ = Stats{};
  published_ = Stats{};  // a replay's counts are new fleet-total increments
  buffer_.clear();
  empty_marker_sent_ = false;
  backoff_polls_ = 0;
  backoff_remaining_ = 0;
  open();
  return stats_.opened;
}

// ---------------------------------------------------------------------------
// SimSource

SimSource::SimSource(sim::EnterpriseSimulator& simulator, util::Day first,
                     util::Day last, std::size_t chunk_events)
    : simulator_(&simulator),
      next_day_(first),
      last_(last),
      chunk_events_(chunk_events == 0 ? kDefaultChunkEvents : chunk_events) {}

std::optional<EventChunk> SimSource::next_chunk() {
  while (pos_ >= buffer_.size()) {
    if (next_day_ > last_) return std::nullopt;
    current_day_ = next_day_++;
    buffer_ = simulator_->reduced_day(current_day_);
    pos_ = 0;
    // Day-boundary marker for a day with no surviving events.
    if (buffer_.empty()) return EventChunk{current_day_, {}};
  }
  const std::size_t count = std::min(chunk_events_, buffer_.size() - pos_);
  EventChunk chunk{current_day_, std::span(buffer_.data() + pos_, count)};
  pos_ += count;
  return chunk;
}

// ---------------------------------------------------------------------------
// NetflowSource

NetflowSource::NetflowSource(util::Day day, std::vector<logs::FlowRecord> flows,
                             const logs::PassiveDnsCache& pdns,
                             logs::FlowReductionConfig reduction,
                             std::size_t chunk_flows)
    : day_(day),
      flows_(std::move(flows)),
      pdns_(&pdns),
      reduction_(std::move(reduction)),
      chunk_flows_(chunk_flows == 0 ? kDefaultChunkEvents : chunk_flows) {}

std::optional<EventChunk> NetflowSource::next_chunk() {
  while (pos_ < flows_.size()) {
    const std::size_t count = std::min(chunk_flows_, flows_.size() - pos_);
    logs::FlowReductionStats chunk_stats;
    buffer_ = logs::reduce_flows(
        std::span(flows_.data() + pos_, count), *pdns_, reduction_, &chunk_stats);
    pos_ += count;
    stats_.total_flows += chunk_stats.total_flows;
    stats_.port_filtered += chunk_stats.port_filtered;
    stats_.internal_destinations += chunk_stats.internal_destinations;
    stats_.unattributed += chunk_stats.unattributed;
    stats_.kept += chunk_stats.kept;
    SourceMetrics& metrics = source_metrics();
    metrics.flows.add(chunk_stats.total_flows);
    metrics.flows_kept.add(chunk_stats.kept);
    metrics.flows_unattributed.add(chunk_stats.unattributed);
    if (!buffer_.empty()) return EventChunk{day_, buffer_};
  }
  // Day-boundary marker for a day where no flow survived attribution.
  if (stats_.kept == 0 && !empty_marker_sent_) {
    empty_marker_sent_ = true;
    return EventChunk{day_, {}};
  }
  return std::nullopt;
}

bool NetflowSource::reset() {
  pos_ = 0;
  stats_ = logs::FlowReductionStats{};
  buffer_.clear();
  empty_marker_sent_ = false;
  return true;
}

}  // namespace eid::api
