// Concrete EventSource adapters for the workloads the system ingests:
//
//  * TsvFileSource   — replayed TSV log files (logs/io.h line formats),
//                      parsed and reduced chunk-by-chunk so a multi-
//                      terabyte file never has to fit in memory. Malformed
//                      lines follow the std::nullopt contract of
//                      logs::parse_*: counted, skipped, never aborting.
//  * SimSource       — live simulated enterprise traffic over a day range
//                      (sim::EnterpriseSimulator), day by day.
//  * NetflowSource   — NetFlow records attributed through a passive-DNS
//                      cache (logs/netflow.h), reduced chunk-by-chunk.
//
// All adapters emit the same reduced ConnEvent stream, so every workload
// flows through one uniform api::Detector entry point.
#pragma once

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "api/event_source.h"
#include "logs/dhcp.h"
#include "logs/netflow.h"
#include "logs/reduction.h"
#include "sim/enterprise.h"

namespace eid::api {

/// Streams one day's TSV log file (DNS or proxy flavor) as reduced events.
/// Lines are parsed with logs::parse_dns_line / logs::parse_proxy_line;
/// each chunk of parsed records goes through the matching logs::reduce_*.
/// Note: reduce_* orders each chunk by timestamp, so with an unsorted file
/// the concatenated stream is only chunk-locally ordered — all downstream
/// analysis is order-independent (edge timestamps are re-sorted at
/// finalize), so results do not depend on the chunking.
class TsvFileSource final : public EventSource {
 public:
  /// Per-file ingestion accounting, surfaced to operators (a deployment
  /// must notice a collector that starts writing garbage).
  struct Stats {
    std::size_t lines = 0;      ///< non-empty lines read
    std::size_t parsed = 0;     ///< lines parsed into records
    std::size_t malformed = 0;  ///< std::nullopt from logs::parse_*
    std::size_t events = 0;     ///< reduced events handed out
    /// Tail mode: times the file was detected as rotated or truncated
    /// (inode/device changed, or it shrank below the cursor) and re-read
    /// from offset 0.
    std::size_t rotations = 0;
    /// Tail mode: transient open/read failures absorbed (each backs the
    /// retry cadence off exponentially; any successful poll resets it).
    std::size_t transient_errors = 0;
    /// Byte offset just past the last *complete* line consumed — the
    /// resume point for tail mode, and an operator-visible progress
    /// cursor for batch replay.
    std::uint64_t byte_offset = 0;
    /// Bytes of a partially written trailing line seen at the end of the
    /// last tail-mode poll (no newline yet, so not parsed and not counted
    /// malformed). 0 once the newline lands or outside tail mode. Lets an
    /// operator distinguish "collector idle" from "collector stalled
    /// mid-line" — also the eid_source_partial_line_bytes gauge.
    std::size_t partial_line_bytes = 0;
    bool opened = false;
  };

  /// Proxy flavor. `leases` must outlive the source.
  TsvFileSource(std::filesystem::path path, util::Day day,
                const logs::DhcpTable& leases,
                logs::ProxyReductionConfig reduction,
                std::size_t chunk_records = kDefaultChunkEvents);

  /// DNS flavor.
  TsvFileSource(std::filesystem::path path, util::Day day,
                logs::DnsReductionConfig reduction,
                std::size_t chunk_records = kDefaultChunkEvents);

  std::optional<EventChunk> next_chunk() override;
  bool reset() override;

  /// Tail a growing file (`enterprise_monitor --follow`). next_chunk()
  /// then never reports end-of-stream as final: when the file is
  /// exhausted it returns std::nullopt for *now*, and a later call
  /// resumes at the last complete line's byte offset to pick up appended
  /// data. A partially written trailing line (no newline yet) is left
  /// untouched — not parsed, not counted malformed — until its newline
  /// lands. A file that does not exist yet is retried on every call.
  /// The day-boundary marker for an all-empty file is suppressed (a tail
  /// never knows the day is over; the engine closes days from chunk tags
  /// or finish()).
  void set_tail(bool enabled) { tail_ = enabled; }

  /// Tail mode resume (failover takeover / checkpointed cursor): skip the
  /// file prefix a previous process already consumed. Call before the
  /// first next_chunk(); the skipped bytes are not re-counted in the
  /// process metrics.
  void resume_at(std::uint64_t byte_offset) {
    stats_.byte_offset = byte_offset;
    published_.byte_offset = byte_offset;
  }

  /// Per-source ingestion accounting. The same counts feed the process
  /// metrics registry (eid_source_* series) as deltas after every
  /// next_chunk() call; this struct stays the per-file view.
  const Stats& stats() const { return stats_; }

 private:
  enum class Format { Dns, Proxy };

  void open();
  void publish_stats();
  /// Tail mode: did the file under `path_` rotate (new inode/device) or
  /// shrink below the cursor? Detecting it resets the cursor to 0.
  bool detect_rotation();
  /// Count a transient open/read failure and double the retry backoff
  /// (capped): the next `backoff_remaining_` polls return "nothing yet"
  /// without touching the file.
  void note_transient_error();

  std::filesystem::path path_;
  util::Day day_;
  Format format_;
  const logs::DhcpTable* leases_ = nullptr;
  logs::ProxyReductionConfig proxy_reduction_;
  logs::DnsReductionConfig dns_reduction_;
  std::size_t chunk_records_;

  std::ifstream file_;
  Stats stats_;
  Stats published_;  ///< registry counters already cover these amounts
  std::vector<logs::ConnEvent> buffer_;
  bool empty_marker_sent_ = false;
  bool tail_ = false;

  // Tail-mode file identity (rotation detection) and retry backoff.
  bool identity_known_ = false;
  std::uint64_t file_dev_ = 0;
  std::uint64_t file_ino_ = 0;
  std::size_t backoff_polls_ = 0;     ///< current backoff width (polls)
  std::size_t backoff_remaining_ = 0; ///< polls left before the next retry
};

/// Streams simulated enterprise traffic for [first, last], one day at a
/// time, in caller-sized chunks. Forward-only (simulators advance their
/// DHCP world chronologically), so reset() returns false.
class SimSource final : public EventSource {
 public:
  SimSource(sim::EnterpriseSimulator& simulator, util::Day first,
            util::Day last, std::size_t chunk_events = kDefaultChunkEvents);

  std::optional<EventChunk> next_chunk() override;
  bool reset() override { return false; }

  /// Simulating a day mutates the scenario's shared WHOIS database, which
  /// analysis threads read — day commits must not overlap the pull.
  bool concurrent_pull_safe() const override { return false; }

 private:
  sim::EnterpriseSimulator* simulator_;
  util::Day next_day_;
  util::Day last_;
  util::Day current_day_ = 0;
  std::size_t chunk_events_;

  std::vector<logs::ConnEvent> buffer_;
  std::size_t pos_ = 0;
};

/// Streams one day of NetFlow records, attributing each flow to a domain
/// through the passive-DNS cache and reducing chunk-by-chunk. `pdns` must
/// outlive the source.
class NetflowSource final : public EventSource {
 public:
  NetflowSource(util::Day day, std::vector<logs::FlowRecord> flows,
                const logs::PassiveDnsCache& pdns,
                logs::FlowReductionConfig reduction = {},
                std::size_t chunk_flows = kDefaultChunkEvents);

  std::optional<EventChunk> next_chunk() override;
  bool reset() override;

  /// Reduction accounting aggregated over the chunks handed out so far.
  const logs::FlowReductionStats& stats() const { return stats_; }

 private:
  util::Day day_;
  std::vector<logs::FlowRecord> flows_;
  const logs::PassiveDnsCache* pdns_;
  logs::FlowReductionConfig reduction_;
  std::size_t chunk_flows_;

  std::size_t pos_ = 0;
  logs::FlowReductionStats stats_;
  std::vector<logs::ConnEvent> buffer_;
  bool empty_marker_sent_ = false;
};

}  // namespace eid::api
