// eid::api::Detector — the public facade over the Fig. 1 system, built
// around streaming ingestion. Every verb consumes an EventSource instead
// of a materialized event vector, so the same code path serves in-memory
// days, replayed TSV log files, live simulation and NetFlow — and scales
// to out-of-core datasets: a day is folded into the analysis chunk by
// chunk (graph/interner updates per chunk, profile lookups and feature
// analysis once at day end), never holding the raw day in memory.
//
//   Detector detector(config, whois);
//   detector.ingest(bootstrap_source);          // profiling (histories)
//   detector.ingest(training_source, intel);    // labeled regression rows
//   detector.finalize_training();
//   DayReport report = detector.run_day(day_source, day, seeds);
//
// Results are bit-identical to the legacy core::Pipeline vector entry
// points for any chunking of the same event sequence (see
// tests/api_equivalence_test.cpp).
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/event_source.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/status.h"

namespace eid::storage {
struct ChainLoadReport;
struct DeltaFrame;
struct DetectorState;
}

namespace eid::core {
class IncidentStore;
}

namespace eid::rt {
class ContinuousEngine;
class SimClock;
struct EngineConfig;
struct ContinuousReport;
}

namespace eid::api {

/// Aggregate counters for one ingest() call.
struct IngestReport {
  std::size_t days = 0;
  std::size_t chunks = 0;
  std::size_t events = 0;
};

/// One glanceable runtime-health view for a supervisor or status endpoint,
/// assembled from this detector's counters and the process metrics
/// registry (so the executor/rt figures cover whatever pipeline this
/// detector drives).
struct HealthSnapshot {
  std::size_t days_operated = 0;       ///< committed operation days
  std::uint64_t events_ingested = 0;   ///< eid_ingest_events_total
  double last_tick_seconds = 0.0;      ///< latest rt evaluation wall time
  double rt_backlog_events = 0.0;      ///< events held by the rt window
  double executor_queue_depth = 0.0;   ///< tasks queued, not yet picked up
  std::size_t executor_workers = 0;    ///< pool size (0 = inline execution)
};

/// How Detector::save_state_delta balances save cost against chain length.
struct CheckpointPolicy {
  /// Full-checkpoint rewrite (compaction) every this many saves; the saves
  /// in between append O(day's growth) delta frames to "<state>.delta".
  /// 0 or 1 degrades to a full rewrite on every save.
  std::size_t full_every = 7;
};

/// Failover payload carried inside delta frames (storage/delta.h): where
/// in the durable log the day tail stands, and the incident store a hot
/// standby resumes emission dedup from. Both optional.
struct CheckpointExtras {
  bool has_cursor = false;
  util::Day cursor_day = 0;         ///< day the tail cursor points into
  std::uint64_t cursor_offset = 0;  ///< byte offset into that day's log
  const core::IncidentStore* incidents = nullptr;
};

/// Per-day callback of Detector::analyze_days. With pipeline_depth > 1 it
/// runs on an executor worker, overlapped with the *ingestion* of the
/// following day — never concurrently with another commit, with the end of
/// the stream, or with the caller between analyze_days calls — so it may
/// freely mutate caller state it owns, but must not touch the EventSource.
using DayAnalysisFn =
    std::function<void(util::Day day, const core::DayAnalysis& analysis)>;

class Detector {
 public:
  Detector(core::PipelineConfig config, const features::WhoisSource& whois)
      : pipeline_(config, whois) {}

  // ---- Training (Fig. 1, left) ----

  /// Stream days into the profiling stage: domain/UA histories only.
  /// Day boundaries come from the chunk tags; each day is committed to the
  /// histories when its last chunk has been consumed. With
  /// parallelism.pipeline_depth > 1 each day's commit runs on the worker
  /// pool while the next day's chunks are ingested (commits stay strictly
  /// day-ordered — bit-identical histories).
  IngestReport ingest(EventSource& source);

  /// Stream labeled days into regression training: per day, incremental
  /// analysis, then C&C + similarity row extraction against `intel`, then
  /// the end-of-day history update. Day-pipelined like the profiling
  /// overload; training rows accumulate in day order either way.
  IngestReport ingest(EventSource& source, const core::LabelFn& intel);

  /// Fit the C&C and similarity regressions from the accumulated rows.
  core::TrainingReport finalize_training() {
    return pipeline_.finalize_training();
  }

  /// Install externally-fit models (core/model_io.h persistence).
  void set_models(core::ScoredModel cc, core::ScoredModel sim) {
    pipeline_.set_models(std::move(cc), std::move(sim));
  }

  /// Install a global-popularity whitelist; must outlive the detector.
  /// (load_state() replaces an installed list with a detector-owned copy
  /// when the checkpoint carries one.)
  void set_top_sites(const profile::TopSitesList* top_sites) {
    owned_top_sites_.reset();
    pipeline_.set_top_sites(top_sites);
    delta_.top_sites_dirty = true;
  }

  /// External intelligence (IOC) snapshot carried with the detector state.
  /// intel_fn() adapts it to the LabelFn the training verbs take.
  void set_intel_domains(std::vector<std::string> domains);
  const std::vector<std::string>& intel_domains() const {
    return intel_domains_;
  }
  core::LabelFn intel_fn() const;

  /// Retune day-path parallelism (worker threads + ingest shards). Pure
  /// performance knobs: every report stays bit-identical for any values,
  /// so deployments size this to the hardware with no revalidation.
  void set_parallelism(core::Parallelism parallelism) {
    pipeline_.set_parallelism(parallelism);
  }

  // ---- Operation (Fig. 1, right) ----

  /// Build one day's pre-threshold analysis incrementally from the stream.
  /// The source is expected to carry a single day's traffic; the analysis
  /// is keyed by `day` regardless of chunk tags. No history update.
  core::DayAnalysis analyze_stream(EventSource& source, util::Day day) const;

  /// Multi-day analysis over a day-tagged stream: per day, incremental
  /// ingest, finish_day, `commit(day, analysis)` (threshold sweeps,
  /// reporting — whatever the caller does with a day), then the end-of-day
  /// history update. With parallelism.pipeline_depth > 1, day N's
  /// finalize/commit/history stage runs on the pipeline's worker pool
  /// while day N+1's chunks are ingested; commits stay strictly
  /// day-ordered, so every result is bit-identical to the depth-1 loop
  /// (see DayAnalysisFn for what `commit` may touch).
  IngestReport analyze_days(EventSource& source, const DayAnalysisFn& commit);

  /// Multi-day operation: analyze_days + report_day per day (the
  /// day-pipelined equivalent of calling run_day per day).
  std::vector<core::DayReport> run_days(EventSource& source,
                                        const core::SocSeeds& seeds = {});

  /// Full operation day: analyze_stream + C&C detection + both BP modes +
  /// end-of-day history update (from the day graph — the raw events are
  /// never retained).
  core::DayReport run_day(EventSource& source, util::Day day,
                          const core::SocSeeds& seeds = {});

  /// End-of-day history update for a day analyzed with analyze_stream()
  /// (callers that sweep thresholds before committing the day).
  void update_histories(const core::DayAnalysis& analysis) {
    pipeline_.update_histories(analysis.graph);
  }

  /// Continuous operation (rt/engine.h): replay the source through a
  /// sliding-window micro-batch engine that emits provisional incidents at
  /// sub-day latency and closes each day with a DayReport bit-identical to
  /// run_day on the same stream. Day boundaries come from the chunk tags,
  /// like ingest(). Sim time is driven by `clock`; nullptr uses a
  /// ReplayClock (sim time = high-water mark of event timestamps).
  /// Defined in rt/engine.cpp.
  rt::ContinuousReport run_continuous(EventSource& source,
                                      const rt::EngineConfig& config,
                                      rt::SimClock* clock = nullptr);

  // ---- Checkpoint/restore (storage/state.h) ----

  /// Snapshot everything the detector has accumulated — histories, trained
  /// models, top-sites whitelist, intel, config, counters — into one
  /// binary state file (atomic tmp-file + rename). Encoding fans out over
  /// config().parallelism.threads. Returns false with the reason in
  /// `status` on failure. Note: regression rows of an *unfinalized*
  /// training run are not carried; checkpoint after finalize_training().
  bool save_state(const std::filesystem::path& path,
                  storage::LoadStatus* status = nullptr) const;

  /// Restore a snapshot into this detector, replacing its configuration,
  /// histories, models, whitelist and counters. The WHOIS source from
  /// construction is kept. A detector restored from a day-N checkpoint
  /// produces bit-identical DayReports for day N+1 versus the
  /// uninterrupted run (tests/storage_checkpoint_test.cpp).
  bool load_state(const std::filesystem::path& path,
                  storage::LoadStatus* status = nullptr);

  /// Apply an already-decoded snapshot (callers that inspect a
  /// storage::load_detector_state() result before committing to it avoid
  /// decoding the file twice).
  void restore_state(storage::DetectorState state);

  // ---- Delta checkpoints + failover (storage/delta.h) ----

  /// Incremental daily save: every policy.full_every-th call rewrites the
  /// full checkpoint (and truncates the chain); the calls in between
  /// append one delta frame — the domains first seen, UA entries touched
  /// and training rows appended since the previous save, plus the always-
  /// small absolute sections — costing O(day's growth) instead of
  /// O(month-scale history). `extras` rides the failover payload (rt tail
  /// cursor, incident snapshot) into the frame. Falls back to a full
  /// rewrite whenever the chain bookkeeping is cold (first save, path
  /// change, degraded load, failed append). Resuming via load_state() is
  /// bit-identical to resuming from a full save.
  bool save_state_delta(const std::filesystem::path& path,
                        const CheckpointPolicy& policy = {},
                        storage::LoadStatus* status = nullptr,
                        const CheckpointExtras& extras = {});

  /// load_state that also replays the delta chain next to `path` and
  /// reports what it applied (frames, failover cursor, incidents). On a
  /// clean replay the detector continues appending to the same chain; on a
  /// degraded one the next save_state_delta compacts.
  bool load_state(const std::filesystem::path& path,
                  storage::ChainLoadReport* report,
                  storage::LoadStatus* status = nullptr);

  /// Apply one decoded delta frame to the live detector — the hot-standby
  /// replica path (rt/standby.h), equivalent to what load_state's chain
  /// replay does per frame. False + status when the frame does not fit.
  bool apply_state_delta(const storage::DeltaFrame& frame,
                         storage::LoadStatus* status = nullptr);

  /// Completed operation days (run_day calls), restored by load_state().
  std::size_t days_operated() const { return days_operated_; }

  // ---- Observability (obs/metrics.h, obs/trace.h) ----

  /// Merged point-in-time view of the process metrics registry — render
  /// with obs::to_prometheus or obs::to_json. Collection is on by
  /// default; obs::metrics().set_enabled(false) reduces every probe to a
  /// relaxed load + branch.
  obs::MetricsSnapshot metrics_snapshot() const {
    return obs::metrics().snapshot();
  }

  /// Install (or clear, with nullptr) the process-wide trace sink; every
  /// pipeline stage, executor dispatch, rt tick and state save/load then
  /// records a span. Pure side channel: reports stay bit-identical.
  static void set_trace_sink(obs::TraceSink* sink) {
    obs::set_trace_sink(sink);
  }

  /// Runtime health digest (see HealthSnapshot). Defined in detector.cpp.
  HealthSnapshot health_snapshot() const;

  /// The underlying pipeline, for threshold sweeps (detect_cc,
  /// run_bp_nohint, ...) and model/history access.
  core::Pipeline& pipeline() { return pipeline_; }
  const core::Pipeline& pipeline() const { return pipeline_; }

 private:
  /// The continuous engine drives the same day-close bookkeeping run_day
  /// owns (days_operated_), so day-N checkpoints mean the same thing in
  /// both modes.
  friend class rt::ContinuousEngine;

  /// Delta-chain bookkeeping between saves. Mutable because a plain
  /// (const) save_state() to the tracked path invalidates the chain and
  /// must deactivate it — otherwise later delta frames would reference a
  /// base checkpoint that no longer exists and silently drop on load.
  struct DeltaTracker {
    bool active = false;             ///< appending to `path`'s chain
    std::filesystem::path path;
    std::uint32_t base_crc = 0;      ///< CRC-32 of the base file bytes
    std::uint64_t next_seq = 1;
    std::size_t saves_since_full = 0;
    std::size_t cc_rows_mark = 0;    ///< training rows already persisted
    std::size_t sim_rows_mark = 0;
    bool intel_dirty = false;        ///< re-ship intel in the next frame
    bool top_sites_dirty = false;    ///< re-ship the whitelist likewise
  };

  /// Full rewrite + tracker (re)prime — the compaction path of
  /// save_state_delta. `degenerate` skips priming (policy always-full).
  bool full_checkpoint(const std::filesystem::path& path, bool degenerate,
                       storage::LoadStatus* status);

  core::Pipeline pipeline_;
  std::unique_ptr<profile::TopSitesList> owned_top_sites_;
  std::vector<std::string> intel_domains_;
  std::size_t days_operated_ = 0;
  mutable DeltaTracker delta_;
};

}  // namespace eid::api
