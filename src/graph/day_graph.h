// The host <-> domain bipartite graph for one observation window (one day,
// §III-C), engineered for enterprise volume. Ingestion is sharded: events
// route by host hash into independent shard builders (one caller thread,
// no locks anywhere), each shard interning locally and tagging first
// appearances with the global arrival sequence. finalize() merges the
// shards and lays the graph out as CSR (compressed sparse row): flat
// edge_index_ / edge_data_ arrays with per-node offset spans replace the
// old hash-table edge map and vector-of-vector adjacency, so day analysis
// streams cache-friendly arrays. The finalized graph — every id, span and
// edge — is bit-identical for any (shard count, thread count), because the
// merge orders ids by global first appearance exactly like a sequential
// build. Each edge stores the connection timestamps and the HTTP context
// aggregates the feature layer needs (referer presence, user-agent set).
// The belief propagation algorithm consumes this structure through the
// dom_host / host_rdom views named in Algorithm 1 of the paper.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "logs/records.h"
#include "util/interner.h"
#include "util/ipv4.h"
#include "util/time.h"

namespace eid::util {
class Executor;
}

namespace eid::graph {

using HostId = util::InternId;
using DomainId = util::InternId;
using UaId = util::InternId;

inline constexpr util::InternId kNoId = util::kInvalidInternId;

/// Aggregated state of one (host, domain) edge.
struct EdgeData {
  std::vector<util::TimePoint> times;  ///< sorted after finalize()
  std::vector<UaId> user_agents;       ///< distinct UAs on this edge
  bool any_referer = false;            ///< any request carried a referer
  bool any_empty_ua = false;           ///< any request carried no UA
};

/// One ingest shard: aggregates the events of the hosts routed to it by
/// the DayGraph (host-hash routing, so a (host, domain) edge lives in
/// exactly one shard). Interning is shard-local; global first-appearance
/// sequence tags make the merge reproduce sequential ids bit for bit.
class DayShard {
 public:
  void add_event(const logs::ConnEvent& event, std::uint64_t seq);

  /// Merge another shard built from a *later* slice of the same stream
  /// into this one, as if the slice's events had been replayed here one by
  /// one: `seq_offset` (this builder's event count before the slice) lifts
  /// the slice-local sequence tags into the concatenated stream's
  /// positions. Replays interner entries in local-id (= first-appearance)
  /// order and edges in creation order, so the resulting state — ids,
  /// edge slots, time/UA/IP order — is exactly what a sequential build of
  /// the concatenation leaves. With `merge_sorted`, both sides' per-edge
  /// times are already sorted and are merged in place (stays sorted).
  void absorb(const DayShard& src, std::uint64_t seq_offset, bool merge_sorted);

  /// Sort every edge's timestamps in place (seal step of a cached
  /// partial); lets later absorbs merge instead of re-sort.
  void sort_times();

  std::size_t host_count() const { return hosts_.size(); }
  std::size_t domain_count() const { return domains_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

 private:
  friend class DayGraph;

  struct Edge {
    std::vector<util::TimePoint> times;
    std::vector<UaId> user_agents;  ///< shard-local ua ids
    bool any_referer = false;
    bool any_empty_ua = false;
  };
  struct IpSeen {
    util::Ipv4 ip;
    std::uint64_t seq = 0;  ///< global first appearance of this (domain, ip)
  };

  static std::uint64_t edge_key(util::InternId host, util::InternId domain) {
    return (static_cast<std::uint64_t>(host) << 32) | domain;
  }

  util::ShardInterner hosts_;
  util::ShardInterner domains_;
  util::ShardInterner uas_;
  std::unordered_map<std::uint64_t, std::uint32_t> edge_slot_;  ///< key -> index
  std::vector<std::uint64_t> edge_keys_;  ///< slot -> key (creation order)
  std::vector<Edge> edges_;
  std::vector<std::vector<IpSeen>> ips_of_domain_;  ///< by local domain id
};

/// Build by streaming a day of reduced ConnEvents, then call finalize().
/// Construct with n_shards > 1 to split ingestion across independent
/// shard builders — a pure performance knob; the finalized graph is
/// bit-identical for any shard count.
class DayGraph {
 public:
  DayGraph() : DayGraph(1) {}
  /// `executor` (optional) carries the sharded ingest and finalize
  /// fan-outs on a persistent worker pool instead of spawning threads;
  /// core::Pipeline::begin_day wires its own pool through here. Results
  /// are identical either way.
  explicit DayGraph(std::size_t n_shards,
                    std::shared_ptr<util::Executor> executor = nullptr)
      : shards_(n_shards == 0 ? 1 : n_shards),
        executor_(std::move(executor)) {}

  /// Ingest one event. Events may arrive in any order. Must not be called
  /// after finalize() — the ingest shards are consumed by the merge, so
  /// this aborts (in every build type) rather than drop events.
  void add_event(const logs::ConnEvent& event);

  /// Ingest a batch. With one shard this is a plain loop; with more, the
  /// batch is routed (cheap pointer staging, sequential) and then all
  /// shard builders intern/aggregate their share in parallel — the
  /// expensive per-event work — with a barrier before returning, so
  /// `events` only needs to outlive the call. Identical result to
  /// add_event in a loop for any shard count or batch split; same
  /// abort-after-finalize contract.
  void add_events(std::span<const logs::ConnEvent> events);

  /// Merge another un-finalized graph — built with the *same shard count*
  /// from a later slice of the same event stream — into this one, without
  /// touching the slice's raw events again. Equivalent, bit for bit after
  /// finalize, to replaying the slice's events here in order: per-shard
  /// interner/edge/IP state is replayed with sequence tags offset by this
  /// graph's event count (only the *order* of first-appearance tags feeds
  /// the deterministic merge, so offsets are exact). This is the rt
  /// engine's incremental window merge: sealed per-bucket partials absorb
  /// in O(bucket state), never O(window events).
  void absorb(const DayGraph& src);

  /// Pre-sort every edge's timestamps (partial seal). finalize() and
  /// absorb() then merge/skip instead of re-sorting; add_event after this
  /// clears the property.
  void sort_edge_times();

  /// Events ingested so far (absorbed graphs included).
  std::uint64_t ingested_events() const { return seq_; }

  /// Merge the ingest shards, sort edge timestamps and build the CSR
  /// views; n_threads parallelizes the per-edge work (timestamp sorting,
  /// UA remapping) over contiguous edge ranges. Call after the last
  /// add_event (idempotent: repeat calls are no-ops). All queries below
  /// require a finalized graph.
  void finalize(std::size_t n_threads = 1);

  class SnapshotCache;

  /// Non-consuming finalize: build and return the finalized CSR graph this
  /// graph would become, leaving the ingest shards intact so absorbing and
  /// snapshotting can continue (the rt engine snapshots its running window
  /// merge every tick). The returned graph is bit-identical to calling
  /// finalize() on a copy. An optional SnapshotCache makes repeated
  /// snapshots of a growing graph incremental — see its contract.
  DayGraph finalize_snapshot(std::size_t n_threads = 1,
                             SnapshotCache* cache = nullptr) const;

  /// finalize_snapshot writing into a caller-kept graph instead of a fresh
  /// one, recycling `out`'s existing allocations (per-edge time/UA vectors,
  /// offset rows) across repeated snapshots — the rt engine hands each
  /// tick's consumed snapshot back as the next tick's `out`, turning the
  /// per-edge copy step from malloc-bound into memcpy-bound. Any previous
  /// content of `out` is discarded; the result is bit-identical to
  /// finalize_snapshot(). `out` must not alias this graph.
  void finalize_snapshot_into(DayGraph& out, std::size_t n_threads = 1,
                              SnapshotCache* cache = nullptr) const;

  bool finalized() const { return finalized_; }

  /// Counts are exact after finalize(). Before it, host/edge counts are
  /// exact (a host and its edges live in exactly one shard) while
  /// domain_count is an upper bound (a domain may span shards).
  std::size_t host_count() const;
  std::size_t domain_count() const;
  std::size_t edge_count() const;

  /// Names and id lookups require a finalized graph (ids live in the
  /// merged interners); debug builds assert, matching the ingest-side
  /// abort contract.
  const std::string& host_name(HostId id) const {
    assert(finalized_);
    return hosts_.name(id);
  }
  const std::string& domain_name(DomainId id) const {
    assert(finalized_);
    return domains_.name(id);
  }
  const std::string& ua_name(UaId id) const {
    assert(finalized_);
    return uas_.name(id);
  }

  /// Id lookups; kNoId when the name never appeared this day.
  HostId find_host(std::string_view name) const {
    assert(finalized_);
    return hosts_.find(name);
  }
  DomainId find_domain(std::string_view name) const {
    assert(finalized_);
    return domains_.find(name);
  }

  /// dom_host mapping of Algorithm 1: hosts contacting the domain,
  /// ascending host id.
  std::span<const HostId> domain_hosts(DomainId domain) const;

  /// All domains a host contacted this day, ascending domain id.
  std::span<const DomainId> host_domains(HostId host) const;

  /// Edge data; nullptr when the pair never connected.
  const EdgeData* edge(HostId host, DomainId domain) const;

  /// First connection timestamp of the pair; nullopt when no edge.
  std::optional<util::TimePoint> first_contact(HostId host, DomainId domain) const;

  /// Distinct destination IPs observed for the domain, in order of first
  /// appearance in the event stream.
  std::span<const util::Ipv4> domain_ips(DomainId domain) const;

  /// Visit every (host, domain, edge) triple: fn(HostId, DomainId,
  /// const EdgeData&). Iteration is in ascending (host id, domain id)
  /// order — deterministic and stable across shard/thread counts; call
  /// sites may rely on it (this replaced the old unspecified hash order).
  /// Requires a finalized graph, like every other query.
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    assert(finalized_);
    for (std::size_t h = 0; h + 1 < host_offsets_.size(); ++h) {
      for (std::uint32_t e = host_offsets_[h]; e < host_offsets_[h + 1]; ++e) {
        fn(static_cast<HostId>(h), edge_index_[e], edge_data_[e]);
      }
    }
  }

 private:
  std::size_t shard_of(std::string_view host) const {
    return shards_.size() == 1
               ? 0
               : std::hash<std::string_view>{}(host) % shards_.size();
  }

  /// One edge staged for CSR layout: global (host, domain) key plus its
  /// (shard, slot) source location.
  struct StagedEdge {
    std::uint64_t key = 0;
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
  };

  /// Shared CSR construction behind finalize()/finalize_snapshot(): reads
  /// the ingest shards and installs the finalized state into `out` (which
  /// is *this for the consuming finalize — per-edge payloads are then
  /// moved rather than copied). `cache` (snapshot path only) skips
  /// re-staging edges already staged by a previous call.
  void build_csr(DayGraph& out, std::size_t n_threads, bool consume,
                 SnapshotCache* cache) const;

  // ---- ingest state (consumed by finalize) ----
  std::vector<DayShard> shards_;
  std::shared_ptr<util::Executor> executor_;  ///< nullptr = spawning fallback
  std::uint64_t seq_ = 0;  ///< global arrival counter
  bool times_sorted_ = true;  ///< every edge's times sorted (trivially, when empty)
  struct Routed {
    const logs::ConnEvent* event = nullptr;
    std::uint64_t seq = 0;
  };
  std::vector<std::vector<Routed>> staged_;  ///< add_events scratch, per shard

  // ---- finalized CSR state ----
  util::Interner hosts_;
  util::Interner domains_;
  util::Interner uas_;
  std::vector<std::uint32_t> host_offsets_;   ///< hosts + 1 row offsets
  std::vector<DomainId> edge_index_;          ///< flat, (host, domain) sorted
  std::vector<EdgeData> edge_data_;           ///< parallel to edge_index_
  std::vector<std::uint32_t> domain_offsets_; ///< domains + 1 row offsets
  std::vector<HostId> domain_hosts_;          ///< flat, ascending per domain
  std::vector<std::uint32_t> ip_offsets_;     ///< domains + 1 row offsets
  std::vector<util::Ipv4> domain_ips_;        ///< flat, first-appearance order
  bool finalized_ = false;
};

/// Scratch state that makes repeated finalize_snapshot() calls on one
/// *growing* graph incremental: the globally-keyed, sorted edge staging —
/// the dominant per-snapshot cost on large windows — is kept across calls,
/// so each snapshot stages and sorts only the edges added since the last
/// one and merges them into the cached order in O(total edges) flat copies.
///
/// Validity contract: reuse only with the same DayGraph object, and only
/// while it strictly grows between snapshots (add_event / add_events /
/// absorb — the rt window merge's extend path). Cached global keys stay
/// exact under growth because interner ids order by global first
/// appearance and new events carry strictly later sequence tags, so
/// already-assigned ids never move. After replacing or rebuilding the
/// graph, reset() (the rt window does this whenever it rebuilds its
/// running merge).
class DayGraph::SnapshotCache {
 public:
  void reset() {
    slots_done_.clear();
    staged_.clear();
    staged_.shrink_to_fit();
  }

 private:
  friend class DayGraph;
  std::vector<std::size_t> slots_done_;  ///< per-shard edge slots staged
  std::vector<StagedEdge> staged_;       ///< all staged edges, key-sorted
};

}  // namespace eid::graph
