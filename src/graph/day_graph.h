// The host <-> domain bipartite graph for one observation window (one day,
// §III-C). Nodes are interned to dense ids; each edge stores the connection
// timestamps and the HTTP context aggregates the feature layer needs
// (referer presence, user-agent set). The belief propagation algorithm
// consumes this structure through the dom_host / host_rdom views named in
// Algorithm 1 of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "logs/records.h"
#include "util/interner.h"
#include "util/ipv4.h"
#include "util/time.h"

namespace eid::graph {

using HostId = util::InternId;
using DomainId = util::InternId;
using UaId = util::InternId;

inline constexpr util::InternId kNoId = util::kInvalidInternId;

/// Aggregated state of one (host, domain) edge.
struct EdgeData {
  std::vector<util::TimePoint> times;  ///< sorted after finalize()
  std::vector<UaId> user_agents;       ///< distinct UAs on this edge
  bool any_referer = false;            ///< any request carried a referer
  bool any_empty_ua = false;           ///< any request carried no UA
};

/// Build by streaming a day of reduced ConnEvents, then call finalize().
class DayGraph {
 public:
  /// Ingest one event. Events may arrive in any order.
  void add_event(const logs::ConnEvent& event);

  /// Sort edge timestamps and build the per-node adjacency views.
  /// Must be called once, after the last add_event.
  void finalize();

  bool finalized() const { return finalized_; }

  std::size_t host_count() const { return hosts_.size(); }
  std::size_t domain_count() const { return domains_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const std::string& host_name(HostId id) const { return hosts_.name(id); }
  const std::string& domain_name(DomainId id) const { return domains_.name(id); }
  const std::string& ua_name(UaId id) const { return uas_.name(id); }

  /// Id lookups; kNoId when the name never appeared this day.
  HostId find_host(std::string_view name) const { return hosts_.find(name); }
  DomainId find_domain(std::string_view name) const { return domains_.find(name); }

  /// dom_host mapping of Algorithm 1: hosts contacting the domain.
  std::span<const HostId> domain_hosts(DomainId domain) const;

  /// All domains a host contacted this day.
  std::span<const DomainId> host_domains(HostId host) const;

  /// Edge data; nullptr when the pair never connected.
  const EdgeData* edge(HostId host, DomainId domain) const;

  /// First connection timestamp of the pair; nullopt when no edge.
  std::optional<util::TimePoint> first_contact(HostId host, DomainId domain) const;

  /// Distinct destination IPs observed for the domain.
  std::span<const util::Ipv4> domain_ips(DomainId domain) const;

  /// Visit every (host, domain, edge) triple: fn(HostId, DomainId,
  /// const EdgeData&). Iteration order is unspecified (hash order).
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    for (const auto& [key, edge] : edges_) {
      fn(static_cast<HostId>(key >> 32), static_cast<DomainId>(key & 0xffffffffu),
         edge);
    }
  }

 private:
  static std::uint64_t edge_key(HostId h, DomainId d) {
    return (static_cast<std::uint64_t>(h) << 32) | d;
  }

  util::Interner hosts_;
  util::Interner domains_;
  util::Interner uas_;
  std::unordered_map<std::uint64_t, EdgeData> edges_;
  std::vector<std::vector<HostId>> hosts_of_domain_;
  std::vector<std::vector<DomainId>> domains_of_host_;
  std::vector<std::vector<util::Ipv4>> ips_of_domain_;
  bool finalized_ = false;
};

}  // namespace eid::graph
