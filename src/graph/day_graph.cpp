#include "graph/day_graph.h"

#include <algorithm>

namespace eid::graph {

void DayGraph::add_event(const logs::ConnEvent& event) {
  const HostId host = hosts_.intern(event.host);
  const DomainId domain = domains_.intern(event.domain);
  EdgeData& edge = edges_[edge_key(host, domain)];
  edge.times.push_back(event.ts);
  if (event.has_referer) edge.any_referer = true;
  if (event.has_http_context) {
    if (event.user_agent.empty()) {
      edge.any_empty_ua = true;
    } else {
      const UaId ua = uas_.intern(event.user_agent);
      if (std::find(edge.user_agents.begin(), edge.user_agents.end(), ua) ==
          edge.user_agents.end()) {
        edge.user_agents.push_back(ua);
      }
    }
  }
  if (event.dest_ip) {
    if (ips_of_domain_.size() <= domain) ips_of_domain_.resize(domain + 1);
    auto& ips = ips_of_domain_[domain];
    if (std::find(ips.begin(), ips.end(), *event.dest_ip) == ips.end()) {
      ips.push_back(*event.dest_ip);
    }
  }
  finalized_ = false;
}

void DayGraph::finalize() {
  hosts_of_domain_.assign(domains_.size(), {});
  domains_of_host_.assign(hosts_.size(), {});
  ips_of_domain_.resize(domains_.size());
  for (auto& [key, edge] : edges_) {
    std::sort(edge.times.begin(), edge.times.end());
    const HostId host = static_cast<HostId>(key >> 32);
    const DomainId domain = static_cast<DomainId>(key & 0xffffffffu);
    hosts_of_domain_[domain].push_back(host);
    domains_of_host_[host].push_back(domain);
  }
  // Deterministic ordering independent of hash iteration order.
  for (auto& hosts : hosts_of_domain_) std::sort(hosts.begin(), hosts.end());
  for (auto& domains : domains_of_host_) std::sort(domains.begin(), domains.end());
  finalized_ = true;
}

std::span<const HostId> DayGraph::domain_hosts(DomainId domain) const {
  if (domain >= hosts_of_domain_.size()) return {};
  return hosts_of_domain_[domain];
}

std::span<const DomainId> DayGraph::host_domains(HostId host) const {
  if (host >= domains_of_host_.size()) return {};
  return domains_of_host_[host];
}

const EdgeData* DayGraph::edge(HostId host, DomainId domain) const {
  auto it = edges_.find(edge_key(host, domain));
  return it == edges_.end() ? nullptr : &it->second;
}

std::optional<util::TimePoint> DayGraph::first_contact(HostId host,
                                                       DomainId domain) const {
  const EdgeData* e = edge(host, domain);
  if (e == nullptr || e->times.empty()) return std::nullopt;
  return e->times.front();
}

std::span<const util::Ipv4> DayGraph::domain_ips(DomainId domain) const {
  if (domain >= ips_of_domain_.size()) return {};
  return ips_of_domain_[domain];
}

}  // namespace eid::graph
