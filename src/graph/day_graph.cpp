#include "graph/day_graph.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/executor.h"

namespace eid::graph {

namespace {

struct IngestMetrics {
  obs::Counter& chunks = obs::metrics().counter("eid_ingest_chunks_total");
  obs::Counter& events = obs::metrics().counter("eid_ingest_events_total");
};

IngestMetrics& ingest_metrics() {
  static IngestMetrics metrics;
  return metrics;
}

}  // namespace

void DayShard::add_event(const logs::ConnEvent& event, std::uint64_t seq) {
  const util::InternId host = hosts_.intern(event.host, seq);
  const util::InternId domain = domains_.intern(event.domain, seq);
  const std::uint64_t key = edge_key(host, domain);
  const auto [slot, inserted] =
      edge_slot_.try_emplace(key, static_cast<std::uint32_t>(edges_.size()));
  if (inserted) edges_.emplace_back();
  Edge& edge = edges_[slot->second];
  edge.times.push_back(event.ts);
  if (event.has_referer) edge.any_referer = true;
  if (event.has_http_context) {
    if (event.user_agent.empty()) {
      edge.any_empty_ua = true;
    } else {
      const UaId ua = uas_.intern(event.user_agent, seq);
      if (std::find(edge.user_agents.begin(), edge.user_agents.end(), ua) ==
          edge.user_agents.end()) {
        edge.user_agents.push_back(ua);
      }
    }
  }
  if (event.dest_ip) {
    if (ips_of_domain_.size() <= domain) ips_of_domain_.resize(domain + 1);
    auto& ips = ips_of_domain_[domain];
    const bool seen =
        std::any_of(ips.begin(), ips.end(),
                    [&](const IpSeen& s) { return s.ip == *event.dest_ip; });
    if (!seen) ips.push_back(IpSeen{*event.dest_ip, seq});
  }
}

void DayGraph::add_event(const logs::ConnEvent& event) {
  // Loud, defined failure in every build type: the ingest shards were
  // consumed by finalize(), so silently dropping events here would
  // corrupt a detection day.
  if (finalized_) {
    assert(!finalized_ && "DayGraph::add_event after finalize()");
    std::abort();
  }
  shards_[shard_of(event.host)].add_event(event, seq_++);
}

void DayGraph::add_events(std::span<const logs::ConnEvent> events) {
  if (finalized_) {
    assert(!finalized_ && "DayGraph::add_events after finalize()");
    std::abort();
  }
  if (events.empty()) return;
  const obs::TraceSpan span("ingest_chunk", "ingest");
  IngestMetrics& metrics = ingest_metrics();
  metrics.chunks.add(1);
  metrics.events.add(events.size());
  // Small batches (and the one-shard case) dispatch directly — staging
  // plus fan-out only pays off once per-shard interning outweighs the
  // dispatch cost, from a couple thousand events per batch. Both paths
  // consume identical per-shard sequences, so results do not depend on
  // the cutoff.
  if (shards_.size() == 1 || events.size() < 2048) {
    for (const logs::ConnEvent& event : events) {
      shards_[shard_of(event.host)].add_event(event, seq_++);
    }
    return;
  }
  // Route first (sequential: one host hash + a pointer push per event),
  // then let every shard intern and aggregate its share concurrently —
  // shards are disjoint, so no locks. Per-shard arrival order and seq tags
  // are exactly those of the sequential loop, so the finalized graph is
  // bit-identical for any shard count or batch split.
  if (staged_.size() != shards_.size()) staged_.resize(shards_.size());
  for (auto& staged : staged_) staged.clear();
  for (const logs::ConnEvent& event : events) {
    staged_[shard_of(event.host)].push_back(Routed{&event, seq_++});
  }
  util::parallel_ranges(
      executor_.get(), shards_.size(), shards_.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          for (const Routed& routed : staged_[s]) {
            shards_[s].add_event(*routed.event, routed.seq);
          }
        }
      });
}

std::size_t DayGraph::host_count() const {
  if (finalized_) return hosts_.size();
  std::size_t total = 0;
  for (const DayShard& shard : shards_) total += shard.host_count();
  return total;
}

std::size_t DayGraph::domain_count() const {
  if (finalized_) return domains_.size();
  // Pre-finalize upper bound: a domain contacted from hosts in several
  // shards is counted once per shard (hosts are exact — they live in
  // exactly one shard).
  std::size_t total = 0;
  for (const DayShard& shard : shards_) total += shard.domain_count();
  return total;
}

std::size_t DayGraph::edge_count() const {
  if (finalized_) return edge_data_.size();
  std::size_t total = 0;
  for (const DayShard& shard : shards_) total += shard.edge_count();
  return total;
}

void DayGraph::finalize(std::size_t n_threads) {
  if (finalized_) return;  // idempotent: the shards are already merged

  // 1. Merge the shard interners into global id spaces. Ordering by global
  // first appearance makes every id identical to a sequential build.
  std::vector<const util::ShardInterner*> host_shards;
  std::vector<const util::ShardInterner*> domain_shards;
  std::vector<const util::ShardInterner*> ua_shards;
  host_shards.reserve(shards_.size());
  domain_shards.reserve(shards_.size());
  ua_shards.reserve(shards_.size());
  for (const DayShard& shard : shards_) {
    host_shards.push_back(&shard.hosts_);
    domain_shards.push_back(&shard.domains_);
    ua_shards.push_back(&shard.uas_);
  }
  util::InternerMerge hosts = util::merge_interners(host_shards);
  util::InternerMerge domains = util::merge_interners(domain_shards);
  util::InternerMerge uas = util::merge_interners(ua_shards);

  // 2. Stage every edge under its global (host, domain) key and order by
  // key. Host-hash routing puts each pair in exactly one shard, so keys
  // are unique and the sort is a total order regardless of the hash-map
  // iteration order it starts from.
  struct Staged {
    std::uint64_t key = 0;
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
  };
  std::size_t n_edges = 0;
  for (const DayShard& shard : shards_) n_edges += shard.edges_.size();
  std::vector<Staged> staged;
  staged.reserve(n_edges);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    for (const auto& [local, slot] : shards_[s].edge_slot_) {
      const HostId host = hosts.to_global[s][local >> 32];
      const DomainId domain = domains.to_global[s][local & 0xffffffffu];
      staged.push_back(Staged{DayShard::edge_key(host, domain), s, slot});
    }
  }
  std::sort(staged.begin(), staged.end(),
            [](const Staged& a, const Staged& b) { return a.key < b.key; });

  // 3. CSR forward layout: per-host offset rows over flat edge_index_ /
  // edge_data_. The per-edge work (timestamp sort, UA id remap) is the
  // finalize hot loop; it parallelizes over contiguous edge ranges with
  // results written into per-edge slots, so any thread count produces the
  // same arrays.
  host_offsets_.assign(hosts.interner.size() + 1, 0);
  for (const Staged& st : staged) ++host_offsets_[(st.key >> 32) + 1];
  for (std::size_t h = 1; h < host_offsets_.size(); ++h) {
    host_offsets_[h] += host_offsets_[h - 1];
  }
  edge_index_.resize(n_edges);
  edge_data_.resize(n_edges);
  util::parallel_ranges(
      executor_.get(), n_edges, n_threads,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const Staged& st = staged[i];
          DayShard::Edge& src = shards_[st.shard].edges_[st.slot];
          EdgeData& dst = edge_data_[i];
          edge_index_[i] = static_cast<DomainId>(st.key & 0xffffffffu);
          dst.times = std::move(src.times);
          std::sort(dst.times.begin(), dst.times.end());
          dst.user_agents.reserve(src.user_agents.size());
          for (const UaId ua : src.user_agents) {
            dst.user_agents.push_back(uas.to_global[st.shard][ua]);
          }
          dst.any_referer = src.any_referer;
          dst.any_empty_ua = src.any_empty_ua;
        }
      });

  // 4. Reverse CSR (dom_host of Algorithm 1) by counting sort; scanning
  // edges in (host, domain) order emits each domain's hosts ascending.
  domain_offsets_.assign(domains.interner.size() + 1, 0);
  for (const DomainId domain : edge_index_) ++domain_offsets_[domain + 1];
  for (std::size_t d = 1; d < domain_offsets_.size(); ++d) {
    domain_offsets_[d] += domain_offsets_[d - 1];
  }
  domain_hosts_.resize(n_edges);
  std::vector<std::uint32_t> cursor(domain_offsets_.begin(),
                                    domain_offsets_.end() - 1);
  for (std::size_t h = 0; h + 1 < host_offsets_.size(); ++h) {
    for (std::uint32_t e = host_offsets_[h]; e < host_offsets_[h + 1]; ++e) {
      domain_hosts_[cursor[edge_index_[e]]++] = static_cast<HostId>(h);
    }
  }

  // 5. Distinct destination IPs per domain: union the shard-local sets by
  // earliest appearance, reproducing the sequential first-seen dedup order.
  std::vector<std::vector<DayShard::IpSeen>> merged_ips(domains.interner.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const DayShard& shard = shards_[s];
    for (std::size_t local = 0; local < shard.ips_of_domain_.size(); ++local) {
      if (shard.ips_of_domain_[local].empty()) continue;
      auto& bucket = merged_ips[domains.to_global[s][local]];
      bucket.insert(bucket.end(), shard.ips_of_domain_[local].begin(),
                    shard.ips_of_domain_[local].end());
    }
  }
  ip_offsets_.assign(domains.interner.size() + 1, 0);
  domain_ips_.clear();
  for (std::size_t d = 0; d < merged_ips.size(); ++d) {
    auto& bucket = merged_ips[d];
    std::sort(bucket.begin(), bucket.end(),
              [](const DayShard::IpSeen& a, const DayShard::IpSeen& b) {
                return a.seq < b.seq;
              });
    const std::size_t row_begin = domain_ips_.size();
    for (const DayShard::IpSeen& seen : bucket) {
      const auto first = domain_ips_.begin() + static_cast<std::ptrdiff_t>(row_begin);
      if (std::find(first, domain_ips_.end(), seen.ip) == domain_ips_.end()) {
        domain_ips_.push_back(seen.ip);
      }
    }
    ip_offsets_[d + 1] = static_cast<std::uint32_t>(domain_ips_.size());
  }

  // 6. Install the merged interners and release the ingest shards.
  hosts_ = std::move(hosts.interner);
  domains_ = std::move(domains.interner);
  uas_ = std::move(uas.interner);
  shards_.clear();
  shards_.shrink_to_fit();
  staged_.clear();  // holds pointers into caller-owned (freed) chunk spans
  staged_.shrink_to_fit();
  finalized_ = true;
}

// Row guards compare against size() - 1 (offsets hold count + 1 entries):
// an id + 1 form would wrap for kNoId and index out of bounds. The
// asserts keep the misuse contract consistent with name()/find(): a query
// before finalize() fails loudly in debug builds rather than reading as a
// plausible empty day.
std::span<const HostId> DayGraph::domain_hosts(DomainId domain) const {
  assert(finalized_);
  if (domain_offsets_.size() <= 1 || domain >= domain_offsets_.size() - 1) {
    return {};
  }
  return {domain_hosts_.data() + domain_offsets_[domain],
          domain_offsets_[domain + 1] - domain_offsets_[domain]};
}

std::span<const DomainId> DayGraph::host_domains(HostId host) const {
  assert(finalized_);
  if (host_offsets_.size() <= 1 || host >= host_offsets_.size() - 1) return {};
  return {edge_index_.data() + host_offsets_[host],
          host_offsets_[host + 1] - host_offsets_[host]};
}

const EdgeData* DayGraph::edge(HostId host, DomainId domain) const {
  assert(finalized_);
  if (host_offsets_.size() <= 1 || host >= host_offsets_.size() - 1) {
    return nullptr;
  }
  const auto row_begin = edge_index_.begin() + host_offsets_[host];
  const auto row_end = edge_index_.begin() + host_offsets_[host + 1];
  const auto it = std::lower_bound(row_begin, row_end, domain);
  if (it == row_end || *it != domain) return nullptr;
  return &edge_data_[static_cast<std::size_t>(it - edge_index_.begin())];
}

std::optional<util::TimePoint> DayGraph::first_contact(HostId host,
                                                       DomainId domain) const {
  const EdgeData* e = edge(host, domain);
  if (e == nullptr || e->times.empty()) return std::nullopt;
  return e->times.front();
}

std::span<const util::Ipv4> DayGraph::domain_ips(DomainId domain) const {
  assert(finalized_);
  if (ip_offsets_.size() <= 1 || domain >= ip_offsets_.size() - 1) return {};
  return {domain_ips_.data() + ip_offsets_[domain],
          ip_offsets_[domain + 1] - ip_offsets_[domain]};
}

}  // namespace eid::graph
