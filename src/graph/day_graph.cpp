#include "graph/day_graph.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/executor.h"

namespace eid::graph {

namespace {

struct IngestMetrics {
  obs::Counter& chunks = obs::metrics().counter("eid_ingest_chunks_total");
  obs::Counter& events = obs::metrics().counter("eid_ingest_events_total");
};

IngestMetrics& ingest_metrics() {
  static IngestMetrics metrics;
  return metrics;
}

}  // namespace

void DayShard::add_event(const logs::ConnEvent& event, std::uint64_t seq) {
  const util::InternId host = hosts_.intern(event.host, seq);
  const util::InternId domain = domains_.intern(event.domain, seq);
  const std::uint64_t key = edge_key(host, domain);
  const auto [slot, inserted] =
      edge_slot_.try_emplace(key, static_cast<std::uint32_t>(edges_.size()));
  if (inserted) {
    edges_.emplace_back();
    edge_keys_.push_back(key);
  }
  Edge& edge = edges_[slot->second];
  edge.times.push_back(event.ts);
  if (event.has_referer) edge.any_referer = true;
  if (event.has_http_context) {
    if (event.user_agent.empty()) {
      edge.any_empty_ua = true;
    } else {
      const UaId ua = uas_.intern(event.user_agent, seq);
      if (std::find(edge.user_agents.begin(), edge.user_agents.end(), ua) ==
          edge.user_agents.end()) {
        edge.user_agents.push_back(ua);
      }
    }
  }
  if (event.dest_ip) {
    if (ips_of_domain_.size() <= domain) ips_of_domain_.resize(domain + 1);
    auto& ips = ips_of_domain_[domain];
    const bool seen =
        std::any_of(ips.begin(), ips.end(),
                    [&](const IpSeen& s) { return s.ip == *event.dest_ip; });
    if (!seen) ips.push_back(IpSeen{*event.dest_ip, seq});
  }
}

void DayShard::sort_times() {
  for (Edge& edge : edges_) std::sort(edge.times.begin(), edge.times.end());
}

void DayShard::absorb(const DayShard& src, std::uint64_t seq_offset,
                      bool merge_sorted) {
  // Interner replay in local-id order is first-appearance order, so
  // repeats keep their earliest (already recorded) seq and fresh strings
  // get the offset slice seq — exactly the tags sequential ingest of the
  // concatenation would have assigned.
  const auto replay = [seq_offset](util::ShardInterner& dst,
                                   const util::ShardInterner& from) {
    std::vector<util::InternId> map(from.size());
    for (util::InternId id = 0; id < from.size(); ++id) {
      map[id] = dst.intern(from.name(id), from.first_seq(id) + seq_offset);
    }
    return map;
  };
  const std::vector<util::InternId> host_map = replay(hosts_, src.hosts_);
  const std::vector<util::InternId> domain_map = replay(domains_, src.domains_);
  const std::vector<util::InternId> ua_map = replay(uas_, src.uas_);

  // Visit src edges in slot (creation) order so edges new to this shard
  // take slots in concatenated first-appearance order, like add_event
  // would have.
  for (std::size_t src_slot = 0; src_slot < src.edge_keys_.size(); ++src_slot) {
    const std::uint64_t src_key = src.edge_keys_[src_slot];
    const util::InternId host = host_map[src_key >> 32];
    const util::InternId domain = domain_map[src_key & 0xffffffffu];
    const Edge& from = src.edges_[src_slot];
    const std::uint64_t key = edge_key(host, domain);
    const auto [slot, inserted] =
        edge_slot_.try_emplace(key, static_cast<std::uint32_t>(edges_.size()));
    if (inserted) {
      edges_.emplace_back();
      edge_keys_.push_back(key);
    }
    Edge& to = edges_[slot->second];
    const std::size_t old_times = to.times.size();
    to.times.insert(to.times.end(), from.times.begin(), from.times.end());
    if (merge_sorted) {
      std::inplace_merge(to.times.begin(),
                         to.times.begin() + static_cast<std::ptrdiff_t>(old_times),
                         to.times.end());
    }
    if (from.any_referer) to.any_referer = true;
    if (from.any_empty_ua) to.any_empty_ua = true;
    for (const UaId ua : from.user_agents) {
      const UaId mapped = ua_map[ua];
      if (std::find(to.user_agents.begin(), to.user_agents.end(), mapped) ==
          to.user_agents.end()) {
        to.user_agents.push_back(mapped);
      }
    }
  }

  // IP sets: first-seen dedup keeps this (earlier) side's entry; fresh
  // (domain, ip) pairs carry the offset slice seq into the finalize-time
  // earliest-appearance sort.
  for (std::size_t local = 0; local < src.ips_of_domain_.size(); ++local) {
    const auto& from_ips = src.ips_of_domain_[local];
    if (from_ips.empty()) continue;
    const util::InternId domain = domain_map[local];
    if (ips_of_domain_.size() <= domain) ips_of_domain_.resize(domain + 1);
    auto& to_ips = ips_of_domain_[domain];
    for (const IpSeen& seen : from_ips) {
      const bool dup =
          std::any_of(to_ips.begin(), to_ips.end(),
                      [&](const IpSeen& s) { return s.ip == seen.ip; });
      if (!dup) to_ips.push_back(IpSeen{seen.ip, seen.seq + seq_offset});
    }
  }
}

void DayGraph::add_event(const logs::ConnEvent& event) {
  // Loud, defined failure in every build type: the ingest shards were
  // consumed by finalize(), so silently dropping events here would
  // corrupt a detection day.
  if (finalized_) {
    assert(!finalized_ && "DayGraph::add_event after finalize()");
    std::abort();
  }
  times_sorted_ = false;
  shards_[shard_of(event.host)].add_event(event, seq_++);
}

void DayGraph::add_events(std::span<const logs::ConnEvent> events) {
  if (finalized_) {
    assert(!finalized_ && "DayGraph::add_events after finalize()");
    std::abort();
  }
  if (events.empty()) return;
  times_sorted_ = false;
  const obs::TraceSpan span("ingest_chunk", "ingest");
  IngestMetrics& metrics = ingest_metrics();
  metrics.chunks.add(1);
  metrics.events.add(events.size());
  // Small batches (and the one-shard case) dispatch directly — staging
  // plus fan-out only pays off once per-shard interning outweighs the
  // dispatch cost, from a couple thousand events per batch. Both paths
  // consume identical per-shard sequences, so results do not depend on
  // the cutoff.
  if (shards_.size() == 1 || events.size() < 2048) {
    for (const logs::ConnEvent& event : events) {
      shards_[shard_of(event.host)].add_event(event, seq_++);
    }
    return;
  }
  // Route first (sequential: one host hash + a pointer push per event),
  // then let every shard intern and aggregate its share concurrently —
  // shards are disjoint, so no locks. Per-shard arrival order and seq tags
  // are exactly those of the sequential loop, so the finalized graph is
  // bit-identical for any shard count or batch split.
  if (staged_.size() != shards_.size()) staged_.resize(shards_.size());
  for (auto& staged : staged_) staged.clear();
  for (const logs::ConnEvent& event : events) {
    staged_[shard_of(event.host)].push_back(Routed{&event, seq_++});
  }
  util::parallel_ranges(
      executor_.get(), shards_.size(), shards_.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          for (const Routed& routed : staged_[s]) {
            shards_[s].add_event(*routed.event, routed.seq);
          }
        }
      });
}

void DayGraph::absorb(const DayGraph& src) {
  if (finalized_ || src.finalized_) {
    assert(!finalized_ && !src.finalized_ && "DayGraph::absorb after finalize()");
    std::abort();
  }
  if (shards_.size() != src.shards_.size()) {
    // Host routing (hash % shard count) must agree, or an edge could land
    // in two shards and break the unique-key invariant of the merge.
    assert(shards_.size() == src.shards_.size() &&
           "DayGraph::absorb requires matching shard counts");
    std::abort();
  }
  const bool merge_sorted = times_sorted_ && src.times_sorted_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].absorb(src.shards_[s], seq_, merge_sorted);
  }
  times_sorted_ = merge_sorted;
  seq_ += src.seq_;
}

void DayGraph::sort_edge_times() {
  if (finalized_) {
    assert(!finalized_ && "DayGraph::sort_edge_times after finalize()");
    std::abort();
  }
  if (times_sorted_) return;
  for (DayShard& shard : shards_) shard.sort_times();
  times_sorted_ = true;
}

std::size_t DayGraph::host_count() const {
  if (finalized_) return hosts_.size();
  std::size_t total = 0;
  for (const DayShard& shard : shards_) total += shard.host_count();
  return total;
}

std::size_t DayGraph::domain_count() const {
  if (finalized_) return domains_.size();
  // Pre-finalize upper bound: a domain contacted from hosts in several
  // shards is counted once per shard (hosts are exact — they live in
  // exactly one shard).
  std::size_t total = 0;
  for (const DayShard& shard : shards_) total += shard.domain_count();
  return total;
}

std::size_t DayGraph::edge_count() const {
  if (finalized_) return edge_data_.size();
  std::size_t total = 0;
  for (const DayShard& shard : shards_) total += shard.edge_count();
  return total;
}

void DayGraph::finalize(std::size_t n_threads) {
  if (finalized_) return;  // idempotent: the shards are already merged
  build_csr(*this, n_threads, /*consume=*/true, /*cache=*/nullptr);
  shards_.clear();
  shards_.shrink_to_fit();
  staged_.clear();  // holds pointers into caller-owned (freed) chunk spans
  staged_.shrink_to_fit();
}

DayGraph DayGraph::finalize_snapshot(std::size_t n_threads,
                                     SnapshotCache* cache) const {
  DayGraph out(1, executor_);
  finalize_snapshot_into(out, n_threads, cache);
  return out;
}

void DayGraph::finalize_snapshot_into(DayGraph& out, std::size_t n_threads,
                                      SnapshotCache* cache) const {
  if (finalized_ || &out == this) {
    assert(!finalized_ && "DayGraph::finalize_snapshot of a finalized graph");
    assert(&out != this && "finalize_snapshot_into must not alias the source");
    std::abort();
  }
  // Reset the recycled container to a clean un-finalized state; every
  // finalized field is (re)assigned by build_csr, element storage reused.
  out.finalized_ = false;
  out.shards_.clear();
  out.staged_.clear();
  out.seq_ = 0;
  out.executor_ = executor_;
  build_csr(out, n_threads, /*consume=*/false, cache);
}

void DayGraph::build_csr(DayGraph& out, std::size_t n_threads, bool consume,
                         SnapshotCache* cache) const {
  assert(!consume || &out == this);
  // 1. Merge the shard interners into global id spaces. Ordering by global
  // first appearance makes every id identical to a sequential build.
  std::vector<const util::ShardInterner*> host_shards;
  std::vector<const util::ShardInterner*> domain_shards;
  std::vector<const util::ShardInterner*> ua_shards;
  host_shards.reserve(shards_.size());
  domain_shards.reserve(shards_.size());
  ua_shards.reserve(shards_.size());
  for (const DayShard& shard : shards_) {
    host_shards.push_back(&shard.hosts_);
    domain_shards.push_back(&shard.domains_);
    ua_shards.push_back(&shard.uas_);
  }
  util::InternerMerge hosts = util::merge_interners(host_shards);
  util::InternerMerge domains = util::merge_interners(domain_shards);
  util::InternerMerge uas = util::merge_interners(ua_shards);

  // 2. Stage every edge under its global (host, domain) key and order by
  // key. Host-hash routing puts each pair in exactly one shard, so keys
  // are unique and the sort is a total order. Edge slots are visited in
  // creation order via the shard's slot -> key table, which lets a
  // SnapshotCache pick up exactly where the previous snapshot stopped:
  // only slots past its per-shard high-water mark are staged and sorted,
  // then merged with the cached (already sorted, still id-exact — see the
  // cache contract) bulk of the window.
  const auto key_less = [](const StagedEdge& a, const StagedEdge& b) {
    return a.key < b.key;
  };
  const auto stage_shard = [&](std::uint32_t s, std::size_t first_slot,
                               std::vector<StagedEdge>& into) {
    const DayShard& shard = shards_[s];
    for (std::size_t slot = first_slot; slot < shard.edge_keys_.size();
         ++slot) {
      const std::uint64_t local = shard.edge_keys_[slot];
      const HostId host = hosts.to_global[s][local >> 32];
      const DomainId domain = domains.to_global[s][local & 0xffffffffu];
      into.push_back(StagedEdge{DayShard::edge_key(host, domain), s,
                                static_cast<std::uint32_t>(slot)});
    }
  };
  std::size_t n_edges = 0;
  for (const DayShard& shard : shards_) n_edges += shard.edges_.size();
  std::vector<StagedEdge> staged_local;
  const std::vector<StagedEdge>* staged_ptr = &staged_local;
  if (cache != nullptr) {
    if (cache->slots_done_.size() != shards_.size()) {
      cache->slots_done_.assign(shards_.size(), 0);
      cache->staged_.clear();
    }
    std::vector<StagedEdge> fresh;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      stage_shard(s, cache->slots_done_[s], fresh);
      cache->slots_done_[s] = shards_[s].edge_keys_.size();
    }
    if (!fresh.empty()) {
      std::sort(fresh.begin(), fresh.end(), key_less);
      std::vector<StagedEdge> merged;
      merged.reserve(cache->staged_.size() + fresh.size());
      std::merge(cache->staged_.begin(), cache->staged_.end(), fresh.begin(),
                 fresh.end(), std::back_inserter(merged), key_less);
      cache->staged_ = std::move(merged);
    }
    assert(cache->staged_.size() == n_edges &&
           "stale SnapshotCache: graph shrank or was replaced");
    staged_ptr = &cache->staged_;
  } else {
    staged_local.reserve(n_edges);
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      stage_shard(s, 0, staged_local);
    }
    std::sort(staged_local.begin(), staged_local.end(), key_less);
  }
  const std::vector<StagedEdge>& staged = *staged_ptr;

  // 3. CSR forward layout: per-host offset rows over flat edge_index_ /
  // edge_data_. The per-edge work (timestamp sort, UA id remap) is the
  // finalize hot loop; it parallelizes over contiguous edge ranges with
  // results written into per-edge slots, so any thread count produces the
  // same arrays. The consuming path moves each edge's payload out of its
  // shard; a snapshot copies, leaving the shards reusable. Pre-sorted
  // times (sealed partials keep them sorted through absorbs) skip the
  // sort — a sorted int64 sequence is unique, so the bytes are identical.
  out.host_offsets_.assign(hosts.interner.size() + 1, 0);
  for (const StagedEdge& st : staged) ++out.host_offsets_[(st.key >> 32) + 1];
  for (std::size_t h = 1; h < out.host_offsets_.size(); ++h) {
    out.host_offsets_[h] += out.host_offsets_[h - 1];
  }
  out.edge_index_.resize(n_edges);
  out.edge_data_.resize(n_edges);
  const bool sorted = times_sorted_;
  util::parallel_ranges(
      executor_.get(), n_edges, n_threads,
      [&, consume, sorted](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const StagedEdge& st = staged[i];
          const DayShard::Edge& src = shards_[st.shard].edges_[st.slot];
          EdgeData& dst = out.edge_data_[i];
          out.edge_index_[i] = static_cast<DomainId>(st.key & 0xffffffffu);
          if (consume) {
            dst.times = std::move(
                const_cast<DayShard::Edge&>(src).times);
          } else {
            dst.times = src.times;
          }
          if (sorted) {
            assert(std::is_sorted(dst.times.begin(), dst.times.end()));
          } else {
            std::sort(dst.times.begin(), dst.times.end());
          }
          dst.user_agents.clear();  // `out` may be a recycled snapshot
          dst.user_agents.reserve(src.user_agents.size());
          for (const UaId ua : src.user_agents) {
            dst.user_agents.push_back(uas.to_global[st.shard][ua]);
          }
          dst.any_referer = src.any_referer;
          dst.any_empty_ua = src.any_empty_ua;
        }
      });

  // 4. Reverse CSR (dom_host of Algorithm 1) by counting sort; scanning
  // edges in (host, domain) order emits each domain's hosts ascending.
  out.domain_offsets_.assign(domains.interner.size() + 1, 0);
  for (const DomainId domain : out.edge_index_) ++out.domain_offsets_[domain + 1];
  for (std::size_t d = 1; d < out.domain_offsets_.size(); ++d) {
    out.domain_offsets_[d] += out.domain_offsets_[d - 1];
  }
  out.domain_hosts_.resize(n_edges);
  std::vector<std::uint32_t> cursor(out.domain_offsets_.begin(),
                                    out.domain_offsets_.end() - 1);
  for (std::size_t h = 0; h + 1 < out.host_offsets_.size(); ++h) {
    for (std::uint32_t e = out.host_offsets_[h]; e < out.host_offsets_[h + 1];
         ++e) {
      out.domain_hosts_[cursor[out.edge_index_[e]]++] = static_cast<HostId>(h);
    }
  }

  // 5. Distinct destination IPs per domain: union the shard-local sets by
  // earliest appearance, reproducing the sequential first-seen dedup order.
  std::vector<std::vector<DayShard::IpSeen>> merged_ips(domains.interner.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const DayShard& shard = shards_[s];
    for (std::size_t local = 0; local < shard.ips_of_domain_.size(); ++local) {
      if (shard.ips_of_domain_[local].empty()) continue;
      auto& bucket = merged_ips[domains.to_global[s][local]];
      bucket.insert(bucket.end(), shard.ips_of_domain_[local].begin(),
                    shard.ips_of_domain_[local].end());
    }
  }
  out.ip_offsets_.assign(domains.interner.size() + 1, 0);
  out.domain_ips_.clear();
  for (std::size_t d = 0; d < merged_ips.size(); ++d) {
    auto& bucket = merged_ips[d];
    std::sort(bucket.begin(), bucket.end(),
              [](const DayShard::IpSeen& a, const DayShard::IpSeen& b) {
                return a.seq < b.seq;
              });
    const std::size_t row_begin = out.domain_ips_.size();
    for (const DayShard::IpSeen& seen : bucket) {
      const auto first =
          out.domain_ips_.begin() + static_cast<std::ptrdiff_t>(row_begin);
      if (std::find(first, out.domain_ips_.end(), seen.ip) ==
          out.domain_ips_.end()) {
        out.domain_ips_.push_back(seen.ip);
      }
    }
    out.ip_offsets_[d + 1] = static_cast<std::uint32_t>(out.domain_ips_.size());
  }

  // 6. Install the merged interners. The consuming caller (finalize)
  // releases the ingest shards afterwards; a snapshot leaves them intact.
  out.hosts_ = std::move(hosts.interner);
  out.domains_ = std::move(domains.interner);
  out.uas_ = std::move(uas.interner);
  out.finalized_ = true;
}

// Row guards compare against size() - 1 (offsets hold count + 1 entries):
// an id + 1 form would wrap for kNoId and index out of bounds. The
// asserts keep the misuse contract consistent with name()/find(): a query
// before finalize() fails loudly in debug builds rather than reading as a
// plausible empty day.
std::span<const HostId> DayGraph::domain_hosts(DomainId domain) const {
  assert(finalized_);
  if (domain_offsets_.size() <= 1 || domain >= domain_offsets_.size() - 1) {
    return {};
  }
  return {domain_hosts_.data() + domain_offsets_[domain],
          domain_offsets_[domain + 1] - domain_offsets_[domain]};
}

std::span<const DomainId> DayGraph::host_domains(HostId host) const {
  assert(finalized_);
  if (host_offsets_.size() <= 1 || host >= host_offsets_.size() - 1) return {};
  return {edge_index_.data() + host_offsets_[host],
          host_offsets_[host + 1] - host_offsets_[host]};
}

const EdgeData* DayGraph::edge(HostId host, DomainId domain) const {
  assert(finalized_);
  if (host_offsets_.size() <= 1 || host >= host_offsets_.size() - 1) {
    return nullptr;
  }
  const auto row_begin = edge_index_.begin() + host_offsets_[host];
  const auto row_end = edge_index_.begin() + host_offsets_[host + 1];
  const auto it = std::lower_bound(row_begin, row_end, domain);
  if (it == row_end || *it != domain) return nullptr;
  return &edge_data_[static_cast<std::size_t>(it - edge_index_.begin())];
}

std::optional<util::TimePoint> DayGraph::first_contact(HostId host,
                                                       DomainId domain) const {
  const EdgeData* e = edge(host, domain);
  if (e == nullptr || e->times.empty()) return std::nullopt;
  return e->times.front();
}

std::span<const util::Ipv4> DayGraph::domain_ips(DomainId domain) const {
  assert(finalized_);
  if (ip_offsets_.size() <= 1 || domain >= ip_offsets_.size() - 1) return {};
  return {domain_ips_.data() + ip_offsets_[domain],
          ip_offsets_[domain + 1] - ip_offsets_[domain]};
}

}  // namespace eid::graph
