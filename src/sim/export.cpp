#include "sim/export.h"

#include "logs/files.h"

namespace eid::sim {

ExportStats export_dataset(EnterpriseSimulator& simulator, util::Day first_day,
                           util::Day last_day,
                           const std::filesystem::path& directory) {
  ExportStats stats;
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return stats;

  const bool dns = simulator.config().flavor == Flavor::Dns;
  for (util::Day day = first_day; day <= last_day; ++day) {
    const DayLogs logs = simulator.simulate_day(day);
    const std::string name =
        (dns ? "dns-" : "proxy-") + util::format_day(day) + ".tsv";
    const bool written =
        dns ? logs::write_dns_file(directory / name, logs.dns)
            : logs::write_proxy_file(directory / name, logs.proxy);
    if (!written) return stats;
    ++stats.days;
    stats.records += dns ? logs.dns.size() : logs.proxy.size();
  }

  std::vector<logs::DhcpLease> leases;
  simulator.dhcp().for_each_lease(
      [&leases](const logs::DhcpLease& lease) { leases.push_back(lease); });
  if (!logs::write_dhcp_file(directory / "dhcp.tsv", leases)) return stats;
  stats.leases = leases.size();
  stats.ok = true;
  return stats;
}

}  // namespace eid::sim
