// Ground truth for the synthetic world: which domains are truly malicious
// (and which campaign they belong to), which are grayware (the paper's
// "suspicious" category — adware, toolbars, gaming, torrent trackers), and
// which internal hosts each campaign compromised. Evaluation modules use
// this as the omniscient reference the paper approximates with VirusTotal
// plus manual SOC investigation.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace eid::sim {

enum class TruthLabel { Benign, Grayware, Malicious };

const char* truth_label_name(TruthLabel label);

/// Everything true about one attack campaign.
struct CampaignTruth {
  int id = 0;
  util::Day start_day = 0;
  int duration_days = 1;
  std::vector<std::string> domains;   ///< all campaign domains (folded)
  std::vector<std::string> cc_domains;
  std::vector<std::string> victims;   ///< compromised internal hosts
};

class GroundTruth {
 public:
  void set_label(const std::string& domain, TruthLabel label, int campaign = -1) {
    labels_[domain] = label;
    if (campaign >= 0) campaign_of_[domain] = campaign;
  }

  void add_campaign(CampaignTruth truth) {
    campaigns_[truth.id] = std::move(truth);
  }

  TruthLabel label(const std::string& domain) const {
    auto it = labels_.find(domain);
    return it == labels_.end() ? TruthLabel::Benign : it->second;
  }

  bool is_malicious(const std::string& domain) const {
    return label(domain) == TruthLabel::Malicious;
  }

  bool is_grayware(const std::string& domain) const {
    return label(domain) == TruthLabel::Grayware;
  }

  /// Campaign id of a malicious domain, -1 if none.
  int campaign_of(const std::string& domain) const {
    auto it = campaign_of_.find(domain);
    return it == campaign_of_.end() ? -1 : it->second;
  }

  const std::map<int, CampaignTruth>& campaigns() const { return campaigns_; }

  const CampaignTruth* campaign(int id) const {
    auto it = campaigns_.find(id);
    return it == campaigns_.end() ? nullptr : &it->second;
  }

  std::size_t malicious_count() const {
    std::size_t n = 0;
    for (const auto& [name, label] : labels_) {
      if (label == TruthLabel::Malicious) ++n;
    }
    return n;
  }

 private:
  std::unordered_map<std::string, TruthLabel> labels_;
  std::unordered_map<std::string, int> campaign_of_;
  std::map<int, CampaignTruth> campaigns_;
};

}  // namespace eid::sim
