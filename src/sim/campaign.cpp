#include "sim/campaign.h"

namespace eid::sim {

std::vector<CampaignSpec> generate_campaign_schedule(util::Rng& rng,
                                                     util::Day day0, int n_days,
                                                     double campaigns_per_week,
                                                     int first_id) {
  std::vector<CampaignSpec> out;
  int id = first_id;
  const double daily_rate = campaigns_per_week / 7.0;
  for (int d = 0; d < n_days; ++d) {
    // Bernoulli-thinned schedule; supports fractional weekly rates.
    int starts = 0;
    double rate = daily_rate;
    while (rate >= 1.0) {
      ++starts;
      rate -= 1.0;
    }
    if (rng.chance(rate)) ++starts;
    for (int s = 0; s < starts; ++s) {
      CampaignSpec spec;
      spec.id = id++;
      spec.start_day = day0 + d;
      spec.duration_days = 4 + static_cast<int>(rng.uniform(24));
      spec.n_victims = 1 + rng.index(3);
      spec.delivery_chain = 2 + rng.index(3);
      spec.n_cc = 1 + rng.index(2);
      spec.second_stage = rng.index(3);
      // Beacon periods from ~2 minutes to 2 hours (§II-A: "minutes or hours").
      static constexpr double kPeriods[] = {120, 300, 600, 900, 1800, 3600, 7200};
      spec.cc_period_seconds = kPeriods[rng.index(std::size(kPeriods))];
      // Backdoors add a few seconds of jitter between connections (§II-A:
      // "small variation between connections") — small in absolute terms,
      // which is what the W = 10 s dynamic bins are sized to absorb.
      spec.jitter_seconds = rng.uniform_double(0.3, 2.5);
      spec.outlier_prob = rng.uniform_double(0.0, 0.03);
      const double style = rng.uniform_double();
      if (style < 0.45) {
        spec.name_style = CampaignNameStyle::Benign;
      } else if (style < 0.65) {
        spec.name_style = CampaignNameStyle::ShortDga;
        spec.registered_fraction = 0.5;
      } else if (style < 0.8) {
        spec.name_style = CampaignNameStyle::LongDga;
        spec.registered_fraction = 0.4;
        spec.late_registration = true;
      } else {
        spec.name_style = CampaignNameStyle::RuCc;
      }
      spec.malware_empty_ua = rng.chance(0.35);
      out.push_back(spec);
    }
  }
  return out;
}

}  // namespace eid::sim
