// Dataset export: materialize a simulated scenario as on-disk log files in
// the same TSV formats the ingestion layer reads, so the full
// read-from-disk production path (logs::read_*_file -> reduce -> detect)
// can be exercised and datasets can be shared/re-analyzed without the
// simulator.
//
// Layout under `directory`:
//   dns-YYYY-MM-DD.tsv    (DNS flavor)
//   proxy-YYYY-MM-DD.tsv  (proxy flavor)
//   dhcp.tsv              (all leases issued over the exported range)
#pragma once

#include <filesystem>

#include "sim/enterprise.h"

namespace eid::sim {

struct ExportStats {
  std::size_t days = 0;
  std::size_t records = 0;
  std::size_t leases = 0;
  bool ok = false;
};

/// Simulate and write [first_day, last_day] inclusive. Days must be
/// simulated in order (DHCP leases accumulate chronologically).
ExportStats export_dataset(EnterpriseSimulator& simulator,
                           util::Day first_day, util::Day last_day,
                           const std::filesystem::path& directory);

}  // namespace eid::sim
