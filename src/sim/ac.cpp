#include "sim/ac.h"

namespace eid::sim {

AcScenario::AcScenario(AcConfig config) {
  SimConfig sim_config;
  sim_config.flavor = Flavor::Proxy;
  sim_config.seed = config.seed;
  sim_config.day0 = training_begin();
  sim_config.n_hosts = config.n_hosts;
  sim_config.n_popular = config.n_popular;
  sim_config.tail_per_day = config.tail_per_day;
  sim_config.automated_tail_per_day = config.automated_tail_per_day;
  sim_config.grayware_per_day = config.grayware_per_day;

  util::Rng rng(config.seed ^ 0xac);
  const int n_days =
      static_cast<int>(operation_end() - training_begin()) + 1;
  std::vector<CampaignSpec> specs = generate_campaign_schedule(
      rng, training_begin(), n_days, config.campaigns_per_week);

  sim_ = std::make_unique<EnterpriseSimulator>(sim_config, std::move(specs));
  oracle_ = std::make_unique<IntelOracle>(sim_->truth(), config.oracle);
}

}  // namespace eid::sim
