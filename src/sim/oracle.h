// Partial-knowledge intelligence oracle — the substitute for VirusTotal and
// the enterprise SOC's IOC list.
//
// The paper uses VirusTotal twice: as *training labels* for the regression
// models ("reported" vs "legitimate" automated domains, §VI-A) and as part
// of *validation* (known malicious vs new discoveries, §VI-B). Crucially VT
// is incomplete — 98 of the paper's detections were unknown to VT — so the
// oracle reports only a deterministic fraction of truly-malicious domains,
// an even smaller fraction lands on the SOC IOC list, and a sliver of
// grayware is reported too. Everything derives from ground truth + a hash,
// so results are reproducible.
#pragma once

#include <string>
#include <vector>

#include "sim/truth.h"

namespace eid::sim {

class IntelOracle {
 public:
  struct Params {
    double vt_malicious = 0.65;  ///< P(VT reports | truly malicious)
    double vt_grayware = 0.25;   ///< P(VT reports | grayware)
    double ioc_given_vt = 0.2;   ///< P(on SOC IOC list | VT reports)
    std::uint64_t seed = 0x1e7;
  };

  explicit IntelOracle(const GroundTruth& truth) : IntelOracle(truth, Params{}) {}
  IntelOracle(const GroundTruth& truth, Params params)
      : truth_(truth), params_(params) {}

  /// True when at least one anti-virus engine "reports" the domain.
  bool vt_reported(const std::string& domain) const;

  /// True when the domain is on the SOC's IOC list.
  bool soc_ioc(const std::string& domain) const;

  /// All IOC domains of one campaign (seed material for SOC-hints mode).
  std::vector<std::string> ioc_domains_of_campaign(int campaign) const;

  /// All IOC domains across campaigns active in [first_day, last_day].
  std::vector<std::string> ioc_list(util::Day first_day, util::Day last_day) const;

  const GroundTruth& truth() const { return truth_; }

 private:
  double unit_hash(const std::string& domain, std::uint64_t salt) const;

  const GroundTruth& truth_;
  Params params_;
};

}  // namespace eid::sim
