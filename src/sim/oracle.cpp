#include "sim/oracle.h"

#include "util/rng.h"

namespace eid::sim {

double IntelOracle::unit_hash(const std::string& domain, std::uint64_t salt) const {
  // FNV-1a over the name, then a splitmix64 finalizer: every character
  // fully diffuses, so structurally-similar names ("gray1.com",
  // "gray2.com") get independent draws.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ params_.seed ^ (salt * 0x9e3779b9ULL);
  for (const char c : domain) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53;
}

bool IntelOracle::vt_reported(const std::string& domain) const {
  switch (truth_.label(domain)) {
    case TruthLabel::Malicious:
      return unit_hash(domain, 0x70) < params_.vt_malicious;
    case TruthLabel::Grayware:
      return unit_hash(domain, 0x70) < params_.vt_grayware;
    case TruthLabel::Benign:
      return false;
  }
  return false;
}

bool IntelOracle::soc_ioc(const std::string& domain) const {
  if (!vt_reported(domain)) return false;
  if (!truth_.is_malicious(domain)) return false;
  return unit_hash(domain, 0x50c) < params_.ioc_given_vt;
}

std::vector<std::string> IntelOracle::ioc_domains_of_campaign(int campaign) const {
  std::vector<std::string> out;
  if (const CampaignTruth* truth = truth_.campaign(campaign)) {
    for (const std::string& domain : truth->domains) {
      if (soc_ioc(domain)) out.push_back(domain);
    }
  }
  return out;
}

std::vector<std::string> IntelOracle::ioc_list(util::Day first_day,
                                               util::Day last_day) const {
  std::vector<std::string> out;
  for (const auto& [id, campaign] : truth_.campaigns()) {
    if (campaign.start_day + campaign.duration_days <= first_day) continue;
    if (campaign.start_day > last_day) continue;
    for (const std::string& domain : campaign.domains) {
      if (soc_ioc(domain)) out.push_back(domain);
    }
  }
  return out;
}

}  // namespace eid::sim
