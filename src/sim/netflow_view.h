// NetFlow view of a simulated proxy day: derives the flow + DNS telemetry a
// border sensor would see for the same traffic. Each HTTP(S) request
// becomes one TCP flow to port 80/443, preceded (on first contact of the
// day) by the client's A lookup — which is what populates the passive-DNS
// cache the flow reducer attributes against.
#pragma once

#include <vector>

#include "logs/netflow.h"
#include "sim/enterprise.h"

namespace eid::sim {

struct NetflowDay {
  std::vector<logs::FlowRecord> flows;
  std::vector<logs::DnsRecord> dns;  ///< the lookups preceding the flows
};

/// Convert one simulated proxy day. `resolve_host` controls whether the
/// flow source is the resolved hostname (sensor integrated with DHCP) or
/// the raw source address.
NetflowDay to_netflow(const DayLogs& proxy_day,
                      const logs::DhcpTable& leases,
                      const logs::ProxyReductionConfig& reduction);

}  // namespace eid::sim
