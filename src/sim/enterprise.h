// Synthetic enterprise traffic generator — the substitute for the LANL DNS
// dataset and the AC web-proxy dataset (see DESIGN.md §2).
//
// The world contains:
//  * N workstations with homogeneous browser UA populations (7-9 common UAs
//    per host, a few hosts with one rare niche UA);
//  * popular destinations with Zipf-distributed visit popularity (never
//    rare), visited in referer-carrying browsing sessions;
//  * a daily churn of new benign "tail" destinations (the bulk of the
//    ~tens-of-thousands rare destinations the paper reports);
//  * a daily churn of new legitimate automated services (site refreshers,
//    niche updaters) — periodic, referer-less, sometimes rare-UA: the
//    false-positive surface of the C&C detector (Fig. 5);
//  * grayware (adware / toolbars / gaming / torrent trackers) — the paper's
//    "suspicious" validation category;
//  * internal destinations and chatty internal servers (DNS flavor), which
//    the reduction stage must strip (Fig. 2);
//  * attack campaigns per CampaignSpec.
//
// Proxy flavor extras: multi-timezone collectors, DHCP-assigned source
// addresses with a daily-churning lease table, HTTP context (UA, referer,
// status, URL). Everything is deterministic in the config seed.
#pragma once

#include <string>
#include <vector>

#include "logs/dhcp.h"
#include "logs/records.h"
#include "logs/reduction.h"
#include "sim/campaign.h"
#include "sim/truth.h"
#include "sim/whois_db.h"
#include "util/rng.h"

namespace eid::sim {

enum class Flavor { Dns, Proxy };

struct SimConfig {
  Flavor flavor = Flavor::Proxy;
  std::uint64_t seed = 1;
  util::Day day0 = 0;  ///< first simulated day (set by scenarios)

  std::size_t n_hosts = 1500;
  std::size_t n_servers = 15;      ///< internal servers (their queries are noise)
  std::size_t n_popular = 600;
  std::size_t tail_per_day = 400;  ///< new benign browse-tail domains per day
  std::size_t automated_tail_per_day = 12;  ///< new legit periodic services
  std::size_t grayware_per_day = 4;         ///< newly active grayware domains
  std::size_t n_internal_domains = 40;
  std::size_t server_tail_per_day = 150;  ///< server-only destinations (DNS)

  double sessions_per_host = 5.0;         ///< mean browsing sessions per day
  std::size_t session_requests_min = 3;
  std::size_t session_requests_max = 10;
  double no_referer_fraction = 0.08;  ///< browsing requests with wiped referer
  double dns_extra_record_fraction = 0.35;  ///< AAAA/TXT/... noise (DNS flavor)
  double dhcp_fraction = 0.8;   ///< hosts with dynamic addressing (proxy flavor)
  std::string internal_suffix = "corp.internal";
};

/// One simulated day of raw logs (only the flavor's vector is filled).
struct DayLogs {
  std::vector<logs::DnsRecord> dns;
  std::vector<logs::ProxyRecord> proxy;
};

class EnterpriseSimulator {
 public:
  EnterpriseSimulator(SimConfig config, std::vector<CampaignSpec> campaigns);

  /// Generate the raw logs of one day. Must be called with non-decreasing
  /// days (DHCP leases are appended chronologically).
  DayLogs simulate_day(util::Day day);

  /// Convenience: simulate + flavor-appropriate normalization/reduction.
  std::vector<logs::ConnEvent> reduced_day(util::Day day,
                                           logs::DnsReductionStats* dns_stats = nullptr,
                                           logs::ProxyReductionStats* proxy_stats = nullptr);

  const SimConfig& config() const { return config_; }
  const WhoisDb& whois() const { return whois_; }
  const GroundTruth& truth() const { return truth_; }
  const logs::DhcpTable& dhcp() const { return dhcp_; }
  const std::vector<std::string>& host_names() const { return host_names_; }

  logs::DnsReductionConfig dns_reduction_config() const;
  logs::ProxyReductionConfig proxy_reduction_config() const;

 private:
  struct HostProfile {
    std::string name;
    std::vector<std::string> browser_uas;  ///< 5-9 common UAs
    std::string niche_ua;                  ///< "" for most hosts
    double activity = 1.0;                 ///< per-host browsing multiplier
    std::size_t collector = 0;             ///< proxy collection device
    bool dhcp = true;                      ///< dynamically addressed
    std::string static_ip;                 ///< when !dhcp
  };

  struct PopularDomain {
    std::string name;
    util::Ipv4 ip;
    bool has_subdomains = false;
  };

  struct CampaignDomain {
    std::string name;
    util::Ipv4 ip;
    enum class Role { Delivery, CandC, SecondStage } role;
  };

  struct CampaignState {
    CampaignSpec spec;
    std::vector<CampaignDomain> domains;
    std::vector<std::size_t> victims;  ///< host indices
    std::string malware_ua;            ///< "" when spec.malware_empty_ua
  };

  // --- world building ---
  void build_hosts();
  void build_popular();
  void build_campaign(const CampaignSpec& spec);

  // --- per-day emission (append into `sink`) ---
  struct Request {
    util::TimePoint ts;
    std::size_t host;
    std::string domain;      ///< possibly with a subdomain prefix
    util::Ipv4 ip;
    std::string ua;
    std::string referer;     ///< "" = none
    std::string url;
    int status = 200;
  };
  void emit(DayLogs& sink, const Request& req, util::Rng& rng);

  void emit_browsing(DayLogs& sink, util::Day day, util::Rng& rng);
  void emit_tail(DayLogs& sink, util::Day day, util::Rng& rng);
  void emit_automated_tail(DayLogs& sink, util::Day day, util::Rng& rng);
  void emit_grayware(DayLogs& sink, util::Day day, util::Rng& rng);
  void emit_internal(DayLogs& sink, util::Day day, util::Rng& rng);
  void emit_campaigns(DayLogs& sink, util::Day day, util::Rng& rng);
  void emit_beacons(DayLogs& sink, const CampaignState& campaign,
                    const CampaignDomain& cc, std::size_t victim,
                    util::TimePoint from, util::TimePoint to, util::Rng& rng);

  void assign_dhcp(util::Day day);
  std::string source_ip_for(std::size_t host, util::Day day) const;
  util::Ipv4 random_public_ip(util::Rng& rng) const;
  std::string pick_browser_ua(std::size_t host, util::Rng& rng) const;

  SimConfig config_;
  util::Rng world_rng_;
  WhoisDb whois_;
  GroundTruth truth_;
  logs::DhcpTable dhcp_;

  std::vector<HostProfile> hosts_;
  std::vector<std::string> host_names_;
  std::vector<std::string> server_names_;
  std::vector<PopularDomain> popular_;
  std::vector<std::string> internal_domains_;
  std::vector<std::string> common_uas_;
  std::vector<std::string> service_uas_;  ///< shared by legit periodic services
  std::vector<CampaignState> campaigns_;
  std::vector<std::pair<std::string, int>> collector_offsets_;
  std::vector<std::string> day_ips_;  ///< per-host source IP for current day
  util::Day dhcp_day_ = -1;
};

}  // namespace eid::sim
