#include "sim/enterprise.h"

#include <algorithm>
#include <cstdio>

#include "sim/names.h"

namespace eid::sim {
namespace {

constexpr util::TimePoint kWorkStart = 8 * util::kSecondsPerHour;
constexpr util::TimePoint kWorkEnd = 18 * util::kSecondsPerHour;

std::string campaign_url(CampaignNameStyle style, util::Rng& rng) {
  switch (style) {
    case CampaignNameStyle::ShortDga:
      return "/tan2.html";
    case CampaignNameStyle::LongDga:
      return "/logo.gif?" + syllable_word(rng, 2);
    case CampaignNameStyle::RuCc:
      return "/gate.php?id=" + std::to_string(rng.uniform(100000));
    default:
      return "/" + syllable_word(rng, 2) + ".php";
  }
}

}  // namespace

EnterpriseSimulator::EnterpriseSimulator(SimConfig config,
                                         std::vector<CampaignSpec> campaigns)
    : config_(std::move(config)), world_rng_(config_.seed) {
  collector_offsets_ = {{"px-us", 0}, {"px-eu", 3600}, {"px-ap", -7200}};
  build_hosts();
  build_popular();
  for (std::size_t i = 0; i < config_.n_internal_domains; ++i) {
    internal_domains_.push_back(syllable_word(world_rng_, 2) + "." +
                                config_.internal_suffix);
  }
  for (const CampaignSpec& spec : campaigns) build_campaign(spec);
}

void EnterpriseSimulator::build_hosts() {
  // A homogeneous common-UA population (§IV-C: most UA strings are employed
  // by a large number of users).
  const std::size_t n_common = 30;
  for (std::size_t i = 0; i < n_common; ++i) {
    common_uas_.push_back(browser_ua(world_rng_));
  }
  // A small pool of service UAs (updaters, sync clients) reused across the
  // fleet — legitimate automated software is as homogeneous as browsers in
  // an enterprise, which is what makes RareUA informative (§IV-C).
  for (std::size_t i = 0; i < 6; ++i) {
    service_uas_.push_back(rare_ua(world_rng_));
  }
  hosts_.reserve(config_.n_hosts);
  for (std::size_t h = 0; h < config_.n_hosts; ++h) {
    HostProfile host;
    host.name = config_.flavor == Flavor::Dns ? lanl_host_name(world_rng_)
                                              : workstation_name(h);
    const std::size_t n_uas = 5 + world_rng_.index(5);  // 5-9 UAs per user
    for (const std::size_t idx : world_rng_.sample_indices(n_common, n_uas)) {
      host.browser_uas.push_back(common_uas_[idx]);
    }
    if (world_rng_.chance(0.06)) host.niche_ua = rare_ua(world_rng_);
    host.activity = world_rng_.uniform_double(0.4, 1.8);
    host.collector = h % collector_offsets_.size();
    host.dhcp = world_rng_.chance(config_.dhcp_fraction);
    if (!host.dhcp) {
      char buf[20];
      std::snprintf(buf, sizeof(buf), "172.16.%zu.%zu", (h >> 8) & 0xff, h & 0xff);
      host.static_ip = buf;
    }
    host_names_.push_back(host.name);
    hosts_.push_back(std::move(host));
  }
  for (std::size_t s = 0; s < config_.n_servers; ++s) {
    server_names_.push_back(config_.flavor == Flavor::Dns
                                ? lanl_host_name(world_rng_)
                                : "srv-" + std::to_string(s) + ".corp");
  }
}

void EnterpriseSimulator::build_popular() {
  popular_.reserve(config_.n_popular);
  for (std::size_t i = 0; i < config_.n_popular; ++i) {
    PopularDomain dom;
    do {
      dom.name = config_.flavor == Flavor::Dns ? lanl_domain(world_rng_)
                                               : benign_domain(world_rng_);
    } while (whois_.is_registered(dom.name));
    dom.ip = random_public_ip(world_rng_);
    dom.has_subdomains = world_rng_.chance(0.4);
    // Popular sites are long-registered with long validity.
    whois_.add_aged(dom.name, config_.day0,
                    world_rng_.uniform_int(400, 6000),
                    world_rng_.uniform_int(365, 3000));
    popular_.push_back(std::move(dom));
  }
}

void EnterpriseSimulator::build_campaign(const CampaignSpec& spec) {
  CampaignState state;
  state.spec = spec;
  util::Rng rng = world_rng_.fork(0xca400000ULL + static_cast<std::uint64_t>(spec.id));
  if (!spec.malware_empty_ua) state.malware_ua = rare_ua(rng);

  // Attacker infrastructure is co-located: one /24 base, with ~30% of the
  // domains placed in a sibling /24 of the same /16 (§IV-D, [19], [26]).
  const std::uint32_t base24 = (random_public_ip(rng).value >> 8) << 8;
  const std::uint32_t sibling24 = (base24 & 0xffff0000u) |
                                  ((base24 + 0x100u) & 0x0000ff00u);

  const auto make_name = [&rng, &spec, this]() {
    std::string name;
    do {
      switch (spec.name_style) {
        case CampaignNameStyle::Benign: name = benign_domain(rng); break;
        case CampaignNameStyle::ShortDga: name = short_dga_domain(rng); break;
        case CampaignNameStyle::LongDga: name = long_dga_domain(rng); break;
        case CampaignNameStyle::RuCc: name = ru_cc_domain(rng); break;
        case CampaignNameStyle::Lanl: name = lanl_domain(rng); break;
      }
    } while (whois_.is_registered(name));
    return name;
  };

  CampaignTruth truth;
  truth.id = spec.id;
  truth.start_day = spec.start_day;
  truth.duration_days = spec.duration_days;

  const std::size_t total =
      spec.delivery_chain + spec.n_cc + spec.second_stage;
  for (std::size_t i = 0; i < total; ++i) {
    CampaignDomain dom;
    dom.name = make_name();
    const std::uint32_t net = rng.chance(0.7) ? base24 : sibling24;
    dom.ip = util::Ipv4{net | static_cast<std::uint32_t>(1 + rng.uniform(250))};
    if (i < spec.delivery_chain) {
      dom.role = CampaignDomain::Role::Delivery;
    } else if (i < spec.delivery_chain + spec.n_cc) {
      dom.role = CampaignDomain::Role::CandC;
      truth.cc_domains.push_back(dom.name);
    } else {
      dom.role = CampaignDomain::Role::SecondStage;
    }
    // Recently registered, short validity; DGA campaigns register only a
    // fraction, sometimes only after the campaign is already active.
    const bool registered =
        dom.role == CampaignDomain::Role::CandC || rng.chance(spec.registered_fraction);
    if (registered) {
      if (spec.late_registration && rng.chance(0.4)) {
        whois_.add(dom.name, spec.start_day + rng.uniform_int(2, 8),
                   spec.start_day + rng.uniform_int(40, 200));
      } else {
        whois_.add(dom.name, spec.start_day - rng.uniform_int(1, 25),
                   spec.start_day + rng.uniform_int(30, 365));
      }
    }
    truth_.set_label(dom.name, TruthLabel::Malicious, spec.id);
    truth.domains.push_back(dom.name);
    state.domains.push_back(std::move(dom));
  }

  for (const std::size_t v : rng.sample_indices(hosts_.size(), spec.n_victims)) {
    state.victims.push_back(v);
    truth.victims.push_back(hosts_[v].name);
  }
  truth_.add_campaign(std::move(truth));
  campaigns_.push_back(std::move(state));
}

util::Ipv4 EnterpriseSimulator::random_public_ip(util::Rng& rng) const {
  // First octet in 11..220, skipping the private 172.16/12 and 192.168/16
  // ranges closely enough for simulation purposes.
  std::uint32_t a = 11 + static_cast<std::uint32_t>(rng.uniform(210));
  if (a == 172 || a == 192 || a == 10) a = 53;
  return util::Ipv4::from_octets(a, static_cast<std::uint32_t>(rng.uniform(256)),
                                 static_cast<std::uint32_t>(rng.uniform(256)),
                                 static_cast<std::uint32_t>(1 + rng.uniform(254)));
}

std::string EnterpriseSimulator::pick_browser_ua(std::size_t host,
                                                 util::Rng& rng) const {
  const auto& uas = hosts_[host].browser_uas;
  return uas[rng.index(uas.size())];
}

void EnterpriseSimulator::assign_dhcp(util::Day day) {
  if (day == dhcp_day_) return;
  dhcp_day_ = day;
  day_ips_.assign(hosts_.size(), {});
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    if (!hosts_[h].dhcp) {
      day_ips_[h] = hosts_[h].static_ip;
      continue;
    }
    // Rotate the pool daily so the same address maps to different hosts on
    // different days — resolving naively by IP would cross-contaminate.
    const std::size_t slot = (h + static_cast<std::size_t>(day) * 131) % 65000;
    char buf[20];
    std::snprintf(buf, sizeof(buf), "10.%zu.%zu.%zu", 1 + slot / 16000,
                  (slot / 250) % 250, 1 + slot % 250);
    day_ips_[h] = buf;
    logs::DhcpLease lease;
    lease.ip = day_ips_[h];
    lease.start = util::day_start(day);
    lease.end = util::day_start(day + 1);
    lease.hostname = hosts_[h].name;
    dhcp_.add_lease(std::move(lease));
  }
}

std::string EnterpriseSimulator::source_ip_for(std::size_t host,
                                               util::Day /*day*/) const {
  return day_ips_[host];
}

void EnterpriseSimulator::emit(DayLogs& sink, const Request& req, util::Rng& rng) {
  if (config_.flavor == Flavor::Dns) {
    logs::DnsRecord rec;
    rec.ts = req.ts;
    rec.src = hosts_[req.host].name;
    rec.domain = req.domain;
    rec.type = logs::DnsType::A;
    rec.response_ip = req.ip;
    sink.dns.push_back(rec);
    if (rng.chance(config_.dns_extra_record_fraction)) {
      rec.type = rng.chance(0.6) ? logs::DnsType::AAAA : logs::DnsType::TXT;
      rec.response_ip = std::nullopt;
      sink.dns.push_back(std::move(rec));
    }
    return;
  }
  const HostProfile& host = hosts_[req.host];
  logs::ProxyRecord rec;
  const auto& [collector, offset] = collector_offsets_[host.collector];
  rec.collector = collector;
  rec.ts = req.ts + offset;  // collector-local timestamp
  rec.src_ip = source_ip_for(req.host, util::day_of(req.ts));
  rec.hostname = host.dhcp ? std::string() : host.name;
  rec.domain = req.domain;
  rec.dest_ip = req.ip;
  rec.url_path = req.url.empty() ? "/" : req.url;
  rec.method = rng.chance(0.85) ? logs::HttpMethod::Get : logs::HttpMethod::Post;
  rec.status = req.status;
  rec.user_agent = req.ua;
  rec.referer = req.referer;
  sink.proxy.push_back(std::move(rec));
}

void EnterpriseSimulator::emit_browsing(DayLogs& sink, util::Day day,
                                        util::Rng& rng) {
  const util::TimePoint base = util::day_start(day);
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    util::Rng host_rng = rng.fork(0xb0000000ULL + h);
    const double mean = config_.sessions_per_host * hosts_[h].activity;
    const auto sessions = static_cast<std::size_t>(host_rng.exponential(mean));
    for (std::size_t s = 0; s < sessions; ++s) {
      util::TimePoint t =
          base + host_rng.uniform_int(kWorkStart, kWorkEnd - 1);
      const std::size_t n_requests = host_rng.uniform_int(
          static_cast<std::int64_t>(config_.session_requests_min),
          static_cast<std::int64_t>(config_.session_requests_max));
      std::string prev_domain;
      const std::string ua = pick_browser_ua(h, host_rng);
      for (std::size_t r = 0; r < n_requests; ++r) {
        const std::size_t rank = host_rng.zipf(popular_.size(), 1.1) - 1;
        const PopularDomain& dom = popular_[rank];
        Request req;
        req.ts = t;
        req.host = h;
        req.domain = dom.has_subdomains && host_rng.chance(0.5)
                         ? "www." + dom.name
                         : dom.name;
        req.ip = dom.ip;
        req.ua = ua;
        if (!prev_domain.empty() && !host_rng.chance(config_.no_referer_fraction)) {
          req.referer = prev_domain;
        }
        req.url = "/" + syllable_word(host_rng, 1 + host_rng.index(3));
        emit(sink, req, host_rng);
        prev_domain = dom.name;
        t += 1 + static_cast<util::TimePoint>(host_rng.exponential(20.0));
      }
    }
  }
}

void EnterpriseSimulator::emit_tail(DayLogs& sink, util::Day day, util::Rng& rng) {
  const util::TimePoint base = util::day_start(day);
  for (std::size_t i = 0; i < config_.tail_per_day; ++i) {
    std::string name;
    do {
      name = config_.flavor == Flavor::Dns ? lanl_domain(rng) : benign_domain(rng);
    } while (whois_.is_registered(name));
    // Mostly long-registered niche sites; ~10% are genuinely young domains,
    // which makes DomAge informative rather than a perfect separator.
    if (rng.chance(0.9)) {
      whois_.add_aged(name, day, rng.uniform_int(60, 3000),
                      rng.uniform_int(30, 1100));
    } else {
      whois_.add_aged(name, day, rng.uniform_int(1, 30), rng.uniform_int(30, 400));
    }
    const util::Ipv4 ip = random_public_ip(rng);
    const std::size_t n_visitors = 1 + rng.index(3);
    for (const std::size_t h : rng.sample_indices(hosts_.size(), n_visitors)) {
      util::TimePoint t = base + rng.uniform_int(kWorkStart, kWorkEnd - 1);
      const std::size_t n_requests = 1 + rng.index(4);
      for (std::size_t r = 0; r < n_requests; ++r) {
        Request req;
        req.ts = t;
        req.host = h;
        req.domain = name;
        req.ip = ip;
        req.ua = pick_browser_ua(h, rng);
        if (r > 0 || rng.chance(0.7)) {
          req.referer = popular_[rng.zipf(popular_.size(), 1.1) - 1].name;
        }
        req.url = "/" + syllable_word(rng, 2);
        emit(sink, req, rng);
        t += 1 + static_cast<util::TimePoint>(rng.exponential(30.0));
      }
    }
  }
}

void EnterpriseSimulator::emit_automated_tail(DayLogs& sink, util::Day day,
                                              util::Rng& rng) {
  static constexpr double kPeriods[] = {300, 600, 900, 1800, 3600};
  const util::TimePoint base = util::day_start(day);
  for (std::size_t i = 0; i < config_.automated_tail_per_day; ++i) {
    std::string name;
    do {
      name = config_.flavor == Flavor::Dns ? lanl_domain(rng) : benign_domain(rng);
    } while (whois_.is_registered(name));
    // Legitimate services are mostly mature registrations; a minority are
    // young (fresh CDN endpoints), which is what costs the detector its
    // false positives in Fig. 5.
    if (rng.chance(0.9)) {
      whois_.add_aged(name, day, rng.uniform_int(200, 2500),
                      rng.uniform_int(60, 1500));
    } else {
      whois_.add_aged(name, day, rng.uniform_int(5, 60), rng.uniform_int(30, 400));
    }
    const util::Ipv4 ip = random_public_ip(rng);
    const std::size_t n_subs = rng.chance(0.75) ? 1 : 2 + rng.index(2);
    // Most legit services use one of the fleet-wide service UAs (popular in
    // the UA history); a minority run truly niche software.
    const double ua_kind = rng.uniform_double();
    for (const std::size_t h : rng.sample_indices(hosts_.size(), n_subs)) {
      const double period = kPeriods[rng.index(std::size(kPeriods))];
      util::TimePoint t = base + rng.uniform_int(0, 6 * util::kSecondsPerHour);
      const util::TimePoint until =
          base + util::kSecondsPerDay - rng.uniform_int(0, 4 * util::kSecondsPerHour);
      const std::string ua =
          ua_kind < 0.7 ? service_uas_[rng.index(service_uas_.size())]
                        : (ua_kind < 0.85 ? pick_browser_ua(h, rng)
                                          : rare_ua(rng));
      while (t < until) {
        Request req;
        req.ts = t;
        req.host = h;
        req.domain = name;
        req.ip = ip;
        req.ua = ua;
        req.url = "/ping";
        emit(sink, req, rng);
        t += static_cast<util::TimePoint>(period + rng.normal(0.0, 1.5));
      }
    }
  }
}

void EnterpriseSimulator::emit_grayware(DayLogs& sink, util::Day day,
                                        util::Rng& rng) {
  static constexpr double kPeriods[] = {600, 1200, 1800, 3600};
  const util::TimePoint base = util::day_start(day);
  for (std::size_t i = 0; i < config_.grayware_per_day; ++i) {
    std::string name;
    do {
      name = config_.flavor == Flavor::Dns ? lanl_domain(rng) : benign_domain(rng);
    } while (whois_.is_registered(name));
    // Grayware sits between C&C and benign: somewhat young registrations,
    // a mix of UA behaviours, and only half of it truly periodic — adware
    // check-ins often piggyback on browsing sessions.
    whois_.add_aged(name, day, rng.uniform_int(20, 400), rng.uniform_int(30, 365));
    truth_.set_label(name, TruthLabel::Grayware);
    const util::Ipv4 ip = random_public_ip(rng);
    const bool beacons = rng.chance(0.5);
    const std::size_t n_subs = 1 + rng.index(4);
    for (const std::size_t h : rng.sample_indices(hosts_.size(), n_subs)) {
      const double ua_kind = rng.uniform_double();
      const std::string ua = ua_kind < 0.4
                                 ? (hosts_[h].niche_ua.empty()
                                        ? rare_ua(rng)
                                        : hosts_[h].niche_ua)
                                 : (ua_kind < 0.5 ? std::string()
                                                  : pick_browser_ua(h, rng));
      if (beacons) {
        const double period = kPeriods[rng.index(std::size(kPeriods))];
        util::TimePoint t = base + rng.uniform_int(kWorkStart, kWorkEnd - 1);
        const util::TimePoint until = base + util::kSecondsPerDay -
                                      rng.uniform_int(0, 6 * util::kSecondsPerHour);
        while (t < until) {
          Request req;
          req.ts = t;
          req.host = h;
          req.domain = name;
          req.ip = ip;
          req.ua = ua;
          req.referer = rng.chance(0.35) ? popular_[rng.index(popular_.size())].name
                                         : std::string();
          req.url = "/track?u=" + std::to_string(rng.uniform(100000));
          emit(sink, req, rng);
          t += static_cast<util::TimePoint>(period + rng.normal(0.0, 2.5));
        }
      } else {
        util::TimePoint t = base + rng.uniform_int(kWorkStart, kWorkEnd - 1);
        const std::size_t n_requests = 2 + rng.index(5);
        for (std::size_t r = 0; r < n_requests; ++r) {
          Request req;
          req.ts = t;
          req.host = h;
          req.domain = name;
          req.ip = ip;
          req.ua = ua;
          req.url = "/offer";
          emit(sink, req, rng);
          t += 1 + static_cast<util::TimePoint>(rng.exponential(120.0));
        }
      }
    }
  }
}

void EnterpriseSimulator::emit_internal(DayLogs& sink, util::Day day,
                                        util::Rng& rng) {
  if (config_.flavor != Flavor::Dns) return;
  const util::TimePoint base = util::day_start(day);
  // Workstation queries for internal resources (filtered by reduction).
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    const std::size_t n = 2 + rng.index(4);
    for (std::size_t i = 0; i < n; ++i) {
      logs::DnsRecord rec;
      rec.ts = base + rng.uniform_int(0, util::kSecondsPerDay - 1);
      rec.src = hosts_[h].name;
      rec.domain = internal_domains_[rng.index(internal_domains_.size())];
      rec.type = logs::DnsType::A;
      rec.response_ip = util::Ipv4::from_octets(
          10, 10, static_cast<std::uint32_t>(rng.uniform(256)),
          static_cast<std::uint32_t>(1 + rng.uniform(254)));
      sink.dns.push_back(std::move(rec));
    }
  }
  // Internal servers resolve their own set of destinations (mail relays,
  // mirrors, telemetry); the server filter strips these (Fig. 2).
  for (const std::string& server : server_names_) {
    const std::size_t n_tail = config_.server_tail_per_day / server_names_.size();
    for (std::size_t i = 0; i < n_tail; ++i) {
      std::string name;
      do {
        name = config_.flavor == Flavor::Dns ? lanl_domain(rng)
                                             : benign_domain(rng);
      } while (whois_.is_registered(name));
      whois_.add_aged(name, day, rng.uniform_int(100, 4000),
                      rng.uniform_int(100, 2000));
      logs::DnsRecord rec;
      rec.ts = base + rng.uniform_int(0, util::kSecondsPerDay - 1);
      rec.src = server;
      rec.domain = name;
      rec.type = logs::DnsType::A;
      rec.response_ip = random_public_ip(rng);
      sink.dns.push_back(std::move(rec));
    }
    // Servers also query popular destinations heavily.
    const std::size_t n_popular_queries = 40 + rng.index(40);
    for (std::size_t i = 0; i < n_popular_queries; ++i) {
      const PopularDomain& dom = popular_[rng.zipf(popular_.size(), 1.1) - 1];
      logs::DnsRecord rec;
      rec.ts = base + rng.uniform_int(0, util::kSecondsPerDay - 1);
      rec.src = server;
      rec.domain = dom.name;
      rec.type = logs::DnsType::A;
      rec.response_ip = dom.ip;
      sink.dns.push_back(std::move(rec));
    }
  }
}

void EnterpriseSimulator::emit_beacons(DayLogs& sink, const CampaignState& campaign,
                                       const CampaignDomain& cc, std::size_t victim,
                                       util::TimePoint from, util::TimePoint to,
                                       util::Rng& rng) {
  const CampaignSpec& spec = campaign.spec;
  util::TimePoint t = from;
  while (t < to) {
    if (!rng.chance(spec.outlier_prob)) {
      Request req;
      req.ts = t;
      req.host = victim;
      req.domain = cc.name;
      req.ip = cc.ip;
      req.ua = campaign.malware_ua;  // "" when the backdoor sends no UA
      req.url = campaign_url(spec.name_style, rng);
      emit(sink, req, rng);
    }
    t += static_cast<util::TimePoint>(spec.cc_period_seconds +
                                      rng.normal(0.0, spec.jitter_seconds));
  }
}

void EnterpriseSimulator::emit_campaigns(DayLogs& sink, util::Day day,
                                         util::Rng& rng) {
  const util::TimePoint base = util::day_start(day);
  for (const CampaignState& campaign : campaigns_) {
    const CampaignSpec& spec = campaign.spec;
    if (day < spec.start_day || day >= spec.start_day + spec.duration_days) {
      continue;
    }
    util::Rng crng = rng.fork(0xcc000000ULL + static_cast<std::uint64_t>(spec.id));
    std::vector<const CampaignDomain*> delivery;
    std::vector<const CampaignDomain*> ccs;
    std::vector<const CampaignDomain*> second;
    for (const CampaignDomain& dom : campaign.domains) {
      switch (dom.role) {
        case CampaignDomain::Role::Delivery: delivery.push_back(&dom); break;
        case CampaignDomain::Role::CandC: ccs.push_back(&dom); break;
        case CampaignDomain::Role::SecondStage: second.push_back(&dom); break;
      }
    }
    for (const std::size_t victim : campaign.victims) {
      if (day == spec.start_day) {
        // Delivery chain: the victim hits the attacker domains within a
        // short window (Fig. 3: most malicious-pair gaps are << benign).
        util::TimePoint t =
            base + crng.uniform_int(9 * util::kSecondsPerHour,
                                    16 * util::kSecondsPerHour);
        std::string prev;
        for (const CampaignDomain* dom : delivery) {
          Request req;
          req.ts = t;
          req.host = victim;
          req.domain = dom->name;
          req.ip = dom->ip;
          req.ua = pick_browser_ua(victim, crng);  // user-driven stage
          if (!prev.empty() && crng.chance(0.5)) req.referer = prev;
          req.url = "/" + syllable_word(crng, 2) + ".html";
          emit(sink, req, crng);
          prev = dom->name;
          t += crng.uniform_int(2, 120);
        }
        // Foothold established; beaconing starts shortly after.
        const util::TimePoint start = t + crng.uniform_int(60, 600);
        for (const CampaignDomain* cc : ccs) {
          emit_beacons(sink, campaign, *cc, victim, start,
                       base + util::kSecondsPerDay, crng);
        }
      } else {
        for (const CampaignDomain* cc : ccs) {
          const util::TimePoint start =
              base + crng.uniform_int(
                         0, static_cast<util::TimePoint>(spec.cc_period_seconds) + 1);
          emit_beacons(sink, campaign, *cc, victim, start,
                       base + util::kSecondsPerDay, crng);
        }
        // Occasional second-stage payload pulls, close in time to a beacon.
        if (!second.empty() && crng.chance(0.3)) {
          const CampaignDomain* dom = second[crng.index(second.size())];
          const util::TimePoint t =
              base + crng.uniform_int(kWorkStart, kWorkEnd - 1);
          Request req;
          req.ts = t;
          req.host = victim;
          req.domain = dom->name;
          req.ip = dom->ip;
          req.ua = campaign.malware_ua;
          req.url = "/stage2.bin";
          emit(sink, req, crng);
          // And a paired C&C check-in moments later (timing correlation).
          Request checkin;
          checkin.ts = t + crng.uniform_int(5, 60);
          checkin.host = victim;
          checkin.domain = ccs.front()->name;
          checkin.ip = ccs.front()->ip;
          checkin.ua = campaign.malware_ua;
          checkin.url = campaign_url(spec.name_style, crng);
          emit(sink, checkin, crng);
        }
      }
    }
  }
}

DayLogs EnterpriseSimulator::simulate_day(util::Day day) {
  DayLogs out;
  util::Rng rng = world_rng_.fork(0xdadULL * 0x10000ULL +
                                  static_cast<std::uint64_t>(day - config_.day0));
  if (config_.flavor == Flavor::Proxy) assign_dhcp(day);
  emit_browsing(out, day, rng);
  emit_tail(out, day, rng);
  emit_automated_tail(out, day, rng);
  if (config_.flavor == Flavor::Proxy) emit_grayware(out, day, rng);
  emit_internal(out, day, rng);
  emit_campaigns(out, day, rng);
  const auto by_ts = [](const auto& a, const auto& b) { return a.ts < b.ts; };
  std::stable_sort(out.dns.begin(), out.dns.end(), by_ts);
  std::stable_sort(out.proxy.begin(), out.proxy.end(), by_ts);
  return out;
}

logs::DnsReductionConfig EnterpriseSimulator::dns_reduction_config() const {
  logs::DnsReductionConfig cfg;
  cfg.internal_suffixes.push_back(config_.internal_suffix);
  cfg.internal_servers.insert(server_names_.begin(), server_names_.end());
  cfg.fold_level = logs::FoldLevel::ThirdLevel;
  return cfg;
}

logs::ProxyReductionConfig EnterpriseSimulator::proxy_reduction_config() const {
  logs::ProxyReductionConfig cfg;
  cfg.collector_utc_offsets = collector_offsets_;
  cfg.fold_level = logs::FoldLevel::SecondLevel;
  return cfg;
}

std::vector<logs::ConnEvent> EnterpriseSimulator::reduced_day(
    util::Day day, logs::DnsReductionStats* dns_stats,
    logs::ProxyReductionStats* proxy_stats) {
  const DayLogs raw = simulate_day(day);
  if (config_.flavor == Flavor::Dns) {
    return logs::reduce_dns(raw.dns, dns_reduction_config(), dns_stats);
  }
  return logs::reduce_proxy(raw.proxy, dhcp_, proxy_reduction_config(),
                            proxy_stats);
}

}  // namespace eid::sim
