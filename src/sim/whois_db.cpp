#include "sim/whois_db.h"

namespace eid::sim {

void WhoisDb::add(const std::string& domain, util::Day registered,
                  util::Day expires) {
  records_[domain] = features::WhoisInfo{registered, expires};
}

bool WhoisDb::unparseable(const std::string& domain) const {
  // FNV-1a + splitmix finalizer (see IntelOracle::unit_hash for rationale).
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed_;
  for (const char c : domain) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  const double u =
      static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53;
  return u < unparseable_fraction_;
}

std::optional<features::WhoisInfo> WhoisDb::lookup(
    const std::string& domain) const {
  auto it = records_.find(domain);
  if (it == records_.end()) return std::nullopt;
  if (unparseable(domain)) return std::nullopt;
  return it->second;
}

}  // namespace eid::sim
