// Deterministic name generation for the synthetic enterprise world:
// pronounceable benign domains, DGA-style attack domains (both the short
// .info 4-5 char style and the 20-char hex style the paper reports in
// §VI-C/§VI-D), hostnames and user-agent strings.
#pragma once

#include <string>

#include "util/rng.h"

namespace eid::sim {

/// Pronounceable lowercase word of the given syllable count ("varonu").
std::string syllable_word(util::Rng& rng, std::size_t syllables);

/// Benign-looking registrable domain ("varonu.com", "kelora.net").
std::string benign_domain(util::Rng& rng);

/// Anonymized LANL-style domain: word plus the ".c3" pseudo-TLD used for
/// flavor ("rainbow.c3").
std::string lanl_domain(util::Rng& rng);

/// Short DGA domain: 4-5 random consonant-heavy chars under .info
/// ("mgwg.info"), matching the paper's first DGA cluster.
std::string short_dga_domain(util::Rng& rng);

/// Long DGA domain: 20 hex chars under .info
/// ("f0371288e0a20a541328.info"), matching the second DGA cluster.
std::string long_dga_domain(util::Rng& rng);

/// Russian-zone style C&C name ("usteeptyshehoaboochu.ru").
std::string ru_cc_domain(util::Rng& rng);

/// Workstation hostname ("ws-01234.corp").
std::string workstation_name(std::size_t index);

/// Anonymized-IP style host identifier used in the LANL flavor
/// ("74.92.144.170"-like, deterministic per index).
std::string lanl_host_name(util::Rng& rng);

/// Browser-like common UA string, parameterized for variety.
std::string browser_ua(util::Rng& rng);

/// Rare / niche software UA string ("UpdaterClient/3.41 (build 7c2f)").
std::string rare_ua(util::Rng& rng);

}  // namespace eid::sim
