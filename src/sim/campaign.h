// Attack campaign model (§II-A): delivery -> foothold -> C&C.
//
// On the start day each victim walks a short delivery chain (several
// attacker domains visited within seconds to minutes — the redirection
// pattern of Fig. 3), installs the backdoor, and begins beaconing to the
// C&C domain at a fixed period with small jitter and occasional outliers
// (the randomization the dynamic histogram must absorb). On later days the
// backdoor keeps beaconing and occasionally pulls second-stage payloads
// from additional campaign domains. All campaign domains are recently
// registered (or deliberately unregistered DGA names) and co-located in a
// small number of IP subnets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace eid::sim {

/// Naming style of campaign domains.
enum class CampaignNameStyle {
  Benign,    ///< pronounceable names (watering-hole style)
  ShortDga,  ///< 4-5 char .info (paper §VI-C cluster)
  LongDga,   ///< 20 hex char .info (paper §VI-D cluster)
  RuCc,      ///< long .ru C&C names (paper Fig. 7)
  Lanl,      ///< anonymized .c3 names (LANL flavor)
};

struct CampaignSpec {
  int id = 0;
  util::Day start_day = 0;
  int duration_days = 1;
  std::size_t n_victims = 1;
  std::size_t delivery_chain = 3;  ///< delivery-stage domains
  std::size_t n_cc = 1;            ///< C&C domains
  std::size_t second_stage = 1;    ///< later-day payload domains
  double cc_period_seconds = 600.0;
  double jitter_seconds = 4.0;     ///< stddev of beacon jitter
  double outlier_prob = 0.01;      ///< probability a beacon slot is skipped
  CampaignNameStyle name_style = CampaignNameStyle::Benign;
  bool malware_empty_ua = false;   ///< backdoor sends no UA (else a rare UA)
  double registered_fraction = 1.0;  ///< DGA campaigns register only a part
  /// When true, some domains are registered only AFTER the campaign starts
  /// (the paper observed DGA domains detected before registration, §VI-D).
  bool late_registration = false;
};

/// A schedule of enterprise-style campaigns over [day0, day0 + n_days):
/// every few days a new campaign starts, with parameters drawn from
/// realistic ranges (periods of minutes to hours, 1-3 victims, mixed
/// naming styles). Deterministic in `rng`.
std::vector<CampaignSpec> generate_campaign_schedule(util::Rng& rng,
                                                     util::Day day0,
                                                     int n_days,
                                                     double campaigns_per_week,
                                                     int first_id = 0);

}  // namespace eid::sim
