#include "sim/netflow_view.h"

#include <unordered_map>
#include <unordered_set>

namespace eid::sim {

NetflowDay to_netflow(const DayLogs& proxy_day, const logs::DhcpTable& leases,
                      const logs::ProxyReductionConfig& reduction) {
  NetflowDay out;
  out.flows.reserve(proxy_day.proxy.size());
  std::unordered_map<std::string, int> offsets(
      reduction.collector_utc_offsets.begin(),
      reduction.collector_utc_offsets.end());
  // One DNS lookup per (host, domain) first contact.
  std::unordered_set<std::string> looked_up;

  for (const logs::ProxyRecord& rec : proxy_day.proxy) {
    if (rec.domain.empty() || !rec.dest_ip) continue;
    util::TimePoint ts = rec.ts;
    if (auto it = offsets.find(rec.collector); it != offsets.end()) {
      ts -= it->second;  // flows are exported in UTC
    }
    std::string host = rec.hostname;
    if (host.empty()) {
      if (auto resolved = leases.resolve(rec.src_ip, ts)) {
        host = *resolved;
      } else {
        host = rec.src_ip;
      }
    }
    if (looked_up.insert(host + "|" + rec.domain).second) {
      logs::DnsRecord lookup;
      lookup.ts = ts - 1;  // resolution precedes the connection
      lookup.src = host;
      lookup.domain = rec.domain;
      lookup.type = logs::DnsType::A;
      lookup.response_ip = rec.dest_ip;
      out.dns.push_back(std::move(lookup));
    }
    logs::FlowRecord flow;
    flow.ts = ts;
    flow.src = std::move(host);
    flow.dst_ip = *rec.dest_ip;
    flow.dst_port = rec.method == logs::HttpMethod::Connect ? 443 : 80;
    flow.protocol = 6;
    flow.bytes = 512 + rec.url_path.size() * 7;  // deterministic size proxy
    flow.packets = 6;
    out.flows.push_back(std::move(flow));
  }
  return out;
}

}  // namespace eid::sim
