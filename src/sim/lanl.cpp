#include "sim/lanl.h"

#include <array>

namespace eid::sim {
namespace {

struct CaseDay {
  int case_id;
  int month_day;
};

// Table I of the paper.
constexpr std::array<CaseDay, 20> kCaseDays = {{
    {1, 2},  {1, 3},  {1, 4},  {1, 9},  {1, 10},
    {2, 5},  {2, 6},  {2, 7},  {2, 8},  {2, 11}, {2, 12}, {2, 13},
    {3, 14}, {3, 15}, {3, 17}, {3, 18}, {3, 19}, {3, 20}, {3, 21},
    {4, 22},
}};

constexpr std::array<int, 10> kTrainingDays = {2, 3, 4, 5, 7, 12, 14, 15, 17, 18};

}  // namespace

bool LanlScenario::is_training_day(util::Day day) {
  const util::CivilDate civil = util::civil_from_days(day);
  if (civil.year != 2013 || civil.month != 3) return false;
  for (const int d : kTrainingDays) {
    if (civil.day == d) return true;
  }
  return false;
}

LanlScenario::LanlScenario(LanlConfig config) {
  SimConfig sim_config;
  sim_config.flavor = Flavor::Dns;
  sim_config.seed = config.seed;
  sim_config.day0 = bootstrap_begin();
  sim_config.n_hosts = config.n_hosts;
  sim_config.n_servers = config.n_servers;
  sim_config.n_popular = config.n_popular;
  sim_config.tail_per_day = config.tail_per_day;
  sim_config.automated_tail_per_day = config.automated_tail_per_day;
  sim_config.server_tail_per_day = config.server_tail_per_day;
  sim_config.internal_suffix = "lanl.internal";

  util::Rng rng(config.seed ^ 0x1a41);
  std::vector<CampaignSpec> specs;
  specs.reserve(kCaseDays.size());
  static constexpr double kPeriods[] = {300, 600, 900, 1200};
  for (std::size_t i = 0; i < kCaseDays.size(); ++i) {
    CampaignSpec spec;
    spec.id = static_cast<int>(i);
    spec.start_day = util::make_day(2013, 3, kCaseDays[i].month_day);
    spec.duration_days = 1;  // each simulation is a first-day infection
    spec.name_style = CampaignNameStyle::Lanl;
    spec.delivery_chain = 2 + rng.index(2);
    spec.n_cc = 1;
    spec.second_stage = 0;
    // LANL simulations always compromise multiple hosts (§V-B), which the
    // challenge-specific C&C heuristic relies on.
    spec.n_victims = kCaseDays[i].case_id == 2 ? 3 + rng.index(2) : 2 + rng.index(2);
    spec.cc_period_seconds = kPeriods[rng.index(std::size(kPeriods))];
    // "Small variation between connections" (§II-A): about a second of
    // jitter, comfortably inside the W = 10 s dynamic bins.
    spec.jitter_seconds = rng.uniform_double(0.3, 1.5);
    spec.outlier_prob = rng.uniform_double(0.0, 0.02);
    spec.malware_empty_ua = true;  // DNS logs carry no UA anyway
    specs.push_back(spec);
  }

  sim_ = std::make_unique<EnterpriseSimulator>(sim_config, specs);

  for (std::size_t i = 0; i < kCaseDays.size(); ++i) {
    const CampaignTruth* truth = sim_->truth().campaign(static_cast<int>(i));
    LanlCase challenge_case;
    challenge_case.case_id = kCaseDays[i].case_id;
    challenge_case.campaign_id = static_cast<int>(i);
    challenge_case.day = util::make_day(2013, 3, kCaseDays[i].month_day);
    challenge_case.answer_domains = truth->domains;
    challenge_case.victim_hosts = truth->victims;
    challenge_case.training = is_training_day(challenge_case.day);
    switch (challenge_case.case_id) {
      case 1:
      case 3:
        challenge_case.hint_hosts = {truth->victims.front()};
        break;
      case 2: {
        // Three or four hint hosts per Table I.
        const std::size_t hints =
            std::min<std::size_t>(truth->victims.size(), 3 + (i % 2));
        challenge_case.hint_hosts.assign(truth->victims.begin(),
                                         truth->victims.begin() + hints);
        break;
      }
      case 4:
        break;  // no hints
    }
    cases_.push_back(std::move(challenge_case));
  }
}

}  // namespace eid::sim
