// The LANL challenge scenario (§V, Table I): anonymized DNS flavor, a
// February 2013 bootstrap month, and 20 single-day APT infection campaigns
// simulated across March 2013, split over the challenge's four cases:
//   case 1 - one hint host, find the contacted malicious domains
//   case 2 - several hint hosts
//   case 3 - one hint host, also find the other compromised hosts
//   case 4 - no hints at all (C&C detection must seed belief propagation)
// Campaign days and the training/testing split follow §V-B of the paper.
#pragma once

#include <memory>
#include <vector>

#include "sim/enterprise.h"

namespace eid::sim {

struct LanlCase {
  int case_id = 1;  ///< 1..4, per Table I
  int campaign_id = 0;
  util::Day day = 0;
  std::vector<std::string> hint_hosts;       ///< empty for case 4
  std::vector<std::string> answer_domains;   ///< the challenge answers
  std::vector<std::string> victim_hosts;     ///< full ground truth
  bool training = false;                     ///< §V-B parameter-selection split
};

struct LanlConfig {
  std::uint64_t seed = 7;
  std::size_t n_hosts = 1000;
  std::size_t n_servers = 12;
  std::size_t n_popular = 400;
  std::size_t tail_per_day = 300;
  std::size_t automated_tail_per_day = 10;
  std::size_t server_tail_per_day = 150;
};

class LanlScenario {
 public:
  explicit LanlScenario(LanlConfig config = {});

  EnterpriseSimulator& simulator() { return *sim_; }
  const EnterpriseSimulator& simulator() const { return *sim_; }

  const std::vector<LanlCase>& cases() const { return cases_; }

  /// Bootstrap month: February 2013.
  util::Day bootstrap_begin() const { return util::make_day(2013, 2, 1); }
  util::Day bootstrap_end() const { return util::make_day(2013, 2, 28); }

  /// Challenge month: March 2013.
  util::Day challenge_begin() const { return util::make_day(2013, 3, 1); }
  util::Day challenge_end() const { return util::make_day(2013, 3, 22); }

  /// The paper's training days (3/2 3/3 3/4 3/5 3/7 3/12 3/14 3/15 3/17 3/18).
  static bool is_training_day(util::Day day);

 private:
  std::vector<LanlCase> cases_;
  std::unique_ptr<EnterpriseSimulator> sim_;
};

}  // namespace eid::sim
