#include "sim/names.h"

#include <array>
#include <cstdio>

namespace eid::sim {
namespace {

constexpr std::array<const char*, 16> kConsonants = {
    "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "sh"};
constexpr std::array<const char*, 6> kVowels = {"a", "e", "i", "o", "u", "oo"};
constexpr std::array<const char*, 5> kTlds = {".com", ".net", ".org", ".io", ".co"};

}  // namespace

std::string syllable_word(util::Rng& rng, std::size_t syllables) {
  std::string out;
  for (std::size_t i = 0; i < syllables; ++i) {
    out += kConsonants[rng.index(kConsonants.size())];
    out += kVowels[rng.index(kVowels.size())];
  }
  return out;
}

std::string benign_domain(util::Rng& rng) {
  std::string name = syllable_word(rng, 2 + rng.index(2));
  if (rng.chance(0.25)) name += syllable_word(rng, 1);
  return name + kTlds[rng.index(kTlds.size())];
}

std::string lanl_domain(util::Rng& rng) {
  return syllable_word(rng, 2 + rng.index(3)) + ".c3";
}

std::string short_dga_domain(util::Rng& rng) {
  static constexpr char kChars[] = "bcdfghjklmnpqrstvwxz";
  std::string name;
  const std::size_t len = 4 + rng.index(2);
  for (std::size_t i = 0; i < len; ++i) {
    name += kChars[rng.index(sizeof(kChars) - 1)];
  }
  return name + ".info";
}

std::string long_dga_domain(util::Rng& rng) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string name;
  for (std::size_t i = 0; i < 20; ++i) name += kHex[rng.index(16)];
  return name + ".info";
}

std::string ru_cc_domain(util::Rng& rng) {
  return syllable_word(rng, 5 + rng.index(3)) + ".ru";
}

std::string workstation_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ws-%05zu.corp", index);
  return buf;
}

std::string lanl_host_name(util::Rng& rng) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%llu.%llu.%llu.%llu",
                static_cast<unsigned long long>(10 + rng.uniform(240)),
                static_cast<unsigned long long>(rng.uniform(256)),
                static_cast<unsigned long long>(rng.uniform(256)),
                static_cast<unsigned long long>(1 + rng.uniform(254)));
  return buf;
}

std::string browser_ua(util::Rng& rng) {
  static constexpr std::array<const char*, 4> kOses = {
      "Windows NT 6.1", "Windows NT 6.3", "Macintosh; Intel Mac OS X 10_9",
      "X11; Linux x86_64"};
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Mozilla/5.0 (%s) AppleWebKit/537.%llu (KHTML, like Gecko) "
                "Chrome/%llu.0.%llu.%llu Safari/537.%llu",
                kOses[rng.index(kOses.size())],
                static_cast<unsigned long long>(30 + rng.uniform(10)),
                static_cast<unsigned long long>(30 + rng.uniform(10)),
                static_cast<unsigned long long>(1000 + rng.uniform(1000)),
                static_cast<unsigned long long>(rng.uniform(200)),
                static_cast<unsigned long long>(30 + rng.uniform(10)));
  return buf;
}

std::string rare_ua(util::Rng& rng) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%sClient/%llu.%llu (build %04llx)",
                syllable_word(rng, 2).c_str(),
                static_cast<unsigned long long>(1 + rng.uniform(9)),
                static_cast<unsigned long long>(rng.uniform(100)),
                static_cast<unsigned long long>(rng.uniform(0xffff)));
  return buf;
}

}  // namespace eid::sim
