// The AC enterprise scenario (§VI): web-proxy flavor, January 2014 training
// month, February 2014 operation month, a rolling schedule of attack
// campaigns (mainstream botnets and targeted-style intrusions), grayware,
// and an intelligence oracle standing in for VirusTotal + the SOC IOC list.
#pragma once

#include <memory>

#include "sim/campaign.h"
#include "sim/enterprise.h"
#include "sim/oracle.h"

namespace eid::sim {

struct AcConfig {
  std::uint64_t seed = 11;
  std::size_t n_hosts = 1500;
  std::size_t n_popular = 600;
  std::size_t tail_per_day = 400;
  std::size_t automated_tail_per_day = 12;
  std::size_t grayware_per_day = 4;
  double campaigns_per_week = 6.0;
  IntelOracle::Params oracle{};
};

class AcScenario {
 public:
  explicit AcScenario(AcConfig config = {});

  EnterpriseSimulator& simulator() { return *sim_; }
  const EnterpriseSimulator& simulator() const { return *sim_; }
  const IntelOracle& oracle() const { return *oracle_; }

  /// Training month: January 2014. The paper trains the regressions on two
  /// weeks of labeled data; the runners use [train_begin, train_begin+14).
  util::Day training_begin() const { return util::make_day(2014, 1, 1); }
  util::Day training_end() const { return util::make_day(2014, 1, 31); }

  /// Operation month: February 2014.
  util::Day operation_begin() const { return util::make_day(2014, 2, 1); }
  util::Day operation_end() const { return util::make_day(2014, 2, 28); }

  /// SOC IOC seed domains for the operation month (Fig. 6c used 28 IOCs).
  std::vector<std::string> ioc_seeds() const {
    return oracle_->ioc_list(operation_begin(), operation_end());
  }

 private:
  std::unique_ptr<EnterpriseSimulator> sim_;
  std::unique_ptr<IntelOracle> oracle_;
};

}  // namespace eid::sim
