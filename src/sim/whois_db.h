// Synthetic WHOIS registry (substitute for live WHOIS queries).
// Every registered domain has a registration day and an expiry day; a
// configurable fraction of records is "unparseable" (lookup fails), which
// exercises the paper's average-value fallback (§VI-C). Unregistered
// domains — e.g. most of a DGA cluster — simply have no record.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "features/whois_source.h"
#include "util/rng.h"

namespace eid::sim {

class WhoisDb final : public features::WhoisSource {
 public:
  explicit WhoisDb(double unparseable_fraction = 0.05,
                   std::uint64_t seed = 0x0441)
      : unparseable_fraction_(unparseable_fraction), seed_(seed) {}

  /// Register (or re-register) a domain.
  void add(const std::string& domain, util::Day registered, util::Day expires);

  /// Convenience: register with an age (days before `today`) and validity
  /// (days after `today`).
  void add_aged(const std::string& domain, util::Day today, std::int64_t age_days,
                std::int64_t validity_days) {
    add(domain, today - age_days, today + validity_days);
  }

  bool is_registered(const std::string& domain) const {
    return records_.contains(domain);
  }

  /// Lookup with deterministic per-domain unparseable failures.
  std::optional<features::WhoisInfo> lookup(const std::string& domain) const override;

  std::size_t size() const { return records_.size(); }

 private:
  bool unparseable(const std::string& domain) const;

  std::unordered_map<std::string, features::WhoisInfo> records_;
  double unparseable_fraction_;
  std::uint64_t seed_;
};

}  // namespace eid::sim
