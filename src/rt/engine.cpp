#include "rt/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

#include "graph/day_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eid::rt {

namespace {

/// Real-time loop health on the process registry: how long a tick's
/// re-score takes (wall), how far behind detection runs in sim time
/// (event -> emission), and how much the sliding window is holding.
struct RtMetrics {
  obs::Counter& ticks = obs::metrics().counter("eid_rt_ticks_closed_total");
  obs::Counter& evaluations = obs::metrics().counter("eid_rt_evaluations_total");
  obs::Counter& days_closed = obs::metrics().counter("eid_rt_days_closed_total");
  obs::Counter& provisional =
      obs::metrics().counter("eid_rt_provisional_emissions_total");
  obs::Counter& finalized =
      obs::metrics().counter("eid_rt_finalized_emissions_total");
  obs::Gauge& backlog = obs::metrics().gauge("eid_rt_poll_backlog_events");
  obs::Gauge& window_buckets = obs::metrics().gauge("eid_rt_window_buckets");
  obs::Gauge& last_tick = obs::metrics().gauge("eid_rt_last_tick_seconds");
  // Incremental window-merge cache health (rt/window.h CacheStats).
  obs::Counter& buckets_sealed =
      obs::metrics().counter("eid_rt_buckets_sealed_total");
  obs::Counter& partial_absorbs =
      obs::metrics().counter("eid_rt_partial_absorbs_total");
  obs::Counter& merge_extends =
      obs::metrics().counter("eid_rt_window_merge_extends_total");
  obs::Counter& merge_rebuilds =
      obs::metrics().counter("eid_rt_window_merge_rebuilds_total");
  obs::Gauge& cached_events =
      obs::metrics().gauge("eid_rt_cached_partial_events");
  obs::Histogram& tick_seconds = obs::metrics().histogram(
      "eid_rt_tick_seconds", obs::duration_buckets());
  obs::Histogram& emission_latency = obs::metrics().histogram(
      "eid_rt_emission_latency_seconds", obs::latency_buckets());
};

RtMetrics& rt_metrics() {
  static RtMetrics metrics;
  return metrics;
}

// Earliest first-contact timestamp of the named domains in the analyzed
// graph — the event time of the evidence behind an emission. 0 when none
// of the names appear (empty evidence).
util::TimePoint earliest_contact(const core::DayAnalysis& analysis,
                                 std::span<const std::string> names) {
  util::TimePoint earliest = 0;
  for (const auto& name : names) {
    const graph::DomainId domain = analysis.graph.find_domain(name);
    if (domain == graph::kNoId) continue;
    for (const graph::HostId host : analysis.graph.domain_hosts(domain)) {
      const auto contact = analysis.graph.first_contact(host, domain);
      if (!contact) continue;
      if (earliest == 0 || *contact < earliest) earliest = *contact;
    }
  }
  return earliest;
}

}  // namespace

LatencySummary summarize_latency(std::span<const IncidentEmission> emissions,
                                 bool provisional_only) {
  std::vector<double> latencies;
  latencies.reserve(emissions.size());
  for (const auto& emission : emissions) {
    if (provisional_only && !emission.provisional) continue;
    latencies.push_back(static_cast<double>(emission.latency_seconds));
  }
  LatencySummary summary;
  summary.count = latencies.size();
  if (latencies.empty()) return summary;
  std::sort(latencies.begin(), latencies.end());
  const auto rank = [&](double q) {
    const double n = static_cast<double>(latencies.size());
    const auto idx = static_cast<std::size_t>(
        std::max(0.0, std::ceil(q * n) - 1.0));
    return latencies[std::min(idx, latencies.size() - 1)];
  };
  summary.p50_seconds = rank(0.50);
  summary.p99_seconds = rank(0.99);
  summary.max_seconds = latencies.back();
  return summary;
}

ContinuousEngine::ContinuousEngine(api::Detector& detector, SimClock& clock,
                                   EngineConfig config)
    : detector_(detector),
      clock_(clock),
      config_(std::move(config)),
      window_(config_.window) {
  assert(config_.window.valid());
  if (config_.window.incremental) {
    // Pin the partial shard count now: partials absorb into each other, so
    // they must all share one geometry even if set_parallelism retunes the
    // pipeline mid-run (finalized bytes are shard-count-invariant, so a
    // pinned count is a pure performance choice, never a drift).
    core::Pipeline& pipeline = detector_.pipeline();
    const std::size_t shards =
        std::max<std::size_t>(pipeline.config().parallelism.shards, 1);
    window_.set_partial_factory(
        [&pipeline, shards] { return pipeline.make_ingest_graph(shards); });
  }
}

ContinuousEngine::~ContinuousEngine() {
  if (!pending_close_) return;
  try {
    // The day was closed; its history commit must land even on abandon.
    commit_close();
  } catch (...) {
    // A failed close cannot propagate from a destructor; the report it
    // would have produced is dropped.
  }
}

std::size_t ContinuousEngine::poll(api::EventSource& source) {
  // A mid-poll day boundary submits an async close that would overlap the
  // remaining pulls of this loop — only allowed when the source tolerates
  // that (see EventSource::concurrent_pull_safe).
  pull_overlap_safe_ = source.concurrent_pull_safe();
  std::size_t consumed = 0;
  while (auto chunk = source.next_chunk()) {
    ++stats_.chunks;
    // Chunk day tags are non-decreasing and contiguous per day (the
    // EventSource contract), so a tag change is the day boundary — the
    // same trigger Detector::ingest uses.
    if (open_day_ && *open_day_ != chunk->day) close_day();
    if (!open_day_) open_day_ = chunk->day;
    for (const logs::ConnEvent& event : chunk->events) {
      clock_.observe(event.ts);
      roll_to(config_.window.tick_of(clock_.now()));
      window_.append(event, current_tick_, *open_day_);
      dirty_ = true;
      ++stats_.events;
      ++consumed;
    }
    stats_.buffered_events = window_.buffered_events();
    stats_.peak_buffered_events =
        std::max(stats_.peak_buffered_events, stats_.buffered_events);
  }
  RtMetrics& metrics = rt_metrics();
  metrics.backlog.set(static_cast<double>(window_.buffered_events()));
  metrics.window_buckets.set(static_cast<double>(window_.bucket_count()));
  return consumed;
}

void ContinuousEngine::advance() {
  roll_to(config_.window.tick_of(clock_.now()));
}

void ContinuousEngine::finish() {
  if (open_day_) close_day();
  commit_close();
}

ContinuousReport ContinuousEngine::run(api::EventSource& source) {
  poll(source);
  finish();
  return take_report();
}

ContinuousReport ContinuousEngine::take_report() {
  commit_close();
  stats_.buffered_events = window_.buffered_events();
  stats_.cached_partial_events = window_.cached_events();
  ContinuousReport report;
  report.days = std::move(day_reports_);
  report.emissions = std::move(emissions_);
  report.stats = stats_;
  report.tick_eval_seconds = std::move(tick_eval_seconds_);
  day_reports_.clear();
  emissions_.clear();
  tick_eval_seconds_.clear();
  return report;
}

void ContinuousEngine::roll_to(std::int64_t tick) {
  if (!have_tick_) {
    have_tick_ = true;
    current_tick_ = tick;
    return;
  }
  // Sim time is monotonic, so ticks only close forward. Each boundary
  // crossed gets its evaluation; after the first one clears the dirty
  // flag, the rest of a long quiet gap is just expiry bookkeeping.
  while (current_tick_ < tick) {
    evaluate_tick(current_tick_);
    ++current_tick_;
  }
}

void ContinuousEngine::evaluate_tick(std::int64_t tick) {
  // Apply any in-flight day close first: its history update must be
  // visible to this evaluation's finish_day, and its finalized emission
  // must precede this tick's provisional one — the sequential order.
  commit_close();
  RtMetrics& metrics = rt_metrics();
  ++stats_.ticks_closed;
  metrics.ticks.add(1);
  stats_.expired_events += window_.expire(tick);
  stats_.buffered_events = window_.buffered_events();
  if (!dirty_) return;  // nothing new since the last evaluation
  if (window_.window_events(tick) == 0) {
    dirty_ = false;
    return;
  }
  ++stats_.evaluations;
  metrics.evaluations.add(1);
  const obs::TraceSpan span("rt_tick_evaluate", "rt");
  // Always timed: the pair of clock reads is negligible next to the
  // evaluation and feeds the report's per-tick cost distribution
  // (tick_eval_seconds); the metrics registry only sees it when enabled.
  const auto tick_start = std::chrono::steady_clock::now();

  // Re-score the sliding window through the exact batch stages, then C&C
  // detection and (optionally) no-hint BP for community expansion. The
  // window's evidence graph comes from one of two bit-identical paths:
  // incremental — merge the cached per-bucket partials (only newly sealed
  // buckets absorb when the window front is unchanged) and snapshot-
  // finalize, O(new events) per tick; rebuild — replay the live buckets'
  // raw events (arrival order) into a DayAccumulator, O(window).
  core::Pipeline& pipeline = detector_.pipeline();
  const util::TimePoint close = config_.window.tick_end(tick);
  const util::Day day = util::day_of(close - 1);
  core::DayAnalysis analysis;
  if (config_.window.incremental) {
    const WindowAccumulator::MergeView view = window_.merge_window(tick);
    assert(view.graph != nullptr);  // window_events(tick) > 0 above
    view.graph->finalize_snapshot_into(snapshot_scratch_,
                                       pipeline.config().parallelism.threads,
                                       view.snapshot_cache);
    analysis = pipeline.finish_day_graph(day, std::move(snapshot_scratch_),
                                         view.events);
    sync_cache_stats();
  } else {
    core::DayAccumulator accumulator = pipeline.begin_day(day);
    window_.for_each_window_chunk(
        tick, [&accumulator](std::span<const logs::ConnEvent> events) {
          accumulator.add_chunk(events);
        });
    analysis = pipeline.finish_day(std::move(accumulator));
  }

  const std::vector<core::ScoredDomain> cc = pipeline.detect_cc(analysis);
  std::vector<std::string> domains;
  domains.reserve(cc.size());
  for (const auto& scored : cc) domains.push_back(scored.name);
  std::vector<std::string> hosts;
  if (config_.provisional_bp && !cc.empty()) {
    const core::BpRunReport bp = pipeline.run_bp_nohint(analysis, cc);
    for (const auto& detected : bp.domains) domains.push_back(detected.name);
    hosts = bp.hosts;
  }
  emit(analysis, domains, hosts, /*provisional=*/true, close, day);
  if (config_.window.incremental) {
    // Reclaim the snapshot's allocations for the next tick (`analysis` is
    // done — nothing below reads it).
    snapshot_scratch_ = std::move(analysis.graph);
  }
  dirty_ = false;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    tick_start)
          .count();
  tick_eval_seconds_.push_back(seconds);
  stats_.buffered_events = window_.buffered_events();
  stats_.cached_partial_events = window_.cached_events();
  if (obs::metrics().enabled()) {
    metrics.tick_seconds.observe(seconds);
    metrics.last_tick.set(seconds);
    metrics.backlog.set(static_cast<double>(window_.buffered_events()));
    metrics.cached_events.set(static_cast<double>(window_.cached_events()));
  }
}

void ContinuousEngine::sync_cache_stats() {
  const WindowAccumulator::CacheStats& cache = window_.cache_stats();
  RtMetrics& metrics = rt_metrics();
  metrics.buckets_sealed.add(cache.buckets_sealed - stats_.buckets_sealed);
  metrics.partial_absorbs.add(cache.partial_absorbs - stats_.partial_absorbs);
  metrics.merge_extends.add(cache.merge_extends - stats_.window_merge_extends);
  metrics.merge_rebuilds.add(cache.merge_rebuilds -
                             stats_.window_merge_rebuilds);
  stats_.buckets_sealed = cache.buckets_sealed;
  stats_.partial_absorbs = cache.partial_absorbs;
  stats_.window_merge_extends = cache.merge_extends;
  stats_.window_merge_rebuilds = cache.merge_rebuilds;
}

void ContinuousEngine::close_day() {
  assert(open_day_);
  commit_close();  // at most one close in flight
  const obs::TraceSpan span("rt_day_close", "rt");
  const util::Day day = *open_day_;
  core::Pipeline& pipeline = detector_.pipeline();

  // Assemble the day's evidence in arrival order — the same event sequence
  // the batch path would consume, so by the chunking-independence contract
  // the report and history update are bit-identical to run_day. The
  // assembly stays synchronous (it reads the window buckets, released just
  // below; the incremental merge owns absorbed copies, so expiry cannot
  // pull state out from under the task); the expensive finalize + report
  // compute may run on the worker pool.
  PendingClose close;
  close.day = day;
  close.analysis = std::make_shared<core::DayAnalysis>();
  close.report = std::make_shared<core::DayReport>();
  std::function<void()> task;
  if (config_.window.incremental) {
    // Merge the day's sealed partials (sealing the tail bucket no
    // evaluation covered yet) instead of re-ingesting the day's events.
    std::size_t day_events = 0;
    auto merged = std::make_shared<graph::DayGraph>(
        window_.merge_day(day, day_events));
    sync_cache_stats();
    task = [&pipeline, seeds = &config_.seeds, merged, day, day_events,
            analysis = close.analysis, report = close.report] {
      *analysis =
          pipeline.finish_day_graph(day, std::move(*merged), day_events);
      *report = pipeline.report_day(*analysis, *seeds);
    };
  } else {
    core::DayAccumulator accumulator = pipeline.begin_day(day);
    window_.for_each_day_chunk(
        day, [&accumulator](std::span<const logs::ConnEvent> events) {
          accumulator.add_chunk(events);
        });
    task = [&pipeline, seeds = &config_.seeds,
            acc = std::make_shared<core::DayAccumulator>(std::move(accumulator)),
            analysis = close.analysis, report = close.report] {
      *analysis = pipeline.finish_day(std::move(*acc));
      *report = pipeline.report_day(*analysis, *seeds);
    };
  }
  util::Executor* executor = pipeline.executor();
  const bool pipelined = executor != nullptr && pull_overlap_safe_ &&
                         pipeline.config().parallelism.pipeline_depth > 1;
  if (pipelined) {
    close.handle = executor->submit(std::move(task));
  } else {
    task();
  }
  pending_close_ = std::move(close);

  window_.close_day(day);
  open_day_.reset();
  // Histories change when the close commits, so the next tick must
  // re-score even if no new events arrive before it closes. "Held" means
  // raw or sealed-partial events — incremental mode releases raw storage.
  dirty_ = window_.buffered_events() + window_.cached_events() > 0;
  // Sequential configurations commit right here — identical observable
  // order to the pre-pipelined engine. Pipelined ones commit at the next
  // join point, overlapped with the next day's ingestion.
  if (!pipelined) commit_close();
}

void ContinuousEngine::commit_close() {
  if (!pending_close_) return;
  const obs::TraceSpan span("rt_day_commit", "rt");
  PendingClose close = std::move(*pending_close_);
  pending_close_.reset();
  close.handle.wait();  // rethrows anything the compute half threw

  core::Pipeline& pipeline = detector_.pipeline();
  const core::DayAnalysis& analysis = *close.analysis;
  core::DayReport& report = *close.report;
  pipeline.update_histories(analysis.graph);
  ++detector_.days_operated_;
  ++stats_.days_closed;
  rt_metrics().days_closed.add(1);

  std::vector<std::string> domains;
  for (const auto& scored : report.cc_domains) domains.push_back(scored.name);
  for (const auto& detected : report.nohint.domains)
    domains.push_back(detected.name);
  for (const auto& detected : report.sochints.domains)
    domains.push_back(detected.name);
  std::set<std::string> host_set(report.nohint.hosts.begin(),
                                 report.nohint.hosts.end());
  host_set.insert(report.sochints.hosts.begin(), report.sochints.hosts.end());
  const std::vector<std::string> hosts(host_set.begin(), host_set.end());
  emit(analysis, domains, hosts, /*provisional=*/false,
       util::day_start(close.day + 1), close.day);

  if (day_sink_) day_sink_(report);
  day_reports_.push_back(std::move(report));
}

void ContinuousEngine::emit(const core::DayAnalysis& analysis,
                            const std::vector<std::string>& domains,
                            const std::vector<std::string>& hosts,
                            bool provisional, util::TimePoint emission_time,
                            util::Day day) {
  if (domains.empty() && hosts.empty()) return;

  std::vector<std::string> fresh;
  for (const auto& name : domains) {
    if (!emitted_domains_.contains(name)) fresh.push_back(name);
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());

  // Provisional evaluations announce only novelty; re-detections of
  // already-emitted domains wait for the authoritative day close, which
  // always refreshes the incident store (campaign recurrence tracking).
  if (provisional && fresh.empty()) return;

  const util::TimePoint event_time =
      earliest_contact(analysis, fresh.empty() ? domains : fresh);
  const bool grew = incidents_.touches(domains, hosts);
  const int incident_id =
      incidents_.ingest_community(day, domains, hosts, event_time);
  emitted_domains_.insert(fresh.begin(), fresh.end());
  if (fresh.empty()) return;  // finalized refresh of a known incident

  IncidentEmission emission;
  emission.incident_id = incident_id;
  emission.provisional = provisional;
  emission.new_incident = !grew;
  emission.day = day;
  emission.event_time = event_time;
  emission.emission_time = emission_time;
  emission.latency_seconds =
      event_time == 0 ? 0 : emission_time - event_time;
  emission.domains = std::move(fresh);
  emission.hosts = hosts;
  RtMetrics& metrics = rt_metrics();
  if (provisional) {
    ++stats_.provisional_emissions;
    metrics.provisional.add(1);
  } else {
    ++stats_.finalized_emissions;
    metrics.finalized.add(1);
  }
  metrics.emission_latency.observe(
      static_cast<double>(emission.latency_seconds));
  if (emission_sink_) emission_sink_(emission);
  emissions_.push_back(std::move(emission));
}

}  // namespace eid::rt

namespace eid::api {

rt::ContinuousReport Detector::run_continuous(EventSource& source,
                                              const rt::EngineConfig& config,
                                              rt::SimClock* clock) {
  rt::ReplayClock replay;
  rt::SimClock& driver = clock ? *clock : static_cast<rt::SimClock&>(replay);
  rt::ContinuousEngine engine(*this, driver, config);
  return engine.run(source);
}

}  // namespace eid::api
