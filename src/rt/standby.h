// Hot-standby failover: a second monitor process that tails the primary's
// delta-checkpoint chain (storage/delta.h) instead of the raw log,
// applying frames as the primary appends them, and taking over the live
// tail when the primary's heartbeat goes stale.
//
// Protocol:
//   * the primary touches "<state>.hb" (heartbeat_path) on every poll
//     loop and appends a delta frame per checkpoint, carrying the tail
//     cursor and the incident store (CheckpointExtras);
//   * the standby polls the chain: complete CRC-clean frames whose base
//     CRC and seq continue its replay are applied through
//     api::Detector::apply_state_delta; a torn tail is an append in
//     progress (wait); a frame that no longer fits (new base CRC, seq
//     reset, shrunk chain) means the primary compacted — reload the new
//     base + chain from scratch;
//   * when heartbeat_age_seconds exceeds the configured staleness, the
//     standby owns the detector state the last frame described: histories
//     and models as of the last day close, the primary's incident store,
//     and the cursor naming the day being tailed. Takeover re-reads that
//     day's log from offset 0 — histories only advance at day close, so
//     the rebuilt day report is bit-identical to the one the
//     uninterrupted primary would have produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "api/detector.h"
#include "core/incidents.h"
#include "storage/delta.h"

namespace eid::rt {

struct StandbyConfig {
  std::filesystem::path state_path;
  /// Heartbeat age (seconds) past which the primary counts as dead.
  double stale_after_seconds = 10.0;
};

struct StandbyStats {
  std::size_t polls = 0;
  std::size_t frames_applied = 0;
  std::size_t full_reloads = 0;  ///< base replaced (compaction) mid-watch
  std::size_t torn_waits = 0;    ///< polls that saw an append in progress
};

/// Replays a primary's checkpoint chain onto a warm Detector.
class StandbyReplica {
 public:
  /// The detector must outlive the replica. It is wholly owned by the
  /// replica until takeover: start()/poll() overwrite its state.
  StandbyReplica(api::Detector& detector, StandbyConfig config);

  /// Load the base checkpoint plus every applicable chain frame. False
  /// (with status) when the base cannot be loaded — e.g. the primary has
  /// not written its first checkpoint yet; poll() keeps retrying.
  bool start(storage::LoadStatus* status = nullptr);

  /// Apply frames appended since the last poll (or start()). Returns how
  /// many landed this call; compaction by the primary triggers a full
  /// reload (counted in stats, not in the return value).
  std::size_t poll(storage::LoadStatus* status = nullptr);

  bool started() const { return started_; }
  std::uint64_t last_seq() const { return next_seq_ - 1; }

  /// Tail cursor from the newest applied frame (where the primary was).
  bool has_cursor() const { return has_cursor_; }
  std::int64_t cursor_day() const { return cursor_day_; }
  std::uint64_t cursor_offset() const { return cursor_offset_; }

  /// Rebuild the primary's incident store for engine adoption at takeover
  /// (ContinuousEngine::restore_incidents). False when no applied frame
  /// carried one.
  bool take_incidents(core::IncidentStore& store) const;

  const StandbyStats& stats() const { return stats_; }

 private:
  bool reload(storage::LoadStatus* status);
  void adopt_report(storage::ChainLoadReport&& report);

  api::Detector& detector_;
  StandbyConfig config_;
  bool started_ = false;
  std::uint32_t base_crc_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t applied_bytes_ = 0;
  /// Chain prefix length at the last reload-triggering mismatch: a chain
  /// that is *persistently* bad (degraded load) must not re-reload on
  /// every poll, only when the chain changes again.
  std::uint64_t suspect_bytes_ = ~std::uint64_t{0};
  bool has_cursor_ = false;
  std::int64_t cursor_day_ = 0;
  std::uint64_t cursor_offset_ = 0;
  bool has_incidents_ = false;
  int incidents_next_id_ = 0;
  std::vector<core::Incident> incidents_;
  StandbyStats stats_{};
};

/// "<state>.hb" — the primary's liveness beacon (mtime is the signal).
std::filesystem::path heartbeat_path(const std::filesystem::path& state_path);

/// Rewrite the beacon so its mtime is "now". False on I/O failure.
bool touch_heartbeat(const std::filesystem::path& path);

/// Seconds since the beacon last moved; +infinity when it does not exist.
double heartbeat_age_seconds(const std::filesystem::path& path);

}  // namespace eid::rt
