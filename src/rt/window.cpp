#include "rt/window.h"

#include <cassert>
#include <utility>

namespace eid::rt {

void WindowAccumulator::append(const logs::ConnEvent& event, std::int64_t tick,
                               util::Day day) {
  assert(buckets_.empty() || tick >= buckets_.back().tick);
  if (!buckets_.empty() && buckets_.back().tick == tick &&
      buckets_.back().day == day && !buckets_.back().day_closed &&
      buckets_.back().sealed()) {
    // Out-of-order arrival behind an already-evaluated tick (only possible
    // when the accumulator is driven directly — the engine's clocks are
    // monotone). The partial's sequence counter sits exactly at this
    // bucket's event count, so ingesting here is the event's end-of-bucket
    // arrival position; the running merge may hold a stale copy of this
    // partial, so bump the epoch to force a rebuild from the cache.
    Bucket& bucket = buckets_.back();
    bucket.partial->add_event(event);
    ++bucket.event_count;
    ++cached_events_;
    ++mutation_epoch_;
    ++cache_stats_.invalidations;
    return;
  }
  if (buckets_.empty() || buckets_.back().tick != tick ||
      buckets_.back().day != day || buckets_.back().day_closed) {
    Bucket bucket;
    bucket.id = next_bucket_id_++;
    bucket.tick = tick;
    bucket.day = day;
    buckets_.push_back(std::move(bucket));
  }
  buckets_.back().events.push_back(event);
  ++buckets_.back().event_count;
  ++buffered_events_;
}

void WindowAccumulator::close_day(util::Day day) {
  for (Bucket& bucket : buckets_) {
    if (bucket.day == day) bucket.day_closed = true;
  }
}

void WindowAccumulator::seal(Bucket& bucket) {
  if (bucket.sealed()) return;
  assert(factory_ && "seal requires a partial factory (incremental mode)");
  bucket.partial = std::make_unique<graph::DayGraph>(factory_());
  bucket.partial->add_events(bucket.events);
  // Pre-sorting lets every later absorb keep the times sorted with an
  // in-place merge and lets finalize skip its per-edge sort entirely.
  bucket.partial->sort_edge_times();
  buffered_events_ -= bucket.events.size();
  cached_events_ += bucket.events.size();
  bucket.events = {};  // release raw storage, not just size
  ++cache_stats_.buckets_sealed;
}

void WindowAccumulator::reset_merge() {
  merge_.reset();
  merge_events_ = 0;
  snapshot_cache_.reset();
}

std::size_t WindowAccumulator::expire(std::int64_t tick) {
  const std::int64_t first_live = tick - config_.window_ticks() + 1;
  std::size_t dropped = 0;
  // Buckets are tick-ordered, but an expired-by-tick bucket whose day is
  // still open must survive, so scan past it rather than stopping.
  while (!buckets_.empty()) {
    const Bucket& front = buckets_.front();
    if (front.tick >= first_live) break;
    if (!front.day_closed) {
      // An open day pins its buckets; nothing older than it can be ahead
      // of it in the deque with a closed day (days arrive contiguously),
      // so stop here.
      break;
    }
    dropped += front.event_count;
    if (front.sealed()) {
      cached_events_ -= front.event_count;
    } else {
      buffered_events_ -= front.events.size();
    }
    buckets_.pop_front();
  }
  return dropped;
}

WindowAccumulator::MergeView WindowAccumulator::merge_window(
    std::int64_t tick) {
  assert(config_.incremental);
  const std::int64_t first_live = tick - config_.window_ticks() + 1;
  // Locate the in-window bucket range and seal it. Bucket ids are assigned
  // at creation and buckets are never reordered, so the deque holds a
  // contiguous ascending id range — index arithmetic below is exact.
  std::size_t lo = 0;
  while (lo < buckets_.size() && buckets_[lo].tick < first_live) ++lo;
  std::size_t hi = lo;
  while (hi < buckets_.size() && buckets_[hi].tick <= tick) {
    seal(buckets_[hi]);
    ++hi;
  }
  if (lo == hi) {
    reset_merge();
    return MergeView{};
  }
  const std::uint64_t first_id = buckets_[lo].id;
  const std::uint64_t end_id = buckets_[hi - 1].id + 1;
  const bool extendable = merge_ != nullptr && merge_first_id_ == first_id &&
                          merge_epoch_ == mutation_epoch_ &&
                          merge_next_id_ >= first_id && merge_next_id_ <= end_id;
  if (!extendable) {
    // Window front moved (expiry / slide) or a sealed bucket mutated:
    // rebuild from the cached partials — still never from raw events. The
    // snapshot cache indexes the old merge object's slots, so it resets
    // with it.
    merge_ = std::make_unique<graph::DayGraph>(factory_());
    merge_events_ = 0;
    snapshot_cache_.reset();
    merge_first_id_ = first_id;
    merge_next_id_ = first_id;
    merge_epoch_ = mutation_epoch_;
    ++cache_stats_.merge_rebuilds;
  } else if (merge_next_id_ < end_id) {
    ++cache_stats_.merge_extends;
  }
  for (std::size_t i = lo + static_cast<std::size_t>(merge_next_id_ - first_id);
       i < hi; ++i) {
    merge_->absorb(*buckets_[i].partial);
    merge_events_ += buckets_[i].event_count;
    ++cache_stats_.partial_absorbs;
  }
  merge_next_id_ = end_id;
  return MergeView{merge_.get(), merge_events_, &snapshot_cache_};
}

graph::DayGraph WindowAccumulator::merge_day(util::Day day,
                                             std::size_t& events_out) {
  assert(config_.incremental);
  graph::DayGraph merged = factory_();
  events_out = 0;
  for (Bucket& bucket : buckets_) {
    if (bucket.day != day) continue;
    seal(bucket);
    merged.absorb(*bucket.partial);
    events_out += bucket.event_count;
    ++cache_stats_.partial_absorbs;
  }
  return merged;
}

std::size_t WindowAccumulator::window_events(std::int64_t tick) const {
  const std::int64_t first_live = tick - config_.window_ticks() + 1;
  std::size_t count = 0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.tick < first_live || bucket.tick > tick) continue;
    count += bucket.event_count;
  }
  return count;
}

}  // namespace eid::rt
