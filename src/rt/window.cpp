#include "rt/window.h"

#include <cassert>

namespace eid::rt {

void WindowAccumulator::append(const logs::ConnEvent& event, std::int64_t tick,
                               util::Day day) {
  assert(buckets_.empty() || tick >= buckets_.back().tick);
  if (buckets_.empty() || buckets_.back().tick != tick ||
      buckets_.back().day != day || buckets_.back().day_closed) {
    Bucket bucket;
    bucket.tick = tick;
    bucket.day = day;
    buckets_.push_back(std::move(bucket));
  }
  buckets_.back().events.push_back(event);
  ++buffered_events_;
}

void WindowAccumulator::close_day(util::Day day) {
  for (Bucket& bucket : buckets_) {
    if (bucket.day == day) bucket.day_closed = true;
  }
}

std::size_t WindowAccumulator::expire(std::int64_t tick) {
  const std::int64_t first_live = tick - config_.window_ticks() + 1;
  std::size_t dropped = 0;
  // Buckets are tick-ordered, but an expired-by-tick bucket whose day is
  // still open must survive, so scan past it rather than stopping.
  while (!buckets_.empty()) {
    const Bucket& front = buckets_.front();
    if (front.tick >= first_live) break;
    if (!front.day_closed) {
      // An open day pins its buckets; nothing older than it can be ahead
      // of it in the deque with a closed day (days arrive contiguously),
      // so stop here.
      break;
    }
    dropped += front.events.size();
    buffered_events_ -= front.events.size();
    buckets_.pop_front();
  }
  return dropped;
}

std::size_t WindowAccumulator::window_events(std::int64_t tick) const {
  std::size_t count = 0;
  for_each_window_chunk(tick, [&](std::span<const logs::ConnEvent> events) {
    count += events.size();
  });
  return count;
}

}  // namespace eid::rt
