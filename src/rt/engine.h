// ContinuousEngine — real-time continuous detection over any EventSource.
//
// The paper's detector is day-batched: an infection at 09:00 surfaces at
// midnight. This engine keeps the batch path's exact semantics at day
// close while emitting *provisional* incidents with bounded latency in
// between:
//
//   * ingestion is pull-based (one chunk in flight at a time — the source
//     produces only when the engine is ready, which is the backpressure
//     contract; buffered memory is bounded by window ∪ open day);
//   * sim time advances through a SimClock (rt/clock.h); whenever it
//     crosses a tick boundary, the sliding window (rt/window.h) is
//     re-scored: rare-destination + automation analysis, C&C detection
//     and no-hint belief propagation over the window's events, all
//     through the same core::Pipeline stages the batch path uses. In the
//     default incremental mode the window's evidence comes from cached
//     per-bucket partial graphs merged in O(new events) per tick
//     (DayGraph::absorb + finalize_snapshot); WindowConfig::incremental =
//     false re-ingests the window's raw events instead — both paths are
//     bit-identical (tests/rt_incremental_test.cpp);
//   * domains never emitted before are announced immediately as
//     provisional IncidentEmissions carrying event-time → emission-time
//     latency (bounded by detection lag + one tick), and merged into the
//     cross-day core::IncidentStore;
//   * at each day boundary the day's buckets are replayed through
//     core::DayAccumulator in arrival order, so the day-close DayReport
//     and history updates are bit-identical to api::Detector::run_day on
//     the same stream (tests/rt_continuous_test.cpp), and the day's
//     detections are finalized.
//
// Drive it either through api::Detector::run_continuous (replay a whole
// stream) or incrementally with poll()/advance()/finish() for live tails
// (`enterprise_monitor --follow`).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "api/detector.h"
#include "core/incidents.h"
#include "rt/clock.h"
#include "rt/window.h"
#include "util/executor.h"

namespace eid::rt {

struct EngineConfig {
  WindowConfig window{};
  /// SOC seeds for the day-close report (the sochints BP mode), exactly
  /// like the seeds argument of run_day.
  core::SocSeeds seeds{};
  /// Run no-hint belief propagation at every tick evaluation (community
  /// expansion in the provisional emissions). Off = C&C detection only
  /// per tick, which is cheaper; day close always runs both BP modes.
  bool provisional_bp = true;
};

/// One incident announcement. Provisional emissions fire at tick close as
/// soon as a never-before-emitted domain crosses the detection thresholds
/// over the sliding window; finalized emissions fire at day close from the
/// authoritative (batch-identical) DayReport. `latency_seconds` is the
/// event-time → emission-time gap: from the first observed contact of the
/// newly emitted domains to the sim time of the announcement.
struct IncidentEmission {
  int incident_id = -1;
  bool provisional = true;
  bool new_incident = false;          ///< opened (vs. grew) an incident
  util::Day day = 0;                  ///< day tag of the evaluation
  util::TimePoint event_time = 0;     ///< earliest evidence contact
  util::TimePoint emission_time = 0;  ///< sim time of the announcement
  std::int64_t latency_seconds = 0;   ///< emission_time - event_time
  std::vector<std::string> domains;   ///< newly implicated domains
  std::vector<std::string> hosts;     ///< implicated hosts (community)
};

struct EngineStats {
  std::size_t events = 0;
  std::size_t chunks = 0;
  std::size_t ticks_closed = 0;
  std::size_t evaluations = 0;        ///< tick closes that re-scored the window
  std::size_t days_closed = 0;
  std::size_t expired_events = 0;     ///< dropped by window expiry
  /// Raw events currently buffered. Incremental mode seals closed buckets
  /// into partials and releases their raw events, so this (and the peak)
  /// is the open-bucket backlog, not the whole window ∪ open day.
  std::size_t buffered_events = 0;
  std::size_t peak_buffered_events = 0;
  std::size_t cached_partial_events = 0;  ///< events inside sealed partials
  std::size_t provisional_emissions = 0;
  std::size_t finalized_emissions = 0;
  // Incremental window-merge cache (zero in rebuild mode).
  std::size_t buckets_sealed = 0;
  std::size_t partial_absorbs = 0;
  std::size_t window_merge_extends = 0;
  std::size_t window_merge_rebuilds = 0;
};

/// Everything a finished continuous run produced.
struct ContinuousReport {
  std::vector<core::DayReport> days;      ///< one per closed day, in order
  std::vector<IncidentEmission> emissions;
  EngineStats stats{};
  /// Wall seconds of every window evaluation, in tick order — the per-tick
  /// cost distribution (bench_latency_rt's tick_p50/p99). Always recorded
  /// (two clock reads per evaluation); pure side channel.
  std::vector<double> tick_eval_seconds;
};

/// Latency distribution over a set of emissions (nearest-rank quantiles).
struct LatencySummary {
  std::size_t count = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};

LatencySummary summarize_latency(std::span<const IncidentEmission> emissions,
                                 bool provisional_only = false);

class ContinuousEngine {
 public:
  /// The detector must outlive the engine and be trained (models ready),
  /// like any run_day caller. The clock must outlive the engine; pass a
  /// ReplayClock for log replay, RealTimeClock for live tails.
  ContinuousEngine(api::Detector& detector, SimClock& clock,
                   EngineConfig config);

  /// Joins (and commits) any in-flight day close; see PendingClose.
  ~ContinuousEngine();

  /// Pull chunks until the source reports exhaustion, advancing sim time
  /// from the clock and closing any tick boundaries crossed. Returns the
  /// number of events consumed — for live tails, call again after the
  /// source has more data. One chunk is in flight at any moment.
  std::size_t poll(api::EventSource& source);

  /// Close tick boundaries up to the clock's current time without new
  /// events (live tails where the clock moves while the log is quiet).
  void advance();

  /// Close the open day (stream end / orderly shutdown). Idempotent.
  void finish();

  /// Replay convenience: poll to exhaustion, finish, and hand back the
  /// collected report (day reports, emissions, stats).
  ContinuousReport run(api::EventSource& source);

  /// Live-emission hook, fired as each IncidentEmission is recorded.
  void set_emission_sink(std::function<void(const IncidentEmission&)> sink) {
    emission_sink_ = std::move(sink);
  }

  /// Day-close hook, fired with each authoritative DayReport.
  void set_day_sink(std::function<void(const core::DayReport&)> sink) {
    day_sink_ = std::move(sink);
  }

  const EngineStats& stats() const { return stats_; }
  const core::IncidentStore& incidents() const { return incidents_; }
  const std::vector<core::DayReport>& day_reports() const { return day_reports_; }
  const std::vector<IncidentEmission>& emissions() const { return emissions_; }

  /// Move the accumulated results out (resets the collected lists, not
  /// the detection state).
  ContinuousReport take_report();

  /// Hot-standby takeover (rt/standby.h): adopt the failed primary's
  /// cross-day incident store before the first poll, so post-takeover
  /// emissions continue its incident ids and domains it already announced
  /// are not re-announced as new.
  void restore_incidents(core::IncidentStore incidents) {
    incidents_ = std::move(incidents);
    emitted_domains_.clear();
    for (const core::Incident& incident : incidents_.incidents()) {
      emitted_domains_.insert(incident.domains.begin(),
                              incident.domains.end());
    }
  }

 private:
  /// One in-flight day close (parallelism.pipeline_depth > 1): close_day
  /// replays the day's buckets synchronously, then hands the expensive
  /// pure-compute half — finish_day + report_day, which only read the
  /// pipeline — to the detector's executor while the driving thread keeps
  /// ingesting the next day. Every mutation (history update, stats,
  /// emissions, sinks, day_reports_) is applied by commit_close() on the
  /// driving thread at the next join point — the top of evaluate_tick /
  /// close_day / take_report(), finish(), or the destructor — so external
  /// readers of stats()/emissions()/day_reports() never race, and results
  /// stay bit-identical to the sequential close.
  struct PendingClose {
    util::Day day = 0;
    std::shared_ptr<core::DayAnalysis> analysis;
    std::shared_ptr<core::DayReport> report;
    util::Executor::TaskHandle handle;
  };

  void commit_close();
  void roll_to(std::int64_t tick);
  void evaluate_tick(std::int64_t tick);
  void close_day();
  void sync_cache_stats();
  void emit(const core::DayAnalysis& analysis,
            const std::vector<std::string>& domains,
            const std::vector<std::string>& hosts, bool provisional,
            util::TimePoint emission_time, util::Day day);

  api::Detector& detector_;
  SimClock& clock_;
  EngineConfig config_;
  WindowAccumulator window_;
  core::IncidentStore incidents_;
  std::set<std::string> emitted_domains_;

  /// Recycled snapshot container (incremental mode): each tick's finalized
  /// window snapshot is reclaimed from the consumed DayAnalysis after
  /// emission, so the next snapshot reuses its per-edge allocations
  /// (DayGraph::finalize_snapshot_into) instead of re-mallocing the window.
  graph::DayGraph snapshot_scratch_;

  bool have_tick_ = false;
  std::int64_t current_tick_ = 0;
  bool dirty_ = false;  ///< events appended since the last evaluation
  std::optional<util::Day> open_day_;
  std::optional<PendingClose> pending_close_;
  /// Latest source's concurrent_pull_safe(); false degrades day closes to
  /// sequential (commit inside close_day) for that stream.
  bool pull_overlap_safe_ = true;

  std::vector<core::DayReport> day_reports_;
  std::vector<IncidentEmission> emissions_;
  std::vector<double> tick_eval_seconds_;
  EngineStats stats_{};
  std::function<void(const IncidentEmission&)> emission_sink_;
  std::function<void(const core::DayReport&)> day_sink_;
};

}  // namespace eid::rt
