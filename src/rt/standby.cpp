#include "rt/standby.h"

#include <chrono>
#include <fstream>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace eid::rt {

namespace {

/// Frame header + trailer bytes around a payload in the chain file
/// (magic(8) + size(4) ... crc(4)); see storage/delta.h.
constexpr std::uint64_t kFrameOverhead = 8 + 4 + 4;

}  // namespace

StandbyReplica::StandbyReplica(api::Detector& detector, StandbyConfig config)
    : detector_(detector), config_(std::move(config)) {}

void StandbyReplica::adopt_report(storage::ChainLoadReport&& report) {
  base_crc_ = report.base_crc;
  next_seq_ = report.last_seq + 1;
  applied_bytes_ = report.applied_bytes;
  if (report.has_cursor) {
    has_cursor_ = true;
    cursor_day_ = report.cursor_day;
    cursor_offset_ = report.cursor_offset;
  }
  if (report.has_incidents) {
    has_incidents_ = true;
    incidents_next_id_ = report.incidents_next_id;
    incidents_ = std::move(report.incidents);
  }
}

bool StandbyReplica::start(storage::LoadStatus* status) {
  storage::ChainLoadReport report;
  if (!detector_.load_state(config_.state_path, &report, status)) {
    started_ = false;
    return false;
  }
  started_ = true;
  // adopt_report only overwrites the cursor/incidents when the new chain
  // carries them: right after a compaction the chain is empty, and the
  // previously applied frame's payload is still the latest known.
  adopt_report(std::move(report));
  return true;
}

bool StandbyReplica::reload(storage::LoadStatus* status) {
  ++stats_.full_reloads;
  obs::metrics().counter("eid_standby_reloads_total").add(1);
  return start(status);
}

std::size_t StandbyReplica::poll(storage::LoadStatus* status) {
  ++stats_.polls;
  if (!started_ && !start(status)) return 0;
  storage::DeltaChainInfo info;
  storage::LoadStatus local;
  if (!storage::read_delta_chain(storage::delta_chain_path(config_.state_path),
                                 info, &local)) {
    // Transient read failure: keep the state we have; retry next poll.
    if (status != nullptr) *status = local;
    return 0;
  }
  if (info.valid_bytes < applied_bytes_) {
    // The chain shrank under us: the primary compacted into a new base.
    reload(status);
    return 0;
  }
  std::size_t applied = 0;
  for (const auto& frame : info.frames) {
    if (frame.offset < applied_bytes_) continue;  // already replayed
    std::optional<storage::DeltaFrame> decoded =
        storage::decode_delta_frame(frame.payload, &local);
    const bool fits = decoded && decoded->base_crc == base_crc_ &&
                      decoded->seq == next_seq_;
    if (!fits || !detector_.apply_state_delta(*decoded, &local)) {
      // A complete, CRC-clean frame that does not continue our replay:
      // the primary compacted (new base CRC, seq restarting at 1) or the
      // chain is genuinely bad. Reload once per chain change — a
      // persistently bad chain (the degraded-load case) must not trigger
      // a reload storm.
      if (status != nullptr) *status = local;
      if (info.valid_bytes != suspect_bytes_) {
        suspect_bytes_ = info.valid_bytes;
        reload(status);
      }
      return applied;
    }
    applied_bytes_ = frame.offset + kFrameOverhead + frame.payload.size();
    ++next_seq_;
    ++applied;
    ++stats_.frames_applied;
    if (decoded->has_cursor) {
      has_cursor_ = true;
      cursor_day_ = decoded->cursor_day;
      cursor_offset_ = decoded->cursor_offset;
    }
    if (decoded->has_incidents) {
      has_incidents_ = true;
      incidents_next_id_ = decoded->incidents_next_id;
      incidents_ = std::move(decoded->incidents);
    }
  }
  if (info.torn_tail) ++stats_.torn_waits;  // append in progress: wait
  if (applied > 0) {
    obs::metrics().counter("eid_standby_frames_applied_total").add(applied);
  }
  return applied;
}

bool StandbyReplica::take_incidents(core::IncidentStore& store) const {
  if (!has_incidents_) return false;
  store.restore(incidents_, incidents_next_id_);
  return true;
}

std::filesystem::path heartbeat_path(const std::filesystem::path& state_path) {
  std::filesystem::path path = state_path;
  path += ".hb";
  return path;
}

bool touch_heartbeat(const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return false;
  out << "alive\n";
  out.flush();
  return static_cast<bool>(out);
}

double heartbeat_age_seconds(const std::filesystem::path& path) {
  std::error_code ec;
  const std::filesystem::file_time_type mtime =
      std::filesystem::last_write_time(path, ec);
  if (ec) return std::numeric_limits<double>::infinity();
  const auto now = std::filesystem::file_time_type::clock::now();
  const double age = std::chrono::duration<double>(now - mtime).count();
  return age < 0.0 ? 0.0 : age;  // clock skew / sub-tick touch
}

}  // namespace eid::rt
