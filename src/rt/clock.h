// Sim-time / wall-clock separation for the continuous detection engine.
//
// Everything in the detection pipeline is keyed by *event time* — the
// util::TimePoint carried on each log record. The batch path never needed
// a notion of "now": a day is analyzed after it is complete. Continuous
// mode does: ticks close, windows slide and incidents are emitted at a
// point in sim time, and that point must be drivable three ways —
// manually (deterministic unit tests), from the replayed event stream
// itself (benchmarks and log replay run as fast as the hardware allows),
// or from the monotonic wall clock (live tailing). SimClock is that
// seam; the engine never reads std::chrono directly.
//
// All drivers are monotonic: now() never decreases, even when the event
// stream carries out-of-order timestamps.
#pragma once

#include <algorithm>
#include <chrono>

#include "util/time.h"

namespace eid::rt {

/// Source of the engine's current sim time.
class SimClock {
 public:
  virtual ~SimClock() = default;

  /// Current sim time. Monotonic: never less than any previous now().
  virtual util::TimePoint now() const = 0;

  /// Inform the clock of an event timestamp as it is ingested. Replay
  /// drivers advance on this; manual and real-time drivers ignore it.
  virtual void observe(util::TimePoint t) = 0;
};

/// Test driver: time moves only when the test says so.
class ManualClock final : public SimClock {
 public:
  explicit ManualClock(util::TimePoint start = 0) : now_(start) {}

  util::TimePoint now() const override { return now_; }
  void observe(util::TimePoint) override {}

  /// Move time forward (a backwards set is clamped: monotonic contract).
  void set(util::TimePoint t) { now_ = std::max(now_, t); }
  void advance(std::int64_t seconds) { set(now_ + seconds); }

 private:
  util::TimePoint now_ = 0;
};

/// Replay driver: sim time is the high-water mark of the event timestamps
/// ingested so far, so a replayed month runs at hardware speed while every
/// tick still fires at the same sim-time boundary a live run would have
/// fired it at. Deterministic by construction: no wall clock involved.
class ReplayClock final : public SimClock {
 public:
  explicit ReplayClock(util::TimePoint start = 0) : now_(start) {}

  util::TimePoint now() const override { return now_; }
  void observe(util::TimePoint t) override { now_ = std::max(now_, t); }

 private:
  util::TimePoint now_ = 0;
};

/// Live driver: sim time is anchored to the monotonic wall clock —
/// `sim_anchor` corresponds to the instant of construction, and now()
/// advances with real elapsed time regardless of event timestamps. Used
/// by `enterprise_monitor --follow` style deployments where ticks must
/// close even when the tail goes quiet. Monotonic because
/// std::chrono::steady_clock is.
class RealTimeClock final : public SimClock {
 public:
  explicit RealTimeClock(util::TimePoint sim_anchor)
      : sim_anchor_(sim_anchor), wall_anchor_(std::chrono::steady_clock::now()) {}

  util::TimePoint now() const override {
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - wall_anchor_);
    return sim_anchor_ + elapsed.count();
  }

  void observe(util::TimePoint) override {}

 private:
  util::TimePoint sim_anchor_ = 0;
  std::chrono::steady_clock::time_point wall_anchor_;
};

}  // namespace eid::rt
