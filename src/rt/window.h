// Sliding-window micro-batch storage for the continuous engine.
//
// Events are appended in arrival order into *buckets*, one bucket per
// (tick, day-tag) pair; buckets form a monotone sequence because sim time
// only moves forward. Two consumers read them back as chunk spans, both in
// exact arrival order:
//
//   * the per-tick provisional evaluation replays every bucket still
//     inside the sliding window (window_seconds of sim time), and
//   * the authoritative day close replays every bucket tagged with the
//     closing day — the same event sequence the batch path would have
//     seen, so feeding it through core::DayAccumulator reproduces
//     run_day() bit for bit (the chunking-independence contract).
//
// A bucket is dropped only when it has slid out of the window AND its day
// has been closed; the window never truncates an open day. Memory is
// therefore bounded by (window ∪ open day) — the continuous engine's
// backpressure story is pull-based ingestion plus this bound, not an
// unbounded queue.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "logs/records.h"
#include "util/time.h"

namespace eid::rt {

/// Tick/window geometry. Ticks must tile the day exactly so day closes
/// coincide with tick boundaries, and the window must be a whole number of
/// ticks so expiry drops whole buckets.
struct WindowConfig {
  std::int64_t tick_seconds = 300;                      ///< micro-batch size
  std::int64_t window_seconds = util::kSecondsPerDay;   ///< evidence horizon

  bool valid() const {
    return tick_seconds > 0 && util::kSecondsPerDay % tick_seconds == 0 &&
           window_seconds >= tick_seconds &&
           window_seconds % tick_seconds == 0;
  }

  std::int64_t window_ticks() const { return window_seconds / tick_seconds; }

  /// Tick index containing sim time t (floor division, correct for t < 0).
  std::int64_t tick_of(util::TimePoint t) const {
    return t >= 0 ? t / tick_seconds
                  : (t - (tick_seconds - 1)) / tick_seconds;
  }

  /// Sim time at which tick `index` closes (exclusive end).
  util::TimePoint tick_end(std::int64_t index) const {
    return (index + 1) * tick_seconds;
  }
};

/// Arrival-ordered micro-batch buckets with window expiry and per-day
/// replay. Not thread-safe: owned and driven by one engine.
class WindowAccumulator {
 public:
  explicit WindowAccumulator(WindowConfig config) : config_(config) {}

  const WindowConfig& config() const { return config_; }

  /// Append one event observed during `tick` while ingesting a chunk
  /// tagged `day`. Ticks must be non-decreasing (sim time is monotonic).
  void append(const logs::ConnEvent& event, std::int64_t tick, util::Day day);

  /// Mark every bucket tagged `day` as closed (eligible for expiry once
  /// outside the window).
  void close_day(util::Day day);

  /// Drop buckets that are both outside the window ending at `tick` (i.e.
  /// older than tick - window_ticks + 1) and day-closed. Returns the
  /// number of events dropped.
  std::size_t expire(std::int64_t tick);

  /// Visit the events of every bucket inside the window ending at `tick`,
  /// oldest bucket first (arrival order). fn(std::span<const ConnEvent>).
  template <typename Fn>
  void for_each_window_chunk(std::int64_t tick, Fn&& fn) const {
    const std::int64_t first_live = tick - config_.window_ticks() + 1;
    for (const Bucket& bucket : buckets_) {
      if (bucket.tick < first_live || bucket.tick > tick) continue;
      if (!bucket.events.empty()) fn(std::span<const logs::ConnEvent>(bucket.events));
    }
  }

  /// Visit the events of every bucket tagged `day`, oldest first — the
  /// day's full arrival-ordered sequence for the authoritative close.
  template <typename Fn>
  void for_each_day_chunk(util::Day day, Fn&& fn) const {
    for (const Bucket& bucket : buckets_) {
      if (bucket.day != day) continue;
      if (!bucket.events.empty()) fn(std::span<const logs::ConnEvent>(bucket.events));
    }
  }

  /// Events inside the window ending at `tick`.
  std::size_t window_events(std::int64_t tick) const;

  /// All events currently buffered (window plus any unclosed days).
  std::size_t buffered_events() const { return buffered_events_; }

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  struct Bucket {
    std::int64_t tick = 0;
    util::Day day = 0;
    bool day_closed = false;
    std::vector<logs::ConnEvent> events;
  };

  WindowConfig config_;
  std::deque<Bucket> buckets_;
  std::size_t buffered_events_ = 0;
};

}  // namespace eid::rt
