// Sliding-window micro-batch storage for the continuous engine.
//
// Events are appended in arrival order into *buckets*, one bucket per
// (tick, day-tag) pair; buckets form a monotone sequence because sim time
// only moves forward. Two consumers read them back, both in exact arrival
// order:
//
//   * the per-tick provisional evaluation scores every bucket still
//     inside the sliding window (window_seconds of sim time), and
//   * the authoritative day close covers every bucket tagged with the
//     closing day — the same event sequence the batch path would have
//     seen, so the result reproduces run_day() bit for bit (the
//     chunking-independence contract).
//
// In the default *incremental* mode a bucket is sealed the first time an
// evaluation covers it: its events are ingested once into a cached
// pre-finalize graph::DayGraph partial (per-shard builders + shard
// interners, timestamps pre-sorted) and the raw events are released — so
// window memory is bounded by the open bucket plus O(distinct) partial
// state, and a tick evaluation merges cached partials (DayGraph::absorb)
// instead of re-interning the window's raw events. A running window merge
// is kept across ticks: when the window front is unchanged, only the
// newly sealed buckets are absorbed — tick cost O(new events), not
// O(window). The merge is rebuilt from the cached partials (never from
// raw events) when the front moves or a sealed bucket is mutated by a
// late append (mutation epoch). With `WindowConfig::incremental = false`
// buckets keep their raw events and the engine re-scores from them — the
// escape hatch the equivalence suites compare against.
//
// A bucket is dropped only when it has slid out of the window AND its day
// has been closed; the window never truncates an open day. Memory is
// therefore bounded by (window ∪ open day) — the continuous engine's
// backpressure story is pull-based ingestion plus this bound, not an
// unbounded queue.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/day_graph.h"
#include "logs/records.h"
#include "util/time.h"

namespace eid::rt {

/// Tick/window geometry. Ticks must tile the day exactly so day closes
/// coincide with tick boundaries, and the window must be a whole number of
/// ticks so expiry drops whole buckets.
struct WindowConfig {
  std::int64_t tick_seconds = 300;                      ///< micro-batch size
  std::int64_t window_seconds = util::kSecondsPerDay;   ///< evidence horizon
  /// Cache per-bucket partials and merge them per tick (O(new events))
  /// instead of replaying the window's raw events (O(window)). Results are
  /// bit-identical either way (tests/rt_incremental_test.cpp); false is
  /// the escape hatch and the equivalence baseline.
  bool incremental = true;

  bool valid() const {
    return tick_seconds > 0 && util::kSecondsPerDay % tick_seconds == 0 &&
           window_seconds >= tick_seconds &&
           window_seconds % tick_seconds == 0;
  }

  std::int64_t window_ticks() const { return window_seconds / tick_seconds; }

  /// Tick index containing sim time t (floor division, correct for t < 0).
  std::int64_t tick_of(util::TimePoint t) const {
    return t >= 0 ? t / tick_seconds
                  : (t - (tick_seconds - 1)) / tick_seconds;
  }

  /// Sim time at which tick `index` closes (exclusive end).
  util::TimePoint tick_end(std::int64_t index) const {
    return (index + 1) * tick_seconds;
  }
};

/// Arrival-ordered micro-batch buckets with window expiry, per-day replay
/// and (incremental mode) the sealed-partial cache + running window merge.
/// Not thread-safe: owned and driven by one engine.
class WindowAccumulator {
 public:
  explicit WindowAccumulator(WindowConfig config) : config_(config) {}

  const WindowConfig& config() const { return config_; }

  /// Factory for empty pre-finalize partial graphs (pipeline-wired shard
  /// builders; see core::Pipeline::make_ingest_graph). Must be installed
  /// before the first seal in incremental mode; every partial of this
  /// window must come from the same factory (matching shard counts).
  using PartialFactory = std::function<graph::DayGraph()>;
  void set_partial_factory(PartialFactory factory) {
    factory_ = std::move(factory);
  }

  /// Append one event observed during `tick` while ingesting a chunk
  /// tagged `day`. Ticks must be non-decreasing (sim time is monotonic).
  /// An append that lands in an already-sealed bucket (out-of-order
  /// arrival behind an evaluated tick) is ingested into that bucket's
  /// partial — at its exact end-of-bucket arrival position — and bumps the
  /// mutation epoch so the running window merge is rebuilt from partials.
  void append(const logs::ConnEvent& event, std::int64_t tick, util::Day day);

  /// Mark every bucket tagged `day` as closed (eligible for expiry once
  /// outside the window).
  void close_day(util::Day day);

  /// Drop buckets that are both outside the window ending at `tick` (i.e.
  /// older than tick - window_ticks + 1) and day-closed. Returns the
  /// number of events dropped (raw or cached).
  std::size_t expire(std::int64_t tick);

  /// Visit the events of every bucket inside the window ending at `tick`,
  /// oldest bucket first (arrival order). fn(std::span<const ConnEvent>).
  /// Rebuild-mode evaluation path: requires raw events (no sealing).
  template <typename Fn>
  void for_each_window_chunk(std::int64_t tick, Fn&& fn) const {
    const std::int64_t first_live = tick - config_.window_ticks() + 1;
    for (const Bucket& bucket : buckets_) {
      if (bucket.tick < first_live || bucket.tick > tick) continue;
      if (!bucket.events.empty()) fn(std::span<const logs::ConnEvent>(bucket.events));
    }
  }

  /// Visit the events of every bucket tagged `day`, oldest first — the
  /// day's full arrival-ordered sequence for the authoritative close
  /// (rebuild mode).
  template <typename Fn>
  void for_each_day_chunk(util::Day day, Fn&& fn) const {
    for (const Bucket& bucket : buckets_) {
      if (bucket.day != day) continue;
      if (!bucket.events.empty()) fn(std::span<const logs::ConnEvent>(bucket.events));
    }
  }

  /// Borrowed view of the running window merge (valid until the next
  /// mutating call on this accumulator). `snapshot_cache` is the merge's
  /// paired finalize_snapshot scratch — pass it to finalize_snapshot so
  /// repeated per-tick snapshots of the growing merge stay incremental
  /// too; the accumulator resets it whenever the merge is rebuilt.
  struct MergeView {
    const graph::DayGraph* graph = nullptr;  ///< pre-finalize merged graph
    std::size_t events = 0;                  ///< events it represents
    graph::DayGraph::SnapshotCache* snapshot_cache = nullptr;
  };

  /// Incremental evaluation entry: seal every bucket up to and including
  /// `tick`, then bring the running window merge up to date — extending it
  /// with only the newly sealed buckets when the window front and the
  /// sealed contents are unchanged, rebuilding it from the cached partials
  /// otherwise. The merged graph's finalize output is bit-identical to
  /// ingesting the window's events sequentially (DayGraph::absorb
  /// contract). graph == nullptr when the window is empty.
  MergeView merge_window(std::int64_t tick);

  /// Incremental day close: seal every bucket tagged `day` and merge their
  /// partials, in arrival order, into a fresh graph (the caller owns it —
  /// typically handed to a pipelined finalize task). `events_out` gets the
  /// day's event count.
  graph::DayGraph merge_day(util::Day day, std::size_t& events_out);

  /// Incremental-mode bookkeeping, for engine stats / obs counters.
  struct CacheStats {
    std::size_t buckets_sealed = 0;    ///< partials built (events dropped)
    std::size_t partial_absorbs = 0;   ///< bucket -> merge absorb operations
    std::size_t merge_extends = 0;     ///< window merges reusing the cache
    std::size_t merge_rebuilds = 0;    ///< window merges rebuilt from partials
    std::size_t invalidations = 0;     ///< late appends into sealed buckets
  };
  const CacheStats& cache_stats() const { return cache_stats_; }

  /// Events inside the window ending at `tick` (raw or cached).
  std::size_t window_events(std::int64_t tick) const;

  /// Raw events currently buffered. In incremental mode sealed buckets
  /// have released their raw storage, so this is the open-bucket backlog —
  /// the memory the window actually pins beyond O(distinct) partial state;
  /// in rebuild mode it is everything held (window ∪ open days).
  std::size_t buffered_events() const { return buffered_events_; }

  /// Events represented by sealed partials still in the deque.
  std::size_t cached_events() const { return cached_events_; }

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  struct Bucket {
    std::uint64_t id = 0;  ///< monotone creation index (deque-contiguous)
    std::int64_t tick = 0;
    util::Day day = 0;
    bool day_closed = false;
    std::size_t event_count = 0;  ///< raw + cached (survives sealing)
    std::vector<logs::ConnEvent> events;         ///< raw; cleared on seal
    std::unique_ptr<graph::DayGraph> partial;    ///< sealed ingest state

    bool sealed() const { return partial != nullptr; }
  };

  void seal(Bucket& bucket);
  void reset_merge();

  WindowConfig config_;
  PartialFactory factory_;
  std::deque<Bucket> buckets_;
  std::uint64_t next_bucket_id_ = 0;
  std::size_t buffered_events_ = 0;  ///< raw events held (see buffered_events)
  std::size_t cached_events_ = 0;    ///< events inside sealed partials
  std::uint64_t mutation_epoch_ = 0; ///< bumped when a sealed bucket changes

  // Running window merge: absorbed buckets [merge_first_id_, merge_next_id_).
  std::unique_ptr<graph::DayGraph> merge_;
  std::uint64_t merge_first_id_ = 0;
  std::uint64_t merge_next_id_ = 0;
  std::size_t merge_events_ = 0;
  std::uint64_t merge_epoch_ = 0;
  graph::DayGraph::SnapshotCache snapshot_cache_;  ///< merge_'s snapshot scratch
  CacheStats cache_stats_{};
};

}  // namespace eid::rt
