#include "core/report_json.h"

#include <cstdio>
#include <sstream>

namespace eid::core {
namespace {

std::string number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void append_detected(std::ostringstream& out,
                     const std::vector<DetectedDomain>& domains) {
  out << "[";
  for (std::size_t i = 0; i < domains.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"domain\":\"" << json_escape(domains[i].name) << "\""
        << ",\"score\":" << number(domains[i].score) << ",\"reason\":\""
        << label_reason_name(domains[i].reason) << "\""
        << ",\"iteration\":" << domains[i].iteration << "}";
  }
  out << "]";
}

void append_strings(std::ostringstream& out, const std::vector<std::string>& items) {
  out << "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(items[i]) << "\"";
  }
  out << "]";
}

void append_bp_run(std::ostringstream& out, const BpRunReport& run) {
  out << "{\"iterations\":" << run.iterations << ",\"domains\":";
  append_detected(out, run.domains);
  out << ",\"hosts\":";
  append_strings(out, run.hosts);
  out << "}";
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string day_report_to_json(const DayReport& report) {
  std::ostringstream out;
  out << "{\"day\":\"" << util::format_day(report.day) << "\"";
  out << ",\"stats\":{\"events\":" << report.events
      << ",\"hosts\":" << report.hosts << ",\"domains\":" << report.domains
      << ",\"rare_domains\":" << report.rare_domains
      << ",\"automated_pairs\":" << report.automated_pairs << "}";
  out << ",\"cc_domains\":[";
  for (std::size_t i = 0; i < report.cc_domains.size(); ++i) {
    const ScoredDomain& det = report.cc_domains[i];
    if (i > 0) out << ",";
    out << "{\"domain\":\"" << json_escape(det.name) << "\""
        << ",\"score\":" << number(det.score)
        << ",\"period_seconds\":" << number(det.period)
        << ",\"auto_hosts\":" << det.auto_hosts << "}";
  }
  out << "],\"nohint\":";
  append_bp_run(out, report.nohint);
  out << ",\"sochints\":";
  append_bp_run(out, report.sochints);
  out << "}";
  return out.str();
}

std::string incident_to_json(const Incident& incident) {
  std::ostringstream out;
  out << "{\"id\":" << incident.id << ",\"first_seen\":\""
      << util::format_day(incident.first_seen) << "\",\"last_seen\":\""
      << util::format_day(incident.last_seen)
      << "\",\"days_active\":" << incident.days_active;
  out << ",\"domains\":[";
  bool first = true;
  for (const auto& domain : incident.domains) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(domain) << "\"";
  }
  out << "],\"hosts\":[";
  first = true;
  for (const auto& host : incident.hosts) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(host) << "\"";
  }
  out << "]}";
  return out.str();
}

}  // namespace eid::core
