// Pipeline configuration as a key=value file. The paper emphasizes that
// thresholds are operator-facing knobs ("configurable ... according to the
// SOC's processing capacity", §VI), so deployments keep them in a config
// file next to the daily batch job:
//
//   # detection thresholds
//   cc_threshold = 0.4
//   sim_threshold = 0.33
//   bin_width_seconds = 10
//   jeffrey_threshold = 0.06
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace eid::core {

struct ConfigParseResult {
  PipelineConfig config;
  std::vector<std::string> errors;        ///< malformed lines / bad values
  std::vector<std::string> unknown_keys;  ///< tolerated but reported
  bool ok() const { return errors.empty(); }
};

/// Parse from text. Lines: "key = value", '#' comments, blank lines ok.
/// Unknown keys are collected, not fatal; malformed values are errors.
/// Values must be in range (thresholds finite, counts >= 1).
ConfigParseResult parse_pipeline_config(const std::string& text);

/// Render a config as a parseable key=value document.
std::string format_pipeline_config(const PipelineConfig& config);

}  // namespace eid::core
