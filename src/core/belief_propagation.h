// Algorithm 1 of the paper: belief propagation over the host <-> domain
// bipartite graph.
//
// Starting from seed hosts H (and optionally seed domains M), each iteration
// first looks for C&C-like domains among the rare domains R reachable from
// H; if none are found it labels the single rare domain with the highest
// similarity score to M, provided the score clears the threshold Ts. Newly
// labeled domains expand the compromised-host set through dom_host, which in
// turn expands R through host_rdom. The graph is thus grown incrementally —
// nodes are only added once confidence in their compromise is high — which
// is what makes the approach tractable on enterprise-scale days.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <unordered_set>
#include <vector>

#include "graph/day_graph.h"

namespace eid::core {

/// Scoring hooks for Algorithm 1. Implementations: the enterprise
/// regression-based scorer and the LANL additive scorer (scorers.h).
class DomainScorer {
 public:
  virtual ~DomainScorer() = default;

  /// Detect_C&C(dom): does the domain exhibit C&C-like behavior?
  virtual bool detect_cc(graph::DomainId domain) const = 0;

  /// Compute_SimScore(dom): similarity of the domain to the labeled set.
  virtual double similarity_score(
      graph::DomainId domain, std::span<const graph::DomainId> labeled) const = 0;
};

/// Why a domain was labeled in a given iteration.
enum class LabelReason { Seed, CandC, Similarity };

const char* label_reason_name(LabelReason reason);

/// One labeling event, kept for walk-through reporting (Fig. 4).
struct BpEvent {
  std::size_t iteration = 0;
  graph::DomainId domain = 0;
  LabelReason reason = LabelReason::Similarity;
  double score = 0.0;  ///< similarity score, or beacon period for C&C labels
  std::vector<graph::HostId> new_hosts;  ///< hosts added because of this label
};

struct BpConfig {
  double sim_threshold = 0.25;     ///< Ts
  std::size_t max_iterations = 5;  ///< stop condition of Algorithm 1
  /// Algorithm 1 labels only the single best-scoring domain per iteration
  /// (incremental growth keeps confidence high). Setting this labels every
  /// domain above Ts at once — the greedy variant the ablation bench
  /// compares against.
  bool label_all_above_threshold = false;
};

struct BpResult {
  std::vector<graph::HostId> hosts;      ///< expanded compromised set H
  std::vector<graph::DomainId> domains;  ///< expanded malicious set M (with seeds)
  std::vector<graph::DomainId> new_domains;  ///< M minus the seed domains
  std::vector<BpEvent> trace;
  std::size_t iterations = 0;
  bool stopped_by_threshold = false;  ///< max score fell below Ts
};

/// Run Algorithm 1.
///
/// `rare` is the day's rare-destination set (ids in `graph`); R is always a
/// subset of it. `seed_hosts` / `seed_domains` come from SOC hints or from
/// the C&C detector (no-hint mode).
BpResult belief_propagation(const graph::DayGraph& graph,
                            const std::unordered_set<graph::DomainId>& rare,
                            std::span<const graph::HostId> seed_hosts,
                            std::span<const graph::DomainId> seed_domains,
                            const DomainScorer& scorer, const BpConfig& config);

}  // namespace eid::core
