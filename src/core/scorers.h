// The two DomainScorer implementations used in the paper:
//
// * EnterpriseScorer (§IV-C, §IV-D): two trained linear-regression models —
//   one over the six C&C features for Detect_C&C, one over the eight
//   similarity features for Compute_SimScore. Feature values are min-max
//   scaled with scalers fitted during training so scores are comparable to
//   the paper's 0..1 thresholds.
//
// * LanlScorer (§V-B): the reduced-information variant for anonymized DNS
//   data. Detect_C&C = automated + at least two distinct hosts beaconing
//   with similar periods (within 10 s). Compute_SimScore = normalized
//   additive score over connectivity, timing correlation and IP proximity
//   (no registration or HTTP features exist in that dataset).
#pragma once

#include <span>
#include <unordered_set>

#include "core/belief_propagation.h"
#include "features/automation.h"
#include "features/cc_features.h"
#include "features/similarity_features.h"
#include "ml/linreg.h"

namespace eid::core {

/// Everything about "today" the scorers need. Scorers copy this small
/// struct; the *referenced* objects (graph, histories, ...) must outlive
/// the scorer.
struct DayState {
  const graph::DayGraph& graph;
  const std::unordered_set<graph::DomainId>& rare;
  const features::AutomationAnalysis& automation;
  const profile::UaHistory& ua_history;
  const features::WhoisSource& whois;
  util::Day today = 0;
  features::WhoisDefaults whois_defaults;
};

/// A trained model + scaler + decision threshold. Raw regression outputs
/// are affinely normalized so the *training* scores span [0, 1]; the
/// paper's thresholds (0.4..0.48 for C&C, 0.33..0.85 for similarity) are
/// meaningful on that scale regardless of the training base rate.
struct ScoredModel {
  ml::LinearModel model;
  ml::MinMaxScaler scaler;
  double threshold = 0.4;
  double score_offset = 0.0;  ///< min raw training score
  double score_scale = 1.0;   ///< max - min raw training score

  /// Scale features, predict, normalize. Mutates `row` (scaling in place).
  double score(std::span<double> row) const {
    scaler.transform_row(row);
    return (model.predict(row) - score_offset) / score_scale;
  }
};

/// Enterprise scorer: regression-weighted features.
class EnterpriseScorer final : public DomainScorer {
 public:
  EnterpriseScorer(const DayState& state, ScoredModel cc_model,
                   ScoredModel sim_model)
      : state_(state), cc_(std::move(cc_model)), sim_(std::move(sim_model)) {}

  /// Regression score over the C&C features (post-scaling).
  double cc_score(graph::DomainId domain) const;

  /// Regression score over the similarity features (post-scaling).
  double sim_score(graph::DomainId domain,
                   std::span<const graph::DomainId> labeled) const;

  bool detect_cc(graph::DomainId domain) const override;
  double similarity_score(graph::DomainId domain,
                          std::span<const graph::DomainId> labeled) const override;

 private:
  DayState state_;
  ScoredModel cc_;
  ScoredModel sim_;
};

/// LANL scorer parameters.
struct LanlScorerParams {
  /// Two hosts beacon "at similar time periods" when their detected periods
  /// differ by at most this many seconds.
  double period_match_seconds = 10.0;
  /// Timing-correlation component fires when the min first-visit gap to a
  /// labeled domain is at most this many seconds (Fig. 3 regime).
  double timing_close_seconds = 160.0;
  /// Connectivity component saturates at this many hosts.
  double connectivity_cap = 10.0;
};

class LanlScorer final : public DomainScorer {
 public:
  LanlScorer(const DayState& state, LanlScorerParams params = {})
      : state_(state), params_(params) {}

  bool detect_cc(graph::DomainId domain) const override;
  double similarity_score(graph::DomainId domain,
                          std::span<const graph::DomainId> labeled) const override;

  /// The three additive components before normalization, for tests.
  struct Components {
    double connectivity = 0.0;  ///< in [0, 1]
    double timing = 0.0;        ///< 0 or 1
    double ip = 0.0;            ///< 0, 1 (/16) or 2 (/24)
  };
  Components components(graph::DomainId domain,
                        std::span<const graph::DomainId> labeled) const;

 private:
  DayState state_;
  LanlScorerParams params_;
};

/// Standalone C&C sweep (operation step 3, Fig. 1): score every rare
/// automated domain of the day and return those above the threshold,
/// ordered by decreasing score.
struct CcDetection {
  graph::DomainId domain = 0;
  double score = 0.0;
  double period = 0.0;
  std::size_t auto_hosts = 0;
};

std::vector<CcDetection> detect_cc_domains(const DayState& state,
                                           const ScoredModel& cc_model);

}  // namespace eid::core
