#include "core/config_io.h"

#include <charconv>
#include <sstream>

#include "util/strings.h"

namespace eid::core {
namespace {

bool parse_double(std::string_view text, double& out) {
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_count(std::string_view text, std::size_t& out) {
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end && out >= 1;
}

}  // namespace

ConfigParseResult parse_pipeline_config(const std::string& text) {
  ConfigParseResult result;
  std::istringstream in(text);
  std::string raw_line;
  std::size_t line_no = 0;
  while (std::getline(in, raw_line)) {
    ++line_no;
    std::string_view line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      result.errors.push_back("line " + std::to_string(line_no) + ": missing '='");
      continue;
    }
    const std::string key(util::trim(line.substr(0, eq)));
    const std::string value(util::trim(line.substr(eq + 1)));
    const auto bad_value = [&] {
      result.errors.push_back("line " + std::to_string(line_no) + ": bad value for " +
                              key);
    };
    double d = 0.0;
    std::size_t n = 0;
    PipelineConfig& cfg = result.config;
    if (key == "popularity_threshold") {
      parse_count(value, cfg.popularity_threshold) || (bad_value(), false);
    } else if (key == "ua_rare_threshold") {
      parse_count(value, cfg.ua_rare_threshold) || (bad_value(), false);
    } else if (key == "bin_width_seconds") {
      if (parse_double(value, d) && d > 0) {
        cfg.periodicity.bin_width_seconds = d;
      } else {
        bad_value();
      }
    } else if (key == "jeffrey_threshold") {
      if (parse_double(value, d) && d >= 0) {
        cfg.periodicity.jeffrey_threshold = d;
      } else {
        bad_value();
      }
    } else if (key == "min_intervals") {
      if (parse_count(value, n)) {
        cfg.periodicity.min_intervals = n;
      } else {
        bad_value();
      }
    } else if (key == "cc_threshold") {
      if (parse_double(value, d)) {
        cfg.cc_threshold = d;
      } else {
        bad_value();
      }
    } else if (key == "sim_threshold") {
      if (parse_double(value, d)) {
        cfg.sim_threshold = d;
      } else {
        bad_value();
      }
    } else if (key == "bp_max_iterations") {
      parse_count(value, cfg.bp_max_iterations) || (bad_value(), false);
    } else if (key == "analysis_threads") {
      parse_count(value, cfg.parallelism.threads) || (bad_value(), false);
    } else if (key == "shard_count") {
      parse_count(value, cfg.parallelism.shards) || (bad_value(), false);
    } else if (key == "pipeline_depth") {
      parse_count(value, cfg.parallelism.pipeline_depth) || (bad_value(), false);
    } else {
      result.unknown_keys.push_back(key);
    }
  }
  return result;
}

std::string format_pipeline_config(const PipelineConfig& config) {
  std::ostringstream out;
  out << "# early-infection-detect pipeline configuration\n";
  out << "popularity_threshold = " << config.popularity_threshold << "\n";
  out << "ua_rare_threshold = " << config.ua_rare_threshold << "\n";
  out << "bin_width_seconds = " << config.periodicity.bin_width_seconds << "\n";
  out << "jeffrey_threshold = " << config.periodicity.jeffrey_threshold << "\n";
  out << "min_intervals = " << config.periodicity.min_intervals << "\n";
  out << "cc_threshold = " << config.cc_threshold << "\n";
  out << "sim_threshold = " << config.sim_threshold << "\n";
  out << "bp_max_iterations = " << config.bp_max_iterations << "\n";
  out << "analysis_threads = " << config.parallelism.threads << "\n";
  out << "shard_count = " << config.parallelism.shards << "\n";
  out << "pipeline_depth = " << config.parallelism.pipeline_depth << "\n";
  return out.str();
}

}  // namespace eid::core
