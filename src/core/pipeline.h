// End-to-end system of Fig. 1 for the enterprise (web proxy) deployment.
//
// Training (one month):
//   (1) normalization/reduction happens upstream (logs::reduce_*);
//   (2) profiling: domain + UA histories;
//   (3) C&C detector customization: regression over labeled automated rare
//       domains (labels from an intelligence feed such as VirusTotal);
//   (4) domain-similarity customization: regression over rare non-automated
//       domains contacted by hosts of confirmed C&C domains.
//
// Operation (daily):
//   (1) reduction; (2) profile comparison/update (rare destinations, rare
//   UAs); (3) C&C detector; (4) belief propagation in both modes.
//
// analyze_day() is separated from run_day() so benchmarks can sweep
// thresholds over one day's analysis without recomputing it, and so
// history updates stay explicit.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/scorers.h"
#include "profile/domain_history.h"
#include "profile/top_sites.h"
#include "profile/ua_history.h"

namespace eid::core {

struct PipelineConfig {
  std::size_t popularity_threshold = 10;  ///< rare-destination host cap
  std::size_t ua_rare_threshold = 10;     ///< rare-UA host cap
  timing::PeriodicityDetector::Params periodicity{};  ///< W = 10 s, JT = 0.06
  double cc_threshold = 0.4;   ///< Tc (Fig. 6a sweeps 0.40..0.48)
  double sim_threshold = 0.33; ///< Ts (Fig. 6b sweeps 0.33..0.85)
  std::size_t bp_max_iterations = 10;
  /// Worker threads for the per-edge automation scan (1 = sequential;
  /// results are identical for any value).
  std::size_t analysis_threads = 1;
};

/// Everything computed about one day before any thresholding.
struct DayAnalysis {
  util::Day day = 0;
  graph::DayGraph graph;
  std::unordered_set<graph::DomainId> rare;
  features::AutomationAnalysis automation;
  features::WhoisDefaults whois_defaults;
  std::size_t event_count = 0;
  std::size_t new_domains = 0;    ///< new regardless of popularity
  std::size_t total_domains = 0;
};

/// A detected domain with its provenance, reported by name so results
/// survive the per-day interning.
struct DetectedDomain {
  std::string name;
  double score = 0.0;
  LabelReason reason = LabelReason::Similarity;
  std::size_t iteration = 0;
};

struct BpRunReport {
  std::vector<DetectedDomain> domains;  ///< newly labeled (seeds excluded)
  std::vector<std::string> hosts;       ///< expanded compromised set
  std::size_t iterations = 0;
};

/// Score assigned to one automated rare domain (Fig. 5 / Fig. 6a series).
struct ScoredDomain {
  std::string name;
  double score = 0.0;
  double period = 0.0;
  std::size_t auto_hosts = 0;
};

struct DayReport {
  util::Day day = 0;
  std::size_t events = 0;
  std::size_t hosts = 0;
  std::size_t domains = 0;
  std::size_t rare_domains = 0;
  std::size_t automated_pairs = 0;
  std::vector<ScoredDomain> automated_scores;  ///< all rare automated domains
  std::vector<ScoredDomain> cc_domains;        ///< score >= Tc
  BpRunReport nohint;
  BpRunReport sochints;
};

/// SOC-provided seeds for the hints mode.
struct SocSeeds {
  std::vector<std::string> hosts;
  std::vector<std::string> domains;
};

/// Intelligence label callback: true when the feed (VirusTotal in the
/// paper) reports the domain malicious.
using LabelFn = std::function<bool(const std::string& domain)>;

/// Outcome of finalize_training(), for reporting regression diagnostics
/// (§VI-A: coefficient signs and significance).
struct TrainingReport {
  ml::LinearModel cc_model;
  ml::LinearModel sim_model;
  std::size_t cc_rows = 0;
  std::size_t cc_positive = 0;
  std::size_t sim_rows = 0;
  std::size_t sim_positive = 0;
  /// (score, reported?) pairs over the C&C training rows — the Fig. 5 CDFs.
  std::vector<std::pair<double, bool>> cc_training_scores;
};

class Pipeline {
 public:
  Pipeline(PipelineConfig config, const features::WhoisSource& whois);

  // ---- Training ----

  /// Stage 2 (bootstrap month): update histories only.
  void profile_day(const std::vector<logs::ConnEvent>& events);

  /// Stages 3-4: accumulate labeled regression rows for one day, then
  /// update histories.
  void train_day(const std::vector<logs::ConnEvent>& events, util::Day day,
                 const LabelFn& intel);

  /// Fit the C&C and similarity regressions from the accumulated rows.
  TrainingReport finalize_training();

  /// Install externally-fit models (tests, ablations, or models persisted
  /// with core/model_io.h).
  void set_models(ScoredModel cc, ScoredModel sim);

  /// Install a global-popularity whitelist (§II-A): rare destinations on
  /// the list are excluded from analysis. Pass nullptr to clear. The list
  /// must outlive the pipeline.
  void set_top_sites(const profile::TopSitesList* top_sites) {
    top_sites_ = top_sites;
  }

  // ---- Operation ----

  /// Steps 1-2 + feature analysis, no thresholding, no history update.
  DayAnalysis analyze_day(const std::vector<logs::ConnEvent>& events,
                          util::Day day) const;

  /// All automated rare domains of the day with their scores, unthresholded
  /// (the Fig. 5 / Fig. 6a series).
  std::vector<ScoredDomain> score_automated(const DayAnalysis& analysis) const;

  /// Step 3: C&C sweep at threshold Tc (config default when unset).
  std::vector<ScoredDomain> detect_cc(
      const DayAnalysis& analysis,
      std::optional<double> tc = std::nullopt) const;

  /// Step 4, no-hint mode: seed BP with the C&C detections.
  BpRunReport run_bp_nohint(const DayAnalysis& analysis,
                            const std::vector<ScoredDomain>& cc_domains,
                            std::optional<double> ts = std::nullopt) const;

  /// Step 4, SOC-hints mode.
  BpRunReport run_bp_sochints(const DayAnalysis& analysis, const SocSeeds& seeds,
                              std::optional<double> ts = std::nullopt) const;

  /// End-of-day profile update (operation step 2, "histories are updated").
  void update_histories(const std::vector<logs::ConnEvent>& events);

  /// Convenience: analyze + detect + both BP modes + history update.
  DayReport run_day(const std::vector<logs::ConnEvent>& events, util::Day day,
                    const SocSeeds& seeds);

  const PipelineConfig& config() const { return config_; }
  const profile::DomainHistory& domain_history() const { return domain_history_; }
  const profile::UaHistory& ua_history() const { return ua_history_; }
  const ScoredModel& cc_model() const { return cc_model_; }
  const ScoredModel& sim_model() const { return sim_model_; }

 private:
  DayState make_state(const DayAnalysis& analysis) const;
  BpRunReport report_from(const graph::DayGraph& graph,
                          const BpResult& result) const;

  PipelineConfig config_;
  const features::WhoisSource& whois_;
  const profile::TopSitesList* top_sites_ = nullptr;
  profile::DomainHistory domain_history_;
  profile::UaHistory ua_history_;

  // Accumulated training rows.
  std::vector<std::array<double, features::kCcFeatureCount>> cc_rows_;
  std::vector<double> cc_labels_;
  std::vector<std::array<double, features::kSimFeatureCount>> sim_rows_;
  std::vector<double> sim_labels_;
  double whois_age_sum_ = 0.0;
  double whois_validity_sum_ = 0.0;
  std::size_t whois_samples_ = 0;

  ScoredModel cc_model_;
  ScoredModel sim_model_;
  bool models_ready_ = false;
};

}  // namespace eid::core
