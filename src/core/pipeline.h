// End-to-end system of Fig. 1 for the enterprise (web proxy) deployment.
//
// Training (one month):
//   (1) normalization/reduction happens upstream (logs::reduce_*);
//   (2) profiling: domain + UA histories;
//   (3) C&C detector customization: regression over labeled automated rare
//       domains (labels from an intelligence feed such as VirusTotal);
//   (4) domain-similarity customization: regression over rare non-automated
//       domains contacted by hosts of confirmed C&C domains.
//
// Operation (daily):
//   (1) reduction; (2) profile comparison/update (rare destinations, rare
//   UAs); (3) C&C detector; (4) belief propagation in both modes.
//
// analyze_day() is separated from run_day() so benchmarks can sweep
// thresholds over one day's analysis without recomputing it, and so
// history updates stay explicit.
//
// Ingestion is incremental: a day is built chunk-by-chunk through
// DayAccumulator (begin_day / add_chunk / finish_day), so callers never
// need a fully materialized per-day event vector. The vector entry points
// (analyze_day, train_day, run_day, profile_day) are thin adapters over
// the incremental path and produce bit-identical results for any chunking
// of the same event sequence. api::Detector exposes this as a streaming
// EventSource API.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/scorers.h"
#include "profile/domain_history.h"
#include "profile/top_sites.h"
#include "profile/ua_history.h"

namespace eid::util {
class Executor;
}

namespace eid::core {

/// Parallel-execution knobs for the day path. Pure performance knobs: the
/// analysis and every report are bit-identical for any values (the
/// contract tests/determinism_test.cpp and api_equivalence_test.cpp
/// enforce), so they can be tuned per deployment without revalidation.
struct Parallelism {
  /// Worker threads for the day-analysis stages: edge-timestamp sorting
  /// in DayGraph::finalize, rare-domain extraction, and the per-edge
  /// automation scan (the hot loop at enterprise volume, §II-C).
  std::size_t threads = 1;
  /// Host-hash ingest shards inside DayAccumulator (independent builders,
  /// no locks; merged deterministically in finish_day).
  std::size_t shards = 1;
  /// Day-pipelining depth for the multi-day streaming verbs
  /// (api::Detector::ingest / analyze_days / run_continuous). 1 runs each
  /// day's finalize/score/commit stage inline between ingests; 2 overlaps
  /// that stage of day N with day N+1's ingest on the pipeline's executor
  /// (commits stay strictly day-ordered, so — like the other knobs —
  /// every report is bit-identical for any value). Values above 2 behave
  /// as 2: rare extraction reads the histories day N commits, so at most
  /// one commit can be in flight.
  std::size_t pipeline_depth = 1;
};

struct PipelineConfig {
  std::size_t popularity_threshold = 10;  ///< rare-destination host cap
  std::size_t ua_rare_threshold = 10;     ///< rare-UA host cap
  timing::PeriodicityDetector::Params periodicity{};  ///< W = 10 s, JT = 0.06
  double cc_threshold = 0.4;   ///< Tc (Fig. 6a sweeps 0.40..0.48)
  double sim_threshold = 0.33; ///< Ts (Fig. 6b sweeps 0.33..0.85)
  std::size_t bp_max_iterations = 10;
  Parallelism parallelism{};   ///< day-path threads + ingest shards
};

/// Wall-clock seconds per finish_day stage — perf diagnostics for the
/// throughput bench; not part of the result contract.
struct DayStageSeconds {
  double finalize = 0.0;    ///< shard merge + CSR build + timestamp sort
  double rare = 0.0;        ///< rare-destination extraction
  double automation = 0.0;  ///< per-edge periodicity scan
};

/// Everything computed about one day before any thresholding.
struct DayAnalysis {
  util::Day day = 0;
  graph::DayGraph graph;
  std::unordered_set<graph::DomainId> rare;
  features::AutomationAnalysis automation;
  features::WhoisDefaults whois_defaults;
  std::size_t event_count = 0;
  std::size_t new_domains = 0;    ///< new regardless of popularity
  std::size_t total_domains = 0;
  DayStageSeconds stage_seconds{};
};

/// A detected domain with its provenance, reported by name so results
/// survive the per-day interning.
struct DetectedDomain {
  std::string name;
  double score = 0.0;
  LabelReason reason = LabelReason::Similarity;
  std::size_t iteration = 0;
};

struct BpRunReport {
  std::vector<DetectedDomain> domains;  ///< newly labeled (seeds excluded)
  std::vector<std::string> hosts;       ///< expanded compromised set
  std::size_t iterations = 0;
};

/// Score assigned to one automated rare domain (Fig. 5 / Fig. 6a series).
struct ScoredDomain {
  std::string name;
  double score = 0.0;
  double period = 0.0;
  std::size_t auto_hosts = 0;
};

struct DayReport {
  util::Day day = 0;
  std::size_t events = 0;
  std::size_t hosts = 0;
  std::size_t domains = 0;
  std::size_t rare_domains = 0;
  std::size_t automated_pairs = 0;
  std::vector<ScoredDomain> automated_scores;  ///< all rare automated domains
  std::vector<ScoredDomain> cc_domains;        ///< score >= Tc
  BpRunReport nohint;
  BpRunReport sochints;
};

/// SOC-provided seeds for the hints mode.
struct SocSeeds {
  std::vector<std::string> hosts;
  std::vector<std::string> domains;
};

/// Intelligence label callback: true when the feed (VirusTotal in the
/// paper) reports the domain malicious.
using LabelFn = std::function<bool(const std::string& domain)>;

/// Incremental builder for one day's analysis. Obtain from
/// Pipeline::begin_day(), feed events in any number of chunks, then hand
/// back to Pipeline::finish_day(). Only the day graph grows while chunks
/// arrive — events route lock-free into host-hash shard builders — so the
/// result is identical for any chunking of the same event sequence AND any
/// shard count: finalize (deterministic shard merge), rare extraction and
/// automation all run in finish_day().
class DayAccumulator {
 public:
  void add(const logs::ConnEvent& event) {
    graph_.add_event(event);
    ++events_;
  }

  /// Ingest one chunk: sharded interning/aggregation runs in parallel
  /// across the shard builders (see DayGraph::add_events); the span only
  /// needs to outlive this call.
  void add_chunk(std::span<const logs::ConnEvent> events) {
    graph_.add_events(events);
    events_ += events.size();
  }

  util::Day day() const { return day_; }
  std::size_t event_count() const { return events_; }

 private:
  friend class Pipeline;
  DayAccumulator(util::Day day, std::size_t shards,
                 std::shared_ptr<util::Executor> executor)
      : day_(day), graph_(shards, std::move(executor)) {}

  util::Day day_;
  graph::DayGraph graph_;
  std::size_t events_ = 0;
};

/// Incremental collector for the profiling stage (bootstrap month): only
/// the day's distinct domains and distinct (UA, host) pairs are retained,
/// so memory stays O(distinct) for arbitrarily large days. Histories are
/// committed at end-of-day by Pipeline::finish_profile(), preserving the
/// "today's traffic does not mask today's new destinations" contract.
class ProfileAccumulator {
 public:
  void add(const logs::ConnEvent& event) {
    ++events_;
    domains_.insert(event.domain);
    if (!event.has_http_context || event.user_agent.empty()) return;
    auto& hosts = ua_hosts_[event.user_agent];
    // A UA with `ua_cap_` distinct hosts in one day is popular regardless
    // of prior history, so further hosts add no information.
    if (ua_cap_ == 0 || hosts.size() < ua_cap_) hosts.insert(event.host);
  }

  void add_chunk(std::span<const logs::ConnEvent> events) {
    for (const auto& event : events) add(event);
  }

  std::size_t event_count() const { return events_; }

 private:
  friend class Pipeline;
  explicit ProfileAccumulator(std::size_t ua_cap) : ua_cap_(ua_cap) {}

  std::size_t ua_cap_;
  std::size_t events_ = 0;
  std::unordered_set<std::string> domains_;
  std::unordered_map<std::string, std::unordered_set<std::string>> ua_hosts_;
};

/// Outcome of finalize_training(), for reporting regression diagnostics
/// (§VI-A: coefficient signs and significance).
struct TrainingReport {
  ml::LinearModel cc_model;
  ml::LinearModel sim_model;
  std::size_t cc_rows = 0;
  std::size_t cc_positive = 0;
  std::size_t sim_rows = 0;
  std::size_t sim_positive = 0;
  /// (score, reported?) pairs over the C&C training rows — the Fig. 5 CDFs.
  std::vector<std::pair<double, bool>> cc_training_scores;
};

class Pipeline {
 public:
  Pipeline(PipelineConfig config, const features::WhoisSource& whois);

  // ---- Training ----

  /// Stage 2 (bootstrap month): update histories only.
  void profile_day(const std::vector<logs::ConnEvent>& events);

  /// Streaming profiling: begin a day, feed chunks, commit at day end.
  ProfileAccumulator begin_profile() const {
    return ProfileAccumulator(config_.ua_rare_threshold);
  }
  void finish_profile(ProfileAccumulator&& accumulator);

  /// Stages 3-4: accumulate labeled regression rows for one day, then
  /// update histories.
  void train_day(const std::vector<logs::ConnEvent>& events, util::Day day,
                 const LabelFn& intel);

  /// Stages 3-4 for an already-computed analysis: accumulate labeled
  /// regression rows only. The caller owns the end-of-day history update
  /// (update_histories() with the day's events or graph).
  void train_from_analysis(const DayAnalysis& analysis, const LabelFn& intel);

  /// Fit the C&C and similarity regressions from the accumulated rows.
  TrainingReport finalize_training();

  /// Install externally-fit models (tests, ablations, or models persisted
  /// with core/model_io.h).
  void set_models(ScoredModel cc, ScoredModel sim);

  /// Install a global-popularity whitelist (§II-A): rare destinations on
  /// the list are excluded from analysis. Pass nullptr to clear. The list
  /// must outlive the pipeline.
  void set_top_sites(const profile::TopSitesList* top_sites) {
    top_sites_ = top_sites;
  }

  const profile::TopSitesList* top_sites() const { return top_sites_; }

  // ---- Checkpoint/restore hooks (storage/state.h) ----

  /// WHOIS aggregates accumulated while training. They seed the per-day
  /// WhoisDefaults of every later analysis, so checkpoints must carry them
  /// for restored runs to be bit-identical.
  struct WhoisTrainingStats {
    double age_sum = 0.0;
    double validity_sum = 0.0;
    std::size_t samples = 0;
  };

  WhoisTrainingStats whois_training_stats() const {
    return {whois_age_sum_, whois_validity_sum_, whois_samples_};
  }

  void restore_whois_training_stats(const WhoisTrainingStats& stats) {
    whois_age_sum_ = stats.age_sum;
    whois_validity_sum_ = stats.validity_sum;
    whois_samples_ = stats.samples;
  }

  /// Replace the configuration wholesale (checkpoint restore). The WHOIS
  /// source reference and accumulated histories are unchanged; the worker
  /// pool is resized to the restored Parallelism.
  void set_config(const PipelineConfig& config) {
    config_ = config;
    rebuild_executor();
  }

  /// Replace both histories with restored state.
  void restore_histories(profile::DomainHistory domains, profile::UaHistory uas) {
    domain_history_ = std::move(domains);
    ua_history_ = std::move(uas);
  }

  /// Like set_models(), but also restores whether training had been
  /// finalized when the state was saved.
  void restore_models(ScoredModel cc, ScoredModel sim, bool ready) {
    cc_model_ = std::move(cc);
    sim_model_ = std::move(sim);
    models_ready_ = ready;
  }

  bool models_ready() const { return models_ready_; }

  // ---- Delta-checkpoint hooks (storage/delta.h) ----

  /// Start (or stop) journaling history mutations for delta saves.
  void set_history_journaling(bool on) {
    domain_history_.set_journaling(on);
    ua_history_.set_journaling(on);
  }

  /// History changes since the last drain (or since journaling started).
  struct HistoryDelta {
    std::vector<std::string> new_domains;  ///< first-seen, in arrival order
    std::vector<std::string> touched_uas;  ///< mutated entries, first-touch
  };

  HistoryDelta drain_history_journal() {
    return {domain_history_.drain_journal(), ua_history_.drain_journal()};
  }

  /// Apply a domain-history delta (standby replica path): insert the
  /// domains, set the absolute day counter.
  void absorb_domain_delta(std::span<const std::string> domains,
                           std::size_t days_ingested) {
    domain_history_.absorb(domains, days_ingested);
  }

  /// Replace one UA entry wholesale (standby replica path).
  void absorb_ua_entry(std::string_view ua, bool popular,
                       std::span<const std::string_view> hosts) {
    ua_history_.restore_entry(ua, popular, hosts);
  }

  /// Accumulated training-row counts, for delta saves that only ship the
  /// rows appended since the previous frame.
  std::size_t cc_training_rows() const { return cc_labels_.size(); }
  std::size_t sim_training_rows() const { return sim_labels_.size(); }

  /// Flatten accumulated training rows starting at the given row indices
  /// (row-major, features::kCcFeatureCount / kSimFeatureCount columns).
  /// The storage layer cannot see the fixed-width arrays, so flat double
  /// vectors are the interchange format.
  void export_training_rows(std::size_t cc_first, std::size_t sim_first,
                            std::vector<double>& cc,
                            std::vector<double>& cc_labels,
                            std::vector<double>& sim,
                            std::vector<double>& sim_labels) const;

  /// Append restored training rows (mid-training crash resume). False when
  /// the flat data is not a whole number of rows of the expected width.
  bool import_training_rows(std::span<const double> cc,
                            std::span<const double> cc_labels,
                            std::span<const double> sim,
                            std::span<const double> sim_labels);

  /// Drop accumulated training rows (checkpoint restore replaces them).
  void clear_training_rows() {
    cc_rows_.clear();
    cc_labels_.clear();
    sim_rows_.clear();
    sim_labels_.clear();
  }

  // ---- Operation ----

  /// Steps 1-2 + feature analysis, no thresholding, no history update.
  /// Adapter over begin_day/finish_day for callers with a materialized day.
  DayAnalysis analyze_day(const std::vector<logs::ConnEvent>& events,
                          util::Day day) const;

  /// Start incremental analysis of one day (streaming ingestion). The
  /// accumulator shards by host hash per config().parallelism.shards and
  /// shares the pipeline's worker pool (it keeps the pool alive, so a
  /// concurrent set_parallelism cannot pull it out from under a day in
  /// flight).
  DayAccumulator begin_day(util::Day day) const {
    return DayAccumulator(day, config_.parallelism.shards, executor_);
  }

  /// Retune the parallel knobs without rebuilding the pipeline (results
  /// are bit-identical for any values, so this is always safe). Resizes
  /// the worker pool.
  void set_parallelism(Parallelism parallelism) {
    config_.parallelism = parallelism;
    rebuild_executor();
  }

  /// The persistent worker pool behind every parallel stage — nullptr for
  /// a fully sequential configuration (threads, shards and pipeline_depth
  /// all 1), where every fan-out degrades to an inline loop.
  util::Executor* executor() const { return executor_.get(); }

  /// Finalize an incremental day: graph views, rare extraction, automation
  /// analysis, WHOIS defaults. Identical to analyze_day() over the
  /// concatenation of every chunk fed to the accumulator.
  DayAnalysis finish_day(DayAccumulator&& accumulator) const;

  /// finish_day for callers that assembled the day graph themselves — the
  /// rt engine's incremental window merge hands a graph built from cached
  /// per-bucket partials (optionally already finalized via
  /// finalize_snapshot; finalize here is idempotent). `events` is the
  /// ingested event count the graph represents. Identical to finish_day on
  /// an accumulator fed the same event sequence.
  DayAnalysis finish_day_graph(util::Day day, graph::DayGraph&& graph,
                               std::size_t events) const;

  /// A bare un-finalized ingest graph wired to the pipeline's worker pool,
  /// for callers that maintain their own partial graphs (the rt bucket
  /// cache). `shards` is pinned by the caller: partials that will be
  /// absorbed into each other must share one shard count, so the rt engine
  /// captures it once rather than chasing set_parallelism.
  graph::DayGraph make_ingest_graph(std::size_t shards) const {
    return graph::DayGraph(shards, executor_);
  }

  /// All automated rare domains of the day with their scores, unthresholded
  /// (the Fig. 5 / Fig. 6a series).
  std::vector<ScoredDomain> score_automated(const DayAnalysis& analysis) const;

  /// Step 3: C&C sweep at threshold Tc (config default when unset).
  std::vector<ScoredDomain> detect_cc(
      const DayAnalysis& analysis,
      std::optional<double> tc = std::nullopt) const;

  /// Step 4, no-hint mode: seed BP with the C&C detections.
  BpRunReport run_bp_nohint(const DayAnalysis& analysis,
                            const std::vector<ScoredDomain>& cc_domains,
                            std::optional<double> ts = std::nullopt) const;

  /// Step 4, SOC-hints mode.
  BpRunReport run_bp_sochints(const DayAnalysis& analysis, const SocSeeds& seeds,
                              std::optional<double> ts = std::nullopt) const;

  /// End-of-day profile update (operation step 2, "histories are updated").
  void update_histories(const std::vector<logs::ConnEvent>& events);

  /// End-of-day profile update from a finalized day graph — the streaming
  /// path, where the raw events are gone but the graph holds the day's
  /// distinct domains and (host, UA) pairs. Equivalent to the event form.
  void update_histories(const graph::DayGraph& graph);

  /// Thresholding + both BP modes over an already-computed analysis, no
  /// history update.
  DayReport report_day(const DayAnalysis& analysis, const SocSeeds& seeds) const;

  /// Convenience: analyze + detect + both BP modes + history update.
  DayReport run_day(const std::vector<logs::ConnEvent>& events, util::Day day,
                    const SocSeeds& seeds);

  const PipelineConfig& config() const { return config_; }
  const profile::DomainHistory& domain_history() const { return domain_history_; }
  const profile::UaHistory& ua_history() const { return ua_history_; }
  const ScoredModel& cc_model() const { return cc_model_; }
  const ScoredModel& sim_model() const { return sim_model_; }

 private:
  DayState make_state(const DayAnalysis& analysis) const;
  BpRunReport report_from(const graph::DayGraph& graph,
                          const BpResult& result) const;
  void rebuild_executor();

  PipelineConfig config_;
  /// Shared with live DayAccumulators (begin_day) so reconfiguration never
  /// destroys a pool that still has a day's shards wired to it.
  std::shared_ptr<util::Executor> executor_;
  const features::WhoisSource& whois_;
  const profile::TopSitesList* top_sites_ = nullptr;
  profile::DomainHistory domain_history_;
  profile::UaHistory ua_history_;

  // Accumulated training rows.
  std::vector<std::array<double, features::kCcFeatureCount>> cc_rows_;
  std::vector<double> cc_labels_;
  std::vector<std::array<double, features::kSimFeatureCount>> sim_rows_;
  std::vector<double> sim_labels_;
  double whois_age_sum_ = 0.0;
  double whois_validity_sum_ = 0.0;
  std::size_t whois_samples_ = 0;

  ScoredModel cc_model_;
  ScoredModel sim_model_;
  bool models_ready_ = false;
};

}  // namespace eid::core
