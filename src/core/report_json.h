// JSON serialization of daily detection reports. The system's output is an
// "ordered list of suspicious domains presented to SOC for further
// investigation" (§III-E); SOC tooling (SIEM dashboards, ticketing)
// consumes JSON, so DayReport and Incident render to a small, dependency-
// free JSON document with full string escaping.
#pragma once

#include <string>

#include "core/incidents.h"
#include "core/pipeline.h"

namespace eid::core {

/// Escape a string for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& text);

/// Render one day's report:
/// {"day":"YYYY-MM-DD","stats":{...},"cc_domains":[...],
///  "nohint":{"domains":[...],"hosts":[...]},"sochints":{...}}
std::string day_report_to_json(const DayReport& report);

/// Render one incident.
std::string incident_to_json(const Incident& incident);

}  // namespace eid::core
