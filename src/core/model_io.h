// Persistence for trained scoring models. Training happens once per month
// (§III-E) while operation is daily, so deployments persist the fitted
// regression + scaler + normalization between processes, like the profile
// histories. Format (line-oriented, locale-independent via hex-float):
//
//   eid-scored-model 1
//   threshold <t>
//   score <offset> <scale>
//   model <intercept> <r2> <residual_variance> <n_samples>
//   weights <w0> <w1> ...
//   stderrs <s0> ... (optional diagnostics)
//   tstats <t0> ...
//   scaler <min0> <max0> <min1> <max1> ...
#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "core/scorers.h"

namespace eid::core {

/// Render a model to its textual form (exact round-trip: doubles are
/// written as hex-floats).
std::string format_scored_model(const ScoredModel& model);

/// Parse; nullopt on bad magic or malformed/inconsistent content.
std::optional<ScoredModel> parse_scored_model(const std::string& text);

/// File convenience wrappers.
bool save_scored_model(const ScoredModel& model,
                       const std::filesystem::path& path);
std::optional<ScoredModel> load_scored_model(const std::filesystem::path& path);

}  // namespace eid::core
