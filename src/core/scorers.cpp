#include "core/scorers.h"

#include <algorithm>
#include <cmath>

namespace eid::core {

double EnterpriseScorer::cc_score(graph::DomainId domain) const {
  const features::CcFeatureRow row = features::extract_cc_features(
      state_.graph, domain, state_.automation, state_.ua_history, state_.whois,
      state_.today, state_.whois_defaults);
  auto values = row.as_array();
  return cc_.score(values);
}

double EnterpriseScorer::sim_score(graph::DomainId domain,
                                   std::span<const graph::DomainId> labeled) const {
  const features::SimilarityFeatureRow row = features::extract_similarity_features(
      state_.graph, domain, labeled, state_.ua_history, state_.whois, state_.today,
      state_.whois_defaults);
  auto values = row.as_array();
  return sim_.score(values);
}

bool EnterpriseScorer::detect_cc(graph::DomainId domain) const {
  if (!state_.rare.contains(domain)) return false;
  if (!state_.automation.is_automated(domain)) return false;
  return cc_score(domain) >= cc_.threshold;
}

double EnterpriseScorer::similarity_score(
    graph::DomainId domain, std::span<const graph::DomainId> labeled) const {
  return sim_score(domain, labeled);
}

bool LanlScorer::detect_cc(graph::DomainId domain) const {
  const features::DomainAutomation* agg = state_.automation.domain(domain);
  if (agg == nullptr || agg->pairs.size() < 2) return false;
  // At least two distinct hosts beaconing with similar periods.
  for (std::size_t i = 0; i < agg->pairs.size(); ++i) {
    for (std::size_t j = i + 1; j < agg->pairs.size(); ++j) {
      if (agg->pairs[i].host == agg->pairs[j].host) continue;
      if (std::abs(agg->pairs[i].period - agg->pairs[j].period) <=
          params_.period_match_seconds) {
        return true;
      }
    }
  }
  return false;
}

LanlScorer::Components LanlScorer::components(
    graph::DomainId domain, std::span<const graph::DomainId> labeled) const {
  Components c;
  const double hosts =
      static_cast<double>(state_.graph.domain_hosts(domain).size());
  c.connectivity = std::min(hosts, params_.connectivity_cap) / params_.connectivity_cap;
  const double gap = features::min_visit_gap(state_.graph, domain, labeled);
  c.timing = gap <= params_.timing_close_seconds ? 1.0 : 0.0;
  const features::IpProximity prox =
      features::ip_proximity(state_.graph, domain, labeled);
  if (prox.share24) {
    c.ip = 2.0;
  } else if (prox.share16) {
    c.ip = 1.0;
  }
  return c;
}

double LanlScorer::similarity_score(graph::DomainId domain,
                                    std::span<const graph::DomainId> labeled) const {
  const Components c = components(domain, labeled);
  // Sum of the three components, normalized by the maximum attainable value
  // (1 + 1 + 2), so scores live in [0, 1].
  return (c.connectivity + c.timing + c.ip) / 4.0;
}

std::vector<CcDetection> detect_cc_domains(const DayState& state,
                                           const ScoredModel& cc_model) {
  std::vector<CcDetection> out;
  for (const graph::DomainId domain : state.automation.automated_domains()) {
    if (!state.rare.contains(domain)) continue;
    const features::CcFeatureRow row = features::extract_cc_features(
        state.graph, domain, state.automation, state.ua_history, state.whois,
        state.today, state.whois_defaults);
    auto values = row.as_array();
    const double score = cc_model.score(values);
    if (score < cc_model.threshold) continue;
    CcDetection det;
    det.domain = domain;
    det.score = score;
    const features::DomainAutomation* agg = state.automation.domain(domain);
    det.period = agg != nullptr ? agg->dominant_period() : 0.0;
    det.auto_hosts = agg != nullptr ? agg->host_count() : 0;
    out.push_back(det);
  }
  std::stable_sort(out.begin(), out.end(), [](const CcDetection& a, const CcDetection& b) {
    return a.score > b.score;
  });
  return out;
}

}  // namespace eid::core
