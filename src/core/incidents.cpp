#include "core/incidents.h"

#include <algorithm>

namespace eid::core {

bool Incident::overlaps(std::span<const std::string> other_domains,
                        std::span<const std::string> other_hosts) const {
  for (const auto& domain : other_domains) {
    if (domains.contains(domain)) return true;
  }
  for (const auto& host : other_hosts) {
    if (hosts.contains(host)) return true;
  }
  return false;
}

namespace {

// Fold an evidence timestamp into a [first, last] span where 0 means
// "unrecorded" on either side.
void fold_evidence(util::TimePoint t, util::TimePoint& first,
                   util::TimePoint& last) {
  if (t == 0) return;
  first = first == 0 ? t : std::min(first, t);
  last = last == 0 ? t : std::max(last, t);
}

}  // namespace

void IncidentStore::merge_into(Incident& target, Incident& source) {
  target.first_seen = std::min(target.first_seen, source.first_seen);
  target.last_seen = std::max(target.last_seen, source.last_seen);
  target.days_active += source.days_active;
  fold_evidence(source.first_evidence, target.first_evidence,
                target.last_evidence);
  fold_evidence(source.last_evidence, target.first_evidence,
                target.last_evidence);
  target.domains.insert(source.domains.begin(), source.domains.end());
  target.hosts.insert(source.hosts.begin(), source.hosts.end());
}

void IncidentStore::index(const Incident& incident) {
  for (const auto& domain : incident.domains) domain_index_[domain] = incident.id;
  for (const auto& host : incident.hosts) host_index_[host] = incident.id;
}

int IncidentStore::ingest_community(util::Day day,
                                    std::span<const std::string> domains,
                                    std::span<const std::string> hosts) {
  return ingest_community(day, domains, hosts, /*evidence_time=*/0);
}

int IncidentStore::ingest_community(util::Day day,
                                    std::span<const std::string> domains,
                                    std::span<const std::string> hosts,
                                    util::TimePoint evidence_time) {
  if (domains.empty() && hosts.empty()) return -1;

  // Collect every live incident this community touches.
  std::set<int> touched;
  for (const auto& domain : domains) {
    auto it = domain_index_.find(domain);
    if (it != domain_index_.end()) touched.insert(it->second);
  }
  for (const auto& host : hosts) {
    auto it = host_index_.find(host);
    if (it != host_index_.end()) touched.insert(it->second);
  }

  int target_id;
  if (touched.empty()) {
    target_id = next_id_++;
    Incident incident;
    incident.id = target_id;
    incident.first_seen = day;
    incident.last_seen = day;
    storage_.push_back(std::move(incident));
    live_.push_back(true);
    ++live_count_;
  } else {
    target_id = *touched.begin();  // oldest id wins
  }
  Incident& target = storage_[static_cast<std::size_t>(target_id)];

  // Merge any other touched incidents into the target.
  for (const int other_id : touched) {
    if (other_id == target_id) continue;
    Incident& other = storage_[static_cast<std::size_t>(other_id)];
    merge_into(target, other);
    live_[static_cast<std::size_t>(other_id)] = false;
    --live_count_;
    other.domains.clear();
    other.hosts.clear();
  }

  target.last_seen = std::max(target.last_seen, day);
  target.first_seen = std::min(target.first_seen, day);
  fold_evidence(evidence_time, target.first_evidence, target.last_evidence);
  ++target.days_active;
  target.domains.insert(domains.begin(), domains.end());
  target.hosts.insert(hosts.begin(), hosts.end());
  index(target);
  return target_id;
}

bool IncidentStore::touches(std::span<const std::string> domains,
                            std::span<const std::string> hosts) const {
  for (const auto& domain : domains) {
    if (domain_index_.contains(domain)) return true;
  }
  for (const auto& host : hosts) {
    if (host_index_.contains(host)) return true;
  }
  return false;
}

std::vector<Incident> IncidentStore::incidents() const {
  std::vector<Incident> out;
  for (std::size_t i = 0; i < storage_.size(); ++i) {
    if (live_[i]) out.push_back(storage_[i]);
  }
  return out;
}

std::vector<Incident> IncidentStore::active_since(util::Day since) const {
  std::vector<Incident> out;
  for (std::size_t i = 0; i < storage_.size(); ++i) {
    if (live_[i] && storage_[i].last_seen >= since) out.push_back(storage_[i]);
  }
  return out;
}

void IncidentStore::restore(std::vector<Incident> incidents, int next_id) {
  for (const Incident& incident : incidents) {
    next_id = std::max(next_id, incident.id + 1);
  }
  storage_.clear();
  storage_.resize(static_cast<std::size_t>(std::max(next_id, 0)));
  live_.assign(storage_.size(), false);
  domain_index_.clear();
  host_index_.clear();
  live_count_ = 0;
  next_id_ = static_cast<int>(storage_.size());
  for (Incident& incident : incidents) {
    if (incident.id < 0) continue;  // defensively skip corrupt slots
    const auto slot = static_cast<std::size_t>(incident.id);
    if (live_[slot]) continue;      // duplicate id: first one wins
    live_[slot] = true;
    ++live_count_;
    storage_[slot] = std::move(incident);
    index(storage_[slot]);
  }
}

const Incident* IncidentStore::find(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= storage_.size()) return nullptr;
  if (!live_[static_cast<std::size_t>(id)]) return nullptr;
  return &storage_[static_cast<std::size_t>(id)];
}

}  // namespace eid::core
