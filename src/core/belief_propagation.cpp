#include "core/belief_propagation.h"

#include <algorithm>

namespace eid::core {
namespace {

/// Insertion-ordered set of ids: iteration order must be deterministic and
/// reflect discovery order (the paper returns domains ordered by when they
/// were labeled, i.e. by suspiciousness level).
class OrderedIdSet {
 public:
  bool insert(util::InternId id) {
    if (present_.contains(id)) return false;
    present_.insert(id);
    order_.push_back(id);
    return true;
  }
  bool contains(util::InternId id) const { return present_.contains(id); }
  const std::vector<util::InternId>& items() const { return order_; }
  std::size_t size() const { return order_.size(); }

 private:
  std::unordered_set<util::InternId> present_;
  std::vector<util::InternId> order_;
};

}  // namespace

const char* label_reason_name(LabelReason reason) {
  switch (reason) {
    case LabelReason::Seed: return "seed";
    case LabelReason::CandC: return "c&c";
    case LabelReason::Similarity: return "similarity";
  }
  return "?";
}

BpResult belief_propagation(const graph::DayGraph& graph,
                            const std::unordered_set<graph::DomainId>& rare,
                            std::span<const graph::HostId> seed_hosts,
                            std::span<const graph::DomainId> seed_domains,
                            const DomainScorer& scorer, const BpConfig& config) {
  BpResult result;
  OrderedIdSet hosts;   // H
  OrderedIdSet labeled; // M
  OrderedIdSet frontier_r;  // R: rare domains contacted by hosts in H

  const auto add_host = [&](graph::HostId host) -> bool {
    if (!hosts.insert(host)) return false;
    for (const graph::DomainId dom : graph.host_domains(host)) {
      if (rare.contains(dom)) frontier_r.insert(dom);  // host_rdom expansion
    }
    return true;
  };

  for (const graph::DomainId dom : seed_domains) {
    if (labeled.insert(dom)) {
      BpEvent event;
      event.iteration = 0;
      event.domain = dom;
      event.reason = LabelReason::Seed;
      result.trace.push_back(event);
    }
  }
  for (const graph::HostId host : seed_hosts) add_host(host);
  // Seed domains also imply their contacting hosts are suspect (no-hint
  // mode seeds BP with C&C domains plus the hosts contacting them).
  for (const graph::DomainId dom : seed_domains) {
    for (const graph::HostId host : graph.domain_hosts(dom)) add_host(host);
  }

  for (std::size_t iter = 1; iter <= config.max_iterations; ++iter) {
    std::vector<graph::DomainId> newly_labeled;  // N
    std::vector<BpEvent> events;

    // Pass 1: C&C-like domains among R \ M.
    for (const graph::DomainId dom : frontier_r.items()) {
      if (labeled.contains(dom)) continue;
      if (!scorer.detect_cc(dom)) continue;
      newly_labeled.push_back(dom);
      BpEvent event;
      event.iteration = iter;
      event.domain = dom;
      event.reason = LabelReason::CandC;
      events.push_back(event);
    }

    // Pass 2 (only when pass 1 found nothing): similarity labeling.
    if (newly_labeled.empty()) {
      double max_score = 0.0;
      graph::DomainId max_dom = graph::kNoId;
      for (const graph::DomainId dom : frontier_r.items()) {
        if (labeled.contains(dom)) continue;
        const double score = scorer.similarity_score(dom, labeled.items());
        if (max_dom == graph::kNoId || score > max_score) {
          max_score = score;
          max_dom = dom;
        }
        if (config.label_all_above_threshold && score >= config.sim_threshold) {
          newly_labeled.push_back(dom);
          BpEvent event;
          event.iteration = iter;
          event.domain = dom;
          event.reason = LabelReason::Similarity;
          event.score = score;
          events.push_back(event);
        }
      }
      if (!config.label_all_above_threshold) {
        if (max_dom != graph::kNoId && max_score >= config.sim_threshold) {
          newly_labeled.push_back(max_dom);
          BpEvent event;
          event.iteration = iter;
          event.domain = max_dom;
          event.reason = LabelReason::Similarity;
          event.score = max_score;
          events.push_back(event);
        } else if (max_dom != graph::kNoId) {
          result.stopped_by_threshold = true;
        }
      } else if (newly_labeled.empty() && max_dom != graph::kNoId) {
        result.stopped_by_threshold = true;
      }
    }

    if (newly_labeled.empty()) break;
    result.iterations = iter;

    // M <- M ∪ N;  H <- H ∪ dom_host[N];  R <- R ∪ host_rdom[new hosts].
    for (std::size_t i = 0; i < newly_labeled.size(); ++i) {
      const graph::DomainId dom = newly_labeled[i];
      labeled.insert(dom);
      result.new_domains.push_back(dom);
      for (const graph::HostId host : graph.domain_hosts(dom)) {
        if (add_host(host)) events[i].new_hosts.push_back(host);
      }
    }
    for (BpEvent& event : events) result.trace.push_back(std::move(event));
  }

  result.hosts = hosts.items();
  result.domains = labeled.items();
  return result;
}

}  // namespace eid::core
