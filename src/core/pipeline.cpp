#include "core/pipeline.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/executor.h"

namespace eid::core {
namespace {

/// Stage timing on the process registry. DayStageSeconds already measures
/// finalize/rare/automation per day for DayAnalysis consumers; these
/// histograms generalize that to a fleet view across every day any
/// Pipeline in the process analyzes.
struct PipelineMetrics {
  obs::Counter& days = obs::metrics().counter("eid_pipeline_days_finished_total");
  obs::Counter& events = obs::metrics().counter("eid_pipeline_day_events_total");
  obs::Histogram& finalize = obs::metrics().histogram(
      "eid_pipeline_finalize_seconds", obs::duration_buckets());
  obs::Histogram& rare = obs::metrics().histogram("eid_pipeline_rare_seconds",
                                                  obs::duration_buckets());
  obs::Histogram& automation = obs::metrics().histogram(
      "eid_pipeline_automation_seconds", obs::duration_buckets());
  obs::Histogram& report = obs::metrics().histogram(
      "eid_pipeline_report_seconds", obs::duration_buckets());
  obs::Histogram& history = obs::metrics().histogram(
      "eid_pipeline_history_commit_seconds", obs::duration_buckets());
};

PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics metrics;
  return metrics;
}

ml::Matrix to_matrix(
    const std::vector<std::array<double, features::kCcFeatureCount>>& rows) {
  ml::Matrix x(rows.size(), features::kCcFeatureCount);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < features::kCcFeatureCount; ++c) {
      x.at(r, c) = rows[r][c];
    }
  }
  return x;
}

ml::Matrix to_matrix_sim(
    const std::vector<std::array<double, features::kSimFeatureCount>>& rows) {
  ml::Matrix x(rows.size(), features::kSimFeatureCount);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < features::kSimFeatureCount; ++c) {
      x.at(r, c) = rows[r][c];
    }
  }
  return x;
}

}  // namespace

Pipeline::Pipeline(PipelineConfig config, const features::WhoisSource& whois)
    : config_(config),
      whois_(whois),
      ua_history_(config.ua_rare_threshold) {
  cc_model_.threshold = config.cc_threshold;
  sim_model_.threshold = config.sim_threshold;
  rebuild_executor();
}

void Pipeline::rebuild_executor() {
  const Parallelism& p = config_.parallelism;
  // The widest fan-out is max(threads, shards) ranges, one of which the
  // calling thread runs itself; day pipelining needs one more worker to
  // carry the in-flight commit while the caller ingests.
  std::size_t workers = std::max({p.threads, p.shards, std::size_t{1}}) - 1;
  if (p.pipeline_depth > 1) ++workers;
  if (workers == 0) {
    executor_.reset();
    return;
  }
  if (executor_ && executor_->worker_count() == workers) return;
  executor_ = std::make_shared<util::Executor>(workers);
}

void Pipeline::profile_day(const std::vector<logs::ConnEvent>& events) {
  update_histories(events);
}

void Pipeline::finish_profile(ProfileAccumulator&& accumulator) {
  const obs::TraceSpan span("profile_commit");
  domain_history_.update(
      {accumulator.domains_.begin(), accumulator.domains_.end()});
  for (const auto& [ua, hosts] : accumulator.ua_hosts_) {
    for (const auto& host : hosts) ua_history_.observe(ua, host);
  }
}

void Pipeline::update_histories(const std::vector<logs::ConnEvent>& events) {
  std::unordered_set<std::string> domains;
  for (const auto& event : events) domains.insert(event.domain);
  domain_history_.update({domains.begin(), domains.end()});
  ua_history_.observe_day(events);
}

void Pipeline::update_histories(const graph::DayGraph& graph) {
  const obs::TraceSpan span("history_commit");
  const auto start = std::chrono::steady_clock::now();
  profile::update_history(domain_history_, graph);
  // for_each_edge visits in (host, domain) order; the histories only take
  // set unions, so they never depended on the old hash iteration order.
  graph.for_each_edge([this, &graph](graph::HostId host, graph::DomainId,
                                     const graph::EdgeData& edge) {
    for (const graph::UaId ua : edge.user_agents) {
      ua_history_.observe(graph.ua_name(ua), graph.host_name(host));
    }
  });
  pipeline_metrics().history.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
}

DayAnalysis Pipeline::analyze_day(const std::vector<logs::ConnEvent>& events,
                                  util::Day day) const {
  DayAccumulator accumulator = begin_day(day);
  accumulator.add_chunk(events);
  return finish_day(std::move(accumulator));
}

DayAnalysis Pipeline::finish_day(DayAccumulator&& accumulator) const {
  return finish_day_graph(accumulator.day_, std::move(accumulator.graph_),
                          accumulator.events_);
}

DayAnalysis Pipeline::finish_day_graph(util::Day day, graph::DayGraph&& graph,
                                       std::size_t events) const {
  using clock = std::chrono::steady_clock;
  const auto seconds_since = [](clock::time_point start) {
    return std::chrono::duration<double>(clock::now() - start).count();
  };
  const std::size_t threads = config_.parallelism.threads;
  PipelineMetrics& metrics = pipeline_metrics();
  const obs::TraceSpan day_span("finish_day");

  DayAnalysis analysis;
  analysis.day = day;
  analysis.event_count = events;
  analysis.graph = std::move(graph);
  auto stage_start = clock::now();
  {
    const obs::TraceSpan span("csr_finalize");
    analysis.graph.finalize(threads);
  }
  analysis.stage_seconds.finalize = seconds_since(stage_start);
  metrics.finalize.observe(analysis.stage_seconds.finalize);

  stage_start = clock::now();
  profile::RareExtraction rare;
  {
    const obs::TraceSpan span("rare_extraction");
    rare = profile::extract_rare_destinations(
        analysis.graph, domain_history_, config_.popularity_threshold, threads,
        executor_.get());
    if (top_sites_ != nullptr) {
      rare.rare_domains = profile::filter_top_sites(analysis.graph,
                                                    rare.rare_domains,
                                                    *top_sites_);
    }
  }
  analysis.rare.insert(rare.rare_domains.begin(), rare.rare_domains.end());
  analysis.new_domains = rare.new_domains;
  analysis.total_domains = rare.total_domains;
  analysis.stage_seconds.rare = seconds_since(stage_start);
  metrics.rare.observe(analysis.stage_seconds.rare);

  stage_start = clock::now();
  const timing::PeriodicityDetector detector(config_.periodicity);
  {
    const obs::TraceSpan span("automation_scan");
    analysis.automation = features::AutomationAnalysis::analyze(
        analysis.graph, rare.rare_domains, detector, threads, executor_.get());
  }
  analysis.stage_seconds.automation = seconds_since(stage_start);
  metrics.automation.observe(analysis.stage_seconds.automation);
  metrics.days.add(1);
  metrics.events.add(analysis.event_count);
  if (whois_samples_ > 0) {
    analysis.whois_defaults.age_days =
        whois_age_sum_ / static_cast<double>(whois_samples_);
    analysis.whois_defaults.validity_days =
        whois_validity_sum_ / static_cast<double>(whois_samples_);
  }
  return analysis;
}

DayState Pipeline::make_state(const DayAnalysis& analysis) const {
  return DayState{analysis.graph, analysis.rare,     analysis.automation,
                  ua_history_,    whois_,            analysis.day,
                  analysis.whois_defaults};
}

void Pipeline::train_day(const std::vector<logs::ConnEvent>& events, util::Day day,
                         const LabelFn& intel) {
  train_from_analysis(analyze_day(events, day), intel);
  update_histories(events);
}

void Pipeline::train_from_analysis(const DayAnalysis& analysis,
                                   const LabelFn& intel) {
  const util::Day day = analysis.day;

  // C&C rows: every rare automated domain, labeled by the intel feed.
  std::vector<graph::DomainId> reported_automated;
  for (const graph::DomainId domain : analysis.automation.automated_domains()) {
    if (!analysis.rare.contains(domain)) continue;
    const features::CcFeatureRow row = features::extract_cc_features(
        analysis.graph, domain, analysis.automation, ua_history_, whois_, day,
        analysis.whois_defaults);
    if (row.whois_resolved) {
      whois_age_sum_ += row.dom_age;
      whois_validity_sum_ += row.dom_validity;
      ++whois_samples_;
    }
    const bool reported = intel(analysis.graph.domain_name(domain));
    cc_rows_.push_back(row.as_array());
    cc_labels_.push_back(reported ? 1.0 : 0.0);
    if (reported) reported_automated.push_back(domain);
  }

  // Similarity rows: rare non-automated domains contacted by hosts of the
  // confirmed (reported) C&C domains, with features relative to that set.
  if (!reported_automated.empty()) {
    std::unordered_set<graph::HostId> compromised;
    for (const graph::DomainId domain : reported_automated) {
      for (const graph::HostId host : analysis.graph.domain_hosts(domain)) {
        compromised.insert(host);
      }
    }
    std::unordered_set<graph::DomainId> candidates;
    for (const graph::HostId host : compromised) {
      for (const graph::DomainId domain : analysis.graph.host_domains(host)) {
        if (!analysis.rare.contains(domain)) continue;
        if (analysis.automation.is_automated(domain)) continue;
        candidates.insert(domain);
      }
    }
    std::vector<graph::DomainId> ordered(candidates.begin(), candidates.end());
    std::sort(ordered.begin(), ordered.end());
    for (const graph::DomainId domain : ordered) {
      const features::SimilarityFeatureRow row =
          features::extract_similarity_features(analysis.graph, domain,
                                                reported_automated, ua_history_,
                                                whois_, day,
                                                analysis.whois_defaults);
      sim_rows_.push_back(row.as_array());
      sim_labels_.push_back(intel(analysis.graph.domain_name(domain)) ? 1.0 : 0.0);
    }
  }
}

TrainingReport Pipeline::finalize_training() {
  TrainingReport report;
  report.cc_rows = cc_rows_.size();
  report.sim_rows = sim_rows_.size();
  for (const double l : cc_labels_) report.cc_positive += l > 0.5 ? 1 : 0;
  for (const double l : sim_labels_) report.sim_positive += l > 0.5 ? 1 : 0;

  if (cc_rows_.size() > features::kCcFeatureCount + 1) {
    const ml::Matrix raw = to_matrix(cc_rows_);
    cc_model_.scaler.fit(raw);
    const ml::Matrix scaled = cc_model_.scaler.transform(raw);
    cc_model_.model = ml::fit_linear_regression(scaled, cc_labels_);
    report.cc_model = cc_model_.model;
    // Normalize so training scores span [0, 1] (see ScoredModel).
    std::vector<double> raw_scores(cc_rows_.size());
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t r = 0; r < cc_rows_.size(); ++r) {
      std::array<double, features::kCcFeatureCount> row;
      for (std::size_t c = 0; c < row.size(); ++c) row[c] = scaled.at(r, c);
      raw_scores[r] = cc_model_.model.predict(row);
      if (r == 0 || raw_scores[r] < lo) lo = raw_scores[r];
      if (r == 0 || raw_scores[r] > hi) hi = raw_scores[r];
    }
    cc_model_.score_offset = lo;
    cc_model_.score_scale = hi - lo > 1e-12 ? hi - lo : 1.0;
    for (std::size_t r = 0; r < cc_rows_.size(); ++r) {
      report.cc_training_scores.emplace_back(
          (raw_scores[r] - cc_model_.score_offset) / cc_model_.score_scale,
          cc_labels_[r] > 0.5);
    }
  }
  if (sim_rows_.size() > features::kSimFeatureCount + 1) {
    const ml::Matrix raw = to_matrix_sim(sim_rows_);
    sim_model_.scaler.fit(raw);
    const ml::Matrix scaled = sim_model_.scaler.transform(raw);
    sim_model_.model = ml::fit_linear_regression(scaled, sim_labels_);
    report.sim_model = sim_model_.model;
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t r = 0; r < sim_rows_.size(); ++r) {
      std::array<double, features::kSimFeatureCount> row;
      for (std::size_t c = 0; c < row.size(); ++c) row[c] = scaled.at(r, c);
      const double s = sim_model_.model.predict(row);
      if (r == 0 || s < lo) lo = s;
      if (r == 0 || s > hi) hi = s;
    }
    sim_model_.score_offset = lo;
    sim_model_.score_scale = hi - lo > 1e-12 ? hi - lo : 1.0;
  }
  models_ready_ = true;
  return report;
}

void Pipeline::set_models(ScoredModel cc, ScoredModel sim) {
  cc_model_ = std::move(cc);
  sim_model_ = std::move(sim);
  models_ready_ = true;
}

std::vector<ScoredDomain> Pipeline::score_automated(
    const DayAnalysis& analysis) const {
  const DayState state = make_state(analysis);
  ScoredModel sweep = cc_model_;
  sweep.threshold = -1e18;  // keep every automated rare domain
  std::vector<ScoredDomain> out;
  for (const CcDetection& det : detect_cc_domains(state, sweep)) {
    out.push_back(ScoredDomain{analysis.graph.domain_name(det.domain), det.score,
                               det.period, det.auto_hosts});
  }
  return out;
}

std::vector<ScoredDomain> Pipeline::detect_cc(const DayAnalysis& analysis,
                                              std::optional<double> tc) const {
  const DayState state = make_state(analysis);
  ScoredModel sweep = cc_model_;
  sweep.threshold = tc.value_or(config_.cc_threshold);
  std::vector<ScoredDomain> out;
  for (const CcDetection& det : detect_cc_domains(state, sweep)) {
    out.push_back(ScoredDomain{analysis.graph.domain_name(det.domain), det.score,
                               det.period, det.auto_hosts});
  }
  return out;
}

BpRunReport Pipeline::report_from(const graph::DayGraph& graph,
                                  const BpResult& result) const {
  BpRunReport report;
  report.iterations = result.iterations;
  for (const BpEvent& event : result.trace) {
    if (event.reason == LabelReason::Seed) continue;
    DetectedDomain det;
    det.name = graph.domain_name(event.domain);
    det.score = event.score;
    det.reason = event.reason;
    det.iteration = event.iteration;
    report.domains.push_back(std::move(det));
  }
  for (const graph::HostId host : result.hosts) {
    report.hosts.push_back(graph.host_name(host));
  }
  return report;
}

BpRunReport Pipeline::run_bp_nohint(const DayAnalysis& analysis,
                                    const std::vector<ScoredDomain>& cc_domains,
                                    std::optional<double> ts) const {
  const DayState state = make_state(analysis);
  ScoredModel sim = sim_model_;
  sim.threshold = ts.value_or(config_.sim_threshold);
  const EnterpriseScorer scorer(state, cc_model_, sim);

  std::vector<graph::DomainId> seeds;
  for (const ScoredDomain& det : cc_domains) {
    const graph::DomainId id = analysis.graph.find_domain(det.name);
    if (id != graph::kNoId) seeds.push_back(id);
  }
  BpConfig bp;
  bp.sim_threshold = sim.threshold;
  bp.max_iterations = config_.bp_max_iterations;
  const BpResult result =
      belief_propagation(analysis.graph, analysis.rare, {}, seeds, scorer, bp);
  return report_from(analysis.graph, result);
}

BpRunReport Pipeline::run_bp_sochints(const DayAnalysis& analysis,
                                      const SocSeeds& seeds,
                                      std::optional<double> ts) const {
  const DayState state = make_state(analysis);
  ScoredModel sim = sim_model_;
  sim.threshold = ts.value_or(config_.sim_threshold);
  const EnterpriseScorer scorer(state, cc_model_, sim);

  std::vector<graph::HostId> seed_hosts;
  for (const std::string& host : seeds.hosts) {
    const graph::HostId id = analysis.graph.find_host(host);
    if (id != graph::kNoId) seed_hosts.push_back(id);
  }
  std::vector<graph::DomainId> seed_domains;
  for (const std::string& domain : seeds.domains) {
    const graph::DomainId id = analysis.graph.find_domain(domain);
    if (id != graph::kNoId) seed_domains.push_back(id);
  }
  BpConfig bp;
  bp.sim_threshold = sim.threshold;
  bp.max_iterations = config_.bp_max_iterations;
  const BpResult result = belief_propagation(analysis.graph, analysis.rare,
                                             seed_hosts, seed_domains, scorer, bp);
  return report_from(analysis.graph, result);
}

DayReport Pipeline::report_day(const DayAnalysis& analysis,
                               const SocSeeds& seeds) const {
  const obs::TraceSpan day_span("report_day");
  const auto report_start = std::chrono::steady_clock::now();
  DayReport report;
  report.day = analysis.day;
  report.events = analysis.event_count;
  report.hosts = analysis.graph.host_count();
  report.domains = analysis.graph.domain_count();
  report.rare_domains = analysis.rare.size();
  report.automated_pairs = analysis.automation.pair_count();

  {
    const obs::TraceSpan span("score_automated");
    report.automated_scores = score_automated(analysis);
    report.cc_domains = detect_cc(analysis);
  }
  {
    const obs::TraceSpan span("bp_nohint");
    report.nohint = run_bp_nohint(analysis, report.cc_domains);
  }
  if (!seeds.hosts.empty() || !seeds.domains.empty()) {
    const obs::TraceSpan span("bp_sochints");
    report.sochints = run_bp_sochints(analysis, seeds);
  }
  pipeline_metrics().report.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    report_start)
          .count());
  return report;
}

DayReport Pipeline::run_day(const std::vector<logs::ConnEvent>& events,
                            util::Day day, const SocSeeds& seeds) {
  const DayAnalysis analysis = analyze_day(events, day);
  DayReport report = report_day(analysis, seeds);
  update_histories(events);
  return report;
}

void Pipeline::export_training_rows(std::size_t cc_first, std::size_t sim_first,
                                    std::vector<double>& cc,
                                    std::vector<double>& cc_labels,
                                    std::vector<double>& sim,
                                    std::vector<double>& sim_labels) const {
  cc.clear();
  cc_labels.clear();
  sim.clear();
  sim_labels.clear();
  cc_first = std::min(cc_first, cc_rows_.size());
  sim_first = std::min(sim_first, sim_rows_.size());
  cc.reserve((cc_rows_.size() - cc_first) * features::kCcFeatureCount);
  for (std::size_t i = cc_first; i < cc_rows_.size(); ++i) {
    cc.insert(cc.end(), cc_rows_[i].begin(), cc_rows_[i].end());
  }
  cc_labels.assign(cc_labels_.begin() + static_cast<std::ptrdiff_t>(cc_first),
                   cc_labels_.end());
  sim.reserve((sim_rows_.size() - sim_first) * features::kSimFeatureCount);
  for (std::size_t i = sim_first; i < sim_rows_.size(); ++i) {
    sim.insert(sim.end(), sim_rows_[i].begin(), sim_rows_[i].end());
  }
  sim_labels.assign(sim_labels_.begin() + static_cast<std::ptrdiff_t>(sim_first),
                    sim_labels_.end());
}

bool Pipeline::import_training_rows(std::span<const double> cc,
                                    std::span<const double> cc_labels,
                                    std::span<const double> sim,
                                    std::span<const double> sim_labels) {
  if (cc.size() != cc_labels.size() * features::kCcFeatureCount ||
      sim.size() != sim_labels.size() * features::kSimFeatureCount) {
    return false;
  }
  cc_rows_.reserve(cc_rows_.size() + cc_labels.size());
  for (std::size_t i = 0; i < cc_labels.size(); ++i) {
    std::array<double, features::kCcFeatureCount> row;
    std::copy_n(cc.begin() +
                    static_cast<std::ptrdiff_t>(i * features::kCcFeatureCount),
                features::kCcFeatureCount, row.begin());
    cc_rows_.push_back(row);
  }
  cc_labels_.insert(cc_labels_.end(), cc_labels.begin(), cc_labels.end());
  sim_rows_.reserve(sim_rows_.size() + sim_labels.size());
  for (std::size_t i = 0; i < sim_labels.size(); ++i) {
    std::array<double, features::kSimFeatureCount> row;
    std::copy_n(sim.begin() +
                    static_cast<std::ptrdiff_t>(i * features::kSimFeatureCount),
                features::kSimFeatureCount, row.begin());
    sim_rows_.push_back(row);
  }
  sim_labels_.insert(sim_labels_.end(), sim_labels.begin(), sim_labels.end());
  return true;
}

}  // namespace eid::core
