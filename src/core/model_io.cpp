#include "core/model_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace eid::core {
namespace {

constexpr std::string_view kMagic = "eid-scored-model 1";

std::string hexf(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

bool parse_double_field(std::string_view text, double& out) {
  // Hex-floats via strtod (from_chars hex support is inconsistent).
  const std::string owned(text);
  char* end = nullptr;
  out = std::strtod(owned.c_str(), &end);
  return end == owned.c_str() + owned.size() && !owned.empty();
}

bool parse_doubles(std::span<const std::string_view> fields,
                   std::vector<double>& out) {
  out.clear();
  out.reserve(fields.size());
  for (const auto field : fields) {
    double value = 0.0;
    if (!parse_double_field(field, value)) return false;
    out.push_back(value);
  }
  return true;
}

}  // namespace

std::string format_scored_model(const ScoredModel& model) {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "threshold " << hexf(model.threshold) << '\n';
  out << "score " << hexf(model.score_offset) << ' ' << hexf(model.score_scale)
      << '\n';
  out << "model " << hexf(model.model.intercept) << ' '
      << hexf(model.model.r_squared) << ' ' << hexf(model.model.residual_variance)
      << ' ' << model.model.n_samples << '\n';
  const auto row = [&out](const char* key, const std::vector<double>& values) {
    out << key;
    for (const double v : values) out << ' ' << hexf(v);
    out << '\n';
  };
  row("weights", model.model.weights);
  row("stderrs", model.model.std_errors);
  row("tstats", model.model.t_stats);
  out << "scaler";
  for (std::size_t i = 0; i < model.scaler.n_features(); ++i) {
    out << ' ' << hexf(model.scaler.mins()[i]) << ' ' << hexf(model.scaler.maxs()[i]);
  }
  out << '\n';
  return out.str();
}

std::optional<ScoredModel> parse_scored_model(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return std::nullopt;
  ScoredModel model;
  bool saw_threshold = false;
  bool saw_weights = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = util::split(line, ' ');
    const std::string_view key = fields[0];
    const std::span<const std::string_view> rest(fields.data() + 1,
                                                 fields.size() - 1);
    if (key == "threshold") {
      if (rest.size() != 1 || !parse_double_field(rest[0], model.threshold)) {
        return std::nullopt;
      }
      saw_threshold = true;
    } else if (key == "score") {
      if (rest.size() != 2 || !parse_double_field(rest[0], model.score_offset) ||
          !parse_double_field(rest[1], model.score_scale) ||
          model.score_scale == 0.0) {
        return std::nullopt;
      }
    } else if (key == "model") {
      if (rest.size() != 4 || !parse_double_field(rest[0], model.model.intercept) ||
          !parse_double_field(rest[1], model.model.r_squared) ||
          !parse_double_field(rest[2], model.model.residual_variance)) {
        return std::nullopt;
      }
      std::uint64_t n = 0;
      if (std::sscanf(std::string(rest[3]).c_str(), "%" PRIu64, &n) != 1) {
        return std::nullopt;
      }
      model.model.n_samples = n;
    } else if (key == "weights") {
      if (!parse_doubles(rest, model.model.weights)) return std::nullopt;
      saw_weights = true;
    } else if (key == "stderrs") {
      if (!parse_doubles(rest, model.model.std_errors)) return std::nullopt;
    } else if (key == "tstats") {
      if (!parse_doubles(rest, model.model.t_stats)) return std::nullopt;
    } else if (key == "scaler") {
      if (rest.size() % 2 != 0) return std::nullopt;
      std::vector<double> mins;
      std::vector<double> maxs;
      for (std::size_t i = 0; i < rest.size(); i += 2) {
        double lo = 0.0;
        double hi = 0.0;
        if (!parse_double_field(rest[i], lo) || !parse_double_field(rest[i + 1], hi)) {
          return std::nullopt;
        }
        mins.push_back(lo);
        maxs.push_back(hi);
      }
      model.scaler.restore(std::move(mins), std::move(maxs));
    } else {
      return std::nullopt;  // unknown section: likely corrupt
    }
  }
  if (!saw_threshold || !saw_weights) return std::nullopt;
  // Consistency: scaler must cover the weights.
  if (model.scaler.n_features() != model.model.weights.size()) return std::nullopt;
  return model;
}

bool save_scored_model(const ScoredModel& model,
                       const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << format_scored_model(model);
  return static_cast<bool>(out);
}

std::optional<ScoredModel> load_scored_model(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_scored_model(buffer.str());
}

}  // namespace eid::core
