// Cross-day incident aggregation.
//
// The paper's system emits per-day detections and leaves "monitoring
// activity to these suspicious domains over longer periods of time" as
// future work (§VIII). This store implements that follow-up: each day's
// detected community (domains + implicated hosts) is merged into ongoing
// *incidents*, where two communities belong to the same incident when they
// share any domain or any host — the same locality signals belief
// propagation exploits within a day, applied across days. The result is
// the campaign-level view a SOC tracks tickets by.
#pragma once

#include <cstddef>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace eid::core {

/// One ongoing incident (campaign-level aggregate).
struct Incident {
  int id = 0;
  util::Day first_seen = 0;
  util::Day last_seen = 0;
  std::size_t days_active = 0;          ///< days on which it grew or recurred
  /// Event-time span of the evidence behind the incident, when the caller
  /// supplies it (the continuous engine does; day-batched callers that
  /// only know the day leave it at 0 = unrecorded).
  util::TimePoint first_evidence = 0;
  util::TimePoint last_evidence = 0;
  std::set<std::string> domains;        ///< all detected domains so far
  std::set<std::string> hosts;          ///< all implicated hosts so far

  bool overlaps(std::span<const std::string> other_domains,
                std::span<const std::string> other_hosts) const;
};

class IncidentStore {
 public:
  /// Merge one detected community into the store. Communities that share a
  /// domain or host with one or more existing incidents are merged into
  /// them (and those incidents into each other); otherwise a new incident
  /// opens. Returns the id of the (possibly merged) incident, or -1 for an
  /// empty community.
  int ingest_community(util::Day day, std::span<const std::string> domains,
                       std::span<const std::string> hosts);

  /// Same, additionally recording the event time of the earliest evidence
  /// behind this community (continuous mode's event-time → emission-time
  /// latency bookkeeping). evidence_time == 0 means unrecorded.
  int ingest_community(util::Day day, std::span<const std::string> domains,
                       std::span<const std::string> hosts,
                       util::TimePoint evidence_time);

  /// Would this community merge into an existing incident (shares a domain
  /// or host), or open a new one?
  bool touches(std::span<const std::string> domains,
               std::span<const std::string> hosts) const;

  /// All incidents, oldest first. Merged incidents keep the older id.
  std::vector<Incident> incidents() const;

  /// Incidents seen on or after `since`.
  std::vector<Incident> active_since(util::Day since) const;

  const Incident* find(int id) const;

  std::size_t size() const { return live_count_; }

  /// Next id ingest_community() would assign (checkpointing: restoring
  /// with the same next_id keeps post-restore ids identical to an
  /// uninterrupted run even after merges retired high slots).
  int next_id() const { return next_id_; }

  /// Replace the store's contents with persisted incidents. Each incident
  /// returns to the slot its id names (ids must be unique, >= 0 and come
  /// from a store with the given next_id, i.e. id < next_id).
  void restore(std::vector<Incident> incidents, int next_id);

 private:
  void merge_into(Incident& target, Incident& source);
  void index(const Incident& incident);

  std::vector<Incident> storage_;            ///< slot per ever-created incident
  std::vector<bool> live_;                   ///< slot still a real incident?
  std::unordered_map<std::string, int> domain_index_;
  std::unordered_map<std::string, int> host_index_;
  std::size_t live_count_ = 0;
  int next_id_ = 0;
};

}  // namespace eid::core
