#include "util/ipv4.h"

#include <cstdio>

#include "util/strings.h"

namespace eid::util {

std::string format_ipv4(Ipv4 ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip.value >> 24) & 0xff,
                (ip.value >> 16) & 0xff, (ip.value >> 8) & 0xff, ip.value & 0xff);
  return buf;
}

std::optional<Ipv4> parse_ipv4(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    if (!is_all_digits(part) || part.size() > 3) return std::nullopt;
    std::uint32_t octet = 0;
    for (char c : part) octet = octet * 10 + static_cast<std::uint32_t>(c - '0');
    if (octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4{value};
}

}  // namespace eid::util
