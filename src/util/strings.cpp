#include "util/strings.h"

#include <cctype>

namespace eid::util {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool is_all_digits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace eid::util
