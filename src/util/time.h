// Time primitives used throughout the detection pipeline.
//
// All log records carry a TimePoint: seconds since the Unix epoch, UTC.
// Daily batch processing (profiles, rare-destination extraction, belief
// propagation runs) is keyed by Day: whole days since the Unix epoch.
// Civil-date conversion uses the Howard Hinnant / Cassio Neri algorithms,
// which are exact over the entire int64 range we care about.
#pragma once

#include <cstdint>
#include <string>

namespace eid::util {

/// Seconds since 1970-01-01T00:00:00Z.
using TimePoint = std::int64_t;

/// Whole days since 1970-01-01 (UTC).
using Day = std::int64_t;

inline constexpr std::int64_t kSecondsPerDay = 86400;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerMinute = 60;

/// A calendar date in the proleptic Gregorian calendar.
struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

/// Days since epoch for a civil date (exact; negative years allowed).
Day days_from_civil(CivilDate date);

/// Inverse of days_from_civil.
CivilDate civil_from_days(Day day);

/// Convenience: days since epoch for year/month/day.
inline Day make_day(int year, int month, int day) {
  return days_from_civil(CivilDate{year, month, day});
}

/// TimePoint at midnight UTC of the given day.
inline TimePoint day_start(Day day) { return day * kSecondsPerDay; }

/// Day containing the given time point (floor division, correct for t < 0).
inline Day day_of(TimePoint t) {
  return t >= 0 ? t / kSecondsPerDay : (t - (kSecondsPerDay - 1)) / kSecondsPerDay;
}

/// Seconds elapsed since midnight UTC of the day containing t.
inline std::int64_t seconds_into_day(TimePoint t) { return t - day_start(day_of(t)); }

/// TimePoint for a civil date plus time-of-day.
TimePoint make_time(int year, int month, int day, int hour = 0, int minute = 0,
                    int second = 0);

/// "YYYY-MM-DD" for a day.
std::string format_day(Day day);

/// "YYYY-MM-DDTHH:MM:SSZ" for a time point.
std::string format_time(TimePoint t);

/// Parse "YYYY-MM-DD"; returns false on malformed input.
bool parse_day(const std::string& text, Day& out);

/// Parse "YYYY-MM-DDTHH:MM:SS[Z]"; returns false on malformed input.
bool parse_time(const std::string& text, TimePoint& out);

}  // namespace eid::util
