// Persistent worker pool behind the day-analysis engine.
//
// util::parallel_ranges spawns fresh std::threads for every stage of every
// day, so at enterprise volume the spawn/join cost is paid hundreds of
// times per day and swamps the parallel win (BENCH_perf.json recorded
// 8-thread analysis at 0.86x of 1-thread before this existed). The
// Executor keeps a fixed set of long-lived workers — spawned once, parked
// on a condition variable when idle, fed through per-worker single-
// consumer ring queues — and exposes the same deterministic range-fan-out
// contract: partitions come from util::detail::partition_ranges, i.e. they
// depend only on (n, n_threads) and never on scheduling or worker
// availability, so per-range slot writers stay bit-identical to the
// spawning path for every pool size.
//
// Two entry points:
//
//   * parallel_ranges(n, n_threads, fn) — blocking fan-out. The calling
//     thread runs range 0 (and any ranges the pool cannot take) while the
//     workers run the rest; returns after every range finished. A nested
//     call from a worker thread runs all ranges inline (same partition,
//     ascending order), so tasks may freely use parallel helpers without
//     deadlocking the pool.
//
//   * submit(task) — run one long task (a day's finalize/score/commit
//     stage in the pipelined multi-day path) on a worker and return a
//     TaskHandle; wait() blocks until completion and rethrows anything the
//     task threw. The chosen worker is marked long-busy so concurrent
//     fan-outs route around it instead of queueing behind a whole day.
//
// Thread-safety: any thread may call parallel_ranges/submit concurrently
// (producers to one worker serialize on a small mutex; each ring has
// exactly one consumer). The destructor drains queued work, then joins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace.h"
#include "util/parallel.h"

namespace eid::util {

class Executor {
 public:
  /// Completion handle for one submit()ted task. wait() blocks until the
  /// task finished and rethrows its exception, if any. Destroying a handle
  /// without waiting is safe — the task still runs to completion. Once
  /// wait() returns, the task object and everything it captured have been
  /// destroyed (so a capture may hold, e.g., the last non-caller reference
  /// to shared state without racing the waiter's teardown).
  class TaskHandle {
   public:
    TaskHandle() = default;

    bool valid() const { return state_ != nullptr; }

    void wait() {
      if (!state_) return;
      std::unique_lock lock(state_->mutex);
      state_->cv.wait(lock, [&] { return state_->done; });
      const std::exception_ptr error = state_->error;
      lock.unlock();
      state_ = nullptr;
      if (error) std::rethrow_exception(error);
    }

    /// Implementation detail shared with the worker side.
    struct State {
      std::mutex mutex;
      std::condition_variable cv;
      bool done = false;
      std::exception_ptr error;
    };

   private:
    friend class Executor;
    explicit TaskHandle(std::shared_ptr<State> state)
        : state_(std::move(state)) {}

    std::shared_ptr<State> state_;
  };

  /// Spawns `n_workers` long-lived threads (0 is valid: every call runs
  /// inline, useful as a sequential stand-in).
  explicit Executor(std::size_t n_workers);

  /// Drains queued tasks, then stops and joins every worker — submitted
  /// work is never dropped on shutdown.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// True when the calling thread is one of this executor's workers.
  bool on_worker_thread() const;

  /// Run fn(range_index, begin, end) over [0, n) split into up to
  /// n_threads contiguous ranges — the exact partition of
  /// util::parallel_ranges (size slots with util::range_count). fn must
  /// only touch state owned by its range. Blocks until all ranges are
  /// done; the first exception thrown by any range is rethrown here.
  template <typename Fn>
  void parallel_ranges(std::size_t n, std::size_t n_threads, Fn&& fn) {
    const auto [chunk, ranges] = detail::partition_ranges(n, n_threads);
    if (ranges == 0) return;
    if (ranges == 1 || workers_.empty() || on_worker_thread()) {
      // Inline (and for nested worker-side calls: sequential, ascending) —
      // identical ranges, identical results.
      for (std::size_t w = 0; w < ranges; ++w) {
        const std::size_t begin = w * chunk;
        fn(w, begin, std::min(begin + chunk, n));
      }
      return;
    }
    const obs::TraceSpan span("executor_fan_out", "executor");
    FanOut block;
    block.fn = &fn;
    block.chunk = chunk;
    block.n = n;
    block.run = [](FanOut& b, std::size_t w) {
      auto& f = *static_cast<std::remove_reference_t<Fn>*>(b.fn);
      const std::size_t begin = w * b.chunk;
      f(w, begin, std::min(begin + b.chunk, b.n));
    };
    // Hand ranges 1..ranges-1 to the pool (as many as fit); the caller
    // covers range 0 plus whatever the pool could not take, then waits.
    const std::size_t queued = dispatch_fan_out(block, ranges - 1);
    const auto run_local = [&](std::size_t w) {
      const std::size_t begin = w * chunk;
      try {
        fn(w, begin, std::min(begin + chunk, n));
      } catch (...) {
        std::lock_guard lock(block.mutex);
        if (!block.error) block.error = std::current_exception();
      }
    };
    for (std::size_t w = queued + 1; w < ranges; ++w) run_local(w);
    run_local(0);
    wait_fan_out(block);
    if (block.error) std::rethrow_exception(block.error);
  }

  /// Run `task` on one worker (least-loaded by long tasks); inline when the
  /// pool is empty, saturated, or the caller is itself a worker.
  TaskHandle submit(std::function<void()> task);

  /// Tasks handed to pool workers so far (fan-out ranges + submits) —
  /// observability for tests asserting the pool, not spawning, does the
  /// work.
  std::uint64_t tasks_dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }

 private:
  /// Control block of one in-flight parallel_ranges call; lives on the
  /// caller's stack, so workers must never touch it after the final
  /// decrement-and-notify (done under `mutex` for exactly that reason).
  struct FanOut {
    void (*run)(FanOut&, std::size_t) = nullptr;
    void* fn = nullptr;
    std::size_t chunk = 0;
    std::size_t n = 0;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;  ///< guarded by mutex
    std::exception_ptr error;
  };

  struct RawTask {
    void (*run)(void*, std::size_t) = nullptr;
    void* ctx = nullptr;
    std::size_t arg = 0;
    /// trace_now_us() at enqueue when metrics were enabled, else 0 —
    /// feeds the eid_executor_dispatch_latency_seconds histogram.
    std::uint64_t enqueue_us = 0;
  };

  struct Worker;

  static void fan_out_entry(void* ctx, std::size_t range);
  std::size_t dispatch_fan_out(FanOut& block, std::size_t count);
  static void wait_fan_out(FanOut& block);
  bool try_push(Worker& worker, RawTask task);
  void worker_loop(Worker& worker);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::size_t> next_worker_{0};
  /// Tasks pushed but not yet picked up, pool-wide — the
  /// eid_executor_queue_depth gauge.
  std::atomic<std::int64_t> queued_{0};
};

/// Dispatch helper for call sites with an optional pool: fan out on
/// `executor` when one is wired up, otherwise fall back to the spawning
/// util::parallel_ranges. Same partition, same results, either way.
template <typename Fn>
void parallel_ranges(Executor* executor, std::size_t n, std::size_t n_threads,
                     Fn&& fn) {
  if (executor != nullptr) {
    executor->parallel_ranges(n, n_threads, std::forward<Fn>(fn));
  } else {
    parallel_ranges(n, n_threads, std::forward<Fn>(fn));
  }
}

}  // namespace eid::util
