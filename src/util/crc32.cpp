#include "util/crc32.h"

#include <array>

namespace eid::util {
namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? kPolynomial ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

// Slicing-by-8 extension tables: kSlice[k][b] advances a CRC by byte b
// seen (7 - k) positions ahead, letting the hot loop fold 8 input bytes
// per iteration. Month-scale checkpoints checksum megabytes per section,
// so the byte-at-a-time loop would show up in every daily save/load.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_slices() {
  std::array<std::array<std::uint32_t, 256>, 8> slices{};
  slices[0] = make_table();
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t c = slices[0][b];
    for (std::size_t k = 1; k < 8; ++k) {
      c = slices[0][c & 0xffu] ^ (c >> 8);
      slices[k][b] = c;
    }
  }
  return slices;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kSlices = make_slices();

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t crc) {
  crc = ~crc;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = kSlices[7][lo & 0xffu] ^ kSlices[6][(lo >> 8) & 0xffu] ^
          kSlices[5][(lo >> 16) & 0xffu] ^ kSlices[4][lo >> 24] ^
          kSlices[3][p[4]] ^ kSlices[2][p[5]] ^ kSlices[1][p[6]] ^
          kSlices[0][p[7]];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    crc = kTable[(crc ^ *p) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace eid::util
