// Small string utilities shared by parsers and the simulator.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace eid::util {

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// ASCII lower-casing (domain names and UA comparisons are case-insensitive).
std::string to_lower(std::string_view text);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// True if every character is an ASCII digit (and text is non-empty).
bool is_all_digits(std::string_view text);

}  // namespace eid::util
